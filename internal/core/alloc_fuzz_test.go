package core

import (
	"fmt"
	"testing"

	"zipr/internal/ir"
)

// FuzzAlloc differentially fuzzes the indexed allocator against the
// sorted-slice FreeSpace reference. The input bytes drive a sequence of
// carve/release operations applied to both implementations; after every
// operation the block lists must be identical, the tree invariants must
// hold, and a battery of Space queries (parameterized from the same
// input bytes) must agree.
func FuzzAlloc(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0x10, 0x00, 8, 0, 0x40, 0x00, 16, 1, 0, 0})
	f.Add([]byte{0, 0x00, 0x00, 1, 0, 0x01, 0x00, 1, 1, 0, 1, 1, 0, 0})
	f.Add([]byte{
		0, 0x00, 0x10, 32, 0, 0x00, 0x30, 32, 0, 0x00, 0x20, 32,
		1, 0, 1, 1, 0, 0, 1, 0, 0,
	})
	// FindWithin at region boundaries: carve [0x100,0x120), then probe
	// windows that straddle the carved region's edges — one clipped by
	// the hole's start (too-small remainder), one starting just inside
	// the hole and reaching the free block beyond it, and one opening
	// exactly at the hole's end (the first free byte). The differential
	// check (compareQueries) demands the indexed tree agree with the
	// linear reference on every clipped window.
	f.Add([]byte{
		0, 0x00, 0x01, 0x1f, // carve [0x100, 0x120)
		2, 0xfe, 0x00, 7, // window [0xfe, 0x11f): only 2 free bytes before the hole
		2, 0x18, 0x01, 3, // window [0x118, 0x129): fit begins at the hole's end
		2, 0x20, 0x01, 0xff, // window opening exactly at the first free byte
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		whole := ir.Range{Start: 0, End: 0x10000}
		ref := NewFreeSpace(whole, nil)
		idx := NewAlloc(whole, nil)
		var carved []ir.Range

		u16 := func(i int) uint32 { return uint32(data[i]) | uint32(data[i+1])<<8 }
		check := func(op string) {
			t.Helper()
			if err := idx.checkInvariants(); err != nil {
				t.Fatalf("after %s: %v", op, err)
			}
			want, got := ref.Blocks(), idx.Blocks()
			if len(want) != len(got) {
				t.Fatalf("after %s: %d blocks, reference has %d", op, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("after %s: block %d = %+v, reference %+v", op, i, got[i], want[i])
				}
			}
			if ref.TotalFree() != idx.TotalFree() || ref.NumBlocks() != idx.NumBlocks() {
				t.Fatalf("after %s: totals diverge", op)
			}
		}
		compareQueries := func(addr uint32, size int) {
			t.Helper()
			type q struct {
				name     string
				wb, gb   ir.Range
				wok, gok bool
			}
			var qs []q
			wb, wok := ref.Largest()
			gb, gok := idx.Largest()
			qs = append(qs, q{"Largest", wb, gb, wok, gok})
			wb, wok = ref.LowestFit(size)
			gb, gok = idx.LowestFit(size)
			qs = append(qs, q{"LowestFit", wb, gb, wok, gok})
			wb, wok = ref.HighestFit(size)
			gb, gok = idx.HighestFit(size)
			qs = append(qs, q{"HighestFit", wb, gb, wok, gok})
			wb, wok = ref.BestFit(size)
			gb, gok = idx.BestFit(size)
			qs = append(qs, q{"BestFit", wb, gb, wok, gok})
			wb, wok = ref.NearestFit(addr, size)
			gb, gok = idx.NearestFit(addr, size)
			qs = append(qs, q{"NearestFit", wb, gb, wok, gok})
			wb, wok = ref.BlockStartingAt(addr)
			gb, gok = idx.BlockStartingAt(addr)
			qs = append(qs, q{"BlockStartingAt", wb, gb, wok, gok})
			win := ir.Range{Start: addr, End: addr + uint32(size)*4 + 1}
			wb, wok = ref.FindWithin(win, uint32(size))
			gb, gok = idx.FindWithin(win, uint32(size))
			qs = append(qs, q{"FindWithin", wb, gb, wok, gok})
			for _, c := range qs {
				if c.wok != c.gok || (c.wok && c.wb != c.gb) {
					t.Fatalf("%s(addr=%#x, size=%d) = %+v, %v; reference %+v, %v",
						c.name, addr, size, c.gb, c.gok, c.wb, c.wok)
				}
			}
		}

		for i := 0; i+3 < len(data); {
			op := data[i]
			switch op % 3 {
			case 0: // carve [addr, addr+size)
				addr := u16(i + 1)
				size := uint32(data[i+3]) + 1
				i += 4
				r := ir.Range{Start: addr, End: addr + size}
				refErr := ref.Carve(r)
				idxErr := idx.Carve(r)
				if (refErr == nil) != (idxErr == nil) {
					t.Fatalf("Carve(%+v): err %v, reference err %v", r, idxErr, refErr)
				}
				if refErr == nil {
					carved = append(carved, r)
				}
				check(fmt.Sprintf("Carve(%+v)", r))
			case 1: // release a previously carved range
				k := int(u16(i + 1))
				i += 3
				if len(carved) == 0 {
					continue
				}
				k %= len(carved)
				r := carved[k]
				carved = append(carved[:k], carved[k+1:]...)
				ref.Release(r)
				idx.Release(r)
				check(fmt.Sprintf("Release(%+v)", r))
			default: // query probe
				addr := u16(i + 1)
				size := int(data[i+3]) + 1
				i += 4
				compareQueries(addr, size)
			}
		}
		// Final sweep: release everything, expect one whole block again.
		for _, r := range carved {
			ref.Release(r)
			idx.Release(r)
		}
		check("final release sweep")
		if idx.NumBlocks() != 1 || idx.TotalFree() != int(whole.Len()) {
			t.Fatalf("round trip left %d blocks, %d free", idx.NumBlocks(), idx.TotalFree())
		}
	})
}
