// Placement snapshots for incremental (delta) rewriting.
//
// A Snapshot captures everything needed to answer a rewrite of a
// *slightly edited* input without running the pipeline: the ancestor
// input and output images, per-unit content digests (ir.UnitDigest), and
// for every original instruction of every delta-eligible unit its placed
// address in the output plus editability flags. Apply admits an edited
// input when every changed byte belongs to a "freely editable"
// instruction — same opcode, condition and registers, only the immediate
// differs, and the immediate is inert for the conservative analyses
// (address-shaped movi/pushi immediates and stack-pointer adjustments
// under frame-sensitive transforms are excluded) — and then patches the
// new encodings directly into a copy of the ancestor output.
//
// Why that is sound: the pipeline is deterministic, and every analysis
// decision it makes is a function of instruction *structure* (boundaries,
// opcodes, link topology, pin set), never of a free immediate's value.
// Disassembly boundaries are unchanged because edits preserve encoded
// lengths; reachability and the function partition are unchanged because
// branch links are unchanged; the pin set is unchanged because
// address-shaped immediates are excluded (movi/pushi immediates seed
// both the weak disassembler tier and the pin scan, so those must not
// change unless provably out of text in both versions); transform
// decisions are unchanged because instructions they inspect beyond
// structure (sp adjustments under StackPad/Canary) are excluded; and the
// placer then sees an isomorphic IR with identical sizes, pins, hints
// and seeds, reproducing the ancestor layout decision for decision.
// A from-scratch rewrite of the edited input therefore emits exactly the
// ancestor image with the edited instructions re-encoded in place — which
// is what Apply constructs. Every precondition failure returns
// ErrDeltaInapplicable and the caller falls back to a full rewrite, so
// coverage gaps cost latency, never correctness; the differential golden
// corpus and FuzzDeltaEquivalence enforce the equivalence empirically.
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"zipr/internal/binfmt"
	"zipr/internal/ir"
	"zipr/internal/isa"
)

// Delta errors. Inapplicable means the edit falls outside the supported
// class (fall back to a full rewrite); Stale means the snapshot itself
// failed verification (evict it, then fall back).
var (
	ErrDeltaInapplicable = errors.New("core: delta inapplicable")
	ErrSnapshotStale     = errors.New("core: placement snapshot stale")
)

// SnapInst flag bits.
const (
	snapPlaced   = 1 << 0 // instruction has a placed address in the output
	snapEditable = 1 << 1 // immediate edits are admissible
	snapImmSeed  = 1 << 2 // movi/pushi32: immediate feeds pin scan + weak disasm seeds
)

// SnapInst records one original instruction of a unit: its offset from
// the unit start and original encoded length in the input, its placed
// address in the rewritten output, and editability flags.
type SnapInst struct {
	Off    uint32
	Placed uint32
	Len    uint8
	Flags  uint8
}

// SnapUnit is one delta-eligible function unit: an original-address
// interval (ir.PartitionUnits), its canonical content digest, and its
// instruction records in address order, exactly tiling the interval.
type SnapUnit struct {
	Range  ir.Range
	Digest [sha256.Size]byte
	Insts  []SnapInst
}

// Snapshot is a placement snapshot of one completed rewrite. Build one
// with BuildSnapshot + Finish (zipr.Rewrite does this under
// Config.CaptureSnapshot); answer edited inputs with Apply.
type Snapshot struct {
	// Fingerprint is the Config.Fingerprint the rewrite ran under; delta
	// is only valid between identical fingerprints.
	Fingerprint string
	// Input and Output are the ancestor images, with integrity digests
	// verified on every Apply so a rotted snapshot degrades instead of
	// patching garbage.
	Input, Output       []byte
	InDigest, OutDigest [sha256.Size]byte
	// Text geometry: virtual bounds of the input text segment (immediate
	// inertness checks) and the file offsets of the text payloads inside
	// the serialized input/output images.
	InTextVA, InTextEnd    uint32
	InTextOff              uint32
	OutTextVA              uint32
	OutTextOff, OutTextLen uint32
	// Units lists the delta-eligible units sorted by address.
	Units []SnapUnit
}

// DeltaInfo reports what an Apply did.
type DeltaInfo struct {
	UnitsChanged int   // units whose bytes differed
	InstsChanged int   // instructions re-encoded
	Changed      []int // indices into Units of the changed units
}

// opEditable reports whether an opcode's immediate may be edited without
// consulting any analysis: all control transfers, PC-relative data
// references and address-forming leas are excluded (their operands are
// reference structure, not free content).
func opEditable(op isa.Op) bool {
	if (isa.Inst{Op: op}).IsBranch() {
		return false
	}
	switch op {
	case isa.OpLea, isa.OpLoadPC:
		return false
	}
	return true
}

// segDataOffset returns the file offset of seg's payload inside
// b.Marshal()'s output, mirroring the marshal layout (20-byte header,
// then per-segment 12-byte headers + payload). Returns -1 when seg is
// not one of b's segments.
func segDataOffset(b *binfmt.Binary, seg *binfmt.Segment) int {
	off := 4 + 2 + 1 + 1 + 4 + 4*2 // magic, version, type, pad, entry, counts
	for i := range b.Segments {
		s := &b.Segments[i]
		off += 12
		if s == seg {
			return off
		}
		off += len(s.Data)
	}
	return -1
}

// BuildSnapshot constructs the structural part of a snapshot from a
// completed reassembly: unit partition, digests, per-instruction placed
// addresses and flags. The serialized input/output images are attached
// afterwards with Finish. frameSensitive marks configurations whose
// transforms read stack-pointer adjustment immediates (StackPad,
// Canary); sp adjustments are then not editable.
func BuildSnapshot(p *ir.Program, res *Result, frameSensitive bool, fingerprint string) (*Snapshot, error) {
	text := p.Bin.Text()
	if text == nil {
		return nil, fmt.Errorf("core: snapshot: no text segment")
	}
	outText := res.Binary.Text()
	if outText == nil {
		return nil, fmt.Errorf("core: snapshot: no output text segment")
	}
	s := &Snapshot{
		Fingerprint: fingerprint,
		InTextVA:    text.VAddr,
		InTextEnd:   text.End(),
		OutTextVA:   outText.VAddr,
		OutTextLen:  uint32(len(outText.Data)),
	}
	inOff := segDataOffset(p.Bin, text)
	outOff := segDataOffset(res.Binary, outText)
	if inOff < 0 || outOff < 0 {
		return nil, fmt.Errorf("core: snapshot: segment offset unresolved")
	}
	s.InTextOff, s.OutTextOff = uint32(inOff), uint32(outOff)

	overlapsFixed := func(u ir.Range) bool {
		for _, f := range p.Fixed {
			if u.Overlaps(f) {
				return true
			}
		}
		return false
	}

units:
	for _, u := range ir.PartitionUnits(p) {
		// Units overlapping fixed ranges (embedded data, jump tables,
		// ambiguous decodes) or with imperfect decode tiling are simply
		// not recorded: edits there fall outside every unit and Apply
		// rejects them, degrading to a full rewrite.
		if overlapsFixed(u) {
			continue
		}
		digest, err := ir.UnitDigest(text.Data, text.VAddr, u)
		if err != nil {
			continue
		}
		su := SnapUnit{Range: u, Digest: digest}
		for addr := u.Start; addr < u.End; {
			orig, err := isa.Decode(text.Data[addr-text.VAddr:])
			if err != nil {
				continue units
			}
			n := p.ByAddr[addr]
			if n == nil || n.Deleted || n.OrigAddr != addr {
				// Hole in the relocatable decode (weak-only bytes, an
				// instruction a transform deleted): the unit cannot
				// vouch for every byte it spans.
				continue units
			}
			rec := SnapInst{Off: addr - u.Start, Len: uint8(orig.Len())}
			switch orig.Op {
			case isa.OpMovI, isa.OpPushI32:
				rec.Flags |= snapImmSeed
			}
			placed, ok := res.Layout.AddrOf(n)
			if ok {
				rec.Flags |= snapPlaced
				rec.Placed = placed
			}
			spAdd := (orig.Op == isa.OpAddI || orig.Op == isa.OpAddI8) && orig.Rd == isa.SP
			if ok && n.Target == nil && n.AbsTarget == 0 && n.Inst == orig &&
				opEditable(orig.Op) && !(frameSensitive && spAdd) &&
				placed >= s.OutTextVA && placed+uint32(orig.Len()) <= s.OutTextVA+s.OutTextLen {
				rec.Flags |= snapEditable
			}
			su.Insts = append(su.Insts, rec)
			addr += uint32(orig.Len())
		}
		s.Units = append(s.Units, su)
	}
	return s, nil
}

// Finish attaches the serialized ancestor images, verifying the computed
// text payload offsets against them; a snapshot that fails verification
// is never exported.
func (s *Snapshot) Finish(input, output []byte) error {
	inLen := s.InTextEnd - s.InTextVA
	if uint32(len(input)) < s.InTextOff+inLen || uint32(len(output)) < s.OutTextOff+s.OutTextLen {
		return fmt.Errorf("core: snapshot: image shorter than text extent")
	}
	s.Input = append([]byte(nil), input...)
	s.Output = append([]byte(nil), output...)
	s.InDigest = sha256.Sum256(s.Input)
	s.OutDigest = sha256.Sum256(s.Output)
	// The editable-instruction contract says output bytes at each placed
	// address are the instruction's input encoding; spot-verify the whole
	// invariant once at export so a violation disables delta here rather
	// than surfacing as an Apply-time stale error on every request.
	for ui := range s.Units {
		u := &s.Units[ui]
		for _, rec := range u.Insts {
			if rec.Flags&snapEditable == 0 {
				continue
			}
			in := s.inSlice(u.Range.Start+rec.Off, uint32(rec.Len))
			out := s.outSlice(rec.Placed, uint32(rec.Len))
			if in == nil || out == nil || !bytes.Equal(in, out) {
				return fmt.Errorf("core: snapshot: placed bytes of %#x diverge from input encoding",
					u.Range.Start+rec.Off)
			}
		}
	}
	return nil
}

// inSlice returns the input-image bytes of [va, va+n) in input text.
func (s *Snapshot) inSlice(va, n uint32) []byte {
	if va < s.InTextVA || va+n > s.InTextEnd {
		return nil
	}
	off := s.InTextOff + (va - s.InTextVA)
	if uint32(len(s.Input)) < off+n {
		return nil
	}
	return s.Input[off : off+n]
}

// outSlice returns the output-image bytes of [va, va+n) in output text.
func (s *Snapshot) outSlice(va, n uint32) []byte {
	if va < s.OutTextVA || va+n > s.OutTextVA+s.OutTextLen {
		return nil
	}
	off := s.OutTextOff + (va - s.OutTextVA)
	if uint32(len(s.Output)) < off+n {
		return nil
	}
	return s.Output[off : off+n]
}

// newInSlice is inSlice against a candidate input image (same geometry).
func (s *Snapshot) newInSlice(input []byte, va, n uint32) []byte {
	if va < s.InTextVA || va+n > s.InTextEnd {
		return nil
	}
	off := s.InTextOff + (va - s.InTextVA)
	if uint32(len(input)) < off+n {
		return nil
	}
	return input[off : off+n]
}

// Verify checks the snapshot's internal integrity: image digests intact
// and geometry coherent. Returns ErrSnapshotStale on any mismatch.
func (s *Snapshot) Verify() error {
	if len(s.Input) == 0 || len(s.Output) == 0 {
		return fmt.Errorf("%w: images missing", ErrSnapshotStale)
	}
	if sha256.Sum256(s.Input) != s.InDigest || sha256.Sum256(s.Output) != s.OutDigest {
		return fmt.Errorf("%w: image digest mismatch", ErrSnapshotStale)
	}
	inLen := s.InTextEnd - s.InTextVA
	if s.InTextVA > s.InTextEnd ||
		uint32(len(s.Input)) < s.InTextOff+inLen ||
		uint32(len(s.Output)) < s.OutTextOff+s.OutTextLen {
		return fmt.Errorf("%w: text geometry out of bounds", ErrSnapshotStale)
	}
	return nil
}

// Apply answers a rewrite of input using the snapshot: if every byte
// that differs from the ancestor input belongs to a freely editable
// instruction of a recorded unit, it returns the ancestor output with
// the edited instructions re-encoded at their placed addresses — byte
// for byte what a from-scratch rewrite of input produces. Otherwise it
// returns ErrDeltaInapplicable (unsupported edit; run the pipeline) or
// ErrSnapshotStale (snapshot failed verification; evict it).
func (s *Snapshot) Apply(input []byte) ([]byte, *DeltaInfo, error) {
	if err := s.Verify(); err != nil {
		return nil, nil, err
	}
	if len(input) != len(s.Input) {
		return nil, nil, fmt.Errorf("%w: input length %d != ancestor %d",
			ErrDeltaInapplicable, len(input), len(s.Input))
	}

	// Every byte outside the recorded units must be identical: walk the
	// gaps between unit file-ranges (units are address-sorted).
	pos := 0
	for i := range s.Units {
		u := &s.Units[i]
		lo := int(s.InTextOff + (u.Range.Start - s.InTextVA))
		hi := int(s.InTextOff + (u.Range.End - s.InTextVA))
		if !bytes.Equal(input[pos:lo], s.Input[pos:lo]) {
			return nil, nil, fmt.Errorf("%w: edit outside function units", ErrDeltaInapplicable)
		}
		pos = hi
	}
	if !bytes.Equal(input[pos:], s.Input[pos:]) {
		return nil, nil, fmt.Errorf("%w: edit outside function units", ErrDeltaInapplicable)
	}

	out := append([]byte(nil), s.Output...)
	info := &DeltaInfo{}
	for ui := range s.Units {
		u := &s.Units[ui]
		oldU := s.inSlice(u.Range.Start, u.Range.Len())
		newU := s.newInSlice(input, u.Range.Start, u.Range.Len())
		if oldU == nil || newU == nil {
			return nil, nil, fmt.Errorf("%w: unit %+v out of bounds", ErrSnapshotStale, u.Range)
		}
		if bytes.Equal(oldU, newU) {
			continue
		}
		// Digest-set diff: the unit's content digest moved; admit the
		// edit only instruction by instruction.
		info.UnitsChanged++
		info.Changed = append(info.Changed, ui)
		covered := uint32(0)
		for _, rec := range u.Insts {
			if rec.Off != covered {
				return nil, nil, fmt.Errorf("%w: unit tiling gap at +%#x", ErrSnapshotStale, covered)
			}
			covered += uint32(rec.Len)
			oldB := oldU[rec.Off : rec.Off+uint32(rec.Len)]
			newB := newU[rec.Off : rec.Off+uint32(rec.Len)]
			if bytes.Equal(oldB, newB) {
				continue
			}
			if rec.Flags&snapEditable == 0 {
				return nil, nil, fmt.Errorf("%w: edited instruction at %#x is not freely editable",
					ErrDeltaInapplicable, u.Range.Start+rec.Off)
			}
			oldIn, err1 := isa.Decode(oldB)
			newIn, err2 := isa.Decode(newB)
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("%w: edited bytes at %#x do not decode",
					ErrDeltaInapplicable, u.Range.Start+rec.Off)
			}
			if newIn.Op != oldIn.Op || newIn.Cc != oldIn.Cc || newIn.Rd != oldIn.Rd ||
				newIn.Rs != oldIn.Rs || newIn.Len() != int(rec.Len) {
				return nil, nil, fmt.Errorf("%w: edit at %#x changes more than the immediate",
					ErrDeltaInapplicable, u.Range.Start+rec.Off)
			}
			if rec.Flags&snapImmSeed != 0 {
				// movi/pushi immediates feed the pin scan and the weak
				// disassembler seeds; both values must be provably inert
				// (outside text) or the analyses could diverge.
				for _, imm := range [2]uint32{uint32(oldIn.Imm), uint32(newIn.Imm)} {
					if imm >= s.InTextVA && imm < s.InTextEnd {
						return nil, nil, fmt.Errorf("%w: immediate %#x at %#x is address-shaped",
							ErrDeltaInapplicable, imm, u.Range.Start+rec.Off)
					}
				}
			}
			dst := s.outSliceOf(out, rec.Placed, uint32(rec.Len))
			if dst == nil {
				return nil, nil, fmt.Errorf("%w: placed range %#x out of output text", ErrSnapshotStale, rec.Placed)
			}
			if !bytes.Equal(dst, oldB) {
				// The output must hold the old encoding exactly where the
				// snapshot says; anything else means the snapshot and
				// output disagree — never patch on top of that.
				return nil, nil, fmt.Errorf("%w: output bytes at %#x diverge from recorded encoding",
					ErrSnapshotStale, rec.Placed)
			}
			copy(dst, newB)
			info.InstsChanged++
		}
		if covered != u.Range.Len() {
			return nil, nil, fmt.Errorf("%w: unit tiling short at %+v", ErrSnapshotStale, u.Range)
		}
	}
	return out, info, nil
}

// outSliceOf is outSlice against a caller-owned output copy.
func (s *Snapshot) outSliceOf(out []byte, va, n uint32) []byte {
	if va < s.OutTextVA || va+n > s.OutTextVA+s.OutTextLen {
		return nil
	}
	off := s.OutTextOff + (va - s.OutTextVA)
	if uint32(len(out)) < off+n {
		return nil
	}
	return out[off : off+n]
}

// Rebase derives the snapshot of a delta-answered rewrite: same
// placement and flags (the layout is identical by construction), new
// ancestor images, unit digests refreshed for the changed units. The
// per-instruction records are shared with the ancestor snapshot — they
// are immutable after build.
func (s *Snapshot) Rebase(input, output []byte, info *DeltaInfo) (*Snapshot, error) {
	ns := &Snapshot{
		Fingerprint: s.Fingerprint,
		Input:       append([]byte(nil), input...),
		Output:      append([]byte(nil), output...),
		InTextVA:    s.InTextVA,
		InTextEnd:   s.InTextEnd,
		InTextOff:   s.InTextOff,
		OutTextVA:   s.OutTextVA,
		OutTextOff:  s.OutTextOff,
		OutTextLen:  s.OutTextLen,
		Units:       append([]SnapUnit(nil), s.Units...),
	}
	ns.InDigest = sha256.Sum256(ns.Input)
	ns.OutDigest = sha256.Sum256(ns.Output)
	text := ns.Input[ns.InTextOff : ns.InTextOff+(ns.InTextEnd-ns.InTextVA)]
	for _, ui := range info.Changed {
		d, err := ir.UnitDigest(text, ns.InTextVA, ns.Units[ui].Range)
		if err != nil {
			return nil, fmt.Errorf("core: rebase digest: %w", err)
		}
		ns.Units[ui].Digest = d
	}
	return ns, nil
}

// SizeBytes estimates the snapshot's resident size for byte-budget
// accounting: the two images plus the per-instruction records.
func (s *Snapshot) SizeBytes() int64 {
	n := int64(len(s.Input) + len(s.Output) + len(s.Fingerprint) + 128)
	for i := range s.Units {
		n += 48 + int64(len(s.Units[i].Insts))*10
	}
	return n
}

const snapMagic = "ZSNP"
const snapVersion = 2

// Marshal serializes the snapshot (for irdb persistence). The format is
// versioned and length-checked; Unmarshal rejects anything malformed.
func (s *Snapshot) Marshal() []byte {
	var buf bytes.Buffer
	buf.WriteString(snapMagic)
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w32(snapVersion)
	w32(uint32(len(s.Fingerprint)))
	buf.WriteString(s.Fingerprint)
	w32(s.InTextVA)
	w32(s.InTextEnd)
	w32(s.InTextOff)
	w32(s.OutTextVA)
	w32(s.OutTextOff)
	w32(s.OutTextLen)
	buf.Write(s.InDigest[:])
	buf.Write(s.OutDigest[:])
	w32(uint32(len(s.Input)))
	buf.Write(s.Input)
	w32(uint32(len(s.Output)))
	buf.Write(s.Output)
	w32(uint32(len(s.Units)))
	for i := range s.Units {
		u := &s.Units[i]
		w32(u.Range.Start)
		w32(u.Range.End)
		buf.Write(u.Digest[:])
		w32(uint32(len(u.Insts)))
		for _, rec := range u.Insts {
			w32(rec.Off)
			w32(rec.Placed)
			buf.WriteByte(rec.Len)
			buf.WriteByte(rec.Flags)
		}
	}
	return buf.Bytes()
}

// UnmarshalSnapshot parses a Marshal-ed snapshot.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	r := snapReader{b: data}
	if string(r.take(4)) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrSnapshotStale)
	}
	if v := r.u32(); v != snapVersion {
		return nil, fmt.Errorf("%w: snapshot version %d", ErrSnapshotStale, v)
	}
	s := &Snapshot{}
	s.Fingerprint = string(r.take(int(r.u32())))
	s.InTextVA = r.u32()
	s.InTextEnd = r.u32()
	s.InTextOff = r.u32()
	s.OutTextVA = r.u32()
	s.OutTextOff = r.u32()
	s.OutTextLen = r.u32()
	copy(s.InDigest[:], r.take(sha256.Size))
	copy(s.OutDigest[:], r.take(sha256.Size))
	s.Input = append([]byte(nil), r.take(int(r.u32()))...)
	s.Output = append([]byte(nil), r.take(int(r.u32()))...)
	nUnits := int(r.u32())
	if r.bad || nUnits > 1<<22 {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrSnapshotStale)
	}
	for i := 0; i < nUnits; i++ {
		var u SnapUnit
		u.Range.Start = r.u32()
		u.Range.End = r.u32()
		copy(u.Digest[:], r.take(sha256.Size))
		nInsts := int(r.u32())
		if r.bad || nInsts > 1<<26 {
			return nil, fmt.Errorf("%w: truncated snapshot", ErrSnapshotStale)
		}
		u.Insts = make([]SnapInst, 0, nInsts)
		for j := 0; j < nInsts; j++ {
			var rec SnapInst
			rec.Off = r.u32()
			rec.Placed = r.u32()
			one := r.take(2)
			if r.bad {
				return nil, fmt.Errorf("%w: truncated snapshot", ErrSnapshotStale)
			}
			rec.Len, rec.Flags = one[0], one[1]
			u.Insts = append(u.Insts, rec)
		}
		s.Units = append(s.Units, u)
	}
	if r.bad || len(r.b) != r.pos {
		return nil, fmt.Errorf("%w: malformed snapshot", ErrSnapshotStale)
	}
	if err := s.Verify(); err != nil {
		return nil, err
	}
	return s, nil
}

// snapReader is a bounds-tracking cursor over marshaled snapshot bytes.
type snapReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *snapReader) take(n int) []byte {
	if r.bad || n < 0 || r.pos+n > len(r.b) {
		r.bad = true
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
