package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Prometheus text-exposition rendering of a Registry (format version
// 0.0.4, the text/plain scrape format). Dotted family names map to
// zipr_-prefixed snake_case ("serve.request.latency" ->
// "zipr_serve_request_latency"); label values are escaped per the
// format (backslash, double quote and newline).
//
// Shapes:
//
//	counter  -> TYPE counter, one sample per series
//	gauge    -> TYPE gauge, one sample per series
//	histogram-> TYPE histogram: cumulative _bucket{le="..."} samples on
//	            the pow2 bucket upper bounds (le="0", "1", "3", "7",
//	            ..., "+Inf"), plus _sum and _count
//	window   -> the lifetime totals render as a TYPE histogram (proper
//	            cumulative semantics for rate()-style queries), and the
//	            rolling-window quantiles render as three extra gauge
//	            families suffixed _p50/_p95/_p99
//
// PromContentType is the Content-Type to serve the rendering under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a dotted family name to its exposition metric name:
// "zipr_" prefix, [a-z0-9] kept, every other byte (dots, dashes)
// mapped to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("zipr_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promLabels renders {k="v",...} for parallel name/value slices, with
// an optional extra pair appended (the histogram le label). Returns ""
// when there are no pairs at all.
func promLabels(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, names[i], escapeLabelValue(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabelValue(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm renders the registry in the Prometheus text exposition
// format: families in registration order, series in creation order.
// Nil-safe (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	now := r.now()
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.writeProm(bw, now); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) writeProm(w *bufio.Writer, now time.Time) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name := PromName(f.name)
	switch f.kind {
	case kindCounter, kindGauge:
		writeHeader(w, name, f.help, f.kind.String())
		for _, key := range f.order {
			s := f.series[key]
			s.mu.Lock()
			v := s.val
			s.mu.Unlock()
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(f.labels, s.labels, "", ""), v)
		}
	case kindHist:
		writeHeader(w, name, f.help, "histogram")
		for _, key := range f.order {
			s := f.series[key]
			s.mu.Lock()
			h := s.hist
			s.mu.Unlock()
			writePromHist(w, name, f.labels, s.labels, &h)
		}
	case kindWindow:
		writeHeader(w, name, f.help, "histogram")
		type quant struct {
			suffix string
			q      float64
		}
		quants := []quant{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}}
		merged := make([]Hist, 0, len(f.order))
		for _, key := range f.order {
			s := f.series[key]
			s.mu.Lock()
			life := s.win.life
			merged = append(merged, s.win.merged(now))
			s.mu.Unlock()
			writePromHist(w, name, f.labels, s.labels, &life)
		}
		for _, qu := range quants {
			writeHeader(w, name+qu.suffix, f.help+" (rolling "+qu.suffix[2:]+")", "gauge")
			for i, key := range f.order {
				s := f.series[key]
				fmt.Fprintf(w, "%s%s%s %d\n", name, qu.suffix,
					promLabels(f.labels, s.labels, "", ""), merged[i].Quantile(qu.q))
			}
		}
	}
	return nil
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writePromHist renders one histogram series: cumulative buckets on
// the pow2 upper bounds (bucket 0 covers v <= 0, bucket i >= 1 covers
// [2^(i-1), 2^i) so its inclusive upper bound is 2^i - 1), trimmed to
// the highest non-empty bucket, then +Inf, _sum and _count.
func writePromHist(w *bufio.Writer, name string, labelNames, labelValues []string, h *Hist) {
	high := 0
	for i, c := range h.Buckets {
		if c != 0 {
			high = i
		}
	}
	var cum int64
	for i := 0; i <= high; i++ {
		cum += h.Buckets[i]
		var le string
		if i == 0 {
			le = "0"
		} else {
			le = fmt.Sprintf("%d", (int64(1)<<uint(i))-1)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labelNames, labelValues, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labelNames, labelValues, "le", "+Inf"), h.Count)
	base := promLabels(labelNames, labelValues, "", "")
	fmt.Fprintf(w, "%s_sum%s %d\n", name, base, h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, base, h.Count)
}
