// Source-level mutators for delta-rewrite testing: derive an edited
// variant of a generated program that differs from the original in a
// controlled, function-local way. MutateConsts models the delta-eligible
// edit class (free immediates change, instruction structure does not);
// MutateWiden models a structural edit (a rel8 branch widens to rel32)
// that the delta path must detect and refuse.
package synth

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"
	"strings"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
)

var (
	funcLabelRe = regexp.MustCompile(`^\w+_f\d+:$`)
	moviConstRe = regexp.MustCompile(`^(    movi r2, )(\d+)$`)
	shortJumpRe = regexp.MustCompile(`^(    )(jz|jnz)\.s (\S+)$`)
)

// MutateConsts returns src with the numeric `movi r2, N` constants of
// count distinct generated functions replaced by fresh seeded values in
// the same inert range (1..1000 — movi encodes a full imm32, so the
// encoded length never changes, and the values stay far below the text
// base). count < 0 mutates every function that has a mutable site. The
// returned count is the number of functions actually mutated (less than
// requested when too few functions carry mutable sites).
func MutateConsts(src string, seed int64, count int) (string, int) {
	lines := strings.Split(src, "\n")
	// Collect the mutable line indices of each generated function, in
	// source order; main and prologue lines sit under function -1.
	fn := -1
	var funcs []int          // distinct functions with ≥1 mutable site
	sites := map[int][]int{} // function order index -> line indices
	for i, line := range lines {
		if funcLabelRe.MatchString(line) {
			fn++
			continue
		}
		if fn >= 0 && moviConstRe.MatchString(line) {
			if len(sites[fn]) == 0 {
				funcs = append(funcs, fn)
			}
			sites[fn] = append(sites[fn], i)
		}
	}
	if count < 0 || count > len(funcs) {
		count = len(funcs)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(funcs), func(i, j int) { funcs[i], funcs[j] = funcs[j], funcs[i] })
	for _, f := range funcs[:count] {
		for _, li := range sites[f] {
			m := moviConstRe.FindStringSubmatch(lines[li])
			old, _ := strconv.Atoi(m[2])
			nv := 1 + rng.Intn(1000)
			if nv == old {
				nv = old%1000 + 1
			}
			lines[li] = m[1] + strconv.Itoa(nv)
		}
	}
	return strings.Join(lines, "\n"), count
}

// MutateWiden returns src with the first short-form conditional branch
// (`jz.s`/`jnz.s`) rewritten to its rel32 form — a structural edit that
// changes the encoded instruction length. Returns ok=false when the
// program has no short branch to widen.
func MutateWiden(src string) (out string, ok bool) {
	lines := strings.Split(src, "\n")
	for i, line := range lines {
		if m := shortJumpRe.FindStringSubmatch(line); m != nil {
			lines[i] = m[1] + m[2] + " " + m[3]
			return strings.Join(lines, "\n"), true
		}
	}
	return src, false
}

// BuildMutated assembles a profile's program plus a variant with the
// constants of count functions mutated; both images share the profile's
// layout (identical function boundaries and reference structure).
func BuildMutated(seed int64, p Profile, mutSeed int64, count int) (base, edited *binfmt.Binary, mutated int, err error) {
	src := Generate(seed, p)
	msrc, mutated := MutateConsts(src, mutSeed, count)
	if base, err = asm.Assemble(src); err != nil {
		return nil, nil, 0, fmt.Errorf("synth %s: %w", p.Name, err)
	}
	if edited, err = asm.Assemble(msrc); err != nil {
		return nil, nil, 0, fmt.Errorf("synth %s (mutated): %w", p.Name, err)
	}
	return base, edited, mutated, nil
}
