package zipr_test

// Serving-layer golden gate: a sample of golden cells is answered
// through the serve.Server (cold miss, then cache hit) and both answers
// must match the digest pinned in testdata/golden/corpus.json. This
// ties the cache path into the same regression gate as the pipeline:
// a cache that returns anything but the pinned bytes — stale entries,
// truncation, key collisions — fails here even if the pipeline itself
// is untouched. Lives in the external test package because
// internal/serve imports zipr.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"

	"zipr"
	"zipr/internal/cgcsim"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

// serveGoldenCells mirrors the cell matrix of golden_test.go for the
// sampled programs. The stack and layout constants must match
// goldenStacks/goldenLayouts; a mismatch shows up as a missing golden
// key, not a silent pass.
func serveGoldenConfigs() map[string]zipr.Config {
	full := func() []zipr.Transform {
		return []zipr.Transform{zipr.Stir(0x57123), zipr.NopElide(), zipr.StackPad(48), zipr.Canary(0xA5A5A5A5), zipr.CFI()}
	}
	return map[string]zipr.Config{
		"null/optimized": {Transforms: []zipr.Transform{zipr.Null()}},
		"cfi/optimized":  {Transforms: []zipr.Transform{zipr.CFI()}},
		"full/diversity": {Transforms: full(), Layout: zipr.LayoutDiversity, Seed: 0x60D5},
	}
}

func TestGoldenThroughServer(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden/corpus.json")
	if err != nil {
		t.Fatalf("golden file missing (%v); generate it with: go test -run TestGoldenCorpus -update .", err)
	}
	var pinned struct {
		Cells map[string]struct {
			Image string `json:"image"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &pinned); err != nil {
		t.Fatal(err)
	}
	// A spread of corpus programs, including the pathological CB.
	indices := []int{0, 17, 38, synth.PathologicalCB}
	corpus, err := cgcsim.Corpus(synth.CorpusSize)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{Workers: 2})
	defer s.Close()
	for _, idx := range indices {
		cb := corpus[idx]
		input, err := cb.Bin.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", cb.Name, err)
		}
		for cell, cfg := range serveGoldenConfigs() {
			key := cb.Name + "/" + cell
			want, ok := pinned.Cells[key]
			if !ok {
				t.Errorf("%s: not pinned in golden file (cell matrix drifted from golden_test.go?)", key)
				continue
			}
			for _, label := range []string{"cold", "hot"} {
				out, _, err := s.Rewrite(context.Background(), input, cfg)
				if err != nil {
					t.Errorf("%s: %s serve: %v", key, label, err)
					break
				}
				sum := sha256.Sum256(out)
				if got := hex.EncodeToString(sum[:]); got != want.Image {
					t.Errorf("%s: %s serve answer drifted from pinned image digest\n  pinned %s\n  got    %s",
						key, label, want.Image, got)
					break
				}
			}
		}
	}
	st := s.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("gate exercised no cache hits or no misses (stats %+v)", st)
	}
}
