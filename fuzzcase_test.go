package zipr

// Regression tests distilled from pipeline-fuzzer findings.

import (
	"bytes"
	"math/rand"
	"testing"

	"zipr/internal/synth"
)

// replayFuzzCase re-executes exactly one case of the equivalence fuzzer
// (same RNG stream) and returns its ingredients.
func replayFuzzCase(t *testing.T, target int) (synth.Profile, int64, []Transform, string, LayoutKind, int64, [][]byte) {
	rng := rand.New(rand.NewSource(0xF022))
	for i := 0; ; i++ {
		profile := randomProfile(rng, i)
		seed := rng.Int63()
		tfs, stackName := randomStack(rng)
		layout := LayoutOptimized
		if rng.Intn(2) == 1 {
			layout = LayoutDiversity
		}
		rewriteSeed := rng.Int63()
		inputs := make([][]byte, 3)
		for trial := range inputs {
			inputs[trial] = make([]byte, profile.InputLen)
			rng.Read(inputs[trial])
		}
		if i == target {
			return profile, seed, tfs, stackName, layout, rewriteSeed, inputs
		}
		if i > 200 {
			t.Fatal("target case never reached")
		}
	}
}

func TestFuzzCase13Regression(t *testing.T) {
	profile, seed, tfs, stackName, layout, rewriteSeed, inputs := replayFuzzCase(t, 13)
	t.Logf("stack=%s layout=%s funcs=%d", stackName, layout, profile.NumFuncs)
	orig, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	rw, report, err := RewriteBinary(orig.Clone(), Config{
		Transforms: tfs, Layout: layout, Seed: rewriteSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range inputs {
		want, err1 := execute(t, orig, nil, string(input))
		got, err2 := execute(t, rw, nil, string(input))
		if err1 != nil || err2 != nil {
			t.Fatalf("fault: %v / %v (stats %+v)", err1, err2, report.Stats)
		}
		if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
			t.Fatalf("diverged: exit %d vs %d", want.ExitCode, got.ExitCode)
		}
	}
}

// TestNopElideCanaryCFIStack is the distilled shape of fuzz case 13:
// padding deletion composed with canary and CFI instrumentation.
func TestNopElideCanaryCFIStack(t *testing.T) {
	for i := 0; i < 6; i++ {
		seed, profile := synth.CBProfile(i)
		orig, err := synth.Build(seed, profile)
		if err != nil {
			t.Fatal(err)
		}
		input := bytes.Repeat([]byte{byte(i * 11)}, profile.InputLen)
		want := mustRun(t, orig, nil, string(input))
		rw, _, err := RewriteBinary(orig.Clone(), Config{
			Transforms: []Transform{NopElide(), Canary(0x1235), CFI()},
		})
		if err != nil {
			t.Fatal(err)
		}
		got := mustRun(t, rw, nil, string(input))
		if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
			t.Fatalf("cb%d diverged: exit %d vs %d", i, got.ExitCode, want.ExitCode)
		}
	}
}
