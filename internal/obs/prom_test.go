package obs

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// promParse is a minimal exposition-format checker shared by the
// self-check tests: it walks the body line by line and verifies the
// structural invariants — every sample belongs to a family whose
// # TYPE (and, when present, # HELP) header came first, names are
// zipr_-prefixed snake_case, histogram buckets are cumulative and
// monotone in le, and _count equals the +Inf bucket.
type promFamily struct {
	name, typ string
	hasHelp   bool
	samples   []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  int64
}

func promParse(t *testing.T, body string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	var cur *promFamily
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			fams[name] = &promFamily{name: name, hasHelp: true}
			cur = fams[name]
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: TYPE without type: %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid type %q", lineNo, typ)
			}
			f := fams[name]
			if f == nil {
				f = &promFamily{name: name}
				fams[name] = f
			} else if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			f.typ = typ
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		s := parseSample(t, lineNo, line)
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.name, "_bucket"), "_sum"), "_count")
		f := fams[base]
		if f == nil || f.typ == "" {
			t.Fatalf("line %d: sample %s before its TYPE header", lineNo, s.name)
		}
		if f != cur {
			t.Fatalf("line %d: sample %s interleaved outside its family block", lineNo, s.name)
		}
		if !strings.HasPrefix(s.name, "zipr_") {
			t.Fatalf("line %d: metric %q not zipr_-prefixed", lineNo, s.name)
		}
		for _, c := range s.name {
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_') {
				t.Fatalf("line %d: metric %q has invalid char %q", lineNo, s.name, c)
			}
		}
		f.samples = append(f.samples, s)
	}
	return fams
}

// parseSample parses `name{k="v",...} value`, unescaping label values.
func parseSample(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				t.Fatalf("line %d: bad label syntax: %q", lineNo, line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value: %q", lineNo, line)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape: %q", lineNo, line)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: invalid escape \\%c", lineNo, rest[1])
					}
					rest = rest[2:]
					continue
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			s.labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: bad label separator: %q", lineNo, line)
		}
		rest = strings.TrimPrefix(rest, " ")
	} else {
		i = strings.IndexByte(rest, ' ')
		if i < 0 {
			t.Fatalf("line %d: sample without value: %q", lineNo, line)
		}
		s.name, rest = rest[:i], rest[i+1:]
	}
	if rest == "" {
		t.Fatalf("line %d: missing value: %q", lineNo, line)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.value = v
	return s
}

// checkHistogram verifies cumulative bucket monotonicity and
// _sum/_count consistency for every series of a histogram family.
func checkHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	type hseries struct {
		les    []string
		counts []int64
		sum    *int64
		count  *int64
		inf    *int64
	}
	series := map[string]*hseries{}
	seriesKey := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		// Deterministic order.
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if parts[j] < parts[i] {
					parts[i], parts[j] = parts[j], parts[i]
				}
			}
		}
		return strings.Join(parts, ",")
	}
	for _, s := range f.samples {
		hs := series[seriesKey(s.labels)]
		if hs == nil {
			hs = &hseries{}
			series[seriesKey(s.labels)] = hs
		}
		v := s.value
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le := s.labels["le"]
			if le == "" {
				t.Fatalf("%s: bucket sample without le", f.name)
			}
			if le == "+Inf" {
				hs.inf = &v
			} else {
				hs.les = append(hs.les, le)
				hs.counts = append(hs.counts, v)
			}
		case strings.HasSuffix(s.name, "_sum"):
			hs.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			hs.count = &v
		default:
			t.Fatalf("%s: unexpected histogram sample %s", f.name, s.name)
		}
	}
	for key, hs := range series {
		if hs.inf == nil || hs.sum == nil || hs.count == nil {
			t.Fatalf("%s{%s}: missing +Inf/_sum/_count", f.name, key)
		}
		if *hs.count != *hs.inf {
			t.Fatalf("%s{%s}: _count %d != +Inf bucket %d", f.name, key, *hs.count, *hs.inf)
		}
		prevLe := int64(-1 << 62)
		prevCount := int64(0)
		for i, le := range hs.les {
			lv, err := strconv.ParseInt(le, 10, 64)
			if err != nil {
				t.Fatalf("%s{%s}: bad le %q", f.name, key, le)
			}
			if lv <= prevLe {
				t.Fatalf("%s{%s}: le not increasing: %d after %d", f.name, key, lv, prevLe)
			}
			if hs.counts[i] < prevCount {
				t.Fatalf("%s{%s}: bucket counts not monotone at le=%s", f.name, key, le)
			}
			prevLe, prevCount = lv, hs.counts[i]
		}
		if prevCount > *hs.inf {
			t.Fatalf("%s{%s}: finite bucket %d exceeds +Inf %d", f.name, key, prevCount, *hs.inf)
		}
	}
}

// TestPromExpositionSelfCheck renders a registry with every family
// kind — including hostile label values — and validates the body
// line by line.
func TestPromExpositionSelfCheck(t *testing.T) {
	r := NewRegistry()
	total := r.Counter("serve.request.total", "requests by outcome", "outcome")
	total.With("hit").Add(12)
	total.With("miss").Add(3)
	total.With(`quo"te\back` + "\nnewline").Add(1) // escaping
	r.Gauge("serve.queue.depth", "requests waiting").With().Set(2)
	h := r.Histogram("serve.input.bytes", "input sizes", "kind")
	for _, v := range []int64{0, 1, 2, 7, 8, 4096} {
		h.With("zelf").Observe(v)
	}
	w := r.Window("serve.request.latency", "request wall micros", time.Minute, "outcome")
	for i := int64(1); i <= 100; i++ {
		w.With("hit").Observe(i)
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	fams := promParse(t, body)

	ct := fams["zipr_serve_request_total"]
	if ct == nil || ct.typ != "counter" || !ct.hasHelp {
		t.Fatalf("request.total family = %+v", ct)
	}
	var gotEscape bool
	for _, s := range ct.samples {
		if s.labels["outcome"] == `quo"te\back`+"\nnewline" {
			gotEscape = true
		}
	}
	if !gotEscape {
		t.Fatalf("escaped label value did not round-trip:\n%s", body)
	}

	hist := fams["zipr_serve_input_bytes"]
	if hist == nil || hist.typ != "histogram" {
		t.Fatalf("input.bytes family = %+v", hist)
	}
	checkHistogram(t, hist)

	// Window family: lifetime histogram plus rolling-quantile gauges.
	lat := fams["zipr_serve_request_latency"]
	if lat == nil || lat.typ != "histogram" {
		t.Fatalf("latency family = %+v", lat)
	}
	checkHistogram(t, lat)
	for _, suffix := range []string{"_p50", "_p95", "_p99"} {
		qf := fams["zipr_serve_request_latency"+suffix]
		if qf == nil || qf.typ != "gauge" || len(qf.samples) != 1 {
			t.Fatalf("quantile family %s = %+v", suffix, qf)
		}
	}
	// 1..100 uniform: p50 near 64-bucket, p99 <= 127, both nonzero.
	p50 := fams["zipr_serve_request_latency_p50"].samples[0].value
	p99 := fams["zipr_serve_request_latency_p99"].samples[0].value
	if p50 <= 0 || p99 <= 0 || p50 > p99 || p99 > 127 {
		t.Fatalf("quantiles p50=%d p99=%d implausible for 1..100", p50, p99)
	}

	if !strings.Contains(body, `zipr_serve_request_total{outcome="hit"} 12`) {
		t.Fatalf("missing plain counter sample:\n%s", body)
	}
}

func TestPromNameMapping(t *testing.T) {
	cases := map[string]string{
		"serve.request.latency": "zipr_serve_request_latency",
		"reassemble.free-blocks": "zipr_reassemble_free_blocks",
		"Weird Name!":            "zipr_weird_name_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromConcurrentHammer drives labeled families from 8 goroutines
// while a scraper renders the exposition — run under -race (make race
// covers it), this is the registry's concurrency contract test.
func TestPromConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	total := r.Counter("stress.total", "", "worker")
	lat := r.Window("stress.latency", "", time.Minute, "worker")
	depth := r.Gauge("stress.depth", "")
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w)
			c := total.With(label)
			o := lat.With(label)
			g := depth.With()
			for i := 0; i < iters; i++ {
				c.Add(1)
				o.Observe(int64(i))
				g.Set(int64(i))
				if i%100 == 0 {
					total.With(label).Add(0) // concurrent With on a hot family
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WriteProm(io.Discard); err != nil {
				t.Error(err)
				return
			}
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	var sum int64
	for _, fam := range r.Snapshot() {
		if fam.Name == "stress.total" {
			for _, s := range fam.Series {
				sum += s.Value
			}
		}
	}
	if sum != workers*iters {
		t.Fatalf("total = %d, want %d", sum, workers*iters)
	}
}
