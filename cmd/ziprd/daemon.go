// Daemon-side service telemetry: per-request trace IDs, the JSONL
// access log, the recent-request ring behind /debug/requests, the
// Prometheus /metrics rendering and the pprof wiring.
package main

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zipr"
	"zipr/internal/isa"
	"zipr/internal/obs"
	"zipr/internal/serve"
)

// ringCap bounds /debug/requests: the newest ringCap sampled span
// trees are kept, older ones overwritten.
const ringCap = 64

// daemon bundles the rewrite server with its service telemetry: the
// labeled metric registry behind /metrics, the server-lifetime span
// aggregate (every per-request trace folds into it), the sampled
// recent-request ring, and the access log.
type daemon struct {
	s        *serve.Server
	reg      *obs.Registry
	agg      *obs.Agg
	ring     *reqRing
	sample   int64 // keep every sample-th request's span tree (0: none)
	deadline time.Duration

	seq   atomic.Int64 // request sequence, drives head-sampling
	logMu sync.Mutex
	logW  io.Writer // JSONL access log; nil disables
}

// newDaemon wires a daemon around an existing server. reg must be the
// same registry the server was built with (it backs /metrics).
func newDaemon(s *serve.Server, reg *obs.Registry, deadline time.Duration) *daemon {
	return &daemon{
		s:        s,
		reg:      reg,
		agg:      obs.NewAgg(),
		ring:     newReqRing(ringCap),
		sample:   1,
		deadline: deadline,
	}
}

// reqRecord is one request's telemetry: the access-log line shape, and
// (with Spans populated for sampled requests) the /debug/requests
// entry.
type reqRecord struct {
	Trace       string           `json:"trace"`
	Time        string           `json:"time"`
	InputSHA    string           `json:"input_sha256,omitempty"`
	ConfigSHA   string           `json:"config_sha256,omitempty"`
	Outcome     string           `json:"outcome"`
	Tier        string           `json:"tier,omitempty"`
	QueueWaitNS int64            `json:"queue_wait_ns"`
	WallNS      int64            `json:"wall_ns"`
	InputSize   int              `json:"input_size,omitempty"`
	OutputSize  int              `json:"output_size,omitempty"`
	Error       string           `json:"error,omitempty"`
	Class       string           `json:"class,omitempty"`
	Phases      map[string]int64 `json:"phase_ns,omitempty"`
	Spans       []obs.Event      `json:"spans,omitempty"`
}

// newTraceID returns a fresh 16-hex-char request trace ID.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is effectively fatal elsewhere; fall back
		// to a constant rather than crashing the request path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// normalizeTraceID accepts a caller-supplied trace ID (X-Zipr-Trace
// header or the JSONL trace field) when it is 1-64 chars of
// [A-Za-z0-9._-], and mints a fresh one otherwise.
func normalizeTraceID(s string) string {
	if s == "" || len(s) > 64 {
		return newTraceID()
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return newTraceID()
		}
	}
	return s
}

// shortDigest renders the first 16 hex chars of sha256(b), the
// access-log form of input/config content addresses.
func shortDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// phaseWalls flattens a request trace into the access-log phase
// breakdown: wall nanoseconds for each root span and its direct
// children (the pipeline's top-level phases).
func phaseWalls(snap *obs.Snapshot) map[string]int64 {
	if snap == nil || len(snap.Spans) == 0 {
		return nil
	}
	m := make(map[string]int64, 8)
	for _, root := range snap.Spans {
		m[root.Name] += root.Wall.Nanoseconds()
		for _, c := range root.Children {
			m[root.Name+"."+c.Name] += c.Wall.Nanoseconds()
		}
	}
	return m
}

// logRecord appends one JSONL access-log line (without span trees).
func (d *daemon) logRecord(rec reqRecord) {
	if d.logW == nil {
		return
	}
	line := rec
	line.Spans = nil // span trees live in /debug/requests, not the log
	d.logMu.Lock()
	defer d.logMu.Unlock()
	enc := json.NewEncoder(d.logW)
	enc.Encode(line) // best-effort: a full disk must not fail requests
}

// handle answers one request against the server, recording telemetry:
// the per-request trace folds into the daemon's Agg, the access log
// gets one line, and head-sampled requests park their span tree in the
// /debug/requests ring.
func (d *daemon) handle(ctx context.Context, req request) response {
	deadline := d.deadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	traceID := normalizeTraceID(req.Trace)
	seq := d.seq.Add(1)
	sampled := d.sample > 0 && (seq-1)%d.sample == 0
	rec := reqRecord{
		Trace:    traceID,
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		InputSHA: shortDigest(req.Input),
	}

	tfs, err := serve.ParseTransforms(req.Transforms)
	if err != nil {
		rec.Outcome, rec.Error, rec.Class = serve.OutcomeError, err.Error(), "usage"
		d.logRecord(rec)
		if sampled {
			d.ring.add(rec)
		}
		return response{ID: req.ID, Trace: traceID, Error: err.Error(), Class: "usage"}
	}
	switch req.Arbitration {
	case "", string(zipr.ArbitrationTwoWay), string(zipr.ArbitrationWeighted):
	default:
		msg := "unknown arbitration " + strconv.Quote(req.Arbitration)
		rec.Outcome, rec.Error, rec.Class = serve.OutcomeError, msg, "usage"
		d.logRecord(rec)
		if sampled {
			d.ring.add(rec)
		}
		return response{ID: req.ID, Trace: traceID, Error: msg, Class: "usage"}
	}
	if _, err := isa.ByName(req.ISA); err != nil {
		msg := err.Error()
		rec.Outcome, rec.Error, rec.Class = serve.OutcomeError, msg, "usage"
		d.logRecord(rec)
		if sampled {
			d.ring.add(rec)
		}
		return response{ID: req.ID, Trace: traceID, Error: msg, Class: "usage"}
	}
	tr := obs.New()
	cfg := zipr.Config{
		Transforms:  tfs,
		Layout:      zipr.LayoutKind(req.Layout),
		Arbitration: zipr.ArbitrationKind(req.Arbitration),
		ISA:         req.ISA,
		Seed:        req.Seed,
		Trace:       tr,
	}
	rec.ConfigSHA = shortDigest([]byte(cfg.Fingerprint()))
	out, rep, meta, err := d.s.RewriteMeta(ctx, req.Input, cfg)
	d.agg.AddTrace(tr)
	snap := tr.Snapshot()
	rec.Outcome = meta.Outcome
	rec.Tier = meta.Tier
	rec.QueueWaitNS = meta.QueueWait.Nanoseconds()
	rec.WallNS = meta.Wall.Nanoseconds()
	rec.Phases = phaseWalls(snap)
	if err != nil {
		rec.Error, rec.Class = err.Error(), zipr.ErrorClass(err)
		d.logRecord(rec)
		if sampled {
			rec.Spans = snap.Events()
			d.ring.add(rec)
		}
		return response{ID: req.ID, Trace: traceID, Error: err.Error(), Class: rec.Class}
	}
	rec.InputSize, rec.OutputSize = rep.InputSize, rep.OutputSize
	d.logRecord(rec)
	if sampled {
		rec.Spans = snap.Events()
		d.ring.add(rec)
	}
	return response{
		ID:         req.ID,
		Trace:      traceID,
		Output:     out,
		InputSize:  rep.InputSize,
		OutputSize: rep.OutputSize,
		Layout:     rep.Layout,
		Cached:     meta.Outcome == serve.OutcomeHit || meta.Outcome == serve.OutcomeShared,
		Delta:      meta.Outcome == serve.OutcomeDelta,
	}
}

// reqRing is a bounded, concurrency-safe ring of recent request
// records (newest first on List).
type reqRing struct {
	mu   sync.Mutex
	buf  []reqRecord
	next int
	n    int
}

func newReqRing(capacity int) *reqRing {
	return &reqRing{buf: make([]reqRecord, capacity)}
}

func (r *reqRing) add(rec reqRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// list returns the retained records, newest first.
func (r *reqRing) list() []reqRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]reqRecord, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// newHandler builds the daemon's HTTP interface: the rewrite API plus
// the telemetry surface (/metrics Prometheus exposition,
// /debug/requests sampled span trees, /debug/phases aggregated phase
// table, /debug/pprof/* profiling).
func newHandler(d *daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.s.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		d.reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d.ring.list())
	})
	mux.HandleFunc("/debug/phases", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		d.agg.WriteTable(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		input, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		req := request{
			Input:       input,
			Transforms:  q.Get("transforms"),
			Layout:      q.Get("layout"),
			Arbitration: q.Get("arbitration"),
			ISA:         q.Get("isa"),
			Trace:       r.Header.Get("X-Zipr-Trace"),
		}
		if v := q.Get("seed"); v != "" {
			if req.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad seed: "+v, http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("deadline_ms"); v != "" {
			if req.DeadlineMS, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad deadline_ms: "+v, http.StatusBadRequest)
				return
			}
		}
		resp := d.handle(r.Context(), req)
		w.Header().Set("X-Zipr-Trace", resp.Trace)
		if resp.Error != "" {
			http.Error(w, resp.Error, statusFor(resp.Class))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Zipr-Layout", resp.Layout)
		switch {
		case resp.Delta:
			w.Header().Set("X-Zipr-Cache", "delta")
		case resp.Cached:
			w.Header().Set("X-Zipr-Cache", "hit")
		default:
			w.Header().Set("X-Zipr-Cache", "miss")
		}
		w.Write(resp.Output)
	})
	return mux
}
