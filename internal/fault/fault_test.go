package fault

import (
	"strings"
	"sync"
	"testing"

	"zipr/internal/obs"
)

// A nil injector must be inert on every method.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	if inj.Enabled() || inj.Armed(AllocExhaust) || inj.Fires(AllocExhaust, 7) {
		t.Fatal("nil injector reported activity")
	}
	if inj.Pick(PinFlood, 1, 10) != 0 || inj.Seed() != 0 {
		t.Fatal("nil injector returned nonzero values")
	}
	if inj.WithTrace(obs.New()) != nil {
		t.Fatal("nil injector grew a trace")
	}
	if !strings.Contains(inj.Describe(), "disabled") {
		t.Fatalf("Describe = %q", inj.Describe())
	}
}

// Decisions must be a pure function of (seed, kind, site): two injectors
// with the same seed answer identically at every probed site, and
// repeated queries never flip.
func TestDecisionsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for k := Kind(0); k < numKinds; k++ {
		for site := uint32(0); site < 4096; site++ {
			if a.Fires(k, site) != b.Fires(k, site) {
				t.Fatalf("kind %v site %d: decision differs across instances", k, site)
			}
			if a.Fires(k, site) != a.Fires(k, site) {
				t.Fatalf("kind %v site %d: decision not idempotent", k, site)
			}
			if a.Pick(k, site, 7) != b.Pick(k, site, 7) {
				t.Fatalf("kind %v site %d: Pick differs", k, site)
			}
		}
	}
}

// Different seeds must produce different schedules (arming and sites).
func TestSeedsDiversify(t *testing.T) {
	armedSets := map[string]bool{}
	for seed := int64(1); seed <= 64; seed++ {
		armedSets[New(seed).Describe()] = true
	}
	if len(armedSets) < 8 {
		t.Fatalf("64 seeds produced only %d distinct schedules", len(armedSets))
	}
}

// NewArmed arms exactly the requested kinds.
func TestNewArmed(t *testing.T) {
	inj := NewArmed(5, EntryLost, AllocExhaust)
	if !inj.Armed(EntryLost) || !inj.Armed(AllocExhaust) {
		t.Fatal("requested kinds not armed")
	}
	for _, k := range []Kind{DisasmDisagree, DisasmTruncate, PinFlood, ChainUnsat, TransformMisuse, SectionCorrupt} {
		if inj.Armed(k) {
			t.Fatalf("kind %v armed without being requested", k)
		}
	}
	// A rate of 1<<16 means the kind fires at every site.
	for site := uint32(0); site < 64; site++ {
		if !inj.Fires(EntryLost, site) {
			t.Fatalf("always-fire kind missed at site %d", site)
		}
	}
}

// Armed per-site rates must land in the right ballpark so the chaos
// sweep gets its intended mix of degraded successes.
func TestFireRates(t *testing.T) {
	inj := NewArmed(9, AllocExhaust) // rate 1/8
	fired := 0
	const n = 1 << 16
	for site := uint32(0); site < n; site++ {
		if inj.Fires(AllocExhaust, site) {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.10 || got > 0.15 {
		t.Fatalf("alloc-exhaust fire rate = %.3f, want ~0.125", got)
	}
}

// Fires must be race-free with a trace attached: concurrent phases call
// it from worker goroutines.
func TestFiresConcurrent(t *testing.T) {
	tr := obs.New()
	inj := New(3).WithTrace(tr)
	var wg sync.WaitGroup
	results := make([][]bool, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]bool, 2048)
			for site := range out {
				out[site] = inj.Fires(PinFlood, uint32(site))
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for site := range results[0] {
			if results[w][site] != results[0][site] {
				t.Fatalf("worker %d disagrees at site %d", w, site)
			}
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// Firing with a trace attached must bump the kind's counter.
func TestFireCounters(t *testing.T) {
	tr := obs.New()
	inj := NewArmed(11, EntryLost).WithTrace(tr)
	for site := uint32(0); site < 10; site++ {
		inj.Fires(EntryLost, site)
	}
	snap := tr.Snapshot()
	if got := snap.Metrics.Counters["fault.entry-lost"]; got != 10 {
		t.Fatalf("fault.entry-lost counter = %d, want 10", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
