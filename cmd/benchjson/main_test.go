package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleRun = `goos: linux
goarch: amd64
pkg: zipr
cpu: Test CPU
BenchmarkPlaceLargeSynth-8   	       5	 227447474 ns/op	         6.545 speedup-x	42336416 B/op	  368387 allocs/op
BenchmarkRewriteNull-8       	      10	  12345678 ns/op	        55.00 MB/s
garbage line that is not a benchmark
PASS
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFoo-16   100   12345 ns/op   1.5 speedup-x   7 allocs/op")
	if !ok {
		t.Fatal("parseLine failed")
	}
	if r.Name != "BenchmarkFoo" || r.Iters != 100 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["ns/op"] != 12345 || r.Metrics["speedup-x"] != 1.5 || r.Metrics["allocs/op"] != 7 {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
	if _, ok := parseLine("BenchmarkBare"); ok {
		t.Fatal("fieldless line should not parse")
	}
}

func TestParseRun(t *testing.T) {
	rep, err := parseRun(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env.Goos != "linux" || rep.Env.CPU != "Test CPU" {
		t.Fatalf("env = %+v", rep.Env)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[0].Name != "BenchmarkPlaceLargeSynth" {
		t.Fatalf("name = %q", rep.Benchmarks[0].Name)
	}
}

func TestMergeAccumulatesTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	// First run: no existing file starts a one-run trajectory.
	if err := run(strings.NewReader(sampleRun), out, out); err != nil {
		t.Fatal(err)
	}
	// Second and third runs append.
	for i := 0; i < 2; i++ {
		if err := run(strings.NewReader(sampleRun), out, out); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 3 {
		t.Fatalf("trajectory has %d runs, want 3", len(traj.Runs))
	}
	for _, r := range traj.Runs {
		if len(r.Benchmarks) != 2 || r.Env.Goos != "linux" {
			t.Fatalf("run = %+v", r)
		}
	}
}

func TestMergeWrapsOldSingleRunFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	old := `{"env":{"goos":"linux","cpu":"Old CPU"},"benchmarks":[{"name":"BenchmarkRewriteNull","iters":3,"metrics":{"ns/op":999}}]}`
	if err := os.WriteFile(out, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleRun), out, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("trajectory has %d runs, want 2 (wrapped old + new)", len(traj.Runs))
	}
	if traj.Runs[0].Env.CPU != "Old CPU" || traj.Runs[0].Benchmarks[0].Metrics["ns/op"] != 999 {
		t.Fatalf("old run not preserved: %+v", traj.Runs[0])
	}
	if traj.Runs[1].Benchmarks[0].Name != "BenchmarkPlaceLargeSynth" {
		t.Fatalf("new run wrong: %+v", traj.Runs[1])
	}
}

// TestMergeMissingFileStartsFresh: merging into a path that does not
// exist yet must start a one-run trajectory, not error.
func TestMergeMissingFileStartsFresh(t *testing.T) {
	out := filepath.Join(t.TempDir(), "does-not-exist-yet.json")
	if err := run(strings.NewReader(sampleRun), out, out); err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if len(traj.Runs) != 1 {
		t.Fatalf("trajectory has %d runs, want 1", len(traj.Runs))
	}
}

// TestMergeEmptyFileStartsFresh: an empty or whitespace-only merge file
// (a CI cache can `touch` the artifact into existence) is a fresh
// trajectory, not corruption.
func TestMergeEmptyFileStartsFresh(t *testing.T) {
	for _, content := range []string{"", "  \n\t\n"} {
		out := filepath.Join(t.TempDir(), "bench.json")
		if err := os.WriteFile(out, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(strings.NewReader(sampleRun), out, out); err != nil {
			t.Fatalf("merge into %q file: %v", content, err)
		}
		var traj Trajectory
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &traj); err != nil {
			t.Fatal(err)
		}
		if len(traj.Runs) != 1 {
			t.Fatalf("trajectory has %d runs, want 1", len(traj.Runs))
		}
	}
}

// TestMergeCorruptFilePreservesBytes: a merge into an unparseable file
// must error BEFORE touching the output path — the prior bytes are the
// only copy of the trajectory and must survive the failed run.
func TestMergeCorruptFilePreservesBytes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	corrupt := []byte(`{"runs": [{"env":` + "\x00 not json")
	if err := os.WriteFile(out, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(strings.NewReader(sampleRun), out, out)
	if err == nil {
		t.Fatal("merging into a corrupt file succeeded")
	}
	data, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.Contains(string(data), "not json") || len(data) != len(corrupt) {
		t.Fatalf("corrupt file was modified by the failed merge: %q", data)
	}
	// The failed run must not leave temp droppings next to the artifact.
	entries, derr := os.ReadDir(filepath.Dir(out))
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after failed merge: %v", entries)
	}
}

func TestNoMergeWritesSingleRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(sampleRun), "", out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestMergeRejectsSchemaMismatch: a trajectory written by a different
// (newer or unknown) schema version must be rejected with a clear
// error, never silently merged — and the file must be left untouched.
func TestMergeRejectsSchemaMismatch(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	foreign := `{"schema": 99, "runs": [{"env":{"goos":"linux"},"benchmarks":[]}]}`
	if err := os.WriteFile(out, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(strings.NewReader(sampleRun), out, out)
	if err == nil {
		t.Fatal("schema 99 merged without error")
	}
	for _, want := range []string{"schema version 99", "version 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != foreign {
		t.Fatalf("mismatching file was modified: %s", data)
	}
}

// TestMergeStampsAndAcceptsCurrentSchema: merges stamp the current
// schema version, and re-merging a stamped file keeps working.
func TestMergeStampsAndAcceptsCurrentSchema(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	for i := 0; i < 2; i++ {
		if err := run(strings.NewReader(sampleRun), out, out); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaVersion {
		t.Fatalf("written schema = %d, want %d", traj.Schema, schemaVersion)
	}
	if len(traj.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(traj.Runs))
	}
}

// TestMergeUpgradesLegacyUnversionedTrajectory: a pre-versioning
// trajectory (no schema field) is implicit version 1 and upgrades in
// place rather than being rejected.
func TestMergeUpgradesLegacyUnversionedTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	legacy := `{"runs": [{"env":{"goos":"linux","cpu":"Legacy"},"benchmarks":[]}]}`
	if err := os.WriteFile(out, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleRun), out, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	if traj.Schema != schemaVersion || len(traj.Runs) != 2 {
		t.Fatalf("schema %d runs %d, want %d and 2", traj.Schema, len(traj.Runs), schemaVersion)
	}
	if traj.Runs[0].Env.CPU != "Legacy" {
		t.Fatalf("legacy run not preserved: %+v", traj.Runs[0])
	}
}

// compareFixture writes a two-run trajectory: the older run lacks the
// delta benchmark (predates it), the newest carries a 10x pair.
func compareFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	traj := Trajectory{Schema: schemaVersion, Runs: []Report{
		{Benchmarks: []Result{
			{Name: "BenchmarkRewriteFull", Iters: 3, Metrics: map[string]float64{"ns/op": 9e8}},
		}},
		{Benchmarks: []Result{
			{Name: "BenchmarkRewriteFull", Iters: 3, Metrics: map[string]float64{"ns/op": 5e8, "pins": 8364}},
			{Name: "BenchmarkRewriteDelta", Iters: 100, Metrics: map[string]float64{"ns/op": 5e7, "pins": 8281}},
		}},
	}}
	data, err := json.Marshal(traj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestComparePassesAboveFloor(t *testing.T) {
	path := compareFixture(t)
	var out strings.Builder
	if err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteDelta", "ns/op", 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "10.00x speedup") {
		t.Fatalf("compare output = %q, want 10.00x speedup", out.String())
	}
}

func TestCompareFailsBelowFloor(t *testing.T) {
	path := compareFixture(t)
	var out strings.Builder
	err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteDelta", "ns/op", 20)
	if err == nil || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("err = %v, want below-floor failure", err)
	}
}

func TestCompareSkipsRunsMissingABenchmark(t *testing.T) {
	// Reverse the fixture so the NEWEST run lacks the delta benchmark:
	// the scan must fall back to the older run that has both.
	path := compareFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	traj.Runs[0], traj.Runs[1] = traj.Runs[1], traj.Runs[0]
	data, _ = json.Marshal(traj)
	os.WriteFile(path, data, 0o644)
	var out strings.Builder
	if err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteDelta", "ns/op", 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "10.00x") {
		t.Fatalf("compare output = %q, want the run holding both", out.String())
	}
}

func TestCompareCustomMetric(t *testing.T) {
	path := compareFixture(t)
	var out strings.Builder
	// 8364/8281 = 1.0100x: passes a 1.0001 floor, fails a 1.02 floor.
	if err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteDelta", "pins", 1.0001); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pins ratio") {
		t.Fatalf("compare output = %q, want a pins ratio line", out.String())
	}
	err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteDelta", "pins", 1.02)
	if err == nil || !strings.Contains(err.Error(), "below the") {
		t.Fatalf("err = %v, want below-floor failure", err)
	}
	// The older run has no pins metric at all: selecting it must error,
	// not divide zeros.
	if err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkRewriteFull", "watts", 0); err == nil {
		t.Fatal("missing metric accepted")
	}
}

func TestCompareErrors(t *testing.T) {
	path := compareFixture(t)
	var out strings.Builder
	if err := runCompare(&out, path, "BenchmarkRewriteFull", "ns/op", 0); err == nil {
		t.Fatal("malformed pair accepted")
	}
	if err := runCompare(&out, path, "BenchmarkRewriteFull,BenchmarkNope", "ns/op", 0); err == nil {
		t.Fatal("missing benchmark accepted")
	}
	if err := runCompare(&out, filepath.Join(t.TempDir(), "gone.json"), "A,B", "ns/op", 0); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}
