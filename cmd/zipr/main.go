// Command zipr statically rewrites a ZELF binary or shared library.
//
// Usage:
//
//	zipr [-transforms null,cfi,stackpad,canary] [-layout optimized|diversity]
//	     [-seed N] [-pad N] [-stats] [-sql "SELECT ..."] input.zelf output.zelf
//
// The -sql flag runs a query against the captured IR database after
// construction (tables: instructions, functions, fixed_ranges,
// warnings) and prints the rows, which is handy for inspecting what the
// analysis concluded about a binary.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"zipr"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// verifyPair runs the original and rewritten images on the same input
// and compares their transcripts — the paper's functionality oracle as a
// command-line check.
func verifyPair(origImage, newImage []byte, inputPath string) (string, error) {
	input, err := os.ReadFile(inputPath)
	if err != nil {
		return "", err
	}
	runOne := func(image []byte) (vm.Result, error) {
		bin, err := binfmt.Unmarshal(image)
		if err != nil {
			return vm.Result{}, err
		}
		m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(500_000_000))
		if err := loader.Load(m, bin, nil); err != nil {
			return vm.Result{}, err
		}
		return m.Run()
	}
	want, err1 := runOne(origImage)
	got, err2 := runOne(newImage)
	switch {
	case err1 != nil:
		return "", fmt.Errorf("verify: original binary failed: %w", err1)
	case err2 != nil:
		return "", fmt.Errorf("verify: rewritten binary failed: %w", err2)
	case want.ExitCode != got.ExitCode:
		return "", fmt.Errorf("verify: exit codes differ: %d vs %d", want.ExitCode, got.ExitCode)
	case !bytes.Equal(want.Output, got.Output):
		return "", fmt.Errorf("verify: transcripts differ (%d vs %d bytes)", len(want.Output), len(got.Output))
	}
	return fmt.Sprintf("verify: transcripts identical (exit %d, %d output bytes, %d vs %d instructions)",
		want.ExitCode, len(want.Output), want.Steps, got.Steps), nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipr:", err)
		os.Exit(1)
	}
}

func run() error {
	transforms := flag.String("transforms", "null", "comma-separated: null,cfi,stackpad,canary")
	layoutFlag := flag.String("layout", "optimized", "optimized | diversity")
	seed := flag.Int64("seed", 1, "diversity layout seed")
	pad := flag.Int("pad", 64, "stackpad padding bytes")
	stats := flag.Bool("stats", false, "print reassembly statistics")
	warns := flag.Bool("warnings", false, "print analysis warnings")
	sql := flag.String("sql", "", "run an SQL query against the captured IR")
	mapOut := flag.String("map", "", "write an original->rewritten address map to this file")
	verify := flag.String("verify-input", "", "run original and rewritten binaries on this input file and compare transcripts")
	flag.Parse()

	if flag.NArg() != 2 {
		return fmt.Errorf("usage: zipr [flags] input.zelf output.zelf")
	}
	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	var tfs []zipr.Transform
	for _, name := range strings.Split(*transforms, ",") {
		switch strings.TrimSpace(name) {
		case "", "null":
			tfs = append(tfs, zipr.Null())
		case "cfi":
			tfs = append(tfs, zipr.CFI())
		case "stackpad":
			tfs = append(tfs, zipr.StackPad(int32(*pad)))
		case "canary":
			tfs = append(tfs, zipr.Canary(0))
		case "pin-blocks":
			tfs = append(tfs, zipr.PinBlocks())
		default:
			return fmt.Errorf("unknown transform %q", name)
		}
	}
	cfg := zipr.Config{
		Transforms: tfs,
		Layout:     zipr.LayoutKind(*layoutFlag),
		Seed:       *seed,
		CaptureIR:  *sql != "",
		EmitMap:    *mapOut != "",
	}
	out, report, err := zipr.Rewrite(input, cfg)
	if err != nil {
		return err
	}
	if err := os.WriteFile(flag.Arg(1), out, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (%+.2f%%), layout %s\n",
		flag.Arg(1), report.InputSize, report.OutputSize,
		report.SizeOverhead()*100, report.Layout)
	if *stats {
		s := report.Stats
		fmt.Printf("pins %d (inline %d, 5-byte %d, 2-byte %d, chains %d, sleds %d/%d entries)\n",
			s.Pinned, s.InlinePins, s.Stubs5, s.Stubs2, s.Chains, s.Sleds, s.SledEntries)
		fmt.Printf("dollops %d (splits %d), overflow %d bytes, text growth %d, free left %d\n",
			s.Dollops, s.Splits, s.OverflowUsed, s.TextGrowth, s.FreeLeft)
	}
	if *warns {
		for _, w := range report.Warnings {
			fmt.Println("warning:", w)
		}
	}
	if *verify != "" {
		verdict, err := verifyPair(input, out, *verify)
		if err != nil {
			return err
		}
		fmt.Println(verdict)
	}
	if *mapOut != "" {
		addrs := make([]uint32, 0, len(report.AddrMap))
		for a := range report.AddrMap {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		var sb strings.Builder
		for _, a := range addrs {
			fmt.Fprintf(&sb, "%#08x %#08x\n", a, report.AddrMap[a])
		}
		if err := os.WriteFile(*mapOut, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d mappings\n", *mapOut, len(addrs))
	}
	if *sql != "" {
		res, err := report.IRDB.Exec(*sql)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			keys := make([]string, 0, len(row))
			for k := range row {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%v", k, row[k]))
			}
			fmt.Println(strings.Join(parts, " "))
		}
		if res.Affected > 0 {
			fmt.Printf("(%d rows affected)\n", res.Affected)
		}
	}
	return nil
}
