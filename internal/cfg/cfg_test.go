package cfg

import (
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/disasm"
	"zipr/internal/ir"
	"zipr/internal/isa"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	agg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatalf("disassemble: %v", err)
	}
	p, err := Build(bin, agg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestEntryPinnedAndLinked(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    movi r2, 1
    jmp done
    movi r2, 2
done:
    movi r0, 1
    movi r1, 0
    syscall
`)
	if p.Entry == nil || !p.Entry.Pinned {
		t.Fatal("entry missing or not pinned")
	}
	// Find the jmp and check its logical link.
	var jmp *ir.Instruction
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpJmp32 {
			jmp = n
		}
	}
	if jmp == nil {
		t.Fatal("no jmp node")
	}
	if jmp.Target == nil {
		t.Fatal("jmp has no logical target")
	}
	if jmp.Target.OrigAddr == 0 || jmp.Target.Inst.Op != isa.OpMovI {
		t.Fatalf("jmp target = %s", jmp.Target)
	}
	if jmp.Fallthrough != nil {
		t.Fatal("jmp must not have a fallthrough")
	}
	// Straight-line fallthroughs linked.
	if p.Entry.Fallthrough == nil {
		t.Fatal("entry missing fallthrough")
	}
}

func TestDataPointerPinsJumpTableTargets(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    movi r4, tab
    load r4, [r4+4]
    jmpr r4
c0: movi r1, 0
    jmp done
c1: movi r1, 1
    jmp done
done:
    movi r0, 1
    syscall
.data 0x00200000
tab: .word c0, c1
`)
	pins := p.PinnedInsts()
	// Entry + c0 + c1 pinned (c0/c1 via the data scan).
	if len(pins) < 3 {
		t.Fatalf("pins = %d, want >= 3", len(pins))
	}
	var c0, c1 bool
	for _, n := range pins {
		if n.Inst.Op == isa.OpMovI && n.Inst.Imm == 0 && n != p.Entry {
			c0 = true
		}
		if n.Inst.Op == isa.OpMovI && n.Inst.Imm == 1 {
			c1 = true
		}
	}
	if !c0 || !c1 {
		t.Fatalf("jump-table targets not pinned (c0=%v c1=%v)", c0, c1)
	}
}

func TestImmediatePinning(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    movi r4, target    ; absolute immediate naming code
    callr r4
    movi r0, 1
    movi r1, 0
    syscall
target:
    ret
`)
	found := false
	for _, n := range p.PinnedInsts() {
		if n.Inst.Op == isa.OpRet {
			found = true
		}
	}
	if !found {
		t.Fatal("movi-immediate code pointer target not pinned")
	}
	// The movi itself must NOT have a Target link (value must stay).
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpMovI && n.Target != nil {
			t.Fatal("movi immediates must not be rewritten")
		}
	}
}

func TestLeaMaterializesCodeAddress(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    lea r4, target
    callr r4
    movi r0, 1
    movi r1, 0
    syscall
target:
    ret
`)
	var lea *ir.Instruction
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpLea {
			lea = n
		}
	}
	if lea == nil || lea.Target == nil {
		t.Fatal("lea to code must get a logical Target")
	}
	if lea.Target.Inst.Op != isa.OpRet {
		t.Fatalf("lea target = %s", lea.Target)
	}
}

func TestLeaToDataKeepsAbsolute(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    lea r4, buf
    movi r0, 1
    movi r1, 0
    syscall
.data 0x00200000
buf: .space 8
`)
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpLea {
			if n.Target != nil || n.AbsTarget != 0x00200000 {
				t.Fatalf("lea to data: target=%v abs=%#x", n.Target, n.AbsTarget)
			}
			return
		}
	}
	t.Fatal("no lea found")
}

func TestExportsPinnedAndNamed(t *testing.T) {
	p := build(t, `
.type lib
.text 0x00700000
api_a:
    ret
api_b:
    movi r1, 2
    ret
.export libfn = api_b
.export entry0 = api_a
`)
	pins := p.PinnedInsts()
	if len(pins) != 2 {
		t.Fatalf("pins = %d, want 2", len(pins))
	}
	names := map[string]bool{}
	for _, f := range p.Functions {
		names[f.Name] = true
	}
	if !names["libfn"] || !names["entry0"] {
		t.Fatalf("function names = %v", names)
	}
}

func TestFunctionsPartition(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    call helper
    movi r0, 1
    movi r1, 0
    syscall
helper:
    movi r2, 5
    ret
`)
	if len(p.Functions) != 2 {
		t.Fatalf("functions = %d, want 2", len(p.Functions))
	}
	var mainFn, helperFn *ir.Function
	for _, f := range p.Functions {
		switch f.Name {
		case "main":
			mainFn = f
		default:
			helperFn = f
		}
	}
	if mainFn == nil || helperFn == nil {
		t.Fatalf("missing functions: %+v", p.Functions)
	}
	if len(mainFn.Insts) != 4 {
		t.Fatalf("main insts = %d, want 4", len(mainFn.Insts))
	}
	if len(helperFn.Insts) != 2 {
		t.Fatalf("helper insts = %d, want 2", len(helperFn.Insts))
	}
	if !strings.HasPrefix(helperFn.Name, "sub_") {
		t.Fatalf("helper name = %q", helperFn.Name)
	}
}

func TestLoadPCFromCodeForcesFixedRange(t *testing.T) {
	// Hand-build a binary where reached code loadpc-reads other reached
	// code (pathological, paper case 2).
	var code []byte
	app := func(in isa.Inst) {
		code = append(code, isa.MustEncode(in)...)
	}
	app(isa.Inst{Op: isa.OpLoadPC, Rd: 2, Imm: 0}) // reads the next instruction's bytes
	app(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	app(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 0})
	app(isa.Inst{Op: isa.OpSyscall})
	bin := &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x00100000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x00100000, Data: code},
		},
	}
	agg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(bin, agg)
	if err != nil {
		t.Fatal(err)
	}
	// The 4 bytes at 0x00100006 must now be fixed.
	found := false
	for _, r := range p.Fixed {
		if r.Contains(0x00100006) {
			found = true
		}
	}
	if !found {
		t.Fatalf("loadpc-read code bytes not fixed: %+v", p.Fixed)
	}
	if len(p.Warnings) == 0 {
		t.Fatal("expected a warning")
	}
}

func TestAmbiguousRegionBranchTargetsPinned(t *testing.T) {
	// Unreached-but-decodable region contains a jmp into real code; the
	// target must be pinned.
	var code []byte
	app := func(in isa.Inst) { code = append(code, isa.MustEncode(in)...) }
	app(isa.Inst{Op: isa.OpJmp32, Imm: 5})   // entry jumps over the blob
	app(isa.Inst{Op: isa.OpJmp32, Imm: -10}) // unreached: branches back to entry
	app(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	app(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 0})
	app(isa.Inst{Op: isa.OpSyscall})
	bin := &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x00100000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x00100000, Data: code},
		},
	}
	agg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(bin, agg)
	if err != nil {
		t.Fatal(err)
	}
	// The ambiguous jmp at +5 targets 0x00100000 (entry, already pinned)
	// — construct expectation dynamically: target = 5+5-10 = 0.
	if n := p.ByAddr[0x00100000]; n == nil || !n.Pinned {
		t.Fatal("ambiguous-region branch target not pinned")
	}
}

func TestEntryNotDecodedError(t *testing.T) {
	bin := &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x00100000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x00100000, Data: []byte{0x00, 0x00}},
		},
	}
	agg, err := disasm.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(bin, agg); err == nil {
		t.Fatal("expected error for undecodable entry")
	}
}

func TestCallKeepsFallthrough(t *testing.T) {
	p := build(t, `
.text 0x00100000
main:
    call f
    movi r0, 1
    movi r1, 0
    syscall
f:  ret
`)
	var call *ir.Instruction
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpCall {
			call = n
		}
	}
	if call == nil || call.Fallthrough == nil || call.Target == nil {
		t.Fatal("call must have both fallthrough and target")
	}
}
