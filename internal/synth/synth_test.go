package synth

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

func run(t *testing.T, bin *binfmt.Binary, libs map[string]*binfmt.Binary, input []byte) vm.Result {
	t.Helper()
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(20_000_000))
	if err := loader.Load(m, bin, libs); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestGeneratedProgramRunsDeterministically(t *testing.T) {
	seed, p := CBProfile(0)
	bin, err := Build(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, p.InputLen)
	for i := range input {
		input[i] = byte(i * 7)
	}
	r1 := run(t, bin, nil, input)
	r2 := run(t, bin, nil, input)
	if r1.ExitCode != r2.ExitCode || !bytes.Equal(r1.Output, r2.Output) {
		t.Fatal("generated program is nondeterministic")
	}
	if len(r1.Output) != 8 {
		t.Fatalf("output length = %d, want 8", len(r1.Output))
	}
	if r1.Steps < 1000 {
		t.Fatalf("suspiciously little work: %d steps", r1.Steps)
	}
}

func TestGeneratedProgramsVaryWithInput(t *testing.T) {
	seed, p := CBProfile(3)
	bin, err := Build(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	a := run(t, bin, nil, bytes.Repeat([]byte{1}, p.InputLen))
	b := run(t, bin, nil, bytes.Repeat([]byte{2}, p.InputLen))
	if bytes.Equal(a.Output, b.Output) {
		t.Fatal("different inputs produced identical outputs")
	}
}

func TestCorpusBuildsAndRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus build is slow")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < CorpusSize; i += 7 { // sample the corpus
		seed, p := CBProfile(i)
		bin, err := Build(seed, p)
		if err != nil {
			t.Fatalf("cb%d: %v", i, err)
		}
		input := make([]byte, p.InputLen)
		rng.Read(input)
		res := run(t, bin, nil, input)
		if res.Steps == 0 {
			t.Fatalf("cb%d did not execute", i)
		}
	}
}

func TestPathologicalProfileShape(t *testing.T) {
	seed, p := CBProfile(PathologicalCB)
	if !p.BigDollops {
		t.Fatal("pathological CB must have big dollops")
	}
	bin, err := Build(seed, p)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, bin, nil, make([]byte, p.InputLen))
	if res.Steps == 0 {
		t.Fatal("pathological CB did not run")
	}
}

func TestLibraryAndTestDriver(t *testing.T) {
	lib, err := Build(7, LibcProfile(0.01)) // tiny scaled libc
	if err != nil {
		t.Fatal(err)
	}
	if lib.Type != binfmt.Lib || len(lib.Exports) == 0 {
		t.Fatalf("library shape wrong: type=%d exports=%d", lib.Type, len(lib.Exports))
	}
	drv, err := Build(8, TestDriverProfile("slibc", []int{0, 3, 6}))
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, drv, map[string]*binfmt.Binary{"slibc": lib}, []byte("unit-test-input!"))
	if res.Steps == 0 {
		t.Fatal("driver did not run")
	}
}

func TestApacheProfilesLink(t *testing.T) {
	exeP, libPs := ApacheProfiles(0.05)
	libs := map[string]*binfmt.Binary{}
	for i, lp := range libPs {
		lib, err := Build(int64(100+i), lp)
		if err != nil {
			t.Fatal(err)
		}
		libs[lp.LibName] = lib
	}
	exe, err := Build(99, exeP)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, exe, libs, []byte("GET /index.html HTTP/1.0\r\n\r\n"))
	if res.Steps == 0 {
		t.Fatal("apache-like stack did not run")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	seed, p := CBProfile(5)
	if Generate(seed, p) != Generate(seed, p) {
		t.Fatal("Generate not deterministic")
	}
	if Generate(seed, p) == Generate(seed+1, p) {
		t.Fatal("seed has no effect")
	}
}

func TestHandwrittenConstructsPresent(t *testing.T) {
	src := Generate(1, Profile{Name: "hw", NumFuncs: 8, HandwrittenFrac: 1.0})
	for _, construct := range []string{"loadpc", "jmpr", ".asciz", ".word", "lea"} {
		if !strings.Contains(src, construct) {
			t.Errorf("handwritten source missing %q", construct)
		}
	}
}

func TestStackDepthBounded(t *testing.T) {
	// Even a large program must stay within the VM stack.
	bin, err := Build(3, Profile{Name: "deep", NumFuncs: 400, OpsMin: 6, OpsMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, bin, nil, bytes.Repeat([]byte{0xFF}, 16))
	if res.Steps == 0 {
		t.Fatal("deep program did not run")
	}
}
