// Package par provides the pipeline's deterministic fan-out helpers:
// bounded worker pools whose results merge in input order, so a parallel
// run is byte-for-byte indistinguishable from a serial one.
//
// Two shapes cover every use in the rewriter:
//
//   - Chunks splits an index range into at most `workers` contiguous
//     chunks and runs them concurrently. Callers collect per-chunk
//     output into a slice indexed by chunk number and concatenate in
//     chunk order, which reproduces the serial iteration order exactly.
//   - Each runs one task per index on a claiming pool (good when task
//     costs are uneven, e.g. whole-binary rewrites); results are written
//     to per-index slots and the first error *by index* is returned,
//     matching what a serial loop would have reported.
//
// Neither helper spawns goroutines when one worker suffices, so the
// serial path stays allocation-free.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested worker count to [1, n]; requested <= 0
// selects runtime.GOMAXPROCS(0) (the -j default).
func Workers(requested, n int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// ScaledWorkers picks a worker count for n items of roughly uniform,
// small cost: one worker per minPerWorker items, capped at GOMAXPROCS.
// It returns 1 when the work is too small to be worth goroutines.
func ScaledWorkers(n, minPerWorker int) int {
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	return Workers(n/minPerWorker, n)
}

// Chunks partitions [0, n) into at most `workers` contiguous chunks and
// calls fn(chunk, lo, hi) for each, concurrently when workers > 1.
// Chunk indices are dense, start at 0, and ascend with lo, so output
// gathered per chunk and concatenated in chunk order equals the serial
// order. fn must only write state owned by its own chunk. Returns the
// number of chunks used (always <= max(workers, 1)).
func Chunks(workers, n int, fn func(chunk, lo, hi int)) int {
	workers = Workers(workers, n)
	if n == 0 {
		return 0
	}
	if workers == 1 {
		fn(0, 0, n)
		return 1
	}
	size := (n + workers - 1) / workers
	chunks := (n + size - 1) / size
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	return chunks
}

// Each runs fn(i) for every i in [0, n) on a pool of `workers`
// goroutines claiming indices in order. Once any task fails, unclaimed
// indices are skipped (in-flight tasks finish); the error returned is
// the one with the lowest index, which — for deterministic tasks — is
// the same error a serial loop would have stopped at. fn must write
// only per-index state (e.g. results[i]).
func Each(workers, n int, fn func(i int) error) error {
	workers = Workers(workers, n)
	if n == 0 {
		return nil
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
