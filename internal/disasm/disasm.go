// Package disasm disassembles ZVM-32 binaries with two independent
// strategies — a linear sweep (objdump-like) and a recursive traversal
// (IDA-like) — and aggregates their output using the paper's four-case
// code/data disambiguation policy:
//
//  1. Both agree a byte range is code reached from known entries: the
//     range is relocatable code.
//  2. A range is conclusively data (it does not decode): it is fixed at
//     its original address.
//  3. A range is ambiguous (it decodes but is not provably reached):
//     it is treated as *both* code and data — the bytes stay fixed at
//     their original address and the decoded instructions are also fed
//     to CFG construction so their branch targets get pinned.
//  4. A range labeled code actually holds data: this cannot always be
//     detected; the aggregation stays conservative (case 3) whenever
//     there is any disagreement, and emits warnings to aid debugging.
package disasm

import (
	"encoding/binary"
	"fmt"

	"zipr/internal/binfmt"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/obs"
)

// Class classifies one byte of the text segment.
type Class uint8

// Byte classifications.
const (
	Unknown Class = iota // not reached / not decoded
	Code                 // part of a provably reached instruction
	Data                 // conclusively data (does not decode)
	Ambig                // decodes, but not provably reached: code AND data
)

// Result is the output of a single disassembler.
type Result struct {
	// Insts maps instruction start addresses to decoded instructions.
	Insts map[uint32]isa.Inst
	// Weak maps addresses decoded only from address-shaped hints (lea
	// targets, immediates that look like code pointers). Such bytes
	// might be data — a jump table is indistinguishable from code at a
	// lea target — so they are never relocated: the aggregator treats
	// them as code AND data (paper case 3), and CFG construction uses
	// their decodes only to pin targets conservatively.
	Weak map[uint32]isa.Inst
	// Classes classifies every byte of text (indexed from text base).
	Classes []Class
}

// LinearSweep decodes text from its first byte onward, resynchronizing
// one byte at a time after undecodable bytes, the way objdump -D works.
func LinearSweep(text []byte, base uint32) Result {
	res := Result{
		Insts:   make(map[uint32]isa.Inst),
		Classes: make([]Class, len(text)),
	}
	off := 0
	for off < len(text) {
		in, err := isa.Decode(text[off:])
		if err != nil {
			res.Classes[off] = Data
			off++
			continue
		}
		res.Insts[base+uint32(off)] = in
		for i := 0; i < in.Len(); i++ {
			res.Classes[off+i] = Code
		}
		off += in.Len()
	}
	return res
}

// RecursiveTraversal follows control flow from every known entry point.
// It distinguishes two tiers of confidence:
//
//   - Strong seeds — the program entry, exported symbols, and code
//     pointers discovered by scanning data segments — plus everything
//     reachable from them through fallthroughs and direct branches, are
//     relocatable code (Result.Insts).
//   - Weak seeds — lea targets and address-shaped absolute immediates —
//     plus their flow, are decoded into Result.Weak but NOT classified
//     as code: a lea may just as well name a jump table or other data
//     embedded in text, and mislabeling data as relocatable code is the
//     one unrecoverable failure mode (paper case 4). Weak bytes stay at
//     their original addresses.
func RecursiveTraversal(bin *binfmt.Binary) Result {
	text := bin.Text()
	res := Result{
		Insts:   make(map[uint32]isa.Inst),
		Weak:    make(map[uint32]isa.Inst),
		Classes: make([]Class, len(text.Data)),
	}
	inText := func(a uint32) bool { return text.Contains(a) }

	var strong, weak []uint32
	seedStrong := func(a uint32) {
		if inText(a) {
			strong = append(strong, a)
		}
	}
	seedWeak := func(a uint32) {
		if inText(a) {
			weak = append(weak, a)
		}
	}
	if bin.Type == binfmt.Exec {
		seedStrong(bin.Entry)
	}
	for _, e := range bin.Exports {
		seedStrong(e.Addr)
	}
	// Data scan: aligned words in data segments pointing into text are
	// function pointers and jump-table slots — strong, since indirect
	// control flow lands exactly on them.
	for si := range bin.Segments {
		seg := &bin.Segments[si]
		if seg.Kind != binfmt.Data {
			continue
		}
		for off := 0; off+4 <= len(seg.Data); off += 4 {
			v := binary.LittleEndian.Uint32(seg.Data[off:])
			seedStrong(v)
		}
	}

	// visit decodes one address, recording flow into the given tier's
	// worklist; weak traversal never overrides strong coverage.
	visitedStrong := make(map[uint32]bool)
	visitedWeak := make(map[uint32]bool)
	step := func(addr uint32, isStrong bool) {
		off := addr - text.VAddr
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			return // a supposed entry that does not decode: leave unknown
		}
		flow := seedWeak
		if isStrong {
			res.Insts[addr] = in
			for i := 0; i < in.Len(); i++ {
				res.Classes[int(off)+i] = Code
			}
			flow = seedStrong
		} else {
			res.Weak[addr] = in
		}
		if in.HasFallthrough() {
			flow(addr + uint32(in.Len()))
		}
		if t, ok := in.TargetAddr(addr); ok {
			switch in.Op {
			case isa.OpLea:
				seedWeak(t) // address formation: maybe code, maybe data
			case isa.OpLoadPC:
				// Data reference; not a code seed.
			default:
				flow(t)
			}
		}
		switch in.Op {
		case isa.OpMovI, isa.OpPushI32:
			seedWeak(uint32(in.Imm))
		}
	}
	for len(strong) > 0 {
		addr := strong[len(strong)-1]
		strong = strong[:len(strong)-1]
		if visitedStrong[addr] || !inText(addr) {
			continue
		}
		visitedStrong[addr] = true
		step(addr, true)
	}
	for len(weak) > 0 {
		addr := weak[len(weak)-1]
		weak = weak[:len(weak)-1]
		if visitedWeak[addr] || visitedStrong[addr] || !inText(addr) {
			continue
		}
		visitedWeak[addr] = true
		step(addr, false)
	}
	return res
}

// Aggregated is the merged, conservative view consumed by CFG
// construction.
type Aggregated struct {
	// Insts holds the relocatable instructions (recursive-traversal
	// coverage), keyed by original address.
	Insts map[uint32]isa.Inst
	// AmbigInsts holds instructions decoded inside ambiguous (fixed)
	// ranges; CFG construction pins their direct branch targets.
	AmbigInsts map[uint32]isa.Inst
	// Fixed lists text ranges whose bytes must stay at their original
	// addresses (conclusive data plus ambiguous ranges).
	Fixed []ir.Range
	// Classes is the final per-byte classification.
	Classes []Class
	// Warnings lists conservative-fallback diagnostics (the paper's
	// case-4 warnings).
	Warnings []string
}

// Aggregate merges the two disassemblers' views per the four-case
// policy.
func Aggregate(bin *binfmt.Binary, linear, recursive Result) Aggregated {
	text := bin.Text()
	n := len(text.Data)
	agg := Aggregated{
		Insts:      recursive.Insts,
		AmbigInsts: make(map[uint32]isa.Inst),
		Classes:    make([]Class, n),
	}
	// Case 1: recursive coverage is authoritative code.
	copy(agg.Classes, recursive.Classes)

	// Remaining bytes: ambiguous if the linear sweep decoded them,
	// conclusive data otherwise.
	for i := 0; i < n; i++ {
		if agg.Classes[i] == Code {
			continue
		}
		if linear.Classes[i] == Code {
			agg.Classes[i] = Ambig
		} else {
			agg.Classes[i] = Data
		}
	}
	// Instructions whose linear decode starts inside a non-code byte are
	// candidates for "both" handling (case 3).
	for addr, in := range linear.Insts {
		off := addr - text.VAddr
		if agg.Classes[off] == Ambig {
			agg.AmbigInsts[addr] = in
			if in.IsDirectBranch() {
				agg.Warnings = append(agg.Warnings, fmt.Sprintf(
					"disasm: ambiguous bytes at %#x decode to %s; treating as code and data",
					addr, in.String()))
			}
		}
	}
	// Weak recursive decodes (lea targets and address immediates) join
	// the ambiguous set: they are plausible entry-aligned decodes, so
	// CFG construction should pin their targets, but their bytes stay
	// fixed in place. They also upgrade their bytes to Ambig so fixed
	// ranges cover them even where the linear sweep misaligned.
	for addr, in := range recursive.Weak {
		off := addr - text.VAddr
		if agg.Classes[off] == Code {
			continue
		}
		agg.AmbigInsts[addr] = in
		for i := 0; i < in.Len() && int(off)+i < n; i++ {
			if agg.Classes[int(off)+i] != Code {
				agg.Classes[int(off)+i] = Ambig
			}
		}
	}
	// Fixed ranges: maximal runs of Data/Ambig bytes.
	var fixed []ir.Range
	i := 0
	for i < n {
		if agg.Classes[i] == Code {
			i++
			continue
		}
		j := i
		for j < n && agg.Classes[j] != Code {
			j++
		}
		fixed = append(fixed, ir.Range{
			Start: text.VAddr + uint32(i),
			End:   text.VAddr + uint32(j),
		})
		i = j
	}
	agg.Fixed = ir.MergeRanges(fixed)
	return agg
}

// Disassemble runs both disassemblers on bin and aggregates the result.
func Disassemble(bin *binfmt.Binary) (Aggregated, error) {
	return DisassembleTraced(bin, nil)
}

// DisassembleTraced is Disassemble with per-stage spans (linear sweep,
// recursive traversal, code/data disambiguation) and classification
// metrics emitted to tr; a nil trace disables instrumentation.
func DisassembleTraced(bin *binfmt.Binary, tr *obs.Trace) (Aggregated, error) {
	text := bin.Text()
	if text == nil {
		return Aggregated{}, fmt.Errorf("disasm: binary has no text segment")
	}
	sp := tr.Start("linear-sweep")
	lin := LinearSweep(text.Data, text.VAddr)
	sp.End()
	sp = tr.Start("recursive-traversal")
	rec := RecursiveTraversal(bin)
	sp.End()
	sp = tr.Start("disambiguate")
	agg := Aggregate(bin, lin, rec)
	sp.End()
	if tr.Enabled() {
		var code, data, ambig int64
		for _, c := range agg.Classes {
			switch c {
			case Code:
				code++
			case Data:
				data++
			case Ambig:
				ambig++
			}
		}
		tr.SetGauge("disasm.bytes.code", code)
		tr.SetGauge("disasm.bytes.data", data)
		tr.SetGauge("disasm.bytes.ambiguous", ambig)
		tr.Add("disasm.insts", int64(len(agg.Insts)))
		tr.Add("disasm.ambig-insts", int64(len(agg.AmbigInsts)))
		tr.Add("disasm.fixed-ranges", int64(len(agg.Fixed)))
		tr.Add("disasm.warnings", int64(len(agg.Warnings)))
	}
	return agg, nil
}
