package zipr

import (
	"bytes"
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// execute loads a binary (plus libs) and runs it on the given input.
func execute(t *testing.T, bin *binfmt.Binary, libs map[string]*binfmt.Binary, input string) (vm.Result, error) {
	t.Helper()
	m := vm.New(vm.WithStdin(strings.NewReader(input)), vm.WithMaxSteps(5_000_000))
	if err := loader.Load(m, bin, libs); err != nil {
		t.Fatalf("load: %v", err)
	}
	return m.Run()
}

// mustRun fails the test if execution faults.
func mustRun(t *testing.T, bin *binfmt.Binary, libs map[string]*binfmt.Binary, input string) vm.Result {
	t.Helper()
	res, err := execute(t, bin, libs, input)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// checkEquivalent rewrites src under every layout with the given
// transforms and asserts output/exit-code equivalence with the original
// on each input.
func checkEquivalent(t *testing.T, src string, transforms []Transform, inputs []string) {
	t.Helper()
	orig, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	for _, lay := range []LayoutKind{LayoutOptimized, LayoutDiversity} {
		rewritten, report, err := RewriteBinary(orig.Clone(), Config{
			Transforms: transforms, Layout: lay, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: rewrite: %v", lay, err)
		}
		for _, input := range inputs {
			want := mustRun(t, orig, nil, input)
			got := mustRun(t, rewritten, nil, input)
			if want.ExitCode != got.ExitCode {
				t.Errorf("%s input %q: exit %d != original %d (report %+v)",
					lay, input, got.ExitCode, want.ExitCode, report.Stats)
			}
			if !bytes.Equal(want.Output, got.Output) {
				t.Errorf("%s input %q: output %q != original %q",
					lay, input, got.Output, want.Output)
			}
		}
	}
}

// progSwitch exercises jump tables, indirect calls, data-in-text, and
// short branches — the analysis-sensitive constructs.
const progSwitch = `
.text 0x00100000
main:
    movi r0, 3          ; receive 1 byte selector
    movi r1, 0
    movi r2, inbuf
    movi r3, 1
    syscall
    movi r4, inbuf
    loadb r4, [r4]
    andi r4, 3          ; clamp to table size
    shli r4, 2
    movi r5, jumptab
    add r5, r4
    load r5, [r5]
    jmpr r5
case0:
    movi r6, 10
    jmp join
case1:
    movi r6, 20
    jmp join
case2:
    lea r7, helper      ; indirect call through lea
    callr r7
    mov r6, r1
    jmp join
case3:
    loadpc r6, konst    ; read embedded constant from text
    jmp join
join:
    mov r1, r6
    movi r0, 1
    syscall
helper:
    movi r1, 30
    ret
konst: .word 40
.data 0x00200000
jumptab: .word case0, case1, case2, case3
inbuf: .space 4
`

func TestNullTransformEquivalence(t *testing.T) {
	checkEquivalent(t, progSwitch, []Transform{Null()},
		[]string{"\x00", "\x01", "\x02", "\x03"})
}

func TestCFIEquivalenceOnBenignRuns(t *testing.T) {
	checkEquivalent(t, progSwitch, []Transform{CFI()},
		[]string{"\x00", "\x01", "\x02", "\x03"})
}

const progFrames = `
.text 0x00100000
main:
    movi r1, 6
    call fib
    movi r0, 1
    syscall             ; exit fib(6) = 8
fib:
    addi sp, -32        ; frame
    cmpi8 r1, 2
    jl fib_base
    store [sp+0], r1    ; spill n
    addi8 r1, -1
    call fib
    load r2, [sp+0]
    store [sp+4], r1    ; spill fib(n-1)
    mov r1, r2
    addi8 r1, -2
    call fib
    load r2, [sp+4]
    add r1, r2
    addi sp, 32
    ret
fib_base:
    movi r1, 1
    addi sp, 32
    ret
`

func TestRecursionEquivalence(t *testing.T) {
	checkEquivalent(t, progFrames, []Transform{Null()}, []string{""})
}

func TestStackPadEquivalence(t *testing.T) {
	checkEquivalent(t, progFrames, []Transform{StackPad(64)}, []string{""})
}

func TestCanaryEquivalence(t *testing.T) {
	checkEquivalent(t, progFrames, []Transform{Canary(0)}, []string{""})
}

func TestAllTransformsStackedEquivalence(t *testing.T) {
	checkEquivalent(t, progFrames,
		[]Transform{StackPad(32), Canary(0), CFI()}, []string{""})
}

func TestStackPadActuallyGrowsFrames(t *testing.T) {
	orig := asm.MustAssemble(progFrames)
	rewritten, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{StackPad(64)}})
	if err != nil {
		t.Fatal(err)
	}
	// fib(6)=8 still, but the rewritten binary must touch deeper stack:
	// compare stack page footprints indirectly via MaxRSS >=.
	want := mustRun(t, orig, nil, "")
	got := mustRun(t, rewritten, nil, "")
	if got.ExitCode != want.ExitCode {
		t.Fatalf("exit %d != %d", got.ExitCode, want.ExitCode)
	}
}

// progHijack contains a classic indirect-jump hijack: 9 input bytes
// overflow an 8-byte buffer, and the 9th byte overwrites the low byte of
// an adjacent function pointer in data, redirecting it into secret().
const progHijack = `
.text 0x00100000
main:
    movi r0, 3          ; receive attacker bytes
    movi r1, 0
    movi r2, buf
    movi r3, 12
    syscall
    movi r5, fptr
    load r5, [r5]
    callr r5            ; hijackable dispatch
    movi r0, 1
    syscall
benign:
    movi r1, 0
    ret
secret:
    movi r1, 42         ; "flag disclosure"
    ret
.data 0x00200000
buf: .space 8
fptr: .word benign
`

func TestCFIBlocksHijack(t *testing.T) {
	orig := asm.MustAssemble(progHijack)
	// The attack payload overwrites fptr's low byte so it points at
	// secret instead of benign. Compute the byte from the assembled
	// binary so the test tracks layout changes.
	benign, _ := orig.ExportAddr("x") // not exported; find via disasm below
	_ = benign
	// benign: after main's 6+6+6+6+1+6+7+2+6+1 bytes... simpler: secret
	// is 3 bytes (movi is 6 + ret 1 = 7) after benign; read fptr word and
	// add 7 to its low byte.
	d := orig.DataSeg()
	fptrOff := 8 // after buf
	origPtr := uint32(d.Data[fptrOff]) | uint32(d.Data[fptrOff+1])<<8 |
		uint32(d.Data[fptrOff+2])<<16 | uint32(d.Data[fptrOff+3])<<24
	secretPtr := origPtr + 7
	if secretPtr&0xFFFFFF00 != origPtr&0xFFFFFF00 {
		t.Fatal("test assumption broken: secret crosses a 256-byte boundary")
	}
	payload := string(make([]byte, 8)) + string([]byte{byte(secretPtr)})

	// Unprotected: the hijack "works" (leaks 42).
	res := mustRun(t, orig, nil, payload)
	if res.ExitCode != 42 {
		t.Fatalf("unprotected hijack exit = %d, want 42", res.ExitCode)
	}
	// Benign input still returns 0.
	res = mustRun(t, orig, nil, "")
	if res.ExitCode != 0 {
		t.Fatalf("benign exit = %d, want 0", res.ExitCode)
	}

	protected, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{CFI()}})
	if err != nil {
		t.Fatal(err)
	}
	// Benign behavior preserved.
	res = mustRun(t, protected, nil, "")
	if res.ExitCode != 0 {
		t.Fatalf("protected benign exit = %d, want 0", res.ExitCode)
	}
	// Attack: secret's *original* address is not a pinned target (only
	// benign's address appears in data), and its rewritten location is
	// never a legal indirect target either — CFI must terminate with the
	// violation code.
	res = mustRun(t, protected, nil, payload)
	if res.ExitCode != 139 {
		t.Fatalf("protected hijack exit = %d, want 139 (CFI violation)", res.ExitCode)
	}
}

func TestCanaryDetectsSmash(t *testing.T) {
	// A function writes past its frame when told to, trashing the canary.
	src := `
.text 0x00100000
main:
    movi r0, 3
    movi r1, 0
    movi r2, nbuf
    movi r3, 1
    syscall
    movi r4, nbuf
    loadb r4, [r4]       ; overflow length selector
    mov r1, r4
    call victim
    movi r0, 1
    movi r1, 0
    syscall
victim:
    addi sp, -16
    mov r2, sp           ; buffer base
    movi r3, 0xAA
vloop:
    cmpi8 r1, 0
    jle vdone
    storeb [r2], r3
    inc r2
    dec r1
    jmp vloop
vdone:
    addi sp, 16
    ret
.data 0x00200000
nbuf: .space 4
`
	orig := asm.MustAssemble(src)
	protected, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{Canary(0)}})
	if err != nil {
		t.Fatal(err)
	}
	// Benign: writes stay inside the 16-byte frame.
	res := mustRun(t, protected, nil, "\x10")
	if res.ExitCode != 0 {
		t.Fatalf("benign exit = %d, want 0", res.ExitCode)
	}
	// Overflow: 20 bytes trash the canary (which sits right above the
	// frame); the check must terminate the program.
	res = mustRun(t, protected, nil, "\x14")
	if res.ExitCode != 139 {
		t.Fatalf("smash exit = %d, want 139 (canary violation)", res.ExitCode)
	}
}

func TestDiversityChangesLayoutPreservesBehavior(t *testing.T) {
	orig := asm.MustAssemble(progSwitch)
	texts := map[string]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		rw, _, err := RewriteBinary(orig.Clone(), Config{
			Layout: LayoutDiversity, Seed: seed, Transforms: []Transform{Null()},
		})
		if err != nil {
			t.Fatal(err)
		}
		texts[string(rw.Text().Data)] = true
		for _, input := range []string{"\x00", "\x02"} {
			want := mustRun(t, orig, nil, input)
			got := mustRun(t, rw, nil, input)
			if want.ExitCode != got.ExitCode {
				t.Fatalf("seed %d input %q: exit %d != %d", seed, input, got.ExitCode, want.ExitCode)
			}
		}
	}
	if len(texts) < 2 {
		t.Fatal("diversity produced identical layouts across seeds")
	}
}

func TestSerializedAPIRoundTrip(t *testing.T) {
	orig := asm.MustAssemble(progSwitch)
	data, err := orig.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := Rewrite(data, Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatal(err)
	}
	if report.InputSize != len(data) || report.OutputSize != len(out) {
		t.Fatalf("report sizes wrong: %+v", report)
	}
	rw, err := binfmt.Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, orig, nil, "\x01")
	got := mustRun(t, rw, nil, "\x01")
	if want.ExitCode != got.ExitCode {
		t.Fatalf("exit %d != %d", got.ExitCode, want.ExitCode)
	}
	if _, _, err := Rewrite([]byte("garbage"), Config{}); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, _, err := Rewrite(data, Config{Layout: "bogus"}); err == nil {
		t.Fatal("bogus layout accepted")
	}
}

func TestCaptureIRProvidesSQLView(t *testing.T) {
	orig := asm.MustAssemble(progSwitch)
	_, report, err := RewriteBinary(orig, Config{CaptureIR: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.IRDB == nil {
		t.Fatal("IRDB not captured")
	}
	res, err := report.IRDB.Exec("SELECT * FROM instructions WHERE pinned = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no pinned instructions recorded")
	}
	res, err = report.IRDB.Exec("SELECT name FROM functions")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("functions table empty: %v", err)
	}
}

func TestRewriteSharedLibrary(t *testing.T) {
	libSrc := `
.type lib
.text 0x00700000
square:
    mov r2, r1
    mul r1, r2
    ret
.export lib_square = square
`
	exeSrc := `
.type exec
.lib "m"
.import lib_square, got_sq
.text 0x00100000
main:
    movi r1, 9
    movi r5, got_sq
    load r5, [r5]
    callr r5
    movi r0, 1
    syscall
.data 0x00200000
got_sq: .word 0
`
	lib := asm.MustAssemble(libSrc)
	exe := asm.MustAssemble(exeSrc)

	// Rewrite BOTH the executable and the library; the loader links the
	// rewritten pair through the (pinned) export.
	rwLib, _, err := RewriteBinary(lib.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatalf("rewrite lib: %v", err)
	}
	rwExe, _, err := RewriteBinary(exe.Clone(), Config{Transforms: []Transform{CFI()}})
	if err != nil {
		t.Fatalf("rewrite exe: %v", err)
	}
	want := mustRun(t, exe, map[string]*binfmt.Binary{"m": lib}, "")
	got := mustRun(t, rwExe, map[string]*binfmt.Binary{"m": rwLib}, "")
	if want.ExitCode != 81 || got.ExitCode != 81 {
		t.Fatalf("exit: want %d got %d (expected 81)", want.ExitCode, got.ExitCode)
	}
}

func TestReportOverheadAccounting(t *testing.T) {
	orig := asm.MustAssemble(progSwitch)
	_, report, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatal(err)
	}
	if report.InputSize == 0 || report.OutputSize == 0 {
		t.Fatalf("sizes not recorded: %+v", report)
	}
	if report.SizeOverhead() > 0.25 {
		t.Fatalf("null-transform size overhead %.2f%% unexpectedly high (stats %+v)",
			report.SizeOverhead()*100, report.Stats)
	}
	if report.Layout != "optimized" {
		t.Fatalf("layout = %q", report.Layout)
	}
	empty := &Report{}
	if empty.SizeOverhead() != 0 {
		t.Fatal("zero-input overhead should be 0")
	}
}
