package core

import (
	"encoding/binary"
	"fmt"
	"testing"

	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/vm"
)

func TestSimulateSledEntrySmall(t *testing.T) {
	// Span 4 (the paper's example): each entry pushes exactly one word.
	want := []uint32{0x90686868, 0x90906868, 0x90909068, 0x90909090}
	for k := 0; k < 4; k++ {
		words := simulateSledEntry(4, k)
		if len(words) != 1 || words[0] != want[k] {
			t.Errorf("span 4 entry %d: words = %#x, want [%#x]", k, words, want[k])
		}
	}
}

func TestSimulateSledEntryLong(t *testing.T) {
	// Span 7: entry 0 pushes twice (positions 0 and 5), entry 1 twice
	// (1, 6), entry 2 once... position p >= span stops.
	words := simulateSledEntry(7, 0)
	if len(words) != 2 {
		t.Fatalf("span 7 entry 0 pushes %d, want 2", len(words))
	}
	if words[0] != sledWord68 {
		t.Fatalf("first pushed word = %#x, want all-68", words[0])
	}
	words = simulateSledEntry(7, 2)
	if len(words) != 1 {
		t.Fatalf("span 7 entry 2 pushes %d, want 1", len(words))
	}
}

// runSled builds a complete sled+dispatch in VM memory and enters it at
// the given entry offset; each entry's dispatch target reports its index
// via the exit code.
func runSled(t *testing.T, span int, entryOffsets []int, enter int) int32 {
	t.Helper()
	const base = 0x00100000
	// Dispatch targets: tiny exit stubs, one per entry.
	p := ir.NewProgram(newTestBin(base, 0x1000))
	var entries []sledEntry
	targetInsts := make([]*ir.Instruction, len(entryOffsets))
	for i, off := range entryOffsets {
		n := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: int32(100 + i)})
		n2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
		n3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
		n.Fallthrough = n2
		n2.Fallthrough = n3
		targetInsts[i] = n
		entries = append(entries, sledEntry{
			offset: off,
			target: n,
			words:  simulateSledEntry(span, off),
		})
	}
	dispatch, refs, err := genDispatch(entries)
	if err != nil {
		t.Fatalf("genDispatch: %v", err)
	}

	// Memory image: [sled span+4][jmp32 dispatch][dispatch][exit stubs].
	image := sledBytes(span)
	jmpAt := len(image)
	image = append(image, make([]byte, 5)...)
	dispatchOff := len(image)
	image = append(image, dispatch...)
	stubOff := make([]int, len(entries))
	for i := range entries {
		stubOff[i] = len(image)
		image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: int32(100 + i)})...)
		image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})...)
		image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpSyscall})...)
	}
	// Patch the sled tail jump and the dispatch's target jumps.
	putJmp := func(at, dest int) {
		disp := int32(dest - (at + 5))
		copy(image[at:], isa.MustEncode(isa.Inst{Op: isa.OpJmp32, Imm: disp}))
	}
	putJmp(jmpAt, dispatchOff)
	for _, ref := range refs {
		for i, n := range targetInsts {
			if ref.target == n {
				putJmp(dispatchOff+ref.off, stubOff[i])
			}
		}
	}

	m := vm.New(vm.WithMaxSteps(10_000))
	if err := m.Map(base, len(image), vm.PermR|vm.PermX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMem(base, image); err != nil {
		t.Fatal(err)
	}
	// Seed the stack with a sentinel so pop-heuristics have caller data.
	m.SetReg(isa.SP, vm.StackTop-8)
	if err := m.WriteMem(vm.StackTop-8, []byte{0xEF, 0xBE, 0xAD, 0xDE}); err != nil {
		t.Fatal(err)
	}
	m.SetPC(base + uint32(enter))
	res, err := m.Run()
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res.ExitCode
}

func TestSledDispatchAllEntriesSmall(t *testing.T) {
	// Dense run of 2..5 consecutive pinned addresses (the sizes the
	// paper observed): every entry must dispatch to its own target.
	for span := 2; span <= 5; span++ {
		offsets := make([]int, span)
		for i := range offsets {
			offsets[i] = i
		}
		for enter := 0; enter < span; enter++ {
			got := runSled(t, span, offsets, enter)
			if got != int32(100+enter) {
				t.Errorf("span %d entry %d dispatched to %d, want %d", span, enter, got, 100+enter)
			}
		}
	}
}

func TestSledDispatchSparseEntries(t *testing.T) {
	// Absorbed sleds have non-entry 0x68 bytes between entries.
	offsets := []int{0, 3}
	for i, enter := range offsets {
		got := runSled(t, 4, offsets, enter)
		if got != int32(100+i) {
			t.Errorf("sparse entry %d dispatched to %d, want %d", enter, got, 100+i)
		}
	}
}

func TestSledDispatchLong(t *testing.T) {
	// Span 8 exercises multi-push entries and the depth probing.
	offsets := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for enter := 0; enter < 8; enter++ {
		got := runSled(t, 8, offsets, enter)
		if got != int32(100+enter) {
			t.Errorf("span 8 entry %d dispatched to %d, want %d", enter, got, 100+enter)
		}
	}
}

func TestSledPreservesRegisters(t *testing.T) {
	// Registers other than the syscall argument regs must survive
	// dispatch. Build a sled whose target checks r5.
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 0x1000))
	target := p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 5})
	t2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	t3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	target.Fallthrough = t2
	t2.Fallthrough = t3
	entries := []sledEntry{{offset: 0, target: target, words: simulateSledEntry(2, 0)}}
	dispatch, refs, err := genDispatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	image := sledBytes(2)
	jmpAt := len(image)
	image = append(image, make([]byte, 5)...)
	dOff := len(image)
	image = append(image, dispatch...)
	sOff := len(image)
	image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 5})...)
	image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})...)
	image = append(image, isa.MustEncode(isa.Inst{Op: isa.OpSyscall})...)
	putJmp := func(at, dest int) {
		copy(image[at:], isa.MustEncode(isa.Inst{Op: isa.OpJmp32, Imm: int32(dest - (at + 5))}))
	}
	putJmp(jmpAt, dOff)
	putJmp(dOff+refs[0].off, sOff)

	m := vm.New(vm.WithMaxSteps(10_000))
	if err := m.Map(base, len(image), vm.PermR|vm.PermX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMem(base, image); err != nil {
		t.Fatal(err)
	}
	m.SetReg(5, 0x5A5A)
	m.SetReg(0, 0x11) // must be restored before the target runs
	m.SetPC(base)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0x5A5A {
		t.Fatalf("r5 corrupted: exit = %#x", res.ExitCode)
	}
}

func TestGenDispatchErrors(t *testing.T) {
	if _, _, err := genDispatch(nil); err == nil {
		t.Fatal("empty sled should fail")
	}
	bad := []sledEntry{{offset: 0, words: nil}}
	if _, _, err := genDispatch(bad); err == nil {
		t.Fatal("entry with no pushes should fail")
	}
	dup := []sledEntry{
		{offset: 0, words: []uint32{1, 2}},
		{offset: 5, words: []uint32{9, 2}},
	}
	if _, _, err := genDispatch(dup); err == nil {
		t.Fatal("indistinguishable entries should fail")
	}
}

func TestSledBytesShape(t *testing.T) {
	b := sledBytes(3)
	if len(b) != 7 {
		t.Fatalf("len = %d", len(b))
	}
	for i := 0; i < 3; i++ {
		if b[i] != isa.PushI32Byte {
			t.Fatalf("byte %d = %#x", i, b[i])
		}
	}
	for i := 3; i < 7; i++ {
		if b[i] != isa.NopByte {
			t.Fatalf("byte %d = %#x", i, b[i])
		}
	}
	// The simulation must agree with what a real decode of the bytes
	// pushes (cross-check one entry).
	words := simulateSledEntry(3, 1)
	win := append(append([]byte{}, b[2:5]...), isa.NopByte)
	if words[0] != binary.LittleEndian.Uint32(win) {
		t.Fatalf("simulation mismatch: %#x", words[0])
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
