// Package layout provides the pluggable code-placement strategies of
// paper §III. Layout algorithms are plugins over the reassembler's
// Placer interface: Optimized packs dollops back at their pinned
// addresses and near their referents to minimize file-size and MaxRSS
// overhead; Diversity scatters dollops randomly across free space to
// maximize code-layout diversity at the cost of memory locality.
//
// Placers see free space through core.Space, the allocator's indexed
// query interface: each placement decision is answered by O(log n)
// lookups instead of a copy and linear scan of the whole block list,
// which is what lets placement scale to libc/libjvm-sized inputs. The
// pre-index slice-scanning implementations survive in legacy.go as the
// differential-testing and benchmarking reference.
package layout

import (
	"math/rand"

	"zipr/internal/core"
	"zipr/internal/ir"
)

// Optimized is the relaxation-style layout (the configuration fielded in
// CGC): dollops go back at their original pinned locations when the gap
// allows, and otherwise land as close to the referencing site as
// possible, preferring pages that already hold pinned references.
type Optimized struct{}

var _ core.Placer = Optimized{}

// Name implements core.Placer.
func (Optimized) Name() string { return "optimized" }

// InlinePins implements core.Placer: reserve pin gaps for in-place code.
func (Optimized) InlinePins() bool { return true }

// Choose picks the fitting block closest to the referencing site; with
// no hint it best-fits the smallest block to limit fragmentation. Both
// are single allocator queries (NearestFit is O(log n); the hintless
// BestFit path does not occur in the pipeline's hot loop).
func (Optimized) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	var b ir.Range
	var ok bool
	if hint == 0 {
		b, ok = space.BestFit(size)
	} else {
		b, ok = space.NearestFit(hint, size)
	}
	if !ok {
		return 0, false
	}
	return b.Start, true
}

// Diversity scatters code randomly: every placement decision picks a
// random fitting block and a random offset inside it, so two rewrites
// with different seeds produce different layouts of the same program.
type Diversity struct {
	rng     *rand.Rand
	fitting []ir.Range // reused across Choose calls
}

var _ core.Placer = (*Diversity)(nil)

// NewDiversity creates a diversity placer with a deterministic seed.
func NewDiversity(seed int64) *Diversity {
	return &Diversity{rng: rand.New(rand.NewSource(seed))}
}

// Name implements core.Placer.
func (*Diversity) Name() string { return "diversity" }

// InlinePins implements core.Placer: never pin code in place — in-place
// code would defeat layout diversity.
func (*Diversity) InlinePins() bool { return false }

// Choose picks a random fitting block and a random offset within it.
// The fitting blocks are collected through the allocator's pruned
// iterator (O(k + log n) for k fitting blocks) into a buffer reused
// across calls; the visit order and random draws match the historical
// slice scan, so placements per seed are unchanged.
func (d *Diversity) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	d.fitting = d.fitting[:0]
	space.VisitFits(size, func(b ir.Range) bool {
		d.fitting = append(d.fitting, b)
		return true
	})
	if len(d.fitting) == 0 {
		return 0, false
	}
	b := d.fitting[d.rng.Intn(len(d.fitting))]
	slack := int(b.Len()) - size
	off := 0
	if slack > 0 {
		// The draw happens unconditionally so the random sequence (and
		// with it every pinned variable-width layout) is unchanged by
		// the alignment rounding fixed-width ISAs need.
		off = d.rng.Intn(slack + 1)
		if al := int(space.Align()); al > 1 {
			off -= off % al
		}
	}
	return b.Start + uint32(off), true
}
