package serve

// Delta serving: placement snapshots let the server answer a request
// whose input is a small edit of a previously rewritten input without
// running the pipeline (core.Snapshot, DESIGN.md §11).
//
// Snapshots live on their own byte budget (Options.SnapshotBytes), NOT
// inside the output cache: output-byte eviction under memory pressure
// must not also destroy delta ancestry, or one burst of large unrelated
// rewrites would reset every client's edit chain to cold-miss latency.
// Ancestors are indexed by (config fingerprint, input length) — the two
// properties of a request that are cheap to compute before any diffing —
// and up to snapCandidates most-recent ancestors per index entry are
// tried in MRU order. Optionally, snapshots persist through an irdb
// database (Options.SnapshotDB) shared across Server instances, so a
// restarted daemon keeps its ancestry.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"zipr"
	"zipr/internal/core"
	"zipr/internal/fault"
	"zipr/internal/irdb"
)

// snapCandidates bounds how many ancestors one (fingerprint, length)
// index entry offers a request; each failed candidate costs an image
// memcmp, so the fan-out is kept small.
const snapCandidates = 3

// ancKey indexes snapshots by the pre-diff properties of a request: the
// config fingerprint (hashed) and the input image length. An edited
// input within the delta-eligible class always has its ancestor's exact
// length — instruction lengths are preserved — so length mismatches are
// never worth diffing.
type ancKey struct {
	fp    [sha256.Size]byte
	inLen int
}

func ancKeyOf(cfg zipr.Config, inLen int) ancKey {
	return ancKey{fp: sha256.Sum256([]byte(cfg.Fingerprint())), inLen: inLen}
}

// dbKey renders the ancestor index key as the single indexed text
// column of the persistence table.
func (a ancKey) dbKey() string {
	return fmt.Sprintf("%s:%d", hex.EncodeToString(a.fp[:]), a.inLen)
}

// snapEntry is one stored snapshot plus the report fields a delta
// answer reproduces (by the snapshot identity argument, the edited
// input's from-scratch report equals its ancestor's for these fields).
type snapEntry struct {
	key      Key
	anc      ancKey
	snap     *core.Snapshot
	size     int64
	stats    zipr.Stats
	layout   string
	warnings []string
	disk     bool // loaded from the disk tier's snapshot slot

	prev, next *snapEntry // LRU list, most recent at head
}

// snapStore is the byte-budgeted LRU of placement snapshots with the
// ancestor index. Not safe for concurrent use; the Server serializes
// access under its mutex.
type snapStore struct {
	budget  int64
	bytes   int64
	entries map[Key]*snapEntry
	byAnc   map[ancKey][]*snapEntry // MRU order, bounded by snapCandidates
	head    *snapEntry
	tail    *snapEntry
	evicted int64
}

func newSnapStore(budget int64) *snapStore {
	return &snapStore{
		budget:  budget,
		entries: make(map[Key]*snapEntry),
		byAnc:   make(map[ancKey][]*snapEntry),
	}
}

// candidates returns up to snapCandidates entries for anc, most recent
// first. The returned slice is a copy; entries are immutable once
// stored except through remove.
func (st *snapStore) candidates(anc ancKey) []*snapEntry {
	return append([]*snapEntry(nil), st.byAnc[anc]...)
}

// put inserts e, replacing any entry under the same key, and evicts
// from the cold end until the byte budget holds. Oversized snapshots
// are not stored at all.
func (st *snapStore) put(e *snapEntry) {
	if old := st.entries[e.key]; old != nil {
		st.remove(old)
	}
	if e.size > st.budget {
		return
	}
	st.entries[e.key] = e
	st.pushFront(e)
	st.bytes += e.size
	lst := append([]*snapEntry{e}, st.byAnc[e.anc]...)
	if len(lst) > snapCandidates {
		lst = lst[:snapCandidates]
	}
	st.byAnc[e.anc] = lst
	for st.bytes > st.budget && st.tail != nil && st.tail != e {
		st.evicted++
		st.remove(st.tail)
	}
}

// remove drops e entirely (budget, LRU list and ancestor index).
func (st *snapStore) remove(e *snapEntry) {
	if st.entries[e.key] != e {
		return
	}
	delete(st.entries, e.key)
	st.unlink(e)
	st.bytes -= e.size
	lst := st.byAnc[e.anc]
	for i, x := range lst {
		if x == e {
			lst = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	if len(lst) == 0 {
		delete(st.byAnc, e.anc)
	} else {
		st.byAnc[e.anc] = lst
	}
}

func (st *snapStore) pushFront(e *snapEntry) {
	e.prev, e.next = nil, st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

func (st *snapStore) unlink(e *snapEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if st.head == e {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if st.tail == e {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// snapTable is the persistence schema: one row per snapshot, indexed by
// the ancestor key and the content address.
const snapTable = "placement_snapshots"

func ensureSnapTable(db *irdb.DB) error {
	err := db.CreateTable(irdb.Schema{
		Name: snapTable,
		Cols: []irdb.Col{
			{Name: "key", Type: irdb.Text},
			{Name: "anc", Type: irdb.Text},
			{Name: "layout", Type: irdb.Text},
			{Name: "blob", Type: irdb.Bytes},
		},
	})
	if err != nil {
		if errors.Is(err, irdb.ErrExists) {
			return nil
		}
		return err
	}
	if err := db.CreateIndex(snapTable, "key"); err != nil {
		return err
	}
	return db.CreateIndex(snapTable, "anc")
}

// persistSnapshot writes e through to the snapshot database, bounding
// the rows per ancestor key the same way the in-memory index is
// bounded. Persistence failures are ignored — the durable tier is an
// optimization, never a correctness dependency.
func (s *Server) persistSnapshot(e *snapEntry) {
	if s.sdb == nil {
		return
	}
	ancStr := e.anc.dbKey()
	rows, err := s.sdb.Lookup(snapTable, "anc", ancStr)
	if err != nil {
		return
	}
	keyStr := e.key.String()
	// Replace any row under the same content address, then trim the
	// oldest rows past the candidate bound (rows come back in insertion
	// order).
	live := 0
	for _, r := range rows {
		if r["key"] == keyStr {
			_ = s.sdb.Delete(snapTable, r["id"].(int64))
		} else {
			live++
		}
	}
	for _, r := range rows {
		if live < snapCandidates || r["key"] == keyStr {
			break
		}
		_ = s.sdb.Delete(snapTable, r["id"].(int64))
		live--
	}
	_, _ = s.sdb.Insert(snapTable, irdb.Row{
		"key":    keyStr,
		"anc":    ancStr,
		"layout": e.layout,
		"blob":   e.snap.Marshal(),
	})
}

// unpersistSnapshot removes a stale snapshot from the durable tier.
func (s *Server) unpersistSnapshot(key Key) {
	if s.sdb == nil {
		return
	}
	rows, err := s.sdb.Lookup(snapTable, "key", key.String())
	if err != nil {
		return
	}
	for _, r := range rows {
		_ = s.sdb.Delete(snapTable, r["id"].(int64))
	}
}

// loadSnapshots pulls an ancestor's persisted snapshots into candidate
// entries when the in-memory store has none: first from the shared
// SnapshotDB (a fresh Server sharing ancestry with a previous
// instance), then from the disk tier's per-ancestor snapshot slot.
// Unparseable rows/blobs are deleted.
func (s *Server) loadSnapshots(anc ancKey) []*snapEntry {
	var out []*snapEntry
	if s.sdb != nil {
		rows, err := s.sdb.Lookup(snapTable, "anc", anc.dbKey())
		if err != nil {
			rows = nil
		}
		for i := len(rows) - 1; i >= 0 && len(out) < snapCandidates; i-- { // newest first
			r := rows[i]
			snap, err := core.UnmarshalSnapshot(r["blob"].([]byte))
			if err != nil || snap.Fingerprint == "" {
				_ = s.sdb.Delete(snapTable, r["id"].(int64))
				continue
			}
			var key Key
			if kb, err := hex.DecodeString(r["key"].(string)); err == nil && len(kb) == len(key) {
				copy(key[:], kb)
			}
			layout, _ := r["layout"].(string)
			out = append(out, &snapEntry{
				key:    key,
				anc:    anc,
				snap:   snap,
				size:   snap.SizeBytes(),
				layout: layout,
			})
		}
	}
	if len(out) == 0 && s.disk != nil {
		if blob, layout, ok := s.disk.getSnap(anc.dbKey(), s.inj); ok {
			if snap, err := core.UnmarshalSnapshot(blob); err == nil && snap.Fingerprint != "" {
				out = append(out, &snapEntry{
					key:    snapDiskKey(anc.dbKey()),
					anc:    anc,
					snap:   snap,
					size:   snap.SizeBytes(),
					layout: layout,
					disk:   true,
				})
			} else {
				s.disk.delSnap(anc.dbKey())
			}
		}
	}
	return out
}

// storeSnapshot records a completed rewrite's snapshot as a delta
// ancestor, in memory and (when configured) durably.
func (s *Server) storeSnapshot(key Key, anc ancKey, snap *core.Snapshot, rep *zipr.Report) {
	e := &snapEntry{
		key:      key,
		anc:      anc,
		snap:     snap,
		size:     snap.SizeBytes(),
		stats:    rep.Stats,
		layout:   rep.Layout,
		warnings: append([]string(nil), rep.Warnings...),
	}
	s.mu.Lock()
	before := s.snaps.evicted
	s.snaps.put(e)
	evicted := s.snaps.evicted - before
	s.syncSnapGaugesLocked()
	s.mu.Unlock()
	if evicted > 0 {
		s.tr.Add("serve.snapshot.evict", evicted)
	}
	s.persistSnapshot(e)
	s.disk.putSnapAsync(anc.dbKey(), snap.Marshal(), e.layout)
}

// tryDelta attempts to answer the request from a delta ancestor.
// Returns ok=false when no ancestor applies — the caller then runs the
// full pipeline. Every candidate failure is contained: a stale snapshot
// is dropped (memory and durable tier), an inapplicable edit just moves
// to the next candidate, and the two-outcome contract holds because a
// successful Apply is byte-identical to the pipeline by construction.
func (s *Server) tryDelta(key Key, input []byte, cfg zipr.Config) (out []byte, rep *zipr.Report, snap *core.Snapshot, ok bool) {
	anc := ancKeyOf(cfg, len(input))
	s.mu.Lock()
	cands := s.snaps.candidates(anc)
	s.mu.Unlock()
	if len(cands) == 0 {
		cands = s.loadSnapshots(anc)
	}
	for _, e := range cands {
		if e.key == key {
			// Same content address: the output cache answers exact
			// repeats; the delta path is for edited inputs.
			continue
		}
		snap := e.snap
		if s.inj.Fires(fault.DeltaStaleSnapshot, key.site()^e.key.site()) && len(snap.Output) > 0 {
			// Serve a snapshot whose digests mismatch: flip a byte in a
			// clone (stored entries are shared across concurrent requests)
			// and let Apply's integrity verification catch it — the stale
			// path below then drops the ancestor and the request degrades
			// to a full rewrite.
			clone := *snap
			clone.Output = append([]byte(nil), snap.Output...)
			clone.Output[s.inj.Pick(fault.DeltaStaleSnapshot, key.site(), len(clone.Output))] ^= 0xFF
			snap = &clone
		}
		res, info, err := snap.Apply(input)
		if err != nil {
			if errors.Is(err, core.ErrSnapshotStale) {
				s.mu.Lock()
				s.snaps.remove(e)
				s.stats.DeltaStale++
				s.syncSnapGaugesLocked()
				s.mu.Unlock()
				s.tr.Add("serve.delta.stale", 1)
				s.tel.deltaStale.Add(1)
				s.unpersistSnapshot(e.key)
				if e.disk {
					s.disk.delSnap(e.anc.dbKey())
				}
			}
			continue
		}
		rep := &zipr.Report{
			Stats:      e.stats,
			Layout:     e.layout,
			Warnings:   append([]string(nil), e.warnings...),
			InputSize:  len(input),
			OutputSize: len(res),
		}
		// The answered request becomes a new ancestor: rebase the
		// snapshot onto its images so edit chains keep delta latency.
		ns, err := e.snap.Rebase(input, res, info)
		if err == nil {
			s.storeSnapshot(key, anc, ns, rep)
		} else {
			ns = nil
		}
		s.tr.Add("serve.delta.hit", 1)
		s.mu.Lock()
		s.stats.DeltaHits++
		s.mu.Unlock()
		s.span("serve.delta")
		return res, rep, ns, true
	}
	return nil, nil, nil, false
}

// syncSnapGaugesLocked publishes snapshot-store occupancy gauges;
// caller holds s.mu.
func (s *Server) syncSnapGaugesLocked() {
	s.tr.SetGauge("serve.snapshot.bytes", s.snaps.bytes)
	s.tr.SetGauge("serve.snapshot.entries", int64(len(s.snaps.entries)))
	s.tel.snapBytes.Set(s.snaps.bytes)
	s.tel.snapCount.Set(int64(len(s.snaps.entries)))
}
