package zipr

// Golden-transcript regression suite: every corpus program is rewritten
// under every (transform stack x layout x arbitration) cell and two
// digests are pinned in testdata/golden/corpus.json — the SHA-256 of the
// rewritten image and the SHA-256 of its execution transcripts over the
// CB's pollers. Any drift in pipeline output, byte-level or behavioral,
// fails the suite with the exact cell that moved.
//
// Regenerate after an intentional output change with:
//
//	go test -run TestGoldenCorpus -update .
//
// Regeneration is deterministic (the pipeline is seed-driven
// end-to-end), so two -update runs produce identical files; the diff of
// corpus.json in review is the authoritative list of cells an
// optimization touched. Under the race detector the suite strides the
// corpus (goldenStride, see golden_stride_race_test.go) to stay inside
// CI budgets on small machines; plain `go test` covers every cell.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/synth"
)

var updateGolden = flag.Bool("update", false, "regenerate testdata/golden/corpus.json from the current pipeline")

const goldenPath = "testdata/golden/corpus.json"

// goldenCell pins one (program, stack, layout, arbitration) cell.
type goldenCell struct {
	Image      string `json:"image"`      // sha256 of the rewritten ZELF image
	Transcript string `json:"transcript"` // sha256 of the poller transcripts
}

type goldenFile struct {
	Version int                   `json:"version"`
	Cells   map[string]goldenCell `json:"cells"`
}

// goldenStack is one pinned transform stack. Parameters are fixed
// constants: the suite pins outputs, so every knob must be explicit.
type goldenStack struct {
	name string
	tfs  func() []Transform
}

func goldenStacks() []goldenStack {
	return []goldenStack{
		{"null", func() []Transform { return []Transform{Null()} }},
		{"cfi", func() []Transform { return []Transform{CFI()} }},
		{"full", func() []Transform {
			return []Transform{Stir(0x57123), NopElide(), StackPad(48), Canary(0xA5A5A5A5), CFI()}
		}},
	}
}

type goldenLayout struct {
	name   string
	layout LayoutKind
	seed   int64
}

func goldenLayouts() []goldenLayout {
	return []goldenLayout{
		{"optimized", LayoutOptimized, 0},
		{"diversity", LayoutDiversity, 0x60D5},
	}
}

// goldenArb is one pinned arbitration mode. The default two-way mode
// keeps the bare (suffix-free) cell keys the suite has always pinned,
// so this dimension's addition provably left all pre-existing digests
// untouched: their keys and values are byte-identical in corpus.json.
type goldenArb struct {
	suffix string // "" = legacy key format
	arb    ArbitrationKind
}

func goldenArbs() []goldenArb {
	return []goldenArb{
		{"", ArbitrationTwoWay},
		{"weighted", ArbitrationWeighted},
	}
}

// transcriptDigest hashes a transcript set with length-prefixed framing
// so (exit, output) pairs cannot alias across pollers.
func transcriptDigest(ts []cgcsim.Transcript) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ts)))
	h.Write(buf[:4])
	for _, tr := range ts {
		binary.LittleEndian.PutUint32(buf[:4], uint32(tr.Exit))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(tr.Output)))
		h.Write(buf[:8])
		h.Write(tr.Output)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenCellKey names one cell in the golden file. An empty arb suffix
// (the default two-way mode) yields the legacy three-part key.
func goldenCellKey(cb, stack, layout, arb string) string {
	key := cb + "/" + stack + "/" + layout
	if arb != "" {
		key += "/" + arb
	}
	return key
}

func loadGolden(t *testing.T) *goldenFile {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (%v); generate it with: go test -run TestGoldenCorpus -update .", err)
	}
	var g goldenFile
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	if g.Version != 1 {
		t.Fatalf("golden file version %d, this suite expects 1", g.Version)
	}
	return &g
}

func TestGoldenCorpus(t *testing.T) {
	stride := goldenStride
	if testing.Short() && stride < 4 {
		stride = 4
	}
	if *updateGolden && stride != 1 {
		t.Fatal("-update needs the full corpus: run without -race and -short")
	}
	corpus, err := cgcsim.Corpus(synth.CorpusSize)
	if err != nil {
		t.Fatal(err)
	}
	var pinned *goldenFile
	updated := &goldenFile{Version: 1, Cells: make(map[string]goldenCell)}
	if !*updateGolden {
		pinned = loadGolden(t)
	}
	stacks, layouts, arbs := goldenStacks(), goldenLayouts(), goldenArbs()
	cells := 0
	for i, cb := range corpus {
		if i%stride != 0 {
			continue
		}
		input, err := cb.Bin.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", cb.Name, err)
		}
		// Executing pollers dominates the suite's cost, so the original
		// binary's transcripts are measured lazily: only -update (which
		// pins fresh transcript digests) and drifted cells (which need a
		// behavioral verdict) pay for execution. A cell whose image
		// digest matches the pin cannot have drifted behaviorally — the
		// VM and pollers are deterministic functions of the image.
		var origTS []cgcsim.Transcript
		measureOrig := func() []cgcsim.Transcript {
			if origTS == nil {
				var err error
				_, origTS, err = cgcsim.Measure(cb.Bin, nil, cb.Pollers)
				if err != nil {
					t.Fatalf("%s: original execution: %v", cb.Name, err)
				}
			}
			return origTS
		}
		for _, stack := range stacks {
			for _, lay := range layouts {
				for _, ga := range arbs {
					key := goldenCellKey(cb.Name, stack.name, lay.name, ga.suffix)
					cfg := Config{Transforms: stack.tfs(), Layout: lay.layout, Seed: lay.seed, Arbitration: ga.arb}
					out, _, err := Rewrite(input, cfg)
					if err != nil {
						t.Errorf("%s: rewrite: %v", key, err)
						continue
					}
					imgSum := sha256.Sum256(out)
					imgHex := hex.EncodeToString(imgSum[:])
					cells++

					execute := func() (string, bool) {
						rw, err := binfmt.Unmarshal(out)
						if err != nil {
							t.Errorf("%s: unmarshal rewritten image: %v", key, err)
							return "", false
						}
						_, rwTS, err := cgcsim.Measure(rw, nil, cb.Pollers)
						if err != nil {
							t.Errorf("%s: rewritten execution: %v", key, err)
							return "", false
						}
						// Behavioral parity with the original is a
						// precondition for pinning: a golden file must never
						// freeze a broken transcript.
						if !cgcsim.Equivalent(measureOrig(), rwTS) {
							t.Errorf("%s: rewritten transcripts differ from the original binary", key)
							return "", false
						}
						return transcriptDigest(rwTS), true
					}

					if *updateGolden {
						td, ok := execute()
						if ok {
							updated.Cells[key] = goldenCell{Image: imgHex, Transcript: td}
						}
						continue
					}
					want, ok := pinned.Cells[key]
					if !ok {
						t.Errorf("%s: no pinned digests (new cell?); regenerate with -update", key)
						continue
					}
					if imgHex == want.Image {
						continue // identical bytes imply identical transcripts
					}
					// The image drifted: report whether behavior moved too —
					// a byte-only drift (same transcript digest) is a layout
					// change, a transcript drift is a correctness alarm.
					td, ok := execute()
					if !ok {
						continue
					}
					if td != want.Transcript {
						t.Errorf("%s: image AND execution transcript digests drifted\n  pinned image %s\n  got    image %s\n  pinned transcript %s\n  got    transcript %s",
							key, want.Image, imgHex, want.Transcript, td)
					} else {
						t.Errorf("%s: rewritten image digest drifted (transcripts unchanged)\n  pinned %s\n  got    %s", key, want.Image, imgHex)
					}
				}
			}
		}
	}
	wantCells := len(stacks) * len(layouts) * len(arbs) * ((len(corpus) + stride - 1) / stride)
	if cells != wantCells && !t.Failed() {
		t.Errorf("covered %d cells, want %d", cells, wantCells)
	}
	if *updateGolden {
		if t.Failed() {
			t.Fatal("not writing golden file: some cells failed")
		}
		raw, err := json.MarshalIndent(updated, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		tmp := goldenPath + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d cells to %s", len(updated.Cells), goldenPath)
	}
}

// TestGoldenFileComplete guards the pinned file itself: it must contain
// exactly the cells the current corpus and cell matrix define, so a
// stale file (after a corpus resize or a stack rename) fails loudly
// even when the strided run would not visit the missing cells.
func TestGoldenFileComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	pinned := loadGolden(t)
	want := make(map[string]bool)
	for i := 0; i < synth.CorpusSize; i++ {
		_, profile := synth.CBProfile(i)
		for _, stack := range goldenStacks() {
			for _, lay := range goldenLayouts() {
				for _, ga := range goldenArbs() {
					want[goldenCellKey(profile.Name, stack.name, lay.name, ga.suffix)] = true
				}
			}
		}
	}
	for key := range want {
		if _, ok := pinned.Cells[key]; !ok {
			t.Errorf("cell %s missing from golden file; regenerate with -update", key)
		}
	}
	for key := range pinned.Cells {
		if !want[key] {
			t.Errorf("golden file pins unknown cell %s; regenerate with -update", key)
		}
	}
	if len(pinned.Cells) != len(want) {
		t.Errorf("golden file has %d cells, corpus defines %d", len(pinned.Cells), len(want))
	}
	// Digests are hex sha256: malformed entries mean a hand-edited file.
	for key, cell := range pinned.Cells {
		for _, d := range []string{cell.Image, cell.Transcript} {
			if len(d) != 64 {
				t.Errorf("cell %s: digest %q is not a sha256 hex string", key, d)
			} else if _, err := hex.DecodeString(d); err != nil {
				t.Errorf("cell %s: digest %q: %v", key, d, err)
			}
		}
	}
}
