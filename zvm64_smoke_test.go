package zipr

import (
	"testing"

	"zipr/internal/cgcsim"
	"zipr/internal/isa"
)

func TestZVM64Smoke(t *testing.T) {
	cbs, err := cgcsim.CorpusArch(5, isa.ZVM64)
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range cbs {
		_, baseT, err := cgcsim.MeasureArch(cb.Bin, nil, cb.Pollers, isa.ZVM64)
		if err != nil {
			t.Fatalf("%s baseline: %v", cb.Name, err)
		}
		res, rep, err := RewriteBinary(cb.Bin.Clone(), Config{ISA: "zvm64", Transforms: []Transform{CFI()}})
		if err != nil {
			t.Fatalf("%s rewrite: %v", cb.Name, err)
		}
		_, newT, err := cgcsim.MeasureArch(res, nil, cb.Pollers, isa.ZVM64)
		if err != nil {
			t.Fatalf("%s rewritten run: %v", cb.Name, err)
		}
		if !cgcsim.Equivalent(baseT, newT) {
			t.Fatalf("%s: transcripts differ base=%+v new=%+v", cb.Name, baseT, newT)
		}
		t.Logf("%s ok: stats=%+v", cb.Name, rep.Stats)
	}
}
