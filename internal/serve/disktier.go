package serve

// The disk tier: a content-addressed on-disk store behind the in-memory
// LRU. Outputs and placement snapshots spill here so a restarted (or
// memory-pressured) server answers previously-seen inputs without a
// pipeline run — the durability half of the fleet story (DESIGN.md §12).
//
// Layout under the tier directory:
//
//	objects/<hh>/<keyhex>   one file per entry, written tmp+rename
//	tmp/                    in-flight writes (leftovers = crash debris)
//	quarantine/<keyhex>     entries that failed the digest check on read
//	journal                 append-only JSONL index (put/del records)
//
// Invariants:
//
//   - The hot path never blocks on disk writes: spills go through a
//     bounded write-behind queue drained by one background goroutine;
//     a full queue drops the spill (counted), never the request.
//   - Every read is digest-verified against the SHA-256 recorded at
//     write time. A mismatch quarantines the file and drops the index
//     entry: the tier degrades to a miss, it never serves wrong bytes.
//   - Writes are crash-safe: content goes to tmp/, is synced, then
//     renamed into objects/ before the journal line is appended. On
//     reopen, tmp debris is discarded, a torn journal tail is dropped,
//     journal entries whose object file is missing or mis-sized are
//     dropped, and orphaned object files (renamed but never journaled)
//     are removed — each counted as recovered.
//   - A byte budget is enforced by LRU eviction over the journal-order
//     recency list (reads refresh recency in memory only; recency
//     resets to insertion order across a restart).

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"zipr/internal/fault"
)

// diskKind discriminates what a disk entry holds.
const (
	diskKindOut  = "out"  // a rewrite output image
	diskKindSnap = "snap" // a marshaled placement snapshot
)

// diskQueueDepth bounds the write-behind queue; spills beyond it are
// dropped (and counted) so the request path never blocks on disk.
const diskQueueDepth = 256

// DiskStats is a point-in-time snapshot of the tier's behavior,
// surfaced through serve.Stats and ziprd's /stats.
type DiskStats struct {
	Hits         int64 // digest-verified reads served
	Misses       int64 // lookups with no index entry
	Corrupt      int64 // reads that failed the digest check (quarantined)
	Evicted      int64 // entries dropped for the byte budget
	WriteDropped int64 // spills dropped on a full write-behind queue
	Recovered    int64 // partial/orphaned artifacts discarded at open
	Entries      int   // current index entries (outputs + snapshots)
	Bytes        int64 // current stored bytes
}

// diskEntry is one indexed object.
type diskEntry struct {
	key    Key
	kind   string
	size   int64
	sum    [sha256.Size]byte
	layout string

	prev, next *diskEntry // LRU list, most recent at head
}

// diskRecord is the journal line shape.
type diskRecord struct {
	Op     string `json:"op"` // "put" or "del"
	Kind   string `json:"kind,omitempty"`
	Key    string `json:"key"`
	Size   int64  `json:"size,omitempty"`
	Sum    string `json:"sum,omitempty"`
	Layout string `json:"layout,omitempty"`
}

// diskJob is one queued write-behind spill.
type diskJob struct {
	key    Key
	kind   string
	data   []byte
	layout string
}

// DiskTier is the disk-backed second cache tier. Construct with
// OpenDiskTier; all methods are safe for concurrent use. A nil *DiskTier
// disables the tier (every method is a nil-safe no-op).
type DiskTier struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[Key]*diskEntry
	head    *diskEntry
	tail    *diskEntry
	bytes   int64
	journal *os.File
	ops     int64 // journal lines written since open/compaction
	stats   DiskStats
	closed  bool

	tel *telemetry // bound by the owning Server; nil-safe

	wq chan diskJob
	wg sync.WaitGroup
}

// OpenDiskTier opens (creating or recovering) the disk tier rooted at
// dir with the given byte budget. Recovery drops crash debris — tmp
// files, a torn journal tail, index entries without a matching object,
// orphaned objects — and reports the count via Stats().Recovered.
func OpenDiskTier(dir string, budget int64) (*DiskTier, error) {
	if budget <= 0 {
		budget = 256 << 20
	}
	t := &DiskTier{
		dir:     dir,
		budget:  budget,
		entries: make(map[Key]*diskEntry),
		wq:      make(chan diskJob, diskQueueDepth),
	}
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("disk tier: %w", err)
		}
	}
	if err := t.recover(); err != nil {
		return nil, err
	}
	jf, err := os.OpenFile(t.journalPath(), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk tier: journal: %w", err)
	}
	t.journal = jf
	t.wg.Add(1)
	go t.writer()
	return t, nil
}

func (t *DiskTier) journalPath() string { return filepath.Join(t.dir, "journal") }

func (t *DiskTier) objectPath(key Key) string {
	h := key.String()
	return filepath.Join(t.dir, "objects", h[:2], h)
}

// recover rebuilds the index from the journal, discarding every
// artifact a crash could have left half-written.
func (t *DiskTier) recover() error {
	// Crash debris: writes that never reached their rename.
	if tmps, err := os.ReadDir(filepath.Join(t.dir, "tmp")); err == nil {
		for _, de := range tmps {
			os.Remove(filepath.Join(t.dir, "tmp", de.Name()))
			t.stats.Recovered++
		}
	}
	type rec struct {
		r   diskRecord
		seq int
	}
	live := make(map[string]rec)
	seq := 0
	if raw, err := os.ReadFile(t.journalPath()); err == nil {
		lines := 0
		for len(raw) > 0 {
			nl := -1
			for i, b := range raw {
				if b == '\n' {
					nl = i
					break
				}
			}
			var line []byte
			if nl < 0 {
				line, raw = raw, nil
			} else {
				line, raw = raw[:nl], raw[nl+1:]
			}
			if len(line) == 0 {
				continue
			}
			var r diskRecord
			if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
				// A torn tail (partial last line from a crash mid-append)
				// ends the replay; everything after it is untrusted.
				t.stats.Recovered++
				break
			}
			lines++
			switch r.Op {
			case "put":
				seq++
				live[r.Key] = rec{r: r, seq: seq}
			case "del":
				delete(live, r.Key)
			}
		}
		t.ops = int64(lines)
	}
	// Verify every surviving record against its object file, oldest
	// first so the LRU list ends up in journal (recency) order.
	ordered := make([]rec, 0, len(live))
	for _, r := range live {
		ordered = append(ordered, r)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].seq < ordered[j-1].seq; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	indexed := make(map[string]bool, len(ordered))
	for _, rc := range ordered {
		r := rc.r
		var key Key
		kb, err := hex.DecodeString(r.Key)
		if err != nil || len(kb) != len(key) {
			t.stats.Recovered++
			continue
		}
		copy(key[:], kb)
		fi, err := os.Stat(t.objectPath(key))
		if err != nil || fi.Size() != r.Size {
			// The journal promised an object the filesystem does not
			// hold (crash between journal append and a later truncation,
			// or manual damage): drop the entry.
			t.stats.Recovered++
			continue
		}
		e := &diskEntry{key: key, kind: r.Kind, size: r.Size, layout: r.Layout}
		if sb, err := hex.DecodeString(r.Sum); err == nil && len(sb) == len(e.sum) {
			copy(e.sum[:], sb)
		}
		t.entries[key] = e
		t.pushFront(e)
		t.bytes += e.size
		indexed[r.Key] = true
	}
	// Orphans: object files renamed into place whose journal line was
	// lost. Without a recorded digest they are unverifiable — remove.
	if subdirs, err := os.ReadDir(filepath.Join(t.dir, "objects")); err == nil {
		for _, sd := range subdirs {
			if !sd.IsDir() {
				continue
			}
			files, err := os.ReadDir(filepath.Join(t.dir, "objects", sd.Name()))
			if err != nil {
				continue
			}
			for _, f := range files {
				if !indexed[f.Name()] {
					os.Remove(filepath.Join(t.dir, "objects", sd.Name(), f.Name()))
					t.stats.Recovered++
				}
			}
		}
	}
	evicted := t.stats.Evicted
	t.evictLocked(nil)
	// Compact a journal that has grown far past the live set (or whose
	// deletions could not be journaled because recovery eviction runs
	// before the journal reopens), so reopen cost tracks occupancy
	// rather than history.
	if t.ops > 2*int64(len(t.entries))+16 || t.stats.Evicted > evicted {
		t.compact()
	}
	return nil
}

// compact rewrites the journal to one put line per live entry
// (tmp+rename, so a crash mid-compaction keeps the old journal).
func (t *DiskTier) compact() {
	tmp := filepath.Join(t.dir, "tmp", "journal.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	enc := json.NewEncoder(f)
	n := int64(0)
	for e := t.tail; e != nil; e = e.prev { // oldest first
		enc.Encode(putRecord(e))
		n++
	}
	if f.Sync() != nil || f.Close() != nil {
		os.Remove(tmp)
		return
	}
	if os.Rename(tmp, t.journalPath()) == nil {
		t.ops = n
	}
}

func putRecord(e *diskEntry) diskRecord {
	return diskRecord{
		Op:     "put",
		Kind:   e.kind,
		Key:    e.key.String(),
		Size:   e.size,
		Sum:    hex.EncodeToString(e.sum[:]),
		Layout: e.layout,
	}
}

// Close drains the write-behind queue and closes the journal.
// Idempotent; concurrent spills after Close are dropped.
func (t *DiskTier) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.wq)
	t.wg.Wait()
	t.mu.Lock()
	t.journal.Close()
	t.mu.Unlock()
}

// Stats returns a snapshot of the tier's counters and occupancy.
// Nil-safe (zero).
func (t *DiskTier) Stats() DiskStats {
	if t == nil {
		return DiskStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Entries = len(t.entries)
	st.Bytes = t.bytes
	return st
}

// bindTelemetry attaches the owning server's labeled-metric handles so
// tier events land on /metrics. Nil-safe on both sides.
func (t *DiskTier) bindTelemetry(tel *telemetry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tel = tel
	t.syncGaugesLocked()
	t.mu.Unlock()
}

func (t *DiskTier) syncGaugesLocked() {
	if t.tel == nil {
		return
	}
	t.tel.diskBytes.Set(t.bytes)
	t.tel.diskEntries.Set(int64(len(t.entries)))
}

// putAsync enqueues one spill on the write-behind queue. The data is
// copied, so callers may keep mutating their buffer. A full queue or a
// closed tier drops the spill. Nil-safe.
func (t *DiskTier) putAsync(key Key, kind string, data []byte, layout string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	// Holding t.mu across the send is safe: the writer never takes t.mu
	// while receiving, and the send is non-blocking.
	select {
	case t.wq <- diskJob{key: key, kind: kind, data: append([]byte(nil), data...), layout: layout}:
	default:
		t.stats.WriteDropped++
	}
	t.mu.Unlock()
}

// writer is the write-behind goroutine: content to tmp, sync, rename,
// then index + journal + eviction under the lock.
func (t *DiskTier) writer() {
	defer t.wg.Done()
	for job := range t.wq {
		t.write(job)
	}
}

func (t *DiskTier) write(job diskJob) {
	if int64(len(job.data)) > t.budget {
		return
	}
	h := job.key.String()
	tmp := filepath.Join(t.dir, "tmp", h+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if _, err := f.Write(job.data); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if f.Sync() != nil || f.Close() != nil {
		os.Remove(tmp)
		return
	}
	dst := t.objectPath(job.key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return
	}
	e := &diskEntry{
		key:    job.key,
		kind:   job.kind,
		size:   int64(len(job.data)),
		sum:    sha256.Sum256(job.data),
		layout: job.layout,
	}
	t.mu.Lock()
	if old := t.entries[e.key]; old != nil {
		t.removeLocked(old, false)
	}
	t.entries[e.key] = e
	t.pushFront(e)
	t.bytes += e.size
	t.appendJournalLocked(putRecord(e))
	t.evictLocked(e)
	t.syncGaugesLocked()
	t.mu.Unlock()
}

// get returns the digest-verified bytes for key, or ok=false. A failed
// digest check quarantines the object and drops the entry. inj may
// arm fault.DiskTierCorrupt, which flips one byte of the read before
// verification — the check must turn it into a quarantined miss.
// Nil-safe.
func (t *DiskTier) get(key Key, inj *fault.Injector) (data []byte, layout string, ok bool) {
	if t == nil {
		return nil, "", false
	}
	t.mu.Lock()
	e := t.entries[key]
	if e == nil {
		t.stats.Misses++
		t.mu.Unlock()
		return nil, "", false
	}
	sum, lay := e.sum, e.layout
	t.mu.Unlock()

	data, err := os.ReadFile(t.objectPath(key))
	if err == nil && inj.Fires(fault.DiskTierCorrupt, key.site()) && len(data) > 0 {
		data[inj.Pick(fault.DiskTierCorrupt, key.site(), len(data))] ^= 0xFF
	}
	if err != nil || sha256.Sum256(data) != sum {
		t.quarantine(key, e, err == nil)
		return nil, "", false
	}
	t.mu.Lock()
	if cur := t.entries[key]; cur == e {
		t.unlink(e)
		t.pushFront(e)
	}
	t.stats.Hits++
	t.mu.Unlock()
	return data, lay, true
}

// getSnap / putSnapAsync store one most-recent placement snapshot per
// ancestor index key, content-addressed under a derived key.
func (t *DiskTier) getSnap(anc string, inj *fault.Injector) ([]byte, string, bool) {
	if t == nil {
		return nil, "", false
	}
	return t.get(snapDiskKey(anc), inj)
}

func (t *DiskTier) putSnapAsync(anc string, blob []byte, layout string) {
	if t == nil {
		return
	}
	t.putAsync(snapDiskKey(anc), diskKindSnap, blob, layout)
}

func (t *DiskTier) delSnap(anc string) {
	if t == nil {
		return
	}
	key := snapDiskKey(anc)
	t.mu.Lock()
	if e := t.entries[key]; e != nil {
		t.removeLocked(e, true)
		t.syncGaugesLocked()
	}
	t.mu.Unlock()
}

// snapDiskKey derives the disk-tier address of an ancestor's snapshot
// slot. The "snap\x00" domain separator keeps it disjoint from output
// keys (which are raw SHA-256 of input||fingerprint digests).
func snapDiskKey(anc string) Key {
	h := sha256.New()
	h.Write([]byte("snap\x00"))
	h.Write([]byte(anc))
	var k Key
	h.Sum(k[:0])
	return k
}

// quarantine handles a failed read: the entry leaves the index (and
// journal), and a corrupt file is moved aside for postmortem rather
// than deleted. fileOK reports whether the object file was readable
// (false: it vanished; nothing to move).
func (t *DiskTier) quarantine(key Key, e *diskEntry, fileOK bool) {
	t.mu.Lock()
	if cur := t.entries[key]; cur == e {
		t.removeLocked(e, true)
	}
	t.stats.Corrupt++
	if t.tel != nil {
		t.tel.diskCorrupt.Add(1)
	}
	t.syncGaugesLocked()
	t.mu.Unlock()
	if fileOK {
		os.Rename(t.objectPath(key), filepath.Join(t.dir, "quarantine", key.String()))
	}
}

// removeLocked drops e from the index, recency list and byte total,
// optionally journaling the deletion. Caller holds t.mu.
func (t *DiskTier) removeLocked(e *diskEntry, journal bool) {
	if t.entries[e.key] != e {
		return
	}
	delete(t.entries, e.key)
	t.unlink(e)
	t.bytes -= e.size
	if journal {
		t.appendJournalLocked(diskRecord{Op: "del", Key: e.key.String()})
	}
}

// evictLocked unlinks cold entries until the byte budget holds. keep,
// when non-nil, is never evicted (the entry just inserted). Caller
// holds t.mu.
func (t *DiskTier) evictLocked(keep *diskEntry) {
	for t.bytes > t.budget && t.tail != nil && t.tail != keep {
		victim := t.tail
		t.stats.Evicted++
		t.removeLocked(victim, true)
		os.Remove(t.objectPath(victim.key))
	}
}

// appendJournalLocked writes one journal line; caller holds t.mu. The
// journal is not synced per line — recovery tolerates a torn tail.
func (t *DiskTier) appendJournalLocked(r diskRecord) {
	if t.journal == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	t.journal.Write(append(b, '\n'))
	t.ops++
}

func (t *DiskTier) pushFront(e *diskEntry) {
	e.prev, e.next = nil, t.head
	if t.head != nil {
		t.head.prev = e
	}
	t.head = e
	if t.tail == nil {
		t.tail = e
	}
}

func (t *DiskTier) unlink(e *diskEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if t.head == e {
		t.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if t.tail == e {
		t.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
