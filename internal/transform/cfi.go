package transform

import (
	"encoding/binary"
	"fmt"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

// CFI applies the simple control-flow-integrity policy Xandra fielded in
// CGC: every indirect control transfer (register-indirect jump or call,
// and every return) is routed through a shared check thunk that verifies
// the runtime target against a set of legal targets before branching.
//
// Legal targets are exactly: pinned original addresses (the only values
// the original program can hold as code pointers), legal entries into
// fixed byte ranges, code addresses materialized by the rewriter itself
// (lea/movi rewrites), and the return sites physically following calls.
// The set is stored as an open-addressing hash table in the data
// extension — a few bytes per target, so the file-size cost stays small —
// and its contents depend on the final code layout, so the transform
// emits a deferred blob the reassembler fills after placement.
//
// The policy is module-local, as with binary-level CFI tools on real
// systems: targets outside this module's rewritten text span (calls into
// and returns to other modules through the GOT) pass; non-code
// destinations still fault on the W^X execute check.
//
// Instrumentation contract: flags are treated as dead across indirect
// control transfers (the same practical assumption binary-level CFI
// tools make on x86); all registers are preserved.
type CFI struct{}

var _ Transform = CFI{}

// Name implements Transform.
func (CFI) Name() string { return "cfi" }

// violationExitCode is the terminate() status on a CFI violation.
const violationExitCode = 139

// cfiHashK is the Knuth multiplicative-hash constant.
const cfiHashK uint32 = 2654435761

// cfiMaxProbe bounds linear probing; the fill fails loudly if the table
// cannot place a target within this many slots (practically impossible
// at 50% load factor).
const cfiMaxProbe = 16

// Apply implements Transform.
func (t CFI) Apply(ctx *Context) error {
	p := ctx.Prog

	// Collect sites before synthesizing any code so the thunk itself is
	// not instrumented.
	var rets, jmprs, callrs []*ir.Instruction
	calls := 0
	materialized := 0
	for _, n := range p.Insts {
		switch n.Inst.Op {
		case isa.OpRet:
			rets = append(rets, n)
		case isa.OpJmpR:
			jmprs = append(jmprs, n)
		case isa.OpCallR:
			callrs = append(callrs, n)
		case isa.OpCall:
			calls++
		case isa.OpLea, isa.OpMovI, isa.OpPushI32:
			if n.Target != nil {
				materialized++
			}
		}
	}
	if len(rets)+len(jmprs)+len(callrs) == 0 {
		return nil
	}

	// Size the target table now (counts are known; only the values are
	// layout-dependent). callr rewrites add one materialized return
	// site each.
	targets := len(p.PinnedInsts()) + len(p.FixedEntries) + calls +
		materialized + len(callrs) + 8
	slots := 16
	for slots < 2*targets {
		slots *= 2
	}
	log2 := 0
	for 1<<log2 < slots {
		log2++
	}
	// Layout in the data extension: [span:u32][slots × u32]. Slots hold
	// offset+1 so zero means empty.
	tableBase := p.Defer("cfi_targets", 4+4*slots, func(l *ir.Layout) ([]byte, error) {
		return fillCFITable(p, l, slots, log2)
	})

	thunk := buildCFIThunk(p, p.TextRange().Start, tableBase, slots, log2)

	// ret -> jmp thunk (the return address on the stack is the checked
	// target; the thunk's final ret performs the actual transfer).
	for _, n := range rets {
		n.Inst = isa.Inst{Op: isa.OpJmp32}
		n.Target = thunk
		n.Fallthrough = nil
	}
	// jmpr rs -> push rs; jmp thunk.
	for _, n := range jmprs {
		reg := n.Inst.Rd
		n.Inst = isa.Inst{Op: isa.OpPush, Rd: reg}
		j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
		j.Target = thunk
		n.Fallthrough = j
	}
	// callr rs -> pushi <return site>; push rs; jmp thunk. The pushi
	// immediate is materialized to the return site's rewritten address,
	// so the callee's (checked) ret comes back here.
	for _, n := range callrs {
		reg := n.Inst.Rd
		retSite := n.Fallthrough
		if retSite == nil {
			return fmt.Errorf("cfi: callr %s has no return site", n)
		}
		n.Inst = isa.Inst{Op: isa.OpPushI32}
		n.Target = retSite
		push := p.NewInst(isa.Inst{Op: isa.OpPush, Rd: reg})
		j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
		j.Target = thunk
		n.Fallthrough = push
		push.Fallthrough = j
	}
	return nil
}

// buildCFIThunk synthesizes the shared check routine. On entry the stack
// holds the candidate target; on success the routine transfers there
// with all registers restored.
func buildCFIThunk(p *ir.Program, textBase, tableBase uint32, slots, log2 int) *ir.Instruction {
	// Violation handler: terminate(139).
	viol := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: violationExitCode})
	v2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1}) // SysTerminate
	v3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	v4 := p.NewInst(isa.Inst{Op: isa.OpHlt}) // terminate never returns
	viol.Fallthrough = v2
	v2.Fallthrough = v3
	v3.Fallthrough = v4

	type step struct {
		in   isa.Inst
		mark string // label for this node
		to   string // Jcc target label
	}
	seq := []step{
		{in: isa.Inst{Op: isa.OpPush, Rd: 0}},
		{in: isa.Inst{Op: isa.OpPush, Rd: 1}},
		{in: isa.Inst{Op: isa.OpPush, Rd: 2}},
		{in: isa.Inst{Op: isa.OpPush, Rd: 3}},
		{in: isa.Inst{Op: isa.OpLoad, Rd: 0, Rs: isa.SP, Imm: 16}},          // candidate
		{in: isa.Inst{Op: isa.OpAddI, Rd: 0, Imm: int32(-int64(textBase))}}, // offset
		{in: isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: int32(tableBase)}},
		{in: isa.Inst{Op: isa.OpLoad, Rd: 1, Rs: 1, Imm: 0}}, // span
		{in: isa.Inst{Op: isa.OpCmp, Rd: 0, Rs: 1}},
		{in: isa.Inst{Op: isa.OpJcc32, Cc: isa.CcAE}, to: "pass"}, // other module
		{in: isa.Inst{Op: isa.OpInc, Rd: 0}},                      // stored form: offset+1
		{in: isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 0}},
		{in: isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: -1640531535}}, // cfiHashK as int32
		{in: isa.Inst{Op: isa.OpMul, Rd: 1, Rs: 2}},
		{in: isa.Inst{Op: isa.OpShrI, Rd: 1, Imm: int32(32 - log2)}}, // home slot
		{in: isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 0}},                // probe counter
		// probe loop
		{in: isa.Inst{Op: isa.OpMov, Rd: 2, Rs: 1}, mark: "probe"},
		{in: isa.Inst{Op: isa.OpAdd, Rd: 2, Rs: 3}},
		{in: isa.Inst{Op: isa.OpAndI, Rd: 2, Imm: int32(slots - 1)}},
		{in: isa.Inst{Op: isa.OpShlI, Rd: 2, Imm: 2}},
		{in: isa.Inst{Op: isa.OpAddI, Rd: 2, Imm: int32(tableBase + 4)}},
		{in: isa.Inst{Op: isa.OpLoad, Rd: 2, Rs: 2, Imm: 0}},
		{in: isa.Inst{Op: isa.OpCmp, Rd: 2, Rs: 0}},
		{in: isa.Inst{Op: isa.OpJcc32, Cc: isa.CcZ}, to: "pass"},
		{in: isa.Inst{Op: isa.OpCmpI8, Rd: 2, Imm: 0}},
		{in: isa.Inst{Op: isa.OpJcc32, Cc: isa.CcZ}, to: "viol"}, // empty slot: absent
		{in: isa.Inst{Op: isa.OpInc, Rd: 3}},
		{in: isa.Inst{Op: isa.OpCmpI8, Rd: 3, Imm: cfiMaxProbe}},
		{in: isa.Inst{Op: isa.OpJcc32, Cc: isa.CcL}, to: "probe"},
		{in: isa.Inst{Op: isa.OpJmp32}, to: "viol"}, // probes exhausted
		{in: isa.Inst{Op: isa.OpPop, Rd: 3}, mark: "pass"},
		{in: isa.Inst{Op: isa.OpPop, Rd: 2}},
		{in: isa.Inst{Op: isa.OpPop, Rd: 1}},
		{in: isa.Inst{Op: isa.OpPop, Rd: 0}},
		{in: isa.Inst{Op: isa.OpRet}}, // transfer to target
	}
	nodes := make([]*ir.Instruction, len(seq))
	marks := map[string]*ir.Instruction{"viol": viol}
	for i, s := range seq {
		nodes[i] = p.NewInst(s.in)
		if s.mark != "" {
			marks[s.mark] = nodes[i]
		}
		if i > 0 && nodes[i-1].Inst.HasFallthrough() {
			nodes[i-1].Fallthrough = nodes[i]
		}
	}
	for i, s := range seq {
		if s.to != "" {
			nodes[i].Target = marks[s.to]
		}
	}
	return nodes[0]
}

// fillCFITable computes the legal-target hash table once placement is
// known.
func fillCFITable(p *ir.Program, l *ir.Layout, slots, log2 int) ([]byte, error) {
	span := l.TextEnd - l.TextBase
	blob := make([]byte, 4+4*slots)
	binary.LittleEndian.PutUint32(blob, span)
	table := make([]uint32, slots)
	insert := func(addr uint32) error {
		if addr < l.TextBase || addr >= l.TextEnd {
			return nil // out of module: admitted by the span check
		}
		v := addr - l.TextBase + 1 // offset+1; zero means empty
		h := int(v * cfiHashK >> (32 - log2))
		for k := 0; k < cfiMaxProbe; k++ {
			slot := (h + k) & (slots - 1)
			switch table[slot] {
			case 0:
				table[slot] = v
				return nil
			case v:
				return nil // duplicate
			}
		}
		return fmt.Errorf("cfi: target table overflow (%d slots)", slots)
	}
	// Pinned original addresses: the only code-pointer values the
	// original program can produce.
	for _, a := range l.PinnedAddrs {
		if err := insert(a); err != nil {
			return nil, err
		}
	}
	// Legal entries into fixed ranges (in-text jump-table slots,
	// ambiguous-region return sites): those bytes execute in place and
	// cannot be instrumented, so the checks must admit them — but only
	// the addresses the program actually references, not whole ranges.
	for _, a := range p.FixedEntries {
		if err := insert(a); err != nil {
			return nil, err
		}
	}
	for _, n := range p.Insts {
		// Materialized code pointers (including the return sites the
		// callr rewrite pushes).
		if n.Target != nil {
			switch n.Inst.Op {
			case isa.OpLea, isa.OpMovI, isa.OpPushI32:
				if a, ok := l.AddrOf(n.Target); ok {
					if err := insert(a); err != nil {
						return nil, err
					}
				}
			}
		}
		// Return sites after direct calls: a call pushes the address
		// physically following it in the *rewritten* layout — which is
		// a continuation jump, not the logical fallthrough, when a
		// dollop was split right after the call — so mark M[call]+len.
		if n.Inst.Op == isa.OpCall {
			if a, ok := l.AddrOf(n); ok {
				if err := insert(a + uint32(p.ISA().InstLen(n.Inst))); err != nil {
					return nil, err
				}
			}
		}
	}
	for i, v := range table {
		binary.LittleEndian.PutUint32(blob[4+4*i:], v)
	}
	return blob, nil
}
