package zipr

// Partition and delta-admission edge cases (ISSUE 7 satellite): shared
// tail chains reachable from two entries, zero-function inputs, and a
// rel8→rel32 widening of an outgoing branch. The contract under test is
// two-outcome: either the delta path applies and is byte-identical to a
// from-scratch rewrite (checkDeltaIdentity), or it refuses with a typed
// error and the caller's full-rewrite fallback produces the answer.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"zipr/internal/ir"
	"zipr/internal/synth"
)

// sharedTailSrc has two functions whose control flow joins at a shared
// tail: f1 jumps into the block f2 falls through to, so the function
// flood assigns the tail's instructions to both functions and their
// extents overlap.
const sharedTailSrc = `
.text 0x00100000
main:
    movi r1, 5
    call f1
    call f2
    movi r0, 1
    syscall
f1:
    movi r2, 111
    add r1, r2
    jmp tail
f2:
    movi r2, 222
    add r1, r2
tail:
    addi r1, 7
    ret
`

func TestDeltaSharedTailMergesUnits(t *testing.T) {
	base := mustImage(t, sharedTailSrc)
	cfg := Config{CaptureSnapshot: true}
	_, rep, err := Rewrite(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	// f1, f2 and the shared tail must have coalesced into a single unit:
	// no unit boundary may fall strictly inside the f1..tail span, or an
	// edit near the seam could be misattributed.
	var span *ir.Range
	for i := range rep.Snapshot.Units {
		u := rep.Snapshot.Units[i].Range
		for _, other := range rep.Snapshot.Units {
			if other.Range != u && other.Range.Overlaps(u) {
				t.Fatalf("overlapping units %+v and %+v", u, other.Range)
			}
		}
		if span == nil || u.Len() > span.Len() {
			span = &rep.Snapshot.Units[i].Range
		}
	}
	if span == nil {
		t.Fatal("no units recorded")
	}
	// The merged unit must cover both movi sites (f1's and f2's bodies).
	edited := mustImage(t, strings.Replace(sharedTailSrc, "movi r2, 111", "movi r2, 119", 1))
	if !checkDeltaIdentity(t, Config{}, base, edited) {
		t.Fatal("delta refused an edit inside the shared-tail unit")
	}
	edited = mustImage(t, strings.NewReplacer("movi r2, 111", "movi r2, 7", "movi r2, 222", "movi r2, 8").Replace(sharedTailSrc))
	if !checkDeltaIdentity(t, Config{}, base, edited) {
		t.Fatal("delta refused edits to both functions sharing the tail")
	}
}

func TestPartitionUnitsZeroFunctions(t *testing.T) {
	// No program at all, and a program with no functions: both partition
	// to zero units rather than erroring.
	if units := ir.PartitionUnits(&ir.Program{}); units != nil {
		t.Fatalf("nil-binary program partitioned to %v", units)
	}
	bin := mustBinary(t, sharedTailSrc)
	if units := ir.PartitionUnits(&ir.Program{Bin: bin}); units != nil {
		t.Fatalf("zero-function program partitioned to %v", units)
	}
}

// dataOnlyFuncSrc is a program whose single function body embeds data in
// text (the handwritten-assembly shape): its unit overlaps a fixed range
// so the snapshot records no units, and every edit must be refused.
const dataOnlyFuncSrc = `
.text 0x00100000
main:
    movi r1, 41
    jmp over
blob: .word 0x11223344, 0x55667788
over:
    loadpc r2, blob
    xor r1, r2
    movi r0, 1
    syscall
`

func TestDeltaZeroUnitsRefusesEverything(t *testing.T) {
	base := mustImage(t, dataOnlyFuncSrc)
	_, rep, err := Rewrite(base, Config{CaptureSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	if len(rep.Snapshot.Units) != 0 {
		t.Fatalf("fixed-overlapping function yielded %d units", len(rep.Snapshot.Units))
	}
	edited := mustImage(t, strings.Replace(dataOnlyFuncSrc, "movi r1, 41", "movi r1, 42", 1))
	if _, _, err := rep.Snapshot.Apply(edited); !errors.Is(err, ErrDeltaInapplicable) {
		t.Fatalf("edit with zero units: got %v, want ErrDeltaInapplicable", err)
	}
	// Identical input is the degenerate success: zero changed units.
	out, info, err := rep.Snapshot.Apply(base)
	if err != nil || info.UnitsChanged != 0 {
		t.Fatalf("identical input: err=%v changed=%+v", err, info)
	}
	if !bytes.Equal(out, rep.Snapshot.Output) {
		t.Fatal("identical input did not reproduce the ancestor output")
	}
}

// TestDeltaWideningRefused covers the rel8→rel32 structural edit: the
// edited function's instruction boundaries change, so the delta path
// must refuse (typed) and the full pipeline must handle the widened
// input — never a divergent binary.
func TestDeltaWideningRefused(t *testing.T) {
	seed, prof := synth.CBProfile(2)
	src := synth.Generate(seed, prof)
	wsrc, ok := synth.MutateWiden(src)
	if !ok {
		t.Fatal("no short branch to widen in the generated program")
	}
	base, edited := mustImage(t, src), mustImage(t, wsrc)
	cfg := Config{CaptureSnapshot: true}
	_, rep, err := Rewrite(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	if _, _, err := rep.Snapshot.Apply(edited); !errors.Is(err, ErrDeltaInapplicable) {
		t.Fatalf("widened branch: got %v, want ErrDeltaInapplicable", err)
	}
	if _, _, err := Rewrite(edited, Config{}); err != nil {
		t.Fatalf("full-rewrite fallback of widened input failed: %v", err)
	}
}
