package irdb

// SQL edge-case coverage: IN-list predicates (including the empty
// list's vacuous semantics), quote escaping in Text literals, ORDER BY
// on secondary-indexed columns, and the reader/writer concurrency
// contract (exercised under -race by `make race`).

import (
	"fmt"
	"sync"
	"testing"
)

func edgeDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec("CREATE TABLE syms (addr INT, name TEXT, hot BOOL)")
	for i, row := range []struct {
		addr int
		name string
		hot  bool
	}{
		{0x1000, "alpha", true},
		{0x2000, "beta", false},
		{0x3000, "gamma", true},
		{0x4000, "delta", false},
	} {
		q := fmt.Sprintf("INSERT INTO syms (addr, name, hot) VALUES (%d, '%s', %v)", row.addr, row.name, row.hot)
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return db
}

func TestSQLInLists(t *testing.T) {
	db := edgeDB(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT * FROM syms WHERE addr IN (0x1000, 0x3000)", 2},
		{"SELECT * FROM syms WHERE addr IN (0x1000)", 1},
		{"SELECT * FROM syms WHERE addr IN (99)", 0},
		{"SELECT * FROM syms WHERE name IN ('alpha', 'nosuch', 'delta')", 2},
		{"SELECT * FROM syms WHERE hot IN (TRUE)", 2},
		{"SELECT * FROM syms WHERE addr NOT IN (0x1000, 0x3000)", 2},
		{"SELECT * FROM syms WHERE name NOT IN ('alpha')", 3},
		// Vacuous lists: IN () matches nothing, NOT IN () everything.
		{"SELECT * FROM syms WHERE addr IN ()", 0},
		{"SELECT * FROM syms WHERE addr NOT IN ()", 4},
		// IN composes with AND and the other operators.
		{"SELECT * FROM syms WHERE addr IN (0x1000, 0x2000, 0x3000) AND hot = TRUE", 2},
		{"SELECT * FROM syms WHERE addr > 0x1000 AND name IN ('beta', 'gamma')", 2},
		// COUNT over an IN predicate.
		{"SELECT COUNT(*) FROM syms WHERE addr IN (0x2000, 0x4000)", 1},
	}
	for _, tt := range cases {
		res, err := db.Exec(tt.q)
		if err != nil {
			t.Errorf("%s: %v", tt.q, err)
			continue
		}
		if len(res.Rows) != tt.want {
			t.Errorf("%s: %d rows, want %d", tt.q, len(res.Rows), tt.want)
		}
	}
	// Type mismatches inside the list never match (same as compare).
	res, err := db.Exec("SELECT * FROM syms WHERE addr IN ('alpha')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("string literal matched INT column: %d rows", len(res.Rows))
	}
	// Malformed lists are parse errors, not empty matches.
	for _, q := range []string{
		"SELECT * FROM syms WHERE addr IN (1,)",
		"SELECT * FROM syms WHERE addr IN 1",
		"SELECT * FROM syms WHERE addr IN (1",
		"SELECT * FROM syms WHERE addr NOT (1)",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%s: accepted", q)
		}
	}
}

func TestSQLStringEscaping(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE notes (txt TEXT)"); err != nil {
		t.Fatal(err)
	}
	// '' escapes a quote; the stored value carries the single quote.
	inserts := map[string]string{
		"INSERT INTO notes (txt) VALUES ('it''s')":      "it's",
		"INSERT INTO notes (txt) VALUES ('''')":         "'",
		"INSERT INTO notes (txt) VALUES ('a''''b')":     "a''b",
		"INSERT INTO notes (txt) VALUES ('')":           "",
		"INSERT INTO notes (txt) VALUES ('no escapes')": "no escapes",
		"INSERT INTO notes (txt) VALUES ('trailing''')": "trailing'",
		"INSERT INTO notes (txt) VALUES ('''leading')":  "'leading",
	}
	for q, want := range inserts {
		res, err := db.Exec(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		got, err := db.Get("notes", res.LastID)
		if err != nil {
			t.Fatal(err)
		}
		if got["txt"] != want {
			t.Errorf("%s: stored %q, want %q", q, got["txt"], want)
		}
	}
	// Escaped literals work in predicates too: the WHERE value must
	// match the unescaped stored text.
	res, err := db.Exec("SELECT COUNT(*) FROM notes WHERE txt = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0]["count"].(int64); n != 1 {
		t.Fatalf("escaped WHERE literal matched %d rows, want 1", n)
	}
	// And in IN lists.
	res, err = db.Exec("SELECT COUNT(*) FROM notes WHERE txt IN ('it''s', '''')")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0]["count"].(int64); n != 2 {
		t.Fatalf("escaped IN list matched %d rows, want 2", n)
	}
	// Unterminated strings still error, including one ending mid-escape.
	for _, q := range []string{
		"SELECT * FROM notes WHERE txt = 'open",
		"SELECT * FROM notes WHERE txt = 'open''",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%s: accepted", q)
		}
	}
}

func TestSQLOrderByIndexedColumn(t *testing.T) {
	db := edgeDB(t)
	// A secondary index on the ORDER BY column must not change result
	// order or content — only how Select scans.
	orderQ := "SELECT name FROM syms WHERE addr > 0 ORDER BY name DESC"
	want := []string{"gamma", "delta", "beta", "alpha"}
	check := func(label string) {
		t.Helper()
		res, err := db.Exec(orderQ)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("%s: %d rows, want %d", label, len(res.Rows), len(want))
		}
		for i, r := range res.Rows {
			if r["name"] != want[i] {
				t.Fatalf("%s: row %d = %v, want %s", label, i, r["name"], want[i])
			}
		}
	}
	check("unindexed")
	if err := db.CreateIndex("syms", "name"); err != nil {
		t.Fatal(err)
	}
	check("indexed")
	// Ascending with LIMIT, over the index.
	res, err := db.Exec("SELECT name FROM syms ORDER BY name ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0]["name"] != "alpha" || res.Rows[1]["name"] != "beta" {
		t.Fatalf("indexed ASC LIMIT: %+v", res.Rows)
	}
	// ORDER BY an unknown column stays a typed error with the index in
	// place.
	if _, err := db.Exec("SELECT name FROM syms ORDER BY nosuch"); err == nil {
		t.Fatal("ORDER BY unknown column accepted")
	}
}

// TestSQLConcurrentReadersWriter drives concurrent Exec readers against
// Exec writers on one DB. Run under -race this is the locking contract's
// regression test; without -race it still checks nothing is lost.
func TestSQLConcurrentReadersWriter(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE log (n INT, tag TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("log", "n"); err != nil {
		t.Fatal(err)
	}
	const writers, readers, perWriter = 2, 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				q := fmt.Sprintf("INSERT INTO log (n, tag) VALUES (%d, 'w%d')", w*perWriter+i, w)
				if _, err := db.Exec(q); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				queries := []string{
					"SELECT COUNT(*) FROM log",
					"SELECT * FROM log WHERE tag IN ('w0', 'w1') ORDER BY n DESC LIMIT 5",
					fmt.Sprintf("SELECT * FROM log WHERE n = %d", i),
				}
				if _, err := db.Exec(queries[i%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM log")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0]["count"].(int64); n != writers*perWriter {
		t.Fatalf("lost writes: %d rows, want %d", n, writers*perWriter)
	}
}
