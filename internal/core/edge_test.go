package core

import (
	"strings"
	"testing"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

func TestDeferredSizeMismatchRejected(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 256))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpNop})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 0)
	p.Entry = entry
	p.Defer("bad", 8, func(*ir.Layout) ([]byte, error) {
		return []byte{1, 2, 3}, nil // wrong size
	})
	_, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err == nil || !strings.Contains(err.Error(), "produced 3 bytes") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeferredFillErrorPropagates(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 256))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpNop})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 0)
	p.Entry = entry
	p.Defer("boom", 4, func(*ir.Layout) ([]byte, error) {
		return nil, strings.NewReader("").UnreadByte() // any error
	})
	if _, err := Reassemble(p, Options{Placer: optPlacer{}}); err == nil {
		t.Fatal("fill error swallowed")
	}
}

func TestUnplacedTargetRejected(t *testing.T) {
	// A branch whose target is not connected to anything placeable is an
	// IR bug; the patch phase must report it, not emit garbage.
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 256))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpNop})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 0)
	p.Entry = entry
	// Dangling reference: a jmp pointing to an instruction that is never
	// reachable from any pin or placement root. The jmp itself is also
	// unreachable... attach it behind the entry so it gets placed.
	orphanTarget := p.NewInst(isa.Inst{Op: isa.OpRet})
	_ = orphanTarget
	// entry chain: nop -> movi -> movi -> syscall (terminator).
	// Splice a jcc that targets a node whose own placement loop would
	// place it; this verifies targets ARE placed transitively instead.
	j := p.InsertAfter(entry, isa.Inst{Op: isa.OpJcc32, Cc: isa.CcZ})
	j.Target = orphanTarget
	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatalf("transitive placement failed: %v", err)
	}
	if _, ok := res.Layout.AddrOf(orphanTarget); !ok {
		t.Fatal("operand target was not placed")
	}
}

func TestFinishInlinesFallbackReference(t *testing.T) {
	// Two pins: the second pin's target is swallowed by the first pin's
	// fallthrough chain, so its inline region must degrade to a plain
	// reference that still works.
	const base = 0x00100000
	bin := newTestBin(base, 4096)
	p := ir.NewProgram(bin)
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 1})
	entry.Pinned = true
	// second stays pinned at an address FAR from where the chain will
	// put it (chain starts at entry's region).
	second := p.AddOrig(base+0x800, isa.Inst{Op: isa.OpAddI, Rd: 2, Imm: 10})
	second.Pinned = true
	entry.Fallthrough = second
	tail := p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2})
	second.Fallthrough = tail
	tail.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	tail.Fallthrough.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpSyscall})
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	// Direct execution: 1 + 10 = 11.
	out := runBin(t, res.Binary)
	if out.ExitCode != 11 {
		t.Fatalf("exit = %d, want 11", out.ExitCode)
	}
	// Indirect entry at the second pin must land mid-chain: 10 only...
	// the pinned address base+0x800 must hold a usable reference.
	m2 := res.Binary.Clone()
	m2.Entry = base + 0x800
	out = runBin(t, m2)
	if out.ExitCode != 10 {
		t.Fatalf("entry via second pin: exit = %d, want 10", out.ExitCode)
	}
}

func TestStatsAccounting(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 4096))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 1})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 1)
	p.Entry = entry
	res, err := Reassemble(p, Options{Placer: newDivPlacer(5)})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Pinned != 1 || s.Stubs5 != 1 || s.InlinePins != 0 {
		t.Fatalf("diversity stats = %+v", s)
	}
	if s.Dollops == 0 {
		t.Fatalf("no dollops recorded: %+v", s)
	}
	if s.FreeLeft <= 0 {
		t.Fatalf("free space accounting wrong: %+v", s)
	}
}

func TestChainMultiHop(t *testing.T) {
	// Force multi-hop chaining: a constrained pin whose ±127-byte window
	// contains no 5-byte hole but does contain a 2-byte one.
	const base = 0x00100000
	bin := newTestBin(base, 4096)
	p := ir.NewProgram(bin)
	pinAddr := uint32(base + 0x200)
	// Fixed bytes: [pin+2 .. pin+130) leaves no 5-byte room after the
	// 2-byte stub within most of the forward window; a small 2-byte gap
	// at pin+130 lets a hop land, and from there a 5-byte slot is in
	// range further on.
	p.Fixed = append(p.Fixed,
		ir.Range{Start: pinAddr + 2, End: pinAddr + 126},
		ir.Range{Start: pinAddr + 128, End: pinAddr + 200},
	)
	// Backward window is blocked too.
	p.Fixed = append(p.Fixed, ir.Range{Start: pinAddr - 300, End: pinAddr})

	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 5, Imm: int32(pinAddr)})
	entry.Pinned = true
	j := p.NewInst(isa.Inst{Op: isa.OpJmpR, Rd: 5})
	entry.Fallthrough = j
	target := p.AddOrig(pinAddr, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 21})
	target.Pinned = true
	target.Fallthrough = exitChain(p, 21)
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Chains < 2 {
		t.Fatalf("expected multi-hop chain, stats = %+v", res.Stats)
	}
	out := runBin(t, res.Binary)
	if out.ExitCode != 21 {
		t.Fatalf("exit = %d, want 21", out.ExitCode)
	}
}
