package obs

import (
	"fmt"
	"sync"
	"time"
)

// Registry is the service-lifetime labeled metric store, the
// continuous-telemetry counterpart of the per-run Trace: where a Trace
// records one pipeline run and dumps on Close, a Registry lives as long
// as the process and is scraped (Prometheus text exposition via
// WriteProm, JSON via Snapshot) while traffic flows through it.
//
// Metrics are organized as families — a name, a help string and a
// fixed, small set of label names — holding one series per distinct
// label-value tuple:
//
//	reg := obs.NewRegistry()
//	total := reg.Counter("serve.request.total", "requests by outcome", "outcome")
//	hit := total.With("hit") // resolve once, at wiring time
//	...
//	hit.Add(1) // hot path: no lookups, no allocation
//
// Family names are lowercase dotted ("serve.request.latency"); the
// exposition layer maps them to zipr_-prefixed snake_case. Label
// cardinality is bounded: a family holds at most MaxSeries series, and
// With calls beyond the cap return nil (a safe no-op handle) while the
// family counts the drop — unbounded label values (user input, raw
// addresses) must never be used as labels.
//
// The nil contract matches Trace: every method on a nil *Registry, nil
// family vec or nil series handle is a no-op, and the disabled path
// performs no allocations, so instrumentation stays compiled in
// unconditionally.
//
// All methods are safe for concurrent use from any goroutine.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	now      func() time.Time // injectable clock for window tests
}

// MaxSeries bounds the label cardinality of one family: With calls
// that would create a series beyond this cap are dropped (nil handle)
// and counted in the family's Dropped tally.
const MaxSeries = 64

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), now: time.Now}
}

// familyKind discriminates the four metric shapes.
type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindHist
	kindWindow
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHist:
		return "histogram"
	default:
		return "window"
	}
}

// family is one named metric family: fixed label names, one series per
// label-value tuple.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string
	window time.Duration // window kind only
	now    func() time.Time

	mu      sync.Mutex
	series  map[string]*series
	order   []string
	dropped int64
}

// series is one labeled member of a family. One struct backs all four
// kinds; the typed handles expose only the meaningful operations.
type series struct {
	labels []string

	mu   sync.Mutex
	val  int64   // counter, gauge
	hist Hist    // histogram
	win  winHist // window
}

// register returns the family for name, creating it on first use. A
// re-registration must agree on kind and label names: a mismatch is a
// wiring bug and panics.
func (r *Registry) register(name, help string, kind familyKind, window time.Duration, labels []string) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric family %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		window: window,
		now:    r.now,
		series: make(map[string]*series),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// with resolves (creating on first use) the series for the given label
// values. Returns nil — a no-op handle — when the value count does not
// match the family's label names or the series cap is hit.
func (f *family) with(values []string) *series {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := joinLabels(values)
	if s := f.series[key]; s != nil {
		return s
	}
	if len(f.series) >= MaxSeries {
		f.dropped++
		return nil
	}
	s := &series{labels: append([]string(nil), values...)}
	if f.kind == kindWindow {
		s.win.init(f.window)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// joinLabels builds the series map key; \x1f cannot appear in sane
// label values and keeps distinct tuples distinct.
func joinLabels(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\x1f')
		}
		b = append(b, v...)
	}
	return string(b)
}

// ---------------------------------------------------------------- vecs

// CounterVec is a family of monotonically increasing counters.
type CounterVec struct{ f *family }

// Counter registers (or returns) the counter family called name with
// the given label names. Nil-safe; see Registry for naming rules.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, 0, labels)}
}

// With resolves the series for the given label values; resolve once at
// wiring time for hot paths. Nil-safe (returns a no-op handle).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	s := v.f.with(values)
	if s == nil {
		return nil
	}
	return &Counter{s: s}
}

// Counter is one labeled counter series.
type Counter struct{ s *series }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.s.mu.Lock()
	c.s.val += delta
	c.s.mu.Unlock()
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// GaugeVec is a family of set-to-current-value gauges.
type GaugeVec struct{ f *family }

// Gauge registers (or returns) the gauge family called name.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, 0, labels)}
}

// With resolves the series for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	s := v.f.with(values)
	if s == nil {
		return nil
	}
	return &Gauge{s: s}
}

// Gauge is one labeled gauge series.
type Gauge struct{ s *series }

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Value returns the last set value. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// HistogramVec is a family of cumulative power-of-two-bucket
// histograms (the same bucket rule as Hist.Observe).
type HistogramVec struct{ f *family }

// Histogram registers (or returns) the histogram family called name.
func (r *Registry) Histogram(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHist, 0, labels)}
}

// With resolves the series for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *HistSeries {
	if v == nil {
		return nil
	}
	s := v.f.with(values)
	if s == nil {
		return nil
	}
	return &HistSeries{s: s}
}

// HistSeries is one labeled histogram series.
type HistSeries struct{ s *series }

// Observe adds one value (see Hist.Observe for the bucket-edge rule).
// Nil-safe.
func (h *HistSeries) Observe(v int64) {
	if h == nil {
		return
	}
	h.s.mu.Lock()
	h.s.hist.Observe(v)
	h.s.mu.Unlock()
}

// Quantile estimates the q-quantile over all observations. Nil-safe.
func (h *HistSeries) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.s.hist.Quantile(q)
}

// WindowVec is a family of time-windowed rolling histograms: lifetime
// totals for exposition plus p50/p95/p99 over the last window.
type WindowVec struct{ f *family }

// Window registers (or returns) the rolling-histogram family called
// name. window is the quantile horizon (how far back observations
// count); window <= 0 defaults to 5 minutes.
func (r *Registry) Window(name, help string, window time.Duration, labels ...string) *WindowVec {
	if r == nil {
		return nil
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	return &WindowVec{f: r.register(name, help, kindWindow, window, labels)}
}

// With resolves the series for the given label values. Nil-safe.
func (v *WindowVec) With(values ...string) *WindowSeries {
	if v == nil {
		return nil
	}
	s := v.f.with(values)
	if s == nil {
		return nil
	}
	return &WindowSeries{s: s, now: v.f.now}
}

// WindowSeries is one labeled rolling-histogram series.
type WindowSeries struct {
	s   *series
	now func() time.Time
}

// Observe adds one value to the current time slice (and the lifetime
// totals). Nil-safe.
func (w *WindowSeries) Observe(v int64) {
	if w == nil {
		return
	}
	now := w.now()
	w.s.mu.Lock()
	w.s.win.observe(now, v)
	w.s.mu.Unlock()
}

// Quantile estimates the q-quantile over the rolling window. Nil-safe.
func (w *WindowSeries) Quantile(q float64) int64 {
	if w == nil {
		return 0
	}
	now := w.now()
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	merged := w.s.win.merged(now)
	return merged.Quantile(q)
}

// ---------------------------------------------------------------- snapshot

// FamilySnap is the JSON-friendly snapshot of one metric family, the
// shape embedded in ziprd's /stats.
type FamilySnap struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Labels  []string     `json:"labels,omitempty"`
	Dropped int64        `json:"dropped,omitempty"`
	Series  []SeriesSnap `json:"series"`
}

// SeriesSnap is one series' snapshot. Value is set for counters and
// gauges; Count/Sum plus the quantile estimates for histograms (over
// all observations) and windows (quantiles over the rolling window,
// Count/Sum lifetime).
type SeriesSnap struct {
	Labels []string `json:"labels,omitempty"`
	Value  int64    `json:"value,omitempty"`
	Count  int64    `json:"count,omitempty"`
	Sum    int64    `json:"sum,omitempty"`
	P50    int64    `json:"p50,omitempty"`
	P95    int64    `json:"p95,omitempty"`
	P99    int64    `json:"p99,omitempty"`
}

// Snapshot captures every family in registration order, series in
// creation order. Nil-safe (nil).
func (r *Registry) Snapshot() []FamilySnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	now := r.now()
	r.mu.Unlock()

	out := make([]FamilySnap, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot(now))
	}
	return out
}

func (f *family) snapshot(now time.Time) FamilySnap {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := FamilySnap{
		Name:    f.name,
		Kind:    f.kind.String(),
		Help:    f.help,
		Labels:  f.labels,
		Dropped: f.dropped,
		Series:  make([]SeriesSnap, 0, len(f.order)),
	}
	for _, key := range f.order {
		s := f.series[key]
		s.mu.Lock()
		ss := SeriesSnap{Labels: s.labels}
		switch f.kind {
		case kindCounter, kindGauge:
			ss.Value = s.val
		case kindHist:
			ss.Count, ss.Sum = s.hist.Count, s.hist.Sum
			ss.P50 = s.hist.Quantile(0.50)
			ss.P95 = s.hist.Quantile(0.95)
			ss.P99 = s.hist.Quantile(0.99)
		case kindWindow:
			ss.Count, ss.Sum = s.win.life.Count, s.win.life.Sum
			merged := s.win.merged(now)
			ss.P50 = merged.Quantile(0.50)
			ss.P95 = merged.Quantile(0.95)
			ss.P99 = merged.Quantile(0.99)
		}
		s.mu.Unlock()
		fs.Series = append(fs.Series, ss)
	}
	return fs
}
