package zipr

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/fault"
	"zipr/internal/loader"
	"zipr/internal/obs"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

// The chaos harness enforces the pipeline's fail-closed contract under
// deterministic fault injection: for every seeded fault schedule, a
// rewrite must end in exactly one of two states — a rewritten binary
// whose transcript matches the original on every probed input, or a
// typed error (ErrorClass != "") with the caller's input bytes intact.
// Silent divergence and panics are the two forbidden outcomes.

// chaosProfiles are small, analysis-rich program shapes: jump tables,
// function-pointer tables, handwritten blocks with in-text data — the
// constructs every fault kind has sites in — at sizes that keep a
// 240-schedule sweep fast.
var chaosProfiles = []synth.Profile{
	{
		Name: "chaosa", NumFuncs: 10, OpsMin: 4, OpsMax: 10,
		HandwrittenFrac: 0.2, FuncPtrTableFrac: 0.4,
		DataWords: 48, InputLen: 4, LoopIters: 3,
	},
	{
		Name: "chaosb", NumFuncs: 16, OpsMin: 6, OpsMax: 14,
		HandwrittenFrac: 0.4, FuncPtrTableFrac: 0.5,
		DataWords: 64, InputLen: 4, LoopIters: 2,
	},
	{
		Name: "chaosc", NumFuncs: 12, OpsMin: 4, OpsMax: 12,
		HandwrittenFrac: 0.1, FuncPtrTableFrac: 0.25,
		DataWords: 32, InputLen: 4, LoopIters: 4,
	},
}

var (
	chaosOnce sync.Once
	chaosBins []*binfmt.Binary
	chaosImgs [][]byte
)

// chaosCorpus builds (once) the synth corpus and its serialized images.
func chaosCorpus(t *testing.T) ([]*binfmt.Binary, [][]byte) {
	t.Helper()
	chaosOnce.Do(func() {
		for i, p := range chaosProfiles {
			bin, err := synth.Build(int64(0xC5+i), p)
			if err != nil {
				panic(fmt.Sprintf("synth %s: %v", p.Name, err))
			}
			img, err := bin.Marshal()
			if err != nil {
				panic(fmt.Sprintf("marshal %s: %v", p.Name, err))
			}
			chaosBins = append(chaosBins, bin)
			chaosImgs = append(chaosImgs, img)
		}
	})
	return chaosBins, chaosImgs
}

// chaosInputs are the transcript probes (InputLen = 4 in all profiles).
var chaosInputs = []string{"\x00\x01\x02\x03", "\x7f\xfe\x05\x11"}

// transcriptsMatch runs orig and rewritten on every probe input and
// reports the first divergence.
func transcriptsMatch(t *testing.T, orig, rewritten *binfmt.Binary) error {
	t.Helper()
	for _, input := range chaosInputs {
		want := mustRun(t, orig, nil, input)
		got, err := execute(t, rewritten, nil, input)
		if err != nil {
			return fmt.Errorf("input %q: rewritten faulted: %v", input, err)
		}
		if want.ExitCode != got.ExitCode {
			return fmt.Errorf("input %q: exit %d != original %d", input, got.ExitCode, want.ExitCode)
		}
		if !bytes.Equal(want.Output, got.Output) {
			return fmt.Errorf("input %q: output %q != original %q", input, got.Output, want.Output)
		}
	}
	return nil
}

// chaosStacks and chaosLayouts span the schedule matrix.
var chaosStacks = []struct {
	name       string
	transforms func() []Transform
}{
	{"null", func() []Transform { return []Transform{Null()} }},
	{"cfi", func() []Transform { return []Transform{CFI()} }},
}

var chaosLayouts = []LayoutKind{LayoutOptimized, LayoutDiversity, LayoutProfileGuided}

// TestChaosScheduleSweep sweeps 40 fault-schedule seeds across both
// transform stacks and all three layouts — 240 schedules — asserting
// the no-silent-divergence invariant on every one. To reproduce one
// failing schedule, run
//
//	go test -run 'TestChaosScheduleSweep/seed<N>' .
//
// or replay it on a file with `zipr -chaos-seed <N>`.
func TestChaosScheduleSweep(t *testing.T) {
	bins, imgs := chaosCorpus(t)
	var okRewrites, typedErrors int
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			pi := int(seed) % len(bins)
			orig, img := bins[pi], imgs[pi]
			snapshot := append([]byte(nil), img...)
			// Alternate arbitration by seed parity so the sweep covers
			// the weighted path (including infer-rule-disagree sites)
			// without doubling the schedule count.
			arb := ArbitrationTwoWay
			if seed%2 == 0 {
				arb = ArbitrationWeighted
			}
			for _, stack := range chaosStacks {
				for _, lay := range chaosLayouts {
					out, _, err := Rewrite(img, Config{
						Transforms:  stack.transforms(),
						Layout:      lay,
						Arbitration: arb,
						Seed:        7,
						Chaos:       NewFaultInjector(seed),
					})
					if !bytes.Equal(img, snapshot) {
						t.Fatalf("%s/%s: rewrite mutated the caller's input bytes", stack.name, lay)
					}
					if err != nil {
						if ErrorClass(err) == "" {
							t.Fatalf("%s/%s: untyped error: %v", stack.name, lay, err)
						}
						typedErrors++
						continue
					}
					rewritten, uerr := binfmt.Unmarshal(out)
					if uerr != nil {
						t.Fatalf("%s/%s: rewrite emitted an unparseable binary: %v", stack.name, lay, uerr)
					}
					if derr := transcriptsMatch(t, orig, rewritten); derr != nil {
						t.Fatalf("%s/%s: silent divergence under fault schedule: %v", stack.name, lay, derr)
					}
					okRewrites++
				}
			}
		})
	}
	if t.Failed() {
		return
	}
	// The sweep only means something if both contract outcomes occur:
	// schedules that degrade into a correct binary AND schedules that
	// fail closed.
	if okRewrites == 0 || typedErrors == 0 {
		t.Fatalf("sweep outcomes unbalanced: %d equivalent rewrites, %d typed errors", okRewrites, typedErrors)
	}
	t.Logf("240 schedules: %d transcript-equivalent rewrites, %d typed errors", okRewrites, typedErrors)
}

// TestChaosDeterminism: a fault schedule is a pure function of its
// seed — re-running the same (seed, config, input) must reproduce the
// identical output bytes or the identical error.
func TestChaosDeterminism(t *testing.T) {
	_, imgs := chaosCorpus(t)
	for seed := int64(1); seed <= 12; seed++ {
		cfg := func() Config {
			return Config{Transforms: []Transform{CFI()}, Chaos: NewFaultInjector(seed)}
		}
		outA, _, errA := Rewrite(imgs[0], cfg())
		outB, _, errB := Rewrite(imgs[0], cfg())
		switch {
		case (errA == nil) != (errB == nil):
			t.Fatalf("seed %d: one run errored (%v), the other did not (%v)", seed, errA, errB)
		case errA != nil:
			if errA.Error() != errB.Error() {
				t.Fatalf("seed %d: errors differ:\n  %v\n  %v", seed, errA, errB)
			}
		case !bytes.Equal(outA, outB):
			t.Fatalf("seed %d: same schedule produced different binaries", seed)
		}
	}
}

// TestChaosDisasmFaultsDegrade: disassembler disagreement and truncated
// decode are pure evidence reductions — the aggregation's conservative
// case-3 policy must absorb them, so the rewrite always succeeds and
// stays transcript-equivalent.
func TestChaosDisasmFaultsDegrade(t *testing.T) {
	bins, _ := chaosCorpus(t)
	for seed := int64(1); seed <= 10; seed++ {
		inj := fault.NewArmed(seed, fault.DisasmDisagree, fault.DisasmTruncate)
		rewritten, _, err := RewriteBinary(bins[1].Clone(), Config{
			Transforms: []Transform{Null()}, Chaos: inj,
		})
		if err != nil {
			t.Fatalf("seed %d: disasm faults must degrade, got error: %v", seed, err)
		}
		if derr := transcriptsMatch(t, bins[1], rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
	}
}

// TestChaosInferDisagree: a vetoed demotion falls back to the pin the
// two-way aggregation would have kept — a pure evidence reduction. The
// weighted rewrite under an armed InferRuleDisagree schedule must stay
// transcript-equivalent and pin at least as much as the clean weighted
// run (and never more than two-way); with arbitration off the kind has
// no sites, so the output must be byte-identical to a clean two-way run.
func TestChaosInferDisagree(t *testing.T) {
	bins, _ := chaosCorpus(t)
	base := Config{Transforms: []Transform{Null()}}
	_, rep2, err := RewriteBinary(bins[1].Clone(), base)
	if err != nil {
		t.Fatal(err)
	}
	cleanW := base
	cleanW.Arbitration = ArbitrationWeighted
	_, repW, err := RewriteBinary(bins[1].Clone(), cleanW)
	if err != nil {
		t.Fatal(err)
	}
	var vetoed bool
	for seed := int64(1); seed <= 8; seed++ {
		cfg := cleanW
		cfg.Chaos = fault.NewArmed(seed, fault.InferRuleDisagree)
		tr := obs.New()
		cfg.Trace = tr
		rewritten, rep, err := RewriteBinary(bins[1].Clone(), cfg)
		if err != nil {
			t.Fatalf("seed %d: infer disagreement must degrade, got error: %v", seed, err)
		}
		if derr := transcriptsMatch(t, bins[1], rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
		if rep.Stats.Pinned < repW.Stats.Pinned {
			t.Fatalf("seed %d: vetoes shrank the pin set: %d < clean weighted %d",
				seed, rep.Stats.Pinned, repW.Stats.Pinned)
		}
		if rep.Stats.Pinned > rep2.Stats.Pinned {
			t.Fatalf("seed %d: vetoes grew the pin set past two-way: %d > %d",
				seed, rep.Stats.Pinned, rep2.Stats.Pinned)
		}
		if tr.Snapshot().Metrics.Counters["disasm.arb.disputed"] > 0 {
			vetoed = true
		}
	}
	if !vetoed {
		t.Fatal("no seed vetoed a demotion")
	}
	// Arbitration off: the kind has no sites, so an armed schedule is a
	// no-op and the bytes must match a clean two-way rewrite.
	cfg := base
	cfg.Chaos = fault.NewArmed(5, fault.InferRuleDisagree)
	faulted, _, err := RewriteBinary(bins[1].Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, _, err := RewriteBinary(bins[1].Clone(), base)
	if err != nil {
		t.Fatal(err)
	}
	fImg, _ := faulted.Marshal()
	cImg, _ := clean.Marshal()
	if !bytes.Equal(fImg, cImg) {
		t.Fatal("armed InferRuleDisagree changed a two-way rewrite's bytes")
	}
}

// TestChaosPinFloodDegrades: bogus extra pins are a safe
// over-approximation; the rewrite must succeed with a strictly larger
// pin set and stay equivalent.
func TestChaosPinFloodDegrades(t *testing.T) {
	bins, _ := chaosCorpus(t)
	_, baseReport, err := RewriteBinary(bins[0].Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatal(err)
	}
	var flooded bool
	for seed := int64(1); seed <= 8; seed++ {
		inj := fault.NewArmed(seed, fault.PinFlood)
		rewritten, report, err := RewriteBinary(bins[0].Clone(), Config{
			Transforms: []Transform{Null()}, Chaos: inj,
		})
		if err != nil {
			t.Fatalf("seed %d: pin flood must degrade, got error: %v", seed, err)
		}
		if derr := transcriptsMatch(t, bins[0], rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
		if report.Stats.Pinned > baseReport.Stats.Pinned {
			flooded = true
		}
	}
	if !flooded {
		t.Fatal("no seed grew the pin set past the baseline")
	}
}

// TestChaosEntryLostFailsClosed: losing the entry decode has no
// conservative fallback; the pipeline must return an error that is both
// classed (cfg) and marked injected, without panicking.
func TestChaosEntryLostFailsClosed(t *testing.T) {
	bins, _ := chaosCorpus(t)
	inj := fault.NewArmed(3, fault.EntryLost)
	_, _, err := RewriteBinary(bins[0].Clone(), Config{Transforms: []Transform{Null()}, Chaos: inj})
	if err == nil {
		t.Fatal("entry-lost rewrite succeeded")
	}
	if !errors.Is(err, ErrCFG) {
		t.Fatalf("error missing ErrCFG class: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error missing ErrInjected marker: %v", err)
	}
	if got := ErrorClass(err); got != "cfg" {
		t.Fatalf("ErrorClass = %q, want cfg: %v", got, err)
	}
}

// TestChaosSectionCorruptFailsClosed: a corrupted image must be
// rejected by the parser as ErrFormat with the caller's bytes intact —
// both corruption modes (truncation, broken magic) are constructed to
// be undetectable-proof.
func TestChaosSectionCorruptFailsClosed(t *testing.T) {
	_, imgs := chaosCorpus(t)
	var fired int
	for seed := int64(1); seed <= 20; seed++ {
		inj := fault.NewArmed(seed, fault.SectionCorrupt)
		snapshot := append([]byte(nil), imgs[0]...)
		_, _, err := Rewrite(imgs[0], Config{Transforms: []Transform{Null()}, Chaos: inj})
		if !bytes.Equal(imgs[0], snapshot) {
			t.Fatalf("seed %d: corruption leaked into the caller's bytes", seed)
		}
		if err == nil {
			t.Fatalf("seed %d: corrupt image rewrote successfully", seed)
		}
		if !errors.Is(err, ErrFormat) || ErrorClass(err) != "format" {
			t.Fatalf("seed %d: want format error, got %q: %v", seed, ErrorClass(err), err)
		}
		if errors.Is(err, ErrInjected) {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no seed marked its error injected")
	}
}

// TestChaosAllocExhaustDegrades: denied placements must push code onto
// the split/overflow degradation path, never change behavior.
func TestChaosAllocExhaustDegrades(t *testing.T) {
	bins, _ := chaosCorpus(t)
	_, baseReport, err := RewriteBinary(bins[1].Clone(), Config{Transforms: []Transform{CFI()}})
	if err != nil {
		t.Fatal(err)
	}
	var degraded bool
	for seed := int64(1); seed <= 6; seed++ {
		inj := fault.NewArmed(seed, fault.AllocExhaust)
		rewritten, report, err := RewriteBinary(bins[1].Clone(), Config{
			Transforms: []Transform{CFI()}, Chaos: inj,
		})
		if err != nil {
			t.Fatalf("seed %d: alloc exhaustion must degrade, got error: %v", seed, err)
		}
		if derr := transcriptsMatch(t, bins[1], rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
		if report.Stats.OverflowUsed > baseReport.Stats.OverflowUsed ||
			report.Stats.Splits > baseReport.Stats.Splits {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no seed pushed any placement onto the overflow/split path")
	}
}

// progDensePins plants a function-pointer table whose targets sit two
// bytes apart (inc is a 2-byte instruction), so every pin but the last
// takes the constrained-chain path — the sites ChainUnsat starves.
const progDensePins = `
.text 0x00100000
main:
    movi r0, 3
    movi r1, 0
    movi r2, inbuf
    movi r3, 1
    syscall
    movi r4, inbuf
    loadb r4, [r4]
    andi r4, 7
    shli r4, 2
    movi r5, tab
    add r5, r4
    load r5, [r5]
    movi r1, 0
    callr r5
    call filler
    movi r0, 1
    syscall
t0: inc r1
t1: inc r1
t2: inc r1
t3: inc r1
t4: inc r1
t5: inc r1
t6: inc r1
t7: inc r1
    ret
filler:
    movi r6, 1
    movi r7, 2
    add r6, r7
    add r6, r7
    movi r6, 3
    add r6, r7
    movi r7, 4
    add r6, r7
    movi r6, 5
    add r6, r7
    movi r7, 6
    add r6, r7
    movi r6, 7
    add r6, r7
    movi r7, 8
    add r6, r7
    ret
.data 0x00200000
tab: .word t0, t1, t2, t3, t4, t5, t6, t7
inbuf: .space 4
`

// TestChaosChainUnsat: starved chains either escalate into sleds (and
// stay equivalent) or fail closed as exhaustion — and at least one seed
// must actually take the escalation path.
func TestChaosChainUnsat(t *testing.T) {
	orig, err := asm.Assemble(progDensePins)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var escalated bool
	for seed := int64(1); seed <= 12; seed++ {
		tr := obs.New()
		inj := fault.NewArmed(seed, fault.ChainUnsat)
		rewritten, _, rerr := RewriteBinary(orig.Clone(), Config{
			Transforms: []Transform{Null()}, Chaos: inj, Trace: tr,
		})
		snap := tr.Snapshot()
		if snap.Metrics.Counters["fault.chain-unsat"] > 0 {
			escalated = true
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if rerr != nil {
			if c := ErrorClass(rerr); c != "exhausted" && c != "layout" {
				t.Fatalf("seed %d: want exhausted/layout error, got %q: %v", seed, c, rerr)
			}
			continue
		}
		if derr := transcriptsMatch(t, orig, rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
	}
	if !escalated {
		t.Fatal("no seed fired a chain-unsat fault")
	}
}

// TestChaosTransformMisuse: API misuse must be caught by Normalize/
// Validate (transform) or by the reassembler's emit pass (layout), or —
// for provably dead code — degrade into an equivalent binary.
func TestChaosTransformMisuse(t *testing.T) {
	bins, _ := chaosCorpus(t)
	var caught int
	for seed := int64(1); seed <= 30; seed++ {
		inj := fault.NewArmed(seed, fault.TransformMisuse)
		rewritten, _, err := RewriteBinary(bins[1].Clone(), Config{
			Transforms: []Transform{Null()}, Chaos: inj,
		})
		if err != nil {
			if c := ErrorClass(err); c != "transform" && c != "layout" {
				t.Fatalf("seed %d: want transform/layout error, got %q: %v", seed, c, err)
			}
			caught++
			continue
		}
		if derr := transcriptsMatch(t, bins[1], rewritten); derr != nil {
			t.Fatalf("seed %d: %v", seed, derr)
		}
	}
	if caught == 0 {
		t.Fatal("no seed produced a caught misuse")
	}
}

// TestChaosOffIsFree: a nil injector must not change the output bytes
// at all relative to a chaos-free rewrite.
func TestChaosOffIsFree(t *testing.T) {
	_, imgs := chaosCorpus(t)
	plain, _, err := Rewrite(imgs[0], Config{Transforms: []Transform{CFI()}})
	if err != nil {
		t.Fatal(err)
	}
	var nilInj *FaultInjector
	withNil, _, err := Rewrite(imgs[0], Config{Transforms: []Transform{CFI()}, Chaos: nilInj})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, withNil) {
		t.Fatal("nil injector changed the rewrite output")
	}
}

// sanity check that the loader path also reports typed errors.
func TestLoaderErrorsAreTyped(t *testing.T) {
	bins, _ := chaosCorpus(t)
	b := bins[0].Clone()
	b.Libs = []string{"nope"}
	m := vm.New()
	err := loader.Load(m, b, nil)
	if err == nil {
		t.Fatal("load of missing library succeeded")
	}
	if !errors.Is(err, ErrLoad) || ErrorClass(err) != "load" {
		t.Fatalf("want load-classed error, got %q: %v", ErrorClass(err), err)
	}
}
