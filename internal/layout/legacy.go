// Legacy slice-scanning placers: the pre-allocator implementations,
// preserved verbatim behind the new query interface. Each Choose call
// materializes a fresh copy of the block list (exactly what the old
// fs.Blocks() contract cost) and runs the historical linear scan over
// it, so these serve two purposes:
//
//   - the byte-identity oracle: a rewrite driven by a legacy placer must
//     produce the same binary as its query-based counterpart, proving
//     the allocator swap changed the complexity, not the layout;
//   - the old side of the old-vs-new placement benchmarks
//     (BenchmarkPlaceLargeSynth), which quantify what the indexed
//     allocator buys at libc scale.
//
// They are not wired to any zipr.Config layout kind.
package layout

import (
	"math/rand"

	"zipr/internal/core"
	"zipr/internal/ir"
)

// snapshotBlocks reproduces the old per-decision fs.Blocks() copy.
func snapshotBlocks(space core.Space) []ir.Range {
	blocks := make([]ir.Range, 0, space.NumBlocks())
	space.Visit(func(b ir.Range) bool {
		blocks = append(blocks, b)
		return true
	})
	return blocks
}

// LegacyOptimized is the slice-scanning Optimized placer.
type LegacyOptimized struct{}

var _ core.Placer = LegacyOptimized{}

// Name implements core.Placer.
func (LegacyOptimized) Name() string { return "optimized-legacy" }

// InlinePins implements core.Placer.
func (LegacyOptimized) InlinePins() bool { return true }

// Choose is the historical linear scan: nearest start to the hint, or
// best fit without one, first block winning ties.
func (LegacyOptimized) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	blocks := snapshotBlocks(space)
	best := -1
	var bestKey uint64
	for i, b := range blocks {
		if int(b.Len()) < size {
			continue
		}
		var key uint64
		if hint == 0 {
			key = uint64(b.Len()) // best fit
		} else {
			d := int64(b.Start) - int64(hint)
			if d < 0 {
				d = -d
			}
			key = uint64(d)
		}
		if best < 0 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best < 0 {
		return 0, false
	}
	return blocks[best].Start, true
}

// LegacyDiversity is the slice-scanning Diversity placer.
type LegacyDiversity struct {
	rng *rand.Rand
}

var _ core.Placer = (*LegacyDiversity)(nil)

// NewLegacyDiversity creates a legacy diversity placer with a
// deterministic seed.
func NewLegacyDiversity(seed int64) *LegacyDiversity {
	return &LegacyDiversity{rng: rand.New(rand.NewSource(seed))}
}

// Name implements core.Placer.
func (*LegacyDiversity) Name() string { return "diversity-legacy" }

// InlinePins implements core.Placer.
func (*LegacyDiversity) InlinePins() bool { return false }

// Choose is the historical scan: collect fitting blocks, then draw a
// random block and offset.
func (d *LegacyDiversity) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	var fitting []ir.Range
	for _, b := range snapshotBlocks(space) {
		if int(b.Len()) >= size {
			fitting = append(fitting, b)
		}
	}
	if len(fitting) == 0 {
		return 0, false
	}
	b := fitting[d.rng.Intn(len(fitting))]
	slack := int(b.Len()) - size
	off := 0
	if slack > 0 {
		off = d.rng.Intn(slack + 1)
		if al := int(space.Align()); al > 1 {
			off -= off % al // keep fixed-width placements fetchable
		}
	}
	return b.Start + uint32(off), true
}

// LegacyProfileGuided is the slice-scanning ProfileGuided placer.
type LegacyProfileGuided struct {
	// Hot lists original-address ranges considered hot.
	Hot []ir.Range

	hotZoneEnd uint32
}

var _ core.Placer = (*LegacyProfileGuided)(nil)

// Name implements core.Placer.
func (*LegacyProfileGuided) Name() string { return "profile-guided-legacy" }

// InlinePins implements core.Placer.
func (*LegacyProfileGuided) InlinePins() bool { return false }

func (p *LegacyProfileGuided) isHot(hint, origin uint32) bool {
	if origin != 0 {
		for _, r := range p.Hot {
			if r.Contains(origin) {
				return true
			}
		}
		return false
	}
	return hint != 0 && hint <= p.hotZoneEnd
}

// Choose is the historical scan: hot requests walk the sorted list
// bottom-up, cold requests top-down.
func (p *LegacyProfileGuided) Choose(space core.Space, size int, hint, origin uint32) (uint32, bool) {
	blocks := snapshotBlocks(space)
	if len(blocks) == 0 {
		return 0, false
	}
	if p.isHot(hint, origin) {
		for _, b := range blocks { // blocks are address-sorted
			if int(b.Len()) >= size {
				end := b.Start + uint32(size)
				if end > p.hotZoneEnd {
					p.hotZoneEnd = end
				}
				return b.Start, true
			}
		}
		return 0, false
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if int(b.Len()) >= size {
			return b.End - uint32(size), true
		}
	}
	return 0, false
}
