package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Encoding and decoding of ZVM-32 machine code. Multi-byte immediates are
// little-endian, as on x86.

// Decode errors.
var (
	ErrTruncated = errors.New("isa: truncated instruction")
	ErrBadOpcode = errors.New("isa: unknown opcode")
	ErrBadReg    = errors.New("isa: register index out of range")
	ErrBadCc     = errors.New("isa: unknown condition code")
)

// MaxLen is the longest possible ZVM-32 encoding in bytes.
const MaxLen = 7

// AppendEncode appends the encoding of in to dst and returns the extended
// slice. It returns an error when the instruction is malformed (invalid
// op, register out of range, immediate out of range for the form).
func AppendEncode(dst []byte, in Inst) ([]byte, error) {
	if !in.Op.Valid() {
		return dst, fmt.Errorf("%w: op %d", ErrBadOpcode, in.Op)
	}
	info := opTable[in.Op]
	checkReg := func(r uint8) error {
		if r >= NumRegs {
			return fmt.Errorf("%w: r%d", ErrBadReg, r)
		}
		return nil
	}
	checkImm8 := func() error {
		if in.Imm < -128 || in.Imm > 127 {
			return fmt.Errorf("isa: immediate %d out of int8 range for %s", in.Imm, in.Op.Name())
		}
		return nil
	}
	le32 := func(v int32) []byte {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		return b[:]
	}
	switch info.form {
	case fNone:
		return append(dst, info.byte), nil
	case fReg:
		if err := checkReg(in.Rd); err != nil {
			return dst, err
		}
		return append(dst, info.byte, in.Rd), nil
	case fImm8, fRel8:
		if err := checkImm8(); err != nil {
			return dst, err
		}
		return append(dst, info.byte, byte(int8(in.Imm))), nil
	case fRegReg:
		if err := checkReg(in.Rd); err != nil {
			return dst, err
		}
		if err := checkReg(in.Rs); err != nil {
			return dst, err
		}
		return append(dst, info.byte, in.Rd, in.Rs), nil
	case fRegImm8:
		if err := checkReg(in.Rd); err != nil {
			return dst, err
		}
		if err := checkImm8(); err != nil {
			return dst, err
		}
		return append(dst, info.byte, in.Rd, byte(int8(in.Imm))), nil
	case fImm32, fRel32:
		return append(append(dst, info.byte), le32(in.Imm)...), nil
	case fRegImm32, fRegRel32:
		if err := checkReg(in.Rd); err != nil {
			return dst, err
		}
		return append(append(dst, info.byte, in.Rd), le32(in.Imm)...), nil
	case fCc8:
		if !ValidCc(in.Cc) {
			return dst, fmt.Errorf("%w: %d", ErrBadCc, in.Cc)
		}
		if err := checkImm8(); err != nil {
			return dst, err
		}
		return append(dst, 0x70|uint8(in.Cc), byte(int8(in.Imm))), nil
	case fCc32:
		if !ValidCc(in.Cc) {
			return dst, fmt.Errorf("%w: %d", ErrBadCc, in.Cc)
		}
		return append(append(dst, Jcc32Prefix, 0x80|uint8(in.Cc)), le32(in.Imm)...), nil
	case fMem:
		if err := checkReg(in.Rd); err != nil {
			return dst, err
		}
		if err := checkReg(in.Rs); err != nil {
			return dst, err
		}
		return append(append(dst, info.byte, in.Rd, in.Rs), le32(in.Imm)...), nil
	}
	return dst, fmt.Errorf("%w: op %d", ErrBadOpcode, in.Op)
}

// Encode returns the encoding of in.
func Encode(in Inst) ([]byte, error) {
	return AppendEncode(make([]byte, 0, MaxLen), in)
}

// MustEncode is Encode for instructions known valid by construction; it
// panics on error and is intended for internal code generators and tests.
func MustEncode(in Inst) []byte {
	b, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode decodes the instruction at the start of b. It returns the
// instruction and consumes Inst.Len bytes. Errors: ErrTruncated when b is
// too short, ErrBadOpcode for undefined encodings, ErrBadReg for register
// bytes >= NumRegs (such byte sequences are data, not code).
func Decode(b []byte) (Inst, error) {
	if len(b) == 0 {
		return Inst{}, ErrTruncated
	}
	// Conditional short jumps: 0x70|cc for defined cc only.
	if b[0]&0xF0 == 0x70 {
		cc := Cc(b[0] & 0x0F)
		if ValidCc(cc) {
			if len(b) < 2 {
				return Inst{}, ErrTruncated
			}
			return Inst{Op: OpJcc8, Cc: cc, Imm: int32(int8(b[1]))}, nil
		}
	}
	// Conditional long jumps: 0x0F 0x80|cc rel32.
	if b[0] == Jcc32Prefix {
		if len(b) < 2 {
			return Inst{}, ErrTruncated
		}
		if b[1]&0xF0 != 0x80 {
			return Inst{}, fmt.Errorf("%w: 0f %02x", ErrBadOpcode, b[1])
		}
		cc := Cc(b[1] & 0x0F)
		if !ValidCc(cc) {
			return Inst{}, fmt.Errorf("%w: cc %x", ErrBadCc, cc)
		}
		if len(b) < 6 {
			return Inst{}, ErrTruncated
		}
		return Inst{Op: OpJcc32, Cc: cc, Imm: int32(binary.LittleEndian.Uint32(b[2:6]))}, nil
	}
	op := byteToOp[b[0]]
	if op == OpInvalid {
		return Inst{}, fmt.Errorf("%w: %02x", ErrBadOpcode, b[0])
	}
	info := opTable[op]
	n := formLen[info.form]
	if len(b) < n {
		return Inst{}, ErrTruncated
	}
	reg := func(v byte) (uint8, error) {
		if v >= NumRegs {
			return 0, fmt.Errorf("%w: r%d", ErrBadReg, v)
		}
		return v, nil
	}
	in := Inst{Op: op}
	var err error
	switch info.form {
	case fNone:
	case fReg:
		if in.Rd, err = reg(b[1]); err != nil {
			return Inst{}, err
		}
	case fImm8, fRel8:
		in.Imm = int32(int8(b[1]))
	case fRegReg:
		if in.Rd, err = reg(b[1]); err != nil {
			return Inst{}, err
		}
		if in.Rs, err = reg(b[2]); err != nil {
			return Inst{}, err
		}
	case fRegImm8:
		if in.Rd, err = reg(b[1]); err != nil {
			return Inst{}, err
		}
		in.Imm = int32(int8(b[2]))
	case fImm32, fRel32:
		in.Imm = int32(binary.LittleEndian.Uint32(b[1:5]))
	case fRegImm32, fRegRel32:
		if in.Rd, err = reg(b[1]); err != nil {
			return Inst{}, err
		}
		in.Imm = int32(binary.LittleEndian.Uint32(b[2:6]))
	case fMem:
		if in.Rd, err = reg(b[1]); err != nil {
			return Inst{}, err
		}
		if in.Rs, err = reg(b[2]); err != nil {
			return Inst{}, err
		}
		in.Imm = int32(binary.LittleEndian.Uint32(b[3:7]))
	default:
		return Inst{}, fmt.Errorf("%w: %02x", ErrBadOpcode, b[0])
	}
	return in, nil
}
