// diversity: rewrites the same binary under the diversity layout with
// different seeds, showing that (a) the code layouts genuinely differ —
// an attacker's hard-coded gadget addresses break — while (b) behavior
// is bit-identical on every input, and contrasts the memory footprint
// against the optimized layout (paper §III's tradeoff).
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipr"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

func run(bin *binfmt.Binary, input []byte) vm.Result {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(20_000_000))
	if err := loader.Load(m, bin, nil); err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// firstDiff returns the offset of the first differing text byte.
func firstDiff(a, b *binfmt.Binary) int {
	ta, tb := a.Text().Data, b.Text().Data
	n := len(ta)
	if len(tb) < n {
		n = len(tb)
	}
	for i := 0; i < n; i++ {
		if ta[i] != tb[i] {
			return i
		}
	}
	return -1
}

func main() {
	// A text-heavy, heap-light program makes the layouts' paging
	// behavior visible: almost all resident pages hold code.
	profile := synth.Profile{
		Name:      "divdemo",
		NumFuncs:  160,
		OpsMin:    8,
		OpsMax:    24,
		LoopIters: 24,
		HeapPages: 1,
		InputLen:  32,
	}
	original, err := synth.Build(7, profile)
	if err != nil {
		log.Fatal(err)
	}
	input := []byte("diversify-me-0123456789abcdef!!")
	baseline := run(original, input)
	fmt.Printf("original: exit=%d steps=%d maxrss=%d pages\n",
		baseline.ExitCode, baseline.Steps, baseline.PagesTouched)

	var variants []*binfmt.Binary
	for s := int64(1); s <= 3; s++ {
		rw, report, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
			Transforms: []zipr.Transform{zipr.Null()},
			Layout:     zipr.LayoutDiversity,
			Seed:       s,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := run(rw, input)
		same := res.ExitCode == baseline.ExitCode && bytes.Equal(res.Output, baseline.Output)
		fmt.Printf("seed %d:   exit=%d steps=%d maxrss=%d pages, file %+.1f%%, behavior identical: %v\n",
			s, res.ExitCode, res.Steps, res.PagesTouched, report.SizeOverhead()*100, same)
		variants = append(variants, rw)
	}
	for i := 0; i < len(variants); i++ {
		for j := i + 1; j < len(variants); j++ {
			fmt.Printf("layout(seed %d) vs layout(seed %d): first differing text byte at offset %d\n",
				i+1, j+1, firstDiff(variants[i], variants[j]))
		}
	}

	opt, _, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.Null()},
		Layout:     zipr.LayoutOptimized,
	})
	if err != nil {
		log.Fatal(err)
	}
	optRes := run(opt, input)
	divRes := run(variants[0], input)
	fmt.Printf("\noptimized layout maxrss: %d pages; diversity layout maxrss: %d pages\n",
		optRes.PagesTouched, divRes.PagesTouched)
	fmt.Println("(diversity trades memory locality for layout unpredictability — paper §III)")
}
