package zipr

// Per-ISA golden suite: the ZVM-64 companion to golden_test.go. A
// spread of corpus programs plus the handwritten veneer-stress program
// are rewritten under the same (stack x layout x arbitration) matrix
// with Config.ISA = "zvm64", and image + transcript digests are pinned
// in testdata/golden/corpus_zvm64.json. The suite exists so the
// architecture abstraction cannot rot in one direction only: a change
// that keeps the variable-width pipeline byte-identical but perturbs
// fixed-width reassembly (alignment, reach checks, veneer placement)
// fails here with the exact cell that moved.
//
// The veneer program runs on a reduced cell set by design (see
// veneerGoldenCells): its address-space accounting is engineered down
// to the byte so that the null stack packs without islands, the CFI
// stack must emit them, and the remaining configurations exhaust free
// space and fail closed — the fail-closed half is pinned by
// TestVeneerFragmentationFailsClosed rather than by digests.
//
// Regenerate after an intentional output change with:
//
//	go test -run TestGoldenZVM64 -update .

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/isa"
	"zipr/internal/synth"
)

const goldenISAPath = "testdata/golden/corpus_zvm64.json"

// goldenISACBs is the corpus slice the fixed-width suite pins: the
// first and last profiles plus a spread across the generator's shape
// space (handwritten-heavy, table-heavy, loop-heavy). The full 62-way
// product stays with the default ISA; this suite buys per-cell variety
// instead of volume.
func goldenISACBs() []int { return []int{0, 7, 21, 42, 61} }

// veneerGoldenCells returns the (stack, layout) pairs the veneer-stress
// program pins, with the veneer-count contract each must satisfy. Both
// arbitration modes run for every pair.
type veneerCellSpec struct {
	stack       string
	layout      string
	wantVeneers bool
}

func veneerGoldenCells() []veneerCellSpec {
	return []veneerCellSpec{
		{"null", "optimized", false}, // demand == supply: packs island-free
		{"cfi", "optimized", true},   // thunk evicts vn_fb: islands required
	}
}

// veneerFailCells are the veneer-program configurations engineered to
// exhaust the pre-blob zone (fragmentation leaves no in-reach island
// slot); they must fail closed with ErrExhausted, never diverge.
func veneerFailCells() []struct{ stack, layout string } {
	return []struct{ stack, layout string }{
		{"full", "optimized"},
		{"null", "diversity"},
		{"cfi", "diversity"},
		{"full", "diversity"},
	}
}

func findGoldenStack(t *testing.T, name string) goldenStack {
	t.Helper()
	for _, s := range goldenStacks() {
		if s.name == name {
			return s
		}
	}
	t.Fatalf("unknown golden stack %q", name)
	return goldenStack{}
}

func findGoldenLayout(t *testing.T, name string) goldenLayout {
	t.Helper()
	for _, l := range goldenLayouts() {
		if l.name == name {
			return l
		}
	}
	t.Fatalf("unknown golden layout %q", name)
	return goldenLayout{}
}

func loadGoldenISA(t *testing.T) *goldenFile {
	t.Helper()
	raw, err := os.ReadFile(goldenISAPath)
	if err != nil {
		t.Fatalf("zvm64 golden file missing (%v); generate it with: go test -run TestGoldenZVM64 -update .", err)
	}
	var g goldenFile
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatalf("zvm64 golden file corrupt: %v", err)
	}
	if g.Version != 1 {
		t.Fatalf("zvm64 golden file version %d, this suite expects 1", g.Version)
	}
	return &g
}

// goldenISAKey appends the ISA dimension to the shared cell-key format,
// so a zvm64 key can never collide with a default-ISA key even if the
// two files are ever merged.
func goldenISAKey(cb, stack, layout, arb string) string {
	return goldenCellKey(cb, stack, layout, arb) + "/zvm64"
}

// zvm64GoldenCBs builds the suite's program list: the corpus slice plus
// the veneer-stress program.
func zvm64GoldenCBs(t *testing.T) []cgcsim.CB {
	t.Helper()
	var cbs []cgcsim.CB
	for _, idx := range goldenISACBs() {
		cb, err := cgcsim.CBArch(idx, isa.ZVM64)
		if err != nil {
			t.Fatal(err)
		}
		cbs = append(cbs, cb)
	}
	vcb, err := cgcsim.VeneerCB(isa.ZVM64)
	if err != nil {
		t.Fatal(err)
	}
	cbs = append(cbs, vcb)
	return cbs
}

func TestGoldenZVM64(t *testing.T) {
	stride := goldenStride
	if testing.Short() && stride < 4 {
		stride = 4
	}
	if *updateGolden && stride != 1 {
		t.Fatal("-update needs the full matrix: run without -race and -short")
	}
	var pinned *goldenFile
	updated := &goldenFile{Version: 1, Cells: make(map[string]goldenCell)}
	if !*updateGolden {
		pinned = loadGoldenISA(t)
	}
	stacks, layouts, arbs := goldenStacks(), goldenLayouts(), goldenArbs()

	type cellPlan struct {
		cb          *cgcsim.CB
		stack       goldenStack
		layout      goldenLayout
		arb         goldenArb
		checkVeneer bool
		wantVeneers bool
	}
	cbs := zvm64GoldenCBs(t)
	var plan []cellPlan
	for i := range cbs {
		cb := &cbs[i]
		if cb.Name == synth.VeneerStressName {
			for _, spec := range veneerGoldenCells() {
				for _, ga := range arbs {
					plan = append(plan, cellPlan{cb, findGoldenStack(t, spec.stack),
						findGoldenLayout(t, spec.layout), ga, true, spec.wantVeneers})
				}
			}
			continue
		}
		for _, stack := range stacks {
			for _, lay := range layouts {
				for _, ga := range arbs {
					plan = append(plan, cellPlan{cb, stack, lay, ga, false, false})
				}
			}
		}
	}

	origTS := make(map[string][]cgcsim.Transcript)
	measureOrig := func(cb *cgcsim.CB) []cgcsim.Transcript {
		ts, ok := origTS[cb.Name]
		if !ok {
			var err error
			_, ts, err = cgcsim.MeasureArch(cb.Bin, nil, cb.Pollers, isa.ZVM64)
			if err != nil {
				t.Fatalf("%s: original execution: %v", cb.Name, err)
			}
			origTS[cb.Name] = ts
		}
		return ts
	}

	inputs := make(map[string][]byte)
	cells := 0
	for i, pc := range plan {
		if i%stride != 0 {
			continue
		}
		key := goldenISAKey(pc.cb.Name, pc.stack.name, pc.layout.name, pc.arb.suffix)
		input, ok := inputs[pc.cb.Name]
		if !ok {
			var err error
			input, err = pc.cb.Bin.Marshal()
			if err != nil {
				t.Fatalf("%s: marshal: %v", pc.cb.Name, err)
			}
			inputs[pc.cb.Name] = input
		}
		cfg := Config{Transforms: pc.stack.tfs(), Layout: pc.layout.layout,
			Seed: pc.layout.seed, Arbitration: pc.arb.arb, ISA: "zvm64"}
		out, rep, err := Rewrite(input, cfg)
		if err != nil {
			t.Errorf("%s: rewrite: %v", key, err)
			continue
		}
		if pc.checkVeneer {
			// The veneer program's contract is structural, not just
			// byte-level: the CFI cells must need range islands, the null
			// cells must not. A digest match cannot substitute — it would
			// also pin a world where veneers silently stopped mattering.
			if pc.wantVeneers && rep.Stats.Veneers == 0 {
				t.Errorf("%s: expected range-extension veneers, placement used none", key)
			}
			if !pc.wantVeneers && rep.Stats.Veneers != 0 {
				t.Errorf("%s: expected island-free placement, got %d veneers", key, rep.Stats.Veneers)
			}
		}
		imgSum := sha256.Sum256(out)
		imgHex := hex.EncodeToString(imgSum[:])
		cells++

		execute := func() (string, bool) {
			rw, err := binfmt.Unmarshal(out)
			if err != nil {
				t.Errorf("%s: unmarshal rewritten image: %v", key, err)
				return "", false
			}
			_, rwTS, err := cgcsim.MeasureArch(rw, nil, pc.cb.Pollers, isa.ZVM64)
			if err != nil {
				t.Errorf("%s: rewritten execution: %v", key, err)
				return "", false
			}
			if !cgcsim.Equivalent(measureOrig(pc.cb), rwTS) {
				t.Errorf("%s: rewritten transcripts differ from the original binary", key)
				return "", false
			}
			return transcriptDigest(rwTS), true
		}

		if *updateGolden {
			td, ok := execute()
			if ok {
				updated.Cells[key] = goldenCell{Image: imgHex, Transcript: td}
			}
			continue
		}
		want, ok := pinned.Cells[key]
		if !ok {
			t.Errorf("%s: no pinned digests (new cell?); regenerate with -update", key)
			continue
		}
		if imgHex == want.Image {
			continue // identical bytes imply identical transcripts
		}
		td, ok := execute()
		if !ok {
			continue
		}
		if td != want.Transcript {
			t.Errorf("%s: image AND execution transcript digests drifted\n  pinned image %s\n  got    image %s\n  pinned transcript %s\n  got    transcript %s",
				key, want.Image, imgHex, want.Transcript, td)
		} else {
			t.Errorf("%s: rewritten image digest drifted (transcripts unchanged)\n  pinned %s\n  got    %s", key, want.Image, imgHex)
		}
	}
	wantCells := (len(plan) + stride - 1) / stride
	if cells != wantCells && !t.Failed() {
		t.Errorf("covered %d cells, want %d", cells, wantCells)
	}
	if *updateGolden {
		if t.Failed() {
			t.Fatal("not writing zvm64 golden file: some cells failed")
		}
		raw, err := json.MarshalIndent(updated, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		raw = append(raw, '\n')
		tmp := goldenISAPath + ".tmp"
		if err := os.WriteFile(tmp, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, goldenISAPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("pinned %d cells to %s", len(updated.Cells), goldenISAPath)
	}
}

// TestGoldenZVM64FileComplete pins the key set itself: the file must
// contain exactly (corpus slice x stacks x layouts x arbs) plus the
// veneer program's reduced cell set, every key carrying the /zvm64 ISA
// suffix — so the five-dimensional cross product (program, stack,
// layout, arbitration, ISA) is enumerated in one place and a stale or
// over-pinned file fails even when a strided run skips the cells.
func TestGoldenZVM64FileComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	pinned := loadGoldenISA(t)
	want := make(map[string]bool)
	for _, idx := range goldenISACBs() {
		_, profile := synth.CBProfile(idx)
		for _, stack := range goldenStacks() {
			for _, lay := range goldenLayouts() {
				for _, ga := range goldenArbs() {
					want[goldenISAKey(profile.Name, stack.name, lay.name, ga.suffix)] = true
				}
			}
		}
	}
	for _, spec := range veneerGoldenCells() {
		for _, ga := range goldenArbs() {
			want[goldenISAKey(synth.VeneerStressName, spec.stack, spec.layout, ga.suffix)] = true
		}
	}
	for key := range want {
		if _, ok := pinned.Cells[key]; !ok {
			t.Errorf("cell %s missing from zvm64 golden file; regenerate with -update", key)
		}
	}
	for key := range pinned.Cells {
		if !want[key] {
			t.Errorf("zvm64 golden file pins unknown cell %s; regenerate with -update", key)
		}
	}
	if len(pinned.Cells) != len(want) {
		t.Errorf("zvm64 golden file has %d cells, matrix defines %d", len(pinned.Cells), len(want))
	}
	for key, cell := range pinned.Cells {
		for _, d := range []string{cell.Image, cell.Transcript} {
			if len(d) != 64 {
				t.Errorf("cell %s: digest %q is not a sha256 hex string", key, d)
			} else if _, err := hex.DecodeString(d); err != nil {
				t.Errorf("cell %s: digest %q: %v", key, d, err)
			}
		}
	}
}

// TestVeneerFragmentationFailsClosed pins the other half of the veneer
// program's contract: the configurations whose placement shreds the
// pre-blob zone into sub-island fragments (instrumentation demand under
// the full stack, random scatter under diversity) must surface
// ErrExhausted — "no in-reach island slot" is an error, never a
// silently mis-reaching branch — and leave the caller's input intact.
func TestVeneerFragmentationFailsClosed(t *testing.T) {
	vcb, err := cgcsim.VeneerCB(isa.ZVM64)
	if err != nil {
		t.Fatal(err)
	}
	input, err := vcb.Bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), input...)
	for _, cell := range veneerFailCells() {
		for _, ga := range goldenArbs() {
			key := goldenISAKey(vcb.Name, cell.stack, cell.layout, ga.suffix)
			stack := findGoldenStack(t, cell.stack)
			lay := findGoldenLayout(t, cell.layout)
			_, _, err := Rewrite(input, Config{Transforms: stack.tfs(), Layout: lay.layout,
				Seed: lay.seed, Arbitration: ga.arb, ISA: "zvm64"})
			if err == nil {
				t.Errorf("%s: expected exhaustion, rewrite succeeded", key)
				continue
			}
			if !errors.Is(err, ErrExhausted) {
				t.Errorf("%s: error is not ErrExhausted: %v", key, err)
			}
			if ErrorClass(err) == "" {
				t.Errorf("%s: exhaustion error carries no class: %v", key, err)
			}
		}
	}
	if !equalBytes(input, snapshot) {
		t.Fatal("failed rewrites mutated the caller's input bytes")
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
