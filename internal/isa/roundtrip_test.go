package isa

// Exhaustive encode/decode round-trip coverage: every defined opcode is
// exercised with boundary operands generated from its form — register
// extremes, int8/int32 immediate extremes, every condition code — and
// the decode must reproduce the instruction, the advertised length and
// the exact bytes. The hand-written sample table in isa_test.go stays
// as documentation; this file is the completeness gate (a new opcode
// added to opTable is covered here automatically).

import (
	"bytes"
	"math"
	"testing"
)

// boundaryCases returns the operand combinations worth pinning for one
// form: the extremes of every operand field plus a mid-range value.
func boundaryCases(f form) []Inst {
	regs := []uint8{0, 1, NumRegs - 1}
	imm8s := []int32{math.MinInt8, -1, 0, 1, math.MaxInt8}
	imm32s := []int32{math.MinInt32, -1, 0, 1, math.MaxInt32}
	var ccs []Cc
	for cc := range ccNames {
		ccs = append(ccs, cc)
	}
	var out []Inst
	switch f {
	case fNone:
		out = append(out, Inst{})
	case fReg:
		for _, r := range regs {
			out = append(out, Inst{Rd: r})
		}
	case fImm8, fRel8:
		for _, imm := range imm8s {
			out = append(out, Inst{Imm: imm})
		}
	case fRegReg:
		for _, rd := range regs {
			for _, rs := range regs {
				out = append(out, Inst{Rd: rd, Rs: rs})
			}
		}
	case fRegImm8:
		for _, rd := range regs {
			for _, imm := range imm8s {
				out = append(out, Inst{Rd: rd, Imm: imm})
			}
		}
	case fImm32, fRel32:
		for _, imm := range imm32s {
			out = append(out, Inst{Imm: imm})
		}
	case fRegImm32, fRegRel32:
		for _, rd := range regs {
			for _, imm := range imm32s {
				out = append(out, Inst{Rd: rd, Imm: imm})
			}
		}
	case fCc8:
		for _, cc := range ccs {
			for _, imm := range imm8s {
				out = append(out, Inst{Cc: cc, Imm: imm})
			}
		}
	case fCc32:
		for _, cc := range ccs {
			for _, imm := range imm32s {
				out = append(out, Inst{Cc: cc, Imm: imm})
			}
		}
	case fMem:
		for _, rd := range regs {
			for _, rs := range regs {
				for _, imm := range imm32s {
					out = append(out, Inst{Rd: rd, Rs: rs, Imm: imm})
				}
			}
		}
	}
	return out
}

// TestRoundTripEveryOpcode drives every defined operation through
// encode -> decode -> re-encode with boundary operands.
func TestRoundTripEveryOpcode(t *testing.T) {
	covered := 0
	for op := Op(1); op < opMax; op++ {
		info := opTable[op]
		if info.form == 0 {
			t.Errorf("op %d has no opTable entry", op)
			continue
		}
		covered++
		cases := boundaryCases(info.form)
		if len(cases) == 0 {
			t.Errorf("%s: no boundary cases for form %d", info.name, info.form)
			continue
		}
		for _, c := range cases {
			in := c
			in.Op = op
			enc, err := Encode(in)
			if err != nil {
				t.Errorf("%s %+v: Encode: %v", info.name, in, err)
				continue
			}
			if want := formLen[info.form]; len(enc) != want {
				t.Errorf("%s %+v: encoded %d bytes, form says %d", info.name, in, len(enc), want)
			}
			if got := in.Len(); got != len(enc) {
				t.Errorf("%s %+v: Len() = %d, encoding is %d bytes", info.name, in, got, len(enc))
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Errorf("%s %+v: Decode(% x): %v", info.name, in, enc, err)
				continue
			}
			if dec != in {
				t.Errorf("%s: round trip mangled instruction\n  in  %+v\n  out %+v (bytes % x)", info.name, in, dec, enc)
				continue
			}
			re, err := Encode(dec)
			if err != nil {
				t.Errorf("%s %+v: re-encode: %v", info.name, dec, err)
				continue
			}
			if !bytes.Equal(enc, re) {
				t.Errorf("%s %+v: re-encode differs: % x vs % x", info.name, in, enc, re)
			}
			// Decoding with trailing garbage must not change the result:
			// the decoder consumes exactly Len bytes.
			padded := append(append([]byte(nil), enc...), 0xCC, 0xCC)
			if dec2, err := Decode(padded); err != nil || dec2 != in {
				t.Errorf("%s %+v: decode with trailing bytes: %+v, %v", info.name, in, dec2, err)
			}
		}
	}
	if covered != int(opMax)-1 {
		t.Errorf("covered %d opcodes, table defines %d", covered, int(opMax)-1)
	}
}

// TestShortBranchExtremes pins the rel8 forms at both displacement
// extremes byte-for-byte: the span-dependent branch relaxation depends
// on -128 and +127 encoding (and decoding) exactly.
func TestShortBranchExtremes(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
		want []byte
	}{
		{"jmp.s back", Inst{Op: OpJmp8, Imm: -128}, []byte{0xEB, 0x80}},
		{"jmp.s fwd", Inst{Op: OpJmp8, Imm: 127}, []byte{0xEB, 0x7F}},
		{"jz.s back", Inst{Op: OpJcc8, Cc: CcZ, Imm: -128}, []byte{0x74, 0x80}},
		{"jz.s fwd", Inst{Op: OpJcc8, Cc: CcZ, Imm: 127}, []byte{0x74, 0x7F}},
		{"jnz.s fwd", Inst{Op: OpJcc8, Cc: CcNZ, Imm: 127}, []byte{0x75, 0x7F}},
		{"push8 min", Inst{Op: OpPushI8, Imm: -128}, []byte{0x6A, 0x80}},
		{"push8 max", Inst{Op: OpPushI8, Imm: 127}, []byte{0x6A, 0x7F}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			enc, err := Encode(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, tt.want) {
				t.Fatalf("encoded % x, want % x", enc, tt.want)
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if dec != tt.in {
				t.Fatalf("decoded %+v, want %+v", dec, tt.in)
			}
		})
	}
	// One past each extreme must be rejected, not truncated.
	for _, imm := range []int32{-129, 128} {
		for _, op := range []Op{OpJmp8, OpPushI8} {
			if _, err := Encode(Inst{Op: op, Imm: imm}); err == nil {
				t.Errorf("%s imm=%d: out-of-range immediate accepted", opTable[op].name, imm)
			}
		}
		if _, err := Encode(Inst{Op: OpJcc8, Cc: CcZ, Imm: imm}); err == nil {
			t.Errorf("jcc.s imm=%d: out-of-range immediate accepted", imm)
		}
	}
}

// TestEncodeRejectsMalformed covers the encoder's error taxonomy per
// operand field.
func TestEncodeRejectsMalformed(t *testing.T) {
	bad := []struct {
		name string
		in   Inst
	}{
		{"invalid op", Inst{Op: OpInvalid}},
		{"op past table", Inst{Op: opMax}},
		{"rd out of range", Inst{Op: OpPush, Rd: NumRegs}},
		{"rs out of range", Inst{Op: OpAdd, Rd: 0, Rs: NumRegs}},
		{"mem rd out of range", Inst{Op: OpLoad, Rd: NumRegs, Rs: 0}},
		{"mem rs out of range", Inst{Op: OpStore, Rd: 0, Rs: 255}},
		{"bad cc short", Inst{Op: OpJcc8, Cc: 0x0}},
		{"bad cc long", Inst{Op: OpJcc32, Cc: 0x7}},
		{"regimm8 overflow", Inst{Op: OpAddI8, Rd: 0, Imm: 128}},
		{"regimm8 underflow", Inst{Op: OpShlI, Rd: 0, Imm: -129}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if b, err := Encode(tt.in); err == nil {
				t.Fatalf("accepted as % x", b)
			}
		})
	}
}

// TestDecodeTruncation feeds every defined encoding to the decoder one
// byte short of each prefix length: all must answer ErrTruncated (never
// a partial instruction, never a panic).
func TestDecodeTruncation(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		info := opTable[op]
		in := Inst{Op: op}
		if info.form == fCc8 || info.form == fCc32 {
			in.Cc = CcZ
		}
		enc, err := Encode(in)
		if err != nil {
			t.Fatalf("%s: %v", info.name, err)
		}
		for n := 0; n < len(enc); n++ {
			if _, err := Decode(enc[:n]); err == nil {
				t.Errorf("%s: decoding %d of %d bytes succeeded", info.name, n, len(enc))
			}
		}
	}
}

// TestDecodeRejectsBadRegisterBytes: encodings whose register byte is
// >= NumRegs are data, not code, and must fail with ErrBadReg.
func TestDecodeRejectsBadRegisterBytes(t *testing.T) {
	cases := [][]byte{
		{0x51, NumRegs},                // push r16
		{0x01, NumRegs, 0},             // add r16, r0
		{0x01, 0, NumRegs},             // add r0, r16
		{0xB8, 0xFF, 0, 0, 0, 0},       // movi r255
		{0x8B, NumRegs, 0, 0, 0, 0, 0}, // load r16
		{0x8B, 0, NumRegs, 0, 0, 0, 0}, // load base r16
	}
	for _, b := range cases {
		if in, err := Decode(b); err == nil {
			t.Errorf("% x: decoded as %+v, want register error", b, in)
		}
	}
}
