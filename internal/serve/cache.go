package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"zipr"
)

// Key is a content address for one (input image, rewrite configuration)
// pair: SHA-256 of the serialized input folded with SHA-256 of the
// canonical Config fingerprint. Identical keys imply byte-identical
// rewrite output (the pipeline is deterministic), which is what lets
// the cache answer repeat requests without touching the pipeline.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the wire/log form).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// site derives the deterministic fault-injection site for this key, so
// chaos decisions about a request are a pure function of its content.
func (k Key) site() uint32 { return binary.LittleEndian.Uint32(k[:4]) }

// CacheKey computes the content address of one rewrite request.
func CacheKey(input []byte, cfg zipr.Config) Key {
	inSum := sha256.Sum256(input)
	fpSum := sha256.Sum256([]byte(cfg.Fingerprint()))
	h := sha256.New()
	h.Write(inSum[:])
	h.Write(fpSum[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// entry is one cached rewrite: the output image plus the report fields
// that survive caching (pointers into pipeline state — Trace, IRDB,
// AddrMap — are deliberately not cached; requests that need them take
// the miss path). sum pins the output bytes so corruption of a cached
// entry is detected on hit instead of being served.
type entry struct {
	key      Key
	out      []byte
	sum      [sha256.Size]byte
	stats    zipr.Stats
	layout   string
	warnings []string

	prev, next *entry // LRU list, most recent at head
}

// lruCache is a byte-budgeted LRU over rewrite outputs. Not safe for
// concurrent use; the Server serializes access under its mutex.
type lruCache struct {
	budget  int64
	bytes   int64
	entries map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	evicted int64
}

func newLRUCache(budget int64) *lruCache {
	return &lruCache{budget: budget, entries: make(map[Key]*entry)}
}

// get returns the entry for k (promoting it to most-recently-used) or
// nil.
func (c *lruCache) get(k Key) *entry {
	e := c.entries[k]
	if e == nil {
		return nil
	}
	c.unlink(e)
	c.pushFront(e)
	return e
}

// put inserts or replaces the entry for e.key and evicts from the cold
// end until the byte budget holds again. An entry larger than the whole
// budget is not cached at all — it would only evict everything else and
// then be evicted by the next insert.
func (c *lruCache) put(e *entry) {
	if old := c.entries[e.key]; old != nil {
		c.remove(old)
	}
	if int64(len(e.out)) > c.budget {
		return
	}
	c.entries[e.key] = e
	c.pushFront(e)
	c.bytes += int64(len(e.out))
	for c.bytes > c.budget && c.tail != nil && c.tail != e {
		c.evicted++
		c.remove(c.tail)
	}
}

// remove drops e from the cache entirely.
func (c *lruCache) remove(e *entry) {
	if c.entries[e.key] != e {
		return
	}
	delete(c.entries, e.key)
	c.unlink(e)
	c.bytes -= int64(len(e.out))
}

func (c *lruCache) pushFront(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
