package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"zipr"
	"zipr/internal/fault"
	"zipr/internal/obs"
	"zipr/internal/synth"
	"zipr/internal/zerr"
)

// testImage builds (once per index) a small serialized ZELF test input.
var (
	imgOnce sync.Once
	imgs    [][]byte
)

func testImages(t *testing.T) [][]byte {
	t.Helper()
	imgOnce.Do(func() {
		profiles := []synth.Profile{
			{Name: "sva", NumFuncs: 8, OpsMin: 4, OpsMax: 10, HandwrittenFrac: 0.2,
				FuncPtrTableFrac: 0.3, DataWords: 32, InputLen: 4, LoopIters: 3},
			{Name: "svb", NumFuncs: 14, OpsMin: 5, OpsMax: 12, HandwrittenFrac: 0.1,
				FuncPtrTableFrac: 0.2, DataWords: 64, InputLen: 4, LoopIters: 2},
			{Name: "svc", NumFuncs: 10, OpsMin: 4, OpsMax: 8, HandwrittenFrac: 0.3,
				FuncPtrTableFrac: 0.4, DataWords: 48, InputLen: 4, LoopIters: 4},
		}
		for i, p := range profiles {
			bin, err := synth.Build(int64(0x5E44+i), p)
			if err != nil {
				panic(fmt.Sprintf("synth %s: %v", p.Name, err))
			}
			img, err := bin.Marshal()
			if err != nil {
				panic(fmt.Sprintf("marshal %s: %v", p.Name, err))
			}
			imgs = append(imgs, img)
		}
	})
	return imgs
}

func nullCfg() zipr.Config {
	return zipr.Config{Transforms: []zipr.Transform{zipr.Null()}}
}

// TestCacheKeyCanonical: the key must be stable across config spellings
// that rewrite identically, and distinct across ones that do not.
func TestCacheKeyCanonical(t *testing.T) {
	in := testImages(t)[0]
	base := CacheKey(in, zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
	// Default layout spelled explicitly, seed irrelevant under it, and
	// observability settings must not split the key.
	same := []zipr.Config{
		{Transforms: []zipr.Transform{zipr.Null()}, Layout: zipr.LayoutOptimized},
		{Transforms: []zipr.Transform{zipr.Null()}, Seed: 99},
		{Transforms: []zipr.Transform{zipr.Null()}, Trace: obs.New()},
	}
	for i, cfg := range same {
		if CacheKey(in, cfg) != base {
			t.Fatalf("config %d: equivalent config produced a different key", i)
		}
	}
	diff := []zipr.Config{
		{Transforms: []zipr.Transform{zipr.CFI()}},
		{Transforms: []zipr.Transform{zipr.StackPad(32)}},
		{Transforms: []zipr.Transform{zipr.StackPad(48)}},
		{Transforms: []zipr.Transform{zipr.Null()}, Layout: zipr.LayoutDiversity},
		{Transforms: []zipr.Transform{zipr.Null()}, Chaos: fault.NewArmed(3, fault.CacheCorrupt)},
	}
	seen := map[Key]int{base: -1}
	for i, cfg := range diff {
		k := CacheKey(in, cfg)
		if prev, dup := seen[k]; dup {
			t.Fatalf("configs %d and %d share a key", prev, i)
		}
		seen[k] = i
	}
	// Diversity seed matters under the diversity layout.
	d1 := CacheKey(in, zipr.Config{Layout: zipr.LayoutDiversity, Seed: 1})
	d2 := CacheKey(in, zipr.Config{Layout: zipr.LayoutDiversity, Seed: 2})
	if d1 == d2 {
		t.Fatal("diversity seeds 1 and 2 share a key")
	}
}

// TestHitIdenticalAndZeroPipelineWork: a hot request must return bytes
// identical to the cold rewrite while performing zero disassembly/IR
// work, asserted through the obs counters of a per-request trace (the
// pipeline bumps rewrite.count and phase counters on every real run).
func TestHitIdenticalAndZeroPipelineWork(t *testing.T) {
	in := testImages(t)[0]
	tr := obs.New()
	s := New(Options{Workers: 2, Trace: tr})
	defer s.Close()

	coldTr := obs.New()
	cfg := nullCfg()
	cfg.Trace = coldTr
	cold, coldRep, err := s.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := coldTr.Counter("rewrite.count"); got != 1 {
		t.Fatalf("cold request: rewrite.count = %d, want 1", got)
	}

	hotTr := obs.New()
	cfg = nullCfg()
	cfg.Trace = hotTr
	hot, hotRep, err := s.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatalf("hit returned different bytes (%d vs %d)", len(cold), len(hot))
	}
	if got := hotTr.Counter("rewrite.count"); got != 0 {
		t.Fatalf("hot request: rewrite.count = %d, want 0 (no pipeline work on hit)", got)
	}
	if hotRep.Stats != coldRep.Stats || hotRep.Layout != coldRep.Layout {
		t.Fatalf("hit report differs: %+v vs %+v", hotRep, coldRep)
	}
	if hits, misses := tr.Counter("serve.cache.hit"), tr.Counter("serve.cache.miss"); hits != 1 || misses != 1 {
		t.Fatalf("hit/miss counters = %d/%d, want 1/1", hits, misses)
	}
	st := s.Stats()
	if st.PipelineRuns != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 run, 1 hit, 1 miss", st)
	}
}

// TestConcurrentIdenticalSingleflight: 8 concurrent identical requests
// must trigger exactly one pipeline run and agree byte-for-byte.
func TestConcurrentIdenticalSingleflight(t *testing.T) {
	in := testImages(t)[1]
	s := New(Options{Workers: 4})
	defer s.Close()
	const n = 8
	outs := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = s.Rewrite(context.Background(), in, nullCfg())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], outs[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if st := s.Stats(); st.PipelineRuns != 1 {
		t.Fatalf("pipeline runs = %d, want exactly 1 (stats %+v)", st.PipelineRuns, st)
	}
}

// TestSingleflightFollowerSharesLeader pins the wait path itself: a
// request arriving while an identical one is in flight must block until
// the leader finishes and return the leader's result.
func TestSingleflightFollowerSharesLeader(t *testing.T) {
	in := testImages(t)[0]
	s := New(Options{Workers: 1})
	defer s.Close()
	cfg := nullCfg()
	k := CacheKey(in, s.effective(cfg))
	c := &call{done: make(chan struct{})}
	s.mu.Lock()
	s.inflight[k] = c
	s.mu.Unlock()
	want := []byte("leader-bytes")
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.out, c.rep = want, &zipr.Report{Layout: "optimized"}
		s.mu.Lock()
		delete(s.inflight, k)
		s.mu.Unlock()
		close(c.done)
	}()
	out, rep, err := s.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) || rep.Layout != "optimized" {
		t.Fatalf("follower got %q/%+v, want leader result", out, rep)
	}
	if st := s.Stats(); st.Shared != 1 {
		t.Fatalf("shared counter = %d, want 1", st.Shared)
	}
}

// TestWorkerCountDeterministic: the same request batch must produce
// identical output digests at j=1 and j=8.
func TestWorkerCountDeterministic(t *testing.T) {
	images := testImages(t)
	cfgs := []zipr.Config{
		{Transforms: []zipr.Transform{zipr.Null()}},
		{Transforms: []zipr.Transform{zipr.CFI()}},
		{Transforms: []zipr.Transform{zipr.Stir(7), zipr.CFI()}, Layout: zipr.LayoutDiversity, Seed: 42},
	}
	run := func(workers int) map[string][32]byte {
		s := New(Options{Workers: workers})
		defer s.Close()
		digests := make(map[string][32]byte)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for ii, img := range images {
			for ci, cfg := range cfgs {
				wg.Add(1)
				go func(label string, img []byte, cfg zipr.Config) {
					defer wg.Done()
					out, _, err := s.Rewrite(context.Background(), img, cfg)
					if err != nil {
						t.Errorf("%s: %v", label, err)
						return
					}
					mu.Lock()
					digests[label] = sha256.Sum256(out)
					mu.Unlock()
				}(fmt.Sprintf("img%d/cfg%d", ii, ci), img, cfg)
			}
		}
		wg.Wait()
		return digests
	}
	j1, j8 := run(1), run(8)
	if len(j1) != len(images)*len(cfgs) || len(j8) != len(j1) {
		t.Fatalf("digest counts: j1=%d j8=%d, want %d", len(j1), len(j8), len(images)*len(cfgs))
	}
	for label, d1 := range j1 {
		if j8[label] != d1 {
			t.Fatalf("%s: output digest differs between j=1 and j=8", label)
		}
	}
}

// TestLRUEviction: the byte budget must hold after inserts, evicting
// least-recently-used entries first.
func TestLRUEviction(t *testing.T) {
	c := newLRUCache(100)
	mk := func(id byte, n int) *entry {
		var k Key
		k[0] = id
		return &entry{key: k, out: bytes.Repeat([]byte{id}, n)}
	}
	c.put(mk(1, 40))
	c.put(mk(2, 40))
	k1 := Key{}
	k1[0] = 1
	if c.get(k1) == nil { // promote 1: now 2 is the LRU
		t.Fatal("entry 1 missing")
	}
	c.put(mk(3, 40)) // 120 > 100: evicts 2
	k2 := Key{}
	k2[0] = 2
	if c.get(k2) != nil {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if c.get(k1) == nil {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if c.bytes > 100 {
		t.Fatalf("cache bytes %d exceed budget", c.bytes)
	}
	if c.evicted != 1 {
		t.Fatalf("evicted = %d, want 1", c.evicted)
	}
	// An entry larger than the whole budget must not be cached (and
	// must not wipe the working set).
	c.put(mk(4, 200))
	k4 := Key{}
	k4[0] = 4
	if c.get(k4) != nil {
		t.Fatal("over-budget entry was cached")
	}
	if c.get(k1) == nil {
		t.Fatal("over-budget insert evicted the working set")
	}
}

// TestServerEviction drives eviction through the Server with a budget
// sized for roughly one rewritten image.
func TestServerEviction(t *testing.T) {
	images := testImages(t)
	tr := obs.New()
	// First, learn the output sizes to pick a budget that holds any one
	// output but never two.
	probe := New(Options{Workers: 1})
	var largest int
	for _, img := range images {
		out, _, err := probe.Rewrite(context.Background(), img, nullCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > largest {
			largest = len(out)
		}
	}
	probe.Close()

	budget := int64(largest + 16)
	s := New(Options{Workers: 1, CacheBytes: budget, Trace: tr})
	defer s.Close()
	for _, img := range images {
		if _, _, err := s.Rewrite(context.Background(), img, nullCfg()); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a one-entry budget (stats %+v)", st)
	}
	if st.CacheBytes > budget {
		t.Fatalf("cache bytes %d exceed budget %d", st.CacheBytes, budget)
	}
	if tr.Counter("serve.cache.evict") != st.Evictions {
		t.Fatalf("evict counter %d != stats %d", tr.Counter("serve.cache.evict"), st.Evictions)
	}
}

// TestAdmissionQueueFullRejects: with all workers busy and the queue at
// depth, a request must be rejected with the typed busy class.
func TestAdmissionQueueFullRejects(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer s.Close()
	s.sem <- struct{}{} // occupy the only worker
	s.mu.Lock()
	s.stats.QueueDepth = 1 // queue at capacity
	s.mu.Unlock()
	_, err := s.admit(context.Background(), 0)
	if err == nil || !errors.Is(err, zerr.ErrBusy) {
		t.Fatalf("admit under saturation = %v, want ErrBusy", err)
	}
	if zerr.ClassName(err) != "busy" {
		t.Fatalf("class = %q, want busy", zerr.ClassName(err))
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", st.Rejected)
	}
}

// TestAdmissionDeadlineExpires: a queued request whose deadline fires
// before a worker frees up must fail with ErrBusy, and the queue-depth
// gauge must return to zero.
func TestAdmissionDeadlineExpires(t *testing.T) {
	tr := obs.New()
	s := New(Options{Workers: 1, QueueDepth: 4, Trace: tr})
	defer s.Close()
	s.sem <- struct{}{} // worker never frees
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.admit(ctx, 0)
	if err == nil || !errors.Is(err, zerr.ErrBusy) {
		t.Fatalf("admit past deadline = %v, want ErrBusy", err)
	}
	if st := s.Stats(); st.Expired != 1 || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v, want 1 expiry and empty queue", st)
	}
	if tr.Gauge("serve.queue.depth") != 0 {
		t.Fatalf("queue gauge = %d, want 0", tr.Gauge("serve.queue.depth"))
	}
}

// TestChaosCacheCorruptFallsBack: with fault.CacheCorrupt armed, a hit
// whose entry was poisoned must be detected by the digest check and
// fall back to a fresh rewrite returning correct bytes.
func TestChaosCacheCorruptFallsBack(t *testing.T) {
	in := testImages(t)[2]
	// Find a chaos seed whose schedule fires at this request's site.
	// The server threads its injector into the config before keying, so
	// the probe must fold the candidate injector into the fingerprint.
	cfg := nullCfg()
	var inj *fault.Injector
	for seed := int64(1); seed <= 1000; seed++ {
		cand := fault.NewArmed(seed, fault.CacheCorrupt)
		c := cfg
		c.Chaos = cand
		if cand.Fires(fault.CacheCorrupt, CacheKey(in, c).site()) {
			inj = cand
			break
		}
	}
	if inj == nil {
		t.Fatal("no firing seed found in 1000 tries")
	}
	tr := obs.New()
	s := New(Options{Workers: 1, Trace: tr, Chaos: inj})
	defer s.Close()
	cold, _, err := s.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot, _, err := s.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatal("fallback rewrite returned different bytes than the cold run")
	}
	st := s.Stats()
	if st.Corrupt == 0 {
		t.Fatalf("corruption undetected (stats %+v)", st)
	}
	if st.PipelineRuns != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (cold + verified fallback)", st.PipelineRuns)
	}
	if tr.Counter("serve.cache.corrupt") != st.Corrupt {
		t.Fatal("corrupt counter not mirrored to trace")
	}
}

// TestChaosQueueDropRejects: with fault.QueueDrop armed at a firing
// site, admission must reject with ErrBusy + ErrInjected.
func TestChaosQueueDropRejects(t *testing.T) {
	images := testImages(t)
	cfg := nullCfg()
	// Find a (seed, image) pair whose admission site fires, folding the
	// candidate injector into the key as the server will.
	var inj *fault.Injector
	var img []byte
search:
	for seed := int64(1); seed <= 1000; seed++ {
		cand := fault.NewArmed(seed, fault.QueueDrop)
		for _, im := range images {
			c := cfg
			c.Chaos = cand
			if cand.Fires(fault.QueueDrop, CacheKey(im, c).site()) {
				inj, img = cand, im
				break search
			}
		}
	}
	if img == nil {
		t.Fatal("no firing (seed, image) pair found")
	}
	s := New(Options{Workers: 2, Chaos: inj})
	defer s.Close()
	_, _, err := s.Rewrite(context.Background(), img, cfg)
	if err == nil || !errors.Is(err, zerr.ErrBusy) || !errors.Is(err, zerr.ErrInjected) {
		t.Fatalf("injected drop = %v, want ErrBusy+ErrInjected", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.PipelineRuns != 0 {
		t.Fatalf("stats = %+v, want 1 rejection and no pipeline runs", st)
	}
}

// TestErrorsNotCached: a failing request must not poison the cache, and
// the typed class must pass through the serving layer.
func TestErrorsNotCached(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	junk := []byte("not a zelf image")
	for i := 0; i < 2; i++ {
		_, _, err := s.Rewrite(context.Background(), junk, nullCfg())
		if err == nil || zipr.ErrorClass(err) != "format" {
			t.Fatalf("attempt %d: err = %v, want format class", i, err)
		}
	}
	if st := s.Stats(); st.PipelineRuns != 2 || st.Hits != 0 || st.CacheEntries != 0 {
		t.Fatalf("stats = %+v, want 2 runs, no hits, empty cache", st)
	}
}

// TestCacheDisabled: CacheBytes < 0 must run the pipeline every time.
func TestCacheDisabled(t *testing.T) {
	in := testImages(t)[0]
	s := New(Options{Workers: 1, CacheBytes: -1})
	defer s.Close()
	a, _, err := s.Rewrite(context.Background(), in, nullCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Rewrite(context.Background(), in, nullCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("uncached rewrites disagree")
	}
	if st := s.Stats(); st.PipelineRuns != 2 || st.CacheEntries != 0 {
		t.Fatalf("stats = %+v, want 2 runs and no cache", st)
	}
}

// TestClosedServerRejects: Rewrite after Close fails typed.
func TestClosedServerRejects(t *testing.T) {
	s := New(Options{Workers: 1})
	s.Close()
	_, _, err := s.Rewrite(context.Background(), testImages(t)[0], nullCfg())
	if err == nil || !errors.Is(err, zerr.ErrBusy) {
		t.Fatalf("closed server = %v, want ErrBusy", err)
	}
}

// TestParseTransforms covers the wire spec syntax.
func TestParseTransforms(t *testing.T) {
	tfs, err := ParseTransforms("null,cfi,stackpad:32,canary:0x7A437A43,stir:9,nop-elide")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(tfs))
	for i, tf := range tfs {
		names[i] = tf.Name()
	}
	want := []string{"null", "cfi", "stackpad", "canary", "stir", "nop-elide"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if _, err := ParseTransforms("bogus"); err == nil {
		t.Fatal("unknown transform accepted")
	}
	if _, err := ParseTransforms("stackpad:xyz"); err == nil {
		t.Fatal("bad parameter accepted")
	}
	// Parameters must reach the fingerprint (distinct cache keys).
	a, _ := ParseTransforms("stackpad:32")
	b, _ := ParseTransforms("stackpad:48")
	fa := zipr.Config{Transforms: a}.Fingerprint()
	fb := zipr.Config{Transforms: b}.Fingerprint()
	if fa == fb {
		t.Fatalf("stackpad parameter lost in fingerprint: %q", fa)
	}
}
