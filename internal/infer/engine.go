package infer

import (
	"encoding/binary"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// This file is the fixed-point engine: two semi-naive evaluations over
// the flow-edge relation. Both are worklist-driven — each round
// processes only the delta derived in the previous round — and both
// ascend (or descend) a finite lattice monotonically, so termination
// is structural, not fuel-limited:
//
//   - refuteDeadEnds descends: viability bits only flip true→false,
//     at most once per candidate, and each flip enqueues only the
//     flipped candidate's predecessors.
//   - propagateCode ascends: code weights only increase, are capped at
//     WeightStrong, and a candidate re-enters the worklist only when
//     its weight actually rose.
//
// A cyclic edge graph is the interesting case for both. Mutually
// looping candidates have no dead end to propagate from, so the
// greatest fixed point keeps them viable (conservative: they stay
// pinnable ambiguity unless positive data evidence demotes them); and
// code-weight propagation around a cycle stabilizes the first time the
// decayed weight stops exceeding the stored one.

// refuteDeadEnds computes candidate viability as a greatest fixed
// point: start from "every decode is viable" and retract every
// candidate one of whose required successors is undecodable,
// structurally impossible, or already refuted. Refuted candidates gain
// the RuleDeadEnd junk belief — the decode cannot be real code because
// executing it would inevitably reach bytes that do not decode.
func (r *Result) refuteDeadEnds(bin *binfmt.Binary) {
	n := len(r.text)
	// preds[s] lists the candidates whose viability requires s.
	preds := make([][]int32, n)
	var dead []int32 // retraction worklist (the semi-naive delta)
	var succs []int

	for off := 0; off < n; off++ {
		in := r.cand[off]
		if in.Op == isa.OpInvalid {
			continue
		}
		r.viable[off] = true
		var ok bool
		succs, ok = r.flowSuccs(bin, in, off, n, succs[:0])
		if !ok {
			r.viable[off] = false
			dead = append(dead, int32(off))
			continue
		}
		for _, s := range succs {
			if r.cand[s].Op == isa.OpInvalid {
				// Required successor does not decode: refuted outright.
				if r.viable[off] {
					r.viable[off] = false
					dead = append(dead, int32(off))
				}
				continue
			}
			preds[s] = append(preds[s], int32(off))
		}
	}

	for len(dead) > 0 {
		s := dead[len(dead)-1]
		dead = dead[:len(dead)-1]
		r.stats.Iterations++
		for _, p := range preds[s] {
			if r.viable[p] {
				r.viable[p] = false
				dead = append(dead, p)
			}
		}
	}

	for off := 0; off < n; off++ {
		if r.cand[off].Op == isa.OpInvalid || r.viable[off] || r.strong[off] {
			continue
		}
		r.stats.Nonviable++
		if WeightDeadEnd > r.junkW[off] {
			r.junkW[off], r.junkRule[off] = WeightDeadEnd, RuleDeadEnd
		}
	}
}

// propagateCode computes code beliefs as a least fixed point. Seeds:
// provably-reached starts at WeightStrong (the axiom), and viable
// targets of stored pointer words at WeightPtrTarget — an address
// something in the binary *names* is plausibly an entry even when no
// direct flow reaches it (the jump-table case). Belief then flows
// along fallthrough and direct branch/call edges, decaying hopDecay
// per edge but never below codeFloor, so any candidate transitively
// named by real evidence keeps enough belief to block demotion.
func (r *Result) propagateCode(bin *binfmt.Binary) {
	n := len(r.text)
	type raise struct {
		off int32
		w   uint8
	}
	var work []raise

	lift := func(off int, w uint8, rule RuleID) {
		if w <= r.codeW[off] {
			return
		}
		r.codeW[off], r.codeRule[off] = w, rule
		r.stats.Raised++
		work = append(work, raise{int32(off), w})
	}

	for off := 0; off < n; off++ {
		if r.strong[off] {
			lift(off, WeightStrong, RuleStrongReach)
		}
	}
	// Pointer-word targets: both the data-segment scan and the in-text
	// table slots found by extractFacts. The in-text slots were recorded
	// as RuleTableSlot data bytes; recover their targets here.
	text := bin.Text()
	for si := range bin.Segments {
		seg := &bin.Segments[si]
		if seg.Kind != binfmt.Data {
			continue
		}
		for o := 0; o+4 <= len(seg.Data); o += 4 {
			v := binary.LittleEndian.Uint32(seg.Data[o:])
			if text.Contains(v) {
				if toff := int(v - r.base); r.viable[toff] {
					lift(toff, WeightPtrTarget, RulePtrTarget)
				}
			}
		}
	}
	for _, toff := range r.ptrTargets {
		if r.viable[toff] {
			lift(int(toff), WeightPtrTarget, RulePtrTarget)
		}
	}

	var succs []int
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		r.stats.Iterations++
		off := int(cur.off)
		if cur.w < r.codeW[off] {
			continue // superseded by a later, higher raise
		}
		in := r.cand[off]
		if in.Op == isa.OpInvalid {
			continue
		}
		next := cur.w - hopDecay
		if next < codeFloor {
			next = codeFloor
		}
		var ok bool
		succs, ok = r.flowSuccs(bin, in, off, n, succs[:0])
		if !ok {
			continue
		}
		for _, s := range succs {
			if r.viable[s] {
				lift(s, next, RuleCodeFlow)
			}
		}
	}
}
