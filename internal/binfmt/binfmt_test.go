package binfmt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() *Binary {
	return &Binary{
		Type:  Exec,
		Entry: 0x1000,
		Segments: []Segment{
			{Kind: Text, VAddr: 0x1000, Data: []byte{0x90, 0xc3, 0xf4}},
			{Kind: Data, VAddr: 0x2000, Data: make([]byte, 16)},
		},
		Exports: []Symbol{{Name: "main", Addr: 0x1000}},
		Imports: []Import{{Name: "lib!fn", GotAddr: 0x2004}},
		Libs:    []string{"lib"},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	b := sample()
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	if b.FileSize() != len(data) {
		t.Fatalf("FileSize = %d, want %d", b.FileSize(), len(data))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"bad magic", []byte("ELFZ0123456789abcdef"), ErrBadMagic},
		{"bad version", append(append([]byte{}, Magic[:]...), 0xFF, 0xFF, 1, 0), ErrBadVersion},
		{"truncated", good[:len(good)-3], ErrCorrupt},
		{"truncated header", good[:8], ErrCorrupt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Unmarshal(tt.data); !errors.Is(err, tt.want) {
				t.Fatalf("Unmarshal error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Binary)
		ok     bool
	}{
		{"valid", func(b *Binary) {}, true},
		{"no text", func(b *Binary) { b.Segments = b.Segments[1:] }, false},
		{"bad type", func(b *Binary) { b.Type = 9 }, false},
		{"entry outside text", func(b *Binary) { b.Entry = 0x2000 }, false},
		{"overlap", func(b *Binary) { b.Segments[1].VAddr = 0x1001 }, false},
		{"got outside data", func(b *Binary) { b.Imports[0].GotAddr = 0x1000 }, false},
		{"got at data edge", func(b *Binary) { b.Imports[0].GotAddr = 0x200e }, false},
		{"export unmapped", func(b *Binary) { b.Exports[0].Addr = 0x9999 }, false},
		{"lib no entry check", func(b *Binary) { b.Type = Lib; b.Entry = 0 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := sample()
			tt.mutate(b)
			err := b.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSegmentQueries(t *testing.T) {
	b := sample()
	if b.Text() == nil || b.Text().Kind != Text {
		t.Fatal("Text() failed")
	}
	if b.DataSeg() == nil || b.DataSeg().Kind != Data {
		t.Fatal("DataSeg() failed")
	}
	if s := b.SegmentAt(0x1002); s == nil || s.Kind != Text {
		t.Fatal("SegmentAt text failed")
	}
	if s := b.SegmentAt(0x1003); s != nil {
		t.Fatal("SegmentAt past text should be nil")
	}
	if s := b.SegmentAt(0x0); s != nil {
		t.Fatal("SegmentAt unmapped should be nil")
	}
	if _, ok := b.ReadWord(0x2000); !ok {
		t.Fatal("ReadWord in data failed")
	}
	if _, ok := b.ReadWord(0x200d); ok {
		t.Fatal("ReadWord crossing segment end should fail")
	}
	if addr, ok := b.ExportAddr("main"); !ok || addr != 0x1000 {
		t.Fatalf("ExportAddr = %#x, %v", addr, ok)
	}
	if _, ok := b.ExportAddr("nope"); ok {
		t.Fatal("ExportAddr of missing symbol should fail")
	}
}

func TestClone(t *testing.T) {
	b := sample()
	c := b.Clone()
	if !reflect.DeepEqual(b, c) {
		t.Fatal("clone differs")
	}
	c.Segments[0].Data[0] = 0xAA
	if b.Segments[0].Data[0] == 0xAA {
		t.Fatal("clone shares segment data with original")
	}
}

func TestQuickUnmarshalNeverPanics(t *testing.T) {
	// Corrupt inputs must produce errors, never panics or hangs.
	base, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f := func(idx int, val byte, trunc int) bool {
		data := append([]byte(nil), base...)
		if len(data) == 0 {
			return true
		}
		data[abs(idx)%len(data)] ^= val
		if trunc != 0 {
			data = data[:abs(trunc)%len(data)]
		}
		b, err := Unmarshal(data)
		if err == nil {
			// If it parsed, it must validate and re-marshal.
			if _, merr := b.Marshal(); merr != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWordLittleEndian(t *testing.T) {
	b := sample()
	copy(b.DataSeg().Data, []byte{0x78, 0x56, 0x34, 0x12})
	v, ok := b.ReadWord(0x2000)
	if !ok || v != 0x12345678 {
		t.Fatalf("ReadWord = %#x, want 0x12345678", v)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	a, _ := sample().Marshal()
	b, _ := sample().Marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("Marshal not deterministic")
	}
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}
