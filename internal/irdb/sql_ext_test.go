package irdb

import "testing"

func setupExt(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec := func(q string) {
		t.Helper()
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("Exec(%q): %v", q, err)
		}
	}
	mustExec("CREATE TABLE pins (addr INT, kind TEXT)")
	for _, row := range []struct {
		addr int
		kind string
	}{
		{0x1030, "export"},
		{0x1000, "entry"},
		{0x1090, "data"},
		{0x1060, "data"},
		{0x1010, "immediate"},
	} {
		if _, err := db.Insert("pins", Row{"addr": row.addr, "kind": row.kind}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOrderByAscDesc(t *testing.T) {
	db := setupExt(t)
	res, err := db.Exec("SELECT addr FROM pins ORDER BY addr")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0x1000, 0x1010, 0x1030, 0x1060, 0x1090}
	for i, w := range want {
		if res.Rows[i]["addr"].(int64) != w {
			t.Fatalf("asc order wrong: %+v", res.Rows)
		}
	}
	res, err = db.Exec("SELECT addr FROM pins ORDER BY addr DESC")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if res.Rows[len(want)-1-i]["addr"].(int64) != w {
			t.Fatalf("desc order wrong: %+v", res.Rows)
		}
	}
	res, err = db.Exec("SELECT kind FROM pins ORDER BY kind ASC LIMIT 1")
	if err != nil || len(res.Rows) != 1 || res.Rows[0]["kind"].(string) != "data" {
		t.Fatalf("string order: %v %+v", err, res.Rows)
	}
}

func TestLimit(t *testing.T) {
	db := setupExt(t)
	res, err := db.Exec("SELECT * FROM pins LIMIT 2")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("limit: %v, %d rows", err, len(res.Rows))
	}
	res, err = db.Exec("SELECT * FROM pins LIMIT 0")
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("limit 0: %v, %d rows", err, len(res.Rows))
	}
	res, err = db.Exec("SELECT * FROM pins LIMIT 99")
	if err != nil || len(res.Rows) != 5 {
		t.Fatalf("limit over: %v, %d rows", err, len(res.Rows))
	}
}

func TestCountStar(t *testing.T) {
	db := setupExt(t)
	res, err := db.Exec("SELECT COUNT(*) FROM pins")
	if err != nil || len(res.Rows) != 1 || res.Rows[0]["count"].(int64) != 5 {
		t.Fatalf("count: %v %+v", err, res.Rows)
	}
	res, err = db.Exec("SELECT COUNT(*) FROM pins WHERE kind = 'data'")
	if err != nil || res.Rows[0]["count"].(int64) != 2 {
		t.Fatalf("filtered count: %v %+v", err, res.Rows)
	}
}

func TestOrderByCombinesWithWhere(t *testing.T) {
	db := setupExt(t)
	res, err := db.Exec("SELECT addr FROM pins WHERE addr > 0x1010 ORDER BY addr DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0]["addr"].(int64) != 0x1090 || res.Rows[1]["addr"].(int64) != 0x1060 {
		t.Fatalf("rows = %+v", res.Rows)
	}
}

func TestSQLExtensionErrors(t *testing.T) {
	db := setupExt(t)
	bad := []string{
		"SELECT addr FROM pins ORDER addr",
		"SELECT addr FROM pins ORDER BY nosuch",
		"SELECT addr FROM pins LIMIT 'x'",
		"SELECT addr FROM pins LIMIT -1",
		"SELECT COUNT(* FROM pins",
		"SELECT COUNT(addr) FROM pins",
		"SELECT addr FROM pins ORDER BY addr garbage",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", q)
		}
	}
}
