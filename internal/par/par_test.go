package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4, 2); got != 2 {
		t.Errorf("Workers(4,2) = %d, want 2", got)
	}
	if got := Workers(1, 100); got != 1 {
		t.Errorf("Workers(1,100) = %d, want 1", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Errorf("Workers(0,100) = %d, want >= 1", got)
	}
	if got := Workers(-3, 0); got != 1 {
		t.Errorf("Workers(-3,0) = %d, want 1", got)
	}
}

func TestScaledWorkers(t *testing.T) {
	if got := ScaledWorkers(10, 100); got != 1 {
		t.Errorf("ScaledWorkers(10,100) = %d, want 1 (too small to shard)", got)
	}
	if got := ScaledWorkers(1000, 1); got < 1 {
		t.Errorf("ScaledWorkers(1000,1) = %d, want >= 1", got)
	}
}

// TestChunksCoverAndOrder checks chunks are dense, contiguous,
// non-overlapping, and ascend with their index.
func TestChunksCoverAndOrder(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			bounds := make([][2]int, 256)
			chunks := Chunks(w, n, func(c, lo, hi int) {
				bounds[c] = [2]int{lo, hi}
			})
			if n == 0 {
				if chunks != 0 {
					t.Fatalf("n=0: chunks = %d", chunks)
				}
				continue
			}
			pos := 0
			for c := 0; c < chunks; c++ {
				lo, hi := bounds[c][0], bounds[c][1]
				if lo != pos || hi <= lo {
					t.Fatalf("n=%d w=%d: chunk %d = [%d,%d), want lo=%d", n, w, c, lo, hi, pos)
				}
				pos = hi
			}
			if pos != n {
				t.Fatalf("n=%d w=%d: chunks cover %d, want %d", n, w, pos, n)
			}
		}
	}
}

// TestChunksConcatDeterministic gathers per-chunk output and verifies
// concatenation in chunk order reproduces the serial order.
func TestChunksConcatDeterministic(t *testing.T) {
	const n = 1013
	buckets := make([][]int, 8)
	chunks := Chunks(8, n, func(c, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i%3 == 0 {
				buckets[c] = append(buckets[c], i)
			}
		}
	})
	var got []int
	for c := 0; c < chunks; c++ {
		got = append(got, buckets[c]...)
	}
	var want []int
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEachRunsAll(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 100
		var ran [n]atomic.Int32
		if err := Each(w, n, func(i int) error {
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range ran {
			if ran[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, ran[i].Load())
			}
		}
	}
}

// TestEachFirstErrorByIndex: the reported error must be the
// lowest-index failure, matching a serial loop over deterministic
// tasks.
func TestEachFirstErrorByIndex(t *testing.T) {
	wantErr := errors.New("boom-7")
	for _, w := range []int{1, 2, 8} {
		err := Each(w, 100, func(i int) error {
			if i == 7 {
				return wantErr
			}
			if i == 23 || i == 91 {
				return fmt.Errorf("boom-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom-7" {
			t.Fatalf("workers=%d: err = %v, want boom-7", w, err)
		}
	}
}

// TestEachStopsClaimingAfterFailure: when every task errors, only the
// tasks already claimed before the first failure may still run — the
// pool must not churn through the rest of a large input.
func TestEachStopsClaimingAfterFailure(t *testing.T) {
	const workers = 4
	var ran atomic.Int32
	err := Each(workers, 10_000, func(i int) error {
		ran.Add(1)
		return fmt.Errorf("boom-%d", i)
	})
	if err == nil || err.Error() != "boom-0" {
		t.Fatalf("err = %v, want boom-0 (index 0 is always claimed first)", err)
	}
	// Each worker can have at most one task claimed-but-unchecked when
	// the failure flag is raised.
	if n := ran.Load(); n > 2*workers {
		t.Errorf("early stop failed: %d tasks ran, want <= %d", n, 2*workers)
	}
}
