package serve

import (
	"context"
	"regexp"
	"testing"
	"time"

	"zipr"
	"zipr/internal/obs"
)

// TestRewriteMetaOutcomes drives one request through each outcome and
// checks both the returned RequestMeta and the labeled registry
// counters it must feed.
func TestRewriteMetaOutcomes(t *testing.T) {
	in := testImages(t)[0]
	reg := obs.NewRegistry()
	s := New(Options{Workers: 2, Registry: reg})
	defer s.Close()

	// Cold: miss.
	_, _, meta, err := s.RewriteMeta(context.Background(), in, nullCfg())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeMiss || meta.Wall <= 0 {
		t.Fatalf("cold meta = %+v, want miss with wall > 0", meta)
	}
	if meta.Key != CacheKey(in, s.effective(nullCfg())) {
		t.Fatal("meta key does not match the request's content address")
	}

	// Warm: hit.
	_, _, meta, err = s.RewriteMeta(context.Background(), in, nullCfg())
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeHit {
		t.Fatalf("hot outcome = %q, want hit", meta.Outcome)
	}

	// Junk input: error.
	_, _, meta, err = s.RewriteMeta(context.Background(), []byte("junk"), nullCfg())
	if err == nil || meta.Outcome != OutcomeError {
		t.Fatalf("junk outcome = %q (err %v), want error", meta.Outcome, err)
	}

	// Closed server: busy.
	s.Close()
	_, _, meta, err = s.RewriteMeta(context.Background(), in, nullCfg())
	if err == nil || meta.Outcome != OutcomeBusy {
		t.Fatalf("closed outcome = %q (err %v), want busy", meta.Outcome, err)
	}

	wantTotals := map[string]int64{OutcomeMiss: 1, OutcomeHit: 1, OutcomeError: 1, OutcomeBusy: 1, OutcomeShared: 0}
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "serve.request.total":
			got := map[string]int64{}
			for _, se := range fam.Series {
				got[se.Labels[0]] = se.Value
			}
			for o, want := range wantTotals {
				if got[o] != want {
					t.Fatalf("serve.request.total{%s} = %d, want %d (all: %v)", o, got[o], want, got)
				}
			}
		case "serve.request.latency":
			for _, se := range fam.Series {
				if se.Labels[0] == OutcomeMiss && se.Count != 1 {
					t.Fatalf("latency{miss} count = %d, want 1", se.Count)
				}
			}
		case "serve.pipeline.runs":
			// miss + the failing junk run.
			if fam.Series[0].Value != 2 {
				t.Fatalf("pipeline.runs = %d, want 2", fam.Series[0].Value)
			}
		}
	}
}

// TestStatsIncludesRegistrySnapshot: Stats carries the labeled
// snapshot when a registry is wired, and stays nil without one.
func TestStatsIncludesRegistrySnapshot(t *testing.T) {
	in := testImages(t)[0]
	reg := obs.NewRegistry()
	s := New(Options{Workers: 1, Registry: reg})
	defer s.Close()
	if _, _, err := s.Rewrite(context.Background(), in, nullCfg()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Metrics) == 0 {
		t.Fatal("Stats.Metrics empty with a registry wired")
	}
	names := map[string]bool{}
	for _, fam := range st.Metrics {
		names[fam.Name] = true
	}
	for _, want := range []string{"serve.request.total", "serve.request.latency", "serve.queue.wait", "serve.queue.depth", "serve.cache.bytes", "serve.pipeline.runs"} {
		if !names[want] {
			t.Fatalf("Stats.Metrics missing family %q (have %v)", want, names)
		}
	}

	bare := New(Options{Workers: 1})
	defer bare.Close()
	if st := bare.Stats(); st.Metrics != nil {
		t.Fatal("Stats.Metrics non-nil without a registry")
	}
}

// TestMetricsNamingLint is the CI naming gate (make metricslint):
// every family the serving layer registers must use lowercase dotted
// names, at most one label, and bounded cardinality.
func TestMetricsNamingLint(t *testing.T) {
	in := testImages(t)[0]
	reg := obs.NewRegistry()
	s := New(Options{Workers: 1, Registry: reg})
	defer s.Close()
	// Exercise enough paths to materialize series: miss, hit, error.
	s.Rewrite(context.Background(), in, nullCfg())
	s.Rewrite(context.Background(), in, nullCfg())
	s.Rewrite(context.Background(), []byte("junk"), nullCfg())

	nameRE := regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9-]+)+$`)
	snap := reg.Snapshot()
	if len(snap) == 0 {
		t.Fatal("no families registered")
	}
	for _, fam := range snap {
		if !nameRE.MatchString(fam.Name) {
			t.Errorf("family %q: not lowercase dotted", fam.Name)
		}
		if len(fam.Labels) > 1 {
			t.Errorf("family %q: %d labels, want <= 1 (bounded cardinality)", fam.Name, len(fam.Labels))
		}
		for _, l := range fam.Labels {
			if !regexp.MustCompile(`^[a-z][a-z0-9_]*$`).MatchString(l) {
				t.Errorf("family %q: label %q not lowercase", fam.Name, l)
			}
		}
		if len(fam.Series) > obs.MaxSeries {
			t.Errorf("family %q: %d series exceeds cap %d", fam.Name, len(fam.Series), obs.MaxSeries)
		}
		if fam.Dropped != 0 {
			t.Errorf("family %q: %d dropped series (cardinality leak)", fam.Name, fam.Dropped)
		}
		// Exposition names must survive the mapping losslessly enough to
		// stay unique.
		if obs.PromName(fam.Name) == "zipr_" {
			t.Errorf("family %q maps to an empty exposition name", fam.Name)
		}
	}
	seen := map[string]string{}
	for _, fam := range snap {
		p := obs.PromName(fam.Name)
		if prev, dup := seen[p]; dup {
			t.Errorf("families %q and %q collide on exposition name %s", prev, fam.Name, p)
		}
		seen[p] = fam.Name
	}
}

// TestQueueWaitMeasured: a request that had to queue reports a
// nonzero QueueWait and feeds the serve.queue.wait window.
func TestQueueWaitMeasured(t *testing.T) {
	in := testImages(t)[1]
	reg := obs.NewRegistry()
	s := New(Options{Workers: 1, QueueDepth: 4, CacheBytes: -1, Registry: reg})
	defer s.Close()

	s.sem <- struct{}{} // occupy the only worker
	release := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		<-s.sem // free the worker
		close(release)
	}()
	_, _, meta, err := s.RewriteMeta(context.Background(), in, zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
	<-release
	if err != nil {
		t.Fatal(err)
	}
	if meta.QueueWait < 10*time.Millisecond {
		t.Fatalf("queue wait = %v, want >= 10ms (request had to queue)", meta.QueueWait)
	}
	for _, fam := range reg.Snapshot() {
		if fam.Name == "serve.queue.wait" {
			if fam.Series[0].Count != 1 {
				t.Fatalf("queue.wait count = %d, want 1", fam.Series[0].Count)
			}
			return
		}
	}
	t.Fatal("serve.queue.wait family missing")
}
