package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zipr/internal/obs"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

func buildImage(t *testing.T) []byte {
	t.Helper()
	bin, err := synth.Build(0xD43D, synth.Profile{
		Name: "ziprdtest", NumFuncs: 8, OpsMin: 4, OpsMax: 10,
		HandwrittenFrac: 0.2, FuncPtrTableFrac: 0.3, DataWords: 32,
		InputLen: 4, LoopIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newTestServer(t *testing.T) *serve.Server {
	t.Helper()
	s := serve.New(serve.Options{Workers: 2, Trace: obs.New()})
	t.Cleanup(s.Close)
	return s
}

func TestHTTPRewriteHitAndMiss(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(newHandler(s, 10*time.Second))
	defer ts.Close()
	img := buildImage(t)

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/rewrite?transforms=cfi", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	cold, coldBody := post()
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold POST: %d %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Zipr-Cache"); got != "miss" {
		t.Fatalf("cold X-Zipr-Cache = %q, want miss", got)
	}
	hot, hotBody := post()
	if got := hot.Header.Get("X-Zipr-Cache"); got != "hit" {
		t.Fatalf("hot X-Zipr-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, hotBody) {
		t.Fatal("hit body differs from cold rewrite")
	}
	if len(coldBody) == 0 || bytes.Equal(coldBody, img) {
		t.Fatal("rewrite returned the input unchanged")
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(newHandler(s, time.Second))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed input: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/rewrite?transforms=bogus", "application/octet-stream", bytes.NewReader(buildImage(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown transform: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/rewrite")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rewrite: %d, want 405", resp.StatusCode)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	s := newTestServer(t)
	ts := httptest.NewServer(newHandler(s, time.Second))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	img := buildImage(t)
	for i := 0; i < 2; i++ {
		r, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PipelineRuns != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 run, 1 hit, 1 miss", st)
	}
}

// TestBatchOrderAndCaching: JSONL responses must come back in input
// order even with a concurrent worker pool, and repeats of one request
// must be answered without extra pipeline runs.
func TestBatchOrderAndCaching(t *testing.T) {
	s := newTestServer(t)
	img := buildImage(t)

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	const n = 12
	for i := 0; i < n; i++ {
		req := request{ID: fmt.Sprintf("r%02d", i), Input: img, Transforms: "cfi"}
		if i%3 == 1 {
			req.Transforms = "null"
		}
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := runBatch(s, &in, &out, 4, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var resps []response
	for sc.Scan() {
		var r response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line: %v", err)
		}
		resps = append(resps, r)
	}
	if len(resps) != n {
		t.Fatalf("%d responses, want %d", len(resps), n)
	}
	for i, r := range resps {
		if want := fmt.Sprintf("r%02d", i); r.ID != want {
			t.Fatalf("response %d has id %q, want %q (order broken)", i, r.ID, want)
		}
		if r.Error != "" {
			t.Fatalf("response %s failed: %s", r.ID, r.Error)
		}
		if len(r.Output) == 0 {
			t.Fatalf("response %s has no output", r.ID)
		}
	}
	// Two distinct configs over one image: exactly two pipeline runs.
	if st := s.Stats(); st.PipelineRuns != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (stats %+v)", st.PipelineRuns, st)
	}
	// Identical requests must agree byte-for-byte.
	if !bytes.Equal(resps[0].Output, resps[3].Output) {
		t.Fatal("identical cfi requests returned different bytes")
	}
}

func TestBatchBadLines(t *testing.T) {
	s := newTestServer(t)
	in := strings.NewReader("this is not json\n" +
		`{"id":"ok","input":"` + "AAAA" + `","transforms":"null"}` + "\n")
	var out bytes.Buffer
	if err := runBatch(s, in, &out, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d response lines, want 2", len(lines))
	}
	var r0, r1 response
	if err := json.Unmarshal([]byte(lines[0]), &r0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &r1); err != nil {
		t.Fatal(err)
	}
	if r0.Error == "" || r0.Class != "usage" {
		t.Fatalf("bad line response = %+v, want usage error", r0)
	}
	if r1.Error == "" || r1.Class != "format" {
		t.Fatalf("junk image response = %+v, want format error", r1)
	}
}
