// Command zdis disassembles a ZELF binary, printing the aggregated
// two-disassembler view: relocatable code, fixed data ranges, ambiguous
// bytes, and the pinned addresses the rewriter would plant references
// at.
//
// Usage:
//
//	zdis [-pins] [-classes] [-isa zvm32|zvm64] prog.zelf
package main

import (
	"flag"
	"fmt"
	"os"

	"zipr/internal/binfmt"
	"zipr/internal/cfg"
	"zipr/internal/disasm"
	"zipr/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zdis:", err)
		os.Exit(1)
	}
}

func run() error {
	pins := flag.Bool("pins", false, "print pinned addresses instead of instructions")
	classes := flag.Bool("classes", false, "print byte-classification summary")
	isaFlag := flag.String("isa", "zvm32", "instruction set of the binary: zvm32 | zvm64")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: zdis [flags] prog.zelf")
	}
	arch, err := isa.ByName(*isaFlag)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	bin, err := binfmt.Unmarshal(data)
	if err != nil {
		return err
	}
	agg, err := disasm.DisassembleOpts(bin, disasm.Options{Arch: arch})
	if err != nil {
		return err
	}

	if *classes {
		counts := map[disasm.Class]int{}
		for _, c := range agg.Classes {
			counts[c]++
		}
		fmt.Printf("code %d bytes, data %d bytes, ambiguous %d bytes, fixed ranges %d\n",
			counts[disasm.Code], counts[disasm.Data], counts[disasm.Ambig], len(agg.Fixed))
		for _, w := range agg.Warnings {
			fmt.Println("warning:", w)
		}
		return nil
	}
	if *pins {
		prog, err := cfg.Build(bin, agg)
		if err != nil {
			return err
		}
		for _, n := range prog.PinnedInsts() {
			fmt.Printf("%#08x  %s\n", n.OrigAddr, n.Inst.String())
		}
		for _, a := range prog.FixedEntries {
			fmt.Printf("%#08x  (fixed entry)\n", a)
		}
		return nil
	}

	prev := uint32(0)
	agg.Insts.All(func(a uint32, in isa.Inst) bool {
		if prev != 0 && a != prev {
			fmt.Printf("%#08x  ... %d non-code byte(s) ...\n", prev, a-prev)
		}
		extra := ""
		if t, ok := arch.TargetAddr(in, a); ok {
			extra = fmt.Sprintf("\t; -> %#x", t)
		}
		fmt.Printf("%#08x  %s%s\n", a, in.String(), extra)
		prev = a + uint32(arch.InstLen(in))
		return true
	})
	return nil
}
