package zipr

// ZVM-64 chaos sweep: the fixed-width twin of TestChaosScheduleSweep.
// The same profiles, schedule seeds, stacks and layouts run against
// fixed-width builds of the chaos corpus with Config.ISA = "zvm64", so
// every existing fault kind fires on the bounded-reach pipeline too —
// including in code paths the default ISA never takes (aligned carves,
// reach checks, veneer placement, the no-sled reference planner). The
// contract is unchanged: every schedule ends in a transcript-equivalent
// binary or a typed error with the input intact; silent divergence and
// panics are the two forbidden outcomes, and both permitted outcomes
// must occur across the sweep.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

var (
	chaos64Once sync.Once
	chaos64Bins []*binfmt.Binary
	chaos64Imgs [][]byte
)

func chaos64Corpus(t *testing.T) ([]*binfmt.Binary, [][]byte) {
	t.Helper()
	chaos64Once.Do(func() {
		for i, p := range chaosProfiles {
			bin, err := synth.BuildArch(int64(0xC5+i), p, isa.ZVM64)
			if err != nil {
				panic(fmt.Sprintf("synth %s/zvm64: %v", p.Name, err))
			}
			img, err := bin.Marshal()
			if err != nil {
				panic(fmt.Sprintf("marshal %s/zvm64: %v", p.Name, err))
			}
			chaos64Bins = append(chaos64Bins, bin)
			chaos64Imgs = append(chaos64Imgs, img)
		}
	})
	return chaos64Bins, chaos64Imgs
}

// execute64 runs a fixed-width binary on one input.
func execute64(t *testing.T, bin *binfmt.Binary, input string) (vm.Result, error) {
	t.Helper()
	m := vm.New(vm.WithStdin(strings.NewReader(input)), vm.WithMaxSteps(5_000_000), vm.WithArch(isa.ZVM64))
	if err := loader.Load(m, bin, nil); err != nil {
		t.Fatalf("load: %v", err)
	}
	return m.Run()
}

func transcriptsMatch64(t *testing.T, orig, rewritten *binfmt.Binary) error {
	t.Helper()
	for _, input := range chaosInputs {
		want, err := execute64(t, orig, input)
		if err != nil {
			t.Fatalf("original run: %v", err)
		}
		got, err := execute64(t, rewritten, input)
		if err != nil {
			return fmt.Errorf("input %q: rewritten faulted: %v", input, err)
		}
		if want.ExitCode != got.ExitCode {
			return fmt.Errorf("input %q: exit %d != original %d", input, got.ExitCode, want.ExitCode)
		}
		if !bytes.Equal(want.Output, got.Output) {
			return fmt.Errorf("input %q: output %q != original %q", input, got.Output, want.Output)
		}
	}
	return nil
}

func TestChaosScheduleSweepZVM64(t *testing.T) {
	bins, imgs := chaos64Corpus(t)
	var okRewrites, typedErrors int
	for seed := int64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			pi := int(seed) % len(bins)
			orig, img := bins[pi], imgs[pi]
			snapshot := append([]byte(nil), img...)
			arb := ArbitrationTwoWay
			if seed%2 == 0 {
				arb = ArbitrationWeighted
			}
			for _, stack := range chaosStacks {
				for _, lay := range chaosLayouts {
					out, _, err := Rewrite(img, Config{
						Transforms:  stack.transforms(),
						Layout:      lay,
						Arbitration: arb,
						Seed:        7,
						ISA:         "zvm64",
						Chaos:       NewFaultInjector(seed),
					})
					if !bytes.Equal(img, snapshot) {
						t.Fatalf("%s/%s: rewrite mutated the caller's input bytes", stack.name, lay)
					}
					if err != nil {
						if ErrorClass(err) == "" {
							t.Fatalf("%s/%s: untyped error: %v", stack.name, lay, err)
						}
						typedErrors++
						continue
					}
					rewritten, uerr := binfmt.Unmarshal(out)
					if uerr != nil {
						t.Fatalf("%s/%s: rewrite emitted an unparseable binary: %v", stack.name, lay, uerr)
					}
					if derr := transcriptsMatch64(t, orig, rewritten); derr != nil {
						t.Fatalf("%s/%s: silent divergence under fault schedule: %v", stack.name, lay, derr)
					}
					okRewrites++
				}
			}
		})
	}
	if t.Failed() {
		return
	}
	if okRewrites == 0 || typedErrors == 0 {
		t.Fatalf("sweep outcomes unbalanced: %d equivalent rewrites, %d typed errors", okRewrites, typedErrors)
	}
	t.Logf("zvm64 schedules: %d transcript-equivalent rewrites, %d typed errors", okRewrites, typedErrors)
}
