// Package fault implements deterministic, seed-driven fault injection
// for the rewriting pipeline. An Injector is threaded through every
// phase via the rewrite Config; each phase asks it whether a given fault
// kind fires at a given site (an address, an index, a sequence number).
//
// Decisions are pure functions of (seed, kind, site) — a hash, not a
// call counter — so they are identical under any goroutine interleaving
// of the concurrent pipeline, race-free, and reproducible from the seed
// alone. The only mutable state touched on the decision path is the
// obs.Trace counter sink, which is internally synchronized.
//
// A nil *Injector disables everything: all methods are nil-receiver-safe
// and cost one branch, following the obs.Trace pattern, so production
// paths carry no chaos overhead.
package fault

import (
	"fmt"
	"strings"

	"zipr/internal/obs"
)

// Kind enumerates the injectable faults, one (or more) per pipeline
// phase. The comments note the expected outcome: "degrades" kinds must
// still yield a transcript-equivalent binary through a conservative
// fallback path; "fails closed" kinds must yield a typed error.
type Kind uint8

// Fault kinds.
const (
	// DisasmDisagree demotes data-scan seeds of the recursive traversal
	// from strong to weak: provably-reached functions become "decodes
	// but not provably reached", exercising the paper's case-3 handling
	// (bytes kept fixed in place, targets pinned). Degrades.
	DisasmDisagree Kind = iota
	// DisasmTruncate cuts the linear sweep short: bytes past a seeded
	// cut point lose their linear Code claim, thinning the ambiguous
	// set the aggregation would otherwise report. Degrades.
	DisasmTruncate
	// InferRuleDisagree vetoes individual inference-driven demotions in
	// the weighted arbitration stage (site = the candidate's address): a
	// candidate the rules would confidently reclassify as data keeps its
	// conservative ambiguous treatment instead, as if the rule vote had
	// been contested. The worst case — every veto firing — is exactly
	// the two-way baseline, so the fault can only add pins. Degrades.
	// No-op unless the rewrite runs with weighted arbitration.
	InferRuleDisagree
	// PinFlood makes pin discovery report bogus extra pins at decoded
	// instruction addresses, in seeded clusters — dense runs escalate
	// through chains into sleds. Degrades.
	PinFlood
	// EntryLost makes the CFG phase lose the entry point's decode, the
	// canonical unrecoverable analysis failure. Fails closed (ErrCFG).
	EntryLost
	// AllocExhaust makes the layout placer deny allocations, forcing
	// dollops and dispatch blobs into splits and the appended overflow
	// area. Degrades.
	AllocExhaust
	// ChainUnsat starves short-reference chaining: dense pins escalate
	// straight to 0x68 sleds, and chain hops are forced deeper. Degrades
	// (sled escalation) or fails closed (ErrExhausted) when even the
	// sled cannot be carved.
	ChainUnsat
	// TransformMisuse makes a transform abuse the IR API (conflicting
	// targets, out-of-band deletion, lying deferred fill). Fails closed
	// (ErrTransform or ErrLayout) or, for provably dead code, degrades.
	TransformMisuse
	// SectionCorrupt corrupts the serialized input image (truncation or
	// a broken header) before parsing. Fails closed (ErrFormat).
	SectionCorrupt
	// CacheCorrupt flips a byte in a rewrite-cache entry before the
	// serving layer's digest check. The check must catch it, drop the
	// entry and fall back to a fresh rewrite whose bytes verify.
	// Degrades (cache miss, never wrong bytes).
	CacheCorrupt
	// QueueDrop makes the serving layer's admission control reject a
	// request as if the queue were full. Fails closed (ErrBusy).
	QueueDrop
	// DeltaStaleSnapshot corrupts a placement snapshot before the serving
	// layer's delta path verifies it. The integrity checks must catch it,
	// drop the snapshot and fall back to a full rewrite — degrades (full
	// rewrite, never a divergent binary).
	DeltaStaleSnapshot
	// WorkerDown makes the fleet gateway treat a forward to a worker as a
	// connection failure without sending it. The gateway must fail over
	// to the next ring replica (degrades: same bytes from another worker)
	// or, when every replica is down, fail closed with a typed
	// unavailability error — never divergent bytes.
	WorkerDown
	// DiskTierCorrupt flips a byte in a disk-tier entry as it is read
	// back. The digest check must catch it, quarantine the file, drop the
	// index entry and degrade to a miss (fresh pipeline run) — never
	// served bytes that fail verification.
	DiskTierCorrupt

	numKinds
)

var kindNames = [numKinds]string{
	"disasm-disagree",
	"disasm-truncate",
	"infer-rule-disagree",
	"pin-flood",
	"entry-lost",
	"alloc-exhaust",
	"chain-unsat",
	"transform-misuse",
	"section-corrupt",
	"cache-corrupt",
	"queue-drop",
	"delta-stale-snapshot",
	"worker-down",
	"disk-tier-corrupt",
}

// String returns the kind's stable kebab-case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// counterNames are the obs counter keys, precomputed so firing does not
// build strings on hot paths.
var counterNames = func() [numKinds]string {
	var out [numKinds]string
	for k := range out {
		out[k] = "fault." + kindNames[k]
	}
	return out
}()

// kindProfile is a kind's behavior under seed-derived arming: how often
// New arms it across seeds, and the per-site firing probability (out of
// 1<<16) once armed. Hard-fail kinds arm rarely so most schedules still
// produce a binary; degradation kinds arm often and fire per-site.
type kindProfile struct {
	armOneIn int    // New arms the kind for ~1/armOneIn of seeds
	rate     uint32 // per-site fire probability numerator, out of 1<<16
}

var profiles = [numKinds]kindProfile{
	DisasmDisagree:     {armOneIn: 3, rate: 1 << 14}, // 1/4 of data-scan seeds
	DisasmTruncate:     {armOneIn: 4, rate: 3 << 14}, // 3/4 chance of one cut
	InferRuleDisagree:  {armOneIn: 3, rate: 1 << 14}, // 1/4 of demotions vetoed
	PinFlood:           {armOneIn: 3, rate: 1 << 11}, // 1/32 of instructions
	EntryLost:          {armOneIn: 10, rate: 1 << 16},
	AllocExhaust:       {armOneIn: 3, rate: 1 << 13}, // 1/8 of placements
	ChainUnsat:         {armOneIn: 3, rate: 1 << 14}, // 1/4 of chain sites
	TransformMisuse:    {armOneIn: 8, rate: 1 << 7},  // 1/512 of instructions
	SectionCorrupt:     {armOneIn: 12, rate: 1 << 16},
	CacheCorrupt:       {armOneIn: 3, rate: 1 << 14}, // 1/4 of cache hits
	QueueDrop:          {armOneIn: 6, rate: 1 << 13}, // 1/8 of admissions
	DeltaStaleSnapshot: {armOneIn: 3, rate: 1 << 14}, // 1/4 of delta attempts
	WorkerDown:         {armOneIn: 4, rate: 1 << 14}, // 1/4 of forwards
	DiskTierCorrupt:    {armOneIn: 3, rate: 1 << 14}, // 1/4 of disk reads
}

// Injector decides which faults fire where. Construct with New (arming
// derived from the seed) or NewArmed (explicit kinds, for targeted
// tests); nil disables all injection.
type Injector struct {
	seed int64
	rate [numKinds]uint32 // 0 = disarmed
	tr   *obs.Trace       // counter sink; may be nil
}

// splitmix64's finalizer: a cheap, well-mixed 64-bit hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// kindSalt decorrelates the per-kind decision streams.
func kindSalt(k Kind) uint64 { return (uint64(k) + 1) * 0x9E3779B97F4A7C15 }

// New returns an injector whose armed kinds and schedule are derived
// from seed: different seeds arm different subsets, so sweeping seeds
// sweeps fault schedules.
func New(seed int64) *Injector {
	inj := &Injector{seed: seed}
	for k := Kind(0); k < numKinds; k++ {
		h := mix(uint64(seed) ^ kindSalt(k) ^ 0xA2F1)
		if int(h%uint64(profiles[k].armOneIn)) == 0 {
			inj.rate[k] = profiles[k].rate
		}
	}
	return inj
}

// NewArmed returns an injector with exactly the given kinds armed at
// their default per-site rates, for tests that target one fault path.
func NewArmed(seed int64, kinds ...Kind) *Injector {
	inj := &Injector{seed: seed}
	for _, k := range kinds {
		inj.rate[k] = profiles[k].rate
	}
	return inj
}

// WithTrace returns a copy of the injector that reports fault counters
// (one "fault.<kind>" counter per fire) to tr. The decision stream is
// unchanged. Nil-safe.
func (inj *Injector) WithTrace(tr *obs.Trace) *Injector {
	if inj == nil || tr == nil {
		return inj
	}
	c := *inj
	c.tr = tr
	return &c
}

// Seed returns the schedule seed (0 for a nil injector).
func (inj *Injector) Seed() int64 {
	if inj == nil {
		return 0
	}
	return inj.seed
}

// Enabled reports whether any kind is armed. Nil-safe.
func (inj *Injector) Enabled() bool {
	if inj == nil {
		return false
	}
	for _, r := range inj.rate {
		if r != 0 {
			return true
		}
	}
	return false
}

// Armed reports whether kind k can fire at all; phases use it to skip
// per-site hashing entirely on unarmed kinds. Nil-safe.
func (inj *Injector) Armed(k Kind) bool {
	return inj != nil && inj.rate[k] != 0
}

// ArmedPipeline reports whether any *pipeline* kind (everything below
// the serving-layer kinds CacheCorrupt/QueueDrop/DeltaStaleSnapshot) is
// armed. The delta path refuses to capture or serve placement snapshots
// under pipeline chaos — an injector that corrupts the input or degrades
// analyses breaks the determinism the snapshot contract rests on, while
// the serving-layer kinds only perturb caching and admission. Nil-safe.
func (inj *Injector) ArmedPipeline() bool {
	if inj == nil {
		return false
	}
	for k := Kind(0); k < CacheCorrupt; k++ {
		if inj.rate[k] != 0 {
			return true
		}
	}
	return false
}

// Fires reports whether fault k fires at the given site. The decision
// is a pure hash of (seed, kind, site) — stateless, so identical sites
// answer identically regardless of call order or goroutine — and each
// firing bumps the kind's obs counter when a trace is attached. Nil-safe.
func (inj *Injector) Fires(k Kind, site uint32) bool {
	if inj == nil || inj.rate[k] == 0 {
		return false
	}
	h := mix(uint64(inj.seed) ^ kindSalt(k) ^ (uint64(site)+1)*0xD6E8FEB86659FD93)
	if uint32(h&0xFFFF) >= inj.rate[k] {
		return false
	}
	inj.tr.Add(counterNames[k], 1)
	return true
}

// Pick returns a deterministic value in [0, n) for fault k at site,
// decorrelated from the Fires decision — use it to choose *how* a fired
// fault manifests (cut points, misuse variants). Nil injectors and
// n <= 0 return 0.
func (inj *Injector) Pick(k Kind, site uint32, n int) int {
	if inj == nil || n <= 0 {
		return 0
	}
	h := mix(uint64(inj.seed) ^ kindSalt(k) ^ (uint64(site)+1)*0xC2B2AE3D27D4EB4F ^ 0x51CE)
	return int(h % uint64(n))
}

// Describe renders the armed schedule for logs and the chaos-recipe
// workflow: which kinds are armed and their per-site fire probability.
func (inj *Injector) Describe() string {
	if inj == nil {
		return "fault injection disabled"
	}
	var parts []string
	for k := Kind(0); k < numKinds; k++ {
		if inj.rate[k] == 0 {
			continue
		}
		if inj.rate[k] >= 1<<16 {
			parts = append(parts, kindNames[k])
		} else {
			parts = append(parts, fmt.Sprintf("%s(p=1/%d)", kindNames[k], (1<<16)/inj.rate[k]))
		}
	}
	if len(parts) == 0 {
		return fmt.Sprintf("seed %d: no kinds armed", inj.seed)
	}
	return fmt.Sprintf("seed %d: %s", inj.seed, strings.Join(parts, ", "))
}
