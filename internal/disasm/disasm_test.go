package disasm

import (
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/fault"
	"zipr/internal/isa"
)

func classAt(t *testing.T, agg Aggregated, bin *binfmt.Binary, addr uint32) Class {
	t.Helper()
	return agg.Classes[addr-bin.Text().VAddr]
}

func TestLinearSweepResync(t *testing.T) {
	// nop, then an undecodable byte, then ret.
	text := []byte{0x90, 0x00, 0xC3}
	res := LinearSweep(text, 0x1000)
	if res.Classes[0] != Code || res.Classes[1] != Data || res.Classes[2] != Code {
		t.Fatalf("classes = %v", res.Classes)
	}
	i0, _ := res.Insts.Get(0x1000)
	i2, _ := res.Insts.Get(0x1002)
	if i0.Op != isa.OpNop || i2.Op != isa.OpRet {
		t.Fatal("linear sweep missed instructions")
	}
}

func TestRecursiveSkipsDataInText(t *testing.T) {
	src := `
.text 0x00100000
main:
    lea r2, str        ; data reference, not a code seed
    loadpc r3, str
    jmp after
str: .asciz "AAAA"     ; 0x41 = valid-looking bytes? 0x41 is not an opcode
after:
    movi r0, 1
    movi r1, 0
    syscall
`
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecursiveTraversal(bin)
	text := bin.Text()
	// The string bytes must not be classified Code by the recursive pass.
	strOff := 6 + 6 + 5 // lea + loadpc + jmp
	for i := strOff; i < strOff+5; i++ {
		if rec.Classes[i] == Code {
			t.Fatalf("recursive pass classified string byte %d as code", i)
		}
	}
	// `after` must be reached.
	afterAddr := text.VAddr + uint32(strOff+5)
	if !rec.Insts.Has(afterAddr) {
		t.Fatalf("recursive pass missed post-jump code at %#x", afterAddr)
	}
}

func TestRecursiveFollowsDataPointers(t *testing.T) {
	// handler is referenced only via a function-pointer table in data.
	src := `
.text 0x00100000
main:
    movi r4, tab
    load r4, [r4]
    callr r4
    movi r0, 1
    movi r1, 0
    syscall
handler:
    movi r2, 7
    ret
.data 0x00200000
tab: .word handler
`
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecursiveTraversal(bin)
	handlerAddr, ok := findLabelByDataWord(bin)
	if !ok {
		t.Fatal("test setup: no pointer found in data")
	}
	if !rec.Insts.Has(handlerAddr) {
		t.Fatalf("recursive pass missed data-pointed handler at %#x", handlerAddr)
	}
}

// findLabelByDataWord reads the first data word (the test's table slot).
func findLabelByDataWord(bin *binfmt.Binary) (uint32, bool) {
	d := bin.DataSeg()
	if d == nil || len(d.Data) < 4 {
		return 0, false
	}
	return uint32(d.Data[0]) | uint32(d.Data[1])<<8 | uint32(d.Data[2])<<16 | uint32(d.Data[3])<<24, true
}

func TestRecursiveFollowsExportsAndImmediates(t *testing.T) {
	src := `
.type lib
.text 0x00700000
exported:
    ret
viaimm:
    ret
seed:
    movi r1, viaimm   ; immediate seeds traversal
    ret
.export fn = exported
.export s2 = seed
`
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	rec := RecursiveTraversal(bin)
	if rec.Insts.Len() < 3 {
		t.Fatalf("expected export coverage, got %d instructions", rec.Insts.Len())
	}
	// viaimm (second ret, at offset 1) is reached only through an
	// address-shaped immediate: it must be decoded, but only weakly —
	// the bytes could just as well be data, so they must not be
	// relocated (paper case 4 avoidance).
	if !rec.Weak.Has(0x00700001) {
		t.Fatal("immediate-seeded code not decoded into the weak tier")
	}
	if rec.Insts.Has(0x00700001) {
		t.Fatal("immediate-seeded code must not be classified relocatable")
	}
	if rec.Classes[1] == Code {
		t.Fatal("weak bytes must not be classified Code")
	}
}

func TestAggregateFourCases(t *testing.T) {
	src := `
.text 0x00100000
main:
    jmp after
blob: .byte 0x00, 0x00, 0x01, 0x02, 0x03   ; 0x01 0x02 0x03 decodes as add r2,r3
after:
    movi r0, 1
    movi r1, 0
    syscall
`
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Case 1: reached code.
	if classAt(t, agg, bin, bin.Entry) != Code {
		t.Fatal("entry not classified Code")
	}
	// Case 2: the 0x00 bytes are conclusive data.
	blobAddr := bin.Text().VAddr + 5
	if classAt(t, agg, bin, blobAddr) != Data {
		t.Fatalf("undecodable byte class = %v, want Data", classAt(t, agg, bin, blobAddr))
	}
	// Case 3: the decodable-but-unreached bytes are ambiguous.
	if classAt(t, agg, bin, blobAddr+2) != Ambig {
		t.Fatalf("ambiguous byte class = %v, want Ambig", classAt(t, agg, bin, blobAddr+2))
	}
	if agg.AmbigInsts.Len() == 0 {
		t.Fatal("expected ambiguous instructions")
	}
	// The whole blob is one fixed range.
	found := false
	for _, r := range agg.Fixed {
		if r.Contains(blobAddr) && r.Contains(blobAddr+4) {
			found = true
		}
	}
	if !found {
		t.Fatalf("blob not covered by fixed ranges %+v", agg.Fixed)
	}
}

func TestAggregateWarnsOnAmbiguousBranches(t *testing.T) {
	// Craft raw bytes: reached ret, then an unreached region that decodes
	// to a direct branch (case 3/4 risk): jmp32 encoding.
	text := []byte{0xC3}
	text = append(text, isa.MustEncode(isa.Inst{Op: isa.OpJmp32, Imm: -5})...)
	bin := &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x00100000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x00100000, Data: text},
		},
	}
	agg, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Warnings) == 0 {
		t.Fatal("expected a conservative-handling warning")
	}
	joined := strings.Join(agg.Warnings, "\n")
	if !strings.Contains(joined, "ambiguous") {
		t.Fatalf("warnings = %q", joined)
	}
}

func TestDisassembleNoText(t *testing.T) {
	bin := &binfmt.Binary{Type: binfmt.Exec}
	if _, err := Disassemble(bin); err == nil {
		t.Fatal("expected error for missing text segment")
	}
}

func TestFullCoverageOfStraightLineProgram(t *testing.T) {
	src := `
.text 0x00100000
main:
    movi r2, 1
    addi r2, 2
    push r2
    pop r3
    movi r0, 1
    movi r1, 0
    syscall
`
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range agg.Classes {
		if c != Code {
			t.Fatalf("byte %d classified %v, want Code", i, c)
		}
	}
	if len(agg.Fixed) != 0 {
		t.Fatalf("unexpected fixed ranges %+v", agg.Fixed)
	}
}

// arbFixture is a program whose in-text string decodes as plausible
// instructions: the two-way aggregation leaves it ambiguous (pinnable),
// weighted arbitration demotes it to data on string-run evidence.
const arbFixture = `
.text 0x00100000
main:
    jmp after
msg: .asciz "hello world!!"
after:
    movi r0, 1
    movi r1, 0
    syscall
`

func TestWeightedArbitrationDemotes(t *testing.T) {
	bin, err := asm.Assemble(arbFixture)
	if err != nil {
		t.Fatal(err)
	}
	agg2, err := DisassembleOpts(bin, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aggW, err := DisassembleOpts(bin, Options{Arbitration: ArbWeighted})
	if err != nil {
		t.Fatal(err)
	}
	if agg2.Demoted != 0 || agg2.Disputed != 0 {
		t.Fatalf("two-way aggregation demoted (%d) or disputed (%d)", agg2.Demoted, agg2.Disputed)
	}
	if agg2.AmbigInsts.Len() == 0 {
		t.Fatal("fixture produced no ambiguity under two-way aggregation")
	}
	if aggW.Demoted == 0 {
		t.Fatal("weighted arbitration demoted nothing")
	}
	if aggW.AmbigInsts.Len() >= agg2.AmbigInsts.Len() {
		t.Fatalf("ambiguous set did not shrink: %d -> %d", agg2.AmbigInsts.Len(), aggW.AmbigInsts.Len())
	}
	// Demotion reclassifies the string bytes as data but never moves
	// them: the blob stays inside a fixed range either way.
	msgAddr := bin.Text().VAddr + 5
	for i := uint32(0); i < 13; i++ {
		if c := classAt(t, aggW, bin, msgAddr+i); c == Ambig {
			t.Fatalf("msg byte %d still Ambig after demotion", i)
		}
		if c := classAt(t, aggW, bin, msgAddr+i); c == Code {
			t.Fatalf("demotion promoted msg byte %d to Code", i)
		}
	}
	for _, want := range []uint32{msgAddr, msgAddr + 13} {
		covered := false
		for _, r := range aggW.Fixed {
			if r.Contains(want) {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("demoted byte %#x left fixed coverage %+v", want, aggW.Fixed)
		}
	}
	// Reached code is untouched.
	if classAt(t, aggW, bin, bin.Entry) != Code {
		t.Fatal("entry no longer Code under weighted arbitration")
	}
	if len(aggW.Warnings) > len(agg2.Warnings) {
		t.Fatalf("weighted arbitration grew warnings: %d -> %d", len(agg2.Warnings), len(aggW.Warnings))
	}
}

// TestArbitrationDisputeVeto: an armed infer-rule-disagree schedule
// vetoes individual demotions; vetoed candidates keep their two-way
// classification, and every ambiguous instruction is either demoted or
// disputed — never silently dropped.
func TestArbitrationDisputeVeto(t *testing.T) {
	bin, err := asm.Assemble(arbFixture)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := DisassembleOpts(bin, Options{Arbitration: ArbWeighted})
	if err != nil {
		t.Fatal(err)
	}
	var disputedOnce bool
	for seed := int64(1); seed <= 20; seed++ {
		inj := fault.NewArmed(seed, fault.InferRuleDisagree)
		agg, err := DisassembleOpts(bin, Options{Arbitration: ArbWeighted, Inject: inj})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if agg.Demoted+agg.Disputed != clean.Demoted {
			t.Fatalf("seed %d: demoted %d + disputed %d != clean demotions %d",
				seed, agg.Demoted, agg.Disputed, clean.Demoted)
		}
		if agg.AmbigInsts.Len() != clean.AmbigInsts.Len()+agg.Disputed {
			t.Fatalf("seed %d: ambig count %d, want clean %d + disputed %d",
				seed, agg.AmbigInsts.Len(), clean.AmbigInsts.Len(), agg.Disputed)
		}
		if agg.Disputed > 0 {
			disputedOnce = true
		}
	}
	if !disputedOnce {
		t.Fatal("no seed disputed a demotion")
	}
}
