package zipr

// Integration tests for the observability layer: a traced rewrite must
// emit a parseable JSON-lines trace whose spans cover every pipeline
// phase (the -phase-times acceptance surface) and whose counters agree
// with the rewrite report.

import (
	"bytes"
	"strings"
	"testing"

	"zipr/internal/obs"
	"zipr/internal/synth"
)

// tracedRewrite rewrites a mid-size challenge binary with tracing into
// a JSONL buffer and returns the parsed events plus the report.
func tracedRewrite(t *testing.T, tfs ...Transform) ([]obs.Event, *Report) {
	t.Helper()
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTrace(NewJSONLSink(&buf))
	_, report, err := RewriteBinary(bin, Config{Transforms: tfs, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return evs, report
}

func TestTraceJSONLCoversPipelinePhases(t *testing.T) {
	evs, report := tracedRewrite(t, Null(), CFI())

	spans := map[string]obs.Event{}
	counters := map[string]int64{}
	gauges := map[string]int64{}
	hists := map[string]obs.Event{}
	for _, ev := range evs {
		switch ev.Type {
		case "span":
			spans[ev.Path] = ev
		case "counter":
			counters[ev.Name] = ev.Value
		case "gauge":
			gauges[ev.Name] = ev.Value
		case "hist":
			hists[ev.Name] = ev
		}
	}

	// Every pipeline phase the table promises must appear: disassembly
	// and its two disassemblers, CFG+pin analysis, each transform by
	// name, and the reassembly sub-phases.
	wantPaths := []string{
		"rewrite",
		"rewrite/disassemble",
		"rewrite/disassemble/linear-sweep",
		"rewrite/disassemble/recursive-traversal",
		"rewrite/disassemble/disambiguate",
		"rewrite/cfg-pins",
		"rewrite/cfg-pins/lift",
		"rewrite/cfg-pins/pin-analysis",
		"rewrite/cfg-pins/partition-functions",
		"rewrite/transform",
		"rewrite/transform/mandatory",
		"rewrite/transform/null",
		"rewrite/transform/cfi",
		"rewrite/transform/normalize",
		"rewrite/reassemble",
		"rewrite/reassemble/pin-planting",
		"rewrite/reassemble/chaining",
		"rewrite/reassemble/sled-construction",
		"rewrite/reassemble/inline-reserve",
		"rewrite/reassemble/dollop-placement",
		"rewrite/reassemble/inline-fixups",
		"rewrite/reassemble/patch-emit",
	}
	for _, path := range wantPaths {
		if _, ok := spans[path]; !ok {
			t.Errorf("trace missing span %q", path)
		}
	}
	if t.Failed() {
		t.Fatalf("have spans: %v", sortedSpanPaths(spans))
	}
	if root := spans["rewrite"]; root.WallNS <= 0 || root.Depth != 0 {
		t.Fatalf("root span = %+v", root)
	}
	if sp := spans["rewrite/disassemble/linear-sweep"]; sp.Depth != 2 {
		t.Fatalf("linear-sweep depth = %d, want 2", sp.Depth)
	}

	// Counters must agree with the report the same rewrite returned.
	checks := []struct {
		name string
		want int64
	}{
		{"stats.pinned", int64(report.Stats.Pinned)},
		{"stats.dollops", int64(report.Stats.Dollops)},
		{"stats.chains", int64(report.Stats.Chains)},
		{"stats.sleds", int64(report.Stats.Sleds)},
		{"rewrite.count", 1},
	}
	for _, c := range checks {
		if got := counters[c.name]; got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, got, c.want)
		}
	}
	if counters["cfg.pins"] == 0 || counters["disasm.insts"] == 0 {
		t.Errorf("analysis counters missing: cfg.pins=%d disasm.insts=%d",
			counters["cfg.pins"], counters["disasm.insts"])
	}
	if rounds := counters["reassemble.worklist.rounds"]; rounds <= 0 {
		t.Errorf("reassemble.worklist.rounds = %d, want > 0", rounds)
	}
	if gauges["rewrite.output-bytes"] != int64(report.OutputSize) {
		t.Errorf("gauge rewrite.output-bytes = %d, want %d",
			gauges["rewrite.output-bytes"], report.OutputSize)
	}
	if h := hists["reassemble.free-range-bytes"]; h.Count == 0 {
		t.Error("free-range fragmentation histogram is empty")
	}
	// Allocator end-state gauges: block count agrees with the counter,
	// fragmentation is a percentage.
	if gauges["reassemble.free-blocks"] != counters["reassemble.free-ranges"] {
		t.Errorf("gauge reassemble.free-blocks = %d, counter says %d",
			gauges["reassemble.free-blocks"], counters["reassemble.free-ranges"])
	}
	if f := gauges["reassemble.fragmentation-pct"]; f < 0 || f > 100 {
		t.Errorf("gauge reassemble.fragmentation-pct = %d, want 0..100", f)
	}

	// Per-placer decision counters carry the placer name.
	if counters["placer.optimized.choose-calls"] == 0 {
		t.Error("placer.optimized.choose-calls missing or zero")
	}
}

func TestPhaseTimesTableCoversPhases(t *testing.T) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTrace(NewTableSink(&buf))
	if _, _, err := RewriteBinary(bin, Config{Transforms: []Transform{Null()}, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, phase := range []string{
		"disassemble", "cfg-pins", "null",
		"pin-planting", "dollop-placement", "chaining", "sled-construction", "patch-emit",
		"counters:", "stats.pinned",
	} {
		if !strings.Contains(out, phase) {
			t.Errorf("phase table missing %q", phase)
		}
	}
	if t.Failed() {
		t.Logf("table:\n%s", out)
	}
}

// TestUntracedRewriteMatchesTraced pins down that tracing is purely
// observational: the rewritten image must be byte-identical with and
// without a trace attached.
func TestUntracedRewriteMatchesTraced(t *testing.T) {
	seed, profile := synth.CBProfile(3)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	traced, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("tracing changed the rewritten image")
	}
}

func sortedSpanPaths(spans map[string]obs.Event) []string {
	paths := make([]string, 0, len(spans))
	for p := range spans {
		paths = append(paths, p)
	}
	return paths
}
