// Command benchjson converts `go test -bench` text output on stdin into
// a JSON report on stdout, so benchmark runs (the Makefile's bench
// target) leave a machine-readable artifact instead of a log to grep.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_pipeline.json
//
// Every benchmark result line becomes one object holding the iteration
// count and every reported metric (ns/op, B/op, allocs/op, MB/s, and
// custom b.ReportMetric units such as speedup-x) keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full converted run.
type Report struct {
	Goos, Goarch, Pkg, CPU string   `json:"-"`
	Env                    struct { // benchmark context header lines
		Goos   string `json:"goos,omitempty"`
		Goarch string `json:"goarch,omitempty"`
		Pkg    string `json:"pkg,omitempty"`
		CPU    string `json:"cpu,omitempty"`
	} `json:"env"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var rep Report
	rep.Benchmarks = []Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Env.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Env.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Env.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.Env.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(&rep)
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   100   12345 ns/op   1.5 speedup-x   7 allocs/op
//
// into a Result; the -N GOMAXPROCS suffix is stripped from the name.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters, Metrics: map[string]float64{}}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
