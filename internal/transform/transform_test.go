package transform

import (
	"strings"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/ir"
	"zipr/internal/isa"
)

func testProgram() *ir.Program {
	bin := &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: 0x1000,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: 0x1000, Data: make([]byte, 4096)},
			{Kind: binfmt.Data, VAddr: 0x10000, Data: make([]byte, 64)},
		},
	}
	return ir.NewProgram(bin)
}

func TestMandatoryWidensShortBranches(t *testing.T) {
	p := testProgram()
	target := p.AddOrig(0x1010, isa.Inst{Op: isa.OpRet})
	j8 := p.AddOrig(0x1000, isa.Inst{Op: isa.OpJmp8})
	j8.Target = target
	jcc := p.AddOrig(0x1002, isa.Inst{Op: isa.OpJcc8, Cc: isa.CcZ})
	jcc.Target = target
	jcc.Fallthrough = target
	if err := Mandatory(p); err != nil {
		t.Fatal(err)
	}
	if j8.Inst.Op != isa.OpJmp32 {
		t.Fatalf("jmp8 not widened: %s", j8.Inst.Op.Name())
	}
	if jcc.Inst.Op != isa.OpJcc32 || jcc.Inst.Cc != isa.CcZ {
		t.Fatalf("jcc8 not widened correctly: %+v", jcc.Inst)
	}
}

func TestNullIsNoOp(t *testing.T) {
	p := testProgram()
	n := p.AddOrig(0x1000, isa.Inst{Op: isa.OpRet})
	n.Pinned = true
	before := len(p.Insts)
	if err := Apply(p, Null{}); err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != before {
		t.Fatal("null transform changed the program")
	}
}

func TestApplyValidatesAfterTransforms(t *testing.T) {
	p := testProgram()
	p.AddOrig(0x1000, isa.Inst{Op: isa.OpRet})
	bad := brokenTransform{}
	if err := Apply(p, bad); err == nil || !strings.Contains(err.Error(), "IR invalid") {
		t.Fatalf("err = %v", err)
	}
}

type brokenTransform struct{}

func (brokenTransform) Name() string { return "broken" }

func (brokenTransform) Apply(ctx *Context) error {
	// Create an IR inconsistency: a terminator with a fallthrough.
	n := ctx.Prog.NewInst(isa.Inst{Op: isa.OpJmp32})
	n.Fallthrough = ctx.Prog.NewInst(isa.Inst{Op: isa.OpNop})
	n.AbsTarget = 0x1000
	return nil
}

func TestStackPadGrowsMatchedFrames(t *testing.T) {
	p := testProgram()
	entry := p.AddOrig(0x1000, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: -32})
	body := p.AddOrig(0x1003, isa.Inst{Op: isa.OpNop})
	release := p.AddOrig(0x1004, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: 32})
	ret := p.AddOrig(0x1007, isa.Inst{Op: isa.OpRet})
	entry.Fallthrough = body
	body.Fallthrough = release
	release.Fallthrough = ret
	p.Functions = []*ir.Function{{Name: "f", Entry: entry, Insts: []*ir.Instruction{entry, body, release, ret}}}

	if err := Apply(p, StackPad{Pad: 100}); err != nil {
		t.Fatal(err)
	}
	if entry.Inst.Imm != -132 || release.Inst.Imm != 132 {
		t.Fatalf("frames = %d / %d, want -132 / 132", entry.Inst.Imm, release.Inst.Imm)
	}
	// -132 no longer fits imm8: the op must have widened.
	if entry.Inst.Op != isa.OpAddI || release.Inst.Op != isa.OpAddI {
		t.Fatalf("ops = %s / %s, want addi", entry.Inst.Op.Name(), release.Inst.Op.Name())
	}
}

func TestStackPadSkipsUnmatchedFrames(t *testing.T) {
	p := testProgram()
	entry := p.AddOrig(0x1000, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: -32})
	ret := p.AddOrig(0x1003, isa.Inst{Op: isa.OpRet}) // missing release
	entry.Fallthrough = ret
	p.Functions = []*ir.Function{{Name: "f", Entry: entry, Insts: []*ir.Instruction{entry, ret}}}
	if err := Apply(p, StackPad{Pad: 100}); err != nil {
		t.Fatal(err)
	}
	if entry.Inst.Imm != -32 {
		t.Fatalf("unmatched frame modified: %d", entry.Inst.Imm)
	}
	if len(p.Warnings) == 0 {
		t.Fatal("expected a skip warning")
	}
}

func TestStackPadIgnoresSmallAdjustments(t *testing.T) {
	p := testProgram()
	spill := p.AddOrig(0x1000, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: -4})
	un := p.AddOrig(0x1003, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: 4})
	ret := p.AddOrig(0x1006, isa.Inst{Op: isa.OpRet})
	spill.Fallthrough = un
	un.Fallthrough = ret
	p.Functions = []*ir.Function{{Name: "f", Entry: spill, Insts: []*ir.Instruction{spill, un, ret}}}
	if err := Apply(p, StackPad{Pad: 64, MinFrame: 16}); err != nil {
		t.Fatal(err)
	}
	if spill.Inst.Imm != -4 {
		t.Fatalf("small adjustment modified: %d", spill.Inst.Imm)
	}
}

func TestCanarySkipsEntryAndComputedGoto(t *testing.T) {
	p := testProgram()
	// Entry function: must not be protected (nothing returns from it).
	entry := p.AddOrig(0x1000, isa.Inst{Op: isa.OpRet})
	entry.Pinned = true
	p.Entry = entry
	// Function with a computed goto: must be skipped (called, but unsafe).
	f2 := p.AddOrig(0x1010, isa.Inst{Op: isa.OpJmpR, Rd: 1})
	// Plain called function: protected.
	f3 := p.AddOrig(0x1020, isa.Inst{Op: isa.OpRet})
	// Unbalanced fragment (an epilogue without its prologue, rooted at a
	// pinned mid-code address): must be skipped even though it ends in
	// ret — pushing a canary mid-frame would corrupt the discipline.
	f4 := p.AddOrig(0x1030, isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: 16})
	f4ret := p.AddOrig(0x1033, isa.Inst{Op: isa.OpRet})
	f4.Fallthrough = f4ret
	f4.Pinned = true
	// Loop-entry function: a branch targets its entry; must be skipped.
	f5 := p.AddOrig(0x1040, isa.Inst{Op: isa.OpNop})
	f5ret := p.AddOrig(0x1041, isa.Inst{Op: isa.OpRet})
	f5.Fallthrough = f5ret
	loopBack := p.NewInst(isa.Inst{Op: isa.OpJmp32})
	loopBack.Target = f5
	c1 := p.NewInst(isa.Inst{Op: isa.OpCall})
	c1.Target = f2
	c2 := p.NewInst(isa.Inst{Op: isa.OpCall})
	c2.Target = f3
	p.Functions = []*ir.Function{
		{Name: "main", Entry: entry, Insts: []*ir.Instruction{entry}},
		{Name: "goto", Entry: f2, Insts: []*ir.Instruction{f2}},
		{Name: "plain", Entry: f3, Insts: []*ir.Instruction{f3}},
		{Name: "fragment", Entry: f4, Insts: []*ir.Instruction{f4, f4ret}},
		{Name: "loop", Entry: f5, Insts: []*ir.Instruction{f5, f5ret}},
	}
	before := len(p.Insts)
	if err := Apply(p, Canary{}); err != nil {
		t.Fatal(err)
	}
	// Only `plain` gets instrumentation: entry push + 5 check insts, plus
	// the 4-instruction shared violation handler.
	added := len(p.Insts) - before
	if added != 4+1+5+1 { // viol(4) + pushi(1 new node via InsertBefore) + checks(5)
		t.Fatalf("added %d instructions", added)
	}
	if f4.Inst.Op != isa.OpAddI8 {
		t.Fatal("unbalanced fragment was instrumented")
	}
	if f5.Inst.Op != isa.OpNop {
		t.Fatal("loop-entry function was instrumented")
	}
	if f3.Inst.Op != isa.OpPushI32 {
		t.Fatalf("protected entry op = %s, want pushi", f3.Inst.Op.Name())
	}
	if f2.Inst.Op != isa.OpJmpR {
		t.Fatal("computed-goto function was modified")
	}
	if entry.Inst.Op != isa.OpRet {
		t.Fatal("program entry was modified")
	}
}

func TestCFISkipsProgramsWithoutIndirectFlow(t *testing.T) {
	p := testProgram()
	n := p.AddOrig(0x1000, isa.Inst{Op: isa.OpHlt})
	_ = n
	before := len(p.Insts)
	if err := Apply(p, CFI{}); err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != before || len(p.Deferred) != 0 {
		t.Fatal("CFI instrumented a program with no indirect control flow")
	}
}

func TestCFIRewritesSites(t *testing.T) {
	p := testProgram()
	ret := p.AddOrig(0x1000, isa.Inst{Op: isa.OpRet})
	jmpr := p.AddOrig(0x1001, isa.Inst{Op: isa.OpJmpR, Rd: 3})
	callr := p.AddOrig(0x1003, isa.Inst{Op: isa.OpCallR, Rd: 4})
	site := p.AddOrig(0x1005, isa.Inst{Op: isa.OpRet})
	callr.Fallthrough = site
	if err := Apply(p, CFI{}); err != nil {
		t.Fatal(err)
	}
	if ret.Inst.Op != isa.OpJmp32 || ret.Target == nil {
		t.Fatalf("ret rewrite: %s", ret)
	}
	if jmpr.Inst.Op != isa.OpPush || jmpr.Inst.Rd != 3 {
		t.Fatalf("jmpr rewrite: %s", jmpr)
	}
	if callr.Inst.Op != isa.OpPushI32 || callr.Target != site {
		t.Fatalf("callr rewrite: %s", callr)
	}
	if len(p.Deferred) != 1 || p.Deferred[0].Name != "cfi_targets" {
		t.Fatalf("deferred = %+v", p.Deferred)
	}
}

func TestPinBlocks(t *testing.T) {
	p := testProgram()
	entry := p.AddOrig(0x1000, isa.Inst{Op: isa.OpCall})
	target := p.AddOrig(0x1010, isa.Inst{Op: isa.OpRet})
	site := p.AddOrig(0x1005, isa.Inst{Op: isa.OpRet})
	entry.Target = target
	entry.Fallthrough = site
	synthetic := p.NewInst(isa.Inst{Op: isa.OpJmp32}) // no OrigAddr
	synthetic.Target = target
	p.Functions = []*ir.Function{{Name: "main", Entry: entry, Insts: []*ir.Instruction{entry, site}}}
	if err := Apply(p, PinBlocks{}); err != nil {
		t.Fatal(err)
	}
	if !target.Pinned || !site.Pinned || !entry.Pinned {
		t.Fatalf("pins: target=%v site=%v entry=%v", target.Pinned, site.Pinned, entry.Pinned)
	}
}
