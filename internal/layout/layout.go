// Package layout provides the pluggable code-placement strategies of
// paper §III. Layout algorithms are plugins over the reassembler's
// Placer interface: Optimized packs dollops back at their pinned
// addresses and near their referents to minimize file-size and MaxRSS
// overhead; Diversity scatters dollops randomly across free space to
// maximize code-layout diversity at the cost of memory locality.
package layout

import (
	"math/rand"

	"zipr/internal/core"
	"zipr/internal/ir"
)

// Optimized is the relaxation-style layout (the configuration fielded in
// CGC): dollops go back at their original pinned locations when the gap
// allows, and otherwise land as close to the referencing site as
// possible, preferring pages that already hold pinned references.
type Optimized struct{}

var _ core.Placer = Optimized{}

// Name implements core.Placer.
func (Optimized) Name() string { return "optimized" }

// InlinePins implements core.Placer: reserve pin gaps for in-place code.
func (Optimized) InlinePins() bool { return true }

// Choose picks the fitting block closest to the referencing site; with
// no hint it best-fits the smallest block to limit fragmentation.
func (Optimized) Choose(blocks []ir.Range, size int, hint, origin uint32) (uint32, bool) {
	best := -1
	var bestKey uint64
	for i, b := range blocks {
		if int(b.Len()) < size {
			continue
		}
		var key uint64
		if hint == 0 {
			key = uint64(b.Len()) // best fit
		} else {
			d := int64(b.Start) - int64(hint)
			if d < 0 {
				d = -d
			}
			key = uint64(d)
		}
		if best < 0 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best < 0 {
		return 0, false
	}
	return blocks[best].Start, true
}

// Diversity scatters code randomly: every placement decision picks a
// random fitting block and a random offset inside it, so two rewrites
// with different seeds produce different layouts of the same program.
type Diversity struct {
	rng *rand.Rand
}

var _ core.Placer = (*Diversity)(nil)

// NewDiversity creates a diversity placer with a deterministic seed.
func NewDiversity(seed int64) *Diversity {
	return &Diversity{rng: rand.New(rand.NewSource(seed))}
}

// Name implements core.Placer.
func (*Diversity) Name() string { return "diversity" }

// InlinePins implements core.Placer: never pin code in place — in-place
// code would defeat layout diversity.
func (*Diversity) InlinePins() bool { return false }

// Choose picks a random fitting block and a random offset within it.
func (d *Diversity) Choose(blocks []ir.Range, size int, hint, origin uint32) (uint32, bool) {
	var fitting []ir.Range
	for _, b := range blocks {
		if int(b.Len()) >= size {
			fitting = append(fitting, b)
		}
	}
	if len(fitting) == 0 {
		return 0, false
	}
	b := fitting[d.rng.Intn(len(fitting))]
	slack := int(b.Len()) - size
	off := 0
	if slack > 0 {
		off = d.rng.Intn(slack + 1)
	}
	return b.Start + uint32(off), true
}
