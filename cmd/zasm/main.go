// Command zasm assembles ZVM-32 assembly source into a ZELF binary.
//
// Usage:
//
//	zasm input.s output.zelf
package main

import (
	"flag"
	"fmt"
	"os"

	"zipr/internal/asm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zasm:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: zasm input.s output.zelf")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	bin, err := asm.Assemble(string(src))
	if err != nil {
		return err
	}
	data, err := bin.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(flag.Arg(1), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, entry %#x\n", flag.Arg(1), len(data), bin.Entry)
	return nil
}
