// Command cgc-eval regenerates the paper's evaluation: the robustness
// experiments of §IV-A (libc / libjvm / Apache analogues), the CGC
// overhead histograms of Figures 4-6, the averages of Figure 7, and the
// design-choice ablations indexed in DESIGN.md.
//
// Usage:
//
//	cgc-eval -experiment all                 # everything below
//	cgc-eval -experiment figs  -n 62         # Figures 4-7
//	cgc-eval -experiment robustness -scale 0.05
//	cgc-eval -experiment ablate-pinning -n 8
//	cgc-eval -experiment ablate-layout  -n 8
//	cgc-eval -experiment ablate-sleds
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/loader"
	"zipr/internal/obs"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

// phaseAgg, when non-nil, folds a per-rewrite trace from every rewrite
// the experiments perform; the aggregate table prints after the run.
// Agg locks internally, so parallel corpus evaluation can fold into it.
var phaseAgg *obs.Agg

// jobs is the -j worker count used for corpus evaluation.
var jobs int

func main() {
	experiment := flag.String("experiment", "all", "all | figs | fig4 | fig5 | fig6 | fig7 | robustness | ablate-pinning | ablate-layout | ablate-sleds | ablate-pgo")
	n := flag.Int("n", synth.CorpusSize, "number of challenge binaries")
	scale := flag.Float64("scale", 0.02, "robustness workload scale (1.0 = paper-sized artifacts)")
	phaseTimes := flag.Bool("phase-times", false, "trace every rewrite and print per-phase timings aggregated across the corpus")
	flag.IntVar(&jobs, "j", runtime.GOMAXPROCS(0),
		"corpus evaluation workers; results are identical at any count (1 = serial)")
	flag.Parse()

	if *phaseTimes {
		phaseAgg = obs.NewAgg()
	}
	if err := run(*experiment, *n, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "cgc-eval:", err)
		os.Exit(1)
	}
	if phaseAgg != nil && phaseAgg.Runs() > 0 {
		fmt.Printf("## Per-phase timings aggregated over %d rewrites\n", phaseAgg.Runs())
		if err := phaseAgg.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cgc-eval:", err)
			os.Exit(1)
		}
	}
}

// rewriteBinary is the experiments' single entry point into the
// rewriter; with -phase-times it traces the rewrite and folds the
// result into phaseAgg. Evaluation workers call it concurrently: each
// rewrite gets its own Trace, and phaseAgg.AddTrace locks.
func rewriteBinary(b *binfmt.Binary, cfg zipr.Config) (*binfmt.Binary, *zipr.Report, error) {
	if phaseAgg != nil {
		tr := obs.New()
		cfg.Trace = tr
		defer func() {
			tr.Close()
			phaseAgg.AddTrace(tr)
		}()
	}
	return zipr.RewriteBinary(b, cfg)
}

func run(experiment string, n int, scale float64) error {
	switch experiment {
	case "all":
		if err := runRobustness(scale); err != nil {
			return err
		}
		if err := runFigs(n, "figs"); err != nil {
			return err
		}
		if err := runAblatePinning(min(n, 8)); err != nil {
			return err
		}
		if err := runAblateLayout(min(n, 8)); err != nil {
			return err
		}
		if err := runAblateSleds(); err != nil {
			return err
		}
		return runAblatePGO()
	case "figs", "fig4", "fig5", "fig6", "fig7":
		return runFigs(n, experiment)
	case "robustness":
		return runRobustness(scale)
	case "ablate-pinning":
		return runAblatePinning(min(n, 8))
	case "ablate-layout":
		return runAblateLayout(min(n, 8))
	case "ablate-sleds":
		return runAblateSleds()
	case "ablate-pgo":
		return runAblatePGO()
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// rewriteWith builds a cgcsim.RewriteFunc for a transform set and layout.
func rewriteWith(layoutKind zipr.LayoutKind, tfs ...zipr.Transform) cgcsim.RewriteFunc {
	return func(b *binfmt.Binary) (*binfmt.Binary, error) {
		out, _, err := rewriteBinary(b, zipr.Config{Transforms: tfs, Layout: layoutKind})
		return out, err
	}
}

// ---------------------------------------------------------------- figures

func runFigs(n int, which string) error {
	fmt.Printf("# CGC evaluation: %d challenge binaries, %d pollers each, %d workers\n", n, cgcsim.PollersPerCB, jobs)
	start := time.Now()
	cbs, err := cgcsim.Corpus(n)
	if err != nil {
		return err
	}
	fmt.Printf("# corpus built in %v\n", time.Since(start).Round(time.Millisecond))

	configs := []struct {
		name string
		fn   cgcsim.RewriteFunc
	}{
		{"zipr", rewriteWith(zipr.LayoutOptimized, zipr.Null())},
		{"zipr+cfi", rewriteWith(zipr.LayoutOptimized, zipr.CFI())},
	}
	summaries := map[string]cgcsim.Summary{}
	for _, cfg := range configs {
		t0 := time.Now()
		rows, err := cgcsim.EvaluateParallel(cbs, cfg.fn, jobs)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.name, err)
		}
		s := cgcsim.Summarize(rows)
		summaries[cfg.name] = s
		fmt.Printf("# %-9s evaluated in %v, functional %d/%d\n",
			cfg.name, time.Since(t0).Round(time.Millisecond), s.Functional, s.Total)
		if s.Functional != s.Total {
			for _, r := range rows {
				if !r.Functional {
					fmt.Printf("#   NOT FUNCTIONAL: %s\n", r.Name)
				}
			}
		}
	}

	printHist := func(fig, title string, pick func(cgcsim.Summary) *cgcsim.Histogram) {
		fmt.Printf("\n## Figure %s: histogram of %s overhead (CB count per bin)\n", fig, title)
		fmt.Printf("%-10s", "config")
		for _, b := range cgcsim.Bins {
			fmt.Printf(" %8s", b.Label)
		}
		fmt.Println()
		for _, cfg := range configs {
			fmt.Printf("%-10s", cfg.name)
			for _, c := range pick(summaries[cfg.name]).Counts {
				fmt.Printf(" %8d", c)
			}
			fmt.Println()
		}
	}
	if which == "figs" || which == "fig4" {
		printHist("4", "file-size", func(s cgcsim.Summary) *cgcsim.Histogram { return s.FileHist })
	}
	if which == "figs" || which == "fig5" {
		printHist("5", "execution", func(s cgcsim.Summary) *cgcsim.Histogram { return s.ExecHist })
	}
	if which == "figs" || which == "fig6" {
		printHist("6", "memory (MaxRSS)", func(s cgcsim.Summary) *cgcsim.Histogram { return s.MemHist })
	}
	if which == "figs" || which == "fig7" {
		fmt.Printf("\n## Figure 7: average overheads (%%)\n")
		fmt.Printf("%-10s %8s %8s %8s\n", "config", "filesize", "memory", "cpu")
		for _, cfg := range configs {
			s := summaries[cfg.name]
			fmt.Printf("%-10s %7.2f%% %7.2f%% %7.2f%%\n", cfg.name, s.AvgFile, s.AvgMem, s.AvgExec)
		}
	}
	fmt.Println()
	return nil
}

// ------------------------------------------------------------- robustness

// robustnessTests is the number of "unit tests" (driver inputs) per
// artifact, standing in for libc's 2500-test suite at reduced scale.
const robustnessTests = 40

func runRobustness(scale float64) error {
	fmt.Printf("# Robustness (§IV-A): Null-transform rewriting at scale %.3f\n", scale)
	fmt.Printf("%-8s %10s %10s %10s %8s %10s\n", "artifact", "size", "rewritten", "time", "tests", "parity")

	// libc and libjvm: shared libraries exercised through generated
	// test-driver executables.
	libs := []struct {
		name    string
		seed    int64
		profile synth.Profile
	}{
		{"libc", 11, synth.LibcProfile(scale)},
		{"libjvm", 12, synth.JVMProfile(scale * 0.5)},
	}
	for _, l := range libs {
		if err := robustnessLib(l.name, l.seed, l.profile); err != nil {
			return err
		}
	}
	return robustnessApache(scale)
}

func robustnessLib(name string, seed int64, profile synth.Profile) error {
	lib, err := synth.Build(seed, profile)
	if err != nil {
		return err
	}
	drv, err := synth.Build(seed+100, synth.TestDriverProfile(profile.LibName, []int{0, 3, 6, 9}))
	if err != nil {
		return err
	}
	origSize := lib.FileSize()

	t0 := time.Now()
	rlib, _, err := rewriteBinary(lib.Clone(), zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(t0)

	pass := 0
	rng := rand.New(rand.NewSource(seed * 7))
	for i := 0; i < robustnessTests; i++ {
		input := make([]byte, 16)
		rng.Read(input)
		want, err1 := runWithLibs(drv, map[string]*binfmt.Binary{profile.LibName: lib}, input)
		got, err2 := runWithLibs(drv, map[string]*binfmt.Binary{profile.LibName: rlib}, input)
		if err1 == nil && err2 == nil && want.ExitCode == got.ExitCode && bytes.Equal(want.Output, got.Output) {
			pass++
		}
	}
	fmt.Printf("%-8s %10d %10d %10v %8d %9.1f%%\n",
		name, origSize, rlib.FileSize(), elapsed.Round(time.Millisecond),
		robustnessTests, 100*float64(pass)/robustnessTests)
	return nil
}

func robustnessApache(scale float64) error {
	exeP, libPs := synth.ApacheProfiles(scale * 5) // apache is smaller; scale up
	libBins := map[string]*binfmt.Binary{}
	rlibBins := map[string]*binfmt.Binary{}
	totalSize, totalNew := 0, 0
	var totalTime time.Duration
	for i, lp := range libPs {
		lib, err := synth.Build(int64(300+i), lp)
		if err != nil {
			return err
		}
		libBins[lp.LibName] = lib
		totalSize += lib.FileSize()
		t0 := time.Now()
		rlib, _, err := rewriteBinary(lib.Clone(), zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
		if err != nil {
			return fmt.Errorf("apache lib %s: %w", lp.LibName, err)
		}
		totalTime += time.Since(t0)
		rlibBins[lp.LibName] = rlib
		totalNew += rlib.FileSize()
	}
	exe, err := synth.Build(299, exeP)
	if err != nil {
		return err
	}
	totalSize += exe.FileSize()
	t0 := time.Now()
	rexe, _, err := rewriteBinary(exe.Clone(), zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
	if err != nil {
		return fmt.Errorf("apache exe: %w", err)
	}
	totalTime += time.Since(t0)
	totalNew += rexe.FileSize()

	pass := 0
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < robustnessTests; i++ {
		input := make([]byte, exeP.InputLen)
		rng.Read(input)
		want, err1 := runWithLibs(exe, libBins, input)
		got, err2 := runWithLibs(rexe, rlibBins, input)
		if err1 == nil && err2 == nil && want.ExitCode == got.ExitCode && bytes.Equal(want.Output, got.Output) {
			pass++
		}
	}
	fmt.Printf("%-8s %10d %10d %10v %8d %9.1f%%\n",
		"apache", totalSize, totalNew, totalTime.Round(time.Millisecond),
		robustnessTests, 100*float64(pass)/robustnessTests)
	fmt.Println()
	return nil
}

func runWithLibs(bin *binfmt.Binary, libs map[string]*binfmt.Binary, input []byte) (vm.Result, error) {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(200_000_000))
	if err := loader.Load(m, bin, libs); err != nil {
		return vm.Result{}, err
	}
	return m.Run()
}

// -------------------------------------------------------------- ablations

func runAblatePinning(n int) error {
	fmt.Printf("# Ablation A1 (§II-A2): heuristic pinning vs. naive block pinning (%d CBs)\n", n)
	cbs, err := cgcsim.Corpus(n)
	if err != nil {
		return err
	}
	heur, err := cgcsim.EvaluateParallel(cbs, rewriteWith(zipr.LayoutOptimized, zipr.Null()), jobs)
	if err != nil {
		return err
	}
	naive, err := cgcsim.EvaluateParallel(cbs, rewriteWith(zipr.LayoutOptimized, zipr.PinBlocks(), zipr.Null()), jobs)
	if err != nil {
		return err
	}
	hs, ns := cgcsim.Summarize(heur), cgcsim.Summarize(naive)
	fmt.Printf("%-18s %9s %9s %9s %11s\n", "pinning", "file%", "cpu%", "mem%", "functional")
	fmt.Printf("%-18s %8.2f%% %8.2f%% %8.2f%% %7d/%d\n", "heuristic", hs.AvgFile, hs.AvgExec, hs.AvgMem, hs.Functional, hs.Total)
	fmt.Printf("%-18s %8.2f%% %8.2f%% %8.2f%% %7d/%d\n", "naive (blocks)", ns.AvgFile, ns.AvgExec, ns.AvgMem, ns.Functional, ns.Total)
	fmt.Println()
	return nil
}

func runAblateLayout(n int) error {
	fmt.Printf("# Ablation A2 (§III): optimized vs. diversity layout (%d CBs)\n", n)
	cbs, err := cgcsim.Corpus(n)
	if err != nil {
		return err
	}
	opt, err := cgcsim.EvaluateParallel(cbs, rewriteWith(zipr.LayoutOptimized, zipr.Null()), jobs)
	if err != nil {
		return err
	}
	div, err := cgcsim.EvaluateParallel(cbs, rewriteWith(zipr.LayoutDiversity, zipr.Null()), jobs)
	if err != nil {
		return err
	}
	os1, ds := cgcsim.Summarize(opt), cgcsim.Summarize(div)
	fmt.Printf("%-12s %9s %9s %9s %11s\n", "layout", "file%", "cpu%", "mem%", "functional")
	fmt.Printf("%-12s %8.2f%% %8.2f%% %8.2f%% %7d/%d\n", "optimized", os1.AvgFile, os1.AvgExec, os1.AvgMem, os1.Functional, os1.Total)
	fmt.Printf("%-12s %8.2f%% %8.2f%% %8.2f%% %7d/%d\n", "diversity", ds.AvgFile, ds.AvgExec, ds.AvgMem, ds.Functional, ds.Total)
	fmt.Println()
	return nil
}

// runAblatePGO demonstrates the optimization use case: an error-path-
// heavy program is profiled and rewritten under the profile-guided
// layout; hot-path MaxRSS drops against the original while behavior
// stays identical on both paths.
func runAblatePGO() error {
	fmt.Printf("# Ablation A4: profile-guided layout on an error-path-heavy program\n")
	profile := synth.Profile{
		Name: "pgoeval", NumFuncs: 20, OpsMin: 6, OpsMax: 20, LoopIters: 16,
		ColdFuncs: 100, DirectCallAll: true, HeapPages: 1, InputLen: 32,
	}
	orig, err := synth.Build(21, profile)
	if err != nil {
		return err
	}
	training := bytes.Repeat([]byte{0x42}, profile.InputLen)
	errorInput := append(bytes.Repeat([]byte{0x42}, profile.InputLen-1), 0xFF)

	prof := zipr.NewProfiler()
	instrumented, _, err := rewriteBinary(orig.Clone(), zipr.Config{
		Transforms: []zipr.Transform{prof},
	})
	if err != nil {
		return err
	}
	m := vm.New(vm.WithStdin(bytes.NewReader(training)), vm.WithMaxSteps(200_000_000))
	if err := loader.Load(m, instrumented, nil); err != nil {
		return err
	}
	if _, err := m.Run(); err != nil {
		return err
	}
	var hot []uint32
	for entry, ctr := range prof.Counters {
		raw, err := m.ReadMem(ctr, 4)
		if err != nil {
			return err
		}
		if raw[0]|raw[1]|raw[2]|raw[3] != 0 {
			hot = append(hot, entry)
		}
	}
	pgo, _, err := rewriteBinary(orig.Clone(), zipr.Config{
		Layout: zipr.LayoutProfileGuided, HotFuncs: hot,
	})
	if err != nil {
		return err
	}
	base, err := runWithLibs(orig, nil, training)
	if err != nil {
		return err
	}
	fast, err := runWithLibs(pgo, nil, training)
	if err != nil {
		return err
	}
	baseErr, err1 := runWithLibs(orig, nil, errorInput)
	fastErr, err2 := runWithLibs(pgo, nil, errorInput)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("error-path run failed: %v %v", err1, err2)
	}
	ok := base.ExitCode == fast.ExitCode && bytes.Equal(base.Output, fast.Output) &&
		baseErr.ExitCode == fastErr.ExitCode && bytes.Equal(baseErr.Output, fastErr.Output)
	fmt.Printf("functions: %d profiled, %d hot\n", len(prof.Counters), len(hot))
	fmt.Printf("hot-path MaxRSS: original %d pages -> profile-guided %d pages (%+.0f%%)\n",
		base.PagesTouched, fast.PagesTouched,
		100*float64(fast.PagesTouched-base.PagesTouched)/float64(base.PagesTouched))
	fmt.Printf("behavior identical on hot and error paths: %v\n\n", ok)
	return nil
}

// sledProgram builds a program whose dispatch table targets adjacent
// one-byte instructions, forcing dense references; spread controls the
// spacing (1 = dense/sled path, 16 = ordinary references).
func sledProgram(spread int) string {
	var sb strings.Builder
	sb.WriteString(".text 0x00100000\n.entry main\n")
	// Targets come first so the sled's tail can grow into main's
	// relocatable bytes; with spread > 1 each target pads itself with
	// executed nops so the pinned addresses sit apart.
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "t%d:\n", i)
		for p := 1; p < spread; p++ {
			sb.WriteString("    nop\n")
		}
		sb.WriteString("    ret\n")
	}
	sb.WriteString("main:\n")
	sb.WriteString("    movi r0, 3\n    movi r1, 0\n    movi r2, sel\n    movi r3, 4\n    syscall\n")
	sb.WriteString("    movi r4, sel\n    load r4, [r4]\n    andi r4, 3\n    shli r4, 2\n")
	sb.WriteString("    movi r5, tab\n    add r5, r4\n    load r5, [r5]\n")
	// Call each target many times to make dispatch cost visible.
	sb.WriteString("    movi r7, 2000\nlp:\n    callr r5\n    dec r7\n    jnz lp\n")
	sb.WriteString("    movi r0, 1\n    movi r1, 0\n    syscall\n")
	sb.WriteString(".data 0x00200000\n")
	sb.WriteString("tab: .word t0, t1, t2, t3\n")
	sb.WriteString("sel: .space 4\n")
	return sb.String()
}

func runAblateSleds() error {
	fmt.Printf("# Ablation A3 (§II-C2): sled dispatch cost on dense references\n")
	fmt.Printf("%-10s %8s %8s %10s %12s\n", "layout", "sleds", "entries", "cpu%", "functional")
	for _, tc := range []struct {
		name   string
		spread int
	}{
		{"dense", 1},
		{"spread", 16},
	} {
		bin, err := asm.Assemble(sledProgram(tc.spread))
		if err != nil {
			return err
		}
		rw, rep, err := rewriteBinary(bin.Clone(), zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
		if err != nil {
			return err
		}
		ok := true
		var overhead float64
		for sel := byte(0); sel < 4; sel++ {
			input := []byte{sel, 0, 0, 0}
			want, err1 := runWithLibs(bin, nil, input)
			got, err2 := runWithLibs(rw, nil, input)
			if err1 != nil || err2 != nil || want.ExitCode != got.ExitCode {
				ok = false
				continue
			}
			overhead += 100 * (float64(got.Steps) - float64(want.Steps)) / float64(want.Steps)
		}
		fmt.Printf("%-10s %8d %8d %9.2f%% %12v\n",
			tc.name, rep.Stats.Sleds, rep.Stats.SledEntries, overhead/4, ok)
	}
	fmt.Println()
	return nil
}
