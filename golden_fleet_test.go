package zipr_test

// Fleet golden gate: the same golden cells answered through a gateway
// fronting two worker daemons must produce the digests pinned in
// testdata/golden/corpus.json — sharded serving may move work between
// workers but may never change a byte. The delta leg repeats the
// check for an edited input so snapshot-patched answers are held to
// the same standard across the fleet.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/cgcsim"
	"zipr/internal/fleet"
	"zipr/internal/obs"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

// fleetGoldenSpecs mirrors serveGoldenConfigs in wire form: the
// transform spec, layout, and seed query parameters a client would
// send. Both the gateway's routing key and the worker's rewrite parse
// these with serve.ParseTransforms, so the specs must round-trip to
// the same configs serveGoldenConfigs builds directly.
func fleetGoldenSpecs() map[string]string {
	return map[string]string{
		"null/optimized": "transforms=null",
		"cfi/optimized":  "transforms=cfi",
		"full/diversity": "transforms=stir:0x57123,nop-elide,stackpad:48,canary:0xA5A5A5A5,cfi&layout=diversity&seed=24789",
	}
}

// fleetWorker is a minimal worker daemon: /rewrite with the ziprd
// query-parameter contract over one serve.Server, /healthz for the
// gateway's probes.
func fleetWorker(t testing.TB, s *serve.Server) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/rewrite", func(w http.ResponseWriter, r *http.Request) {
		input, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		tfs, err := serve.ParseTransforms(q.Get("transforms"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		cfg := zipr.Config{Transforms: tfs, Layout: zipr.LayoutKind(q.Get("layout"))}
		fmt.Sscanf(q.Get("seed"), "%d", &cfg.Seed)
		out, _, err := s.Rewrite(r.Context(), input, cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(out)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// newGoldenFleet builds a gateway over two fresh workers and returns
// its handler plus the gateway for metric assertions.
func newGoldenFleet(t testing.TB) (http.Handler, *fleet.Gateway) {
	t.Helper()
	sa := serve.New(serve.Options{Workers: 2})
	t.Cleanup(sa.Close)
	sb := serve.New(serve.Options{Workers: 2})
	t.Cleanup(sb.Close)
	wa, wb := fleetWorker(t, sa), fleetWorker(t, sb)
	reg := obs.NewRegistry()
	g := fleet.New(fleet.Config{
		Workers: []string{
			strings.TrimPrefix(wa.URL, "http://"),
			strings.TrimPrefix(wb.URL, "http://"),
		},
		Registry: reg,
	})
	return g.Handler(reg), g
}

// fleetRewrite sends one request through the gateway handler.
func fleetRewrite(t testing.TB, h http.Handler, input []byte, query string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/rewrite?"+query, bytes.NewReader(input))
	req.RemoteAddr = "198.51.100.7:4242"
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("gateway status %d: %s", rr.Code, rr.Body.String())
	}
	return rr.Body.Bytes()
}

func TestGoldenThroughFleet(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden/corpus.json")
	if err != nil {
		t.Fatalf("golden file missing (%v); generate it with: go test -run TestGoldenCorpus -update .", err)
	}
	var pinned struct {
		Cells map[string]struct {
			Image string `json:"image"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &pinned); err != nil {
		t.Fatal(err)
	}
	indices := []int{0, 17, 38, synth.PathologicalCB}
	corpus, err := cgcsim.Corpus(synth.CorpusSize)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newGoldenFleet(t)

	// Sanity: the wire specs round-trip to the exact configs the
	// single-server golden gate uses, so both gates pin the same cells.
	direct := serveGoldenConfigs()
	for cell, query := range fleetGoldenSpecs() {
		spec := ""
		for _, kv := range strings.Split(query, "&") {
			if v, ok := strings.CutPrefix(kv, "transforms="); ok {
				spec = v
			}
		}
		tfs, err := serve.ParseTransforms(spec)
		if err != nil {
			t.Fatalf("%s: spec does not parse: %v", cell, err)
		}
		want := direct[cell]
		got := zipr.Config{Transforms: tfs, Layout: want.Layout, Seed: want.Seed}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("%s: wire spec fingerprint drifted from serveGoldenConfigs", cell)
		}
	}

	for _, idx := range indices {
		cb := corpus[idx]
		input, err := cb.Bin.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", cb.Name, err)
		}
		for cell, query := range fleetGoldenSpecs() {
			key := cb.Name + "/" + cell
			want, ok := pinned.Cells[key]
			if !ok {
				t.Errorf("%s: not pinned in golden file", key)
				continue
			}
			// Cold (a worker's pipeline run) and hot (that worker's
			// cache) must both pin; routing is deterministic, so the
			// repeat lands on the same worker.
			for _, label := range []string{"cold", "hot"} {
				out := fleetRewrite(t, h, input, query)
				sum := sha256.Sum256(out)
				if got := hex.EncodeToString(sum[:]); got != want.Image {
					t.Errorf("%s: %s fleet answer drifted from pinned image digest\n  pinned %s\n  got    %s",
						key, label, want.Image, got)
					break
				}
			}
		}
	}
}

// TestGoldenFleetDelta: an edited input answered through the fleet —
// whichever worker it shards to, and whether or not that worker holds
// the base's placement snapshot — matches a from-scratch rewrite
// byte for byte.
func TestGoldenFleetDelta(t *testing.T) {
	seed := int64(0xDE17A)
	prof := synth.Profile{
		Name: "fvd", NumFuncs: 12, OpsMin: 4, OpsMax: 10,
		DataWords: 32, InputLen: 4, LoopIters: 3,
	}
	src := synth.Generate(seed, prof)
	build := func(s string) []byte {
		bin, err := asm.Assemble(s)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		img, err := bin.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return img
	}
	base := build(src)
	msrc, n := synth.MutateConsts(src, 0x70AD, 1)
	if n != 1 {
		t.Fatalf("mutated %d functions, want 1", n)
	}
	edited := build(msrc)

	h, _ := newGoldenFleet(t)
	query := "transforms=cfi"
	fleetRewrite(t, h, base, query) // seed whichever worker owns the base
	got := fleetRewrite(t, h, edited, query)

	want, _, err := zipr.Rewrite(edited, zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fleet answer for the edited input diverged from a from-scratch rewrite")
	}
}
