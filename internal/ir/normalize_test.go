package ir

import (
	"testing"

	"zipr/internal/isa"
)

func TestDeleteAndNormalizeSplicesChains(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpMovI, Rd: 1})
	b := p.AddOrig(0x1006, isa.Inst{Op: isa.OpNop})
	c := p.AddOrig(0x1007, isa.Inst{Op: isa.OpNop})
	d := p.AddOrig(0x1008, isa.Inst{Op: isa.OpRet})
	a.Fallthrough = b
	b.Fallthrough = c
	c.Fallthrough = d
	j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
	j.Target = b

	if err := p.Delete(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(c); err != nil {
		t.Fatal(err)
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Fallthrough != d {
		t.Fatalf("fallthrough not spliced: %v", a.Fallthrough)
	}
	if j.Target != d {
		t.Fatalf("branch target not spliced: %v", j.Target)
	}
	for _, n := range p.Insts {
		if n.Deleted {
			t.Fatal("deleted node survived normalization")
		}
	}
}

func TestDeleteTerminatorRejected(t *testing.T) {
	p := NewProgram(testBin())
	r := p.AddOrig(0x1000, isa.Inst{Op: isa.OpRet})
	if err := p.Delete(r); err == nil {
		t.Fatal("deleting a terminator must fail")
	}
}

func TestNormalizeMovesPinToSuccessor(t *testing.T) {
	p := NewProgram(testBin())
	pinned := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	pinned.Pinned = true
	succ := p.NewInst(isa.Inst{Op: isa.OpRet}) // no OrigAddr of its own
	pinned.Fallthrough = succ
	if err := p.Delete(pinned); err != nil {
		t.Fatal(err)
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !succ.Pinned || succ.OrigAddr != 0x1000 {
		t.Fatalf("pin not moved: pinned=%v orig=%#x", succ.Pinned, succ.OrigAddr)
	}
	if p.ByAddr[0x1000] != succ {
		t.Fatal("address map not updated")
	}
}

func TestNormalizeAliasesConflictingPins(t *testing.T) {
	p := NewProgram(testBin())
	pinned := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	pinned.Pinned = true
	succ := p.AddOrig(0x1001, isa.Inst{Op: isa.OpRet})
	succ.Pinned = true
	pinned.Fallthrough = succ
	if err := p.Delete(pinned); err != nil {
		t.Fatal(err)
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	// succ keeps its own pin; an alias jump carries the deleted pin.
	alias := p.ByAddr[0x1000]
	if alias == succ || alias == nil {
		t.Fatalf("expected alias node, got %v", alias)
	}
	if alias.Inst.Op != isa.OpJmp32 || alias.Target != succ || !alias.Pinned || alias.OrigAddr != 0x1000 {
		t.Fatalf("alias wrong: %s", alias)
	}
	if p.ByAddr[0x1001] != succ || !succ.Pinned {
		t.Fatal("successor pin damaged")
	}
}

func TestNormalizeEntryDeletion(t *testing.T) {
	p := NewProgram(testBin())
	entry := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	next := p.AddOrig(0x1001, isa.Inst{Op: isa.OpRet})
	entry.Fallthrough = next
	p.Entry = entry
	if err := p.Delete(entry); err != nil {
		t.Fatal(err)
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	if p.Entry != next {
		t.Fatalf("entry not redirected: %v", p.Entry)
	}
}

func TestNormalizeFunctionsFiltered(t *testing.T) {
	p := NewProgram(testBin())
	a := p.AddOrig(0x1000, isa.Inst{Op: isa.OpNop})
	b := p.AddOrig(0x1001, isa.Inst{Op: isa.OpRet})
	a.Fallthrough = b
	p.Functions = []*Function{{Name: "f", Entry: a, Insts: []*Instruction{a, b}}}
	if err := p.Delete(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	f := p.Functions[0]
	if f.Entry != b || len(f.Insts) != 1 || f.Insts[0] != b {
		t.Fatalf("function not normalized: %+v", f)
	}
}
