package isa

import "fmt"

// Arch abstracts the ISA-specific facts the rewriting pipeline depends
// on: the instruction codec (widths, alignment, decode errors), the
// branch-reach model, and the pin/reference regime reassembly must use
// (x86-style chains and 0x68 push-sleds on ZVM-32; fixed-width range
// islands/veneers on ZVM-64). Everything above the codec — the IR, the
// transforms, the placers — stays ISA-neutral and talks to one of these.
//
// The package-level Encode/Decode/Inst.Len functions remain the ZVM-32
// codec; Arch is the seam through which a second ISA enters the
// pipeline without disturbing existing digests.
type Arch interface {
	// Name is the canonical ISA name ("zvm32", "zvm64"); it keys the
	// registry, the config fingerprint and the test matrices.
	Name() string
	// MaxLen is the longest encoding in bytes.
	MaxLen() int
	// Align is the instruction-address alignment (1 = unaligned).
	Align() uint32
	// InstLen returns the encoded length of in under this ISA, or 0
	// when in cannot be encoded (invalid op, or an op the ISA lacks).
	InstLen(in Inst) int
	// AppendEncode appends the encoding of in to dst.
	AppendEncode(dst []byte, in Inst) ([]byte, error)
	// Encode returns the encoding of in.
	Encode(in Inst) ([]byte, error)
	// Decode decodes the instruction at the start of b, which sits at
	// address addr (fixed-width ISAs reject misaligned addr).
	Decode(b []byte, addr uint32) (Inst, error)
	// TargetAddr is Inst.TargetAddr under this ISA's lengths.
	TargetAddr(in Inst, addr uint32) (uint32, bool)

	// RefLen is the size in bytes of an unconstrained reference jump —
	// what reassembly plants at a pinned address when the gap allows.
	RefLen() int
	// ChainRefLen is the size of a constrained short reference (0 when
	// the ISA has no short branch form and therefore no chaining).
	ChainRefLen() int
	// SledsSupported reports whether the 0x68 push-sled construction is
	// byte-compatible with this ISA's encoding.
	SledsSupported() bool
	// BranchReach is the maximum forward/backward displacement of a
	// direct branch in bytes (0 = unlimited reach).
	BranchReach() uint32
	// BranchDispOK reports whether a direct branch can encode disp.
	BranchDispOK(disp int64) bool
	// VeneerLen is the byte size of a veneer (range-extension island);
	// 0 when the ISA never needs one.
	VeneerLen() int
	// VeneerBytes returns the encoded veneer that forwards control to
	// the absolute address dest from anywhere.
	VeneerBytes(dest uint32) []byte
}

// zvm32Arch adapts the package-level variable-width codec to Arch.
type zvm32Arch struct{}

func (zvm32Arch) Name() string                                     { return "zvm32" }
func (zvm32Arch) MaxLen() int                                      { return MaxLen }
func (zvm32Arch) Align() uint32                                    { return 1 }
func (zvm32Arch) InstLen(in Inst) int                              { return in.Len() }
func (zvm32Arch) AppendEncode(dst []byte, in Inst) ([]byte, error) { return AppendEncode(dst, in) }
func (zvm32Arch) Encode(in Inst) ([]byte, error)                   { return Encode(in) }
func (zvm32Arch) Decode(b []byte, addr uint32) (Inst, error)       { return Decode(b) }
func (zvm32Arch) TargetAddr(in Inst, addr uint32) (uint32, bool)   { return in.TargetAddr(addr) }
func (zvm32Arch) RefLen() int                                      { return 5 }
func (zvm32Arch) ChainRefLen() int                                 { return 2 }
func (zvm32Arch) SledsSupported() bool                             { return true }
func (zvm32Arch) BranchReach() uint32                              { return 0 }
func (zvm32Arch) BranchDispOK(disp int64) bool                     { return disp >= -1<<31 && disp <= 1<<31-1 }
func (zvm32Arch) VeneerLen() int                                   { return 0 }
func (zvm32Arch) VeneerBytes(dest uint32) []byte                   { return nil }

// ZVM32 is the default, variable-width ISA.
var ZVM32 Arch = zvm32Arch{}

// ZVM64 is the fixed-width 4-byte ISA with ±1 MiB branch reach.
var ZVM64 Arch = zvm64Arch{}

// DefaultArch is the ISA assumed wherever none is configured; every
// pre-abstraction digest and golden cell was produced under it.
func DefaultArch() Arch { return ZVM32 }

// Of returns a if non-nil and the default otherwise — the nil-tolerant
// accessor every pipeline layer uses so IR built before the
// architecture abstraction keeps working unchanged.
func Of(a Arch) Arch {
	if a == nil {
		return ZVM32
	}
	return a
}

// IsDefault reports whether a is (or defaults to) the default ISA.
func IsDefault(a Arch) bool { return a == nil || a.Name() == ZVM32.Name() }

// ByName resolves an ISA name; the empty string means the default.
func ByName(name string) (Arch, error) {
	switch name {
	case "", "zvm32":
		return ZVM32, nil
	case "zvm64":
		return ZVM64, nil
	}
	return nil, fmt.Errorf("isa: unknown ISA %q (want zvm32 or zvm64)", name)
}

// ArchNames lists the registered ISA names, default first.
func ArchNames() []string { return []string{"zvm32", "zvm64"} }
