// Package obs is the rewriter's zero-dependency observability layer:
// hierarchical phase spans (wall clock plus runtime.ReadMemStats deltas,
// the in-process analogue of the paper's per-stage time and MaxRSS
// columns), typed counters/gauges/histograms that subsume the end-of-run
// Stats struct, and pluggable sinks — a JSON-lines trace writer and a
// human-readable phase-time table.
//
// A nil *Trace disables everything: every method is nil-safe and the
// disabled path performs no allocations (guarded by the package tests
// and BenchmarkRewriteNoTrace), so instrumentation stays in the pipeline
// unconditionally.
//
// Typical use:
//
//	tr := obs.New(obs.NewTable(os.Stdout))
//	out, rep, err := zipr.Rewrite(in, zipr.Config{Trace: tr})
//	tr.Close()
package obs

import (
	"runtime"
	"sync"
	"time"
)

// Trace collects spans and metrics for one or more pipeline runs. The
// zero value is not usable; construct with New. All methods are safe to
// call on a nil receiver (tracing disabled) and safe for concurrent use:
// counters, gauges and histograms (Add, SetGauge, Observe) may be
// updated from any goroutine at any time.
//
// Spans need one rule because they form a single stack: Start/End pair
// on the goroutine that owns the current phase. When a phase fans work
// out to worker goroutines, the coordinator creates one detached span
// per worker with StartDetached (in a deterministic order, attached
// under the currently open phase but never pushed on the stack), hands
// each to its worker, and the worker calls End — and, for nested
// sub-phases, Span.StartChild — without ever touching the shared stack.
// Workers must End every detached span before the phase's own End.
// Concurrent pipelines (whole-binary fan-out) should instead use one
// Trace each and merge with an Agg, which is also safe to share.
//
// Note that span memory deltas diff process-wide runtime.MemStats, so
// spans running concurrently attribute each other's allocations to
// themselves; wall clock remains exact per span.
type Trace struct {
	mu    sync.Mutex
	begun time.Time
	sinks []Sink
	roots []*Span
	open  []*Span // stack of spans started but not yet ended
	met   *Metrics
}

// New creates a Trace emitting to the given sinks on Close. A Trace
// with no sinks still records spans and metrics for Snapshot.
func New(sinks ...Sink) *Trace {
	return &Trace{begun: time.Now(), sinks: sinks, met: NewMetrics()}
}

// Enabled reports whether the trace records anything. Use it to guard
// instrumentation whose argument construction itself costs (for
// example counter names built with string concatenation).
func (t *Trace) Enabled() bool { return t != nil }

// Span is one measured phase: a node in the trace tree with wall-clock
// and heap-accounting deltas. Fields are final once End (or Close) has
// run; Count is 1 for ordinary spans and the occurrence count for
// aggregate records (see Record).
type Span struct {
	Name     string
	Depth    int
	Count    int64
	Start    time.Duration // offset from trace creation
	Wall     time.Duration
	Allocs   uint64 // heap objects allocated during the span
	Bytes    uint64 // heap bytes allocated during the span
	HeapLive int64  // live-heap growth across the span (MaxRSS analogue)
	Children []*Span

	t        *Trace
	started  time.Time
	m0       memSample
	ended    bool
	detached bool // not on the open stack; ended individually
}

// memSample is the slice of runtime.MemStats the spans diff.
type memSample struct {
	mallocs    uint64
	totalAlloc uint64
	heapAlloc  uint64
}

func readMem() memSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSample{mallocs: ms.Mallocs, totalAlloc: ms.TotalAlloc, heapAlloc: ms.HeapAlloc}
}

// Start opens a span as a child of the innermost open span (or as a new
// root). Returns nil when the trace is disabled; Span.End is nil-safe.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Count: 1, t: t, started: time.Now(), m0: readMem()}
	s.Start = s.started.Sub(t.begun)
	t.attachLocked(s)
	t.open = append(t.open, s)
	return s
}

// StartDetached opens a span attached under the innermost open span —
// like Start — but never pushed onto the open stack, so later Start
// calls (including other detached spans) attach as its siblings, not
// its children. This is the worker-goroutine pattern: the coordinator
// creates the spans in a deterministic order, each worker ends its own,
// and no worker's span can accidentally nest under another's. Returns
// nil when the trace is disabled.
func (t *Trace) StartDetached(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Count: 1, t: t, started: time.Now(), m0: readMem(), detached: true}
	s.Start = s.started.Sub(t.begun)
	t.attachLocked(s)
	return s
}

// StartChild opens a detached span nested under s, for sub-phases
// measured inside a worker goroutine that owns s. The child must be
// ended (by any goroutine) before s's own End. Safe on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{Name: name, Depth: s.Depth + 1, Count: 1, t: t, started: time.Now(), m0: readMem(), detached: true}
	c.Start = c.started.Sub(t.begun)
	s.Children = append(s.Children, c)
	return c
}

// attachLocked links s under the innermost open span.
func (t *Trace) attachLocked(s *Span) {
	if n := len(t.open); n > 0 {
		p := t.open[n-1]
		s.Depth = p.Depth + 1
		p.Children = append(p.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
}

// End closes the span, recording wall time and memory deltas. Ending a
// span also ends any of its children still open. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now, m1 := time.Now(), readMem()
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	s.t.endLocked(s, now, m1)
}

// endLocked finalizes s and pops it (and any nested open spans) off the
// stack.
func (t *Trace) endLocked(s *Span, now time.Time, m1 memSample) {
	if s.ended {
		return
	}
	if s.detached {
		// Detached spans live off the stack: finalize just this one.
		s.Wall = now.Sub(s.started)
		s.Allocs = m1.mallocs - s.m0.mallocs
		s.Bytes = m1.totalAlloc - s.m0.totalAlloc
		s.HeapLive = int64(m1.heapAlloc) - int64(s.m0.heapAlloc)
		s.ended = true
		return
	}
	idx := -1
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return // already popped by an enclosing End
	}
	for i := len(t.open) - 1; i >= idx; i-- {
		sp := t.open[i]
		sp.Wall = now.Sub(sp.started)
		sp.Allocs = m1.mallocs - sp.m0.mallocs
		sp.Bytes = m1.totalAlloc - sp.m0.totalAlloc
		sp.HeapLive = int64(m1.heapAlloc) - int64(sp.m0.heapAlloc)
		sp.ended = true
	}
	t.open = t.open[:idx]
}

// Record attaches a pre-measured aggregate span — the summed cost of
// count occurrences of a sub-phase too fine-grained for individual
// spans (for example one chain allocation) — as a child of the
// innermost open span. Unlike Start, it never samples memory stats.
// Records with count == 0 are kept so phase tables list every
// sub-phase the pipeline has, even when a run never exercised it.
func (t *Trace) Record(name string, wall time.Duration, count int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Count: int64(count), Wall: wall, ended: true}
	if off := time.Since(t.begun) - wall; off > 0 {
		s.Start = off
	}
	t.attachLocked(s)
}

// Add increments a named counter.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.met.Counters[name] += delta
	t.mu.Unlock()
}

// SetGauge records the current value of a named gauge.
func (t *Trace) SetGauge(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.met.Gauges[name] = v
	t.mu.Unlock()
}

// Observe adds a value to a named power-of-two-bucket histogram.
func (t *Trace) Observe(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.met.Hists[name]
	if h == nil {
		h = &Hist{}
		t.met.Hists[name] = h
	}
	h.Observe(v)
	t.mu.Unlock()
}

// Counter returns the current value of a named counter — 0 when the
// counter has never been bumped or the trace is disabled. Safe for
// concurrent use; intended for tests and serving-layer introspection
// that need one value without snapshotting the whole trace.
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.met.Counters[name]
}

// Gauge returns the current value of a named gauge — 0 when the gauge
// has never been set or the trace is disabled. Safe for concurrent use.
func (t *Trace) Gauge(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.met.Gauges[name]
}

// Snapshot captures the trace's current spans and metrics. The returned
// structures are shared, not copied: treat them as read-only, and
// prefer snapshotting after Close (or after all spans have ended).
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return &Snapshot{Metrics: NewMetrics()}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Snapshot{Spans: t.roots, Metrics: t.met}
}

// Close ends any spans left open (error paths abandon them) and emits
// the final snapshot to every sink, returning the first sink error.
// Safe on nil, and safe to call more than once (sinks re-emit).
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if len(t.open) > 0 {
		t.endLocked(t.open[0], time.Now(), readMem())
	}
	snap := &Snapshot{Spans: t.roots, Metrics: t.met}
	sinks := t.sinks
	t.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Emit(snap); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Snapshot is the immutable view handed to sinks: the span forest in
// start order plus the metric families.
type Snapshot struct {
	Spans   []*Span
	Metrics *Metrics
}

// Sink consumes a finished trace. Emit is called from Trace.Close.
type Sink interface {
	Emit(snap *Snapshot) error
}
