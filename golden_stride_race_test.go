//go:build race

package zipr

// Under the race detector every VM step and pipeline phase runs several
// times slower, and the golden suite's value there is exercising the
// machinery, not re-pinning all cells (the !race run already does that
// exhaustively). Sample every 9th corpus program — still 7 programs
// spanning the profile range, including index 0 and the high indices
// near the pathological CB.
const goldenStride = 9
