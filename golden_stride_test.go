//go:build !race

package zipr

// goldenStride is the corpus sampling stride of the golden suite: plain
// `go test` (the tier-1 gate) covers every corpus program. The race
// build substitutes a coarser stride — see golden_stride_race_test.go.
const goldenStride = 1
