package serve

import (
	"time"

	"zipr/internal/obs"
)

// Request outcomes: the label set of the serve.request.* metric
// families and the Outcome field of RequestMeta. The set is fixed and
// small on purpose — outcome is the only label the serving layer puts
// on a metric, keeping family cardinality bounded.
const (
	OutcomeHit    = "hit"    // answered from the content-addressed cache
	OutcomeMiss   = "miss"   // full pipeline run
	OutcomeShared = "shared" // singleflight follower of a concurrent run
	OutcomeDelta  = "delta"  // answered by patching a placement-snapshot ancestor
	OutcomeBusy   = "busy"   // rejected or expired (zerr.ErrBusy class)
	OutcomeError  = "error"  // pipeline or input failure
)

// outcomes enumerates every label value; telemetry handles are
// resolved once per outcome at construction so the per-request path
// never does a label lookup.
var outcomes = [...]string{OutcomeHit, OutcomeMiss, OutcomeShared, OutcomeDelta, OutcomeBusy, OutcomeError}

// Cache tiers: the label set of serve.tier.latency and the Tier field
// of RequestMeta. A hit names the tier that answered (ram or disk);
// delta and pipeline classify the non-hit latency populations so each
// tier's rolling p95 is scrapeable on its own.
const (
	TierRAM      = "ram"      // in-memory LRU answered
	TierDisk     = "disk"     // disk tier answered (promoted into RAM)
	TierDelta    = "delta"    // placement-snapshot patch answered
	TierPipeline = "pipeline" // full pipeline run
)

// tiers enumerates the serve.tier.latency label values.
var tiers = [...]string{TierRAM, TierDisk, TierDelta, TierPipeline}

// tierOf maps a finished request onto its latency tier ("" for busy,
// shared and error requests, which have no tier population).
func tierOf(m RequestMeta) string {
	switch m.Outcome {
	case OutcomeHit:
		if m.Tier != "" {
			return m.Tier
		}
		return TierRAM
	case OutcomeDelta:
		return TierDelta
	case OutcomeMiss:
		return TierPipeline
	}
	return ""
}

// RequestMeta is the per-request telemetry record RewriteMeta returns:
// what happened and where the time went. Access logs and labeled
// metrics are derived from it.
type RequestMeta struct {
	// Key is the request's content address (input digest folded with
	// the resolved config fingerprint).
	Key Key
	// Outcome is one of the Outcome* constants.
	Outcome string
	// Tier names the cache tier that answered a hit (TierRAM or
	// TierDisk); empty for non-hit outcomes.
	Tier string
	// QueueWait is time spent waiting for a worker slot (0 when a
	// worker — or the cache — answered immediately).
	QueueWait time.Duration
	// Wall is the whole request's serve-side duration.
	Wall time.Duration
}

// telemetry holds the serving layer's pre-resolved labeled metric
// handles. Every handle is nil-safe, so a server without a Registry
// carries a zero telemetry struct and pays only nil checks.
type telemetry struct {
	total      map[string]*obs.Counter      // serve.request.total{outcome}
	latency    map[string]*obs.WindowSeries // serve.request.latency{outcome}, µs
	queueWait  *obs.WindowSeries            // serve.queue.wait, µs
	queueDepth *obs.Gauge                   // serve.queue.depth
	cacheBytes *obs.Gauge                   // serve.cache.bytes
	cacheCount *obs.Gauge                   // serve.cache.entries
	evictions  *obs.Counter                 // serve.cache.evictions
	corrupt    *obs.Counter                 // serve.cache.corrupt
	runs       *obs.Counter                 // serve.pipeline.runs
	deltaStale *obs.Counter                 // serve.delta.stale
	snapBytes  *obs.Gauge                   // serve.snapshot.bytes
	snapCount  *obs.Gauge                   // serve.snapshot.entries

	tier         map[string]*obs.WindowSeries // serve.tier.latency{tier}, µs
	diskHits     *obs.Counter                 // serve.disk.hits
	diskPromotes *obs.Counter                 // serve.disk.promotes
	diskCorrupt  *obs.Counter                 // serve.disk.corrupt
	diskBytes    *obs.Gauge                   // serve.disk.bytes
	diskEntries  *obs.Gauge                   // serve.disk.entries
}

// newTelemetry registers the serving layer's metric families on reg
// (nil reg: every handle is a nil no-op).
func newTelemetry(reg *obs.Registry) telemetry {
	t := telemetry{
		total:   make(map[string]*obs.Counter, len(outcomes)),
		latency: make(map[string]*obs.WindowSeries, len(outcomes)),
	}
	totalVec := reg.Counter("serve.request.total", "requests by outcome", "outcome")
	latencyVec := reg.Window("serve.request.latency", "request wall time in microseconds by outcome", 5*time.Minute, "outcome")
	for _, o := range outcomes {
		t.total[o] = totalVec.With(o)
		t.latency[o] = latencyVec.With(o)
	}
	t.queueWait = reg.Window("serve.queue.wait", "admission queue wait in microseconds", 5*time.Minute).With()
	t.queueDepth = reg.Gauge("serve.queue.depth", "requests waiting for a worker").With()
	t.cacheBytes = reg.Gauge("serve.cache.bytes", "cached output bytes").With()
	t.cacheCount = reg.Gauge("serve.cache.entries", "cached rewrite entries").With()
	t.evictions = reg.Counter("serve.cache.evictions", "cache entries evicted for the byte budget").With()
	t.corrupt = reg.Counter("serve.cache.corrupt", "cache hits that failed the digest check").With()
	t.runs = reg.Counter("serve.pipeline.runs", "pipeline executions").With()
	t.deltaStale = reg.Counter("serve.delta.stale", "placement snapshots dropped for failed integrity checks").With()
	t.snapBytes = reg.Gauge("serve.snapshot.bytes", "placement-snapshot store bytes").With()
	t.snapCount = reg.Gauge("serve.snapshot.entries", "stored placement snapshots").With()
	t.tier = make(map[string]*obs.WindowSeries, len(tiers))
	tierVec := reg.Window("serve.tier.latency", "request wall time in microseconds by answering tier", 5*time.Minute, "tier")
	for _, tr := range tiers {
		t.tier[tr] = tierVec.With(tr)
	}
	t.diskHits = reg.Counter("serve.disk.hits", "disk-tier reads served after digest verification").With()
	t.diskPromotes = reg.Counter("serve.disk.promotes", "disk-tier hits promoted into the in-memory cache").With()
	t.diskCorrupt = reg.Counter("serve.disk.corrupt", "disk-tier reads quarantined for a failed digest check").With()
	t.diskBytes = reg.Gauge("serve.disk.bytes", "disk-tier stored bytes").With()
	t.diskEntries = reg.Gauge("serve.disk.entries", "disk-tier index entries").With()
	return t
}

// observe records one finished request.
func (t *telemetry) observe(m RequestMeta) {
	t.total[m.Outcome].Add(1)
	t.latency[m.Outcome].Observe(m.Wall.Microseconds())
	if tier := tierOf(m); tier != "" {
		t.tier[tier].Observe(m.Wall.Microseconds())
	}
	if m.QueueWait > 0 {
		t.queueWait.Observe(m.QueueWait.Microseconds())
	}
}
