package zipr

import (
	"fmt"
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/vm"
)

// genSledDensityProg builds a program with a pinned address at EVERY
// byte of one full VM page: 4096 consecutive one-byte nops, each the
// target of a function-pointer-table slot. Pin gaps of one byte force
// the reassembler's worst case — the whole page must become a single
// 0x68 sled whose dispatch recovers all 4096 entry points — covering
// the push-run/nop-pad/dispatch escalation path end-to-end at maximal
// density. main indirect-calls the entry selected by the input byte
// (scaled by 16), then calls a helper so the code after the sled tail
// is live too.
func genSledDensityProg() string {
	var b strings.Builder
	b.WriteString(".text 0x00100000\n")
	b.WriteString("main:\n")
	b.WriteString("    movi r0, 3\n")
	b.WriteString("    movi r1, 0\n")
	b.WriteString("    movi r2, inbuf\n")
	b.WriteString("    movi r3, 1\n")
	b.WriteString("    syscall\n")
	b.WriteString("    movi r4, inbuf\n")
	b.WriteString("    loadb r4, [r4]\n")
	b.WriteString("    shli r4, 4\n") // selector*16: an entry in [0,4080]
	b.WriteString("    shli r4, 2\n") // *4: word offset into the table
	b.WriteString("    movi r5, tab\n")
	b.WriteString("    add r5, r4\n")
	b.WriteString("    load r5, [r5]\n")
	b.WriteString("    movi r1, 0\n")
	b.WriteString("    callr r5\n")
	b.WriteString("    call helper\n")
	b.WriteString("    movi r0, 1\n")
	b.WriteString("    syscall\n")
	for i := 0; i < vm.PageSize; i++ {
		fmt.Fprintf(&b, "p%d: nop\n", i)
	}
	b.WriteString("    ret\n")
	b.WriteString("helper:\n")
	b.WriteString("    movi r6, 1\n")
	b.WriteString("    movi r7, 2\n")
	b.WriteString("    add r6, r7\n")
	b.WriteString("    ret\n")
	b.WriteString(".data 0x00200000\n")
	b.WriteString("tab:\n")
	for i := 0; i < vm.PageSize; i++ {
		fmt.Fprintf(&b, "    .word p%d\n", i)
	}
	b.WriteString("inbuf: .space 4\n")
	return b.String()
}

// TestMaximalPinDensitySled asserts the fail-closed contract at maximal
// pin density: a page with a pin at every byte must either reassemble —
// with every pinned address covered by sled entries and the transcript
// unchanged — or fail with a typed error. Silent divergence and panics
// are the forbidden outcomes.
func TestMaximalPinDensitySled(t *testing.T) {
	orig, err := asm.Assemble(genSledDensityProg())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	inputs := []string{"\x00", "\x01", "\x7f", "\xff"}
	for _, stack := range chaosStacks {
		for _, lay := range []LayoutKind{LayoutOptimized, LayoutDiversity} {
			name := fmt.Sprintf("%s/%s", stack.name, lay)
			rewritten, report, err := RewriteBinary(orig.Clone(), Config{
				Transforms: stack.transforms(), Layout: lay, Seed: 11,
			})
			if err != nil {
				// Failing is allowed — but only cleanly typed.
				if ErrorClass(err) == "" {
					t.Fatalf("%s: untyped error at maximal pin density: %v", name, err)
				}
				t.Logf("%s: typed failure (%s): %v", name, ErrorClass(err), err)
				continue
			}
			if report.Stats.SledEntries < vm.PageSize {
				t.Fatalf("%s: only %d of %d pins covered by sleds", name, report.Stats.SledEntries, vm.PageSize)
			}
			for _, input := range inputs {
				want := mustRun(t, orig, nil, input)
				got, rerr := execute(t, rewritten, nil, input)
				if rerr != nil {
					t.Fatalf("%s input %q: rewritten faulted: %v", name, input, rerr)
				}
				if want.ExitCode != got.ExitCode || string(want.Output) != string(got.Output) {
					t.Fatalf("%s input %q: transcript diverged (exit %d vs %d)",
						name, input, got.ExitCode, want.ExitCode)
				}
			}
		}
	}
}
