package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Event is one line of the JSON-lines trace format. Type selects which
// fields are meaningful:
//
//	span    — Name, Path, Depth, Count, StartNS, WallNS, Allocs, Bytes, HeapLive
//	counter — Name, Value
//	gauge   — Name, Value
//	hist    — Name, Count, Sum, Hist (bucket label -> count)
type Event struct {
	Type     string           `json:"type"`
	Name     string           `json:"name"`
	Path     string           `json:"path,omitempty"`
	Depth    int              `json:"depth,omitempty"`
	Count    int64            `json:"count,omitempty"`
	StartNS  int64            `json:"start_ns,omitempty"`
	WallNS   int64            `json:"wall_ns,omitempty"`
	Allocs   uint64           `json:"allocs,omitempty"`
	Bytes    uint64           `json:"bytes,omitempty"`
	HeapLive int64            `json:"heap_live,omitempty"`
	Value    int64            `json:"value,omitempty"`
	Sum      int64            `json:"sum,omitempty"`
	Hist     map[string]int64 `json:"hist,omitempty"`
}

// Events flattens the snapshot into the JSONL schema: spans first (tree
// preorder, paths slash-joined), then counters, gauges and histograms
// sorted by name.
func (snap *Snapshot) Events() []Event {
	var evs []Event
	var walk func(prefix string, spans []*Span)
	walk = func(prefix string, spans []*Span) {
		for _, s := range spans {
			path := s.Name
			if prefix != "" {
				path = prefix + "/" + s.Name
			}
			evs = append(evs, Event{
				Type:     "span",
				Name:     s.Name,
				Path:     path,
				Depth:    s.Depth,
				Count:    s.Count,
				StartNS:  s.Start.Nanoseconds(),
				WallNS:   s.Wall.Nanoseconds(),
				Allocs:   s.Allocs,
				Bytes:    s.Bytes,
				HeapLive: s.HeapLive,
			})
			walk(path, s.Children)
		}
	}
	walk("", snap.Spans)
	for _, name := range sortedKeys(snap.Metrics.Counters) {
		evs = append(evs, Event{Type: "counter", Name: name, Value: snap.Metrics.Counters[name]})
	}
	for _, name := range sortedKeys(snap.Metrics.Gauges) {
		evs = append(evs, Event{Type: "gauge", Name: name, Value: snap.Metrics.Gauges[name]})
	}
	histNames := make([]string, 0, len(snap.Metrics.Hists))
	for name := range snap.Metrics.Hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Metrics.Hists[name]
		buckets := make(map[string]int64)
		for i, c := range h.Buckets {
			if c != 0 {
				buckets[BucketLabel(i)] = c
			}
		}
		evs = append(evs, Event{Type: "hist", Name: name, Count: h.Count, Sum: h.Sum, Hist: buckets})
	}
	return evs
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// jsonlSink writes one Event per line.
type jsonlSink struct {
	w io.Writer
}

// NewJSONL returns a sink emitting the trace as JSON-lines to w.
func NewJSONL(w io.Writer) Sink { return jsonlSink{w: w} }

// Emit implements Sink.
func (s jsonlSink) Emit(snap *Snapshot) error {
	enc := json.NewEncoder(s.w)
	for _, ev := range snap.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: jsonl: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines trace back into events (the consumer
// side of NewJSONL, used by tests and offline aggregation).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var evs []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl: %w", err)
	}
	return evs, nil
}
