package core

import (
	"fmt"

	"zipr/internal/ir"
)

// Space is the read-only query view of free space that a Placer chooses
// from. It replaces the old []ir.Range snapshot contract: instead of
// copying the full block list on every placement decision, placers ask
// the allocator targeted questions, each answered in O(log n) (see the
// per-method notes). Blocks are always address-sorted, disjoint and
// non-empty; every returned range is a whole free block unless stated
// otherwise.
type Space interface {
	// NumBlocks returns the number of free blocks. O(1).
	NumBlocks() int
	// TotalFree returns the number of free bytes. O(1).
	TotalFree() int
	// Largest returns the lowest-addressed free block of maximal size.
	// O(log n).
	Largest() (ir.Range, bool)
	// LowestFit returns the lowest-addressed block of at least size
	// bytes. O(log n).
	LowestFit(size int) (ir.Range, bool)
	// HighestFit returns the highest-addressed block of at least size
	// bytes. O(log n).
	HighestFit(size int) (ir.Range, bool)
	// BestFit returns the smallest block of at least size bytes, the
	// lowest-addressed one among equals. O(k + log n) over the k fitting
	// blocks (pruned scan; only used on placement paths without a hint,
	// which do not occur in the pipeline's hot loop).
	BestFit(size int) (ir.Range, bool)
	// NearestFit returns the fitting block whose start address is
	// closest to hint, the lower-addressed one when two are equidistant.
	// O(log n).
	NearestFit(hint uint32, size int) (ir.Range, bool)
	// VisitFits calls fn on every block of at least size bytes in
	// address order until fn returns false. O(k + log n) over the k
	// fitting blocks.
	VisitFits(size int, fn func(ir.Range) bool)
	// Visit calls fn on every block in address order until fn returns
	// false.
	Visit(fn func(ir.Range) bool)
	// Align returns the instruction alignment of the target ISA (1 on
	// variable-width ISAs). Placers that synthesize interior offsets —
	// rather than returning block starts, which are pre-aligned — must
	// round them down to this. O(1).
	Align() uint32
}

// Alloc is the indexed free-space allocator of the reassembly hot path:
// an address-ordered AVL tree over the free blocks, augmented with the
// maximal block length per subtree. The augmentation is what makes the
// fit queries logarithmic — a subtree whose max length is below the
// request can be pruned without visiting it. Mutations (Carve, Release)
// are O(log n) with no global re-sort and no full-list copy, unlike the
// slice-splicing FreeSpace it replaces (which remains in freespace.go
// as the reference implementation for differential tests).
type Alloc struct {
	root  *anode
	count int
	total int
	align uint32 // target ISA instruction alignment (0 or 1: none)
	pool  *anode // freelist of recycled nodes, chained through l
}

var _ Space = (*Alloc)(nil)

// anode is one AVL node holding one free block. The tree is keyed by
// blk.Start (unique: blocks are disjoint).
type anode struct {
	blk    ir.Range
	l, r   *anode
	h      int32  // height of the subtree rooted here
	maxLen uint32 // max blk.Len() in the subtree rooted here
}

func nodeHeight(n *anode) int32 {
	if n == nil {
		return 0
	}
	return n.h
}

func nodeMaxLen(n *anode) uint32 {
	if n == nil {
		return 0
	}
	return n.maxLen
}

// update recomputes the node's height and max-length augmentation from
// its children.
func (n *anode) update() {
	hl, hr := nodeHeight(n.l), nodeHeight(n.r)
	if hl > hr {
		n.h = hl + 1
	} else {
		n.h = hr + 1
	}
	m := n.blk.Len()
	if v := nodeMaxLen(n.l); v > m {
		m = v
	}
	if v := nodeMaxLen(n.r); v > m {
		m = v
	}
	n.maxLen = m
}

func rotateLeft(n *anode) *anode {
	p := n.r
	n.r = p.l
	p.l = n
	n.update()
	p.update()
	return p
}

func rotateRight(n *anode) *anode {
	p := n.l
	n.l = p.r
	p.r = n
	n.update()
	p.update()
	return p
}

// rebalance restores the AVL invariant at n after a child changed.
func rebalance(n *anode) *anode {
	n.update()
	switch bf := nodeHeight(n.l) - nodeHeight(n.r); {
	case bf > 1:
		if nodeHeight(n.l.l) < nodeHeight(n.l.r) {
			n.l = rotateLeft(n.l)
		}
		return rotateRight(n)
	case bf < -1:
		if nodeHeight(n.r.r) < nodeHeight(n.r.l) {
			n.r = rotateRight(n.r)
		}
		return rotateLeft(n)
	}
	return n
}

func (a *Alloc) newNode(blk ir.Range) *anode {
	n := a.pool
	if n != nil {
		a.pool = n.l
		*n = anode{}
	} else {
		n = &anode{}
	}
	n.blk = blk
	n.update()
	a.count++
	a.total += int(blk.Len())
	return n
}

func (a *Alloc) freeNode(n *anode) {
	a.count--
	a.total -= int(n.blk.Len())
	n.l, n.r = a.pool, nil
	a.pool = n
}

// insert adds a block with a key not present in the tree.
func (a *Alloc) insert(n *anode, blk ir.Range) *anode {
	if n == nil {
		return a.newNode(blk)
	}
	if blk.Start < n.blk.Start {
		n.l = a.insert(n.l, blk)
	} else {
		n.r = a.insert(n.r, blk)
	}
	return rebalance(n)
}

// remove deletes the node keyed start, which must exist.
func (a *Alloc) remove(n *anode, start uint32) *anode {
	switch {
	case start < n.blk.Start:
		n.l = a.remove(n.l, start)
	case start > n.blk.Start:
		n.r = a.remove(n.r, start)
	default:
		if n.l == nil || n.r == nil {
			c := n.l
			if c == nil {
				c = n.r
			}
			a.freeNode(n)
			return c
		}
		// Two children: swap blocks with the in-order successor, then
		// delete that successor (now holding the doomed block) from the
		// right subtree, where the search reaches it going left at
		// every step.
		min := n.r
		for min.l != nil {
			min = min.l
		}
		old := n.blk
		n.blk = min.blk
		min.blk = old
		n.r = a.remove(n.r, old.Start)
	}
	return rebalance(n)
}

// reshape updates the block keyed oldStart in place to nb without
// rebalancing. Callers guarantee nb keeps the tree ordered (its span
// stays strictly between the neighboring blocks), so only the path's
// max-length augmentation needs recomputing. O(log n), no rotations.
func (a *Alloc) reshape(n *anode, oldStart uint32, nb ir.Range) {
	switch {
	case oldStart < n.blk.Start:
		a.reshape(n.l, oldStart, nb)
	case oldStart > n.blk.Start:
		a.reshape(n.r, oldStart, nb)
	default:
		a.total += int(nb.Len()) - int(n.blk.Len())
		n.blk = nb
	}
	n.update()
}

// NewAlloc creates an allocator covering whole minus the holes
// (identical construction semantics to NewFreeSpace).
func NewAlloc(whole ir.Range, holes []ir.Range) *Alloc {
	var blocks []ir.Range
	cur := whole.Start
	for _, h := range ir.MergeRanges(holes) {
		if h.Start > cur {
			end := h.Start
			if end > whole.End {
				end = whole.End
			}
			if end > cur {
				blocks = append(blocks, ir.Range{Start: cur, End: end})
			}
		}
		if h.End > cur {
			cur = h.End
		}
	}
	if cur < whole.End {
		blocks = append(blocks, ir.Range{Start: cur, End: whole.End})
	}
	return AllocFromBlocks(blocks)
}

// AllocFromBlocks builds an allocator over an explicit block list, which
// must be address-sorted, disjoint and non-empty (the Space invariant).
// Used by tests and fuzzing; NewAlloc is the pipeline constructor.
func AllocFromBlocks(blocks []ir.Range) *Alloc {
	a := &Alloc{}
	a.root = a.build(blocks)
	return a
}

// build constructs a perfectly balanced subtree from sorted blocks.
func (a *Alloc) build(blocks []ir.Range) *anode {
	if len(blocks) == 0 {
		return nil
	}
	mid := len(blocks) / 2
	n := a.newNode(blocks[mid])
	n.l = a.build(blocks[:mid])
	n.r = a.build(blocks[mid+1:])
	n.update()
	return n
}

// SetAlign declares the target ISA's instruction alignment so placers
// querying this space can keep synthesized offsets fetchable.
func (a *Alloc) SetAlign(align uint32) { a.align = align }

// Align implements Space.
func (a *Alloc) Align() uint32 {
	if a.align == 0 {
		return 1
	}
	return a.align
}

// NumBlocks implements Space.
func (a *Alloc) NumBlocks() int { return a.count }

// TotalFree implements Space.
func (a *Alloc) TotalFree() int { return a.total }

// Visit implements Space.
func (a *Alloc) Visit(fn func(ir.Range) bool) { visitAll(a.root, fn) }

func visitAll(n *anode, fn func(ir.Range) bool) bool {
	if n == nil {
		return true
	}
	return visitAll(n.l, fn) && fn(n.blk) && visitAll(n.r, fn)
}

// VisitFits implements Space: in-order over fitting blocks only,
// pruning subtrees whose max length is below size.
func (a *Alloc) VisitFits(size int, fn func(ir.Range) bool) {
	visitFits(a.root, fitLen(size), fn)
}

func visitFits(n *anode, size uint32, fn func(ir.Range) bool) bool {
	if n == nil || n.maxLen < size {
		return true
	}
	if !visitFits(n.l, size, fn) {
		return false
	}
	if n.blk.Len() >= size && !fn(n.blk) {
		return false
	}
	return visitFits(n.r, size, fn)
}

// AppendBlocks appends every free block to dst in address order and
// returns it — the snapshot escape hatch for tests and the legacy
// placers; the pipeline never calls it.
func (a *Alloc) AppendBlocks(dst []ir.Range) []ir.Range {
	a.Visit(func(b ir.Range) bool {
		dst = append(dst, b)
		return true
	})
	return dst
}

// Blocks returns a fresh copy of the current free blocks.
func (a *Alloc) Blocks() []ir.Range {
	if a.count == 0 {
		return nil
	}
	return a.AppendBlocks(make([]ir.Range, 0, a.count))
}

// fitLen clamps a byte-count request to the uint32 length domain.
func fitLen(size int) uint32 {
	if size <= 0 {
		return 0
	}
	if size > int(^uint32(0)>>1) {
		return ^uint32(0)
	}
	return uint32(size)
}

// floor returns the node with the greatest start <= addr, or nil.
func (a *Alloc) floor(addr uint32) *anode {
	var best *anode
	for n := a.root; n != nil; {
		if n.blk.Start <= addr {
			best = n
			n = n.r
		} else {
			n = n.l
		}
	}
	return best
}

// Largest implements Space: the leftmost block of maximal length.
func (a *Alloc) Largest() (ir.Range, bool) {
	n := a.root
	if n == nil {
		return ir.Range{}, false
	}
	m := n.maxLen
	for {
		if n.l != nil && n.l.maxLen == m {
			n = n.l
			continue
		}
		if n.blk.Len() == m {
			return n.blk, true
		}
		n = n.r
	}
}

// LowestFit implements Space.
func (a *Alloc) LowestFit(size int) (ir.Range, bool) {
	sz := fitLen(size)
	n := a.root
	if n == nil || n.maxLen < sz {
		return ir.Range{}, false
	}
	for {
		if n.l != nil && n.l.maxLen >= sz {
			n = n.l
			continue
		}
		if n.blk.Len() >= sz {
			return n.blk, true
		}
		n = n.r
	}
}

// HighestFit implements Space.
func (a *Alloc) HighestFit(size int) (ir.Range, bool) {
	sz := fitLen(size)
	n := a.root
	if n == nil || n.maxLen < sz {
		return ir.Range{}, false
	}
	for {
		if n.r != nil && n.r.maxLen >= sz {
			n = n.r
			continue
		}
		if n.blk.Len() >= sz {
			return n.blk, true
		}
		n = n.l
	}
}

// BestFit implements Space: pruned in-order scan tracking the smallest
// fitting block (ties resolve to the first, i.e. lowest-addressed, one),
// with an early exit on a perfect fit.
func (a *Alloc) BestFit(size int) (ir.Range, bool) {
	sz := fitLen(size)
	var best ir.Range
	found := false
	visitFits(a.root, sz, func(b ir.Range) bool {
		if !found || b.Len() < best.Len() {
			best, found = b, true
		}
		return best.Len() != sz // perfect fit: stop scanning
	})
	return best, found
}

// lowestFitInRange returns the leftmost node with start in [lo, hi] and
// length >= size, pruning by the max-length augmentation.
func lowestFitInRange(n *anode, lo, hi, size uint32) *anode {
	if n == nil || n.maxLen < size {
		return nil
	}
	if n.blk.Start < lo {
		return lowestFitInRange(n.r, lo, hi, size)
	}
	if n.blk.Start > hi {
		return lowestFitInRange(n.l, lo, hi, size)
	}
	if f := lowestFitInRange(n.l, lo, hi, size); f != nil {
		return f
	}
	if n.blk.Len() >= size {
		return n
	}
	return lowestFitInRange(n.r, lo, hi, size)
}

// highestFitInRange is the mirror of lowestFitInRange.
func highestFitInRange(n *anode, lo, hi, size uint32) *anode {
	if n == nil || n.maxLen < size {
		return nil
	}
	if n.blk.Start < lo {
		return highestFitInRange(n.r, lo, hi, size)
	}
	if n.blk.Start > hi {
		return highestFitInRange(n.l, lo, hi, size)
	}
	if f := highestFitInRange(n.r, lo, hi, size); f != nil {
		return f
	}
	if n.blk.Len() >= size {
		return n
	}
	return highestFitInRange(n.l, lo, hi, size)
}

// NearestFit implements Space: of the rightmost fitting block at or
// below hint and the leftmost fitting block above it, the one whose
// start is closer (the lower one on a tie, matching the historical
// linear scan's first-wins behavior).
func (a *Alloc) NearestFit(hint uint32, size int) (ir.Range, bool) {
	sz := fitLen(size)
	left := highestFitInRange(a.root, 0, hint, sz)
	var right *anode
	if hint < ^uint32(0) {
		right = lowestFitInRange(a.root, hint+1, ^uint32(0), sz)
	}
	switch {
	case left == nil && right == nil:
		return ir.Range{}, false
	case left == nil:
		return right.blk, true
	case right == nil:
		return left.blk, true
	}
	if hint-left.blk.Start <= right.blk.Start-hint {
		return left.blk, true
	}
	return right.blk, true
}

// BlockStartingAt returns the free block that begins exactly at addr.
func (a *Alloc) BlockStartingAt(addr uint32) (ir.Range, bool) {
	for n := a.root; n != nil; {
		switch {
		case addr < n.blk.Start:
			n = n.l
		case addr > n.blk.Start:
			n = n.r
		default:
			return n.blk, true
		}
	}
	return ir.Range{}, false
}

// Contains reports whether r is entirely free.
func (a *Alloc) Contains(r ir.Range) bool {
	b := a.floor(r.Start)
	return b != nil && r.Start >= b.blk.Start && r.End <= b.blk.End
}

// FindWithin returns the lowest free range of exactly size bytes that
// lies wholly inside window, if any (same contract as the reference
// FreeSpace: blocks are clipped to the window before the fit test).
func (a *Alloc) FindWithin(window ir.Range, size uint32) (ir.Range, bool) {
	if size == 0 || window.End <= window.Start {
		return ir.Range{}, false
	}
	// A block straddling the window start is clipped on both sides.
	if b := a.floor(window.Start); b != nil && b.blk.End > window.Start && b.blk.Start < window.Start {
		lo := window.Start
		hi := b.blk.End
		if hi > window.End {
			hi = window.End
		}
		if hi > lo && hi-lo >= size {
			return ir.Range{Start: lo, End: lo + size}, true
		}
	}
	// Blocks starting inside the window fit iff their own length and the
	// room left before window.End both cover size.
	if window.End < size {
		return ir.Range{}, false
	}
	if n := lowestFitInRange(a.root, window.Start, window.End-size, size); n != nil {
		return ir.Range{Start: n.blk.Start, End: n.blk.Start + size}, true
	}
	return ir.Range{}, false
}

// Carve removes r, which must lie entirely inside one free block.
// O(log n): the containing block is trimmed in place; only a carve from
// the middle inserts a node for the right remainder.
func (a *Alloc) Carve(r ir.Range) error {
	if r.Start >= r.End {
		return fmt.Errorf("core: carve of empty range %+v", r)
	}
	n := a.floor(r.Start)
	if n == nil || r.End > n.blk.End {
		return fmt.Errorf("core: carve %+v not in free space", r)
	}
	b := n.blk
	switch {
	case r == b:
		a.root = a.remove(a.root, b.Start)
	case r.Start == b.Start:
		a.reshape(a.root, b.Start, ir.Range{Start: r.End, End: b.End})
	case r.End == b.End:
		a.reshape(a.root, b.Start, ir.Range{Start: b.Start, End: r.Start})
	default:
		a.reshape(a.root, b.Start, ir.Range{Start: b.Start, End: r.Start})
		a.root = a.insert(a.root, ir.Range{Start: r.End, End: b.End})
	}
	return nil
}

// CarveAt is Carve for an (address, size) request.
func (a *Alloc) CarveAt(addr uint32, size int) error {
	return a.Carve(ir.Range{Start: addr, End: addr + fitLen(size)})
}

// Release returns r to the free pool, merging with at most the two
// adjacent blocks found by tree search — no re-sort. Releasing bytes
// that are already free violates the allocator's invariant (a double
// free) and panics.
func (a *Alloc) Release(r ir.Range) {
	if r.Start >= r.End {
		return
	}
	var pred, succ *anode
	if p := a.floor(r.Start); p != nil {
		if p.blk.End > r.Start {
			panic(fmt.Sprintf("core: release %+v overlaps free block %+v", r, p.blk))
		}
		pred = p
	}
	// Leftmost node with start >= r.Start (the floor check above rules
	// out an exact-start collision); a start below r.End would overlap.
	for n := a.root; n != nil; {
		if n.blk.Start >= r.Start {
			if n.blk.Start < r.End {
				panic(fmt.Sprintf("core: release %+v overlaps free block %+v", r, n.blk))
			}
			succ = n
			n = n.l
		} else {
			n = n.r
		}
	}
	mergeL := pred != nil && pred.blk.End == r.Start
	mergeR := succ != nil && succ.blk.Start == r.End
	switch {
	case mergeL && mergeR:
		end := succ.blk.End
		start := pred.blk.Start
		a.root = a.remove(a.root, succ.blk.Start)
		a.reshape(a.root, start, ir.Range{Start: start, End: end})
	case mergeL:
		a.reshape(a.root, pred.blk.Start, ir.Range{Start: pred.blk.Start, End: r.End})
	case mergeR:
		a.reshape(a.root, succ.blk.Start, ir.Range{Start: r.Start, End: succ.blk.End})
	default:
		a.root = a.insert(a.root, r)
	}
}

// checkInvariants verifies the tree structure (ordering, disjointness,
// AVL balance, augmentation and byte accounting); tests and the fuzz
// target call it after every mutation.
func (a *Alloc) checkInvariants() error {
	var prev *ir.Range
	count, total := 0, 0
	var walk func(n *anode) error
	walk = func(n *anode) error {
		if n == nil {
			return nil
		}
		if err := walk(n.l); err != nil {
			return err
		}
		if n.blk.Start >= n.blk.End {
			return fmt.Errorf("empty block %+v", n.blk)
		}
		if prev != nil && prev.End >= n.blk.Start {
			return fmt.Errorf("blocks %+v and %+v not disjoint/merged", *prev, n.blk)
		}
		b := n.blk
		prev = &b
		count++
		total += int(n.blk.Len())
		if bf := nodeHeight(n.l) - nodeHeight(n.r); bf < -1 || bf > 1 {
			return fmt.Errorf("unbalanced at %+v (bf %d)", n.blk, bf)
		}
		wantH := nodeHeight(n.l)
		if hr := nodeHeight(n.r); hr > wantH {
			wantH = hr
		}
		if n.h != wantH+1 {
			return fmt.Errorf("bad height at %+v", n.blk)
		}
		wantM := n.blk.Len()
		if v := nodeMaxLen(n.l); v > wantM {
			wantM = v
		}
		if v := nodeMaxLen(n.r); v > wantM {
			wantM = v
		}
		if n.maxLen != wantM {
			return fmt.Errorf("bad maxLen at %+v: %d want %d", n.blk, n.maxLen, wantM)
		}
		return walk(n.r)
	}
	if err := walk(a.root); err != nil {
		return err
	}
	if count != a.count {
		return fmt.Errorf("count %d, tree has %d", a.count, count)
	}
	if total != a.total {
		return fmt.Errorf("total %d, tree sums %d", a.total, total)
	}
	return nil
}
