# Build/test entry points; `make ci` is the full local gate.
GO ?= go

.PHONY: build vet test race cover bench benchgate benchsmoke fuzzsmoke isasweep fleet-smoke examples metricslint ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gate: run every package's tests with cross-package statement
# coverage (a pipeline test in the root package exercises internal/isa,
# internal/vm, ... — -coverpkg credits those lines), print the
# per-function rollup's total, and fail if it drops below COVER_FLOOR
# percent. The profile lands in cover.out for `go tool cover -html`.
COVER_FLOOR = 77
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR) 'BEGIN { \
		if (t + 0 < floor + 0) { printf "FAIL: total coverage %.1f%% is below the %d%% floor\n", t, floor; exit 1 } \
		printf "total coverage %.1f%% (floor %d%%)\n", t, floor }'

# Bench smoke: one iteration of the end-to-end rewrite benches plus the
# serial-vs-parallel pipeline pairs, with allocation reporting — enough
# to catch regressions in the nil-trace zero-overhead contract (compare
# NoTrace vs Traced allocs/op) and in the parallel pipeline's allocation
# diet (compare DisassembleSerial vs DisassembleParallel, EvalJ1 vs
# EvalJN). The run is converted to BENCH_pipeline.json (ns/op, allocs/op
# and the speedup-x metrics, machine-readable) via cmd/benchjson.
BENCH_PAT = RewriteStress|RewriteNull|RewriteNoTrace|RewriteTraced|DisassembleSerial|DisassembleParallel|EvalJ1|EvalJN|PlaceLargeSynth|ServeHotCache|ServeColdMiss|ServeInstrumented|RewriteDelta|ServeDeltaHit|DaemonHotCache|GatewayHotCache|DiskTierHit|DiskTierPromote|CorpusPins
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchtime 1x -benchmem . | tee /dev/stderr | $(GO) run ./cmd/benchjson -merge BENCH_pipeline.json -o BENCH_pipeline.json

# Perf gates, read from the trajectory `bench` just merged (run after
# it):
#  - delta perf bar (ISSUE 7): applying a placement snapshot to a
#    1-function edit of the >100k-instruction stress input must stay
#    at least 5x faster than the from-scratch rewrite;
#  - disk-tier bar (ISSUE 8): a disk-tier hit (read + digest check)
#    must stay at least 10x faster than a cold pipeline run;
#  - gateway overhead bar (ISSUE 8): the gateway hop may cost at most
#    3x the single-daemon hot-cache round trip (speedup daemon/gateway
#    >= 1/3);
#  - arbitration pin bar (ISSUE 9): the corpus-aggregate pin count
#    under weighted three-way arbitration must be strictly below the
#    two-way baseline (ratio > 1, gated at 1.0001).
benchgate:
	$(GO) run ./cmd/benchjson -compare BenchmarkRewriteDeltaCold,BenchmarkRewriteDelta -min 5 BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -compare BenchmarkServeColdMiss,BenchmarkDiskTierHit -min 10 BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -compare BenchmarkDaemonHotCache,BenchmarkGatewayHotCache -min 0.333 BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -compare BenchmarkCorpusPinsTwoWay,BenchmarkCorpusPinsWeighted -metric pins -min 1.0001 BENCH_pipeline.json
	$(GO) run ./cmd/benchjson -compare BenchmarkRewriteStressZVM32,BenchmarkRewriteStressZVM64 -min 0.666 BENCH_pipeline.json

# Allocator bench smoke: one iteration of the indexed-allocator
# microbenches against their sorted-slice reference, enough to catch a
# complexity regression (Alloc* must not drift toward FreeSpace*)
# without the full bench run's cost.
benchsmoke:
	$(GO) test -run '^$$' -bench 'AllocCarveRelease|FreeSpaceCarveRelease|AllocNearestFit|FreeSpaceNearestFit' -benchtime 1x -benchmem ./internal/core/
	$(GO) test -run '^$$' -bench 'RewriteDelta|ServeDeltaHit' -benchtime 1x -benchmem .

# Fuzz smoke: replay the committed seed corpora, then fuzz each target
# for a bounded interval — long enough to catch shallow regressions in
# the allocator's differential contract and the whole-pipeline
# transcript-equivalence property, short enough for CI. Crashers are
# written under testdata/fuzz/ for triage.
FUZZTIME ?= 30s
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz '^FuzzAlloc$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzPipelineEquivalence$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaEquivalence$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzInferEquivalence$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzZVMEquivalence$$' -fuzztime $(FUZZTIME) .

# Per-ISA sweep: the golden matrices, the veneer program's fail-closed
# contract, and the chaos schedule sweeps for every supported
# instruction set, under the race detector (where the golden suites
# stride-subsample the corpus to stay inside CI budgets; plain
# `make test` still covers every cell).
isasweep:
	$(GO) test -race -run 'TestGoldenCorpus|TestGoldenFileComplete|TestGoldenZVM64|TestVeneerFragmentationFailsClosed|TestChaosScheduleSweep' .

# Fleet smoke: build ziprd, boot two disk-backed workers plus a
# consistent-hash gateway on real TCP, then drill the fleet contract —
# byte-identical answers across a mid-run worker kill (with the outage
# visible in gateway metrics) and a disk-tier hit from a restarted
# empty-RAM worker. See cmd/fleetsmoke.
fleet-smoke:
	$(GO) run ./cmd/fleetsmoke

# Examples are part of the API contract: each must build and run to
# completion (exit 0) against the current library surface.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do echo "run $$d"; $(GO) run ./$$d >/dev/null; done

# Metrics gate: the naming lint (lowercase dotted family names, bounded
# label cardinality, unique exposition names) plus the Prometheus
# exposition self-check (HELP/TYPE pairing, label escaping, monotone
# cumulative buckets, _sum/_count consistency).
metricslint:
	$(GO) test -run 'TestMetricsNamingLint|TestPromExposition|TestPromName' ./internal/serve/ ./internal/obs/

ci: build vet race cover bench benchgate benchsmoke fuzzsmoke isasweep fleet-smoke examples metricslint
