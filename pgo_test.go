package zipr

import (
	"bytes"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

// pgoWorkload is the error-path-heavy program shape of the PGO example.
func pgoWorkload(t *testing.T) (*binfmt.Binary, synth.Profile) {
	t.Helper()
	profile := synth.Profile{
		Name:          "pgotest",
		NumFuncs:      16,
		OpsMin:        6,
		OpsMax:        18,
		LoopIters:     12,
		ColdFuncs:     80,
		DirectCallAll: true,
		HeapPages:     1,
		InputLen:      24,
	}
	bin, err := synth.Build(33, profile)
	if err != nil {
		t.Fatal(err)
	}
	return bin, profile
}

// collectProfile instruments, runs the training input, and returns the
// hot function entries.
func collectProfile(t *testing.T, orig *binfmt.Binary, training []byte) []uint32 {
	t.Helper()
	prof := NewProfiler()
	instrumented, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{prof}})
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(vm.WithStdin(bytes.NewReader(training)), vm.WithMaxSteps(50_000_000))
	if err := loader.Load(m, instrumented, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(prof.Counters) == 0 {
		t.Fatal("profiler produced no counters")
	}
	var hot []uint32
	for entry, ctr := range prof.Counters {
		raw, err := m.ReadMem(ctr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if raw[0]|raw[1]|raw[2]|raw[3] != 0 {
			hot = append(hot, entry)
		}
	}
	if len(hot) == 0 || len(hot) == len(prof.Counters) {
		t.Fatalf("profile did not separate hot from cold: %d/%d hot", len(hot), len(prof.Counters))
	}
	return hot
}

func TestProfileGuidedLayout(t *testing.T) {
	orig, profile := pgoWorkload(t)
	training := bytes.Repeat([]byte{0x21}, profile.InputLen)
	errorInput := append(bytes.Repeat([]byte{0x21}, profile.InputLen-1), 0xFF)

	hot := collectProfile(t, orig, training)
	pgo, report, err := RewriteBinary(orig.Clone(), Config{
		Layout:   LayoutProfileGuided,
		HotFuncs: hot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Layout != "profile-guided" {
		t.Fatalf("layout = %q", report.Layout)
	}

	// Behavior identical on both the hot path and the error path.
	for _, input := range [][]byte{training, errorInput} {
		want := mustRun(t, orig, nil, string(input))
		got := mustRun(t, pgo, nil, string(input))
		if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
			t.Fatalf("diverged on %x: exit %d vs %d", input[:4], want.ExitCode, got.ExitCode)
		}
	}
	// The hot-path working set must shrink against the original.
	base := mustRun(t, orig, nil, string(training))
	fast := mustRun(t, pgo, nil, string(training))
	if fast.PagesTouched >= base.PagesTouched {
		t.Fatalf("PGO did not reduce hot-path MaxRSS: %d vs %d pages",
			fast.PagesTouched, base.PagesTouched)
	}
}

func TestProfilerCountsAreExact(t *testing.T) {
	// A direct-call-all program executes every non-table function once
	// per input byte: counters must equal the input length (for the
	// functions main calls directly).
	profile := synth.Profile{
		Name:          "cnt",
		NumFuncs:      6,
		OpsMin:        3,
		OpsMax:        6,
		DirectCallAll: true,
		InputLen:      8,
	}
	orig, err := synth.Build(5, profile)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfiler()
	instrumented, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{prof}})
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte{9}, profile.InputLen)
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(50_000_000))
	if err := loader.Load(m, instrumented, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The entry function runs exactly once.
	entryCtr, ok := prof.Counters[orig.Entry]
	if !ok {
		t.Fatal("entry function not instrumented")
	}
	raw, err := m.ReadMem(entryCtr, 4)
	if err != nil {
		t.Fatal(err)
	}
	count := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
	if count != 1 {
		t.Fatalf("entry counter = %d, want 1", count)
	}
	// Instrumentation must not change behavior.
	want := mustRun(t, orig, nil, string(input))
	got := mustRun(t, instrumented, nil, string(input))
	if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
		t.Fatal("profiler changed program behavior")
	}
}
