// Package cfg constructs the logical IR — control-flow links and pinned
// addresses — from aggregated disassembly. This phase implements the
// paper's IR-construction rules:
//
//   - Direct branches become logical links to target instruction nodes
//     (the mandatory address-decoupling the paper performs so that
//     instructions can be placed anywhere).
//   - PC-relative address formation (lea) of a code location becomes a
//     logical link that reassembly materializes as an absolute address.
//   - PC-relative loads keep absolute targets; loads that point into
//     relocatable code force those bytes to additionally stay fixed
//     (paper case 2: bytes treated as both code and data).
//   - Pinned-address selection is conservative: P must contain every
//     address the program can reach indirectly at run time. Pins come
//     from the entry point, exports, code pointers found by scanning
//     data (jump tables, function-pointer tables), code-pointer-shaped
//     absolute immediates, and branch targets of ambiguous regions.
//
// The expensive scans (data-segment words, in-text pointers, immediate
// operands) fan out across GOMAXPROCS workers for large binaries: the
// workers only *collect* candidate addresses, in shard order, and the
// pins themselves are applied serially in exactly the order the old
// single-threaded loop used, so pin sets, warning order and pin-
// provenance counters are identical at any worker count.
package cfg

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"zipr/internal/binfmt"
	"zipr/internal/disasm"
	"zipr/internal/fault"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/obs"
	"zipr/internal/par"
	"zipr/internal/zerr"
)

// Build lifts the aggregated disassembly of bin into a logical IR
// program with pinned addresses.
func Build(bin *binfmt.Binary, agg disasm.Aggregated) (*ir.Program, error) {
	return BuildOpts(bin, agg, Options{})
}

// Options configures IR construction.
type Options struct {
	// Trace receives per-stage spans and pin-provenance counters; nil
	// disables instrumentation.
	Trace *obs.Trace
	// Inject enables deterministic fault injection (bogus pin floods,
	// losing the entry point's decode); nil disables it.
	Inject *fault.Injector
}

// scanMinWords is the minimum number of scanned words per worker before
// the pointer scans bother spawning goroutines.
const scanMinWords = 16 << 10

// collectTextPtrs scans data for stride-spaced little-endian words that
// point into text and returns them in scan order. Large inputs shard
// across workers; per-chunk collection concatenated in chunk order
// reproduces the serial order exactly.
func collectTextPtrs(data []byte, stride int, text *binfmt.Segment) []uint32 {
	if len(data) < 4 {
		return nil
	}
	nWords := (len(data)-4)/stride + 1
	workers := par.ScaledWorkers(nWords, scanMinWords)
	if workers == 1 {
		var out []uint32
		for off := 0; off+4 <= len(data); off += stride {
			if v := binary.LittleEndian.Uint32(data[off:]); text.Contains(v) {
				out = append(out, v)
			}
		}
		return out
	}
	buckets := make([][]uint32, workers)
	chunks := par.Chunks(workers, nWords, func(c, lo, hi int) {
		var b []uint32
		for w := lo; w < hi; w++ {
			off := w * stride
			if v := binary.LittleEndian.Uint32(data[off:]); text.Contains(v) {
				b = append(b, v)
			}
		}
		buckets[c] = b
	})
	var out []uint32
	for c := 0; c < chunks; c++ {
		out = append(out, buckets[c]...)
	}
	return out
}

// immCand is one candidate pin collected from instruction operands.
type immCand struct {
	addr uint32
	lea  bool // "lea target" provenance instead of "immediate"
}

// immMinInsts is the minimum instruction count per worker for the
// operand scan to shard.
const immMinInsts = 32 << 10

// collectImmCands walks the instruction list for address-shaped
// absolute immediates and lea instructions that kept absolute targets,
// sharding across workers for large programs; order matches the serial
// walk.
func collectImmCands(insts []*ir.Instruction) []immCand {
	workers := par.ScaledWorkers(len(insts), immMinInsts)
	scan := func(lo, hi int) []immCand {
		var b []immCand
		for _, node := range insts[lo:hi] {
			switch node.Inst.Op {
			case isa.OpMovI, isa.OpPushI32:
				b = append(b, immCand{addr: uint32(node.Inst.Imm)})
			case isa.OpLea:
				if node.AbsTarget != 0 {
					b = append(b, immCand{addr: node.AbsTarget, lea: true})
				}
			}
		}
		return b
	}
	if workers == 1 {
		return scan(0, len(insts))
	}
	buckets := make([][]immCand, workers)
	chunks := par.Chunks(workers, len(insts), func(c, lo, hi int) {
		buckets[c] = scan(lo, hi)
	})
	var out []immCand
	for c := 0; c < chunks; c++ {
		out = append(out, buckets[c]...)
	}
	return out
}

// BuildTraced is Build with spans for IR lifting, pin analysis and
// function partitioning plus pin-provenance counters emitted to tr; a
// nil trace disables instrumentation.
func BuildTraced(bin *binfmt.Binary, agg disasm.Aggregated, tr *obs.Trace) (*ir.Program, error) {
	return BuildOpts(bin, agg, Options{Trace: tr})
}

// BuildOpts is Build with full options.
func BuildOpts(bin *binfmt.Binary, agg disasm.Aggregated, opts Options) (*ir.Program, error) {
	tr := opts.Trace
	inj := opts.Inject
	sp := tr.Start("lift")
	p := ir.NewProgram(bin)
	p.Arch = agg.Arch
	arch := p.ISA()
	p.Fixed = append(p.Fixed, agg.Fixed...)
	p.Warnings = append(p.Warnings, agg.Warnings...)
	text := bin.Text()

	// Create nodes in address order for deterministic IDs; the dense
	// instruction map iterates ascending, so no collect-and-sort pass.
	n := agg.Insts.Len()
	p.Insts = make([]*ir.Instruction, 0, n)
	p.ByAddr = make(map[uint32]*ir.Instruction, n)
	addrs := make([]uint32, 0, n)
	agg.Insts.All(func(a uint32, in isa.Inst) bool {
		p.AddOrig(a, in)
		addrs = append(addrs, a)
		return true
	})

	inFixed := func(a uint32) bool {
		for _, r := range p.Fixed {
			if r.Contains(a) {
				return true
			}
		}
		return false
	}
	var extraFixed []ir.Range

	// Link fallthroughs and targets.
	for _, a := range addrs {
		node := p.ByAddr[a]
		in := node.Inst
		next := a + uint32(arch.InstLen(in))
		if in.HasFallthrough() {
			if ft, ok := p.ByAddr[next]; ok {
				node.Fallthrough = ft
			} else if text.Contains(next) && inFixed(next) {
				// Execution falls into a fixed region, which keeps its
				// original address: continue there with a synthetic jump.
				p.Warnf("cfg: %#x falls through into fixed bytes at %#x", a, next)
				j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
				j.AbsTarget = next
				node.Fallthrough = j
			} else {
				p.Warnf("cfg: %#x falls through to undecoded address %#x", a, next)
				node.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpHlt})
			}
		}
		t, hasTarget := arch.TargetAddr(in, a)
		if !hasTarget {
			continue
		}
		switch in.Op {
		case isa.OpLoadPC:
			node.AbsTarget = t
			if tn, isCode := p.ByAddr[t]; isCode && !inFixed(t) {
				// Data read from relocatable code bytes: keep the original
				// bytes in place too (case 2 "both" handling).
				p.Warnf("cfg: loadpc at %#x reads relocatable code at %#x; fixing those bytes", a, t)
				extraFixed = append(extraFixed, ir.Range{Start: t, End: t + 4})
				_ = tn
			}
		case isa.OpLea:
			if tn, ok := p.ByAddr[t]; ok {
				node.Target = tn // materialized to the rewritten address
			} else {
				node.AbsTarget = t // data or fixed bytes: address unchanged
			}
		default: // direct branches: jmp, jcc, call
			if tn, ok := p.ByAddr[t]; ok {
				node.Target = tn
			} else if text.Contains(t) && !inFixed(t) {
				p.Warnf("cfg: branch at %#x targets undecoded text %#x; keeping absolute", a, t)
				node.AbsTarget = t
			} else {
				node.AbsTarget = t
			}
		}
	}
	p.Fixed = ir.MergeRanges(append(p.Fixed, extraFixed...))
	sp.End()

	sp = tr.Start("pin-analysis")
	// recordTarget notes an address the program may reach indirectly:
	// relocatable instructions get pinned (a reference is planted at
	// their original address); addresses inside fixed ranges are
	// recorded as legal entries (the bytes there never move).
	var pinsBy map[string]int64
	if tr.Enabled() {
		pinsBy = make(map[string]int64)
	}
	pinNode := func(a uint32, why string) {
		if n, ok := p.ByAddr[a]; ok {
			if !n.Pinned {
				n.Pinned = true
				if pinsBy != nil {
					pinsBy[why]++
				}
			}
			return
		}
		if text.Contains(a) && inFixed(a) {
			p.FixedEntries = append(p.FixedEntries, a)
		}
	}

	// Entry and exports.
	if bin.Type == binfmt.Exec {
		e, ok := p.ByAddr[bin.Entry]
		injected := ok && inj.Fires(fault.EntryLost, bin.Entry)
		if injected {
			// Injected analysis failure: pretend the entry never decoded.
			// This is the canonical unrecoverable input — there is no
			// conservative fallback for a program whose entry point the
			// analysis cannot see — so the phase must fail closed.
			ok = false
		}
		switch {
		case ok:
			p.Entry = e
			pinNode(bin.Entry, "entry")
		case injected:
			return nil, fmt.Errorf("cfg: entry %#x is not a decoded instruction (%w)", bin.Entry, zerr.ErrInjected)
		default:
			return nil, fmt.Errorf("cfg: entry %#x is not a decoded instruction", bin.Entry)
		}
	}
	for _, e := range bin.Exports {
		pinNode(e.Addr, "export")
	}

	// Data scan: aligned words in data segments. Workers collect the
	// words that point into text (everything else is a no-op pin);
	// applying them in scan order keeps pin provenance deterministic.
	for si := range bin.Segments {
		seg := &bin.Segments[si]
		if seg.Kind != binfmt.Data {
			continue
		}
		for _, v := range collectTextPtrs(seg.Data, 4, text) {
			pinNode(v, "data pointer")
		}
	}
	// Fixed text ranges (jump tables and pointers embedded in text):
	// scan every byte offset, conservatively.
	for _, r := range p.Fixed {
		sub := text.Data[r.Start-text.VAddr : r.End-text.VAddr]
		for _, v := range collectTextPtrs(sub, 1, text) {
			pinNode(v, "in-text pointer")
		}
	}
	// Absolute immediates that look like code addresses: the paper keeps
	// such values unchanged and pins the address they name, so the value
	// works both as a number and as an indirect target. Lea instructions
	// that kept an absolute target (possible data, left in place) are
	// likewise potential indirect-branch targets.
	for _, c := range collectImmCands(p.Insts) {
		if c.lea {
			pinNode(c.addr, "lea target")
		} else {
			pinNode(c.addr, "immediate")
		}
	}
	// Direct branch targets of instructions decoded in ambiguous ranges,
	// plus the return sites of calls there: if those bytes really are
	// code, they execute in place and their control flow must keep
	// working (including through CFI checks). The dense map iterates in
	// address order, so this pass is deterministic too.
	agg.AmbigInsts.All(func(a uint32, in isa.Inst) bool {
		if t, ok := arch.TargetAddr(in, a); ok && in.Op != isa.OpLoadPC {
			pinNode(t, "ambiguous-region branch")
		}
		if in.IsCall() {
			pinNode(a+uint32(arch.InstLen(in)), "ambiguous-region return site")
		}
		switch in.Op {
		case isa.OpMovI, isa.OpPushI32:
			pinNode(uint32(in.Imm), "ambiguous-region immediate")
		}
		return true
	})

	// Injected pin flood: pin-analysis "discovers" bogus indirect-branch
	// targets at decoded instructions, in seeded clusters so dense runs
	// stress chain packing and sled escalation downstream. Extra pins are
	// always *safe* over-approximation (a pin only plants a reference at
	// an address the instruction already owns); what this exercises is
	// the layout's ability to satisfy them or fail typed.
	if inj.Armed(fault.PinFlood) {
		for i, a := range addrs {
			if !inj.Fires(fault.PinFlood, a) {
				continue
			}
			run := 1 + inj.Pick(fault.PinFlood, a, 6)
			for j := i; j < len(addrs) && j < i+run; j++ {
				pinNode(addrs[j], "fault-injected")
			}
		}
	}

	// Deduplicate fixed-entry records (the scans revisit addresses).
	if len(p.FixedEntries) > 1 {
		sort.Slice(p.FixedEntries, func(i, j int) bool { return p.FixedEntries[i] < p.FixedEntries[j] })
		out := p.FixedEntries[:1]
		for _, a := range p.FixedEntries[1:] {
			if a != out[len(out)-1] {
				out = append(out, a)
			}
		}
		p.FixedEntries = out
	}
	sp.End()

	sp = tr.Start("partition-functions")
	buildFunctions(p, addrs)
	sp.End()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if tr.Enabled() {
		var pinned int64
		for _, n := range p.Insts {
			if n.Pinned {
				pinned++
			}
		}
		tr.Add("cfg.insts", int64(len(p.Insts)))
		tr.Add("cfg.pins", pinned)
		tr.Add("cfg.fixed-entries", int64(len(p.FixedEntries)))
		tr.Add("cfg.functions", int64(len(p.Functions)))
		for why, n := range pinsBy {
			tr.Add("cfg.pins."+strings.ReplaceAll(why, " ", "-"), n)
		}
	}
	return p, nil
}

// buildFunctions partitions instructions into functions for the
// transform API: entries are the program entry, exports, direct call
// targets and pinned instructions; bodies are flooded over fallthrough
// and non-call branch links.
func buildFunctions(p *ir.Program, addrs []uint32) {
	entrySet := map[*ir.Instruction]string{}
	if p.Entry != nil {
		entrySet[p.Entry] = "main"
	}
	for _, e := range p.Bin.Exports {
		if n, ok := p.ByAddr[e.Addr]; ok {
			entrySet[n] = e.Name
		}
	}
	for _, n := range p.Insts {
		if n.Inst.Op == isa.OpCall && n.Target != nil {
			if _, ok := entrySet[n.Target]; !ok {
				entrySet[n.Target] = fmt.Sprintf("sub_%x", n.Target.OrigAddr)
			}
		}
	}
	for _, n := range p.Insts {
		if n.Pinned {
			if _, ok := entrySet[n]; !ok {
				entrySet[n] = fmt.Sprintf("sub_%x", n.OrigAddr)
			}
		}
	}
	// Deterministic order: by original address.
	entries := make([]*ir.Instruction, 0, len(entrySet))
	for n := range entrySet {
		entries = append(entries, n)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].OrigAddr < entries[j].OrigAddr })

	owned := map[*ir.Instruction]bool{}
	for _, entry := range entries {
		fn := &ir.Function{Name: entrySet[entry], Entry: entry}
		stack := []*ir.Instruction{entry}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == nil || owned[n] {
				continue
			}
			if n != entry {
				if _, isEntry := entrySet[n]; isEntry {
					continue // belongs to its own function
				}
			}
			owned[n] = true
			fn.Insts = append(fn.Insts, n)
			stack = append(stack, n.Fallthrough)
			if n.Inst.Op != isa.OpCall && n.Target != nil {
				stack = append(stack, n.Target)
			}
		}
		if len(fn.Insts) > 0 {
			p.Functions = append(p.Functions, fn)
		}
	}
	_ = addrs
}
