package serve

import (
	"fmt"
	"strconv"
	"strings"

	"zipr"
)

// ParseTransforms turns a comma-separated transform specification into
// a transform stack. Each element is a name with an optional ":value"
// parameter:
//
//	null            the no-op baseline
//	cfi             control-flow integrity
//	stackpad[:N]    frame padding of N bytes (default 64)
//	canary[:V]      stack canary with word V (default built-in)
//	stir[:SEED]     block-granularity stirring (default seed 1)
//	nop-elide       no-op padding removal
//	pin-blocks      the pin-everything ablation
//
// An empty spec yields the null stack. This is the wire syntax of
// cmd/ziprd requests; cmd/zipr's -transforms flag accepts the subset
// without parameters.
func ParseTransforms(spec string) ([]zipr.Transform, error) {
	var tfs []zipr.Transform
	for _, field := range strings.Split(spec, ",") {
		name, arg, hasArg := strings.Cut(strings.TrimSpace(field), ":")
		argInt := func(def int64) (int64, error) {
			if !hasArg || arg == "" {
				return def, nil
			}
			v, err := strconv.ParseInt(arg, 0, 64)
			if err != nil {
				return 0, fmt.Errorf("serve: transform %q: bad parameter %q", name, arg)
			}
			return v, nil
		}
		switch name {
		case "", "null":
			tfs = append(tfs, zipr.Null())
		case "cfi":
			tfs = append(tfs, zipr.CFI())
		case "stackpad":
			pad, err := argInt(64)
			if err != nil {
				return nil, err
			}
			tfs = append(tfs, zipr.StackPad(int32(pad)))
		case "canary":
			v, err := argInt(0)
			if err != nil {
				return nil, err
			}
			tfs = append(tfs, zipr.Canary(uint32(v)))
		case "stir":
			seed, err := argInt(1)
			if err != nil {
				return nil, err
			}
			tfs = append(tfs, zipr.Stir(seed))
		case "nop-elide", "nopelide":
			tfs = append(tfs, zipr.NopElide())
		case "pin-blocks":
			tfs = append(tfs, zipr.PinBlocks())
		default:
			return nil, fmt.Errorf("serve: unknown transform %q", name)
		}
	}
	return tfs, nil
}
