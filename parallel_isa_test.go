package zipr

// Fixed-width determinism: the parallel pipeline's byte-identity
// guarantees (parallel_test.go) restated under ZVM-64, where the dual
// disassembly decodes 4-byte-aligned words and reassembly takes the
// aligned-carve/veneer paths the default ISA never exercises. Both
// fan-out levels are covered: concurrent dual disassembly against the
// serial run, and the full rewrite repeated across goroutines against a
// single serial reference.

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"zipr/internal/cgcsim"
	"zipr/internal/disasm"
	"zipr/internal/isa"
	"zipr/internal/synth"
)

func TestDisassembleSerialMatchesParallelZVM64(t *testing.T) {
	for _, idx := range []int{0, 5, 10, synth.PathologicalCB} {
		seed, profile := synth.CBProfile(idx)
		bin, err := synth.BuildArch(seed, profile, isa.ZVM64)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := disasm.DisassembleOpts(bin, disasm.Options{Serial: true, Arch: isa.ZVM64})
		if err != nil {
			t.Fatal(err)
		}
		par, err := disasm.DisassembleOpts(bin, disasm.Options{Arch: isa.ZVM64})
		if err != nil {
			t.Fatal(err)
		}
		sI, sA := dumpAgg(serial)
		pI, pA := dumpAgg(par)
		if !reflect.DeepEqual(sI, pI) {
			t.Fatalf("cb%d: instruction sets differ (serial %d, parallel %d)", idx, len(sI), len(pI))
		}
		if !reflect.DeepEqual(sA, pA) {
			t.Fatalf("cb%d: ambiguous sets differ", idx)
		}
		if !reflect.DeepEqual(serial.Fixed, par.Fixed) {
			t.Fatalf("cb%d: fixed ranges differ: %v vs %v", idx, serial.Fixed, par.Fixed)
		}
		if !bytes.Equal(classBytes(serial.Classes), classBytes(par.Classes)) {
			t.Fatalf("cb%d: byte classifications differ", idx)
		}
		if !reflect.DeepEqual(serial.Warnings, par.Warnings) {
			t.Fatalf("cb%d: warnings differ:\n%v\nvs\n%v", idx, serial.Warnings, par.Warnings)
		}
	}
}

// TestRewriteConcurrentDeterministicZVM64 rewrites the same fixed-width
// inputs from eight goroutines at once and demands every result be
// byte-identical (and Stats-identical) to a serial reference rewrite —
// the property the sharded daemon and the corpus evaluator rely on,
// here pinned for the ISA whose reassembler shares veneer and alignment
// state across a rewrite.
func TestRewriteConcurrentDeterministicZVM64(t *testing.T) {
	cbs := make([]cgcsim.CB, 0, 3)
	for _, idx := range []int{1, 4, 9} {
		cb, err := cgcsim.CBArch(idx, isa.ZVM64)
		if err != nil {
			t.Fatal(err)
		}
		cbs = append(cbs, cb)
	}
	for _, lay := range []LayoutKind{LayoutOptimized, LayoutDiversity} {
		for _, cb := range cbs {
			input, err := cb.Bin.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			cfg := func() Config {
				return Config{Transforms: []Transform{CFI()}, Layout: lay, Seed: 42, ISA: "zvm64"}
			}
			refOut, refRep, err := Rewrite(input, cfg())
			if err != nil {
				t.Fatalf("%s/%s: serial reference: %v", cb.Name, lay, err)
			}
			var wg sync.WaitGroup
			outs := make([][]byte, 8)
			stats := make([]Stats, 8)
			errs := make([]error, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					out, rep, err := Rewrite(input, cfg())
					if err != nil {
						errs[g] = err
						return
					}
					outs[g], stats[g] = out, rep.Stats
				}(g)
			}
			wg.Wait()
			for g := 0; g < 8; g++ {
				if errs[g] != nil {
					t.Fatalf("%s/%s: goroutine %d: %v", cb.Name, lay, g, errs[g])
				}
				if !bytes.Equal(outs[g], refOut) {
					t.Fatalf("%s/%s: goroutine %d produced different bytes than the serial reference", cb.Name, lay, g)
				}
				if stats[g] != refRep.Stats {
					t.Fatalf("%s/%s: goroutine %d Stats differ:\n%+v\nvs\n%+v", cb.Name, lay, g, stats[g], refRep.Stats)
				}
			}
		}
	}
}
