package fleet

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"zipr"
	"zipr/internal/fault"
	"zipr/internal/obs"
	"zipr/internal/serve"
)

// Retry tuning: a request gets at most maxAttempts tries across
// distinct ring replicas, with exponential backoff from retryBase and
// full jitter between them. The budget is deliberately small — a
// replica that can't answer inside two hops means the fleet is
// degraded, and queueing more retries just amplifies the outage.
const (
	maxAttempts = 3
	retryBase   = 10 * time.Millisecond
)

// maxBody mirrors the worker daemon's request-size cap.
const maxBody = 256 << 20

// Config configures a Gateway.
type Config struct {
	// Workers are the worker daemon addresses (host:port).
	Workers []string
	// Rate is the per-client admission rate in requests/second
	// (burst 2×rate). 0 disables rate limiting.
	Rate float64
	// Registry receives the fleet.* metric families (nil: no metrics).
	Registry *obs.Registry
	// Chaos injects faults (fault.WorkerDown makes the first forward of
	// an affected request behave as a connection failure). Nil: none.
	Chaos *fault.Injector
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

// Gateway routes /rewrite requests across a fleet of worker daemons by
// consistent hashing over the request's content-address key, with
// health-gated failover along the ring and per-client rate limiting.
// Construct with New, serve Handler(), and optionally Start a health
// probe loop.
type Gateway struct {
	ring    *ring
	health  *health
	limiter *limiter
	client  *http.Client
	chaos   *fault.Injector

	forwards  map[string]*obs.Counter // fleet.forward.total{worker}
	latency   *obs.WindowSeries       // fleet.forward.latency, µs
	retries   *obs.Counter            // fleet.retries
	limited   *obs.Counter            // fleet.ratelimited
	rebalance *obs.Counter            // fleet.ring.rebalance
	unavail   *obs.Counter            // fleet.unavailable
	upGauge   map[string]*obs.Gauge   // fleet.worker.up{worker}
	ringSize  *obs.Gauge              // fleet.ring.workers
}

// New builds a Gateway over cfg.Workers.
func New(cfg Config) *Gateway {
	g := &Gateway{
		ring:    newRing(cfg.Workers),
		limiter: newLimiter(cfg.Rate),
		client:  cfg.Client,
		chaos:   cfg.Chaos,
	}
	g.health = newHealth(g.ring.workers)
	if g.client == nil {
		g.client = &http.Client{Timeout: 2 * time.Minute}
	}
	reg := cfg.Registry
	fwdVec := reg.Counter("fleet.forward.total", "requests forwarded by worker", "worker")
	upVec := reg.Gauge("fleet.worker.up", "1 when the worker's circuit is closed", "worker")
	g.forwards = make(map[string]*obs.Counter, len(g.ring.workers))
	g.upGauge = make(map[string]*obs.Gauge, len(g.ring.workers))
	for _, w := range g.ring.workers {
		g.forwards[w] = fwdVec.With(w)
		g.upGauge[w] = upVec.With(w)
		g.upGauge[w].Set(1)
	}
	g.latency = reg.Window("fleet.forward.latency", "gateway forward round-trip in microseconds", 5*time.Minute).With()
	g.retries = reg.Counter("fleet.retries", "forwards retried on another replica").With()
	g.limited = reg.Counter("fleet.ratelimited", "requests refused with 429").With()
	g.rebalance = reg.Counter("fleet.ring.rebalance", "requests answered by a non-primary replica").With()
	g.unavail = reg.Counter("fleet.unavailable", "requests that exhausted every replica").With()
	g.ringSize = reg.Gauge("fleet.ring.workers", "workers on the ring").With()
	g.ringSize.Set(int64(len(g.ring.workers)))
	return g
}

// Start launches the background health-probe loop; it stops when ctx
// is done. Without it, circuits still open and half-open on request
// traffic alone, just without proactive healing.
func (g *Gateway) Start(ctx context.Context) {
	go g.health.probeLoop(ctx, g.client, "http")
}

// Probe runs one synchronous health round (tests and fleet-smoke).
func (g *Gateway) Probe(ctx context.Context) {
	g.health.probe(ctx, g.client, "http")
	g.syncUp()
}

// syncUp mirrors circuit state into the fleet.worker.up gauges.
func (g *Gateway) syncUp() {
	for addr, state := range g.health.snapshot() {
		var v int64
		if state == circuitClosed {
			v = 1
		}
		g.upGauge[addr].Set(v)
	}
}

// routeKey computes the request's content-address routing key exactly
// as the worker's serving layer will, so a request and its repeats pin
// to the same worker shard. A transform-spec parse error falls back to
// an input-only key — the chosen worker will produce the 400.
func routeKey(input []byte, q map[string]string) serve.Key {
	cfg := zipr.Config{
		Layout:      zipr.LayoutKind(q["layout"]),
		Arbitration: zipr.ArbitrationKind(q["arbitration"]),
	}
	if tfs, err := serve.ParseTransforms(q["transforms"]); err == nil {
		cfg.Transforms = tfs
	}
	fmt.Sscanf(q["seed"], "%d", &cfg.Seed)
	return serve.CacheKey(input, cfg)
}

// ServeHTTP implements the gateway's /rewrite endpoint.
func (g *Gateway) rewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if ok, retry := g.limiter.allow(clientKey(r)); !ok {
		g.limited.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retry.Seconds()))))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	input, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	key := routeKey(input, map[string]string{
		"transforms":  q.Get("transforms"),
		"layout":      q.Get("layout"),
		"arbitration": q.Get("arbitration"),
		"seed":        q.Get("seed"),
	})
	site := binary.LittleEndian.Uint32(key[:4])
	reps := g.ring.replicas(key.String(), maxAttempts)
	if len(reps) == 0 {
		g.unavail.Add(1)
		http.Error(w, "fleet: no workers configured", http.StatusBadGateway)
		return
	}
	attempt := 0
	for i, addr := range reps {
		if !g.health.admit(addr) {
			if i > 0 {
				g.rebalance.Add(1)
			}
			continue
		}
		if attempt > 0 {
			g.retries.Add(1)
			// Full-jitter exponential backoff before the retry hop.
			back := retryBase << (attempt - 1)
			time.Sleep(time.Duration(rand.Int63n(int64(back) + 1)))
		}
		attempt++
		// Injected worker outage: the first forward of an affected
		// request behaves as a connection failure, exercising the
		// failover path deterministically.
		if attempt == 1 && g.chaos.Fires(fault.WorkerDown, site) {
			g.health.report(addr, false)
			g.syncUp()
			continue
		}
		start := time.Now()
		resp, err := g.forward(r, addr, input)
		if err != nil {
			g.health.report(addr, false)
			g.syncUp()
			continue
		}
		// The worker answered; its status — success or app-level error
		// — is the request's answer. Only transport failures fail over.
		g.health.report(addr, true)
		g.syncUp()
		g.forwards[addr].Add(1)
		g.latency.Observe(time.Since(start).Microseconds())
		if i > 0 {
			g.rebalance.Add(1)
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set("X-Zipr-Worker", addr)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	g.unavail.Add(1)
	http.Error(w, "fleet: no worker available", http.StatusBadGateway)
}

// forward replays the rewrite request against one worker.
func (g *Gateway) forward(r *http.Request, addr string, input []byte) (*http.Response, error) {
	url := "http://" + addr + "/rewrite"
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(input))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tr := r.Header.Get("X-Zipr-Trace"); tr != "" {
		req.Header.Set("X-Zipr-Trace", tr)
	}
	return g.client.Do(req)
}

// fleetStatus is the /fleet JSON shape.
type fleetStatus struct {
	Workers []workerStatus `json:"workers"`
}

type workerStatus struct {
	Addr    string `json:"addr"`
	Circuit string `json:"circuit"`
}

// Handler returns the gateway's HTTP mux: /rewrite (routed), /healthz,
// /metrics (needs a Registry), and /fleet (worker circuit snapshot).
func (g *Gateway) Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", g.rewrite)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		reg.WriteProm(w)
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		snap := g.health.snapshot()
		st := fleetStatus{}
		for addr, circuit := range snap {
			st.Workers = append(st.Workers, workerStatus{Addr: addr, Circuit: circuit})
		}
		sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].Addr < st.Workers[j].Addr })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
	})
	return mux
}
