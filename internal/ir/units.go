// Function units and content digests for incremental (delta) rewriting.
//
// A unit is a maximal original-address interval covering one or more
// functions of the partition: function extents that overlap (shared
// tails, fragments rooted at pinned mid-function labels) merge into one
// unit, so every function's instructions lie entirely inside exactly one
// unit. Units are the granularity of delta rewriting — a placement
// snapshot records per-unit content digests, and an edited input is
// admitted to the delta path only when every changed byte falls inside a
// unit whose new content still digests to a compatible shape.
//
// The digest canonicalizes instructions the way Config.Fingerprint
// canonicalizes configurations: it is computed from original text bytes
// alone (so both the snapshot exporter and the delta admission check,
// which has no IR, derive it identically), renders operands structurally,
// and symbolizes outgoing references — a branch to a target inside the
// unit contributes its unit-relative offset, a branch or PC-relative
// data reference leaving the unit contributes the absolute address it
// names. Two units with equal digests therefore have identical
// instruction boundaries, operations, register operands and reference
// structure.

package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"zipr/internal/isa"
)

// FunctionExtent returns the original-address interval spanned by f's
// instructions that carry original addresses, and false when f has none
// (synthetic or empty functions). Instruction lengths are re-decoded
// from the original text (based at textVA): transforms may have widened
// or replaced the node's current Inst, and extents must describe the
// *input* bytes a unit vouches for, not the transformed shape. A node
// whose original bytes no longer decode falls back to the current
// length; such units fail the exporter's tiling walk and are dropped.
func FunctionExtent(f *Function, text []byte, textVA uint32) (Range, bool) {
	var r Range
	found := false
	for _, n := range f.Insts {
		if n.OrigAddr == 0 {
			continue
		}
		ln := uint32(n.Inst.Len())
		if off := n.OrigAddr - textVA; n.OrigAddr >= textVA && int(off) < len(text) {
			if in, err := isa.Decode(text[off:]); err == nil {
				ln = uint32(in.Len())
			}
		}
		end := n.OrigAddr + ln
		if !found {
			r = Range{Start: n.OrigAddr, End: end}
			found = true
			continue
		}
		if n.OrigAddr < r.Start {
			r.Start = n.OrigAddr
		}
		if end > r.End {
			r.End = end
		}
	}
	return r, found
}

// PartitionUnits merges the function extents of p into maximal disjoint
// units, sorted by address. Overlapping extents — functions sharing a
// tail, fragments rooted at pinned labels inside another function's body
// — coalesce, so the result is a true partition of the covered bytes;
// abutting but non-overlapping functions stay separate units, keeping
// delta invalidation function-granular.
//
// Extents are measured against the original text bytes (FunctionExtent
// re-decodes lengths), so a unit is an interval of the *input* image;
// the exporter's tiling walk then verifies every byte of it decodes to
// an instruction the IR still accounts for.
func PartitionUnits(p *Program) []Range {
	if p.Bin == nil {
		return nil
	}
	text := p.Bin.Text()
	if text == nil {
		return nil
	}
	var extents []Range
	for _, f := range p.Functions {
		if r, ok := FunctionExtent(f, text.Data, text.VAddr); ok {
			extents = append(extents, r)
		}
	}
	if len(extents) == 0 {
		return nil
	}
	// MergeRanges coalesces adjacent ranges too; units should only merge
	// on true overlap, so merge manually.
	sorted := append([]Range(nil), extents...)
	sortRanges(sorted)
	out := []Range{sorted[0]}
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Start < last.End { // strict overlap only
			if r.End > last.End {
				last.End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

func sortRanges(rs []Range) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Start < rs[j-1].Start; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Operand-class codes of the unit digest's canonical rendering.
const (
	digRaw      = 0 // plain immediate / displacement, value as-is
	digRelInner = 1 // static target inside the unit, unit-relative
	digRelOuter = 2 // static target outside the unit, absolute
)

// UnitDigest walks the unit's bytes in text (the whole original text
// segment based at textVA), decoding instruction by instruction, and
// returns the unit's canonical content digest. Decoding must tile the
// interval exactly; a decode error or an instruction crossing u.End
// fails with an error (such units are not delta-eligible).
func UnitDigest(text []byte, textVA uint32, u Range) ([sha256.Size]byte, error) {
	var zero [sha256.Size]byte
	if u.Start < textVA || u.End > textVA+uint32(len(text)) || u.Start >= u.End {
		return zero, fmt.Errorf("ir: unit %+v outside text", u)
	}
	h := sha256.New()
	var rec [14]byte
	addr := u.Start
	for addr < u.End {
		in, err := isa.Decode(text[addr-textVA:])
		if err != nil {
			return zero, fmt.Errorf("ir: unit decode at %#x: %w", addr, err)
		}
		ln := uint32(in.Len())
		if addr+ln > u.End {
			return zero, fmt.Errorf("ir: instruction at %#x crosses unit end %#x", addr, u.End)
		}
		class := byte(digRaw)
		val := uint32(in.Imm)
		if t, ok := in.TargetAddr(addr); ok {
			if u.Contains(t) {
				class, val = digRelInner, t-u.Start
			} else {
				class, val = digRelOuter, t
			}
		}
		binary.LittleEndian.PutUint32(rec[0:], addr-u.Start)
		rec[4] = byte(in.Op)
		rec[5] = byte(in.Cc)
		rec[6] = in.Rd
		rec[7] = in.Rs
		rec[8] = class
		binary.LittleEndian.PutUint32(rec[9:], val)
		rec[13] = byte(ln)
		h.Write(rec[:])
		addr += ln
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum, nil
}
