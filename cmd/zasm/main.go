// Command zasm assembles ZVM assembly source into a ZELF binary.
//
// Usage:
//
//	zasm [-isa zvm32|zvm64] input.s output.zelf
package main

import (
	"flag"
	"fmt"
	"os"

	"zipr/internal/asm"
	"zipr/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zasm:", err)
		os.Exit(1)
	}
}

func run() error {
	isaFlag := flag.String("isa", "zvm32", "target instruction set: zvm32 | zvm64")
	flag.Parse()
	if flag.NArg() != 2 {
		return fmt.Errorf("usage: zasm [flags] input.s output.zelf")
	}
	arch, err := isa.ByName(*isaFlag)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	bin, err := asm.AssembleArch(string(src), arch)
	if err != nil {
		return err
	}
	data, err := bin.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(flag.Arg(1), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes, entry %#x\n", flag.Arg(1), len(data), bin.Entry)
	return nil
}
