// Package serve is the rewrite-as-a-service layer: a long-running batch
// front end over the zipr pipeline for deployments where the same
// (binary, configuration) pair is rewritten over and over and must be
// answered from cache, not re-disassembled.
//
// Three mechanisms compose:
//
//   - A content-addressed rewrite cache keyed by SHA-256 of the input
//     image plus the canonical Config fingerprint (zipr.Config.Fingerprint),
//     with LRU eviction under a byte budget. Every cached output carries
//     its own digest, verified on hit, so a corrupted entry degrades to
//     a miss — the cache can serve stale-free wrong bytes never.
//   - Singleflight de-duplication: concurrent identical requests share
//     one pipeline run; followers wait for the leader's result instead
//     of burning workers on identical work.
//   - Admission control: at most Workers concurrent pipeline runs, a
//     bounded wait queue, and per-request deadlines via context. A
//     saturated queue or an expired deadline rejects with the typed
//     zerr.ErrBusy class instead of queueing unboundedly.
//
// Observability lands on two sinks. Options.Trace carries the unlabeled
// per-run view: serve.cache.{hit,miss,evict,corrupt} counters,
// queue-depth and cache-size gauges, and one detached span per request.
// Options.Registry carries the service-lifetime labeled view scraped by
// ziprd's /metrics: serve.request.total and rolling latency quantiles
// keyed by outcome (hit|miss|shared|busy|error), queue wait, and cache
// occupancy — see RewriteMeta, which classifies every request into one
// of those outcomes. Fault injection (Options.Chaos) arms the
// serve-specific kinds fault.CacheCorrupt (hit-path corruption, which
// the digest check must turn into a verified fallback rewrite) and
// fault.QueueDrop (spurious admission rejection, which must surface as
// a typed ErrBusy+ErrInjected error).
package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"zipr"
	"zipr/internal/fault"
	"zipr/internal/irdb"
	"zipr/internal/obs"
	"zipr/internal/zerr"
)

// Options configures a Server.
type Options struct {
	// Workers is the maximum number of concurrent pipeline runs
	// (default GOMAXPROCS). Cache hits and singleflight followers do
	// not consume workers.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a free
	// worker (default 64). Beyond it, requests are rejected with
	// zerr.ErrBusy immediately instead of queueing.
	QueueDepth int
	// CacheBytes is the rewrite cache's byte budget over cached output
	// images (default 64 MiB). Negative disables caching entirely.
	CacheBytes int64
	// SnapshotBytes is the placement-snapshot store's byte budget
	// (default 32 MiB; negative disables delta serving). Snapshots are
	// budgeted separately from CacheBytes on purpose: output-byte
	// eviction under memory pressure must not destroy delta ancestry.
	SnapshotBytes int64
	// SnapshotDB, when non-nil, persists placement snapshots through an
	// irdb database shared across Server instances, so a restarted
	// daemon keeps its delta ancestry. Purely an optimization: rows are
	// integrity-verified on load and dropped when stale.
	SnapshotDB *irdb.DB
	// Disk, when non-nil, is the disk-backed second cache tier: rewrite
	// outputs and placement snapshots spill to it asynchronously
	// (write-behind; the hot path never blocks on disk), and a RAM miss
	// consults it before running the pipeline, promoting verified hits
	// back into the in-memory cache. The caller owns the tier's
	// lifecycle (OpenDiskTier / Close); a tier may not be shared by two
	// live Servers.
	Disk *DiskTier
	// Trace receives the serving layer's counters, gauges and
	// per-request spans; nil disables instrumentation.
	Trace *obs.Trace
	// Registry receives service-lifetime labeled metrics: request
	// totals and rolling latency quantiles by outcome
	// (serve.request.*{outcome=hit|miss|shared|busy|error}), queue
	// wait/depth, and cache occupancy. Unlike Trace — per-run,
	// unlabeled, dumped on Close — the registry is built for
	// continuous scraping (ziprd's /metrics). Nil disables it.
	Registry *obs.Registry
	// Chaos arms deterministic fault injection for the serving layer
	// (fault.CacheCorrupt, fault.QueueDrop) and is threaded into each
	// pipeline run that does not carry its own injector. Nil disables
	// injection.
	Chaos *fault.Injector
}

// Stats is a point-in-time snapshot of the server's behavior.
type Stats struct {
	Hits, Misses int64 // cache outcomes
	Evictions    int64 // entries dropped for the byte budget
	Corrupt      int64 // hits whose digest check failed (fell back)
	Shared       int64 // singleflight followers served by a leader
	Rejected     int64 // admissions refused (queue full, injected)
	Expired      int64 // deadlines that fired while queued/waiting
	PipelineRuns int64 // actual rewrites executed
	DeltaHits    int64 // requests answered from a placement snapshot
	DeltaStale   int64 // snapshots dropped for failed integrity checks
	CacheEntries int   // current entry count
	CacheBytes   int64 // current cached output bytes
	QueueDepth   int   // requests currently waiting for a worker
	SnapEntries  int   // current placement-snapshot count
	SnapBytes    int64 // current placement-snapshot bytes

	// Snapshot-index and disk-tier occupancy (appended fields; the JSON
	// shape of everything above stays byte-compatible).
	SnapAncestors int   // distinct (fingerprint, length) ancestor index entries
	DiskHits      int64 // disk-tier reads served after digest verification
	DiskMisses    int64 // disk-tier lookups with no entry
	DiskPromotes  int64 // disk hits promoted into the in-memory cache
	DiskCorrupt   int64 // disk reads quarantined for a failed digest check
	DiskEvicted   int64 // disk entries dropped for the byte budget
	DiskDropped   int64 // spills dropped on a full write-behind queue
	DiskRecovered int64 // partial/orphaned artifacts discarded at open
	DiskEntries   int   // current disk-tier index entries
	DiskBytes     int64 // current disk-tier stored bytes

	// Metrics is the labeled-registry snapshot (request totals and
	// rolling latency quantiles by outcome); nil when the server was
	// built without a Registry. Appended after the flat counters so
	// the JSON shape of the original fields stays byte-compatible.
	Metrics []obs.FamilySnap `json:",omitempty"`
}

// Server is a concurrent batch rewriting daemon core. Construct with
// New; all methods are safe for concurrent use.
type Server struct {
	opts Options
	tr   *obs.Trace
	reg  *obs.Registry
	tel  telemetry
	inj  *fault.Injector
	sem  chan struct{}

	sdb  *irdb.DB
	disk *DiskTier

	mu       sync.Mutex
	cache    *lruCache  // nil when caching is disabled
	snaps    *snapStore // nil when delta serving is disabled
	inflight map[Key]*call
	stats    Stats
	closed   bool
}

// call is one in-flight pipeline run shared by a leader and any
// followers that requested the same key while it ran.
type call struct {
	done chan struct{}
	out  []byte
	rep  *zipr.Report
	err  error
}

// New creates a Server. Call Close when done.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 64 << 20
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = 32 << 20
	}
	s := &Server{
		opts:     opts,
		tr:       opts.Trace,
		reg:      opts.Registry,
		tel:      newTelemetry(opts.Registry),
		inj:      opts.Chaos.WithTrace(opts.Trace),
		sem:      make(chan struct{}, opts.Workers),
		inflight: make(map[Key]*call),
	}
	if opts.CacheBytes > 0 {
		s.cache = newLRUCache(opts.CacheBytes)
	}
	if opts.Disk != nil {
		s.disk = opts.Disk
		s.disk.bindTelemetry(&s.tel)
	}
	if opts.SnapshotBytes > 0 {
		s.snaps = newSnapStore(opts.SnapshotBytes)
		if opts.SnapshotDB != nil && ensureSnapTable(opts.SnapshotDB) == nil {
			s.sdb = opts.SnapshotDB
		}
	}
	return s
}

// Stats returns a snapshot of the server's counters and occupancy.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if s.cache != nil {
		st.CacheEntries = len(s.cache.entries)
		st.CacheBytes = s.cache.bytes
	}
	if s.snaps != nil {
		st.SnapEntries = len(s.snaps.entries)
		st.SnapBytes = s.snaps.bytes
		st.SnapAncestors = len(s.snaps.byAnc)
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		st.DiskHits = ds.Hits
		st.DiskMisses = ds.Misses
		st.DiskCorrupt = ds.Corrupt
		st.DiskEvicted = ds.Evicted
		st.DiskDropped = ds.WriteDropped
		st.DiskRecovered = ds.Recovered
		st.DiskEntries = ds.Entries
		st.DiskBytes = ds.Bytes
	}
	st.Metrics = s.reg.Snapshot()
	return st
}

// Close marks the server closed; subsequent Rewrite calls are rejected.
// In-flight requests complete normally.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// effective resolves the request configuration the pipeline will really
// run under: a server-level injector is threaded into requests that do
// not carry their own. The cache key must be derived from this resolved
// config — keying on the caller's nil-chaos config would alias injected
// and clean outputs under one address.
func (s *Server) effective(cfg zipr.Config) zipr.Config {
	if cfg.Chaos == nil && s.inj != nil {
		cfg.Chaos = s.inj
	}
	return cfg
}

// Rewrite answers one request: from cache when the content address is
// known, from a shared in-flight run when an identical request is
// already executing, and from a fresh admitted pipeline run otherwise.
// The returned image is the caller's to keep. ctx bounds the whole
// request; a deadline that expires before a worker frees up rejects
// with zerr.ErrBusy.
func (s *Server) Rewrite(ctx context.Context, input []byte, cfg zipr.Config) ([]byte, *zipr.Report, error) {
	out, rep, _, err := s.RewriteMeta(ctx, input, cfg)
	return out, rep, err
}

// RewriteMeta is Rewrite plus the request's telemetry record: content
// address, outcome classification, queue wait and total wall time. The
// meta is valid even when err != nil (Outcome is then busy or error).
// Labeled metrics (Options.Registry) are observed here, once per
// request.
func (s *Server) RewriteMeta(ctx context.Context, input []byte, cfg zipr.Config) ([]byte, *zipr.Report, RequestMeta, error) {
	start := time.Now()
	out, rep, meta, err := s.rewrite(ctx, input, cfg)
	meta.Wall = time.Since(start)
	s.tel.observe(meta)
	s.tr.Observe("serve.request.wall-us", meta.Wall.Microseconds())
	return out, rep, meta, err
}

// rewrite is the request state machine; RewriteMeta wraps it with
// timing and metric observation.
func (s *Server) rewrite(ctx context.Context, input []byte, cfg zipr.Config) ([]byte, *zipr.Report, RequestMeta, error) {
	cfg = s.effective(cfg)
	key := CacheKey(input, cfg)
	meta := RequestMeta{Key: key}
	// Debug captures (IRDB, address maps) reference per-run pipeline
	// state a cache entry cannot reproduce; such requests bypass the
	// cache in both directions.
	cacheable := !cfg.CaptureIR && !cfg.EmitMap

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		meta.Outcome = OutcomeBusy
		return nil, nil, meta, fmt.Errorf("serve: %w: server closed", zerr.ErrBusy)
	}
	if cacheable && s.cache != nil {
		if e := s.cache.get(key); e != nil {
			if s.inj.Fires(fault.CacheCorrupt, key.site()) && len(e.out) > 0 {
				// Corrupt the stored entry itself: the digest check below
				// must catch it, evict it, and fall back to a fresh run.
				e.out[s.inj.Pick(fault.CacheCorrupt, key.site(), len(e.out))] ^= 0xFF
			}
			out := append([]byte(nil), e.out...)
			sum := e.sum
			rep := s.hitReport(e, len(input))
			s.mu.Unlock()
			if sha256.Sum256(out) == sum {
				s.count("serve.cache.hit", &s.stats.Hits)
				s.span("serve.hit")
				meta.Outcome, meta.Tier = OutcomeHit, TierRAM
				return out, rep, meta, nil
			}
			// Verified fallback: drop the poisoned entry and rewrite.
			s.mu.Lock()
			if e2 := s.cache.entries[key]; e2 == e {
				s.cache.remove(e)
				s.syncCacheGaugesLocked()
			}
			s.mu.Unlock()
			s.count("serve.cache.corrupt", &s.stats.Corrupt)
			s.tel.corrupt.Add(1)
			s.mu.Lock()
		}
	}
	// Disk tier: a RAM miss consults the on-disk store before anything
	// expensive. A miss is an index lookup (no IO); a hit reads and
	// digest-verifies the file and is promoted into the in-memory cache
	// so the next repeat stays at RAM latency.
	if cacheable && s.disk != nil {
		s.mu.Unlock()
		if data, layout, ok := s.disk.get(key, s.inj); ok {
			rep := &zipr.Report{Layout: layout, InputSize: len(input), OutputSize: len(data)}
			if s.cache != nil {
				s.cachePut(key, data, rep)
				s.mu.Lock()
				s.stats.DiskPromotes++
				s.mu.Unlock()
				s.tr.Add("serve.disk.promote", 1)
				s.tel.diskPromotes.Add(1)
			}
			s.tr.Add("serve.disk.hit", 1)
			s.tel.diskHits.Add(1)
			s.span("serve.disk-hit")
			meta.Outcome, meta.Tier = OutcomeHit, TierDisk
			return data, rep, meta, nil
		}
		s.mu.Lock()
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.count("serve.singleflight.shared", &s.stats.Shared)
		select {
		case <-c.done:
			if c.err != nil {
				meta.Outcome = outcomeOfError(c.err)
				return nil, nil, meta, c.err
			}
			rep := *c.rep
			meta.Outcome = OutcomeShared
			return append([]byte(nil), c.out...), &rep, meta, nil
		case <-ctx.Done():
			s.count("serve.deadline.expired", &s.stats.Expired)
			meta.Outcome = OutcomeBusy
			return nil, nil, meta, fmt.Errorf("serve: %w: %v while awaiting shared run", zerr.ErrBusy, ctx.Err())
		}
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	finish := func(out []byte, rep *zipr.Report, err error) {
		c.out, c.rep, c.err = out, rep, err
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(c.done)
	}

	// Delta admission: a request whose input is a supported edit of a
	// stored ancestor is answered by patching the ancestor's output —
	// byte-identical to a pipeline run, at memcmp cost — without
	// consuming a worker. Pipeline chaos disables the path: an injector
	// that perturbs analyses or corrupts inputs voids the determinism
	// argument the snapshot identity rests on (the serve-level kinds —
	// CacheCorrupt, QueueDrop, DeltaStaleSnapshot — don't).
	deltaOK := cacheable && s.snaps != nil && !cfg.Chaos.ArmedPipeline()
	if deltaOK {
		if out, rep, snap, ok := s.tryDelta(key, input, cfg); ok {
			if s.cache != nil {
				s.cachePut(key, out, rep)
			}
			s.disk.putAsync(key, diskKindOut, out, rep.Layout)
			if !cfg.CaptureSnapshot {
				snap = nil
			}
			repOut := *rep
			repOut.Snapshot = snap
			finish(out, rep, nil)
			meta.Outcome = OutcomeDelta
			return append([]byte(nil), out...), &repOut, meta, nil
		}
	}

	wait, err := s.admit(ctx, key.site())
	meta.QueueWait = wait
	if err != nil {
		finish(nil, nil, err)
		meta.Outcome = OutcomeBusy
		return nil, nil, meta, err
	}
	sp := s.tr.StartDetached("serve.miss")
	s.count("serve.cache.miss", &s.stats.Misses)
	s.count("serve.pipeline.runs", &s.stats.PipelineRuns)
	s.tel.runs.Add(1)
	rcfg := cfg
	if deltaOK {
		// Capture this run's placement snapshot so the *next* edited
		// version of this input takes the delta path. Capture never
		// changes the output bytes (it is excluded from the
		// fingerprint, like the other observability knobs).
		rcfg.CaptureSnapshot = true
	}
	out, rep, err := zipr.Rewrite(input, rcfg)
	<-s.sem
	sp.End()
	if err != nil {
		finish(nil, nil, err)
		meta.Outcome = outcomeOfError(err)
		return nil, nil, meta, err
	}
	if deltaOK && rep.Snapshot != nil {
		s.storeSnapshot(key, ancKeyOf(cfg, len(input)), rep.Snapshot, rep)
		if !cfg.CaptureSnapshot {
			rep.Snapshot = nil
		}
	}
	if cacheable && s.cache != nil {
		s.cachePut(key, out, rep)
	}
	if cacheable {
		s.disk.putAsync(key, diskKindOut, out, rep.Layout)
	}
	finish(out, rep, err)
	repCopy := *rep
	meta.Outcome = OutcomeMiss
	return append([]byte(nil), out...), &repCopy, meta, nil
}

// outcomeOfError classifies a failed request: saturation (the typed
// busy class) is OutcomeBusy, everything else OutcomeError.
func outcomeOfError(err error) string {
	if errors.Is(err, zerr.ErrBusy) {
		return OutcomeBusy
	}
	return OutcomeError
}

// admit acquires a worker slot, waiting in the bounded queue when all
// workers are busy. It owns one sem token on nil error return, and
// reports how long the request waited queued (0 on the fast path).
func (s *Server) admit(ctx context.Context, site uint32) (time.Duration, error) {
	if s.inj.Fires(fault.QueueDrop, site) {
		s.count("serve.admit.rejected", &s.stats.Rejected)
		return 0, fmt.Errorf("serve: %w: admission dropped (%w)", zerr.ErrBusy, zerr.ErrInjected)
	}
	select {
	case s.sem <- struct{}{}:
		return 0, nil
	default:
	}
	s.mu.Lock()
	if s.stats.QueueDepth >= s.opts.QueueDepth {
		s.mu.Unlock()
		s.count("serve.admit.rejected", &s.stats.Rejected)
		return 0, fmt.Errorf("serve: %w: queue full (%d waiting)", zerr.ErrBusy, s.opts.QueueDepth)
	}
	s.stats.QueueDepth++
	s.tr.SetGauge("serve.queue.depth", int64(s.stats.QueueDepth))
	s.tel.queueDepth.Set(int64(s.stats.QueueDepth))
	s.mu.Unlock()
	queued := time.Now()
	defer func() {
		s.mu.Lock()
		s.stats.QueueDepth--
		s.tr.SetGauge("serve.queue.depth", int64(s.stats.QueueDepth))
		s.tel.queueDepth.Set(int64(s.stats.QueueDepth))
		s.mu.Unlock()
	}()
	select {
	case s.sem <- struct{}{}:
		return time.Since(queued), nil
	case <-ctx.Done():
		s.count("serve.deadline.expired", &s.stats.Expired)
		return time.Since(queued), fmt.Errorf("serve: %w: %v while queued", zerr.ErrBusy, ctx.Err())
	}
}

// cachePut stores a completed rewrite's output in the content-addressed
// cache, counting evictions the insert forced.
func (s *Server) cachePut(key Key, out []byte, rep *zipr.Report) {
	e := &entry{
		key:      key,
		out:      append([]byte(nil), out...),
		sum:      sha256.Sum256(out),
		stats:    rep.Stats,
		layout:   rep.Layout,
		warnings: append([]string(nil), rep.Warnings...),
	}
	s.mu.Lock()
	before := s.cache.evicted
	s.cache.put(e)
	evicted := s.cache.evicted - before
	s.stats.Evictions += evicted
	s.syncCacheGaugesLocked()
	s.mu.Unlock()
	if evicted > 0 {
		s.tr.Add("serve.cache.evict", evicted)
		s.tel.evictions.Add(evicted)
	}
}

// hitReport reconstructs the report a cold rewrite of this entry
// produced, minus per-run pipeline state. Caller holds s.mu.
func (s *Server) hitReport(e *entry, inputSize int) *zipr.Report {
	return &zipr.Report{
		Stats:      e.stats,
		Layout:     e.layout,
		Warnings:   append([]string(nil), e.warnings...),
		InputSize:  inputSize,
		OutputSize: len(e.out),
	}
}

// count bumps a trace counter and the matching Stats field.
func (s *Server) count(name string, field *int64) {
	s.tr.Add(name, 1)
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// span records an instantaneous per-request span (hits have no
// meaningful duration worth sampling memory stats for).
func (s *Server) span(name string) {
	s.tr.Record(name, 0, 1)
}

// syncCacheGaugesLocked publishes cache occupancy gauges; caller holds
// s.mu.
func (s *Server) syncCacheGaugesLocked() {
	s.tr.SetGauge("serve.cache.bytes", s.cache.bytes)
	s.tr.SetGauge("serve.cache.entries", int64(len(s.cache.entries)))
	s.tel.cacheBytes.Set(s.cache.bytes)
	s.tel.cacheCount.Set(int64(len(s.cache.entries)))
}
