// Command benchjson converts `go test -bench` text output on stdin into
// a JSON report, so benchmark runs (the Makefile's bench target) leave a
// machine-readable artifact instead of a log to grep.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson > BENCH_pipeline.json
//	go test -run '^$' -bench . -benchmem . | benchjson -merge BENCH_pipeline.json -o BENCH_pipeline.json
//	benchjson -compare BenchmarkRewriteFull,BenchmarkRewriteDelta -min 5 BENCH_pipeline.json
//
// Every benchmark result line becomes one object holding the iteration
// count and every reported metric (ns/op, B/op, allocs/op, MB/s, and
// custom b.ReportMetric units such as speedup-x) keyed by unit.
//
// With -merge FILE, the new run is appended to the runs already in FILE
// instead of replacing them, producing a trajectory document
// {"runs": [oldest, ..., newest]} that accumulates one entry per `make
// bench` across the project's history. A FILE in the old single-run
// format is wrapped as the trajectory's first entry; a missing FILE
// starts a fresh trajectory. -o writes the result to a file (atomically
// enough for the Makefile's read-modify-write of the same path) instead
// of stdout.
//
// With -compare BASE,NEW the program reads no stdin: it loads the
// trajectory file named as the positional argument, takes the newest
// run holding both benchmarks, and prints NEW's speedup over BASE from
// their ns/op — or any other reported metric chosen with -metric (e.g.
// -metric pins for a size bar). -min X turns the print into a gate: a
// ratio below X exits nonzero, so `make ci` fails when a perf bar
// regresses.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Env is the benchmark context header block.
type Env struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
}

// Report is one converted run.
type Report struct {
	Env        Env      `json:"env"`
	Benchmarks []Result `json:"benchmarks"`
}

// schemaVersion is the trajectory document revision this benchjson
// reads and writes. Files written before versioning carry no schema
// field and are accepted as the implicit version 1; any other mismatch
// is rejected rather than silently merged, so a trajectory never mixes
// incompatible run shapes.
const schemaVersion = 2

// Trajectory is the accumulated multi-run document -merge maintains.
type Trajectory struct {
	Schema int      `json:"schema,omitempty"`
	Runs   []Report `json:"runs"`
}

func main() {
	mergePath := flag.String("merge", "", "append this run to the runs in `file` (old single-run files are wrapped)")
	outPath := flag.String("o", "", "write output to `file` instead of stdout")
	compare := flag.String("compare", "", "compare two benchmarks (`base,new`) from the trajectory file given as the positional argument")
	minRatio := flag.Float64("min", 0, "with -compare, fail unless the base/new metric ratio is at least this value")
	metric := flag.String("metric", "ns/op", "with -compare, the benchmark metric to compare")
	flag.Parse()
	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly one trajectory file argument")
			os.Exit(2)
		}
		if err := runCompare(os.Stdout, flag.Arg(0), *compare, *metric, *minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, *mergePath, *outPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare loads the trajectory at path and reports the base/new
// ratio of the chosen metric from the newest run holding both
// benchmarks, failing when it misses minRatio. Earlier runs may predate
// one of the benchmarks, so the scan walks newest-first until a run has
// both. For ns/op the ratio is the conventional speedup; for any other
// metric it is simply base over new, so -min gates "new is smaller".
func runCompare(w io.Writer, path, pair, metric string, minRatio float64) error {
	baseName, newName, ok := strings.Cut(pair, ",")
	if !ok || baseName == "" || newName == "" {
		return fmt.Errorf("-compare wants base,new benchmark names, got %q", pair)
	}
	traj, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	for i := len(traj.Runs) - 1; i >= 0; i-- {
		base, new_ := findBench(traj.Runs[i], baseName), findBench(traj.Runs[i], newName)
		if base == nil || new_ == nil {
			continue
		}
		bv, nv := base.Metrics[metric], new_.Metrics[metric]
		if bv <= 0 || nv <= 0 {
			return fmt.Errorf("run %d: %s missing or zero (%s=%g, %s=%g)", i, metric, baseName, bv, newName, nv)
		}
		ratio := bv / nv
		if metric == "ns/op" {
			fmt.Fprintf(w, "%s / %s = %.2fx speedup (%.4gms vs %.4gms)\n",
				baseName, newName, ratio, bv/1e6, nv/1e6)
		} else {
			fmt.Fprintf(w, "%s / %s = %.4fx %s ratio (%g vs %g)\n",
				baseName, newName, ratio, metric, bv, nv)
		}
		if minRatio > 0 && ratio < minRatio {
			return fmt.Errorf("%s ratio %.4fx is below the %.4fx floor", metric, ratio, minRatio)
		}
		return nil
	}
	return fmt.Errorf("%s: no run contains both %s and %s", path, baseName, newName)
}

// findBench returns the named benchmark from one run, or nil.
func findBench(rep Report, name string) *Result {
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Name == name {
			return &rep.Benchmarks[i]
		}
	}
	return nil
}

func run(in io.Reader, mergePath, outPath string) error {
	rep, err := parseRun(in)
	if err != nil {
		return err
	}
	var doc any = rep
	if mergePath != "" {
		traj, err := loadTrajectory(mergePath)
		if err != nil {
			return err
		}
		traj.Runs = append(traj.Runs, *rep)
		traj.Schema = schemaVersion
		doc = traj
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	// Write through a temp file and rename so a failure mid-write never
	// truncates an existing trajectory (the Makefile merges into the
	// same path it reads from).
	tmp, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), outPath)
}

// parseRun converts one `go test -bench` text stream into a Report.
func parseRun(in io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Env.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Env.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Env.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.Env.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// loadTrajectory reads an existing output file in either format: a
// trajectory document keeps its runs, an old single-run report becomes
// the first run, and a missing file yields an empty trajectory.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		// An empty or whitespace-only file (e.g. `touch`ed by a CI cache)
		// is a fresh trajectory, not corruption.
		return &Trajectory{}, nil
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Runs != nil {
		// Schema 0 is a pre-versioning trajectory (implicit version 1):
		// its run shape is compatible, so it upgrades in place on write.
		if traj.Schema != 0 && traj.Schema != schemaVersion {
			return nil, fmt.Errorf("%s has trajectory schema version %d, this benchjson writes version %d: regenerate the file or use a matching benchjson",
				path, traj.Schema, schemaVersion)
		}
		return &traj, nil
	}
	var old Report
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("%s is neither a trajectory nor a single-run report: %w", path, err)
	}
	return &Trajectory{Runs: []Report{old}}, nil
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   100   12345 ns/op   1.5 speedup-x   7 allocs/op
//
// into a Result; the -N GOMAXPROCS suffix is stripped from the name.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iters: iters, Metrics: map[string]float64{}}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
