package zipr_test

// Delta-rewriting benchmarks (ISSUE 7 perf bar): BenchmarkRewriteDelta
// applies a placement snapshot to a >100k-instruction input with a
// 1-function edit and reports speedup-x against the cold full rewrite
// measured in the same process; BenchmarkRewriteDeltaCold is the
// denominator as its own BENCH_pipeline.json entry, so `make ci` can
// gate the ratio with benchjson -compare. BenchmarkServeDeltaHit
// measures the served path (ancestor lookup + apply + rebase) end to
// end.

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

// deltaStressProfile is the >100k-instruction delta benchmark input:
// big enough that a full rewrite pays real placement cost, and
// handwritten-free so the single edited function is delta-eligible.
func deltaStressProfile() (int64, synth.Profile) {
	return 0xDE15A, synth.Profile{
		Name: "dstress", NumFuncs: 12000, OpsMin: 5, OpsMax: 12,
		FuncPtrTableFrac: 0.3, DataWords: 2048, InputLen: 8, LoopIters: 4,
	}
}

var deltaStress struct {
	once         sync.Once
	base, edited []byte
	err          error
}

// deltaStressPair generates (once) the stress input and its 1-function
// constant edit.
func deltaStressPair(b *testing.B) (base, edited []byte) {
	b.Helper()
	deltaStress.once.Do(func() {
		seed, prof := deltaStressProfile()
		src := synth.Generate(seed, prof)
		msrc, n := synth.MutateConsts(src, 0xBE57, 1)
		if n != 1 {
			b.Fatal("stress profile has no mutable function")
		}
		for _, s := range []struct {
			src string
			dst *[]byte
		}{{src, &deltaStress.base}, {msrc, &deltaStress.edited}} {
			bin, err := asm.Assemble(s.src)
			if err != nil {
				deltaStress.err = err
				return
			}
			if *s.dst, err = bin.Marshal(); err != nil {
				deltaStress.err = err
				return
			}
		}
	})
	if deltaStress.err != nil {
		b.Fatal(deltaStress.err)
	}
	return deltaStress.base, deltaStress.edited
}

// BenchmarkRewriteDeltaCold is the from-scratch rewrite of the edited
// stress input: the denominator of the delta speedup, kept as its own
// entry so benchjson -compare can gate the ratio across runs.
func BenchmarkRewriteDeltaCold(b *testing.B) {
	_, edited := deltaStressPair(b)
	b.SetBytes(int64(len(edited)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := zipr.Rewrite(edited, zipr.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteDelta measures snapshot application: the ancestor's
// placement snapshot answers the 1-function edit. speedup-x is the
// in-process cold full rewrite over the per-iteration delta apply
// (acceptance floor: 5x).
func BenchmarkRewriteDelta(b *testing.B) {
	base, edited := deltaStressPair(b)
	_, rep, err := zipr.Rewrite(base, zipr.Config{CaptureSnapshot: true})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Snapshot == nil {
		b.Fatal("no snapshot captured for the stress input")
	}
	snap := rep.Snapshot

	start := time.Now()
	want, _, err := zipr.Rewrite(edited, zipr.Config{})
	coldNS := float64(time.Since(start).Nanoseconds())
	if err != nil {
		b.Fatal(err)
	}
	got, info, err := snap.Apply(edited)
	if err != nil {
		b.Fatalf("delta refused the stress edit: %v", err)
	}
	if !bytes.Equal(got, want) {
		b.Fatal("delta output diverges from the from-scratch rewrite")
	}
	if info.InstsChanged == 0 {
		b.Fatal("delta patched nothing")
	}

	b.SetBytes(int64(len(edited)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := snap.Apply(edited); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perIter > 0 {
		b.ReportMetric(coldNS/perIter, "speedup-x")
	}
}

// BenchmarkServeDeltaHit measures the served delta path end to end:
// ancestor candidate lookup, snapshot apply, rebase, and response copy.
// The output cache is disabled so every iteration exercises the delta
// machinery rather than degenerating into plain hits; the two edited
// variants alternate to keep the rebase path honest. speedup-x is the
// cold served miss over the per-iteration delta answer.
func BenchmarkServeDeltaHit(b *testing.B) {
	seed, prof := deltaStressProfile()
	src := synth.Generate(seed, prof)
	images := make([][]byte, 0, 3)
	variants := []string{src}
	for ms := int64(0); len(variants) < 3; ms++ {
		msrc, n := synth.MutateConsts(src, 0x5D17+ms, 1)
		if n != 1 {
			b.Fatal("no mutable function")
		}
		variants = append(variants, msrc)
	}
	for _, s := range variants {
		bin, err := asm.Assemble(s)
		if err != nil {
			b.Fatal(err)
		}
		img, err := bin.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		images = append(images, img)
	}
	s := serve.New(serve.Options{Workers: 1, CacheBytes: -1})
	defer s.Close()
	cfg := zipr.Config{}
	ctx := context.Background()

	start := time.Now()
	_, _, meta, err := s.RewriteMeta(ctx, images[0], cfg)
	coldNS := float64(time.Since(start).Nanoseconds())
	if err != nil || meta.Outcome != serve.OutcomeMiss {
		b.Fatalf("prime: outcome %s err %v", meta.Outcome, err)
	}

	b.SetBytes(int64(len(images[0])))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, meta, err := s.RewriteMeta(ctx, images[1+i%2], cfg)
		if err != nil {
			b.Fatal(err)
		}
		if meta.Outcome != serve.OutcomeDelta {
			b.Fatalf("iteration %d: outcome %s, want delta", i, meta.Outcome)
		}
	}
	b.StopTimer()
	perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if perIter > 0 {
		b.ReportMetric(coldNS/perIter, "speedup-x")
	}
}
