package obs

import (
	"math"
	"time"
)

// winSlices is how many time slices a rolling window is divided into:
// the quantile horizon covers the most recent winSlices slices, so the
// effective window ranges over (window - window/winSlices, window] as
// the current slice fills.
const winSlices = 8

// winHist is a time-sliced rolling histogram: a ring of winSlices
// pow2-bucket histograms, each covering one sliceDur-wide wall-clock
// slice, plus lifetime totals. Observations land in the slice the
// clock falls in; slices older than the window are lazily reset when
// their ring slot is reused and ignored when merging, so a quiet
// series costs nothing to age out. Not safe for concurrent use; the
// owning series' mutex serializes access.
type winHist struct {
	sliceDur time.Duration
	epochs   [winSlices]int64 // slice epoch + 1 per slot; 0 = empty
	slices   [winSlices]Hist
	life     Hist // lifetime totals (exposition _sum/_count)
}

func (w *winHist) init(window time.Duration) {
	w.sliceDur = window / winSlices
	if w.sliceDur <= 0 {
		w.sliceDur = time.Second
	}
}

// epoch numbers wall-clock slices since the Unix epoch.
func (w *winHist) epoch(now time.Time) int64 {
	return now.UnixNano() / int64(w.sliceDur)
}

// observe adds one value to the slice now falls in.
func (w *winHist) observe(now time.Time, v int64) {
	e := w.epoch(now)
	slot := int(e % winSlices)
	if w.epochs[slot] != e+1 {
		w.slices[slot] = Hist{}
		w.epochs[slot] = e + 1
	}
	w.slices[slot].Observe(v)
	w.life.Observe(v)
}

// merged folds the slices still inside the window (relative to now)
// into one histogram.
func (w *winHist) merged(now time.Time) Hist {
	if w.sliceDur <= 0 {
		return Hist{}
	}
	e := w.epoch(now)
	var out Hist
	for i := range w.slices {
		ep := w.epochs[i] - 1
		if w.epochs[i] != 0 && ep > e-winSlices && ep <= e {
			out.Merge(&w.slices[i])
		}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observed
// distribution. The estimate is deterministic: it finds the bucket
// holding the rank ceil(q*Count) and interpolates linearly between the
// bucket's inclusive bounds ([2^(i-1), 2^i - 1] for bucket i >= 2; the
// <=0 and ==1 buckets answer exactly). Returns 0 on an empty (or nil)
// histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			switch i {
			case 0:
				return 0
			case 1:
				return 1
			}
			lo := int64(1) << uint(i-1)
			hi := lo<<1 - 1
			return lo + int64(float64(hi-lo)*float64(rank-cum-1)/float64(c))
		}
		cum += c
	}
	return 0 // unreachable: Count > 0 implies a bucket holds the rank
}
