package serve

// Delta-serving tests: the snapshot ancestry answers edited inputs
// byte-identically to the pipeline (outcome "delta"), stale snapshots
// degrade to full rewrites (never a divergent binary), output-cache
// eviction does not destroy delta ancestry (separate byte budgets), and
// a SnapshotDB carries ancestry across Server instances.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/fault"
	"zipr/internal/irdb"
	"zipr/internal/obs"
	"zipr/internal/synth"
)

// deltaProfile is handwritten-free so every function unit is
// delta-eligible (embedded in-text data would overlap fixed ranges).
func deltaProfile() (int64, synth.Profile) {
	return 0xDE17A, synth.Profile{
		Name: "svd", NumFuncs: 12, OpsMin: 4, OpsMax: 10,
		DataWords: 32, InputLen: 4, LoopIters: 3,
	}
}

// deltaImages returns the base image and edited variants (1-function
// constant edits under distinct mutation seeds).
func deltaImages(t *testing.T, edits int) (base []byte, edited [][]byte) {
	t.Helper()
	seed, prof := deltaProfile()
	src := synth.Generate(seed, prof)
	build := func(s string) []byte {
		bin, err := asm.Assemble(s)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		img, err := bin.Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return img
	}
	base = build(src)
	seen := map[string]bool{src: true}
	for ms := int64(0); len(edited) < edits; ms++ {
		msrc, n := synth.MutateConsts(src, 0x70AD+ms, 1)
		if n != 1 || seen[msrc] {
			continue
		}
		seen[msrc] = true
		edited = append(edited, build(msrc))
	}
	return base, edited
}

func TestDeltaAnswersEditedInput(t *testing.T) {
	base, edited := deltaImages(t, 2)
	cfg := nullCfg()
	s := New(Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	if _, _, meta, err := s.RewriteMeta(ctx, base, cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("base: outcome %s err %v", meta.Outcome, err)
	}
	for i, ed := range edited {
		out, rep, meta, err := s.RewriteMeta(ctx, ed, cfg)
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if meta.Outcome != OutcomeDelta {
			t.Fatalf("edit %d: outcome %s, want delta", i, meta.Outcome)
		}
		want, wantRep, err := zipr.Rewrite(ed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("edit %d: delta answer diverges from pipeline output", i)
		}
		if rep.Stats != wantRep.Stats || rep.Layout != wantRep.Layout {
			t.Fatalf("edit %d: delta report diverges: %+v vs %+v", i, rep.Stats, wantRep.Stats)
		}
		// The delta answer lands in the output cache: an exact repeat is
		// a plain hit.
		if _, _, meta, err := s.RewriteMeta(ctx, ed, cfg); err != nil || meta.Outcome != OutcomeHit {
			t.Fatalf("edit %d repeat: outcome %s err %v", i, meta.Outcome, err)
		}
	}
	st := s.Stats()
	if st.DeltaHits != int64(len(edited)) {
		t.Fatalf("DeltaHits = %d, want %d", st.DeltaHits, len(edited))
	}
	if st.PipelineRuns != 1 {
		t.Fatalf("PipelineRuns = %d, want 1 (delta answers must not run the pipeline)", st.PipelineRuns)
	}
	if st.SnapEntries == 0 || st.SnapBytes == 0 {
		t.Fatalf("snapshot store empty after delta serving: %+v", st)
	}
}

// TestDeltaChainOfEdits: each delta answer is rebased into a new
// ancestor, so an edit of the edit still takes the delta path.
func TestDeltaChainOfEdits(t *testing.T) {
	seed, prof := deltaProfile()
	src := synth.Generate(seed, prof)
	cfg := nullCfg()
	s := New(Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	cur := src
	for step := 0; step < 3; step++ {
		bin, err := asm.Assemble(cur)
		if err != nil {
			t.Fatal(err)
		}
		img, err := bin.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		_, _, meta, err := s.RewriteMeta(ctx, img, cfg)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want := OutcomeDelta
		if step == 0 {
			want = OutcomeMiss
		}
		if meta.Outcome != want {
			t.Fatalf("step %d: outcome %s, want %s", step, meta.Outcome, want)
		}
		next, n := synth.MutateConsts(cur, int64(0xC4A1+step), 1)
		if n != 1 {
			t.Fatalf("step %d: no mutable function", step)
		}
		cur = next
	}
}

// TestDeltaStaleSnapshotDegrades is the chaos contract for the new
// fault kind: a snapshot whose digests mismatch must be detected,
// dropped, and the request must degrade to a full rewrite whose bytes
// match the pipeline — never a divergent binary.
func TestDeltaStaleSnapshotDegrades(t *testing.T) {
	base, edited := deltaImages(t, 12)
	cfg := nullCfg()
	cfg.Chaos = fault.NewArmed(7, fault.DeltaStaleSnapshot)
	s := New(Options{Workers: 2, Chaos: cfg.Chaos})
	defer s.Close()
	ctx := context.Background()

	if _, _, meta, err := s.RewriteMeta(ctx, base, cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("base: outcome %s err %v", meta.Outcome, err)
	}
	cleanCfg := nullCfg()
	sawStale := false
	for i, ed := range edited {
		out, _, meta, err := s.RewriteMeta(ctx, ed, cfg)
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if meta.Outcome != OutcomeDelta && meta.Outcome != OutcomeMiss {
			t.Fatalf("edit %d: outcome %s", i, meta.Outcome)
		}
		// Identity must hold under BOTH outcomes. The injector only
		// perturbs the serve layer, so the pipeline's own output (run
		// without chaos) is the reference.
		want, _, err := zipr.Rewrite(ed, cleanCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("edit %d (outcome %s): served bytes diverge", i, meta.Outcome)
		}
		if s.Stats().DeltaStale > 0 {
			sawStale = true
		}
	}
	if !sawStale {
		t.Fatal("fault never fired: DeltaStale stayed 0 over every edit (adjust seeds)")
	}
}

// TestEvictionThenDelta is the separate-budget satellite: flushing the
// output cache with unrelated large entries must not destroy delta
// ancestry — the next edited request still takes the delta path.
func TestEvictionThenDelta(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := nullCfg()
	// Output budget fits roughly one rewrite; snapshots get plenty.
	s := New(Options{Workers: 2, CacheBytes: 4 << 10, SnapshotBytes: 64 << 20})
	defer s.Close()
	ctx := context.Background()

	if _, _, meta, err := s.RewriteMeta(ctx, base, cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("base: outcome %s err %v", meta.Outcome, err)
	}
	// Unrelated traffic: rewrite the shared test images until base's
	// output entry is evicted.
	for i, img := range testImages(t) {
		if _, _, err := s.Rewrite(ctx, img, cfg); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("filler traffic evicted nothing (budget too large for the test): %+v", st)
	}
	if _, _, meta, err := s.RewriteMeta(ctx, base, cfg); err != nil || meta.Outcome == OutcomeHit {
		t.Fatalf("base should have been evicted from the output cache: outcome %s err %v", meta.Outcome, err)
	}
	out, _, meta, err := s.RewriteMeta(ctx, edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeDelta {
		t.Fatalf("after output eviction: outcome %s, want delta (ancestry must survive)", meta.Outcome)
	}
	want, _, err := zipr.Rewrite(edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("delta answer diverges after eviction")
	}
}

// TestSnapshotBudgetEviction: the snapshot store obeys its own budget.
func TestSnapshotBudgetEviction(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := nullCfg()
	// A budget too small for any snapshot disables ancestry silently.
	s := New(Options{Workers: 2, SnapshotBytes: 1 << 10})
	defer s.Close()
	ctx := context.Background()
	if _, _, _, err := s.RewriteMeta(ctx, base, cfg); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SnapEntries != 0 {
		t.Fatalf("oversized snapshot was stored: %+v", st)
	}
	if _, _, meta, err := s.RewriteMeta(ctx, edited[0], cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("edit without ancestry: outcome %s err %v", meta.Outcome, err)
	}
	// Negative budget disables the path entirely.
	s2 := New(Options{Workers: 2, SnapshotBytes: -1})
	defer s2.Close()
	if _, _, _, err := s2.RewriteMeta(ctx, base, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, meta, err := s2.RewriteMeta(ctx, edited[0], cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("delta disabled: outcome %s err %v", meta.Outcome, err)
	}
}

// TestSnapshotDBSharesAncestry: a second Server sharing the SnapshotDB
// answers an edited input by delta without ever having seen the base.
func TestSnapshotDBSharesAncestry(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := nullCfg()
	db := irdb.New()
	ctx := context.Background()

	s1 := New(Options{Workers: 2, SnapshotDB: db})
	if _, _, meta, err := s1.RewriteMeta(ctx, base, cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("base: outcome %s err %v", meta.Outcome, err)
	}
	s1.Close()

	s2 := New(Options{Workers: 2, SnapshotDB: db})
	defer s2.Close()
	out, _, meta, err := s2.RewriteMeta(ctx, edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeDelta {
		t.Fatalf("fresh server with shared DB: outcome %s, want delta", meta.Outcome)
	}
	want, _, err := zipr.Rewrite(edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("delta answer from persisted snapshot diverges")
	}
	rows, err := db.Lookup(snapTable, "anc", ancKeyOf(cfg, len(base)).dbKey())
	if err != nil || len(rows) == 0 {
		t.Fatalf("persistence table empty: %v", err)
	}
	if len(rows) > snapCandidates {
		t.Fatalf("persistence table holds %d rows per ancestor, cap is %d", len(rows), snapCandidates)
	}
}

// TestDeltaDisabledUnderPipelineChaos: an injector with pipeline kinds
// armed voids the snapshot determinism argument, so the delta path must
// not engage at all.
func TestDeltaDisabledUnderPipelineChaos(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := nullCfg()
	cfg.Chaos = fault.NewArmed(11, fault.DisasmDisagree)
	s := New(Options{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	if _, _, _, err := s.RewriteMeta(ctx, base, cfg); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SnapEntries != 0 {
		t.Fatalf("snapshot captured under pipeline chaos: %+v", st)
	}
	if _, _, meta, err := s.RewriteMeta(ctx, edited[0], cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("edit under pipeline chaos: outcome %s err %v", meta.Outcome, err)
	}
}

// TestDeltaOutcomeInMetrics: the new outcome label is registered
// eagerly, so a scrape sees serve_request_total{outcome="delta"} even
// before the first delta answer, and counts it afterwards.
func TestDeltaOutcomeInMetrics(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := nullCfg()
	reg := obs.NewRegistry()
	s := New(Options{Workers: 2, Registry: reg})
	defer s.Close()
	ctx := context.Background()

	found := func() (f obs.FamilySnap, ok bool) {
		for _, fam := range reg.Snapshot() {
			if fam.Name == "serve.request.total" {
				return fam, true
			}
		}
		return f, false
	}
	fam, ok := found()
	if !ok {
		t.Fatal("serve.request.total not registered")
	}
	deltaSeries := func(fam obs.FamilySnap) (int64, bool) {
		for _, se := range fam.Series {
			for _, v := range se.Labels {
				if v == OutcomeDelta {
					return se.Value, true
				}
			}
		}
		return 0, false
	}
	if v, ok := deltaSeries(fam); !ok || v != 0 {
		t.Fatalf("delta series not pre-registered at zero: %v %v", v, ok)
	}
	if _, _, _, err := s.RewriteMeta(ctx, base, cfg); err != nil {
		t.Fatal(err)
	}
	if _, _, meta, err := s.RewriteMeta(ctx, edited[0], cfg); err != nil || meta.Outcome != OutcomeDelta {
		t.Fatalf("outcome %s err %v", meta.Outcome, err)
	}
	fam, _ = found()
	if v, _ := deltaSeries(fam); v != 1 {
		t.Fatalf("serve.request.total{outcome=delta} = %d, want 1", v)
	}
	// And the Prometheus exposition renders it.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `outcome="delta"`) {
		t.Fatalf("exposition lacks the delta outcome:\n%s", firstLines(buf.String(), 20))
	}
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
