package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zipr/internal/asm"
	"zipr/internal/obs"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

func buildImage(t *testing.T) []byte {
	t.Helper()
	bin, err := synth.Build(0xD43D, synth.Profile{
		Name: "ziprdtest", NumFuncs: 8, OpsMin: 4, OpsMax: 10,
		HandwrittenFrac: 0.2, FuncPtrTableFrac: 0.3, DataWords: 32,
		InputLen: 4, LoopIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newTestDaemon(t *testing.T) *daemon {
	t.Helper()
	reg := obs.NewRegistry()
	s := serve.New(serve.Options{Workers: 2, Trace: obs.New(), Registry: reg})
	t.Cleanup(s.Close)
	return newDaemon(s, reg, 10*time.Second)
}

func TestHTTPRewriteHitAndMiss(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()
	img := buildImage(t)

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/rewrite?transforms=cfi", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	cold, coldBody := post()
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold POST: %d %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Zipr-Cache"); got != "miss" {
		t.Fatalf("cold X-Zipr-Cache = %q, want miss", got)
	}
	if cold.Header.Get("X-Zipr-Trace") == "" {
		t.Fatal("cold response missing generated X-Zipr-Trace")
	}
	hot, hotBody := post()
	if got := hot.Header.Get("X-Zipr-Cache"); got != "hit" {
		t.Fatalf("hot X-Zipr-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, hotBody) {
		t.Fatal("hit body differs from cold rewrite")
	}
	if len(coldBody) == 0 || bytes.Equal(coldBody, img) {
		t.Fatal("rewrite returned the input unchanged")
	}
}

// TestHTTPDeltaOutcome: an edited input sharing an ancestor with a
// prior request is answered from its placement snapshot — X-Zipr-Cache
// says "delta", the JSONL response sets delta, and the bytes match what
// a daemon that never saw the base produces from scratch.
func TestHTTPDeltaOutcome(t *testing.T) {
	src := synth.Generate(0xD43E, synth.Profile{
		Name: "ziprdelta", NumFuncs: 10, OpsMin: 4, OpsMax: 10,
		DataWords: 32, InputLen: 4, LoopIters: 3,
	})
	msrc, n := synth.MutateConsts(src, 0x5EED, 1)
	if n != 1 {
		t.Fatalf("mutated %d functions, want 1", n)
	}
	build := func(s string) []byte {
		bin, err := asm.Assemble(s)
		if err != nil {
			t.Fatal(err)
		}
		img, err := bin.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	base, edited := build(src), build(msrc)

	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()
	post := func(url string, img []byte) (*http.Response, []byte) {
		resp, err := http.Post(url+"/rewrite?transforms=cfi", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST: %d %s", resp.StatusCode, body)
		}
		return resp, body
	}
	if resp, _ := post(ts.URL, base); resp.Header.Get("X-Zipr-Cache") != "miss" {
		t.Fatalf("base X-Zipr-Cache = %q, want miss", resp.Header.Get("X-Zipr-Cache"))
	}
	resp, body := post(ts.URL, edited)
	if got := resp.Header.Get("X-Zipr-Cache"); got != "delta" {
		t.Fatalf("edited X-Zipr-Cache = %q, want delta", got)
	}

	// A daemon with no ancestry must produce the same bytes the hard way.
	fresh := newTestDaemon(t)
	ts2 := httptest.NewServer(newHandler(fresh))
	defer ts2.Close()
	resp2, want := post(ts2.URL, edited)
	if resp2.Header.Get("X-Zipr-Cache") != "miss" {
		t.Fatalf("fresh daemon X-Zipr-Cache = %q, want miss", resp2.Header.Get("X-Zipr-Cache"))
	}
	if !bytes.Equal(body, want) {
		t.Fatal("delta-served bytes diverge from a from-scratch rewrite")
	}

	// The batch wire shape carries the outcome too.
	var in, out bytes.Buffer
	enc := json.NewEncoder(&in)
	enc.Encode(request{ID: "a", Input: base, Transforms: "null"})
	enc.Encode(request{ID: "b", Input: edited, Transforms: "null"})
	if err := runBatch(d, &in, &out, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d batch responses, want 2", len(lines))
	}
	var rb response
	if err := json.Unmarshal([]byte(lines[1]), &rb); err != nil {
		t.Fatal(err)
	}
	if !rb.Delta || rb.Cached {
		t.Fatalf("batch response b = %+v, want delta=true cached=false", rb)
	}
}

func TestHTTPErrors(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed input: %d, want 400", resp.StatusCode)
	}
	// Error responses still carry the trace ID so failures are greppable.
	if resp.Header.Get("X-Zipr-Trace") == "" {
		t.Fatal("error response missing X-Zipr-Trace")
	}
	resp, err = http.Post(ts.URL+"/rewrite?transforms=bogus", "application/octet-stream", bytes.NewReader(buildImage(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown transform: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/rewrite?arbitration=bogus", "application/octet-stream", bytes.NewReader(buildImage(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown arbitration: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/rewrite")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rewrite: %d, want 405", resp.StatusCode)
	}
}

// TestHTTPArbitrationParam: the arbitration query parameter reaches the
// pipeline config — weighted and default answers come from different
// cache entries (the fingerprint folds |arb=weighted), and both modes
// rewrite successfully.
func TestHTTPArbitrationParam(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()
	img := buildImage(t)

	post := func(q string) *http.Response {
		resp, err := http.Post(ts.URL+"/rewrite"+q, "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post(""); resp.Header.Get("X-Zipr-Cache") != "miss" {
		t.Fatalf("default cold request: cache %q, want miss", resp.Header.Get("X-Zipr-Cache"))
	}
	// A weighted request must not be answered from the default entry.
	w := post("?arbitration=weighted")
	if w.StatusCode != http.StatusOK {
		t.Fatalf("weighted request: %d", w.StatusCode)
	}
	if got := w.Header.Get("X-Zipr-Cache"); got != "miss" {
		t.Fatalf("weighted cold request: cache %q, want miss", got)
	}
	// Explicit two-way IS the default entry.
	if resp := post("?arbitration=two-way"); resp.Header.Get("X-Zipr-Cache") != "hit" {
		t.Fatalf("explicit two-way: cache %q, want hit of the default entry", resp.Header.Get("X-Zipr-Cache"))
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	img := buildImage(t)
	for i := 0; i < 2; i++ {
		r, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.PipelineRuns != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 run, 1 hit, 1 miss", st)
	}
}

// TestStatsBackCompat pins the /stats wire shape: every pre-telemetry
// key must still be present under its original name, and the new
// Metrics array must carry the labeled snapshot with quantiles.
func TestStatsBackCompat(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()

	img := buildImage(t)
	for i := 0; i < 2; i++ {
		r, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"Hits", "Misses", "Evictions", "Corrupt", "Shared", "Rejected",
		"Expired", "PipelineRuns", "CacheEntries", "CacheBytes", "QueueDepth",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("/stats lost pre-telemetry key %q", key)
		}
	}
	// Occupancy keys for the snapshot index and the disk tier ride along
	// (present even when the daemon runs without a disk tier).
	for _, key := range []string{
		"SnapAncestors", "DiskHits", "DiskMisses", "DiskPromotes",
		"DiskCorrupt", "DiskRecovered", "DiskEntries", "DiskBytes",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("/stats missing occupancy key %q", key)
		}
	}
	var hits, misses int64
	json.Unmarshal(m["Hits"], &hits)
	json.Unmarshal(m["Misses"], &misses)
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}

	var fams []obs.FamilySnap
	if err := json.Unmarshal(m["Metrics"], &fams); err != nil {
		t.Fatalf("Metrics key missing or malformed: %v", err)
	}
	var sawTotal, sawLatency bool
	for _, fam := range fams {
		switch fam.Name {
		case "serve.request.total":
			sawTotal = true
			got := map[string]int64{}
			for _, se := range fam.Series {
				got[se.Labels[0]] = se.Value
			}
			if got["hit"] != 1 || got["miss"] != 1 {
				t.Fatalf("request.total = %v, want hit=1 miss=1", got)
			}
		case "serve.request.latency":
			sawLatency = true
			for _, se := range fam.Series {
				if se.Labels[0] == "miss" && (se.Count != 1 || se.P50 <= 0) {
					t.Fatalf("latency{miss} = %+v, want count 1 with quantiles", se)
				}
			}
		}
	}
	if !sawTotal || !sawLatency {
		t.Fatalf("Metrics missing labeled families (total=%v latency=%v)", sawTotal, sawLatency)
	}
}

// TestTraceRoundTrip: a caller-supplied X-Zipr-Trace ID must come back
// on the response header, appear in the access log line, and be
// findable in /debug/requests with the request's span tree.
func TestTraceRoundTrip(t *testing.T) {
	d := newTestDaemon(t)
	var logBuf bytes.Buffer
	d.logW = &logBuf
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()

	const traceID = "test-trace.0042"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/rewrite?transforms=cfi",
		bytes.NewReader(buildImage(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Zipr-Trace", traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rewrite: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Zipr-Trace"); got != traceID {
		t.Fatalf("response X-Zipr-Trace = %q, want %q", got, traceID)
	}

	// Access log: one JSONL line carrying the trace ID, digests, outcome
	// and a phase breakdown.
	d.logMu.Lock()
	logLine := strings.TrimSpace(logBuf.String())
	d.logMu.Unlock()
	var rec reqRecord
	if err := json.Unmarshal([]byte(logLine), &rec); err != nil {
		t.Fatalf("access log line %q: %v", logLine, err)
	}
	if rec.Trace != traceID {
		t.Fatalf("access log trace = %q, want %q", rec.Trace, traceID)
	}
	if rec.Outcome != serve.OutcomeMiss || rec.WallNS <= 0 {
		t.Fatalf("access log record = %+v, want miss with wall > 0", rec)
	}
	if len(rec.InputSHA) != 16 || len(rec.ConfigSHA) != 16 {
		t.Fatalf("access log digests = %q/%q, want 16 hex chars each", rec.InputSHA, rec.ConfigSHA)
	}
	if rec.Phases["rewrite"] <= 0 || rec.Phases["rewrite.disassemble"] <= 0 {
		t.Fatalf("access log phases = %v, want rewrite + disassemble walls", rec.Phases)
	}
	if len(rec.Spans) != 0 {
		t.Fatal("access log line must not embed span trees")
	}

	// /debug/requests: the sampled ring holds the span tree under the
	// same trace ID.
	resp, err = http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var ring []reqRecord
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, r := range ring {
		if r.Trace == traceID {
			if len(r.Spans) == 0 {
				t.Fatal("/debug/requests entry has no span events")
			}
			return
		}
	}
	t.Fatalf("trace %q not found in /debug/requests (%d entries)", traceID, len(ring))
}

// TestInvalidTraceIDReplaced: hostile or malformed trace IDs are not
// echoed back; the daemon mints a clean one instead.
func TestInvalidTraceIDReplaced(t *testing.T) {
	for _, bad := range []string{"no spaces", "inj\"ect", strings.Repeat("x", 65), "new\nline"} {
		got := normalizeTraceID(bad)
		if got == bad || len(got) != 16 {
			t.Errorf("normalizeTraceID(%q) = %q, want fresh 16-hex ID", bad, got)
		}
	}
	for _, good := range []string{"a", "trace-1", "A.b_c-9", strings.Repeat("y", 64)} {
		if got := normalizeTraceID(good); got != good {
			t.Errorf("normalizeTraceID(%q) = %q, want unchanged", good, got)
		}
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text exposition with
// the labeled request families, including the latency histogram by
// outcome the scrape recipe in EXPERIMENTS.md depends on.
func TestMetricsEndpoint(t *testing.T) {
	d := newTestDaemon(t)
	ts := httptest.NewServer(newHandler(d))
	defer ts.Close()

	img := buildImage(t)
	for i := 0; i < 2; i++ {
		r, err := http.Post(ts.URL+"/rewrite", "application/octet-stream", bytes.NewReader(img))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q, want %q", ct, obs.PromContentType)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE zipr_serve_request_total counter",
		`zipr_serve_request_total{outcome="hit"} 1`,
		`zipr_serve_request_total{outcome="miss"} 1`,
		"# TYPE zipr_serve_request_latency histogram",
		`zipr_serve_request_latency_bucket{outcome="miss",le="+Inf"} 1`,
		`zipr_serve_request_latency_count{outcome="miss"} 1`,
		"# TYPE zipr_serve_request_latency_p95 gauge",
		"# TYPE zipr_serve_pipeline_runs counter",
		"zipr_serve_pipeline_runs 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line must be "name{labels} value" with no
	// stray whitespace — a cheap exposition-format sanity pass (the
	// full validator lives in internal/obs).
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "zipr_") {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// pprof rides along on the same mux.
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/debug/phases")
	if err != nil {
		t.Fatal(err)
	}
	phases, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(phases), "rewrite") {
		t.Fatalf("/debug/phases missing aggregated rewrite span:\n%s", phases)
	}
}

// TestBatchOrderAndCaching: JSONL responses must come back in input
// order even with a concurrent worker pool, and repeats of one request
// must be answered without extra pipeline runs.
func TestBatchOrderAndCaching(t *testing.T) {
	d := newTestDaemon(t)
	img := buildImage(t)

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	const n = 12
	for i := 0; i < n; i++ {
		req := request{ID: fmt.Sprintf("r%02d", i), Input: img, Transforms: "cfi"}
		if i%3 == 1 {
			req.Transforms = "null"
		}
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := runBatch(d, &in, &out, 4); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var resps []response
	for sc.Scan() {
		var r response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line: %v", err)
		}
		resps = append(resps, r)
	}
	if len(resps) != n {
		t.Fatalf("%d responses, want %d", len(resps), n)
	}
	for i, r := range resps {
		if want := fmt.Sprintf("r%02d", i); r.ID != want {
			t.Fatalf("response %d has id %q, want %q (order broken)", i, r.ID, want)
		}
		if r.Error != "" {
			t.Fatalf("response %s failed: %s", r.ID, r.Error)
		}
		if len(r.Output) == 0 {
			t.Fatalf("response %s has no output", r.ID)
		}
	}
	// Two distinct configs over one image: exactly two pipeline runs.
	if st := d.s.Stats(); st.PipelineRuns != 2 {
		t.Fatalf("pipeline runs = %d, want 2 (stats %+v)", st.PipelineRuns, st)
	}
	// Identical requests must agree byte-for-byte.
	if !bytes.Equal(resps[0].Output, resps[3].Output) {
		t.Fatal("identical cfi requests returned different bytes")
	}
}

// TestBatchTraceIDs: batch lines carry per-line trace IDs — supplied
// ones echo back on the matching response, absent ones are minted —
// and each line lands in the access log.
func TestBatchTraceIDs(t *testing.T) {
	d := newTestDaemon(t)
	var logBuf bytes.Buffer
	d.logW = &logBuf
	img := buildImage(t)

	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	reqs := []request{
		{ID: "a", Trace: "batch-trace-a", Input: img, Transforms: "null"},
		{ID: "b", Input: img, Transforms: "null"},
	}
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := runBatch(d, &in, &out, 2); err != nil {
		t.Fatal(err)
	}
	var resps []response
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var r response
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		resps = append(resps, r)
	}
	if len(resps) != 2 {
		t.Fatalf("%d responses, want 2", len(resps))
	}
	if resps[0].Trace != "batch-trace-a" {
		t.Fatalf("response a trace = %q, want echo of supplied ID", resps[0].Trace)
	}
	if resps[1].Trace == "" || resps[1].Trace == resps[0].Trace {
		t.Fatalf("response b trace = %q, want a fresh generated ID", resps[1].Trace)
	}
	logText := logBuf.String()
	for _, want := range []string{"batch-trace-a", resps[1].Trace} {
		if !strings.Contains(logText, want) {
			t.Fatalf("access log missing trace %q:\n%s", want, logText)
		}
	}
}

func TestBatchBadLines(t *testing.T) {
	d := newTestDaemon(t)
	in := strings.NewReader("this is not json\n" +
		`{"id":"ok","input":"` + "AAAA" + `","transforms":"null"}` + "\n")
	var out bytes.Buffer
	if err := runBatch(d, in, &out, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d response lines, want 2", len(lines))
	}
	var r0, r1 response
	if err := json.Unmarshal([]byte(lines[0]), &r0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &r1); err != nil {
		t.Fatal(err)
	}
	if r0.Error == "" || r0.Class != "usage" {
		t.Fatalf("bad line response = %+v, want usage error", r0)
	}
	if r1.Error == "" || r1.Class != "format" {
		t.Fatalf("junk image response = %+v, want format error", r1)
	}
}
