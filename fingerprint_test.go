package zipr

// Config.Fingerprint is the rewrite-cache key's config half
// (internal/serve hashes it): it must render every byte-affecting
// field canonically and exclude everything that cannot change output
// bytes. These tests pin the exact strings, so an accidental format
// change (which would silently invalidate every cached entry) shows up
// as a diff here, not as a cold cache in production.

import (
	"strings"
	"testing"

	"zipr/internal/fault"
)

func TestFingerprintCanonicalStrings(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"zero config", Config{}, "cfg-v1|layout=optimized"},
		{"explicit optimized", Config{Layout: LayoutOptimized}, "cfg-v1|layout=optimized"},
		{"seed ignored outside diversity", Config{Seed: 42}, "cfg-v1|layout=optimized"},
		{"diversity folds seed", Config{Layout: LayoutDiversity, Seed: 42},
			"cfg-v1|layout=diversity|seed=42"},
		{"transform stack in order", Config{Transforms: []Transform{NopElide(), CFI()}},
			"cfg-v1|layout=optimized|t:nop-elide|t:cfi"},
		{"parametric transforms", Config{Transforms: []Transform{StackPad(32), Canary(0xA5)}},
			"cfg-v1|layout=optimized|t:stackpad{pad=32,minframe=0}|t:canary{value=0xa5}"},
		{"profile-guided hot set sorted unique",
			Config{Layout: LayoutProfileGuided, HotFuncs: []uint32{0x30, 0x10, 0x30, 0x20}},
			"cfg-v1|layout=profile-guided|hot=10,20,30,"},
		{"hot set ignored outside profile-guided",
			Config{HotFuncs: []uint32{0x10}}, "cfg-v1|layout=optimized"},
		{"two-way arbitration is the default and does not fold",
			Config{Arbitration: ArbitrationTwoWay}, "cfg-v1|layout=optimized"},
		{"weighted arbitration folds",
			Config{Arbitration: ArbitrationWeighted}, "cfg-v1|layout=optimized|arb=weighted"},
		{"weighted arbitration folds before transforms",
			Config{Arbitration: ArbitrationWeighted, Transforms: []Transform{CFI()}},
			"cfg-v1|layout=optimized|arb=weighted|t:cfi"},
	}
	for _, tt := range cases {
		if got := tt.cfg.Fingerprint(); got != tt.want {
			t.Errorf("%s: %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestFingerprintExcludesObservability(t *testing.T) {
	base := Config{Transforms: []Transform{CFI()}}
	noisy := base
	noisy.Trace = NewTrace()
	noisy.CaptureIR = true
	noisy.EmitMap = true
	if base.Fingerprint() != noisy.Fingerprint() {
		t.Fatalf("observability knobs changed the fingerprint:\n  %q\n  %q",
			base.Fingerprint(), noisy.Fingerprint())
	}
}

func TestFingerprintChaos(t *testing.T) {
	clean := Config{}
	if strings.Contains(clean.Fingerprint(), "chaos") {
		t.Fatalf("nil injector leaked into fingerprint: %q", clean.Fingerprint())
	}
	armed := Config{Chaos: fault.NewArmed(7, fault.CacheCorrupt)}
	if want := "cfg-v1|layout=optimized|chaos=7"; armed.Fingerprint() != want {
		t.Fatalf("armed fingerprint %q, want %q", armed.Fingerprint(), want)
	}
	// A seed-derived injector that armed nothing behaves as disabled and
	// must fingerprint identically to no injector at all.
	for seed := int64(0); seed < 64; seed++ {
		inj := NewFaultInjector(seed)
		if inj.Enabled() {
			continue
		}
		if got := (Config{Chaos: inj}).Fingerprint(); got != clean.Fingerprint() {
			t.Fatalf("disabled injector (seed %d) changed fingerprint: %q", seed, got)
		}
	}
}
