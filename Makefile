# Build/test entry points; `make ci` is the full local gate.
GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one iteration of the end-to-end rewrite benches with
# allocation reporting, enough to catch regressions in the nil-trace
# zero-overhead contract (compare NoTrace vs Traced allocs/op).
bench:
	$(GO) test -run '^$$' -bench 'RewriteNull|RewriteNoTrace|RewriteTraced' -benchtime 1x -benchmem .

ci: build vet race bench
