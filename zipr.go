// Package zipr is a static binary rewriter for ZVM-32/ZELF binaries,
// reproducing "Zipr: Efficient Static Binary Rewriting for Security"
// (Hawkins, Hiser, Co, Nguyen-Tuong, Davidson — DSN 2017). It rewrites
// programs and shared libraries without keeping a copy of the original
// code: the pipeline disassembles the input with two cooperating
// disassemblers, lifts it to a logical IR with conservative pinned-
// address analysis, applies mandatory and user transformations, and
// reassembles the result with the paper's reference/dollop/chain/sled
// algorithm under a pluggable layout strategy.
//
// Basic usage:
//
//	out, report, err := zipr.Rewrite(input, zipr.Config{
//	    Transforms: []zipr.Transform{zipr.CFI()},
//	})
//
// where input and out are serialized ZELF images.
package zipr

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"zipr/internal/binfmt"
	"zipr/internal/cfg"
	"zipr/internal/core"
	"zipr/internal/disasm"
	"zipr/internal/fault"
	"zipr/internal/ir"
	"zipr/internal/irdb"
	"zipr/internal/isa"
	"zipr/internal/layout"
	"zipr/internal/obs"
	"zipr/internal/par"
	"zipr/internal/transform"
	"zipr/internal/zerr"
)

// Trace is the observability handle threaded through a rewrite: it
// records hierarchical per-phase spans (wall clock plus heap deltas),
// counters and histograms, and emits them to configured sinks on Close.
// Construct with NewTrace; a nil *Trace disables all instrumentation at
// zero allocation cost.
type Trace = obs.Trace

// TraceSink consumes a finished trace (see NewJSONLSink/NewTableSink).
type TraceSink = obs.Sink

// NewTrace creates a trace emitting to the given sinks on Close.
func NewTrace(sinks ...TraceSink) *Trace { return obs.New(sinks...) }

// NewJSONLSink returns a trace sink writing one JSON object per span
// and metric to w (the -trace-out format; parse with obs.ReadJSONL).
func NewJSONLSink(w io.Writer) TraceSink { return obs.NewJSONL(w) }

// NewTableSink returns a trace sink printing a human-readable per-phase
// wall-time and memory-delta table to w (the -phase-times format).
func NewTableSink(w io.Writer) TraceSink { return obs.NewTable(w) }

// Error taxonomy: every error returned by Rewrite/RewriteBinary carries
// exactly one of these classes (test with errors.Is, or map to a short
// name with ErrorClass). The taxonomy backs the pipeline's fail-closed
// contract: a rewrite either returns a correct binary or one cleanly
// classified error — never a silently wrong binary.
var (
	// ErrFormat: the input image failed to parse or validate.
	ErrFormat = zerr.ErrFormat
	// ErrDisasm: disassembly failed.
	ErrDisasm = zerr.ErrDisasm
	// ErrCFG: IR construction failed.
	ErrCFG = zerr.ErrCFG
	// ErrTransform: a transform misused the IR API or produced an
	// invalid program.
	ErrTransform = zerr.ErrTransform
	// ErrLayout: reassembly could not produce a coherent layout.
	ErrLayout = zerr.ErrLayout
	// ErrExhausted: reassembly ran out of address space for a hard
	// constraint the overflow area cannot absorb.
	ErrExhausted = zerr.ErrExhausted
	// ErrLoad: the loader rejected a binary or its library set.
	ErrLoad = zerr.ErrLoad
	// ErrBusy: the serving layer (internal/serve, cmd/ziprd) refused
	// admission — queue full or deadline expired before a worker was
	// free. Transient: the same request can succeed on retry.
	ErrBusy = zerr.ErrBusy
	// ErrInjected marks errors caused by deliberate fault injection; it
	// is orthogonal to the classes above.
	ErrInjected = zerr.ErrInjected
)

// ErrorClass returns the short taxonomy name of err ("format",
// "disasm", "cfg", "transform", "exhausted", "layout", "load"), or ""
// when err carries no class.
func ErrorClass(err error) string { return zerr.ClassName(err) }

// FaultInjector deterministically injects faults into every pipeline
// phase; see Config.Chaos and internal/fault for the fault kinds.
type FaultInjector = fault.Injector

// NewFaultInjector returns a seed-derived fault schedule: different
// seeds arm different fault subsets at different sites, so sweeping
// seeds sweeps schedules. Pass it via Config.Chaos.
func NewFaultInjector(seed int64) *FaultInjector { return fault.New(seed) }

// Transform is a user-specified IR transformation. Construct instances
// with Null, CFI, StackPad or Canary, or implement the interface for
// custom transforms (see the internal/transform package for the API the
// built-ins use).
type Transform = transform.Transform

// Null returns the no-op transform: the rewritten binary is semantically
// identical to the original, so any measured difference is rewriting
// overhead (the paper's robustness baseline).
func Null() Transform { return transform.Null{} }

// CFI returns the control-flow-integrity transform: indirect jumps,
// indirect calls and returns are checked against a bitmap of legal
// targets; violations terminate the program.
func CFI() Transform { return transform.CFI{} }

// StackPad returns the frame-padding transform (the paper's Figure 2
// example): matched stack allocations grow by pad bytes.
func StackPad(pad int32) Transform { return transform.StackPad{Pad: pad} }

// Canary returns the stack-canary transform: protected functions verify
// a canary word before returning.
func Canary(value uint32) Transform { return transform.Canary{Value: value} }

// PinBlocks returns the ablation transform that pins every basic-block
// leader, approximating the paper's naïve "pin everything" baseline for
// measuring how pinned-address count degrades space efficiency.
func PinBlocks() Transform { return transform.PinBlocks{} }

// Stir returns the Binary-Stirring-style transform: fallthrough chains
// are broken at random (seeded) points so the layout can shuffle code at
// block granularity. Pair with LayoutDiversity.
func Stir(seed int64) Transform { return transform.Stir{Seed: seed} }

// NopElide returns the peephole transform that deletes no-op padding,
// demonstrating the instruction-removal half of the transform API.
func NopElide() Transform { return transform.NopElide{} }

// NewProfiler returns the function-entry profiling transform. After a
// rewrite the Counters field maps each original function entry to the
// data address of its 32-bit execution counter; run the instrumented
// binary on training inputs, read the counters out of the machine, and
// pass the hot entries as Config.HotFuncs under LayoutProfileGuided.
func NewProfiler() *transform.Profiler { return &transform.Profiler{} }

// hotRanges converts hot function entries into the original-address
// spans the profile-guided placer classifies hints against. With no hot
// entries it returns immediately — the common non-PGO configuration
// used to walk every instruction of every function for nothing. Extent
// computation is per-function independent, so large programs shard it
// across workers; results are collected per function index, keeping the
// output identical to the serial walk.
func hotRanges(prog *ir.Program, hotFuncs []uint32) []ir.Range {
	if len(hotFuncs) == 0 {
		return nil
	}
	hotSet := make(map[uint32]bool, len(hotFuncs))
	for _, a := range hotFuncs {
		hotSet[a] = true
	}
	arch := prog.ISA()
	extents := make([]ir.Range, len(prog.Functions))
	workers := par.ScaledWorkers(len(prog.Functions), 64)
	par.Chunks(workers, len(prog.Functions), func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			f := prog.Functions[fi]
			if f.Entry == nil || !hotSet[f.Entry.OrigAddr] {
				continue
			}
			r := ir.Range{Start: f.Entry.OrigAddr, End: f.Entry.OrigAddr + 1}
			for _, n := range f.Insts {
				if n.OrigAddr == 0 {
					continue
				}
				if n.OrigAddr < r.Start {
					r.Start = n.OrigAddr
				}
				if end := n.OrigAddr + uint32(arch.InstLen(n.Inst)); end > r.End {
					r.End = end
				}
			}
			extents[fi] = r
		}
	})
	var ranges []ir.Range
	for _, r := range extents {
		if r.End > r.Start {
			ranges = append(ranges, r)
		}
	}
	return ir.MergeRanges(ranges)
}

// LayoutKind selects the code-placement strategy (paper §III).
type LayoutKind string

// Layout strategies.
const (
	// LayoutOptimized places code back at pinned addresses and near its
	// referents, minimizing file-size and MaxRSS overhead (the CGC
	// configuration, and the default).
	LayoutOptimized LayoutKind = "optimized"
	// LayoutDiversity scatters code randomly (seeded) for code-layout
	// diversity.
	LayoutDiversity LayoutKind = "diversity"
	// LayoutProfileGuided packs the functions listed in Config.HotFuncs
	// densely and pushes cold code away, shrinking the working set of
	// profile-conforming runs. Collect profiles with NewProfiler.
	LayoutProfileGuided LayoutKind = "profile-guided"
)

// ArbitrationKind selects the disassembly code/data arbitration
// policy (see internal/disasm and internal/infer).
type ArbitrationKind string

// Arbitration policies.
const (
	// ArbitrationTwoWay aggregates the linear sweep and the recursive
	// traversal with the paper's conservative four-case policy (the
	// default; the empty string means the same).
	ArbitrationTwoWay ArbitrationKind = "two-way"
	// ArbitrationWeighted adds the Datalog-style inference disassembler
	// as a third vote: ambiguous candidates it confidently classifies
	// as data lose their conservative pins, shrinking sleds and output
	// size. Candidates below the inference thresholds keep the two-way
	// pin treatment, so rewrites stay transcript-safe.
	ArbitrationWeighted ArbitrationKind = "weighted"
)

// Config controls a rewrite.
type Config struct {
	// Transforms are applied in order after the mandatory transforms.
	Transforms []Transform
	// Layout selects the placement strategy; default LayoutOptimized.
	Layout LayoutKind
	// Arbitration selects the disassembly arbitration policy; default
	// ArbitrationTwoWay.
	Arbitration ArbitrationKind
	// ISA selects the instruction-set architecture the input is decoded
	// and re-encoded under: "zvm32" (the default; the empty string means
	// the same) or "zvm64" (fixed-width 4-byte encoding, ±1 MiB branch
	// reach, range-extension veneers instead of chains and sleds).
	ISA string
	// Seed drives LayoutDiversity's randomness.
	Seed int64
	// HotFuncs lists original function-entry addresses to treat as hot
	// under LayoutProfileGuided (e.g. functions whose profiler counters
	// crossed a threshold).
	HotFuncs []uint32
	// CaptureIR stores the constructed IR into Report.IRDB for
	// inspection with SQL.
	CaptureIR bool
	// EmitMap fills Report.AddrMap with the original-to-rewritten
	// address mapping of every relocated instruction (a linker-map
	// equivalent, useful for symbolization and debugging).
	EmitMap bool
	// CaptureSnapshot exports a placement snapshot of the rewrite into
	// Report.Snapshot: function-granular content digests plus per-
	// instruction placed addresses, enough for Snapshot.Apply to answer a
	// future rewrite of a locally edited input without running the
	// pipeline (see DESIGN.md §11). Capture is best-effort — Snapshot
	// stays nil when the configuration or input is outside the delta-
	// eligible class (unknown custom transforms, pipeline fault injection
	// armed) — and, like CaptureIR/EmitMap, never changes the output.
	// Only Rewrite completes the snapshot; RewriteBinary leaves it nil.
	CaptureSnapshot bool
	// Trace, when non-nil, records per-phase spans (disassembly, CFG and
	// pin analysis, each transform by name, the reassembly sub-phases)
	// plus counters and histograms for this rewrite. The caller owns the
	// trace: call Trace.Close to flush it to its sinks. A nil Trace
	// disables instrumentation with no allocation overhead.
	Trace *Trace
	// Chaos, when non-nil, threads deterministic fault injection through
	// every pipeline phase (see NewFaultInjector). Injected faults must
	// end in a transcript-equivalent binary (the degradation path
	// absorbed the fault) or a typed error — the chaos harness enforces
	// this invariant. Nil disables injection with no overhead.
	Chaos *FaultInjector
}

// TransformParams is implemented by transforms whose behavior depends
// on configuration beyond their name (padding widths, canary values,
// shuffle seeds). Config.Fingerprint folds Params() into the rewrite-
// cache key, so two transforms with equal Name and Params must rewrite
// identically; the parametrized built-ins (StackPad, Canary, Stir)
// implement it, and custom parametrized transforms should too — a
// transform that varies behavior without varying its fingerprint will
// alias other configurations' cache entries.
type TransformParams = transform.Parametric

// Fingerprint returns a canonical, human-readable description of every
// Config field that can change the rewritten bytes: the transform stack
// in application order (names plus TransformParams), the layout
// strategy, the layout seeds that matter under it, and the chaos
// schedule when fault injection is armed. Observability and capture
// settings (Trace, CaptureIR, EmitMap) are excluded — they never alter
// the output image.
//
// Equal fingerprints plus byte-identical inputs imply byte-identical
// outputs (the pipeline is deterministic), which is exactly the
// contract the internal/serve content-addressed cache keys on.
func (c Config) Fingerprint() string {
	var sb strings.Builder
	sb.WriteString("cfg-v1")
	layoutKind := c.Layout
	if layoutKind == "" {
		layoutKind = LayoutOptimized
	}
	fmt.Fprintf(&sb, "|layout=%s", layoutKind)
	if layoutKind == LayoutDiversity {
		// The seed only reaches the placer under the diversity layout;
		// folding it in unconditionally would split identical rewrites
		// across distinct cache keys.
		fmt.Fprintf(&sb, "|seed=%d", c.Seed)
	}
	if layoutKind == LayoutProfileGuided && len(c.HotFuncs) > 0 {
		// hotRanges treats HotFuncs as a set: order and duplicates are
		// behaviorally irrelevant, so canonicalize to sorted-unique.
		hot := append([]uint32(nil), c.HotFuncs...)
		sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
		sb.WriteString("|hot=")
		var last uint32
		for i, a := range hot {
			if i > 0 && a == last {
				continue
			}
			fmt.Fprintf(&sb, "%x,", a)
			last = a
		}
	}
	if c.Arbitration != "" && c.Arbitration != ArbitrationTwoWay {
		// Two-way is the default: folding it in explicitly would split
		// the default's cache entries. Any other mode changes which
		// addresses get pinned and therefore the output bytes.
		fmt.Fprintf(&sb, "|arb=%s", c.Arbitration)
	}
	if c.ISA != "" && c.ISA != "zvm32" {
		// Same default-elision rule: every pre-abstraction fingerprint was
		// produced under zvm32, and folding the default in would orphan
		// all existing cache entries and golden digests.
		fmt.Fprintf(&sb, "|isa=%s", c.ISA)
	}
	for _, t := range c.Transforms {
		fmt.Fprintf(&sb, "|t:%s", t.Name())
		if p, ok := t.(transform.Parametric); ok {
			fmt.Fprintf(&sb, "{%s}", p.Params())
		}
	}
	if c.Chaos.Enabled() {
		fmt.Fprintf(&sb, "|chaos=%d", c.Chaos.Seed())
	}
	return sb.String()
}

// Stats summarizes what the reassembler did; see the paper's §II-C for
// the vocabulary.
type Stats struct {
	Pinned       int // pinned addresses
	InlinePins   int // pins whose code went back in place
	Stubs5       int // unconstrained references
	Stubs2       int // constrained (chained) references
	Chains       int // chain slots
	Sleds        int // sleds for dense references
	SledEntries  int // pinned addresses covered by sleds
	Dollops      int // dollops placed
	Splits       int // dollop splits
	OverflowUsed int // bytes appended past the original text
	TextGrowth   int // rewritten minus original text bytes
	FreeLeft     int // unused bytes left inside the original text range
	Veneers      int // range-extension islands (fixed-width ISAs only)
}

// Report describes a completed rewrite.
type Report struct {
	Stats    Stats
	Layout   string   // placement strategy used
	Warnings []string // conservative-analysis diagnostics
	// InputSize and OutputSize are serialized file sizes (the CGC
	// file-size metric).
	InputSize, OutputSize int
	// IRDB holds the constructed IR when Config.CaptureIR is set; query
	// it with SQL (tables: instructions, functions, fixed_ranges,
	// warnings).
	IRDB *irdb.DB
	// AddrMap maps original instruction addresses to their rewritten
	// locations when Config.EmitMap is set.
	AddrMap map[uint32]uint32
	// Trace echoes Config.Trace so report consumers can snapshot the
	// phase spans and metrics of this rewrite; nil when tracing was off.
	Trace *Trace
	// Snapshot holds the placement snapshot when Config.CaptureSnapshot
	// is set and the rewrite was delta-eligible; nil otherwise.
	Snapshot *Snapshot
}

// Snapshot is a placement snapshot for incremental (delta) rewriting:
// it records the ancestor input/output images, per-function-unit content
// digests, and the placed address of every delta-eligible instruction.
// Snapshot.Apply answers a rewrite of a locally edited input byte-for-
// byte identically to a from-scratch rewrite — or refuses with
// ErrDeltaInapplicable/ErrSnapshotStale, in which case the caller runs
// the full pipeline (degradation costs latency, never correctness).
type Snapshot = core.Snapshot

// DeltaInfo reports what a Snapshot.Apply changed.
type DeltaInfo = core.DeltaInfo

// Delta errors (test with errors.Is).
var (
	// ErrDeltaInapplicable: the edit falls outside the snapshot's
	// supported class; fall back to a full rewrite.
	ErrDeltaInapplicable = core.ErrDeltaInapplicable
	// ErrSnapshotStale: the snapshot failed integrity verification;
	// evict it and fall back to a full rewrite.
	ErrSnapshotStale = core.ErrSnapshotStale
)

// snapshotSafeTransforms reports whether every transform in the stack is
// a built-in whose decisions are provably invariant under the delta
// path's free-immediate edits, and whether any of them reads stack-
// pointer adjustment immediates (StackPad/Canary — those instructions
// are then excluded from editing). Unknown custom transforms could read
// any immediate, so their presence disables snapshot capture entirely.
func snapshotSafeTransforms(transforms []Transform) (safe, frameSensitive bool) {
	for _, t := range transforms {
		switch t.(type) {
		case transform.StackPad, transform.Canary:
			frameSensitive = true
		case transform.Null, transform.CFI, transform.PinBlocks,
			transform.Stir, transform.NopElide, *transform.Profiler:
		default:
			return false, false
		}
	}
	return true, frameSensitive
}

// SizeOverhead returns the relative file growth (e.g. 0.03 = +3%).
func (r *Report) SizeOverhead() float64 {
	if r.InputSize == 0 {
		return 0
	}
	return float64(r.OutputSize-r.InputSize) / float64(r.InputSize)
}

// corruptImage returns a deterministically corrupted copy of a ZELF
// image. Both corruption modes are guaranteed-detectable by Unmarshal —
// a strict prefix starves a bounds-checked read (the format has no
// trailing padding), and the magic contains no zero byte — so injection
// can never smuggle a silently different program through the parser.
func corruptImage(inj *FaultInjector, input []byte) []byte {
	img := append([]byte(nil), input...)
	if inj.Pick(fault.SectionCorrupt, uint32(len(input)), 2) == 0 && len(img) > 1 {
		return img[:inj.Pick(fault.SectionCorrupt, uint32(len(input))^1, len(img))]
	}
	img[inj.Pick(fault.SectionCorrupt, uint32(len(input))^2, 4)] = 0
	return img
}

// Rewrite rewrites a serialized ZELF image and returns the rewritten
// image plus a report.
func Rewrite(input []byte, cfgv Config) ([]byte, *Report, error) {
	inj := cfgv.Chaos.WithTrace(cfgv.Trace)
	cfgv.Chaos = inj
	img := input
	injected := false
	if len(input) >= 4 && inj.Fires(fault.SectionCorrupt, uint32(len(input))) {
		// Corrupt a copy: the fail-closed contract promises the caller's
		// original bytes stay intact on every error path.
		img = corruptImage(inj, input)
		injected = true
	}
	bin, err := binfmt.Unmarshal(img)
	if err != nil {
		if injected {
			err = fmt.Errorf("%w (%w)", err, zerr.ErrInjected)
		}
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrFormat, err))
	}
	out, report, err := RewriteBinary(bin, cfgv)
	if err != nil {
		return nil, nil, err
	}
	data, err := out.Marshal()
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrLayout, err))
	}
	report.InputSize = len(input)
	report.OutputSize = len(data)
	if report.Snapshot != nil {
		// Attach the serialized images (verifying the recorded text
		// offsets against them); a snapshot that fails verification is
		// withheld rather than exported.
		// injected means the parsed image was a chaos-corrupted copy; a
		// snapshot of it would describe bytes the caller never sent.
		if injected || report.Snapshot.Finish(input, data) != nil {
			report.Snapshot = nil
		}
	}
	return data, report, nil
}

// RewriteBinary is Rewrite for in-memory binaries.
func RewriteBinary(bin *binfmt.Binary, cfgv Config) (*binfmt.Binary, *Report, error) {
	return rewriteBinaryPlacer(bin, cfgv, nil)
}

// rewriteBinaryPlacer is RewriteBinary with a placer-construction hook:
// when newPlacer is non-nil it overrides the Config.Layout selection.
// The hook exists for the byte-identity regression tests, which drive
// full rewrites with the legacy slice-scanning placers and compare the
// output against the indexed-allocator versions bit for bit.
func rewriteBinaryPlacer(bin *binfmt.Binary, cfgv Config, newPlacer func(*ir.Program) core.Placer) (*binfmt.Binary, *Report, error) {
	tr := cfgv.Trace
	inj := cfgv.Chaos.WithTrace(tr)
	root := tr.Start("rewrite")
	defer root.End()

	var arb disasm.Arbitration
	switch cfgv.Arbitration {
	case "", ArbitrationTwoWay:
		arb = disasm.ArbTwoWay
	case ArbitrationWeighted:
		arb = disasm.ArbWeighted
	default:
		return nil, nil, fmt.Errorf("zipr: %w: unknown arbitration %q", zerr.ErrDisasm, cfgv.Arbitration)
	}
	out, report, err := rewriteOnce(bin, cfgv, newPlacer, arb, tr, inj)
	if err != nil && arb == disasm.ArbWeighted {
		// Weighted arbitration is advisory: its demotions shrink the pin
		// set, and a downstream phase can fail on the reshaped inputs
		// (e.g. a deferred table sized for the smaller target set hits a
		// probe-bound cluster). The documented worst case of arbitration
		// is the two-way baseline, so fall back to it deterministically
		// rather than failing a rewrite the baseline can complete.
		ferr := err
		if out, report, err = rewriteOnce(bin, cfgv, newPlacer, disasm.ArbTwoWay, tr, inj); err == nil {
			tr.Add("rewrite.arb-fallback", 1)
			report.Warnings = append(report.Warnings,
				fmt.Sprintf("weighted arbitration fell back to two-way: %v", ferr))
		} else {
			err = ferr // report the weighted attempt's failure
		}
	}
	return out, report, err
}

// rewriteOnce runs the three-phase pipeline under one arbitration mode.
func rewriteOnce(bin *binfmt.Binary, cfgv Config, newPlacer func(*ir.Program) core.Placer, arb disasm.Arbitration, tr *Trace, inj *FaultInjector) (*binfmt.Binary, *Report, error) {
	arch, err := isa.ByName(cfgv.ISA)
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrDisasm, err))
	}
	// Phase 1: IR construction (disassembly, CFG, pinned addresses).
	sp := tr.Start("disassemble")
	agg, err := disasm.DisassembleOpts(bin, disasm.Options{Trace: tr, Inject: inj, Arbitration: arb, Arch: arch})
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrDisasm, err))
	}
	sp = tr.Start("cfg-pins")
	prog, err := cfg.BuildOpts(bin, agg, cfg.Options{Trace: tr, Inject: inj})
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrCFG, err))
	}
	report := &Report{Trace: tr}
	if cfgv.CaptureIR {
		sp = tr.Start("capture-ir")
		db := irdb.New()
		err := ir.SaveToDB(db, prog)
		sp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrCFG, err))
		}
		report.IRDB = db
	}

	// Phase 2: transformation (mandatory + user transforms).
	transforms := cfgv.Transforms
	if inj.Armed(fault.TransformMisuse) {
		// The misuse transform runs after the user's, abusing the same
		// API surface they had access to.
		transforms = append(append([]Transform(nil), transforms...), transform.Chaos{Inj: inj})
	}
	sp = tr.Start("transform")
	err = transform.ApplyTraced(prog, tr, transforms...)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrTransform, err))
	}

	// Phase 3: reassembly under the selected layout.
	var placer core.Placer
	if newPlacer != nil {
		placer = newPlacer(prog)
	} else {
		switch cfgv.Layout {
		case LayoutOptimized, "":
			placer = layout.Optimized{}
		case LayoutDiversity:
			placer = layout.NewDiversity(cfgv.Seed)
		case LayoutProfileGuided:
			placer = &layout.ProfileGuided{Hot: hotRanges(prog, cfgv.HotFuncs)}
		default:
			return nil, nil, fmt.Errorf("zipr: %w: unknown layout %q", zerr.ErrLayout, cfgv.Layout)
		}
	}
	sp = tr.Start("reassemble")
	res, err := core.Reassemble(prog, core.Options{Placer: placer, Trace: tr, Inject: inj})
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("zipr: %w", zerr.Tag(zerr.ErrLayout, err))
	}
	report.Stats = Stats(res.Stats)
	report.Layout = placer.Name()
	if cfgv.CaptureSnapshot && newPlacer == nil && !inj.ArmedPipeline() && isa.IsDefault(arch) {
		// Snapshot capture is best-effort: any ineligibility (custom
		// transforms, no text, pipeline chaos) just leaves Snapshot nil.
		if safe, frameSensitive := snapshotSafeTransforms(cfgv.Transforms); safe {
			sp = tr.Start("snapshot")
			snap, err := core.BuildSnapshot(prog, res, frameSensitive, cfgv.Fingerprint())
			sp.End()
			if err == nil {
				report.Snapshot = snap
			}
		}
	}
	if cfgv.EmitMap {
		report.AddrMap = make(map[uint32]uint32)
		for _, n := range prog.Insts {
			if n.OrigAddr == 0 {
				continue
			}
			if a, ok := res.Layout.AddrOf(n); ok {
				report.AddrMap[n.OrigAddr] = a
			}
		}
	}
	report.Warnings = append(report.Warnings, prog.Warnings...)
	report.InputSize = bin.FileSize()
	report.OutputSize = res.Binary.FileSize()
	if tr.Enabled() {
		tr.Add("rewrite.count", 1)
		tr.Add("rewrite.warnings", int64(len(report.Warnings)))
		tr.SetGauge("rewrite.input-bytes", int64(report.InputSize))
		tr.SetGauge("rewrite.output-bytes", int64(report.OutputSize))
	}
	return res.Binary, report, nil
}
