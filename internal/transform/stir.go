package transform

import (
	"fmt"
	"math/rand"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

// Stir realizes block-granularity code mixing in the spirit of Wartell
// et al.'s Binary Stirring, which the paper lists among the transforms
// applied with Zipr. The diversity layout already scatters *dollops*;
// Stir additionally breaks long fallthrough chains at random points by
// splicing in explicit jumps, so dollops become smaller and the placer
// has far more units to shuffle — finer-grained layout entropy at the
// cost of extra jump instructions.
//
// Combine with Config.Layout = LayoutDiversity for full effect; under
// the optimized layout the inserted jumps mostly cost a few bytes.
type Stir struct {
	// Seed drives the (deterministic) choice of split points.
	Seed int64
	// Chance is the per-instruction probability of ending the current
	// block, in percent (default 12, roughly basic-block granularity).
	Chance int
}

var _ Transform = Stir{}

// Name implements Transform.
func (Stir) Name() string { return "stir" }

// Params implements Parametric for the rewrite-cache fingerprint.
func (t Stir) Params() string {
	return fmt.Sprintf("seed=%d,chance=%d", t.Seed, t.Chance)
}

// Apply implements Transform.
func (t Stir) Apply(ctx *Context) error {
	chance := t.Chance
	if chance <= 0 {
		chance = 12
	}
	rng := rand.New(rand.NewSource(t.Seed ^ 0x5717))
	p := ctx.Prog
	// Snapshot: splicing extends p.Insts while we iterate.
	snapshot := append([]*ir.Instruction(nil), p.Insts...)
	for _, node := range snapshot {
		if node.Fallthrough == nil || node.Deleted {
			continue
		}
		if rng.Intn(100) >= chance {
			continue
		}
		// End the block here: an explicit jump to the logical
		// fallthrough turns the tail into its own dollop.
		next := node.Fallthrough
		j := p.NewInst(isa.Inst{Op: isa.OpJmp32})
		j.Target = next
		node.Fallthrough = j
	}
	return nil
}
