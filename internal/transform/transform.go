// Package transform implements the Transformation phase: mandatory
// transformations that decouple the IR from original addresses, and the
// user-transform API the paper describes — iterate functions and
// instructions, change/replace/remove instructions, insert new code —
// plus the security transforms used in the evaluation (Null, CFI,
// stack padding, canaries).
package transform

import (
	"fmt"

	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/obs"
)

// Transform is a user-specified transformation over the IR.
type Transform interface {
	// Name identifies the transform in logs and stats.
	Name() string
	// Apply mutates the program IR.
	Apply(ctx *Context) error
}

// Parametric is implemented by transforms whose behavior depends on
// configuration beyond their name (padding widths, canary values,
// shuffle seeds). Params returns a canonical rendering of that
// configuration; it feeds the rewrite-cache fingerprint, so two
// transforms with equal Name and Params must rewrite identically.
// Transforms without parameters need not implement it.
type Parametric interface {
	Params() string
}

// Context is the user-transform API: access to the program plus
// convenience iterators. All mutation goes through the ir.Program
// methods (InsertBefore/InsertAfter/NewInst/AllocData/Defer).
type Context struct {
	Prog *ir.Program
}

// Functions returns the program's function partition.
func (c *Context) Functions() []*ir.Function { return c.Prog.Functions }

// Instructions calls fn for every instruction present when iteration
// starts; instructions added during iteration are not visited.
func (c *Context) Instructions(fn func(*ir.Instruction)) {
	snapshot := append([]*ir.Instruction(nil), c.Prog.Insts...)
	for _, n := range snapshot {
		fn(n)
	}
}

// Apply runs the mandatory transformations followed by the given user
// transforms, in order.
func Apply(p *ir.Program, transforms ...Transform) error {
	return ApplyTraced(p, nil, transforms...)
}

// ApplyTraced is Apply with one span per transformation — "mandatory",
// then each user transform under its own name, then "normalize" — and
// per-transform instruction-delta counters emitted to tr; a nil trace
// disables instrumentation.
func ApplyTraced(p *ir.Program, tr *obs.Trace, transforms ...Transform) error {
	sp := tr.Start("mandatory")
	err := Mandatory(p)
	sp.End()
	if err != nil {
		return err
	}
	ctx := &Context{Prog: p}
	for _, t := range transforms {
		sp := tr.Start(t.Name())
		before := len(p.Insts)
		err := t.Apply(ctx)
		sp.End()
		if err != nil {
			return fmt.Errorf("transform %s: %w", t.Name(), err)
		}
		if tr.Enabled() {
			tr.Add("transform."+t.Name()+".insts-delta", int64(len(p.Insts)-before))
		}
	}
	sp = tr.Start("normalize")
	defer sp.End()
	if err := p.Normalize(); err != nil {
		return fmt.Errorf("transform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("transform: IR invalid after transforms: %w", err)
	}
	return nil
}

// Delete removes an instruction through the user-transform API;
// execution that would have reached it continues at its fallthrough
// (the removal is spliced out before reassembly).
func (c *Context) Delete(n *ir.Instruction) error { return c.Prog.Delete(n) }

// Mandatory performs the platform-mandated IR normalizations (paper
// §II-B1): every span-dependent short branch is widened to its long
// form so instructions can be placed anywhere in the address space; the
// layout algorithm is free to re-shorten references it controls.
func Mandatory(p *ir.Program) error {
	for _, n := range p.Insts {
		switch n.Inst.Op {
		case isa.OpJmp8:
			n.Inst.Op = isa.OpJmp32
		case isa.OpJcc8:
			n.Inst.Op = isa.OpJcc32
		}
	}
	return p.Validate()
}

// Null is the no-op transformation used throughout the paper's
// robustness evaluation: any behavioral or size change in a
// Null-transformed binary is overhead attributable to rewriting itself.
type Null struct{}

var _ Transform = Null{}

// Name implements Transform.
func (Null) Name() string { return "null" }

// Apply implements Transform: it does nothing.
func (Null) Apply(*Context) error { return nil }
