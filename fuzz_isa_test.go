package zipr

// Fixed-width form of the pipeline equivalence fuzzer: the same
// rewrite-then-execute property, driven through the ZVM-64 pipeline
// under the Null and CFI stacks. The fuzzer owns the program shape (a
// synth seed), the stack selector, the layout, and the program input;
// the invariant is unchanged — a rewritten binary's transcript must
// match the original's on every input, now with aligned placement,
// bounded-reach branches and veneer islands in the loop.
// `make fuzzsmoke` replays the seeds and fuzzes briefly in CI;
// `go test -fuzz FuzzZVMEquivalence .` explores open-endedly.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

func FuzzZVMEquivalence(f *testing.F) {
	// Three seeds spanning the stack/layout matrix: a plain null-stack
	// optimized rewrite, a CFI rewrite under the diversity layout, and a
	// table-heavy shape under CFI/optimized.
	f.Add(int64(3), false, byte(0), []byte{0, 1, 2, 3})
	f.Add(int64(11), true, byte(1), []byte{0xfe, 0x01, 0x80, 0x7f, 4, 4})
	f.Add(int64(29), true, byte(0), []byte{9, 0, 9, 0})
	f.Fuzz(func(t *testing.T, seed int64, withCFI bool, layoutSel byte, input []byte) {
		r := rand.New(rand.NewSource(seed))
		profile := synth.Profile{
			Name:             "fuzz64",
			NumFuncs:         4 + r.Intn(10),
			OpsMin:           2 + r.Intn(4),
			OpsMax:           8 + r.Intn(10),
			HandwrittenFrac:  r.Float64() * 0.6,
			FuncPtrTableFrac: r.Float64() * 0.5,
			DataWords:        16 + r.Intn(96),
			InputLen:         4 + r.Intn(12),
			LoopIters:        2 + r.Intn(6),
		}
		orig, err := synth.BuildArch(seed, profile, isa.ZVM64)
		if err != nil {
			t.Fatalf("synth: %v", err)
		}
		tfs := []Transform{Null()}
		if withCFI {
			tfs = []Transform{CFI()}
		}
		layouts := []LayoutKind{LayoutOptimized, LayoutDiversity}
		layout := layouts[int(layoutSel)%len(layouts)]

		rw, report, err := RewriteBinary(orig.Clone(), Config{
			Transforms: tfs,
			Layout:     layout,
			Seed:       seed,
			ISA:        "zvm64",
		})
		if err != nil {
			t.Fatalf("rewrite (cfi=%v, %s): %v", withCFI, layout, err)
		}

		in := make([]byte, profile.InputLen)
		copy(in, input)
		exec64 := func(b *binfmt.Binary) (vm.Result, error) {
			m := vm.New(vm.WithStdin(strings.NewReader(string(in))),
				vm.WithMaxSteps(5_000_000), vm.WithArch(isa.ZVM64))
			if err := loader.Load(m, b, nil); err != nil {
				t.Fatalf("load: %v", err)
			}
			return m.Run()
		}
		want, err1 := exec64(orig)
		got, err2 := exec64(rw)
		if err1 != nil {
			t.Fatalf("original faulted: %v", err1)
		}
		if err2 != nil {
			t.Fatalf("rewritten faulted (cfi=%v, %s, stats %+v): %v",
				withCFI, layout, report.Stats, err2)
		}
		if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
			t.Fatalf("diverged on input %x (cfi=%v, %s): exit %d/%d output %x/%x",
				in, withCFI, layout, want.ExitCode, got.ExitCode, want.Output, got.Output)
		}
	})
}
