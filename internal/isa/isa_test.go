package isa

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripTable(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
		len  int
	}{
		{"nop", Inst{Op: OpNop}, 1},
		{"hlt", Inst{Op: OpHlt}, 1},
		{"ret", Inst{Op: OpRet}, 1},
		{"syscall", Inst{Op: OpSyscall}, 1},
		{"push", Inst{Op: OpPush, Rd: 3}, 2},
		{"pop sp", Inst{Op: OpPop, Rd: SP}, 2},
		{"jmpr", Inst{Op: OpJmpR, Rd: 7}, 2},
		{"callr", Inst{Op: OpCallR, Rd: 0}, 2},
		{"inc", Inst{Op: OpInc, Rd: 9}, 2},
		{"dec", Inst{Op: OpDec, Rd: 9}, 2},
		{"not", Inst{Op: OpNot, Rd: 1}, 2},
		{"push8", Inst{Op: OpPushI8, Imm: -5}, 2},
		{"pushi", Inst{Op: OpPushI32, Imm: 0x12345678}, 5},
		{"jmp.s", Inst{Op: OpJmp8, Imm: -128}, 2},
		{"jmp", Inst{Op: OpJmp32, Imm: 1 << 20}, 5},
		{"call", Inst{Op: OpCall, Imm: -42}, 5},
		{"jz.s", Inst{Op: OpJcc8, Cc: CcZ, Imm: 127}, 2},
		{"jg", Inst{Op: OpJcc32, Cc: CcG, Imm: -100000}, 6},
		{"add", Inst{Op: OpAdd, Rd: 1, Rs: 2}, 3},
		{"cmp", Inst{Op: OpCmp, Rd: 14, Rs: 15}, 3},
		{"mov", Inst{Op: OpMov, Rd: 0, Rs: 15}, 3},
		{"addi8", Inst{Op: OpAddI8, Rd: 15, Imm: -4}, 3},
		{"shli", Inst{Op: OpShlI, Rd: 2, Imm: 5}, 3},
		{"movi", Inst{Op: OpMovI, Rd: 4, Imm: -1}, 6},
		{"cmpi", Inst{Op: OpCmpI, Rd: 4, Imm: 1000}, 6},
		{"lea", Inst{Op: OpLea, Rd: 6, Imm: 0x400}, 6},
		{"loadpc", Inst{Op: OpLoadPC, Rd: 6, Imm: -0x400}, 6},
		{"load", Inst{Op: OpLoad, Rd: 1, Rs: 2, Imm: 64}, 7},
		{"loadb", Inst{Op: OpLoadB, Rd: 1, Rs: 2, Imm: -1}, 7},
		{"store", Inst{Op: OpStore, Rd: 3, Rs: 4, Imm: 8}, 7},
		{"storeb", Inst{Op: OpStoreB, Rd: 3, Rs: 4, Imm: 0}, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := Encode(tt.in)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(b) != tt.len {
				t.Fatalf("encoded length = %d, want %d", len(b), tt.len)
			}
			if got := tt.in.Len(); got != tt.len {
				t.Fatalf("Len() = %d, want %d", got, tt.len)
			}
			out, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if out != tt.in {
				t.Fatalf("round trip: got %+v, want %+v", out, tt.in)
			}
		})
	}
}

func TestSledOpcodeBytes(t *testing.T) {
	// The paper's sled construction depends on these exact byte values.
	if b := MustEncode(Inst{Op: OpPushI32, Imm: 0}); b[0] != 0x68 {
		t.Errorf("pushi opcode = %#x, want 0x68", b[0])
	}
	if b := MustEncode(Inst{Op: OpNop}); b[0] != 0x90 {
		t.Errorf("nop opcode = %#x, want 0x90", b[0])
	}
	if b := MustEncode(Inst{Op: OpHlt}); b[0] != 0xf4 {
		t.Errorf("hlt opcode = %#x, want 0xf4", b[0])
	}
	// A run of 0x68s followed by four 0x90s decodes validly from every
	// 0x68 offset and re-synchronizes before the trailing byte.
	sled := []byte{0x68, 0x68, 0x68, 0x68, 0x90, 0x90, 0x90, 0x90, 0xf4}
	for entry := 0; entry < 4; entry++ {
		pc := entry
		for pc < len(sled)-1 {
			in, err := Decode(sled[pc:])
			if err != nil {
				t.Fatalf("entry %d: decode at %d: %v", entry, pc, err)
			}
			pc += in.Len()
		}
		if pc != len(sled)-1 {
			t.Errorf("entry %d: resynchronized at %d, want %d", entry, pc, len(sled)-1)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated movi", []byte{0xB8, 0x01}, ErrTruncated},
		{"truncated jcc32", []byte{0x0F}, ErrTruncated},
		{"bad opcode", []byte{0x00}, ErrBadOpcode},
		{"bad second byte", []byte{0x0F, 0x12, 0, 0, 0, 0}, ErrBadOpcode},
		{"bad cc32", []byte{0x0F, 0x81, 0, 0, 0, 0}, ErrBadCc},
		{"bad reg", []byte{0x51, 0x20}, ErrBadReg},
		{"bad mem reg", []byte{0x8B, 0x01, 0x99, 0, 0, 0, 0}, ErrBadReg},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.b); !errors.Is(err, tt.want) {
				t.Fatalf("Decode(% x) error = %v, want %v", tt.b, err, tt.want)
			}
		})
	}
}

func TestEncodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   Inst
	}{
		{"invalid op", Inst{Op: OpInvalid}},
		{"out of range op", Inst{Op: opMax}},
		{"bad reg", Inst{Op: OpPush, Rd: 16}},
		{"bad rs", Inst{Op: OpAdd, Rd: 0, Rs: 16}},
		{"imm8 overflow", Inst{Op: OpPushI8, Imm: 200}},
		{"rel8 overflow", Inst{Op: OpJmp8, Imm: -129}},
		{"bad cc", Inst{Op: OpJcc8, Cc: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Encode(tt.in); err == nil {
				t.Fatalf("Encode(%+v) succeeded, want error", tt.in)
			}
		})
	}
}

func TestBranchPredicates(t *testing.T) {
	tests := []struct {
		in                                   Inst
		branch, direct, indirect, call, fall bool
	}{
		{Inst{Op: OpNop}, false, false, false, false, true},
		{Inst{Op: OpJmp8}, true, true, false, false, false},
		{Inst{Op: OpJmp32}, true, true, false, false, false},
		{Inst{Op: OpJcc8, Cc: CcZ}, true, true, false, false, true},
		{Inst{Op: OpJcc32, Cc: CcZ}, true, true, false, false, true},
		{Inst{Op: OpCall}, true, true, false, true, true},
		{Inst{Op: OpCallR}, true, false, true, true, true},
		{Inst{Op: OpJmpR}, true, false, true, false, false},
		{Inst{Op: OpRet}, true, false, true, false, false},
		{Inst{Op: OpHlt}, false, false, false, false, false},
		{Inst{Op: OpAdd}, false, false, false, false, true},
	}
	for _, tt := range tests {
		in := tt.in
		if got := in.IsBranch(); got != tt.branch {
			t.Errorf("%s: IsBranch = %v, want %v", in.Op.Name(), got, tt.branch)
		}
		if got := in.IsDirectBranch(); got != tt.direct {
			t.Errorf("%s: IsDirectBranch = %v, want %v", in.Op.Name(), got, tt.direct)
		}
		if got := in.IsIndirectBranch(); got != tt.indirect {
			t.Errorf("%s: IsIndirectBranch = %v, want %v", in.Op.Name(), got, tt.indirect)
		}
		if got := in.IsCall(); got != tt.call {
			t.Errorf("%s: IsCall = %v, want %v", in.Op.Name(), got, tt.call)
		}
		if got := in.HasFallthrough(); got != tt.fall {
			t.Errorf("%s: HasFallthrough = %v, want %v", in.Op.Name(), got, tt.fall)
		}
	}
}

func TestTargetAddr(t *testing.T) {
	in := Inst{Op: OpJmp32, Imm: 0x10}
	got, ok := in.TargetAddr(0x1000)
	if !ok || got != 0x1000+5+0x10 {
		t.Fatalf("TargetAddr = %#x, %v; want %#x, true", got, ok, 0x1000+5+0x10)
	}
	in = Inst{Op: OpJmp8, Imm: -2} // self-branch
	got, ok = in.TargetAddr(0x1000)
	if !ok || got != 0x1000 {
		t.Fatalf("self jmp TargetAddr = %#x, %v; want 0x1000, true", got, ok)
	}
	if _, ok := (Inst{Op: OpRet}).TargetAddr(0); ok {
		t.Fatal("ret should have no static target")
	}
	if _, ok := (Inst{Op: OpLoad}).TargetAddr(0); ok {
		t.Fatal("load should have no static target")
	}
}

func TestCcNegate(t *testing.T) {
	pairs := [][2]Cc{{CcZ, CcNZ}, {CcL, CcGE}, {CcLE, CcG}, {CcB, CcAE}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("Negate(%s) != %s", CcName(p[0]), CcName(p[1]))
		}
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpPush, Rd: SP}, "push sp"},
		{Inst{Op: OpMovI, Rd: 2, Imm: 7}, "movi r2, 7"},
		{Inst{Op: OpJcc8, Cc: CcNZ, Imm: 4}, "jnz.s +4"},
		{Inst{Op: OpJcc32, Cc: CcGE, Imm: -4}, "jge -4"},
		{Inst{Op: OpLoad, Rd: 1, Rs: 2, Imm: 8}, "load r1, [r2+8]"},
		{Inst{Op: OpStore, Rd: 1, Rs: 2, Imm: -8}, "store [r1-8], r2"},
		{Inst{}, "(invalid)"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if !strings.Contains((Inst{Op: OpLea, Rd: 0, Imm: 16}).String(), "lea") {
		t.Error("lea String missing mnemonic")
	}
}

// randomInst produces a uniformly random *valid* instruction for
// property-based tests.
func randomInst(r *rand.Rand) Inst {
	ccs := []Cc{CcB, CcAE, CcZ, CcNZ, CcL, CcGE, CcLE, CcG}
	for {
		op := Op(1 + r.Intn(int(opMax)-1))
		if !op.Valid() {
			continue
		}
		in := Inst{
			Op:  op,
			Rd:  uint8(r.Intn(NumRegs)),
			Rs:  uint8(r.Intn(NumRegs)),
			Imm: int32(r.Uint32()),
		}
		switch opTable[op].form {
		case fNone:
			in.Rd, in.Rs, in.Imm = 0, 0, 0
		case fReg:
			in.Rs, in.Imm = 0, 0
		case fRegReg:
			in.Imm = 0
		case fImm8, fRel8:
			in.Rd, in.Rs = 0, 0
			in.Imm = int32(int8(in.Imm))
		case fRegImm8:
			in.Rs = 0
			in.Imm = int32(int8(in.Imm))
		case fImm32, fRel32:
			in.Rd, in.Rs = 0, 0
		case fRegImm32, fRegRel32:
			in.Rs = 0
		case fCc8:
			in.Cc = ccs[r.Intn(len(ccs))]
			in.Rd, in.Rs = 0, 0
			in.Imm = int32(int8(in.Imm))
		case fCc32:
			in.Cc = ccs[r.Intn(len(ccs))]
			in.Rd, in.Rs = 0, 0
		}
		return in
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			in := randomInst(r)
			b, err := Encode(in)
			if err != nil {
				t.Logf("encode %+v: %v", in, err)
				return false
			}
			out, err := Decode(b)
			if err != nil || out != in {
				t.Logf("round trip %+v -> % x -> %+v (%v)", in, b, out, err)
				return false
			}
			// Decoding with trailing garbage must give the same result.
			out2, err := Decode(append(append([]byte{}, b...), 0xAA, 0xBB))
			if err != nil || out2 != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanicsAndLenConsistent(t *testing.T) {
	f := func(raw []byte) bool {
		in, err := Decode(raw)
		if err != nil {
			return true
		}
		// A successful decode must re-encode to the identical bytes.
		enc, err := Encode(in)
		if err != nil {
			return false
		}
		return len(enc) == in.Len() && bytes.Equal(enc, raw[:len(enc)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeBytesUnique(t *testing.T) {
	seen := map[uint8]Op{}
	for op := Op(1); op < opMax; op++ {
		info := opTable[op]
		if info.form == 0 || info.form == fCc8 || info.form == fCc32 {
			continue
		}
		if prev, dup := seen[info.byte]; dup {
			t.Errorf("opcode byte %#x used by both %s and %s", info.byte, prev.Name(), op.Name())
		}
		seen[info.byte] = op
		if info.byte&0xF0 == 0x70 {
			t.Errorf("opcode byte %#x of %s collides with Jcc8 space", info.byte, op.Name())
		}
	}
}
