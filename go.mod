module zipr

go 1.22
