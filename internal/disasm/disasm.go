// Package disasm disassembles ZVM-32 binaries with two independent
// strategies — a linear sweep (objdump-like) and a recursive traversal
// (IDA-like) — and aggregates their output using the paper's four-case
// code/data disambiguation policy:
//
//  1. Both agree a byte range is code reached from known entries: the
//     range is relocatable code.
//  2. A range is conclusively data (it does not decode): it is fixed at
//     its original address.
//  3. A range is ambiguous (it decodes but is not provably reached):
//     it is treated as *both* code and data — the bytes stay fixed at
//     their original address and the decoded instructions are also fed
//     to CFG construction so their branch targets get pinned.
//  4. A range labeled code actually holds data: this cannot always be
//     detected; the aggregation stays conservative (case 3) whenever
//     there is any disagreement, and emits warnings to aid debugging.
//
// The two disassemblers are independent until aggregation, so the
// pipeline runs them concurrently by default (Options.Serial forces the
// back-to-back order for comparison); the merged Aggregated view is
// byte-identical either way because aggregation only starts after both
// have finished.
package disasm

import (
	"encoding/binary"
	"fmt"
	"sync"

	"zipr/internal/binfmt"
	"zipr/internal/fault"
	"zipr/internal/infer"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/obs"
)

// Class classifies one byte of the text segment.
type Class uint8

// Byte classifications.
const (
	Unknown Class = iota // not reached / not decoded
	Code                 // part of a provably reached instruction
	Data                 // conclusively data (does not decode)
	Ambig                // decodes, but not provably reached: code AND data
)

// Result is the output of a single disassembler.
type Result struct {
	// Insts maps instruction start addresses to decoded instructions.
	Insts *InstMap
	// Weak maps addresses decoded only from address-shaped hints (lea
	// targets, immediates that look like code pointers). Such bytes
	// might be data — a jump table is indistinguishable from code at a
	// lea target — so they are never relocated: the aggregator treats
	// them as code AND data (paper case 3), and CFG construction uses
	// their decodes only to pin targets conservatively.
	Weak *InstMap
	// Classes classifies every byte of text (indexed from text base).
	Classes []Class
}

// LinearSweep decodes text from its first byte onward, resynchronizing
// one byte at a time after undecodable bytes, the way objdump -D works.
func LinearSweep(text []byte, base uint32) Result {
	return LinearSweepArch(text, base, nil)
}

// LinearSweepArch is LinearSweep under an explicit ISA (nil means the
// default). Fixed-width ISAs resynchronize at the next aligned address
// instead of the next byte — misaligned starts can never be fetched.
func LinearSweepArch(text []byte, base uint32, arch isa.Arch) Result {
	res := Result{
		Insts:   NewInstMap(base, len(text)),
		Classes: make([]Class, len(text)),
	}
	linearSweepInto(&res, text, base, isa.Of(arch))
	return res
}

// linearSweepInto runs the sweep into pre-sized result buffers.
func linearSweepInto(res *Result, text []byte, base uint32, arch isa.Arch) {
	step := int(arch.Align())
	off := 0
	for off < len(text) {
		in, err := arch.Decode(text[off:], base+uint32(off))
		if err != nil {
			for i := 0; i < step && off+i < len(text); i++ {
				res.Classes[off+i] = Data
			}
			off += step
			continue
		}
		n := arch.InstLen(in)
		res.Insts.Put(base+uint32(off), in)
		for i := 0; i < n; i++ {
			res.Classes[off+i] = Code
		}
		off += n
	}
}

// visit flags for the recursive traversal, one byte per text offset.
const (
	visitedStrong uint8 = 1 << iota
	visitedWeak
)

// recState is the recursive traversal's working state: dense visited
// flags plus the two worklist tiers. It lives in the scratch pool.
type recState struct {
	visited      []uint8
	strong, weak []uint32
}

// RecursiveTraversal follows control flow from every known entry point.
// It distinguishes two tiers of confidence:
//
//   - Strong seeds — the program entry, exported symbols, and code
//     pointers discovered by scanning data segments — plus everything
//     reachable from them through fallthroughs and direct branches, are
//     relocatable code (Result.Insts).
//   - Weak seeds — lea targets and address-shaped absolute immediates —
//     plus their flow, are decoded into Result.Weak but NOT classified
//     as code: a lea may just as well name a jump table or other data
//     embedded in text, and mislabeling data as relocatable code is the
//     one unrecoverable failure mode (paper case 4). Weak bytes stay at
//     their original addresses.
func RecursiveTraversal(bin *binfmt.Binary) Result {
	text := bin.Text()
	res := Result{
		Insts:   NewInstMap(text.VAddr, len(text.Data)),
		Weak:    NewInstMap(text.VAddr, len(text.Data)),
		Classes: make([]Class, len(text.Data)),
	}
	st := &recState{visited: make([]uint8, len(text.Data))}
	recursiveInto(&res, bin, st, nil, isa.DefaultArch())
	return res
}

// recursiveInto runs the traversal into pre-sized result buffers. A
// non-nil injector with DisasmDisagree armed demotes seeded data-scan
// pointers from the strong tier to the weak tier: the functions they
// reach become "decode but are not provably reached", which downstream
// phases must handle with the paper's case-3 policy (bytes fixed in
// place, targets pinned via the ambiguous set).
func recursiveInto(res *Result, bin *binfmt.Binary, st *recState, inj *fault.Injector, arch isa.Arch) {
	text := bin.Text()
	inText := func(a uint32) bool { return text.Contains(a) }

	seedStrong := func(a uint32) {
		if inText(a) {
			st.strong = append(st.strong, a)
		}
	}
	seedWeak := func(a uint32) {
		if inText(a) {
			st.weak = append(st.weak, a)
		}
	}
	if bin.Type == binfmt.Exec {
		seedStrong(bin.Entry)
	}
	for _, e := range bin.Exports {
		seedStrong(e.Addr)
	}
	// Data scan: aligned words in data segments pointing into text are
	// function pointers and jump-table slots — strong, since indirect
	// control flow lands exactly on them.
	for si := range bin.Segments {
		seg := &bin.Segments[si]
		if seg.Kind != binfmt.Data {
			continue
		}
		for off := 0; off+4 <= len(seg.Data); off += 4 {
			v := binary.LittleEndian.Uint32(seg.Data[off:])
			if inText(v) && inj.Fires(fault.DisasmDisagree, v) {
				seedWeak(v) // injected disagreement: evidence downgraded
				continue
			}
			seedStrong(v)
		}
	}

	// visit decodes one address, recording flow into the given tier's
	// worklist; weak traversal never overrides strong coverage.
	step := func(addr uint32, isStrong bool) {
		off := addr - text.VAddr
		in, err := arch.Decode(text.Data[off:], addr)
		if err != nil {
			return // a supposed entry that does not decode: leave unknown
		}
		flow := seedWeak
		if isStrong {
			res.Insts.Put(addr, in)
			for i := 0; i < arch.InstLen(in); i++ {
				res.Classes[int(off)+i] = Code
			}
			flow = seedStrong
		} else {
			res.Weak.Put(addr, in)
		}
		if in.HasFallthrough() {
			flow(addr + uint32(arch.InstLen(in)))
		}
		if t, ok := arch.TargetAddr(in, addr); ok {
			switch in.Op {
			case isa.OpLea:
				seedWeak(t) // address formation: maybe code, maybe data
			case isa.OpLoadPC:
				// Data reference; not a code seed.
			default:
				flow(t)
			}
		}
		switch in.Op {
		case isa.OpMovI, isa.OpPushI32:
			seedWeak(uint32(in.Imm))
		}
	}
	for len(st.strong) > 0 {
		addr := st.strong[len(st.strong)-1]
		st.strong = st.strong[:len(st.strong)-1]
		if !inText(addr) {
			continue
		}
		off := addr - text.VAddr
		if st.visited[off]&visitedStrong != 0 {
			continue
		}
		st.visited[off] |= visitedStrong
		step(addr, true)
	}
	for len(st.weak) > 0 {
		addr := st.weak[len(st.weak)-1]
		st.weak = st.weak[:len(st.weak)-1]
		if !inText(addr) {
			continue
		}
		off := addr - text.VAddr
		if st.visited[off]&(visitedWeak|visitedStrong) != 0 {
			continue
		}
		st.visited[off] |= visitedWeak
		step(addr, false)
	}
}

// Aggregated is the merged, conservative view consumed by CFG
// construction.
type Aggregated struct {
	// Insts holds the relocatable instructions (recursive-traversal
	// coverage), keyed by original address.
	Insts *InstMap
	// AmbigInsts holds instructions decoded inside ambiguous (fixed)
	// ranges; CFG construction pins their direct branch targets.
	AmbigInsts *InstMap
	// Fixed lists text ranges whose bytes must stay at their original
	// addresses (conclusive data plus ambiguous ranges).
	Fixed []ir.Range
	// Classes is the final per-byte classification.
	Classes []Class
	// Warnings lists conservative-fallback diagnostics (the paper's
	// case-4 warnings), in ascending address order.
	Warnings []string
	// Demoted counts ambiguous candidates the weighted arbitration
	// reclassified as data (always 0 under two-way aggregation).
	Demoted int
	// Disputed counts demotions vetoed by infer-rule-disagree fault
	// injection (the candidate kept its conservative pin treatment).
	Disputed int
	// Arch is the ISA the binary was disassembled under; nil means the
	// default. CFG construction copies it into the Program.
	Arch isa.Arch

	// warnCands lists the linear-origin ambiguous direct branches, in
	// ascending order; finishAggregate turns the survivors into
	// Warnings after any arbitration pass has pruned the set.
	warnCands []uint32
}

// Aggregate merges the two disassemblers' views per the four-case
// policy. The dense instruction maps iterate in address order, so the
// ambiguous set and the warning list come out deterministic (the old
// hash-map walk emitted warnings in random order).
func Aggregate(bin *binfmt.Binary, linear, recursive Result) Aggregated {
	agg := aggregateCore(bin, linear, recursive, isa.DefaultArch())
	finishAggregate(&agg, bin)
	return agg
}

// aggregateCore builds the per-byte classification and the ambiguous
// instruction set. Fixed ranges and warnings are derived afterwards by
// finishAggregate, so an arbitration pass can prune the ambiguous set
// in between.
func aggregateCore(bin *binfmt.Binary, linear, recursive Result, arch isa.Arch) Aggregated {
	text := bin.Text()
	n := len(text.Data)
	agg := Aggregated{
		Insts:      recursive.Insts,
		AmbigInsts: NewInstMap(text.VAddr, n),
		Classes:    make([]Class, n),
		Arch:       arch,
	}
	// Case 1: recursive coverage is authoritative code.
	copy(agg.Classes, recursive.Classes)

	// Remaining bytes: ambiguous if the linear sweep decoded them,
	// conclusive data otherwise.
	for i := 0; i < n; i++ {
		if agg.Classes[i] == Code {
			continue
		}
		if linear.Classes[i] == Code {
			agg.Classes[i] = Ambig
		} else {
			agg.Classes[i] = Data
		}
	}
	// Instructions whose linear decode starts inside a non-code byte are
	// candidates for "both" handling (case 3).
	linear.Insts.All(func(addr uint32, in isa.Inst) bool {
		off := addr - text.VAddr
		if agg.Classes[off] == Ambig {
			agg.AmbigInsts.Put(addr, in)
			if in.IsDirectBranch() {
				agg.warnCands = append(agg.warnCands, addr)
			}
		}
		return true
	})
	// Weak recursive decodes (lea targets and address immediates) join
	// the ambiguous set: they are plausible entry-aligned decodes, so
	// CFG construction should pin their targets, but their bytes stay
	// fixed in place. They also upgrade their bytes to Ambig so fixed
	// ranges cover them even where the linear sweep misaligned.
	recursive.Weak.All(func(addr uint32, in isa.Inst) bool {
		off := addr - text.VAddr
		if agg.Classes[off] == Code {
			return true
		}
		agg.AmbigInsts.Put(addr, in)
		for i := 0; i < arch.InstLen(in) && int(off)+i < n; i++ {
			if agg.Classes[int(off)+i] != Code {
				agg.Classes[int(off)+i] = Ambig
			}
		}
		return true
	})
	return agg
}

// finishAggregate derives the outputs that depend on the final
// ambiguous set: the case-4 warnings (ascending order, survivors of
// any arbitration pruning) and the fixed ranges (maximal runs of
// Data/Ambig bytes).
func finishAggregate(agg *Aggregated, bin *binfmt.Binary) {
	text := bin.Text()
	n := len(text.Data)
	for _, addr := range agg.warnCands {
		in, ok := agg.AmbigInsts.Get(addr)
		if !ok {
			continue // demoted by arbitration
		}
		agg.Warnings = append(agg.Warnings, fmt.Sprintf(
			"disasm: ambiguous bytes at %#x decode to %s; treating as code and data",
			addr, in.String()))
	}
	var fixed []ir.Range
	i := 0
	for i < n {
		if agg.Classes[i] == Code {
			i++
			continue
		}
		j := i
		for j < n && agg.Classes[j] != Code {
			j++
		}
		fixed = append(fixed, ir.Range{
			Start: text.VAddr + uint32(i),
			End:   text.VAddr + uint32(j),
		})
		i = j
	}
	agg.Fixed = ir.MergeRanges(fixed)
}

// applyArbitration is the weighted three-way vote. The linear sweep
// and the recursive traversal have already produced the conservative
// two-way view in agg; the inference result res casts the third vote.
// Arbitration is demote-only by construction: an ambiguous candidate
// whose inference verdict is confidently-data is dropped from the
// ambiguous set and its bytes (where no surviving candidate still
// covers them) become conclusive Data — removing the conservative pins
// its branch targets and address-shaped immediates would have forced.
// Candidates below threshold, or with any code belief, keep the
// conservative case-3 treatment, and no byte is ever promoted to
// relocatable Code, so fixed ranges cannot shrink and the in-place
// execution story of every kept byte is unchanged. An armed
// InferRuleDisagree injector vetoes individual demotions (site = the
// candidate's address): the worst case of every veto firing is exactly
// the two-way baseline.
func applyArbitration(agg *Aggregated, bin *binfmt.Binary, res *infer.Result, inj *fault.Injector) {
	text := bin.Text()
	n := len(text.Data)
	const (
		coverKept uint8 = 1 << iota
		coverDemoted
	)
	arch := isa.Of(agg.Arch)
	cover := make([]uint8, n)
	var demote []uint32
	agg.AmbigInsts.All(func(addr uint32, in isa.Inst) bool {
		off := int(addr - text.VAddr)
		verdict, _ := res.Verdict(addr, arch.InstLen(in))
		bit := coverKept
		if verdict == infer.VerdictData {
			if inj.Fires(fault.InferRuleDisagree, addr) {
				// Injected rule disagreement: the demotion is vetoed and
				// the candidate keeps its conservative pin treatment.
				agg.Disputed++
			} else {
				demote = append(demote, addr)
				bit = coverDemoted
			}
		}
		for i := 0; i < arch.InstLen(in) && off+i < n; i++ {
			cover[off+i] |= bit
		}
		return true
	})
	for _, addr := range demote {
		agg.AmbigInsts.Delete(addr)
	}
	agg.Demoted = len(demote)
	for i := 0; i < n; i++ {
		if agg.Classes[i] == Ambig && cover[i]&coverDemoted != 0 && cover[i]&coverKept == 0 {
			agg.Classes[i] = Data
		}
	}
}

// scratch holds the per-disassembly buffers that do not survive into
// the Aggregated result: the whole linear-sweep view, the weak tier,
// the recursive class array, and the traversal state. Pooling them
// keeps the hot rewrite path on a handful of allocations per binary.
type scratch struct {
	linear Result
	rec    recState
	weak   *InstMap
	recCls []Class
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			linear: Result{Insts: &InstMap{}},
			weak:   &InstMap{},
		}
	},
}

// grow reslices b to n bytes, reallocating only when the pooled backing
// array is too small.
func grow[T Class | uint8](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// Arbitration selects the code/data disambiguation policy.
type Arbitration uint8

// Arbitration policies.
const (
	// ArbTwoWay is the paper's four-case policy over the linear sweep
	// and the recursive traversal (the default): every decodable but
	// unproven byte stays ambiguous and its targets get pinned.
	ArbTwoWay Arbitration = iota
	// ArbWeighted adds the inference disassembler (internal/infer) as a
	// third vote: ambiguous candidates it confidently classifies as
	// data are demoted — dropped from the ambiguous set so their pins
	// disappear — while everything below its thresholds keeps the
	// conservative two-way treatment.
	ArbWeighted
)

// Options configures a disassembly run.
type Options struct {
	// Serial forces the disassemblers to run back-to-back on the
	// calling goroutine instead of concurrently. The output is identical
	// either way; the knob exists for benchmarking and debugging.
	Serial bool
	// Arbitration selects two-way (default) or weighted three-way
	// disambiguation.
	Arbitration Arbitration
	// Trace receives per-stage spans and classification metrics; nil
	// disables instrumentation.
	Trace *obs.Trace
	// Inject enables deterministic fault injection (disassembler
	// disagreement, truncated linear decode, vetoed inference
	// demotions); nil disables it.
	Inject *fault.Injector
	// Arch selects the ISA to disassemble under; nil means the default
	// (ZVM-32). All three disassemblers and the aggregation use it.
	Arch isa.Arch
}

// Disassemble runs both disassemblers on bin and aggregates the result.
func Disassemble(bin *binfmt.Binary) (Aggregated, error) {
	return DisassembleOpts(bin, Options{})
}

// DisassembleTraced is Disassemble with per-stage spans (linear sweep,
// recursive traversal, code/data disambiguation) and classification
// metrics emitted to tr; a nil trace disables instrumentation.
func DisassembleTraced(bin *binfmt.Binary, tr *obs.Trace) (Aggregated, error) {
	return DisassembleOpts(bin, Options{Trace: tr})
}

// DisassembleOpts runs the two disassemblers — concurrently unless
// opts.Serial — and aggregates their views. Both modes produce the same
// Aggregated value: the disassemblers share no state, and aggregation
// begins only after both complete.
func DisassembleOpts(bin *binfmt.Binary, opts Options) (Aggregated, error) {
	tr := opts.Trace
	arch := isa.Of(opts.Arch)
	text := bin.Text()
	if text == nil {
		return Aggregated{}, fmt.Errorf("disasm: binary has no text segment")
	}
	n := len(text.Data)

	sc := scratchPool.Get().(*scratch)
	sc.linear.Insts.reset(text.VAddr, n)
	sc.linear.Classes = grow(sc.linear.Classes, n)
	sc.weak.reset(text.VAddr, n)
	sc.recCls = grow(sc.recCls, n)
	sc.rec.visited = grow(sc.rec.visited, n)
	sc.rec.strong = sc.rec.strong[:0]
	sc.rec.weak = sc.rec.weak[:0]

	lin := sc.linear
	// The recursive result's strong instructions become Aggregated.Insts
	// and escape to the caller, so that map is always freshly allocated;
	// the weak tier and class array are pooled scratch.
	rec := Result{
		Insts:   NewInstMap(text.VAddr, n),
		Weak:    sc.weak,
		Classes: sc.recCls,
	}

	// The inference disassembler is the third, independent vote under
	// weighted arbitration; it shares no state with the other two, so
	// the concurrent mode runs all three in parallel.
	var inf *infer.Result

	if opts.Serial {
		sp := tr.Start("linear-sweep")
		linearSweepInto(&lin, text.Data, text.VAddr, arch)
		sp.End()
		sp = tr.Start("recursive-traversal")
		recursiveInto(&rec, bin, &sc.rec, opts.Inject, arch)
		sp.End()
		if opts.Arbitration == ArbWeighted {
			sp = tr.Start("inference")
			inf = infer.AnalyzeArch(bin, arch)
			sp.End()
		}
	} else {
		// The spans are created detached on this goroutine — in a
		// deterministic order, attached under the currently open phase —
		// and ended by the workers (obs documents this as the
		// concurrent-span pattern).
		linSp := tr.StartDetached("linear-sweep")
		recSp := tr.StartDetached("recursive-traversal")
		var infSp *obs.Span
		if opts.Arbitration == ArbWeighted {
			infSp = tr.StartDetached("inference")
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			linearSweepInto(&lin, text.Data, text.VAddr, arch)
			linSp.End()
		}()
		if opts.Arbitration == ArbWeighted {
			wg.Add(1)
			go func() {
				defer wg.Done()
				inf = infer.AnalyzeArch(bin, arch)
				infSp.End()
			}()
		}
		recursiveInto(&rec, bin, &sc.rec, opts.Inject, arch)
		recSp.End()
		wg.Wait()
	}

	// Injected truncation: the linear sweep "stops decoding" at a seeded
	// cut point, as if the sweep hit an undecodable tail. Bytes past the
	// cut lose their linear Code claim (their decoded instructions are
	// kept out of the ambiguous set by the class check in Aggregate), so
	// recursive coverage alone decides — a strict reduction in evidence
	// that aggregation must absorb conservatively.
	if inj := opts.Inject; inj.Armed(fault.DisasmTruncate) && n > 0 &&
		inj.Fires(fault.DisasmTruncate, text.VAddr) {
		cut := inj.Pick(fault.DisasmTruncate, text.VAddr, n)
		for off := cut; off < n; off++ {
			if lin.Classes[off] == Code {
				lin.Classes[off] = Data
			}
		}
	}

	sp := tr.Start("disambiguate")
	agg := aggregateCore(bin, lin, rec, arch)
	if opts.Arbitration == ArbWeighted && inf != nil {
		applyArbitration(&agg, bin, inf, opts.Inject)
	}
	finishAggregate(&agg, bin)
	sp.End()
	scratchPool.Put(sc)
	if tr.Enabled() && inf != nil {
		st := inf.Stats()
		tr.SetGauge("infer.candidates", int64(st.Candidates))
		tr.SetGauge("infer.strong-starts", int64(st.StrongStarts))
		tr.SetGauge("infer.fact-bytes", int64(st.FactBytes))
		tr.SetGauge("infer.nonviable", int64(st.Nonviable))
		tr.SetGauge("infer.raised", int64(st.Raised))
		tr.SetGauge("infer.iterations", int64(st.Iterations))
		tr.Add("disasm.arb.demoted", int64(agg.Demoted))
		tr.Add("disasm.arb.disputed", int64(agg.Disputed))
	}
	if tr.Enabled() {
		var code, data, ambig int64
		for _, c := range agg.Classes {
			switch c {
			case Code:
				code++
			case Data:
				data++
			case Ambig:
				ambig++
			}
		}
		tr.SetGauge("disasm.bytes.code", code)
		tr.SetGauge("disasm.bytes.data", data)
		tr.SetGauge("disasm.bytes.ambiguous", ambig)
		tr.Add("disasm.insts", int64(agg.Insts.Len()))
		tr.Add("disasm.ambig-insts", int64(agg.AmbigInsts.Len()))
		tr.Add("disasm.fixed-ranges", int64(len(agg.Fixed)))
		tr.Add("disasm.warnings", int64(len(agg.Warnings)))
	}
	return agg, nil
}
