package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Agg accumulates per-phase totals across one or more trace snapshots —
// a whole corpus of rewrites — so timing tables can be regenerated from
// structured data instead of ad-hoc stopwatches. Same-named spans at
// the same tree position fold together (count, wall and memory deltas
// sum); metrics merge per Metrics.Merge. All methods are safe for
// concurrent use, so corpus worker pools can fold their per-rewrite
// traces into one shared aggregate.
type Agg struct {
	mu   sync.Mutex
	runs int
	root *aggNode
	met  *Metrics
}

// aggNode is one folded phase in the aggregate tree.
type aggNode struct {
	name   string
	count  int64
	wall   time.Duration
	allocs uint64
	bytes  uint64
	heap   int64
	order  []string
	kids   map[string]*aggNode
}

func newAggNode(name string) *aggNode {
	return &aggNode{name: name, kids: make(map[string]*aggNode)}
}

func (n *aggNode) child(name string) *aggNode {
	k := n.kids[name]
	if k == nil {
		k = newAggNode(name)
		n.kids[name] = k
		n.order = append(n.order, name)
	}
	return k
}

// NewAgg creates an empty aggregator.
func NewAgg() *Agg {
	return &Agg{root: newAggNode(""), met: NewMetrics()}
}

// Runs returns how many snapshots have been folded in.
func (a *Agg) Runs() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.runs
}

// Metrics returns the merged metric families. The returned store is
// shared: read it only after all folding has finished.
func (a *Agg) Metrics() *Metrics { return a.met }

// Add folds a snapshot into the aggregate.
func (a *Agg) Add(snap *Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.fold(a.root, snap.Spans)
	a.met.Merge(snap.Metrics)
}

// AddTrace snapshots t (closing nothing) and folds it in. Nil traces
// are ignored.
func (a *Agg) AddTrace(t *Trace) {
	if t == nil {
		return
	}
	a.Add(t.Snapshot())
}

func (a *Agg) fold(into *aggNode, spans []*Span) {
	for _, s := range spans {
		k := into.child(s.Name)
		k.count += s.Count
		k.wall += s.Wall
		k.allocs += s.Allocs
		k.bytes += s.Bytes
		k.heap += s.HeapLive
		a.fold(k, s.Children)
	}
}

// WriteTable renders the aggregated phase-time table followed by the
// merged counters, gauges and histograms.
func (a *Agg) WriteTable(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	fmt.Fprintf(w, "%-38s %7s %11s %11s %11s %11s\n",
		"phase", "count", "wall", "allocs", "bytes", "live-heap")
	var walk func(n *aggNode, depth int) // declaration split for recursion
	walk = func(n *aggNode, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(w, "%-38s %7d %11s %11d %11s %11s\n",
			indent+n.name, n.count, fmtWall(n.wall), n.allocs,
			humanBytes(n.bytes), humanBytesSigned(n.heap))
		for _, name := range n.order {
			walk(n.kids[name], depth+1)
		}
	}
	for _, name := range a.root.order {
		walk(a.root.kids[name], 0)
	}
	if a.runs > 1 {
		fmt.Fprintf(w, "(aggregated over %d runs)\n", a.runs)
	}

	// Metric names may carry label suffixes ("serve.request.total
	// {outcome=hit}") longer than any fixed column, so the name column
	// is sized to the longest name in each section.
	if len(a.met.Counters) > 0 {
		keys := sortedKeys(a.met.Counters)
		width := nameWidth(keys, 44)
		fmt.Fprintf(w, "\ncounters:\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-*s %12d\n", width, k, a.met.Counters[k])
		}
	}
	if len(a.met.Gauges) > 0 {
		keys := sortedKeys(a.met.Gauges)
		width := nameWidth(keys, 44)
		fmt.Fprintf(w, "\ngauges:\n")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-*s %12d\n", width, k, a.met.Gauges[k])
		}
	}
	if len(a.met.Hists) > 0 {
		names := make([]string, 0, len(a.met.Hists))
		for k := range a.met.Hists {
			names = append(names, k)
		}
		sort.Strings(names)
		width := nameWidth(names, 30)
		fmt.Fprintf(w, "\nhistograms:\n")
		for _, k := range names {
			h := a.met.Hists[k]
			var sb strings.Builder
			for i, c := range h.Buckets {
				if c != 0 {
					fmt.Fprintf(&sb, " %s:%d", BucketLabel(i), c)
				}
			}
			fmt.Fprintf(w, "  %-*s count=%d sum=%d |%s\n", width, k, h.Count, h.Sum, sb.String())
		}
	}
	return nil
}

// nameWidth sizes a name column: at least min, wide enough for the
// longest name so values stay in one column even with labeled names.
func nameWidth(names []string, min int) int {
	w := min
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

// tableSink renders a single trace as a phase-time table.
type tableSink struct {
	w io.Writer
}

// NewTable returns a sink printing a human-readable per-phase
// wall-time and memory-delta table to w.
func NewTable(w io.Writer) Sink { return tableSink{w: w} }

// Emit implements Sink.
func (s tableSink) Emit(snap *Snapshot) error {
	a := NewAgg()
	a.Add(snap)
	return a.WriteTable(s.w)
}

// fmtWall renders a duration at table-friendly precision.
func fmtWall(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func humanBytesSigned(n int64) string {
	if n < 0 {
		return "-" + humanBytes(uint64(-n))
	}
	return "+" + humanBytes(uint64(n))
}
