package zipr

import (
	"bytes"
	"testing"

	"zipr/internal/asm"
)

const nopHeavy = `
.text 0x00100000
main:
    nop
    nop
    movi r2, 5
    nop
    jz skip          ; never taken (flags clear on a fresh machine? cmp first)
    cmpi8 r2, 5
    jnz bad
    nop
    nop
    jmp target
bad:
    movi r1, 99
    movi r0, 1
    syscall
target:
    nop              ; branch target that will be deleted
    mov r1, r2
    movi r0, 1
    syscall
skip:
    movi r1, 77
    movi r0, 1
    syscall
`

func TestNopElideShrinksAndPreserves(t *testing.T) {
	orig := asm.MustAssemble(nopHeavy)
	want := mustRun(t, orig, nil, "")

	rw, report, err := RewriteBinary(orig.Clone(), Config{
		Transforms: []Transform{NopElide()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, rw, nil, "")
	if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("exit %d vs %d", got.ExitCode, want.ExitCode)
	}
	// Fewer instructions must retire: seven nops were on the hot path...
	// at least some are (others may sit behind the never-taken jz).
	if got.Steps >= want.Steps {
		t.Fatalf("steps %d >= original %d; nothing elided?", got.Steps, want.Steps)
	}
	_ = report
}

func TestNopElideOnSynthCorpusSample(t *testing.T) {
	// The generator emits nops in handwritten padding; eliding them must
	// preserve behavior on a real workload.
	checkEquivalent(t, progSwitch, []Transform{NopElide()}, []string{"\x00", "\x02"})
}
