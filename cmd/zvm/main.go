// Command zvm executes a ZELF binary (plus shared libraries) in the
// DECREE-like virtual machine, feeding stdin to the program and writing
// its transmissions to stdout. Statistics mirror the CGC scoring
// metrics.
//
// Usage:
//
//	zvm [-lib name=file.zelf ...] [-max-steps N] [-stats] [-isa zvm32|zvm64] prog.zelf < input
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// libFlags collects repeated -lib name=path pairs.
type libFlags map[string]string

func (l libFlags) String() string { return fmt.Sprint(map[string]string(l)) }

func (l libFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	l[name] = path
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zvm:", err)
		os.Exit(1)
	}
}

func run() error {
	libs := libFlags{}
	flag.Var(libs, "lib", "shared library as name=file.zelf (repeatable)")
	maxSteps := flag.Uint64("max-steps", 200_000_000, "instruction budget")
	stats := flag.Bool("stats", false, "print CGC-style metrics to stderr")
	seed := flag.Uint64("seed", 1, "random() syscall seed")
	trace := flag.Int("trace", 0, "on abnormal exit, print the last N program counters with disassembly")
	isaFlag := flag.String("isa", "zvm32", "instruction set of the binary: zvm32 | zvm64")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: zvm [flags] prog.zelf")
	}
	arch, err := isa.ByName(*isaFlag)
	if err != nil {
		return err
	}

	load := func(path string) (*binfmt.Binary, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return binfmt.Unmarshal(data)
	}
	prog, err := load(flag.Arg(0))
	if err != nil {
		return err
	}
	libBins := map[string]*binfmt.Binary{}
	for name, path := range libs {
		b, err := load(path)
		if err != nil {
			return fmt.Errorf("lib %s: %w", name, err)
		}
		libBins[name] = b
	}

	opts := []vm.Option{vm.WithStdin(os.Stdin), vm.WithMaxSteps(*maxSteps),
		vm.WithRandomSeed(*seed), vm.WithArch(arch)}
	if *trace > 0 {
		opts = append(opts, vm.WithTrace(*trace))
	}
	m := vm.New(opts...)
	if err := loader.Load(m, prog, libBins); err != nil {
		return err
	}
	res, runErr := m.Run()
	if _, err := os.Stdout.Write(res.Output); err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "exit=%d steps=%d maxrss=%d bytes (%d pages)\n",
			res.ExitCode, res.Steps, res.MaxRSSBytes(), res.PagesTouched)
	}
	if runErr != nil {
		if *trace > 0 {
			for _, pc := range m.LastPCs() {
				line := fmt.Sprintf("%#08x  ??", pc)
				if raw, err := m.ReadMem(pc, arch.MaxLen()); err == nil {
					if in, derr := arch.Decode(raw, pc); derr == nil {
						line = fmt.Sprintf("%#08x  %s", pc, in.String())
					}
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
		return runErr
	}
	os.Exit(int(res.ExitCode) & 0x7F)
	return nil
}
