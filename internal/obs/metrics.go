package obs

import (
	"fmt"
	"math/bits"
)

// Metrics is the typed counter/gauge/histogram store of a Trace, and
// the unit of cross-run aggregation (see Merge).
type Metrics struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]*Hist
}

// NewMetrics creates an empty metric store.
func NewMetrics() *Metrics {
	return &Metrics{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]*Hist),
	}
}

// Merge folds o into m: counters and histograms sum; gauges keep the
// maximum (gauges record level/peak quantities — free bytes, image
// size — so an aggregate over a corpus keeps the worst case).
func (m *Metrics) Merge(o *Metrics) {
	if o == nil {
		return
	}
	for k, v := range o.Counters {
		m.Counters[k] += v
	}
	for k, v := range o.Gauges {
		if cur, ok := m.Gauges[k]; !ok || v > cur {
			m.Gauges[k] = v
		}
	}
	for k, h := range o.Hists {
		dst := m.Hists[k]
		if dst == nil {
			dst = &Hist{}
			m.Hists[k] = dst
		}
		dst.Merge(h)
	}
}

// histBuckets is the bucket count of Hist: bucket 0 holds values <= 0,
// bucket i >= 1 holds values with bit length i, i.e. [2^(i-1), 2^i).
const histBuckets = 33

// Hist is a power-of-two-bucket histogram (fragment sizes, span counts:
// quantities whose distribution shape matters more than exact values).
type Hist struct {
	Count   int64
	Sum     int64
	Buckets [histBuckets]int64
}

// Observe adds one value. Bucket boundaries follow the bit-length
// rule: bucket 0 holds v <= 0 and bucket i >= 1 holds [2^(i-1), 2^i),
// so an exact power of two v = 2^k lands deterministically in bucket
// k+1 — a pow2 value is always the *inclusive lower* edge of its
// bucket, never the upper edge of the one below.
func (h *Hist) Observe(v int64) {
	h.Count++
	h.Sum += v
	h.Buckets[bucketOf(v)]++
}

// Merge adds o's observations to h.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// bucketOf returns the bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLabel names bucket i: "<=0", "1", "2-3", "4-7", ...
func BucketLabel(i int) string {
	switch {
	case i <= 0:
		return "<=0"
	case i == 1:
		return "1"
	default:
		lo := int64(1) << (i - 1)
		return fmt.Sprintf("%d-%d", lo, lo*2-1)
	}
}
