package zipr_test

// Serving-layer benchmarks: the hot-cache/cold-miss pair quantifies
// what the content-addressed cache buys — a hit is a digest check plus
// a copy, a miss is a full pipeline run — and rides BENCH_pipeline.json
// via `make bench` next to the pipeline benchmarks. External test
// package because internal/serve imports zipr.

import (
	"context"
	"testing"

	"zipr"
	"zipr/internal/obs"
	"zipr/internal/serve"
	"zipr/internal/synth"
)

func benchImage(b *testing.B) []byte {
	b.Helper()
	seed, profile := synth.CBProfile(7)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	img, err := bin.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkServeHotCache measures a fully warmed request: every
// iteration is answered from the content-addressed cache.
func BenchmarkServeHotCache(b *testing.B) {
	img := benchImage(b)
	s := serve.New(serve.Options{Workers: 1})
	defer s.Close()
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.PipelineRuns != 1 {
		b.Fatalf("hot loop ran the pipeline %d times, want 1", st.PipelineRuns)
	}
}

// BenchmarkServeInstrumented measures the fully instrumented hot path:
// labeled registry, per-request trace folded into a lifetime Agg —
// everything a scraped ziprd does per request beyond the rewrite
// itself. Compare against BenchmarkServeHotCache for the telemetry
// tax, and read the rolling p95 off the registry (reported as
// p95-us).
func BenchmarkServeInstrumented(b *testing.B) {
	img := benchImage(b)
	reg := obs.NewRegistry()
	s := serve.New(serve.Options{Workers: 1, Registry: reg})
	defer s.Close()
	agg := obs.NewAgg()
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	if _, _, _, err := s.RewriteMeta(context.Background(), img, cfg); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(img)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.New()
		rcfg := cfg
		rcfg.Trace = tr
		if _, _, _, err := s.RewriteMeta(context.Background(), img, rcfg); err != nil {
			b.Fatal(err)
		}
		agg.AddTrace(tr)
	}
	b.StopTimer()
	if st := s.Stats(); st.PipelineRuns != 1 {
		b.Fatalf("hot loop ran the pipeline %d times, want 1", st.PipelineRuns)
	}
	for _, fam := range reg.Snapshot() {
		if fam.Name != "serve.request.latency" {
			continue
		}
		for _, se := range fam.Series {
			if se.Labels[0] == serve.OutcomeHit {
				b.ReportMetric(float64(se.P95), "p95-us")
			}
		}
	}
}

// BenchmarkServeColdMiss measures the uncached path through the server
// (admission + singleflight + pipeline), the denominator of the cache's
// speedup.
func BenchmarkServeColdMiss(b *testing.B) {
	img := benchImage(b)
	s := serve.New(serve.Options{Workers: 1, CacheBytes: -1})
	defer s.Close()
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Rewrite(context.Background(), img, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
