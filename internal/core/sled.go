package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

// Sled support (paper §II-C2). When pinned addresses are too close
// together for even a 2-byte jump, the rewriter emits a run of
// PushI32Byte (0x68) opcodes terminated by four NopBytes (0x90): control
// entering at any 0x68 byte pushes one or more words derived from the
// bytes that follow and re-synchronizes in the nops, after which a jump
// reaches dispatch code that inspects the pushed word(s), drops them,
// and branches to the relocated target of the entry that was taken.

// sledEntry is one pinned entry point of a sled.
type sledEntry struct {
	offset int // 0x68-byte index within the sled span
	target *ir.Instruction
	words  []uint32 // pushed words, bottom of stack first (simulated)
}

// sledPlan is one sled covering a dense run of pinned addresses.
type sledPlan struct {
	start   uint32 // address of the first 0x68 byte
	span    int    // number of 0x68 bytes
	entries []sledEntry
}

// sledTailSize is the fixed overhead after the 0x68 run: four nops plus
// a 5-byte jump to the dispatch code.
const sledTailSize = 4 + 5

// size returns the total carved footprint of the sled.
func (s *sledPlan) size() int { return s.span + sledTailSize }

// simulateSledEntry computes the words pushed when control enters a sled
// of the given span at 0x68-offset k, bottom of stack first.
func simulateSledEntry(span, k int) []uint32 {
	bytes := make([]byte, span+4)
	for i := 0; i < span; i++ {
		bytes[i] = isa.PushI32Byte
	}
	for i := span; i < span+4; i++ {
		bytes[i] = isa.NopByte
	}
	var words []uint32
	pc := k
	for pc < span {
		words = append(words, binary.LittleEndian.Uint32(bytes[pc+1:pc+5]))
		pc += 5
	}
	return words
}

// sledBytes renders the sled body (0x68 run plus nops); the caller
// appends the 5-byte jump to dispatch.
func sledBytes(span int) []byte {
	out := make([]byte, span+4)
	for i := 0; i < span; i++ {
		out[i] = isa.PushI32Byte
	}
	for i := span; i < span+4; i++ {
		out[i] = isa.NopByte
	}
	return out
}

// sledWord68 is the "all push opcodes" window value that deep stack
// slots of long sleds contain.
const sledWord68 = 0x68686868

// dispatchRef records a jump slot inside generated dispatch code that
// must be patched to an instruction's final address.
type dispatchRef struct {
	off    int // offset of the 5-byte jmp within the dispatch code
	target *ir.Instruction
}

// emitter builds raw machine code with local label fixups.
type emitter struct {
	buf    []byte
	labels map[string]int
	fixups []struct {
		off   int // offset of the rel32 field
		label string
	}
}

func newEmitter() *emitter {
	return &emitter{labels: map[string]int{}}
}

func (e *emitter) inst(in isa.Inst) {
	e.buf = append(e.buf, isa.MustEncode(in)...)
}

func (e *emitter) label(name string) {
	e.labels[name] = len(e.buf)
}

// jcc emits a long conditional jump to a local label.
func (e *emitter) jcc(cc isa.Cc, label string) {
	e.buf = append(e.buf, isa.MustEncode(isa.Inst{Op: isa.OpJcc32, Cc: cc})...)
	e.fixups = append(e.fixups, struct {
		off   int
		label string
	}{off: len(e.buf) - 4, label: label})
}

func (e *emitter) finish() ([]byte, error) {
	for _, f := range e.fixups {
		target, ok := e.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("core: dispatch label %q undefined", f.label)
		}
		disp := int32(target - (f.off + 4))
		binary.LittleEndian.PutUint32(e.buf[f.off:], uint32(disp))
	}
	return e.buf, nil
}

// genDispatch generates the dispatch routine for a sled. The routine is
// entered with the sled's pushed words on the stack; it identifies which
// entry was taken by the top word (and, for long sleds whose entries
// push identical prefixes, by probing deeper words), restores the stack,
// and jumps to the entry's relocated target through a patchable slot.
// All registers are preserved; flags are clobbered, matching the
// rewriter's documented assumption that flags are dead across indirect
// control transfers.
func genDispatch(entries []sledEntry) ([]byte, []dispatchRef, error) {
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("core: sled with no entries")
	}
	// Group entries by their top-of-stack word.
	groups := map[uint32][]sledEntry{}
	for _, en := range entries {
		if len(en.words) == 0 {
			return nil, nil, fmt.Errorf("core: sled entry at offset %d pushes nothing", en.offset)
		}
		top := en.words[len(en.words)-1]
		groups[top] = append(groups[top], en)
	}
	tops := make([]uint32, 0, len(groups))
	for t := range groups {
		tops = append(tops, t)
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i] < tops[j] })

	e := newEmitter()
	var refs []dispatchRef

	// Prologue: save r0, fetch the top pushed word.
	e.inst(isa.Inst{Op: isa.OpPush, Rd: 0})
	e.inst(isa.Inst{Op: isa.OpLoad, Rd: 0, Rs: isa.SP, Imm: 4})
	for gi, top := range tops {
		e.inst(isa.Inst{Op: isa.OpCmpI, Rd: 0, Imm: int32(top)})
		e.jcc(isa.CcZ, fmt.Sprintf("group%d", gi))
	}
	// No known entry: the program jumped to a non-pinned sled byte.
	e.inst(isa.Inst{Op: isa.OpHlt})

	emitEpilogue := func(en sledEntry) {
		e.inst(isa.Inst{Op: isa.OpPop, Rd: 0}) // restore r0
		drop := int32(4 * len(en.words))
		if drop <= 127 {
			e.inst(isa.Inst{Op: isa.OpAddI8, Rd: isa.SP, Imm: drop})
		} else {
			e.inst(isa.Inst{Op: isa.OpAddI, Rd: isa.SP, Imm: drop})
		}
		refs = append(refs, dispatchRef{off: len(e.buf), target: en.target})
		e.inst(isa.Inst{Op: isa.OpJmp32}) // patched later
	}

	for gi, top := range tops {
		e.label(fmt.Sprintf("group%d", gi))
		group := groups[top]
		sort.Slice(group, func(i, j int) bool { return len(group[i].words) < len(group[j].words) })
		// Entries within a group differ only in push count; all their
		// deeper words are sledWord68. Probe depth m for each entry in
		// ascending push-count order: if the word there is NOT the all-
		// push pattern, the shorter entry was taken.
		for i := 0; i < len(group)-1; i++ {
			en := group[i]
			m := len(en.words)
			if len(group[i+1].words) == m {
				return nil, nil, fmt.Errorf("core: sled entries %d and %d indistinguishable",
					en.offset, group[i+1].offset)
			}
			e.inst(isa.Inst{Op: isa.OpLoad, Rd: 0, Rs: isa.SP, Imm: int32(4 + 4*m)})
			e.inst(isa.Inst{Op: isa.OpCmpI, Rd: 0, Imm: int32(uint32(sledWord68))})
			e.jcc(isa.CcZ, fmt.Sprintf("g%de%d_deeper", gi, i))
			emitEpilogue(en)
			e.label(fmt.Sprintf("g%de%d_deeper", gi, i))
		}
		emitEpilogue(group[len(group)-1])
	}
	code, err := e.finish()
	if err != nil {
		return nil, nil, err
	}
	return code, refs, nil
}
