package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"zipr/internal/isa"
)

const textBase uint32 = 0x00100000

// prog encodes a sequence of instructions into machine code.
func prog(t *testing.T, insts ...isa.Inst) []byte {
	t.Helper()
	var out []byte
	for _, in := range insts {
		b, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out = append(out, b...)
	}
	return out
}

// runProg maps code at textBase (plus an optional data page) and runs it.
func runProg(t *testing.T, code []byte, opts ...Option) (Result, error) {
	t.Helper()
	m := New(opts...)
	if err := m.Map(textBase, len(code), PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMem(textBase, code); err != nil {
		t.Fatal(err)
	}
	m.SetPC(textBase)
	return m.Run()
}

// exit emits the terminate(code) sequence.
func exit(code int32) []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpMovI, Rd: 1, Imm: code},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
}

func TestTerminateExitCode(t *testing.T) {
	res, err := runProg(t, prog(t, exit(42)...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 42 {
		t.Fatalf("exit code = %d, want 42", res.ExitCode)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	// r2 = 7*6; r3 = r2 % 10; if r3 == 2 exit(1) else exit(0)
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 2, Imm: 7},
		{Op: isa.OpMovI, Rd: 3, Imm: 6},
		{Op: isa.OpMul, Rd: 2, Rs: 3},
		{Op: isa.OpMovI, Rd: 4, Imm: 10},
		{Op: isa.OpMod, Rd: 2, Rs: 4},
		{Op: isa.OpCmpI8, Rd: 2, Imm: 2},
		{Op: isa.OpJcc8, Cc: isa.CcZ, Imm: 8}, // skip exit(0): movi(6)+movi(6)... compute below
	}
	// exit(0) is 6+6+1 = 13 bytes; jump over first two movi (12 bytes)? Use labels via explicit sizes:
	// Simpler: jz +13 over exit(0) to exit(1).
	insts[6].Imm = 13
	insts = append(insts, exit(0)...)
	insts = append(insts, exit(1)...)
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 1 {
		t.Fatalf("exit = %d, want 1 (42 %% 10 == 2)", res.ExitCode)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// sum 1..10 via loop, exit(sum)
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 2, Imm: 0},  // sum
		{Op: isa.OpMovI, Rd: 3, Imm: 10}, // i
		// loop:
		{Op: isa.OpAdd, Rd: 2, Rs: 3},           // sum += i
		{Op: isa.OpDec, Rd: 3},                  // i--
		{Op: isa.OpJcc8, Cc: isa.CcNZ, Imm: -7}, // back to loop (3+2+2 bytes)
		{Op: isa.OpMov, Rd: 1, Rs: 2},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 55 {
		t.Fatalf("exit = %d, want 55", res.ExitCode)
	}
}

func TestCallRetAndStack(t *testing.T) {
	// call f; exit(r2). f: movi r2, 9; ret
	body := []isa.Inst{
		{Op: isa.OpCall, Imm: 13}, // over exit(code in r2) = 3+6+1... compute: mov(3)+movi(6)+syscall(1)=10? We use mov r1,r2;movi;syscall = 3+6+1=10
	}
	body[0].Imm = 10
	body = append(body,
		isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2},
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		isa.Inst{Op: isa.OpSyscall},
		// f:
		isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 9},
		isa.Inst{Op: isa.OpRet},
	)
	res, err := runProg(t, prog(t, body...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 9 {
		t.Fatalf("exit = %d, want 9", res.ExitCode)
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	// r5 = &f (via lea), callr r5; then r6 = &end, jmpr r6.
	insts := []isa.Inst{
		{Op: isa.OpLea, Rd: 5, Imm: 0}, // patched below
		{Op: isa.OpCallR, Rd: 5},
		{Op: isa.OpMov, Rd: 1, Rs: 2},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
		// f:
		{Op: isa.OpMovI, Rd: 2, Imm: 77},
		{Op: isa.OpRet},
	}
	// lea is 6 bytes; f starts after 6+2+3+6+1 = 18 bytes; disp = 18 - 6 = 12.
	insts[0].Imm = 12
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExitCode != 77 {
		t.Fatalf("exit = %d, want 77", res.ExitCode)
	}
}

func TestTransmitReceive(t *testing.T) {
	// Read 4 bytes from stdin into stack buffer, transmit them back, exit 0.
	insts := []isa.Inst{
		{Op: isa.OpMov, Rd: 2, Rs: isa.SP},
		{Op: isa.OpAddI, Rd: 2, Imm: -64}, // buf = sp-64
		{Op: isa.OpMovI, Rd: 0, Imm: SysReceive},
		{Op: isa.OpMovI, Rd: 1, Imm: 0},
		{Op: isa.OpMovI, Rd: 3, Imm: 4},
		{Op: isa.OpSyscall},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTransmit},
		{Op: isa.OpMovI, Rd: 1, Imm: 1},
		{Op: isa.OpSyscall},
	}
	insts = append(insts, exit(0)...)
	res, err := runProg(t, prog(t, insts...), WithStdin(strings.NewReader("ping")))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(res.Output, []byte("ping")) {
		t.Fatalf("output = %q, want %q", res.Output, "ping")
	}
}

func TestAllocateAndMemoryAccounting(t *testing.T) {
	// allocate 2 pages, store to both, exit. Touched pages must include
	// text, stack (none used), and 2 heap pages.
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 0, Imm: SysAllocate},
		{Op: isa.OpMovI, Rd: 1, Imm: 2 * PageSize},
		{Op: isa.OpSyscall},
		{Op: isa.OpMov, Rd: 5, Rs: 0},
		{Op: isa.OpMovI, Rd: 6, Imm: 123},
		{Op: isa.OpStore, Rd: 5, Rs: 6, Imm: 0},
		{Op: isa.OpStore, Rd: 5, Rs: 6, Imm: PageSize},
		{Op: isa.OpLoad, Rd: 7, Rs: 5, Imm: PageSize},
	}
	insts = append(insts, exit(0)...)
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 1 text page + 1 stack page (terminate pushes nothing; but exit uses no stack) -> expect 1 text + 2 heap = 3
	if res.PagesTouched != 3 {
		t.Fatalf("pages touched = %d, want 3 (1 text + 2 heap)", res.PagesTouched)
	}
	if res.MaxRSSBytes() != 3*PageSize {
		t.Fatalf("MaxRSSBytes = %d", res.MaxRSSBytes())
	}
}

func TestRandomDeterministic(t *testing.T) {
	code := prog(t, append([]isa.Inst{
		{Op: isa.OpMov, Rd: 5, Rs: isa.SP},
		{Op: isa.OpAddI, Rd: 5, Imm: -32},
		{Op: isa.OpMovI, Rd: 0, Imm: SysRandom},
		{Op: isa.OpMov, Rd: 1, Rs: 5},
		{Op: isa.OpMovI, Rd: 2, Imm: 8},
		{Op: isa.OpSyscall},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTransmit},
		{Op: isa.OpMovI, Rd: 1, Imm: 1},
		{Op: isa.OpMov, Rd: 2, Rs: 5},
		{Op: isa.OpMovI, Rd: 3, Imm: 8},
		{Op: isa.OpSyscall},
	}, exit(0)...)...)
	r1, err := runProg(t, code, WithRandomSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runProg(t, code, WithRandomSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := runProg(t, code, WithRandomSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Output, r2.Output) {
		t.Fatal("same seed produced different random streams")
	}
	if bytes.Equal(r1.Output, r3.Output) {
		t.Fatal("different seeds produced identical random streams")
	}
	if len(r1.Output) != 8 {
		t.Fatalf("random output length = %d, want 8", len(r1.Output))
	}
}

func TestFaults(t *testing.T) {
	tests := []struct {
		name   string
		insts  []isa.Inst
		substr string
	}{
		{"hlt", []isa.Inst{{Op: isa.OpHlt}}, "hlt"},
		{"div zero", []isa.Inst{{Op: isa.OpMovI, Rd: 1, Imm: 5}, {Op: isa.OpDiv, Rd: 1, Rs: 2}}, "divide"},
		{"mod zero", []isa.Inst{{Op: isa.OpMod, Rd: 1, Rs: 2}}, "modulo"},
		{"unmapped load", []isa.Inst{{Op: isa.OpLoad, Rd: 1, Rs: 2, Imm: 0}}, "unmapped"},
		{"write to text", []isa.Inst{
			{Op: isa.OpMovI, Rd: 1, Imm: int32(textBase)},
			{Op: isa.OpStore, Rd: 1, Rs: 2, Imm: 0},
		}, "permission"},
		{"jump to unmapped", []isa.Inst{
			{Op: isa.OpMovI, Rd: 1, Imm: 0x7000},
			{Op: isa.OpJmpR, Rd: 1},
		}, "non-executable"},
		{"exec data (stack)", []isa.Inst{
			{Op: isa.OpMovI, Rd: 1, Imm: int32(int64(StackTop) - 16 - (1 << 32))},
			{Op: isa.OpJmpR, Rd: 1},
		}, "non-executable"},
		{"bad syscall", []isa.Inst{{Op: isa.OpMovI, Rd: 0, Imm: 99}, {Op: isa.OpSyscall}}, "syscall"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := runProg(t, prog(t, tt.insts...))
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("error = %v, want *Fault", err)
			}
			if !strings.Contains(f.Reason, tt.substr) {
				t.Fatalf("fault reason %q does not contain %q", f.Reason, tt.substr)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	// Infinite loop must hit the budget.
	code := prog(t, isa.Inst{Op: isa.OpJmp8, Imm: -2})
	_, err := runProg(t, code, WithMaxSteps(1000))
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("error = %v, want ErrStepLimit", err)
	}
}

func TestMapErrors(t *testing.T) {
	m := New()
	if err := m.Map(0x1001, 10, PermR); err == nil {
		t.Fatal("unaligned map should fail")
	}
	if err := m.Map(0x1000, 10, PermR); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x1000, 10, PermR); err == nil {
		t.Fatal("double map should fail")
	}
	if err := m.WriteMem(0x9000, []byte{1}); err == nil {
		t.Fatal("WriteMem to unmapped should fail")
	}
	if _, err := m.ReadMem(0x9000, 1); err == nil {
		t.Fatal("ReadMem of unmapped should fail")
	}
}

func TestSledExecution(t *testing.T) {
	// The paper's sled: entering at any 0x68 byte pushes a distinguishing
	// word and re-synchronizes at the nops. Verify entry at offsets 0..3
	// pushes the expected values and reaches the code after the sled.
	sled := []byte{0x68, 0x68, 0x68, 0x68, 0x90, 0x90, 0x90, 0x90}
	wantTop := []uint32{0x90686868, 0x90906868, 0x90909068, 0x90909090}
	// After the sled: pop r2; mov r1, r2; terminate.
	tail := prog(t,
		isa.Inst{Op: isa.OpPop, Rd: 2},
		isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2},
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		isa.Inst{Op: isa.OpSyscall},
	)
	code := append(append([]byte{}, sled...), tail...)
	for entry := 0; entry < 4; entry++ {
		m := New()
		if err := m.Map(textBase, len(code), PermR|PermX); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMem(textBase, code); err != nil {
			t.Fatal(err)
		}
		m.SetPC(textBase + uint32(entry))
		res, err := m.Run()
		if err != nil {
			t.Fatalf("entry %d: %v", entry, err)
		}
		if uint32(res.ExitCode) != wantTop[entry] {
			t.Errorf("entry %d: pushed %#x, want %#x", entry, uint32(res.ExitCode), wantTop[entry])
		}
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 3, Imm: 0x1234},
		{Op: isa.OpPush, Rd: 3},
		{Op: isa.OpPushI8, Imm: -1},
		{Op: isa.OpPushI32, Imm: 0x55},
		{Op: isa.OpPop, Rd: 4}, // 0x55
		{Op: isa.OpPop, Rd: 5}, // 0xFFFFFFFF
		{Op: isa.OpPop, Rd: 6}, // 0x1234
		{Op: isa.OpMov, Rd: 1, Rs: 6},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0x1234 {
		t.Fatalf("exit = %#x, want 0x1234", res.ExitCode)
	}
}

func TestShiftOps(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 2, Imm: 1},
		{Op: isa.OpShlI, Rd: 2, Imm: 10}, // 1024
		{Op: isa.OpShrI, Rd: 2, Imm: 3},  // 128
		{Op: isa.OpMovI, Rd: 3, Imm: 2},
		{Op: isa.OpShl, Rd: 2, Rs: 3}, // 512
		{Op: isa.OpShr, Rd: 2, Rs: 3}, // 128
		{Op: isa.OpMov, Rd: 1, Rs: 2},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 128 {
		t.Fatalf("exit = %d, want 128", res.ExitCode)
	}
}

func TestLoadPCReadsEmbeddedData(t *testing.T) {
	// loadpc r2, [data]; exit(r2). Data word placed after code.
	insts := []isa.Inst{
		{Op: isa.OpLoadPC, Rd: 2, Imm: 0}, // patched
		{Op: isa.OpMov, Rd: 1, Rs: 2},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
	// data at offset 6+3+6+1 = 16; loadpc next = 6 -> disp = 10
	insts[0].Imm = 10
	code := prog(t, insts...)
	code = append(code, 0xEF, 0xBE, 0xAD, 0xDE)
	res, err := runProg(t, code)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res.ExitCode) != 0xDEADBEEF {
		t.Fatalf("exit = %#x, want 0xDEADBEEF", uint32(res.ExitCode))
	}
}

func TestUnsignedVsSignedConditions(t *testing.T) {
	// -1 unsigned is > 1, signed is < 1.
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 2, Imm: -1},
		{Op: isa.OpMovI, Rd: 3, Imm: 1},
		{Op: isa.OpCmp, Rd: 2, Rs: 3},
		{Op: isa.OpJcc8, Cc: isa.CcB, Imm: 13}, // taken? no: 0xFFFFFFFF not below 1
	}
	insts = append(insts, exit(1)...) // not-below path => exit(1)
	insts = append(insts, exit(2)...)
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Fatalf("unsigned: exit = %d, want 1", res.ExitCode)
	}
	insts[3].Cc = isa.CcL // signed less: taken => exit(2)
	res, err = runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 2 {
		t.Fatalf("signed: exit = %d, want 2", res.ExitCode)
	}
}
