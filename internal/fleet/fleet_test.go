package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"zipr/internal/fault"
	"zipr/internal/obs"
)

// TestRingDistribution: virtual nodes spread the keyspace within a
// reasonable band, and every key routes to exactly one primary.
func TestRingDistribution(t *testing.T) {
	workers := []string{"a:1", "b:1", "c:1", "d:1"}
	r := newRing(workers)
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.primary(fmt.Sprintf("key-%d", i))]++
	}
	for _, w := range workers {
		share := float64(counts[w]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("worker %s owns %.1f%% of keys, outside [10%%, 45%%]", w, 100*share)
		}
	}
}

// TestRingStability pins the consistent-hashing contract: removing one
// worker remaps only the keys it owned — every key whose primary
// survives keeps that primary.
func TestRingStability(t *testing.T) {
	full := newRing([]string{"a:1", "b:1", "c:1", "d:1"})
	reduced := newRing([]string{"a:1", "b:1", "c:1"})
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := full.primary(key)
		now := reduced.primary(key)
		if was != "d:1" && now != was {
			t.Fatalf("key %s moved %s -> %s though its primary survived", key, was, now)
		}
		if was == "d:1" {
			moved++
		}
	}
	if moved == 0 || moved == n {
		t.Fatalf("removed worker owned %d/%d keys — distribution is degenerate", moved, n)
	}
}

// TestRingReplicas: the failover order is primary-first and visits
// distinct workers.
func TestRingReplicas(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1"})
	reps := r.replicas("some-key", 0)
	if len(reps) != 3 {
		t.Fatalf("got %d replicas, want 3", len(reps))
	}
	if reps[0] != r.primary("some-key") {
		t.Fatal("replica order does not start at the primary")
	}
	seen := map[string]bool{}
	for _, w := range reps {
		if seen[w] {
			t.Fatalf("replica %s repeated", w)
		}
		seen[w] = true
	}
	if got := newRing(nil).replicas("k", 0); got != nil {
		t.Fatalf("empty ring returned replicas %v", got)
	}
}

// TestHealthCircuit walks the breaker through its states: closed →
// open after consecutive failures, refusing while cooling, half-open
// single trial after cooldown, closed again on success.
func TestHealthCircuit(t *testing.T) {
	h := newHealth([]string{"w:1"})
	clock := time.Unix(100, 0)
	h.now = func() time.Time { return clock }

	for i := 0; i < failThreshold; i++ {
		if !h.admit("w:1") {
			t.Fatalf("closed circuit refused request %d", i)
		}
		h.report("w:1", false)
	}
	if h.up("w:1") {
		t.Fatal("circuit still up after threshold failures")
	}
	if h.admit("w:1") {
		t.Fatal("open circuit admitted inside cooldown")
	}
	clock = clock.Add(cooldown + time.Millisecond)
	if !h.admit("w:1") {
		t.Fatal("cooled circuit refused the half-open trial")
	}
	if h.admit("w:1") {
		t.Fatal("half-open circuit admitted a second concurrent trial")
	}
	// Failed trial re-opens immediately.
	h.report("w:1", false)
	if h.admit("w:1") {
		t.Fatal("failed trial did not re-open the circuit")
	}
	clock = clock.Add(cooldown + time.Millisecond)
	if !h.admit("w:1") {
		t.Fatal("re-cooled circuit refused a trial")
	}
	h.report("w:1", true)
	if !h.up("w:1") || !h.admit("w:1") {
		t.Fatal("successful trial did not close the circuit")
	}
}

// TestLimiterBuckets: the token bucket admits the burst, then refuses
// with a positive retry hint, and refills with time; distinct clients
// get distinct buckets.
func TestLimiterBuckets(t *testing.T) {
	l := newLimiter(2) // 2 rps, burst 4
	clock := time.Unix(100, 0)
	l.now = func() time.Time { return clock }

	for i := 0; i < 4; i++ {
		if ok, _ := l.allow("alice"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("alice")
	if ok || retry <= 0 {
		t.Fatalf("dry bucket: ok=%v retry=%v, want refusal with positive hint", ok, retry)
	}
	if ok, _ := l.allow("bob"); !ok {
		t.Fatal("a dry bucket for alice starved bob")
	}
	clock = clock.Add(time.Second) // 2 tokens accrue
	if ok, _ := l.allow("alice"); !ok {
		t.Fatal("bucket did not refill with time")
	}
	if ok, _ := newLimiter(0).allow("anyone"); !ok {
		t.Fatal("zero rate must disable limiting")
	}
}

// echoWorker is a stub worker: /rewrite answers with the sha256 of
// body+query (deterministic across workers, so byte-equality checks
// catch routing divergence) and /healthz answers ok.
func echoWorker(t *testing.T, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if calls != nil {
			calls.Add(1)
		}
		body, _ := io.ReadAll(r.Body)
		sum := sha256.Sum256(append(body, []byte(r.URL.RawQuery)...))
		w.Header().Set("X-Zipr-Cache", "miss")
		w.Write([]byte(hex.EncodeToString(sum[:])))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// addrOf strips the scheme from an httptest server URL.
func addrOf(ts *httptest.Server) string {
	return strings.TrimPrefix(ts.URL, "http://")
}

// gwPost sends one /rewrite through the gateway handler.
func gwPost(t *testing.T, h http.Handler, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/rewrite", strings.NewReader(body))
	req.RemoteAddr = "198.51.100.7:4242"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Result()
}

// TestGatewayRoutesAndFailsOver: requests land on ring-chosen workers;
// when one worker dies mid-run the gateway retries onto the survivor
// and answers identically, surfacing the retry in fleet metrics.
func TestGatewayRoutesAndFailsOver(t *testing.T) {
	var callsA, callsB atomic.Int64
	wa, wb := echoWorker(t, &callsA), echoWorker(t, &callsB)
	reg := obs.NewRegistry()
	g := New(Config{Workers: []string{addrOf(wa), addrOf(wb)}, Registry: reg})
	h := g.Handler(reg)

	// Collect the answer for enough distinct inputs that both workers
	// serve some share.
	want := map[string]string{}
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf("input-%d", i)
		resp := gwPost(t, h, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		ans, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want[body] = string(ans)
	}
	if callsA.Load() == 0 || callsB.Load() == 0 {
		t.Fatalf("load did not shard: worker calls %d/%d", callsA.Load(), callsB.Load())
	}

	// Kill worker A. Every request still answers, with the same bytes
	// (the stub is deterministic), via failover to B.
	wa.Close()
	for body, ans := range want {
		resp := gwPost(t, h, body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill status %d", resp.StatusCode)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(got) != ans {
			t.Fatalf("post-kill answer diverged for %q", body)
		}
	}
	if g.retries.Value() == 0 {
		t.Fatal("failover left no trace in fleet.retries")
	}
	if g.rebalance.Value() == 0 {
		t.Fatal("failover left no trace in fleet.ring.rebalance")
	}
	// The dead worker's circuit opens once its failures cross the
	// threshold, and /fleet reports it.
	g.Probe(context.Background())
	if g.upGauge[addrOf(wa)].Value() != 0 {
		t.Fatal("dead worker still reported up")
	}
	if g.upGauge[addrOf(wb)].Value() != 1 {
		t.Fatal("healthy worker reported down")
	}
	frr := httptest.NewRecorder()
	h.ServeHTTP(frr, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	var st fleetStatus
	if err := json.NewDecoder(frr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("/fleet lists %d workers, want 2", len(st.Workers))
	}
}

// TestGatewayRateLimit: a dry token bucket answers 429 with a
// Retry-After hint; an independent client identity is unaffected.
func TestGatewayRateLimit(t *testing.T) {
	w := echoWorker(t, nil)
	reg := obs.NewRegistry()
	g := New(Config{Workers: []string{addrOf(w)}, Rate: 1, Registry: reg}) // burst 2
	h := g.Handler(reg)

	var got429 bool
	for i := 0; i < 4; i++ {
		resp := gwPost(t, h, "x", map[string]string{"X-Zipr-Client": "alice"})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
			}
		}
	}
	if !got429 {
		t.Fatal("burst of 4 at rate 1 never saw a 429")
	}
	if resp := gwPost(t, h, "x", map[string]string{"X-Zipr-Client": "bob"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob rate-limited by alice's bucket: status %d", resp.StatusCode)
	}
	if g.limited.Value() == 0 {
		t.Fatal("429s left no trace in fleet.ratelimited")
	}
}

// TestChaosWorkerDownTwoOutcomes pins the fault.WorkerDown contract:
// with a spare replica the request fails over and answers the same
// bytes; with no spare it fails closed with typed unavailability (502)
// — never divergent output.
func TestChaosWorkerDownTwoOutcomes(t *testing.T) {
	input := []byte("chaos-input")
	// Compute the firing site exactly as the gateway will route it.
	key := routeKey(input, map[string]string{})
	site := binary.LittleEndian.Uint32(key[:4])
	var inj *fault.Injector
	for seed := int64(1); seed <= 1000; seed++ {
		if cand := fault.NewArmed(seed, fault.WorkerDown); cand.Fires(fault.WorkerDown, site) {
			inj = cand
			break
		}
	}
	if inj == nil {
		t.Fatal("no firing seed found in 1000 tries")
	}

	// Outcome 1: a two-worker fleet degrades via failover.
	wa, wb := echoWorker(t, nil), echoWorker(t, nil)
	reg := obs.NewRegistry()
	g := New(Config{Workers: []string{addrOf(wa), addrOf(wb)}, Registry: reg, Chaos: inj})
	clean := New(Config{Workers: []string{addrOf(wa), addrOf(wb)}, Registry: obs.NewRegistry()})
	wantResp := gwPost(t, clean.Handler(obs.NewRegistry()), string(input), nil)
	want, _ := io.ReadAll(wantResp.Body)
	wantResp.Body.Close()

	resp := gwPost(t, g.Handler(reg), string(input), nil)
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos failover status %d, want 200", resp.StatusCode)
	}
	if string(got) != string(want) {
		t.Fatal("chaos failover returned divergent bytes")
	}
	if g.retries.Value() == 0 {
		t.Fatal("injected outage left no trace in fleet.retries")
	}

	// Outcome 2: a single-worker fleet fails closed.
	g1 := New(Config{Workers: []string{addrOf(wa)}, Registry: obs.NewRegistry(), Chaos: inj})
	resp1 := gwPost(t, g1.Handler(obs.NewRegistry()), string(input), nil)
	io.Copy(io.Discard, resp1.Body)
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusBadGateway {
		t.Fatalf("single-worker chaos status %d, want 502", resp1.StatusCode)
	}
	if g1.unavail.Value() != 1 {
		t.Fatal("typed unavailability left no trace in fleet.unavailable")
	}
}
