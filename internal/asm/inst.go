package asm

import (
	"fmt"
	"strings"

	"zipr/internal/isa"
)

// instShape describes how a mnemonic's operands are parsed.
type instShape uint8

const (
	shNone   instShape = iota + 1 // nop
	shReg                         // push r1
	shImm8                        // push8 -3
	shImm32                       // pushi 99 / pushi label
	shRel                         // jmp label (rel8 or rel32 by mnemonic)
	shRegReg                      // add r1, r2
	shRegI8                       // addi8 r1, -4
	shRegI32                      // movi r1, 99 / movi r1, label
	shPCRel                       // lea r1, label
	shLoad                        // load r1, [r2+4]
	shStore                       // store [r1+4], r2
)

type mnemonic struct {
	op    isa.Op
	cc    isa.Cc
	shape instShape
}

// mnemonics maps source mnemonics to operations. Conditional jumps carry
// their condition; ".s" variants use the short (rel8) encodings.
var mnemonics = buildMnemonics()

func buildMnemonics() map[string]mnemonic {
	m := map[string]mnemonic{
		"nop":     {op: isa.OpNop, shape: shNone},
		"hlt":     {op: isa.OpHlt, shape: shNone},
		"ret":     {op: isa.OpRet, shape: shNone},
		"syscall": {op: isa.OpSyscall, shape: shNone},
		"push":    {op: isa.OpPush, shape: shReg},
		"pop":     {op: isa.OpPop, shape: shReg},
		"jmpr":    {op: isa.OpJmpR, shape: shReg},
		"callr":   {op: isa.OpCallR, shape: shReg},
		"inc":     {op: isa.OpInc, shape: shReg},
		"dec":     {op: isa.OpDec, shape: shReg},
		"not":     {op: isa.OpNot, shape: shReg},
		"push8":   {op: isa.OpPushI8, shape: shImm8},
		"pushi":   {op: isa.OpPushI32, shape: shImm32},
		"jmp":     {op: isa.OpJmp32, shape: shRel},
		"jmp.s":   {op: isa.OpJmp8, shape: shRel},
		"call":    {op: isa.OpCall, shape: shRel},
		"add":     {op: isa.OpAdd, shape: shRegReg},
		"sub":     {op: isa.OpSub, shape: shRegReg},
		"and":     {op: isa.OpAnd, shape: shRegReg},
		"or":      {op: isa.OpOr, shape: shRegReg},
		"xor":     {op: isa.OpXor, shape: shRegReg},
		"mul":     {op: isa.OpMul, shape: shRegReg},
		"div":     {op: isa.OpDiv, shape: shRegReg},
		"mod":     {op: isa.OpMod, shape: shRegReg},
		"shl":     {op: isa.OpShl, shape: shRegReg},
		"shr":     {op: isa.OpShr, shape: shRegReg},
		"cmp":     {op: isa.OpCmp, shape: shRegReg},
		"mov":     {op: isa.OpMov, shape: shRegReg},
		"addi8":   {op: isa.OpAddI8, shape: shRegI8},
		"cmpi8":   {op: isa.OpCmpI8, shape: shRegI8},
		"shli":    {op: isa.OpShlI, shape: shRegI8},
		"shri":    {op: isa.OpShrI, shape: shRegI8},
		"movi":    {op: isa.OpMovI, shape: shRegI32},
		"addi":    {op: isa.OpAddI, shape: shRegI32},
		"andi":    {op: isa.OpAndI, shape: shRegI32},
		"ori":     {op: isa.OpOrI, shape: shRegI32},
		"xori":    {op: isa.OpXorI, shape: shRegI32},
		"cmpi":    {op: isa.OpCmpI, shape: shRegI32},
		"lea":     {op: isa.OpLea, shape: shPCRel},
		"loadpc":  {op: isa.OpLoadPC, shape: shPCRel},
		"load":    {op: isa.OpLoad, shape: shLoad},
		"loadb":   {op: isa.OpLoadB, shape: shLoad},
		"store":   {op: isa.OpStore, shape: shStore},
		"storeb":  {op: isa.OpStoreB, shape: shStore},
	}
	for name, cc := range map[string]isa.Cc{
		"jz": isa.CcZ, "jnz": isa.CcNZ, "jl": isa.CcL, "jge": isa.CcGE,
		"jle": isa.CcLE, "jg": isa.CcG, "jb": isa.CcB, "jae": isa.CcAE,
	} {
		m[name] = mnemonic{op: isa.OpJcc32, cc: cc, shape: shRel}
		m[name+".s"] = mnemonic{op: isa.OpJcc8, cc: cc, shape: shRel}
	}
	return m
}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "sp" {
		return isa.SP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		var n int
		if _, err := fmt.Sscanf(s[1:], "%d", &n); err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMem parses "[reg]", "[reg+disp]" or "[reg-disp]".
func (a *assembler) parseMem(s string) (uint8, int32, error) {
	s = strings.TrimSpace(s)
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	regPart, disp := body, int64(0)
	if i := strings.IndexAny(body, "+-"); i > 0 {
		n, err := a.number(body[i:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q: %v", s, err)
		}
		regPart, disp = body[:i], n
	}
	r, err := parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	return r, int32(disp), nil
}

// instruction assembles one instruction statement. On pass 1 it only
// reserves space (every mnemonic has a fixed size); on pass 2 it encodes
// with resolved labels.
func (a *assembler) instruction(s string, pass int) error {
	fields := strings.Fields(s)
	name := strings.ToLower(fields[0])
	mn, ok := mnemonics[name]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", name)
	}
	rest := strings.TrimSpace(s[len(fields[0]):])
	in := isa.Inst{Op: mn.op, Cc: mn.cc}
	ilen := a.arch.InstLen(in)

	if pass == 1 {
		// Reserve exact space; operands may reference undefined labels.
		if ilen == 0 {
			return fmt.Errorf("mnemonic %q unsupported on %s", name, a.arch.Name())
		}
		if al := a.arch.Align(); al > 1 && a.pc()%al != 0 {
			return fmt.Errorf("instruction at %#x misaligned for %s (use .align %d)",
				a.pc(), a.arch.Name(), al)
		}
		if err := a.checkArity(mn.shape, rest); err != nil {
			return err
		}
		buf, err := a.cur()
		if err != nil {
			return err
		}
		*buf = append(*buf, make([]byte, ilen)...)
		return nil
	}

	ops := splitOperands(rest)
	wantOps := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operand(s), got %d", name, n, len(ops))
		}
		return nil
	}
	switch mn.shape {
	case shNone:
		if err := wantOps(0); err != nil && rest != "" {
			return err
		}
	case shReg:
		if err := wantOps(1); err != nil {
			return err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		in.Rd = r
	case shImm8, shImm32:
		if err := wantOps(1); err != nil {
			return err
		}
		v, err := a.value(ops[0])
		if err != nil {
			return err
		}
		in.Imm = int32(v)
	case shRel:
		if err := wantOps(1); err != nil {
			return err
		}
		target, err := a.value(ops[0])
		if err != nil {
			return err
		}
		disp := target - int64(a.pc()) - int64(ilen)
		if in.Op == isa.OpJmp8 || in.Op == isa.OpJcc8 {
			if disp < -128 || disp > 127 {
				return fmt.Errorf("short branch to %q out of range (disp %d)", ops[0], disp)
			}
		}
		in.Imm = int32(disp)
	case shRegReg:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs = rd, rs
	case shRegI8, shRegI32:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := a.value(ops[1])
		if err != nil {
			return err
		}
		in.Rd, in.Imm = rd, int32(v)
	case shPCRel:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		target, err := a.value(ops[1])
		if err != nil {
			return err
		}
		in.Rd = rd
		in.Imm = int32(target - int64(a.pc()) - int64(ilen))
	case shLoad:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		rs, disp, err := a.parseMem(ops[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs, in.Imm = rd, rs, disp
	case shStore:
		if err := wantOps(2); err != nil {
			return err
		}
		rd, disp, err := a.parseMem(ops[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs, in.Imm = rd, rs, disp
	}
	enc, err := a.arch.Encode(in)
	if err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	return a.emit(enc...)
}

// checkArity performs pass-1 operand-count validation so errors carry the
// right line numbers even before labels resolve.
func (a *assembler) checkArity(shape instShape, rest string) error {
	n := len(splitOperands(rest))
	want := map[instShape]int{
		shNone: 0, shReg: 1, shImm8: 1, shImm32: 1, shRel: 1,
		shRegReg: 2, shRegI8: 2, shRegI32: 2, shPCRel: 2, shLoad: 2, shStore: 2,
	}[shape]
	if n != want {
		return fmt.Errorf("expected %d operand(s), got %d", want, n)
	}
	return nil
}
