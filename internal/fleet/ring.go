// Package fleet shards the rewrite service across worker daemons. A
// gateway routes each /rewrite request to a worker chosen by
// consistent hashing over the request's content-address key, probes
// worker health, fails over along the ring when a worker is down, and
// rate-limits abusive clients. Because the cache key folds the input
// digest with the config fingerprint, identical requests always land
// on the same healthy worker — each worker's RAM and disk tiers stay
// hot for its shard of the keyspace instead of every worker caching
// everything.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// vnodesPerWorker is the number of virtual nodes each worker
// contributes to the ring. 64 keeps the expected load imbalance for a
// handful of workers within a few percent while the whole ring still
// fits in a couple of cache lines' worth of binary searches.
const vnodesPerWorker = 64

// ring is an immutable consistent-hash ring over worker addresses.
// Build one with newRing; route with replicas.
type ring struct {
	workers []string // distinct worker addresses, input order
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the hash circle owned by a
// worker.
type point struct {
	hash   uint64
	worker int // index into workers
}

// newRing builds a ring from the worker addresses (duplicates are
// dropped). An empty address list yields an empty ring that routes
// nothing.
func newRing(workers []string) *ring {
	r := &ring{}
	seen := make(map[string]bool, len(workers))
	for _, w := range workers {
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		r.workers = append(r.workers, w)
	}
	r.points = make([]point, 0, len(r.workers)*vnodesPerWorker)
	for wi, w := range r.workers {
		for v := 0; v < vnodesPerWorker; v++ {
			r.points = append(r.points, point{hash: vnodeHash(w, v), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on worker index so the ring is deterministic even
		// in the (astronomically unlikely) event of a hash collision.
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// vnodeHash positions virtual node v of worker w on the circle.
func vnodeHash(w string, v int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	sum := sha256.Sum256(append([]byte(w+"\x00"), buf[:]...))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a request key (the serve cache key's hex form) on
// the circle.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// replicas returns the workers that own key, primary first, then each
// distinct successor walking clockwise — the failover order. At most
// max workers are returned (0 or negative: all of them).
func (r *ring) replicas(key string, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.workers) {
		max = len(r.workers)
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	taken := make(map[int]bool, max)
	for n := 0; n < len(r.points) && len(out) < max; n++ {
		p := r.points[(i+n)%len(r.points)]
		if taken[p.worker] {
			continue
		}
		taken[p.worker] = true
		out = append(out, r.workers[p.worker])
	}
	return out
}

// primary returns the worker that owns key ("" on an empty ring).
func (r *ring) primary(key string) string {
	reps := r.replicas(key, 1)
	if len(reps) == 0 {
		return ""
	}
	return reps[0]
}
