package fleet

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// maxBuckets bounds the per-client bucket map so an address-spoofing
// client can't grow gateway memory without bound; the coldest bucket
// is dropped (it refills from full on return, which only ever errs in
// the client's favor).
const maxBuckets = 4096

// clientKey identifies the caller for rate limiting: the X-Zipr-Client
// header when present (trusted deployments put an account ID there),
// else the remote address's host part.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Zipr-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
	seen   time.Time // for cold-bucket shedding
}

// limiter is a per-client token-bucket rate limiter: rate tokens/sec,
// burst capacity, one bucket per client key. A zero rate disables
// limiting. now is injectable for tests.
type limiter struct {
	rate  float64
	burst float64
	mu    sync.Mutex
	m     map[string]*bucket
	now   func() time.Time
}

// newLimiter builds a limiter admitting rate requests/sec with a burst
// of 2×rate (minimum 1). rate <= 0 disables limiting.
func newLimiter(rate float64) *limiter {
	l := &limiter{rate: rate, burst: math.Max(1, 2*rate), m: make(map[string]*bucket), now: time.Now}
	return l
}

// allow consumes one token from key's bucket. When the bucket is dry
// it returns false and the wait until one token accrues — the
// Retry-After hint.
func (l *limiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.m[key]
	if b == nil {
		if len(l.m) >= maxBuckets {
			l.shedColdest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.m[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	b.seen = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// shedColdest drops the least-recently-seen bucket. Called with mu
// held.
func (l *limiter) shedColdest() {
	var coldKey string
	var cold time.Time
	for k, b := range l.m {
		if coldKey == "" || b.seen.Before(cold) {
			coldKey, cold = k, b.seen
		}
	}
	delete(l.m, coldKey)
}
