// Command ziprd is the batch rewriting daemon: a long-running front end
// over the zipr pipeline with a content-addressed rewrite cache,
// singleflight de-duplication, bounded-queue admission control (see
// internal/serve) and service-grade telemetry (labeled metrics,
// per-request tracing, a JSONL access log).
//
// Usage:
//
//	ziprd [-j N | -workers N] [-queue N] [-cache-bytes N] [-snapshot-bytes N]
//	      [-delta] [-disk-cache DIR] [-disk-bytes N] [-deadline D]
//	      [-chaos-seed N] [-listen ADDR] [-stats] [-access-log FILE]
//	      [-trace-sample N]
//	ziprd -listen ADDR -gateway WORKER,WORKER,... [-rate R] [-chaos-seed N]
//
// With -gateway, ziprd is not a rewriter at all: it fronts the listed
// worker daemons, routing each /rewrite to the worker that owns its
// content-address key on a consistent-hash ring, failing over along
// the ring when a worker is down (health-probed circuit breakers),
// and rate-limiting clients at -rate requests/second (429 +
// Retry-After). The gateway serves /rewrite, /healthz, /metrics
// (fleet_* families), and /fleet (worker circuit snapshot).
//
// -disk-cache DIR adds a disk-backed second cache tier behind the
// in-memory LRU: rewritten outputs and placement snapshots spill to a
// content-addressed store (crash-safe temp+rename writes, -disk-bytes
// budget with LRU eviction, digest verification on read) so a
// restarted daemon answers previously-seen inputs without a pipeline
// run.
//
// With -listen, ziprd serves HTTP:
//
//	POST /rewrite?transforms=cfi,stackpad:32&layout=diversity&seed=7&arbitration=weighted
//	    request body: the ZELF input image; response body: the
//	    rewritten image. X-Zipr-Cache reports hit, miss, or delta
//	    (answered by patching a placement-snapshot ancestor of an
//	    edited input — see -delta). Saturation
//	    rejects with 503, malformed inputs with 400. A caller-supplied
//	    X-Zipr-Trace ID (1-64 chars of [A-Za-z0-9._-]) is echoed back
//	    and stamped on the access log; absent or invalid IDs are
//	    replaced with a generated one.
//	GET /stats            cache and admission counters as JSON, plus a
//	                      labeled-metrics snapshot with rolling quantiles
//	GET /metrics          Prometheus text exposition (zipr_* families)
//	GET /healthz          liveness probe
//	GET /debug/requests   recent sampled request span trees (JSON)
//	GET /debug/phases     server-lifetime aggregated phase table
//	GET /debug/pprof/     Go profiling endpoints
//
// Without -listen, ziprd runs in JSONL batch mode: one request object
// per stdin line, one response object per stdout line, responses in
// input order regardless of -j. Request fields: id, trace, input
// (base64), transforms, layout, arbitration (two-way, the default, or
// weighted — DESIGN.md §13), seed, deadline_ms. Response fields:
// id, trace, output (base64), input_size, output_size, layout, cached,
// delta, error, class.
//
// -access-log appends one JSON line per request (trace ID, content
// digests, outcome, queue wait, wall time, phase breakdown, error
// class) in both modes. -trace-sample=N keeps every N-th request's
// span tree for /debug/requests (default 1: all; 0 disables).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"zipr"
	"zipr/internal/fleet"
	"zipr/internal/obs"
	"zipr/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ziprd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "", "HTTP listen address (empty: JSONL batch mode on stdin/stdout)")
	workers := flag.Int("j", 0, "max concurrent pipeline runs (0 = GOMAXPROCS)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "rewrite cache byte budget (0 = default 64 MiB, negative disables)")
	snapBytes := flag.Int64("snapshot-bytes", 0, "placement-snapshot byte budget for delta rewriting (0 = default 32 MiB, negative disables)")
	delta := flag.Bool("delta", true, "answer edited inputs by delta-patching placement-snapshot ancestors")
	diskCache := flag.String("disk-cache", "", "directory for the disk-backed second cache tier (empty: RAM only)")
	diskBytes := flag.Int64("disk-bytes", 0, "disk-tier byte budget (0 = default 256 MiB)")
	gateway := flag.String("gateway", "", "run as a fleet gateway over these comma-separated worker addresses")
	rate := flag.Float64("rate", 0, "gateway per-client admission rate in requests/second (0 = unlimited)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	chaosSeed := flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off)")
	stats := flag.Bool("stats", false, "print cache and admission counters to stderr on exit (batch mode)")
	accessLog := flag.String("access-log", "", "append one JSON line per request to this file")
	traceSample := flag.Int64("trace-sample", 1, "keep every N-th request's span tree for /debug/requests (0 disables)")
	flag.Parse()

	reg := obs.NewRegistry()

	if *gateway != "" {
		if *listen == "" {
			return fmt.Errorf("-gateway requires -listen")
		}
		gcfg := fleet.Config{Workers: strings.Split(*gateway, ","), Rate: *rate, Registry: reg}
		if *chaosSeed != 0 {
			gcfg.Chaos = zipr.NewFaultInjector(*chaosSeed)
			fmt.Fprintf(os.Stderr, "ziprd: chaos: %s\n", gcfg.Chaos.Describe())
		}
		g := fleet.New(gcfg)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		g.Start(ctx)
		fmt.Fprintf(os.Stderr, "ziprd: gateway on %s over %s\n", *listen, *gateway)
		return http.ListenAndServe(*listen, g.Handler(reg))
	}

	opts := serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheBytes:    *cacheBytes,
		SnapshotBytes: *snapBytes,
		Trace:         obs.New(),
		Registry:      reg,
	}
	if !*delta {
		opts.SnapshotBytes = -1
	}
	if *chaosSeed != 0 {
		opts.Chaos = zipr.NewFaultInjector(*chaosSeed)
		fmt.Fprintf(os.Stderr, "ziprd: chaos: %s\n", opts.Chaos.Describe())
	}
	if *diskCache != "" {
		tier, err := serve.OpenDiskTier(*diskCache, *diskBytes)
		if err != nil {
			return fmt.Errorf("disk cache: %w", err)
		}
		defer tier.Close()
		opts.Disk = tier
	}
	s := serve.New(opts)
	defer s.Close()

	d := newDaemon(s, reg, *deadline)
	d.sample = *traceSample
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("access log: %w", err)
		}
		defer f.Close()
		d.logW = f
	}

	if *listen != "" {
		fmt.Fprintf(os.Stderr, "ziprd: listening on %s (j=%d)\n", *listen, *workers)
		return http.ListenAndServe(*listen, newHandler(d))
	}
	err := runBatch(d, os.Stdin, os.Stdout, *workers)
	if *stats {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "ziprd: %d runs, %d hits, %d misses, %d delta, %d shared, %d evicted, %d rejected\n",
			st.PipelineRuns, st.Hits, st.Misses, st.DeltaHits, st.Shared, st.Evictions, st.Rejected)
	}
	return err
}

// request is one JSONL batch request. Input is base64 in the wire form
// (encoding/json's []byte convention). Trace is an optional
// caller-supplied trace ID, echoed back on the response.
type request struct {
	ID          string `json:"id,omitempty"`
	Trace       string `json:"trace,omitempty"`
	Input       []byte `json:"input"`
	Transforms  string `json:"transforms,omitempty"`
	Layout      string `json:"layout,omitempty"`
	Arbitration string `json:"arbitration,omitempty"`
	ISA         string `json:"isa,omitempty"`
	Seed        int64  `json:"seed,omitempty"`
	DeadlineMS  int64  `json:"deadline_ms,omitempty"`
}

// response is one JSONL batch response (also the /stats error shape).
type response struct {
	ID         string `json:"id,omitempty"`
	Trace      string `json:"trace,omitempty"`
	Output     []byte `json:"output,omitempty"`
	InputSize  int    `json:"input_size,omitempty"`
	OutputSize int    `json:"output_size,omitempty"`
	Layout     string `json:"layout,omitempty"`
	Cached     bool   `json:"cached"`
	Delta      bool   `json:"delta,omitempty"`
	Error      string `json:"error,omitempty"`
	Class      string `json:"class,omitempty"`
}

// runBatch consumes JSONL requests from r and emits JSONL responses to
// w in input order. Up to jobs requests are processed concurrently
// (0 = GOMAXPROCS via the server's admission control; the reorder
// window is bounded by the worker count).
func runBatch(d *daemon, r io.Reader, w io.Writer, jobs int) error {
	if jobs <= 0 {
		jobs = 4
	}
	// Responses must come out in input order: the reader enqueues one
	// result channel per line, a single writer drains them in order, and
	// the per-line goroutines (bounded by sem) fill them as they finish.
	pending := make(chan chan response, jobs)
	sem := make(chan struct{}, jobs)
	writeErr := make(chan error, 1)
	go func() {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		var first error
		for ch := range pending {
			resp := <-ch
			if first == nil {
				if err := enc.Encode(resp); err != nil {
					first = err
				}
			}
		}
		if first == nil {
			first = bw.Flush()
		}
		writeErr <- first
	}()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var line int
	for sc.Scan() {
		line++
		raw := append([]byte(nil), sc.Bytes()...)
		ch := make(chan response, 1)
		pending <- ch
		sem <- struct{}{}
		go func(line int, raw []byte) {
			defer func() { <-sem }()
			var req request
			if err := json.Unmarshal(raw, &req); err != nil {
				ch <- response{Error: fmt.Sprintf("line %d: %v", line, err), Class: "usage"}
				return
			}
			ch <- d.handle(context.Background(), req)
		}(line, raw)
	}
	close(pending)
	if err := <-writeErr; err != nil {
		return err
	}
	return sc.Err()
}

// statusFor maps the typed error taxonomy onto HTTP: saturation is a
// retryable 503, caller mistakes are 4xx, pipeline failures are 500.
func statusFor(class string) int {
	switch class {
	case "busy":
		return http.StatusServiceUnavailable
	case "usage", "format":
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
