// Package zerr defines the rewriter's error taxonomy: one sentinel per
// pipeline phase, wrapped around the phase's detailed error so callers
// can dispatch on errors.Is without parsing messages. The taxonomy backs
// the pipeline's fail-closed contract — every rewrite ends either in a
// transcript-equivalent binary or in an error carrying exactly one of
// these classes — and the package zipr re-exports the sentinels as its
// public API (internal packages cannot import the root package, so the
// sentinels live here).
package zerr

import (
	"errors"
	"fmt"
)

// Error classes, one per phase of the pipeline that can reject an input.
var (
	// ErrFormat: the input image failed to parse or validate (binfmt).
	ErrFormat = errors.New("malformed input")
	// ErrDisasm: disassembly failed (e.g. no text segment).
	ErrDisasm = errors.New("disassembly failed")
	// ErrCFG: IR construction failed (e.g. the entry point does not
	// decode to an instruction).
	ErrCFG = errors.New("ir construction failed")
	// ErrTransform: a transform misused the IR API or produced an
	// invalid program.
	ErrTransform = errors.New("transform failed")
	// ErrLayout: reassembly could not produce a coherent layout (carve
	// conflicts, unencodable instructions, invalid output).
	ErrLayout = errors.New("layout failed")
	// ErrExhausted: reassembly ran out of address space for a hard
	// constraint (chain slots, sled footprints) that the overflow area
	// cannot absorb.
	ErrExhausted = errors.New("address space exhausted")
	// ErrLoad: the loader rejected a binary or its library set.
	ErrLoad = errors.New("load failed")
	// ErrBusy: the serving layer refused admission — the queue was full
	// or the request's deadline expired before a worker picked it up.
	// Unlike the pipeline classes it describes transient load, not the
	// input: the same request can succeed on retry.
	ErrBusy = errors.New("server saturated")
)

// ErrInjected marks errors caused by deliberate fault injection
// (internal/fault). It is orthogonal to the classes above: an injected
// entry-loss error satisfies both errors.Is(err, ErrCFG) and
// errors.Is(err, ErrInjected).
var ErrInjected = errors.New("injected fault")

// classes lists every taxonomy class, in pipeline order.
var classes = []struct {
	err  error
	name string
}{
	{ErrFormat, "format"},
	{ErrDisasm, "disasm"},
	{ErrCFG, "cfg"},
	{ErrTransform, "transform"},
	{ErrExhausted, "exhausted"},
	{ErrLayout, "layout"},
	{ErrLoad, "load"},
	{ErrBusy, "busy"},
}

// ClassOf returns the taxonomy class of err, or nil if err carries none.
// ErrExhausted is checked before ErrLayout so exhaustion keeps its more
// specific class even when a caller also tagged the broader one.
func ClassOf(err error) error {
	for _, c := range classes {
		if errors.Is(err, c.err) {
			return c.err
		}
	}
	return nil
}

// ClassName returns a short stable name for err's taxonomy class
// ("format", "disasm", ...), or "" when err carries none.
func ClassName(err error) string {
	for _, c := range classes {
		if errors.Is(err, c.err) {
			return c.name
		}
	}
	return ""
}

// Tag wraps err with the given class unless err already carries a
// taxonomy class (the innermost phase knows best; outer phases only
// supply a default). A nil err stays nil.
func Tag(class, err error) error {
	if err == nil {
		return nil
	}
	if ClassOf(err) != nil {
		return err
	}
	return fmt.Errorf("%w: %w", class, err)
}
