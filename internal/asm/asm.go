// Package asm implements a two-pass assembler for ZVM-32 producing ZELF
// binaries. It supports labels, label arithmetic, data directives,
// sections with explicit base addresses, exports/imports and library
// references. The synthetic-workload generator emits this syntax, so the
// assembler is the "compiler" of the reproduction pipeline.
//
// Syntax overview (one statement per line, ';' or '#' starts a comment):
//
//	.text 0x00100000        ; begin text section at the given base
//	.data 0x00200000        ; begin data section
//	.entry main             ; program entry point (executables)
//	.type exec              ; "exec" (default) or "lib"
//	.export name            ; export the label `name`
//	.export name = label    ; export label under a different name
//	.import name, gotslot   ; loader writes &name into the word at gotslot
//	.lib "libname"          ; require a library
//
//	main:                   ; label
//	    movi r1, 10         ; registers r0..r15 (sp = r15)
//	    lea r2, table       ; PC-relative address formation
//	    load r3, [r2+4]     ; memory operands: [reg], [reg+disp], [reg-disp]
//	    store [r2], r3
//	    jmp loop            ; long (rel32) branch
//	    jz.s done           ; short (rel8) branch, error if out of range
//	    call fn
//	    .byte 1, 2, 0x1f    ; data directives are legal in any section
//	    .word table, 42     ; 32-bit little-endian words; labels allowed
//	    .space 64           ; zero fill
//	    .asciz "hello"      ; NUL-terminated string, \n \t \\ \" \0 escapes
//	    .align 4            ; pad with zeros to a multiple of 4
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// SyntaxError reports an assembly failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// Assemble translates source text into a ZELF binary for the default
// (ZVM-32) instruction set.
func Assemble(src string) (*binfmt.Binary, error) {
	return AssembleArch(src, isa.DefaultArch())
}

// AssembleArch translates source text into a ZELF binary targeting the
// given instruction set. Fixed-width ISAs reject the ".s" short-branch
// mnemonics and require every instruction to start on an aligned
// address (interleave data with ".align").
func AssembleArch(src string, arch isa.Arch) (*binfmt.Binary, error) {
	a := &assembler{
		labels:  map[string]uint32{},
		secBase: map[string]uint32{},
		arch:    isa.Of(arch),
	}
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	a.reset()
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	return a.finish()
}

// MustAssemble is Assemble for sources known valid; it panics on error
// and is intended for tests and internal generators.
func MustAssemble(src string) *binfmt.Binary {
	b, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return b
}

// MustAssembleArch is AssembleArch for sources known valid.
func MustAssembleArch(src string, arch isa.Arch) *binfmt.Binary {
	b, err := AssembleArch(src, arch)
	if err != nil {
		panic(err)
	}
	return b
}

type pendingExport struct {
	name  string
	label string
	line  int
}

type pendingImport struct {
	name  string
	label string
	line  int
}

type assembler struct {
	labels  map[string]uint32
	secBase map[string]uint32 // section name -> base address
	arch    isa.Arch
	text    []byte
	data    []byte
	section string // "text" or "data"

	binType   binfmt.Type
	entrySym  string
	entryLine int
	exports   []pendingExport
	imports   []pendingImport
	libs      []string
}

func (a *assembler) reset() {
	a.text = nil
	a.data = nil
	a.section = ""
	a.exports = nil
	a.imports = nil
	a.libs = nil
	a.binType = 0
	a.entrySym = ""
}

// cur returns a pointer to the active section's buffer.
func (a *assembler) cur() (*[]byte, error) {
	switch a.section {
	case "text":
		return &a.text, nil
	case "data":
		return &a.data, nil
	}
	return nil, fmt.Errorf("no active section (missing .text/.data)")
}

// pc returns the current virtual address in the active section.
func (a *assembler) pc() uint32 {
	switch a.section {
	case "text":
		return a.secBase["text"] + uint32(len(a.text))
	case "data":
		return a.secBase["data"] + uint32(len(a.data))
	}
	return 0
}

func (a *assembler) pass(src string, pass int) error {
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		if err := a.statement(raw, pass); err != nil {
			if se, ok := err.(*SyntaxError); ok {
				return se
			}
			return &SyntaxError{Line: line, Msg: err.Error()}
		}
	}
	return nil
}

// statement processes one source line.
func (a *assembler) statement(raw string, pass int) error {
	s := raw
	if idx := strings.IndexAny(s, ";#"); idx >= 0 {
		// Don't cut inside string literals.
		if q := strings.IndexByte(s, '"'); q < 0 || q > idx {
			s = s[:idx]
		} else if end := strings.LastIndexByte(s, '"'); end >= 0 {
			if idx2 := strings.IndexAny(s[end:], ";#"); idx2 >= 0 {
				s = s[:end+idx2]
			}
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels (possibly several, possibly followed by a statement).
	for {
		idx := strings.IndexByte(s, ':')
		if idx < 0 || strings.ContainsAny(s[:idx], " \t\",[") {
			break
		}
		name := s[:idx]
		if !validIdent(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		if pass == 1 {
			if _, dup := a.labels[name]; dup {
				return fmt.Errorf("duplicate label %q", name)
			}
			if a.section == "" {
				return fmt.Errorf("label %q outside any section", name)
			}
			a.labels[name] = a.pc()
		}
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s, pass)
	}
	return a.instruction(s, pass)
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// emit appends bytes to the current section.
func (a *assembler) emit(b ...byte) error {
	buf, err := a.cur()
	if err != nil {
		return err
	}
	*buf = append(*buf, b...)
	return nil
}

func (a *assembler) directive(s string, pass int) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text", ".data":
		sec := name[1:]
		if rest != "" {
			base, err := a.number(rest)
			if err != nil {
				return fmt.Errorf("bad section base %q: %v", rest, err)
			}
			if base%4096 != 0 {
				return fmt.Errorf("section base %#x not page-aligned", base)
			}
			if pass == 1 {
				if old, ok := a.secBase[sec]; ok && old != uint32(base) {
					return fmt.Errorf("section %s base redefined", sec)
				}
				a.secBase[sec] = uint32(base)
			}
		} else if _, ok := a.secBase[sec]; !ok {
			if pass == 1 {
				// Defaults mirror the synthetic toolchain's layout.
				if sec == "text" {
					a.secBase[sec] = 0x00100000
				} else {
					a.secBase[sec] = 0x00400000
				}
			}
		}
		a.section = sec
		return nil
	case ".entry":
		if !validIdent(rest) {
			return fmt.Errorf("bad entry symbol %q", rest)
		}
		a.entrySym = rest
		return nil
	case ".type":
		switch rest {
		case "exec":
			a.binType = binfmt.Exec
		case "lib":
			a.binType = binfmt.Lib
		default:
			return fmt.Errorf("bad .type %q (want exec or lib)", rest)
		}
		return nil
	case ".export":
		sym, label := rest, rest
		if before, after, ok := strings.Cut(rest, "="); ok {
			sym = strings.TrimSpace(before)
			label = strings.TrimSpace(after)
		}
		if !validIdent(sym) || !validIdent(label) {
			return fmt.Errorf("bad .export %q", rest)
		}
		a.exports = append(a.exports, pendingExport{name: sym, label: label})
		return nil
	case ".import":
		parts := splitOperands(rest)
		if len(parts) != 2 || !validIdent(parts[1]) {
			return fmt.Errorf("bad .import %q (want name, gotlabel)", rest)
		}
		a.imports = append(a.imports, pendingImport{name: parts[0], label: parts[1]})
		return nil
	case ".lib":
		lib := strings.Trim(rest, "\"")
		if lib == "" {
			return fmt.Errorf("bad .lib %q", rest)
		}
		a.libs = append(a.libs, lib)
		return nil
	case ".byte":
		for _, p := range splitOperands(rest) {
			v, err := a.number(p)
			if err != nil {
				return fmt.Errorf("bad .byte operand %q: %v", p, err)
			}
			if v < -128 || v > 255 {
				return fmt.Errorf(".byte operand %d out of range", v)
			}
			if err := a.emit(byte(v)); err != nil {
				return err
			}
		}
		return nil
	case ".word":
		for _, p := range splitOperands(rest) {
			var v int64
			if pass == 1 {
				// Sizes only; label values may not be known yet.
				if err := a.emit(0, 0, 0, 0); err != nil {
					return err
				}
				continue
			}
			v, err := a.value(p)
			if err != nil {
				return fmt.Errorf("bad .word operand %q: %v", p, err)
			}
			if err := a.emit(byte(v), byte(v>>8), byte(v>>16), byte(v>>24)); err != nil {
				return err
			}
		}
		return nil
	case ".space":
		n, err := a.number(rest)
		if err != nil || n < 0 || n > 1<<26 {
			return fmt.Errorf("bad .space size %q", rest)
		}
		return a.emit(make([]byte, n)...)
	case ".align":
		n, err := a.number(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("bad .align %q (want power of two)", rest)
		}
		pad := (uint32(n) - a.pc()%uint32(n)) % uint32(n)
		return a.emit(make([]byte, pad)...)
	case ".asciz":
		str, err := parseString(rest)
		if err != nil {
			return err
		}
		return a.emit(append([]byte(str), 0)...)
	}
	return fmt.Errorf("unknown directive %s", name)
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("bad string literal %s", s)
	}
	body := s[1 : len(s)-1]
	var out strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			out.WriteByte('\n')
		case 't':
			out.WriteByte('\t')
		case '\\':
			out.WriteByte('\\')
		case '"':
			out.WriteByte('"')
		case '0':
			out.WriteByte(0)
		default:
			return "", fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out.String(), nil
}

// splitOperands splits on commas that are outside brackets and quotes.
func splitOperands(s string) []string {
	var parts []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(parts) > 0 {
		parts = append(parts, last)
	}
	return parts
}

// number parses a pure numeric constant (no labels).
func (a *assembler) number(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else {
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, err
	}
	r := int64(v)
	if neg {
		r = -r
	}
	return r, nil
}

// value evaluates a numeric constant, a label, or label±constant.
func (a *assembler) value(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if n, err := a.number(s); err == nil {
		return n, nil
	}
	// label, label+N, label-N
	sym := s
	var off int64
	if i := strings.LastIndexAny(s, "+-"); i > 0 {
		n, err := a.number(s[i:])
		if err == nil {
			sym = strings.TrimSpace(s[:i])
			off = n
		}
	}
	if !validIdent(sym) {
		return 0, fmt.Errorf("bad expression %q", s)
	}
	addr, ok := a.labels[sym]
	if !ok {
		return 0, fmt.Errorf("undefined label %q", sym)
	}
	return int64(addr) + off, nil
}

func (a *assembler) finish() (*binfmt.Binary, error) {
	bin := &binfmt.Binary{Type: a.binType}
	if bin.Type == 0 {
		bin.Type = binfmt.Exec
	}
	if len(a.text) == 0 {
		return nil, fmt.Errorf("asm: empty text section")
	}
	bin.Segments = append(bin.Segments, binfmt.Segment{
		Kind: binfmt.Text, VAddr: a.secBase["text"], Data: a.text,
	})
	if len(a.data) > 0 {
		bin.Segments = append(bin.Segments, binfmt.Segment{
			Kind: binfmt.Data, VAddr: a.secBase["data"], Data: a.data,
		})
	}
	if bin.Type == binfmt.Exec {
		sym := a.entrySym
		if sym == "" {
			sym = "main"
		}
		addr, ok := a.labels[sym]
		if !ok {
			return nil, fmt.Errorf("asm: entry symbol %q undefined", sym)
		}
		bin.Entry = addr
	}
	for _, e := range a.exports {
		addr, ok := a.labels[e.label]
		if !ok {
			return nil, fmt.Errorf("asm: exported label %q undefined", e.label)
		}
		bin.Exports = append(bin.Exports, binfmt.Symbol{Name: e.name, Addr: addr})
	}
	for _, im := range a.imports {
		addr, ok := a.labels[im.label]
		if !ok {
			return nil, fmt.Errorf("asm: import GOT label %q undefined", im.label)
		}
		bin.Imports = append(bin.Imports, binfmt.Import{Name: im.name, GotAddr: addr})
	}
	bin.Libs = append(bin.Libs, a.libs...)
	if err := bin.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return bin, nil
}
