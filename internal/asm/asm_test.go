package asm

import (
	"strings"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// run assembles src, loads it (with optional libs), and executes it.
func run(t *testing.T, src string, stdin string, libs map[string]*binfmt.Binary) vm.Result {
	t.Helper()
	bin, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := vm.New(vm.WithStdin(strings.NewReader(stdin)), vm.WithMaxSteps(1_000_000))
	if err := loader.Load(m, bin, libs); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestHelloWorld(t *testing.T) {
	src := `
.text 0x00100000
main:
    lea r2, msg
    movi r0, 2      ; transmit
    movi r1, 1
    movi r3, 6
    syscall
    movi r0, 1      ; terminate
    movi r1, 0
    syscall
msg: .asciz "hello"
`
	res := run(t, src, "", nil)
	if string(res.Output) != "hello\x00" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d", res.ExitCode)
	}
}

func TestLoopsBranchesAndData(t *testing.T) {
	// Sum the .word array using a counted loop; exit(sum).
	src := `
.text 0x00100000
.entry start
start:
    movi r2, 0          ; sum
    movi r3, 0          ; i
    lea  r4, arr_ptr
    load r4, [r4]       ; r4 = &arr (via data pointer)
loop:
    cmpi8 r3, 4
    jge done
    mov r5, r3
    shli r5, 2
    add r5, r4
    load r6, [r5]
    add r2, r6
    inc r3
    jmp loop
done:
    mov r1, r2
    movi r0, 1
    syscall
.data 0x00200000
arr: .word 10, 20, 30, 40
arr_ptr: .word arr
`
	res := run(t, src, "", nil)
	if res.ExitCode != 100 {
		t.Fatalf("exit = %d, want 100", res.ExitCode)
	}
}

func TestShortBranchAndLabelArith(t *testing.T) {
	src := `
.text 0x00100000
main:
    movi r2, 3
l:  dec r2
    jnz.s l
    lea r3, tbl+4
    load r1, [r3]
    movi r0, 1
    syscall
.align 4
tbl: .word 7, 9
`
	res := run(t, src, "", nil)
	if res.ExitCode != 9 {
		t.Fatalf("exit = %d, want 9", res.ExitCode)
	}
}

func TestCallAndStack(t *testing.T) {
	src := `
.text 0x00100000
main:
    movi r1, 5
    call double
    call double
    movi r0, 1
    syscall          ; exit r1 = 20
double:
    add r1, r1
    ret
`
	res := run(t, src, "", nil)
	if res.ExitCode != 20 {
		t.Fatalf("exit = %d, want 20", res.ExitCode)
	}
}

func TestJumpTableViaData(t *testing.T) {
	src := `
.text 0x00100000
main:
    movi r2, 2           ; select case 2
    shli r2, 2
    movi r3, jumptab
    add r3, r2
    load r4, [r3]
    jmpr r4
case0: movi r1, 100
    jmp out
case1: movi r1, 101
    jmp out
case2: movi r1, 102
    jmp out
out:
    movi r0, 1
    syscall
.data 0x00200000
jumptab: .word case0, case1, case2
`
	res := run(t, src, "", nil)
	if res.ExitCode != 102 {
		t.Fatalf("exit = %d, want 102", res.ExitCode)
	}
}

func TestEcho(t *testing.T) {
	src := `
.text 0x00100000
main:
    movi r0, 3       ; receive
    movi r1, 0
    movi r2, buf
    movi r3, 8
    syscall
    mov r3, r0       ; bytes read
    movi r0, 2       ; transmit
    movi r1, 1
    movi r2, buf
    syscall
    movi r0, 1
    movi r1, 0
    syscall
.data 0x00200000
buf: .space 16
`
	res := run(t, src, "abcdefgh", nil)
	if string(res.Output) != "abcdefgh" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestImportExportAcrossLibrary(t *testing.T) {
	libSrc := `
.type lib
.text 0x00700000
triple:
    mov r2, r1
    add r1, r2
    add r1, r2
    ret
.export lib_triple = triple
`
	lib, err := Assemble(libSrc)
	if err != nil {
		t.Fatalf("assemble lib: %v", err)
	}
	exeSrc := `
.type exec
.lib "mathlib"
.import lib_triple, got_triple
.text 0x00100000
main:
    movi r1, 7
    movi r5, got_triple
    load r5, [r5]
    callr r5
    movi r0, 1
    syscall
.data 0x00200000
got_triple: .word 0
`
	res := run(t, exeSrc, "", map[string]*binfmt.Binary{"mathlib": lib})
	if res.ExitCode != 21 {
		t.Fatalf("exit = %d, want 21", res.ExitCode)
	}
}

func TestDirectivesByteSpaceAlign(t *testing.T) {
	bin, err := Assemble(`
.text 0x00100000
main: ret
.data 0x00200000
a: .byte 1, 2, 0xff
   .align 8
b: .space 3
c: .asciz "x\n\t\"\\\0"
`)
	if err != nil {
		t.Fatal(err)
	}
	d := bin.DataSeg()
	if d == nil {
		t.Fatal("no data segment")
	}
	if d.Data[0] != 1 || d.Data[1] != 2 || d.Data[2] != 0xff {
		t.Fatalf(".byte wrong: % x", d.Data[:3])
	}
	// b at offset 8 after align.
	want := []byte{'x', '\n', '\t', '"', '\\', 0, 0}
	got := d.Data[11 : 11+len(want)]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf(".asciz wrong at %d: % x want % x", i, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, substr string
	}{
		{"unknown mnemonic", ".text\nmain: frob r1", "unknown mnemonic"},
		{"undefined label", ".text\nmain: jmp nowhere", "undefined label"},
		{"duplicate label", ".text\nx: nop\nx: nop\nmain: ret", "duplicate"},
		{"bad register", ".text\nmain: push r99", "bad register"},
		{"short out of range", ".text\nmain: jmp.s far\n.space 600\nfar: ret", "out of range"},
		{"no text", ".data\nx: .byte 1", "empty text"},
		{"no entry", ".text\nstart: ret", "entry symbol"},
		{"bad directive", ".text\n.bogus 4\nmain: ret", "unknown directive"},
		{"arity", ".text\nmain: add r1", "expected 2 operand"},
		{"label outside section", "x: nop", "outside any section"},
		{"unaligned base", ".text 0x100001\nmain: ret", "page-aligned"},
		{"bad string", ".text\nmain: ret\n.data\ns: .asciz nope", "bad string"},
		{"bad escape", ".text\nmain: ret\n.data\ns: .asciz \"\\q\"", "unknown escape"},
		{"byte range", ".text\nmain: ret\n.data\nb: .byte 300", "out of range"},
		{"import arity", ".import onlyname\n.text\nmain: ret", "bad .import"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatal("Assemble succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.substr) {
				t.Fatalf("error %q does not contain %q", err, tt.substr)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble(".text\nmain: ret\nnop\nbadmn r1\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 4 {
		t.Fatalf("error line = %d, want 4", se.Line)
	}
}

func TestCommentsDoNotBreakStrings(t *testing.T) {
	bin := MustAssemble(`
.text 0x00100000
main: ret             ; trailing comment
.data 0x00200000
s: .asciz "a;b#c"     ; comment after string
`)
	d := bin.DataSeg().Data
	if string(d[:6]) != "a;b#c\x00" {
		t.Fatalf("string data = %q", d[:6])
	}
}

func TestPass1Pass2SizesAgree(t *testing.T) {
	// Every mnemonic once; pass 1 reserved sizes must equal pass 2
	// encodings, or labels after the code would shift.
	src := `
.text 0x00100000
main:
    nop
    syscall
    push r1
    pop r2
    jmpr r3
    callr r4
    inc r5
    dec r6
    not r7
    push8 -3
    pushi end
    jmp end
    jmp.s end2
    call end
    jz end
    jnz.s end2
    add r1, r2
    cmp r1, r2
    mov r1, r2
    addi8 r1, 4
    shli r1, 2
    movi r1, end
    cmpi r1, 55
    lea r1, end
    loadpc r1, w
    load r1, [r2+4]
    storeb [r2-4], r1
end2:
    nop
end:
    movi r0, 1
    movi r1, 0
    syscall
w: .word 5
`
	bin, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Decode the whole text linearly; every instruction must decode until
	// the trailing data word.
	text := bin.Text().Data
	off := 0
	for off < len(text)-4 {
		in, err := isa.Decode(text[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		off += in.Len()
	}
	if off != len(text)-4 {
		t.Fatalf("resync mismatch: off=%d len=%d", off, len(text))
	}
}
