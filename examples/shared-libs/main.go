// shared-libs: the paper's Apache scenario — a main executable plus
// shared libraries, all rewritten independently and then loaded
// together. Exported symbols are pinned addresses, so the loader's GOT
// resolution keeps working against rewritten libraries, and mixing
// rewritten and original modules in one process also works (each
// module's CFI is module-local).
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipr"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

func run(exe *binfmt.Binary, libs map[string]*binfmt.Binary, input []byte) vm.Result {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(50_000_000))
	if err := loader.Load(m, exe, libs); err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	exeProfile, libProfiles := synth.ApacheProfiles(0.2)
	origLibs := map[string]*binfmt.Binary{}
	for i, lp := range libProfiles {
		lib, err := synth.Build(int64(300+i), lp)
		if err != nil {
			log.Fatal(err)
		}
		origLibs[lp.LibName] = lib
	}
	exe, err := synth.Build(299, exeProfile)
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("GET /index.html HTTP/1.0\r\n\r\n")
	baseline := run(exe, origLibs, input)
	fmt.Printf("original stack:   exit=%d steps=%d\n", baseline.ExitCode, baseline.Steps)

	// Rewrite every module: CFI on the executable, Null on the libraries
	// (mirroring a deployment that hardens the exposed binary first).
	rwLibs := map[string]*binfmt.Binary{}
	for name, lib := range origLibs {
		rl, rep, err := zipr.RewriteBinary(lib.Clone(), zipr.Config{
			Transforms: []zipr.Transform{zipr.Null()},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rewrote lib %-8s %6d -> %6d bytes (%+.1f%%), %d exports pinned\n",
			name, rep.InputSize, rep.OutputSize, rep.SizeOverhead()*100, len(lib.Exports))
		rwLibs[name] = rl
	}
	rwExe, rep, err := zipr.RewriteBinary(exe.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.CFI()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewrote exe       %6d -> %6d bytes (%+.1f%%), CFI enabled\n",
		rep.InputSize, rep.OutputSize, rep.SizeOverhead()*100)

	all := run(rwExe, rwLibs, input)
	fmt.Printf("rewritten stack:  exit=%d steps=%d\n", all.ExitCode, all.Steps)
	mixed := run(rwExe, origLibs, input)
	fmt.Printf("mixed stack:      exit=%d steps=%d (rewritten exe + original libs)\n",
		mixed.ExitCode, mixed.Steps)

	same := all.ExitCode == baseline.ExitCode && bytes.Equal(all.Output, baseline.Output) &&
		mixed.ExitCode == baseline.ExitCode && bytes.Equal(mixed.Output, baseline.Output)
	fmt.Printf("=> all three configurations behave identically: %v\n", same)
}
