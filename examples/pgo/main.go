// pgo: profile-guided layout — the paper's "well-suited for program
// optimization" claim realized. A program whose error paths (cold
// functions) interleave with its hot code is (1) instrumented with the
// profiler transform, (2) run on training inputs to collect per-function
// execution counts, and (3) rewritten under the profile-guided layout,
// which packs the hot functions densely and pushes the cold code away.
// The working set of a production-like run shrinks accordingly, while
// an input that takes the error path still behaves identically.
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipr"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/synth"
	"zipr/internal/vm"
)

func newMachine(bin *binfmt.Binary, input []byte) *vm.Machine {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(50_000_000))
	if err := loader.Load(m, bin, nil); err != nil {
		log.Fatal(err)
	}
	return m
}

func run(bin *binfmt.Binary, input []byte) vm.Result {
	m := newMachine(bin, input)
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	profile := synth.Profile{
		Name:          "pgodemo",
		NumFuncs:      20,
		OpsMin:        6,
		OpsMax:        20,
		LoopIters:     16,
		ColdFuncs:     100, // most of the code is error paths
		DirectCallAll: true,
		HeapPages:     1,
		InputLen:      32,
	}
	original, err := synth.Build(21, profile)
	if err != nil {
		log.Fatal(err)
	}
	training := bytes.Repeat([]byte{0x42}, profile.InputLen) // no 0xFF: hot path
	errorInput := append(bytes.Repeat([]byte{0x42}, profile.InputLen-1), 0xFF)

	// Step 1+2: instrument, run training input, read the counters.
	prof := zipr.NewProfiler()
	instrumented, _, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{prof},
	})
	if err != nil {
		log.Fatal(err)
	}
	m := newMachine(instrumented, training)
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	var hot []uint32
	cold := 0
	for entry, ctr := range prof.Counters {
		raw, err := m.ReadMem(ctr, 4)
		if err != nil {
			log.Fatal(err)
		}
		count := uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24
		if count > 0 {
			hot = append(hot, entry)
		} else {
			cold++
		}
	}
	fmt.Printf("profiled %d functions: %d hot, %d cold\n", len(prof.Counters), len(hot), cold)

	// Step 3: rewrite under the profile-guided layout.
	pgo, _, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Layout:   zipr.LayoutProfileGuided,
		HotFuncs: hot,
	})
	if err != nil {
		log.Fatal(err)
	}
	baselineRW, _, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.Null()},
	})
	if err != nil {
		log.Fatal(err)
	}

	base := run(original, training)
	opt := run(baselineRW, training)
	fast := run(pgo, training)
	fmt.Printf("hot-path run:   original %3d pages | optimized layout %3d pages | profile-guided %3d pages\n",
		base.PagesTouched, opt.PagesTouched, fast.PagesTouched)
	fmt.Printf("hot-path MaxRSS vs original: %+.0f%% (the optimized layout's referent\n",
		100*float64(fast.PagesTouched-base.PagesTouched)/float64(base.PagesTouched))
	fmt.Println("locality already clusters this program's hot calls; profile-guided")
	fmt.Println("placement guarantees the segregation instead of relying on call shape)")
	same := base.ExitCode == fast.ExitCode && bytes.Equal(base.Output, fast.Output)
	fmt.Printf("hot-path behavior identical: %v\n", same)

	baseErr := run(original, errorInput)
	fastErr := run(pgo, errorInput)
	sameErr := baseErr.ExitCode == fastErr.ExitCode && bytes.Equal(baseErr.Output, fastErr.Output)
	fmt.Printf("error-path run: original %3d pages | profile-guided %3d pages (cold code paged in), identical: %v\n",
		baseErr.PagesTouched, fastErr.PagesTouched, sameErr)
}
