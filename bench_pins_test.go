package zipr_test

// Pin-count benchmarks (ISSUE 9 arbitration bar): each benchmark
// rewrites the full synthetic corpus under one arbitration mode and
// reports the aggregate pin and sled counts as custom metrics, so the
// trajectory file records both sides of the three-way-arbitration
// contract and `make benchgate` can gate the ratio with
// benchjson -compare -metric pins: weighted arbitration must pin
// strictly less than the two-way baseline.

import (
	"sync"
	"testing"

	"zipr"
	"zipr/internal/cgcsim"
	"zipr/internal/synth"
)

var pinsCorpus struct {
	once sync.Once
	imgs [][]byte
	err  error
}

// pinsCorpusImages marshals (once) every corpus CB.
func pinsCorpusImages(b *testing.B) [][]byte {
	b.Helper()
	pinsCorpus.once.Do(func() {
		corpus, err := cgcsim.Corpus(synth.CorpusSize)
		if err != nil {
			pinsCorpus.err = err
			return
		}
		for _, cb := range corpus {
			img, err := cb.Bin.Marshal()
			if err != nil {
				pinsCorpus.err = err
				return
			}
			pinsCorpus.imgs = append(pinsCorpus.imgs, img)
		}
	})
	if pinsCorpus.err != nil {
		b.Fatal(pinsCorpus.err)
	}
	return pinsCorpus.imgs
}

// benchCorpusPins rewrites the whole corpus under the given arbitration
// mode and reports aggregate pins and sleds.
func benchCorpusPins(b *testing.B, arb zipr.ArbitrationKind) {
	imgs := pinsCorpusImages(b)
	var pins, sleds int
	for i := 0; i < b.N; i++ {
		pins, sleds = 0, 0
		for _, img := range imgs {
			_, rep, err := zipr.Rewrite(img, zipr.Config{
				Transforms:  []zipr.Transform{zipr.Null()},
				Arbitration: arb,
			})
			if err != nil {
				b.Fatal(err)
			}
			pins += rep.Stats.Pinned
			sleds += rep.Stats.Sleds
		}
	}
	b.ReportMetric(float64(pins), "pins")
	b.ReportMetric(float64(sleds), "sleds")
}

func BenchmarkCorpusPinsTwoWay(b *testing.B) {
	benchCorpusPins(b, zipr.ArbitrationTwoWay)
}

func BenchmarkCorpusPinsWeighted(b *testing.B) {
	benchCorpusPins(b, zipr.ArbitrationWeighted)
}
