package core

// Range-extension veneer unit tests, pinned at the reassembler level
// where addresses can be controlled to the byte: the encodable-reach
// boundary at exactly ±1 MiB, island sharing between branch sites with
// the same destination, the overflow-area fallback when fragmentation
// leaves no in-reach free slot, and the fail-closed exhaustion when
// even the image end is out of reach.

import (
	"errors"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/vm"
	"zipr/internal/zerr"
)

// bigTestBin builds a minimal executable whose text segment is large
// enough to hold branch spans around the ZVM-64 reach, with the data
// segment parked past any possible text growth.
func bigTestBin(base uint32, size int, entry uint32) *binfmt.Binary {
	return &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: entry,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: base, Data: make([]byte, size)},
			{Kind: binfmt.Data, VAddr: 0x00400000, Data: make([]byte, 64)},
		},
	}
}

// runBin64 loads and executes a rewritten fixed-width binary.
func runBin64(t *testing.T, bin *binfmt.Binary) vm.Result {
	t.Helper()
	m := vm.New(vm.WithMaxSteps(100_000), vm.WithArch(isa.ZVM64))
	for _, seg := range bin.Segments {
		perm := vm.PermR
		if seg.Kind == binfmt.Text {
			perm |= vm.PermX
		} else {
			perm |= vm.PermW
		}
		if err := m.Map(seg.VAddr, len(seg.Data), perm); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMem(seg.VAddr, seg.Data); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPC(bin.Entry)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res
}

// TestVeneerReachBoundary pins the exact encodability edge: a forward
// branch whose displacement is ZVM64Reach-4 encodes directly (zero
// islands), while one word further needs exactly one island — and both
// programs still run to the right exit.
func TestVeneerReachBoundary(t *testing.T) {
	const base = 0x00100000
	cases := []struct {
		name        string
		farOff      uint32 // far chain's pin, relative to base
		wantVeneers int
	}{
		// Branch at base: displacement = farOff - 4.
		{"last-encodable", isa.ZVM64Reach, 0},
		{"first-out-of-reach", isa.ZVM64Reach + 4, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ir.NewProgram(bigTestBin(base, isa.ZVM64Reach+0x1000, base))
			p.Arch = isa.ZVM64
			far := p.AddOrig(base+tc.farOff, isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 7})
			far.Pinned = true
			f2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
			f3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
			far.Fallthrough = f2
			f2.Fallthrough = f3
			entry := p.AddOrig(base, isa.Inst{Op: isa.OpJmp32})
			entry.Pinned = true
			entry.Target = far
			p.Entry = entry

			res, err := Reassemble(p, Options{Placer: optPlacer{}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Veneers != tc.wantVeneers {
				t.Fatalf("veneers = %d, want %d", res.Stats.Veneers, tc.wantVeneers)
			}
			if out := runBin64(t, res.Binary); out.ExitCode != 7 {
				t.Fatalf("exit = %d, want 7", out.ExitCode)
			}
		})
	}
}

// TestVeneerIslandReuse: two branch sites starved for the same
// destination must share one island, not mint one each.
func TestVeneerIslandReuse(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(bigTestBin(base, isa.ZVM64Reach+0x2000, base))
	p.Arch = isa.ZVM64
	// far sits out of reach of both branch sites below.
	far := p.AddOrig(base+isa.ZVM64Reach+12, isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 7})
	far.Pinned = true
	f2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	f3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	far.Fallthrough = f2
	f2.Fallthrough = f3
	// entry: cmp r0,r0 (sets Z); jcc Z far (taken); jmp far (patched,
	// never executed).
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpCmp, Rd: 0, Rs: 0})
	entry.Pinned = true
	jcc := p.NewInst(isa.Inst{Op: isa.OpJcc32, Cc: isa.CcZ})
	jcc.Target = far
	jmp := p.NewInst(isa.Inst{Op: isa.OpJmp32})
	jmp.Target = far
	entry.Fallthrough = jcc
	jcc.Fallthrough = jmp
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Veneers != 1 {
		t.Fatalf("veneers = %d, want 1 (island must be shared between sites)", res.Stats.Veneers)
	}
	if out := runBin64(t, res.Binary); out.ExitCode != 7 {
		t.Fatalf("exit = %d, want 7", out.ExitCode)
	}
}

// TestVeneerOverflowFallback: when fixed regions leave no in-reach free
// slot for an island but the image end is still within reach of the
// branch, the island must land in the overflow area and the program
// must keep working.
func TestVeneerOverflowFallback(t *testing.T) {
	const base = 0x00100000
	const entryAddr = base + isa.ZVM64Reach + 4
	size := int(isa.ZVM64Reach) + 8
	p := ir.NewProgram(bigTestBin(base, size, entryAddr))
	p.Arch = isa.ZVM64
	// far chain at the bottom: movi(8) movi(8) syscall(4) = 20 bytes.
	far := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 9})
	far.Pinned = true
	f2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	f3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	far.Fallthrough = f2
	f2.Fallthrough = f3
	entry := p.AddOrig(entryAddr, isa.Inst{Op: isa.OpJmp32})
	entry.Pinned = true
	entry.Target = far
	p.Entry = entry
	// Everything between the two chains is immovable: no free block can
	// host an island.
	p.Fixed = []ir.Range{{Start: base + 20, End: entryAddr}}

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Veneers != 1 {
		t.Fatalf("veneers = %d, want 1", res.Stats.Veneers)
	}
	if res.Stats.OverflowUsed < isa.ZVM64.VeneerLen() {
		t.Fatalf("overflow = %d bytes, island should have landed there", res.Stats.OverflowUsed)
	}
	if out := runBin64(t, res.Binary); out.ExitCode != 9 {
		t.Fatalf("exit = %d, want 9", out.ExitCode)
	}
}

// TestVeneerExhaustionFailsClosed: no in-reach free slot AND an image
// end beyond reach must surface ErrExhausted — the reassembler must
// never emit a branch it cannot encode.
func TestVeneerExhaustionFailsClosed(t *testing.T) {
	const base = 0x00100000
	const farAddr = base + isa.ZVM64Reach + 4
	size := int(isa.ZVM64Reach) + 4 + 20
	p := ir.NewProgram(bigTestBin(base, size, base))
	p.Arch = isa.ZVM64
	far := p.AddOrig(farAddr, isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 9})
	far.Pinned = true
	f2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	f3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	far.Fallthrough = f2
	f2.Fallthrough = f3
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpJmp32})
	entry.Pinned = true
	entry.Target = far
	p.Entry = entry
	p.Fixed = []ir.Range{{Start: base + 4, End: farAddr}}

	_, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err == nil {
		t.Fatal("expected exhaustion, reassembly succeeded")
	}
	if !errors.Is(err, zerr.ErrExhausted) {
		t.Fatalf("error is not ErrExhausted: %v", err)
	}
}
