// stackpad: the paper's Figure-2 example transform. A vulnerable
// function's 16-byte buffer sits a fixed distance below its saved state;
// an attacker who knows the layout overflows exactly up to the canary...
// unless the rewriter has grown the frame, moving everything the exploit
// aimed at. The example shows the frame allocation instruction being
// rewritten (addi sp, -16 -> addi sp, -80), the exploit's assumptions
// breaking, and normal behavior surviving.
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

const program = `
.text 0x00100000
main:
    movi r0, 3           ; read length byte + payload
    movi r1, 0
    movi r2, inbuf
    movi r3, 64
    syscall
    movi r4, inbuf
    loadb r1, [r4]       ; attacker-controlled write length
    call victim
    movi r0, 1           ; terminate(r1)
    syscall
victim:
    addi sp, -16         ; 16-byte frame: the Figure-2 "i" instruction
    mov r2, sp
    movi r3, 0x41
vloop:
    cmpi8 r1, 0
    jle vdone
    storeb [r2], r3      ; linear overflow when length > 16
    inc r2
    dec r1
    jmp vloop
vdone:
    load r1, [sp+0]      ; value derived from frame contents
    andi r1, 0xff
    addi sp, 16
    ret
.data 0x00200000
inbuf: .space 64
`

func run(bin *binfmt.Binary, input []byte) (vm.Result, error) {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(1_000_000))
	if err := loader.Load(m, bin, nil); err != nil {
		return vm.Result{}, err
	}
	return m.Run()
}

// frameAllocs scans a binary's decodable instructions for sp
// adjustments, returning the distinct negative immediates (frame sizes).
func frameAllocs(bin *binfmt.Binary) []int32 {
	var out []int32
	text := bin.Text()
	off := 0
	for off < len(text.Data) {
		in, err := isa.Decode(text.Data[off:])
		if err != nil {
			off++
			continue
		}
		if (in.Op == isa.OpAddI || in.Op == isa.OpAddI8) && in.Rd == isa.SP && in.Imm < 0 {
			out = append(out, in.Imm)
		}
		off += in.Len()
	}
	return out
}

func main() {
	original, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	padded, report, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.StackPad(64)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame allocations before: %v\n", frameAllocs(original))
	fmt.Printf("frame allocations after:  %v   (file %+.1f%%)\n",
		frameAllocs(padded), report.SizeOverhead()*100)

	// Benign input: write 8 bytes, well inside any frame.
	benign := append([]byte{8}, bytes.Repeat([]byte{0}, 15)...)
	b1, _ := run(original, benign)
	b2, _ := run(padded, benign)
	fmt.Printf("\nbenign run: original exit=%d, padded exit=%d (identical: %v)\n",
		b1.ExitCode, b2.ExitCode, b1.ExitCode == b2.ExitCode)

	// "Exploit": write exactly 20 bytes — past the original 16-byte
	// frame (clobbering the word at [sp+16] the attacker targets), but
	// harmlessly inside the padded 80-byte frame.
	attack := append([]byte{20}, bytes.Repeat([]byte{0}, 15)...)
	a1, err1 := run(original, attack)
	a2, err2 := run(padded, attack)
	fmt.Printf("attack run: original exit=%d err=%v\n", a1.ExitCode, err1)
	fmt.Printf("attack run: padded   exit=%d err=%v\n", a2.ExitCode, err2)
	fmt.Println("\nthe overflow that escaped the original frame lands inside the")
	fmt.Println("padded frame: layout-dependent exploits break (paper Fig. 2)")
}
