package zipr

// Benchmark harness: one bench per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus microbenchmarks of
// the pipeline stages. The figure benches rewrite and execute a corpus
// sample and report the paper's metrics via b.ReportMetric:
//
//	go test -bench=Fig -benchmem            # Figures 4-7
//	go test -bench=Robustness               # §IV-A table
//	go test -bench=Ablate                   # DESIGN.md ablations A1-A3
//	go test -bench=. -benchmem              # everything
//
// cmd/cgc-eval regenerates the full-corpus figures; the benches use a
// fixed sample so they finish in seconds per iteration.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/cfg"
	"zipr/internal/cgcsim"
	"zipr/internal/core"
	"zipr/internal/disasm"
	layoutpkg "zipr/internal/layout"
	"zipr/internal/loader"
	"zipr/internal/obs"
	"zipr/internal/synth"
	"zipr/internal/transform"
	"zipr/internal/vm"
)

// benchCorpusSize is the corpus sample used by the figure benches.
const benchCorpusSize = 6

var (
	benchOnce   sync.Once
	benchCorpus []cgcsim.CB
	benchErr    error
)

func corpusSample(b *testing.B) []cgcsim.CB {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = cgcsim.Corpus(benchCorpusSize)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus
}

func rewriteFunc(layout LayoutKind, tfs ...Transform) cgcsim.RewriteFunc {
	return func(bin *binfmt.Binary) (*binfmt.Binary, error) {
		out, _, err := RewriteBinary(bin, Config{Transforms: tfs, Layout: layout})
		return out, err
	}
}

// evalAndReport runs one configuration over the sample and reports the
// three CGC metrics as custom benchmark units.
func evalAndReport(b *testing.B, prefix string, fn cgcsim.RewriteFunc) {
	b.Helper()
	cbs := corpusSample(b)
	var last cgcsim.Summary
	for i := 0; i < b.N; i++ {
		rows, err := cgcsim.Evaluate(cbs, fn)
		if err != nil {
			b.Fatal(err)
		}
		last = cgcsim.Summarize(rows)
		if last.Functional != last.Total {
			b.Fatalf("%s: only %d/%d functional", prefix, last.Functional, last.Total)
		}
	}
	b.ReportMetric(last.AvgFile, prefix+"-file-%")
	b.ReportMetric(last.AvgExec, prefix+"-cpu-%")
	b.ReportMetric(last.AvgMem, prefix+"-mem-%")
}

// BenchmarkFig4Filesize regenerates the Figure-4 metric (file-size
// overhead) for the baseline configuration.
func BenchmarkFig4Filesize(b *testing.B) {
	evalAndReport(b, "zipr", rewriteFunc(LayoutOptimized, Null()))
}

// BenchmarkFig5Execution regenerates the Figure-5 metric (execution
// overhead) for the CFI configuration, whose shift out of the <5% bin is
// the figure's point.
func BenchmarkFig5Execution(b *testing.B) {
	evalAndReport(b, "zipr+cfi", rewriteFunc(LayoutOptimized, CFI()))
}

// BenchmarkFig6Memory regenerates the Figure-6 metric (MaxRSS overhead)
// including the engineered pathological binary.
func BenchmarkFig6Memory(b *testing.B) {
	cbs := corpusSample(b)
	seed, profile := synth.CBProfile(synth.PathologicalCB)
	patho, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	pathoCB := cgcsim.CB{Name: profile.Name, Bin: patho, Pollers: cbs[0].Pollers}
	all := append(append([]cgcsim.CB(nil), cbs...), pathoCB)
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := cgcsim.Evaluate(all, rewriteFunc(LayoutOptimized, CFI()))
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.Overheads.Mem > worst {
				worst = r.Overheads.Mem
			}
		}
	}
	b.ReportMetric(worst, "outlier-mem-%")
}

// BenchmarkFig7Averages regenerates the Figure-7 averages for both
// configurations side by side.
func BenchmarkFig7Averages(b *testing.B) {
	b.Run("zipr", func(b *testing.B) {
		evalAndReport(b, "zipr", rewriteFunc(LayoutOptimized, Null()))
	})
	b.Run("cfi", func(b *testing.B) {
		evalAndReport(b, "zipr+cfi", rewriteFunc(LayoutOptimized, CFI()))
	})
}

// robustnessBench measures Null-transform rewrite throughput on a scaled
// §IV-A artifact (the table's "time to transform" column) and verifies
// output-transcript parity.
func robustnessBench(b *testing.B, seed int64, profile synth.Profile) {
	lib, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	drv, err := synth.Build(seed+1, synth.TestDriverProfile(profile.LibName, []int{0, 3}))
	if err != nil {
		b.Fatal(err)
	}
	size := lib.FileSize()
	b.SetBytes(int64(size))
	b.ResetTimer()
	var rlib *binfmt.Binary
	for i := 0; i < b.N; i++ {
		rlib, _, err = RewriteBinary(lib.Clone(), Config{Transforms: []Transform{Null()}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	input := []byte("benchmark-parity")
	want := runBench(b, drv, map[string]*binfmt.Binary{profile.LibName: lib}, input)
	got := runBench(b, drv, map[string]*binfmt.Binary{profile.LibName: rlib}, input)
	if want.ExitCode != got.ExitCode || !bytes.Equal(want.Output, got.Output) {
		b.Fatal("rewritten library is not behaviorally equivalent")
	}
}

func runBench(b *testing.B, bin *binfmt.Binary, libs map[string]*binfmt.Binary, input []byte) vm.Result {
	b.Helper()
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(100_000_000))
	if err := loader.Load(m, bin, libs); err != nil {
		b.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkRobustnessLibc rewrites the libc analogue (§IV-A a).
func BenchmarkRobustnessLibc(b *testing.B) {
	robustnessBench(b, 11, synth.LibcProfile(0.05))
}

// BenchmarkRobustnessJVM rewrites the libjvm analogue (§IV-A b).
func BenchmarkRobustnessJVM(b *testing.B) {
	robustnessBench(b, 12, synth.JVMProfile(0.02))
}

// BenchmarkRobustnessApache rewrites the Apache analogue's main
// executable (§IV-A c).
func BenchmarkRobustnessApache(b *testing.B) {
	exeP, _ := synth.ApacheProfiles(0.1)
	exe, err := synth.Build(299, exeP)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(exe.FileSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RewriteBinary(exe.Clone(), Config{Transforms: []Transform{Null()}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblatePinning compares heuristic pinning against the naive
// block-pinning baseline (experiment A1), reporting the file-size gap.
func BenchmarkAblatePinning(b *testing.B) {
	cbs := corpusSample(b)
	var heur, naive cgcsim.Summary
	for i := 0; i < b.N; i++ {
		rows, err := cgcsim.Evaluate(cbs, rewriteFunc(LayoutOptimized, Null()))
		if err != nil {
			b.Fatal(err)
		}
		heur = cgcsim.Summarize(rows)
		rows, err = cgcsim.Evaluate(cbs, rewriteFunc(LayoutOptimized, PinBlocks(), Null()))
		if err != nil {
			b.Fatal(err)
		}
		naive = cgcsim.Summarize(rows)
	}
	b.ReportMetric(heur.AvgFile, "heuristic-file-%")
	b.ReportMetric(naive.AvgFile, "naive-file-%")
}

// BenchmarkAblateLayout compares the optimized and diversity layouts
// (experiment A2), reporting their memory overheads.
func BenchmarkAblateLayout(b *testing.B) {
	cbs := corpusSample(b)
	var opt, div cgcsim.Summary
	for i := 0; i < b.N; i++ {
		rows, err := cgcsim.Evaluate(cbs, rewriteFunc(LayoutOptimized, Null()))
		if err != nil {
			b.Fatal(err)
		}
		opt = cgcsim.Summarize(rows)
		rows, err = cgcsim.Evaluate(cbs, rewriteFunc(LayoutDiversity, Null()))
		if err != nil {
			b.Fatal(err)
		}
		div = cgcsim.Summarize(rows)
	}
	b.ReportMetric(opt.AvgMem, "optimized-mem-%")
	b.ReportMetric(div.AvgMem, "diversity-mem-%")
	b.ReportMetric(opt.AvgFile, "optimized-file-%")
	b.ReportMetric(div.AvgFile, "diversity-file-%")
}

// sledBenchSrc builds the dense-reference program of experiment A3.
const sledBenchSrc = `
.text 0x00100000
.entry main
t0: ret
t1: ret
t2: ret
t3: ret
main:
    movi r4, 0
    movi r5, tab
    load r5, [r5]
    movi r7, 500
lp: callr r5
    dec r7
    jnz lp
    movi r0, 1
    movi r1, 0
    syscall
.data 0x00200000
tab: .word t0, t1, t2, t3
`

// BenchmarkAblateSleds measures dispatch cost through a sled (experiment
// A3): instructions retired per indirect transfer, before and after.
func BenchmarkAblateSleds(b *testing.B) {
	bin, err := asm.Assemble(sledBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	rw, report, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}})
	if err != nil {
		b.Fatal(err)
	}
	if report.Stats.Sleds == 0 {
		b.Fatal("expected a sled")
	}
	var before, after vm.Result
	for i := 0; i < b.N; i++ {
		before = runBench(b, bin, nil, nil)
		after = runBench(b, rw, nil, nil)
	}
	b.ReportMetric(float64(before.Steps), "orig-steps")
	b.ReportMetric(float64(after.Steps), "sled-steps")
}

// BenchmarkAblatePGO measures the profile-guided layout's hot-path
// MaxRSS win on the error-path-heavy workload (experiment A4).
func BenchmarkAblatePGO(b *testing.B) {
	profile := synth.Profile{
		Name: "pgobench", NumFuncs: 20, OpsMin: 6, OpsMax: 20, LoopIters: 16,
		ColdFuncs: 100, DirectCallAll: true, HeapPages: 1, InputLen: 32,
	}
	orig, err := synth.Build(21, profile)
	if err != nil {
		b.Fatal(err)
	}
	training := bytes.Repeat([]byte{0x42}, profile.InputLen)
	prof := NewProfiler()
	instrumented, _, err := RewriteBinary(orig.Clone(), Config{Transforms: []Transform{prof}})
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(vm.WithStdin(bytes.NewReader(training)), vm.WithMaxSteps(200_000_000))
	if err := loader.Load(m, instrumented, nil); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	var hot []uint32
	for entry, ctr := range prof.Counters {
		raw, err := m.ReadMem(ctr, 4)
		if err != nil {
			b.Fatal(err)
		}
		if raw[0]|raw[1]|raw[2]|raw[3] != 0 {
			hot = append(hot, entry)
		}
	}
	var basePages, pgoPages int
	for i := 0; i < b.N; i++ {
		pgo, _, err := RewriteBinary(orig.Clone(), Config{
			Layout: LayoutProfileGuided, HotFuncs: hot,
		})
		if err != nil {
			b.Fatal(err)
		}
		base := runBench(b, orig, nil, training)
		fast := runBench(b, pgo, nil, training)
		basePages, pgoPages = base.PagesTouched, fast.PagesTouched
	}
	b.ReportMetric(float64(basePages), "orig-pages")
	b.ReportMetric(float64(pgoPages), "pgo-pages")
}

// ---------------------------------------------------------------- micro

// BenchmarkRewriteNull measures end-to-end rewrite throughput on a
// mid-size challenge binary.
func BenchmarkRewriteNull(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(bin.FileSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteNoTrace guards the nil-trace contract: run with
// -benchmem and compare against BenchmarkRewriteTraced — a disabled
// trace must add zero allocations per rewrite over the untraced
// pipeline (the instrumentation stays compiled in unconditionally).
func BenchmarkRewriteNoTrace(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}, Trace: nil}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteNoTraceLabeled extends the nil-trace guard to the
// labeled registry: handles resolved from a nil *obs.Registry are
// bumped on every iteration alongside the untraced rewrite, and
// allocs/op must match BenchmarkRewriteNoTrace (within the pipeline's
// few-allocs run-to-run drift) — disabled labeled metrics add zero
// allocations, like a disabled trace. The strict zero-alloc contract
// itself is pinned by TestNilRegistryZeroAlloc.
func BenchmarkRewriteNoTraceLabeled(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	var reg *obs.Registry
	total := reg.Counter("serve.request.total", "requests", "outcome").With("miss")
	latency := reg.Window("serve.request.latency", "wall", 0, "outcome").With("miss")
	depth := reg.Gauge("serve.queue.depth", "waiting").With()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}, Trace: nil}); err != nil {
			b.Fatal(err)
		}
		total.Add(1)
		latency.Observe(int64(i))
		depth.Set(int64(i))
	}
}

// BenchmarkRewriteTraced measures the cost of full per-phase tracing
// (spans, counters, histograms; no sink) for comparison against
// BenchmarkRewriteNoTrace.
func BenchmarkRewriteTraced(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTrace()
		if _, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{Null()}, Trace: tr}); err != nil {
			b.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewriteCFI measures end-to-end rewrite throughput with CFI.
func BenchmarkRewriteCFI(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(bin.FileSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RewriteBinary(bin.Clone(), Config{Transforms: []Transform{CFI()}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisassemble measures the two-disassembler aggregation stage.
func BenchmarkDisassemble(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bin.Text().Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasm.Disassemble(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisassembleSerial measures the dual-disassembler stage with
// the two passes forced back-to-back on one goroutine (the -benchmem
// allocs/op baseline for the scratch-pool diet).
func BenchmarkDisassembleSerial(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bin.Text().Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasm.DisassembleOpts(bin, disasm.Options{Serial: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisassembleParallel measures the concurrent dual disassembly
// and reports its speedup over the serial ordering (expect ~1x on one
// core; the gain shows on a multi-core runner).
func BenchmarkDisassembleParallel(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	bin, err := synth.Build(seed, profile)
	if err != nil {
		b.Fatal(err)
	}
	serialRef := benchWall(b, 3, func() {
		if _, err := disasm.DisassembleOpts(bin, disasm.Options{Serial: true}); err != nil {
			b.Fatal(err)
		}
	})
	b.SetBytes(int64(len(bin.Text().Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disasm.DisassembleOpts(bin, disasm.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpeedup(b, serialRef)
}

// BenchmarkPlaceLargeSynth measures the reassembly stage alone on the
// libc-scale placement-stress workload (≥100k instructions, dense pin
// clusters) and reports the indexed allocator's speedup over the legacy
// slice-scanning placer. Disassembly, CFG and transforms run once
// outside the clock; each iteration is one core.Reassemble, so the
// number under test is placement cost, not pipeline overhead.
func BenchmarkPlaceLargeSynth(b *testing.B) {
	bin, err := synth.Build(77, synth.PlacementStressProfile(1))
	if err != nil {
		b.Fatal(err)
	}
	agg, err := disasm.Disassemble(bin)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := cfg.Build(bin, agg)
	if err != nil {
		b.Fatal(err)
	}
	if err := transform.Apply(prog, transform.Null{}); err != nil {
		b.Fatal(err)
	}
	if len(prog.Insts) < 100_000 {
		b.Fatalf("stress program has only %d instructions, want >= 100k", len(prog.Insts))
	}
	reassemble := func(p core.Placer) *core.Result {
		res, err := core.Reassemble(prog, core.Options{Placer: p})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	// Reassembly must be repeatable on a shared program for the timing
	// loop to be meaningful.
	if a, c := reassemble(layoutpkg.Optimized{}), reassemble(layoutpkg.Optimized{}); !bytes.Equal(a.Binary.Text().Data, c.Binary.Text().Data) {
		b.Fatal("reassembly of a shared program is not repeatable")
	}
	legacyRef := benchWall(b, 1, func() { reassemble(layoutpkg.LegacyOptimized{}) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reassemble(layoutpkg.Optimized{})
	}
	b.StopTimer()
	reportSpeedup(b, legacyRef)
}

// BenchmarkEvalJ1 measures corpus evaluation with one worker (the old
// serial loop).
func BenchmarkEvalJ1(b *testing.B) {
	cbs := corpusSample(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cgcsim.EvaluateParallel(cbs, rewriteFunc(LayoutOptimized, Null()), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalJN measures corpus evaluation with the GOMAXPROCS worker
// pool and reports its speedup over one worker.
func BenchmarkEvalJN(b *testing.B) {
	cbs := corpusSample(b)
	fn := rewriteFunc(LayoutOptimized, Null())
	serialRef := benchWall(b, 1, func() {
		if _, err := cgcsim.EvaluateParallel(cbs, fn, 1); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cgcsim.EvaluateParallel(cbs, fn, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpeedup(b, serialRef)
}

// benchWall times reps runs of fn outside the benchmark clock and
// returns the per-run wall time, as the serial reference for speedup
// metrics.
func benchWall(b *testing.B, reps int, fn func()) time.Duration {
	b.Helper()
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(t0) / time.Duration(reps)
}

// reportSpeedup emits the serial-over-parallel wall-time ratio.
func reportSpeedup(b *testing.B, serialRef time.Duration) {
	b.Helper()
	if per := b.Elapsed() / time.Duration(b.N); per > 0 {
		b.ReportMetric(float64(serialRef)/float64(per), "speedup-x")
	}
}

// BenchmarkAssemble measures the assembler on a generated source.
func BenchmarkAssemble(b *testing.B) {
	seed, profile := synth.CBProfile(10)
	src := synth.Generate(seed, profile)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMExecution measures interpreter throughput in
// instructions/op (reported) on a poller run.
func BenchmarkVMExecution(b *testing.B) {
	cbs := corpusSample(b)
	cb := cbs[0]
	var steps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBench(b, cb.Bin, nil, cb.Pollers[0])
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "instructions")
}
