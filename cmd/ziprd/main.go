// Command ziprd is the batch rewriting daemon: a long-running front end
// over the zipr pipeline with a content-addressed rewrite cache,
// singleflight de-duplication and bounded-queue admission control (see
// internal/serve).
//
// Usage:
//
//	ziprd [-j N] [-queue N] [-cache-bytes N] [-deadline D] [-chaos-seed N]
//	      [-listen ADDR] [-stats]
//
// With -listen, ziprd serves HTTP:
//
//	POST /rewrite?transforms=cfi,stackpad:32&layout=diversity&seed=7
//	    request body: the ZELF input image; response body: the
//	    rewritten image. X-Zipr-Cache reports hit or miss. Saturation
//	    rejects with 503, malformed inputs with 400.
//	GET /stats      cache and admission counters as JSON
//	GET /healthz    liveness probe
//
// Without -listen, ziprd runs in JSONL batch mode: one request object
// per stdin line, one response object per stdout line, responses in
// input order regardless of -j. Request fields: id, input (base64),
// transforms, layout, seed, deadline_ms. Response fields: id, output
// (base64), input_size, output_size, layout, cached, error, class.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"zipr"
	"zipr/internal/obs"
	"zipr/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ziprd:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "", "HTTP listen address (empty: JSONL batch mode on stdin/stdout)")
	workers := flag.Int("j", 0, "max concurrent pipeline runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "rewrite cache byte budget (0 = default 64 MiB, negative disables)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	chaosSeed := flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off)")
	stats := flag.Bool("stats", false, "print cache and admission counters to stderr on exit (batch mode)")
	flag.Parse()

	opts := serve.Options{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheBytes,
		Trace:      obs.New(),
	}
	if *chaosSeed != 0 {
		opts.Chaos = zipr.NewFaultInjector(*chaosSeed)
		fmt.Fprintf(os.Stderr, "ziprd: chaos: %s\n", opts.Chaos.Describe())
	}
	s := serve.New(opts)
	defer s.Close()

	if *listen != "" {
		fmt.Fprintf(os.Stderr, "ziprd: listening on %s (j=%d)\n", *listen, *workers)
		return http.ListenAndServe(*listen, newHandler(s, *deadline))
	}
	err := runBatch(s, os.Stdin, os.Stdout, *workers, *deadline)
	if *stats {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "ziprd: %d runs, %d hits, %d misses, %d shared, %d evicted, %d rejected\n",
			st.PipelineRuns, st.Hits, st.Misses, st.Shared, st.Evictions, st.Rejected)
	}
	return err
}

// request is one JSONL batch request. Input is base64 in the wire form
// (encoding/json's []byte convention).
type request struct {
	ID         string `json:"id,omitempty"`
	Input      []byte `json:"input"`
	Transforms string `json:"transforms,omitempty"`
	Layout     string `json:"layout,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	DeadlineMS int64  `json:"deadline_ms,omitempty"`
}

// response is one JSONL batch response (also the /stats error shape).
type response struct {
	ID         string `json:"id,omitempty"`
	Output     []byte `json:"output,omitempty"`
	InputSize  int    `json:"input_size,omitempty"`
	OutputSize int    `json:"output_size,omitempty"`
	Layout     string `json:"layout,omitempty"`
	Cached     bool   `json:"cached"`
	Error      string `json:"error,omitempty"`
	Class      string `json:"class,omitempty"`
}

// handle answers one request against the server. cached reports whether
// the answer was produced without running the pipeline in this request
// (a cache hit or a shared singleflight result), observed through a
// per-request trace: every real pipeline run bumps rewrite.count.
func handle(ctx context.Context, s *serve.Server, req request, deadline time.Duration) response {
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	tfs, err := serve.ParseTransforms(req.Transforms)
	if err != nil {
		return response{ID: req.ID, Error: err.Error(), Class: "usage"}
	}
	tr := obs.New()
	cfg := zipr.Config{
		Transforms: tfs,
		Layout:     zipr.LayoutKind(req.Layout),
		Seed:       req.Seed,
		Trace:      tr,
	}
	out, rep, err := s.Rewrite(ctx, req.Input, cfg)
	if err != nil {
		return response{ID: req.ID, Error: err.Error(), Class: zipr.ErrorClass(err)}
	}
	return response{
		ID:         req.ID,
		Output:     out,
		InputSize:  rep.InputSize,
		OutputSize: rep.OutputSize,
		Layout:     rep.Layout,
		Cached:     tr.Counter("rewrite.count") == 0,
	}
}

// runBatch consumes JSONL requests from r and emits JSONL responses to
// w in input order. Up to jobs requests are processed concurrently
// (0 = GOMAXPROCS via the server's admission control; the reorder
// window is bounded by the worker count).
func runBatch(s *serve.Server, r io.Reader, w io.Writer, jobs int, deadline time.Duration) error {
	if jobs <= 0 {
		jobs = 4
	}
	// Responses must come out in input order: the reader enqueues one
	// result channel per line, a single writer drains them in order, and
	// the per-line goroutines (bounded by sem) fill them as they finish.
	pending := make(chan chan response, jobs)
	sem := make(chan struct{}, jobs)
	writeErr := make(chan error, 1)
	go func() {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		var first error
		for ch := range pending {
			resp := <-ch
			if first == nil {
				if err := enc.Encode(resp); err != nil {
					first = err
				}
			}
		}
		if first == nil {
			first = bw.Flush()
		}
		writeErr <- first
	}()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var line int
	for sc.Scan() {
		line++
		raw := append([]byte(nil), sc.Bytes()...)
		ch := make(chan response, 1)
		pending <- ch
		sem <- struct{}{}
		go func(line int, raw []byte) {
			defer func() { <-sem }()
			var req request
			if err := json.Unmarshal(raw, &req); err != nil {
				ch <- response{Error: fmt.Sprintf("line %d: %v", line, err), Class: "usage"}
				return
			}
			ch <- handle(context.Background(), s, req, deadline)
		}(line, raw)
	}
	close(pending)
	if err := <-writeErr; err != nil {
		return err
	}
	return sc.Err()
}

// newHandler builds the daemon's HTTP interface over one server.
func newHandler(s *serve.Server, deadline time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	})
	mux.HandleFunc("/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		input, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		req := request{
			Input:      input,
			Transforms: q.Get("transforms"),
			Layout:     q.Get("layout"),
		}
		if v := q.Get("seed"); v != "" {
			if req.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad seed: "+v, http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("deadline_ms"); v != "" {
			if req.DeadlineMS, err = strconv.ParseInt(v, 10, 64); err != nil {
				http.Error(w, "bad deadline_ms: "+v, http.StatusBadRequest)
				return
			}
		}
		resp := handle(r.Context(), s, req, deadline)
		if resp.Error != "" {
			http.Error(w, resp.Error, statusFor(resp.Class))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Zipr-Layout", resp.Layout)
		if resp.Cached {
			w.Header().Set("X-Zipr-Cache", "hit")
		} else {
			w.Header().Set("X-Zipr-Cache", "miss")
		}
		w.Write(resp.Output)
	})
	return mux
}

// statusFor maps the typed error taxonomy onto HTTP: saturation is a
// retryable 503, caller mistakes are 4xx, pipeline failures are 500.
func statusFor(class string) int {
	switch class {
	case "busy":
		return http.StatusServiceUnavailable
	case "usage", "format":
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
