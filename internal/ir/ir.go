// Package ir defines the intermediate representation the rewriting
// pipeline operates on. The central idea, following the paper, is that
// instructions are linked *logically*: a branch references its target
// instruction object, not an address, and a fallthrough references the
// next instruction object, not "PC + length". Addresses from the original
// program survive only in two places: pinned addresses (locations that
// may be reached indirectly at run time and therefore must keep meaning
// in the rewritten binary) and fixed ranges (bytes — usually data
// embedded in text — that must not move).
package ir

import (
	"fmt"
	"sort"

	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// Instruction is one IR instruction node.
type Instruction struct {
	// ID is a unique identifier within the Program (IRDB row id).
	ID int64
	// Inst is the decoded operation. For instructions with a Target or
	// AbsTarget, the displacement/immediate in Inst is meaningless until
	// reassembly patches it.
	Inst isa.Inst
	// OrigAddr is the instruction's address in the original program, or
	// 0 for instructions synthesized by transforms.
	OrigAddr uint32
	// Pinned marks OrigAddr as a pinned address: the rewriter must plant
	// a reference at OrigAddr leading to this instruction.
	Pinned bool
	// Fallthrough is the next instruction in execution order, nil when
	// the instruction does not fall through (jmp, ret, hlt).
	Fallthrough *Instruction
	// Target is the logical link for direct branches, address-forming
	// instructions (lea, movi/pushi holding a code pointer) and anything
	// else that must be resolved to the target's *rewritten* address.
	Target *Instruction
	// AbsTarget is an absolute address in a region that does not move
	// (data segments or fixed text ranges). Exactly one of Target and
	// AbsTarget may be set.
	AbsTarget uint32
	// Deleted marks the instruction as removed by a transform. Deleted
	// nodes stay in the graph so existing references keep a stable
	// anchor; Normalize splices them out before reassembly.
	Deleted bool
}

// String renders the node for diagnostics.
func (i *Instruction) String() string {
	s := fmt.Sprintf("#%d %s", i.ID, i.Inst.String())
	if i.OrigAddr != 0 {
		s += fmt.Sprintf(" @%#x", i.OrigAddr)
	}
	if i.Pinned {
		s += " [pinned]"
	}
	if i.Target != nil {
		s += fmt.Sprintf(" ->#%d", i.Target.ID)
	}
	if i.AbsTarget != 0 {
		s += fmt.Sprintf(" ->%#x", i.AbsTarget)
	}
	return s
}

// Range is a half-open byte range [Start, End).
type Range struct {
	Start, End uint32
}

// Len returns the range length.
func (r Range) Len() uint32 { return r.End - r.Start }

// Contains reports whether addr lies inside the range.
func (r Range) Contains(addr uint32) bool { return addr >= r.Start && addr < r.End }

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool { return r.Start < o.End && o.Start < r.End }

// Function is a unit of the transform API's iteration: an entry plus the
// instructions reached from it without following calls.
type Function struct {
	Name  string
	Entry *Instruction
	Insts []*Instruction
}

// Layout gives deferred-data fills access to the final code placement.
type Layout struct {
	// AddrOf returns the rewritten address of an IR instruction.
	AddrOf func(*Instruction) (uint32, bool)
	// TextBase and TextEnd bound the rewritten text image (including the
	// overflow area).
	TextBase, TextEnd uint32
	// PinnedAddrs lists every pinned original address (each holds a
	// reference in the rewritten binary and is a legal indirect target).
	PinnedAddrs []uint32
}

// Deferred is a late-bound data blob: its address and size are fixed at
// transform time (in the data extension), but its contents can only be
// computed after reassembly has placed all code (e.g. CFI target
// bitmaps).
type Deferred struct {
	Name string
	Addr uint32
	Size int
	Fill func(*Layout) ([]byte, error)
}

// Program is the complete IR of one binary under transformation.
type Program struct {
	// Bin is the original binary (never mutated).
	Bin *binfmt.Binary
	// Arch is the instruction-set architecture the program's bytes are
	// expressed in; nil means the default (ZVM-32), so IR built before
	// the architecture abstraction keeps working unchanged. Read it
	// through ISA().
	Arch isa.Arch
	// Insts lists every IR instruction, in creation order.
	Insts []*Instruction
	// ByAddr maps original addresses to relocatable instructions.
	ByAddr map[uint32]*Instruction
	// Entry is the program entry instruction (nil for libraries).
	Entry *Instruction
	// Fixed lists text ranges whose original bytes must stay in place.
	Fixed []Range
	// FixedEntries lists addresses inside fixed ranges that the program
	// legitimately reaches indirectly (in-text jump-table slots, return
	// sites of calls decoded in ambiguous regions). Analyses that need
	// the set of legal indirect targets (e.g. CFI) combine these with
	// the pinned addresses.
	FixedEntries []uint32
	// Functions is the function partition used by the transform API.
	Functions []*Function
	// Deferred lists late-bound data blobs to patch after placement.
	Deferred []*Deferred
	// DataExtra is appended to the original data segment; transforms
	// allocate from it via AllocData.
	DataExtra []byte
	// Warnings accumulates non-fatal analysis diagnostics.
	Warnings []string

	nextID int64
}

// ISA returns the program's architecture, defaulting to ZVM-32.
func (p *Program) ISA() isa.Arch { return isa.Of(p.Arch) }

// NewProgram creates an empty IR for bin.
func NewProgram(bin *binfmt.Binary) *Program {
	return &Program{
		Bin:    bin,
		ByAddr: make(map[uint32]*Instruction),
	}
}

// NewInst creates and registers a fresh instruction node.
func (p *Program) NewInst(in isa.Inst) *Instruction {
	p.nextID++
	node := &Instruction{ID: p.nextID, Inst: in}
	p.Insts = append(p.Insts, node)
	return node
}

// AddOrig registers an instruction decoded from the original binary at
// addr and records it in the address map.
func (p *Program) AddOrig(addr uint32, in isa.Inst) *Instruction {
	node := p.NewInst(in)
	node.OrigAddr = addr
	p.ByAddr[addr] = node
	return node
}

// Warnf records a non-fatal diagnostic.
func (p *Program) Warnf(format string, args ...any) {
	p.Warnings = append(p.Warnings, fmt.Sprintf(format, args...))
}

// TextRange returns the original text segment's address range.
func (p *Program) TextRange() Range {
	t := p.Bin.Text()
	return Range{Start: t.VAddr, End: t.End()}
}

// DataEnd returns the first address past the original data segment plus
// any extension allocated so far. Programs without a data segment extend
// from the page after text.
func (p *Program) DataEnd() uint32 {
	d := p.Bin.DataSeg()
	if d == nil {
		t := p.TextRange()
		return (t.End + 0xFFF) &^ 0xFFF
	}
	return d.End() + uint32(len(p.DataExtra))
}

// AllocData reserves size bytes (aligned) in the data extension and
// returns their address. The space is zero-filled; deferred blobs can
// overwrite it after placement.
func (p *Program) AllocData(size int, align uint32) uint32 {
	if align == 0 {
		align = 1
	}
	cur := p.DataEnd()
	pad := (align - cur%align) % align
	p.DataExtra = append(p.DataExtra, make([]byte, pad+uint32(size))...)
	return cur + pad
}

// Defer registers a late-bound blob occupying size bytes of data
// extension and returns its address.
func (p *Program) Defer(name string, size int, fill func(*Layout) ([]byte, error)) uint32 {
	addr := p.AllocData(size, 4)
	p.Deferred = append(p.Deferred, &Deferred{Name: name, Addr: addr, Size: size, Fill: fill})
	return addr
}

// PinnedInsts returns all pinned instructions sorted by original address.
func (p *Program) PinnedInsts() []*Instruction {
	n := 0
	for _, i := range p.Insts {
		if i.Pinned {
			n++
		}
	}
	out := make([]*Instruction, 0, n)
	for _, i := range p.Insts {
		if i.Pinned {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].OrigAddr < out[b].OrigAddr })
	return out
}

// InsertBefore splices a new instruction ahead of node such that every
// existing logical reference to node (branch targets, pinned addresses,
// fallthroughs) now executes the new instruction first. It does this by
// moving node's operation into a fresh node and overwriting node with
// the new operation, so `node` becomes the inserted instruction. The
// displaced original is returned.
func (p *Program) InsertBefore(node *Instruction, in isa.Inst) *Instruction {
	moved := p.NewInst(node.Inst)
	moved.Target = node.Target
	moved.AbsTarget = node.AbsTarget
	moved.Fallthrough = node.Fallthrough
	// A deleted-flag stays with the displaced original operation; the
	// freshly inserted instruction is live by definition.
	moved.Deleted = node.Deleted

	node.Inst = in
	node.Target = nil
	node.AbsTarget = 0
	node.Fallthrough = moved
	node.Deleted = false
	return moved
}

// InsertAfter splices a new instruction between node and its
// fallthrough, returning the new node. It must not be used after
// instructions without a fallthrough.
func (p *Program) InsertAfter(node *Instruction, in isa.Inst) *Instruction {
	fresh := p.NewInst(in)
	fresh.Fallthrough = node.Fallthrough
	node.Fallthrough = fresh
	return fresh
}

// Delete removes node from the program: execution that would have
// reached it continues at its fallthrough. Deleting an instruction with
// no fallthrough (a terminator) or a pinned instruction whose removal
// would leave the pin dangling is rejected.
func (p *Program) Delete(node *Instruction) error {
	if node.Fallthrough == nil {
		return fmt.Errorf("ir: cannot delete terminator %s", node)
	}
	node.Deleted = true
	return nil
}

// resolveDeleted follows fallthrough links through deleted nodes.
func resolveDeleted(n *Instruction) *Instruction {
	seen := 0
	for n != nil && n.Deleted {
		n = n.Fallthrough
		seen++
		if seen > 1_000_000 {
			return nil // cycle of deleted nodes; caught by Normalize
		}
	}
	return n
}

// Normalize splices deleted instructions out of every link (fallthrough
// chains, branch targets, pins, functions, the entry) so the
// reassembler never sees them. Transforms call p.Delete freely; the
// pipeline normalizes once before reassembly.
func (p *Program) Normalize() error {
	live := make([]*Instruction, 0, len(p.Insts))
	for _, n := range p.Insts {
		if n.Deleted {
			if n.Pinned {
				// The pinned address must keep meaning: move the pin to
				// the instruction execution would reach instead. When
				// that instruction carries its own original address, an
				// alias jump keeps both pins representable.
				repl := resolveDeleted(n.Fallthrough)
				if repl == nil {
					return fmt.Errorf("ir: deleting %s leaves pinned address %#x dangling", n, n.OrigAddr)
				}
				if repl.OrigAddr != 0 && repl.OrigAddr != n.OrigAddr {
					alias := p.NewInst(isa.Inst{Op: isa.OpJmp32})
					alias.Target = repl
					repl = alias
					live = append(live, alias)
				}
				if repl.OrigAddr == 0 {
					repl.OrigAddr = n.OrigAddr
				}
				repl.Pinned = true
				p.ByAddr[n.OrigAddr] = repl
			}
			continue
		}
		live = append(live, n)
	}
	for _, n := range live {
		if n.Fallthrough != nil {
			ft := resolveDeleted(n.Fallthrough)
			if ft == nil && n.Inst.HasFallthrough() {
				return fmt.Errorf("ir: %s falls through only to deleted code", n)
			}
			n.Fallthrough = ft
		}
		if n.Target != nil {
			t := resolveDeleted(n.Target)
			if t == nil {
				return fmt.Errorf("ir: %s targets only deleted code", n)
			}
			n.Target = t
		}
	}
	if p.Entry != nil {
		e := resolveDeleted(p.Entry)
		if e == nil {
			return fmt.Errorf("ir: program entry deleted with no successor")
		}
		p.Entry = e
	}
	for _, f := range p.Functions {
		f.Entry = resolveDeleted(f.Entry)
		kept := f.Insts[:0]
		for _, n := range f.Insts {
			if !n.Deleted {
				kept = append(kept, n)
			}
		}
		f.Insts = kept
	}
	p.Insts = live
	return nil
}

// Validate checks IR invariants: Target/AbsTarget exclusivity, pinned
// instructions carrying original addresses, fallthrough presence
// matching the ISA, and fixed ranges lying inside text.
func (p *Program) Validate() error {
	text := p.TextRange()
	for _, i := range p.Insts {
		if i.Target != nil && i.AbsTarget != 0 {
			return fmt.Errorf("ir: %s has both Target and AbsTarget", i)
		}
		if i.Pinned && i.OrigAddr == 0 {
			return fmt.Errorf("ir: %s pinned without original address", i)
		}
		if !i.Inst.HasFallthrough() && i.Fallthrough != nil {
			return fmt.Errorf("ir: %s is a terminator with a fallthrough", i)
		}
	}
	for _, r := range p.Fixed {
		if r.Start >= r.End {
			return fmt.Errorf("ir: empty fixed range %+v", r)
		}
		if r.Start < text.Start || r.End > text.End {
			return fmt.Errorf("ir: fixed range %+v outside text %+v", r, text)
		}
	}
	return nil
}

// MergeRanges sorts and coalesces overlapping or adjacent ranges.
func MergeRanges(rs []Range) []Range {
	if len(rs) == 0 {
		return nil
	}
	sorted := append([]Range(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Range{sorted[0]}
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
