package obs

// Stress tests for the documented concurrency contract: metrics may be
// updated from any goroutine; fan-out phases use StartDetached/
// StartChild spans ended by workers; per-rewrite traces fold into a
// shared Agg concurrently. Run with -race (the Makefile's race target
// does) — these tests exist mostly to give the detector something to
// chew on.

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWorkerSpansAndMetrics exercises one shared trace the
// way a fan-out phase does: the coordinator opens detached spans in
// deterministic order, workers end them (plus nested children) while
// hammering the metric families from every goroutine.
func TestConcurrentWorkerSpansAndMetrics(t *testing.T) {
	const workers, iters = 8, 200
	tr := New()
	root := tr.Start("phase")

	spans := make([]*Span, workers)
	for w := range spans {
		spans[w] = tr.StartDetached(fmt.Sprintf("worker-%d", w))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := spans[w].StartChild("inner")
			for i := 0; i < iters; i++ {
				tr.Add("stress.count", 1)
				tr.SetGauge("stress.gauge", int64(i))
				tr.Observe("stress.hist", int64(i))
			}
			child.End()
			spans[w].End()
		}(w)
	}
	wg.Wait()
	tr.Record("stress.record", time.Microsecond, workers)
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	snap := tr.Snapshot()
	if got := snap.Metrics.Counters["stress.count"]; got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap.Spans))
	}
	phase := snap.Spans[0]
	// workers detached spans + the record; all attached under the phase,
	// in the coordinator's creation order.
	if len(phase.Children) != workers+1 {
		t.Fatalf("phase children = %d, want %d", len(phase.Children), workers+1)
	}
	for w := 0; w < workers; w++ {
		s := phase.Children[w]
		if want := fmt.Sprintf("worker-%d", w); s.Name != want {
			t.Fatalf("child %d = %q, want %q (creation order lost)", w, s.Name, want)
		}
		if !s.ended || s.Wall <= 0 {
			t.Fatalf("worker span %q not finalized", s.Name)
		}
		if s.Depth != 1 {
			t.Fatalf("worker span depth = %d, want 1", s.Depth)
		}
		if len(s.Children) != 1 || s.Children[0].Name != "inner" || s.Children[0].Depth != 2 {
			t.Fatalf("worker %d nested child wrong: %+v", w, s.Children)
		}
	}
}

// TestConcurrentAggFolding folds per-worker traces into one shared Agg
// from many goroutines, the cgc-eval -j -phase-times pattern.
func TestConcurrentAggFolding(t *testing.T) {
	const workers = 16
	agg := NewAgg()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := New()
			sp := tr.Start("rewrite")
			tr.Add("work", int64(w))
			inner := tr.Start("step")
			inner.End()
			sp.End()
			tr.Close()
			agg.AddTrace(tr)
		}(w)
	}
	wg.Wait()
	if agg.Runs() != workers {
		t.Fatalf("runs = %d, want %d", agg.Runs(), workers)
	}
	want := int64(workers * (workers - 1) / 2)
	if got := agg.Metrics().Counters["work"]; got != want {
		t.Fatalf("merged counter = %d, want %d", got, want)
	}
	if err := agg.WriteTable(io.Discard); err != nil {
		t.Fatal(err)
	}
}
