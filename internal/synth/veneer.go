package synth

import (
	"fmt"
	"strings"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// Veneer-stress program: a handwritten layout engineered so that, on a
// bounded-reach ISA (ZVM-64, ±1 MiB branch displacement), rewriting
// under an instrumenting stack *must* emit at least one range-extension
// island (veneer).
//
// The shape:
//
//	0x00100000  vn_main:          ; entry: 28 bytes, then a data word
//	            vn_f1/f2/f3:      ; three 32-byte helpers, data-separated
//	            vn_fb:            ; one 240-byte straight-line function
//	            vn_blob:          ; fixed in-text data, > branch reach
//	~0x00218xxx vn_start:         ; the real main, plus helpers
//
// Every relocatable byte sits before the blob; everything after it is
// reached only indirectly (jmpr/callr through registers and the data
// table), so it classifies as fixed and never moves. The zone's free
// blocks are fenced into fragments by interleaved data words: three
// 32-byte blocks and one 240-byte block.
//
// Why this forces a veneer under CFI: the shared CFI thunk is pure
// extra demand (it has no original bytes) and fits only the 240-byte
// block, evicting vn_fb. Evicted, vn_fb finds every remaining fragment
// smaller than a quarter of its size, so the placer refuses to shred it
// and spills it whole to the overflow area — which lies beyond the blob,
// more than a branch reach from the zone. The entry's `call vn_fb` must
// then go through a veneer island carved from the zone's leftover
// fragments (the thunk leaves ~32 spare bytes in the zone by
// construction). Under the null stack the demand exactly matches the
// supply, every chain re-packs within the zone, and no veneer is needed
// — giving the per-ISA golden matrix both behaviors from one program.
//
// The functions are deliberately canary-proof (each ends with a
// never-taken conditional branch back to its own entry, which marks the
// entry as a plain branch target) so their sizes stay stable across
// stacks; only NopElide (shrink) and Stir (extra jumps) perturb them,
// both with slack to spare. No direct branch in the original program
// crosses the blob, so the source assembles on the bounded-reach ISA.

// VeneerStressName names the veneer-stress program in golden corpora.
const VeneerStressName = "veneer"

// VeneerBlobSize is the in-text data wall in bytes: comfortably past
// the ±1 MiB ZVM-64 branch reach, so the overflow area past the image
// stays out of reach of the pre-blob zone too.
const VeneerBlobSize = 0x118000

// VeneerInputLen is the poller input length the program consumes.
const VeneerInputLen = 16

// VeneerSeed keys the veneer program's poller rng (the program itself
// is handwritten, not seed-derived).
const VeneerSeed int64 = 0x7EE5

// BuildVeneer assembles the veneer-stress program for arch.
func BuildVeneer(arch isa.Arch) (*binfmt.Binary, error) {
	return asm.AssembleArch(VeneerStressSource(), arch)
}

// VeneerStressSource renders the program's assembly. The source is
// ISA-portable (no short branches, instruction starts stay 4-aligned),
// but only bounded-reach ISAs need veneers to rewrite it.
func VeneerStressSource() string {
	var sb strings.Builder
	emit := func(format string, args ...any) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}
	emit(".type exec")
	emit(".text 0x00100000")
	emit(".entry vn_main")
	// Entry: 28 bytes, bounded by a data word, so the optimized layout
	// lays it back in place (the null body fits exactly; CFI's +4 from
	// jmpr splits off an 8-byte tail dollop). The startup calls fold the
	// helpers' arithmetic into r1, which vn_start captures into the
	// output digest — so a mis-relocated helper shows up in the
	// transcript, not just in a crash.
	emit("vn_main:")
	emit("    movi r5, vn_start")
	emit("    call vn_fb")
	emit("    call vn_f1")
	emit("    call vn_f2")
	emit("    call vn_f3")
	emit("    jmpr r5")
	emit("    .word 0")
	// Three 32-byte helpers. The trailing `jnz` back to the entry never
	// fires (cmp r6, r6 always sets Z) but makes each entry a plain
	// branch target, which keeps Canary's prologue/epilogue growth away.
	// The nops give NopElide shrink-slack under the full stack.
	for i := 1; i <= 3; i++ {
		emit("vn_f%d:", i)
		emit("    nop")
		emit("    nop")
		emit("    nop")
		emit("    inc r1")
		switch i {
		case 1:
			emit("    add r1, r2")
		case 2:
			emit("    xor r1, r2")
		default:
			emit("    inc r2")
		}
		emit("    cmp r6, r6")
		emit("    jnz vn_f%d", i)
		emit("    ret")
		emit("    .word 0")
	}
	// The eviction target: 240 bytes (60 instructions), the only block
	// the CFI thunk fits. Straight-line arithmetic, same canary guard.
	// Every third instruction is a nop: under the full stack NopElide
	// reclaims them, handing back the slack that Stir's spliced jumps
	// and the chunked repacking consume — without the nops the full
	// stack packs the zone solid and veneer islands have nowhere to go.
	emit("vn_fb:")
	for i := 0; i < 57; i++ {
		switch i % 3 {
		case 0:
			emit("    nop")
		case 1:
			emit("    add r1, r2")
		default:
			if i%2 == 0 {
				emit("    xor r1, r2")
			} else {
				emit("    inc r1")
			}
		}
	}
	emit("    cmp r6, r6")
	emit("    jnz vn_fb")
	emit("    ret")
	// The wall: fixed in-text data longer than the branch reach.
	emit("vn_blob: .space %d", VeneerBlobSize)
	emit("    .align 4")
	// The real program, out of reach of everything before the wall. It
	// is reached only via jmpr, so it classifies as fixed code and runs
	// in place — its callr dispatch and call/ret pairs stay raw.
	emit("vn_start:")
	emit("    mov r9, r1") // capture the startup digest from the zone calls
	emit("    movi r0, 3") // receive(0, inbuf, VeneerInputLen)
	emit("    movi r1, 0")
	emit("    movi r2, vn_inbuf")
	emit("    movi r3, %d", VeneerInputLen)
	emit("    syscall")
	emit("    mov r10, r0")
	emit("    movi r8, 0")
	emit("vn_loop:")
	emit("    cmp r8, r10")
	emit("    jae vn_done")
	emit("    movi r2, vn_inbuf")
	emit("    add r2, r8")
	emit("    loadb r1, [r2]")
	emit("    xor r1, r8")
	emit("    call vn_after")
	emit("    add r9, r1")
	emit("    mov r4, r9") // table dispatch: index by running digest
	emit("    movi r5, 2")
	emit("    mod r4, r5")
	emit("    shli r4, 2")
	emit("    movi r5, vn_tab")
	emit("    add r5, r4")
	emit("    load r5, [r5]")
	emit("    callr r5")
	emit("    add r9, r1")
	emit("    inc r8")
	emit("    jmp vn_loop")
	emit("vn_done:")
	emit("    movi r2, vn_outbuf") // transmit(1, outbuf, 8)
	emit("    store [r2], r9")
	emit("    mov r3, r9")
	emit("    xori r3, 0x5a5a5a5a")
	emit("    store [r2+4], r3")
	emit("    movi r0, 2")
	emit("    movi r1, 1")
	emit("    movi r3, 8")
	emit("    syscall")
	emit("    mov r1, r9") // terminate(digest & 0x3f)
	emit("    andi r1, 0x3f")
	emit("    movi r0, 1")
	emit("    syscall")
	emit("    hlt")
	emit("vn_after:")
	emit("    push r2")
	emit("    mov r2, r1")
	emit("    shri r2, 3")
	emit("    xor r1, r2")
	emit("    inc r1")
	emit("    pop r2")
	emit("    ret")
	// The table-dispatched helpers carry the same never-taken self-branch
	// guard as the zone functions: they are reachable as function roots
	// through vn_tab, and an instrumenting transform that grew them would
	// add placed demand (plus a cross-blob violation branch) behind the
	// zone's back.
	emit("vn_e0:")
	emit("    inc r1")
	emit("    inc r1")
	emit("    cmp r6, r6")
	emit("    jnz vn_e0")
	emit("    ret")
	emit("vn_e1:")
	emit("    push r2")
	emit("    mov r2, r1")
	emit("    shli r2, 2")
	emit("    xor r1, r2")
	emit("    pop r2")
	emit("    cmp r6, r6")
	emit("    jnz vn_e1")
	emit("    ret")
	emit(".data 0x00400000")
	emit("vn_inbuf: .space %d", VeneerInputLen)
	emit("vn_outbuf: .space 64")
	emit("vn_tab: .word vn_e0, vn_e1")
	return sb.String()
}
