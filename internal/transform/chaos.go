package transform

import (
	"zipr/internal/fault"
	"zipr/internal/ir"
)

// Chaos is the transform-misuse fault: it deliberately abuses the
// user-transform API the way a buggy transform would, at a seeded
// instruction site, and the pipeline must catch the abuse downstream —
// Normalize/Validate for IR-level misuse, the reassembler's emit pass
// for layout-level lies. Exactly one misuse is applied per run (the
// first seeded site in instruction order), so a failing seed reproduces
// a single attributable abuse.
//
// The variants and the check expected to catch them:
//
//	0: conflicting reference — a node is given both a logical Target
//	   and an AbsTarget, which Validate rejects (ErrTransform).
//	1: lying deferred fill — a Defer callback returns fewer bytes than
//	   it reserved; the reassembler's emit pass rejects the blob
//	   (ErrLayout), proving cross-layer detection.
//	2: out-of-band deletion — a terminator is marked Deleted directly,
//	   bypassing the Delete API's terminator check. Normalize either
//	   rejects the dangling control flow (ErrTransform) or, when the
//	   terminator was provably unreachable, splices it out as dead code
//	   (a behavior-preserving degradation).
type Chaos struct {
	Inj *fault.Injector
}

var _ Transform = Chaos{}

// Name implements Transform.
func (Chaos) Name() string { return "chaos-misuse" }

// Apply implements Transform, misusing the API at the first seeded site.
func (c Chaos) Apply(ctx *Context) error {
	inj := c.Inj
	if !inj.Armed(fault.TransformMisuse) {
		return nil
	}
	for _, n := range ctx.Prog.Insts {
		site := n.OrigAddr
		if site == 0 {
			// Synthetic instructions have no original address; key on the
			// (deterministic) node ID, disjoint from the address space.
			site = uint32(n.ID) | 0x8000_0000
		}
		if !inj.Fires(fault.TransformMisuse, site) {
			continue
		}
		variant := inj.Pick(fault.TransformMisuse, site, 3)
		if variant == 2 && n.Inst.HasFallthrough() {
			variant = 0 // deletion misuse only targets terminators
		}
		switch variant {
		case 0:
			n.Target = n
			n.AbsTarget = 1
		case 1:
			short := func(*ir.Layout) ([]byte, error) { return make([]byte, 4), nil }
			ctx.Prog.Defer("chaos-misuse", 8, short)
		case 2:
			n.Deleted = true
		}
		return nil
	}
	return nil
}
