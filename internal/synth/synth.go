// Package synth generates deterministic synthetic ZVM-32 programs and
// libraries that stand in for the binaries of the paper's evaluation:
// CGC challenge binaries, libc (large, with a substantial fraction of
// handwritten-assembly-style irregular code), libjvm (very large) and
// Apache (executable plus shared libraries). Programs are emitted as
// assembly source and built with the internal assembler, so the
// rewriting pipeline sees exactly what a compiler-plus-assembler
// toolchain would produce — including the constructs that make static
// rewriting hard: jump tables in data and in text, function-pointer
// tables, address-shaped immediates, data embedded in text, and
// PC-relative constant loads.
//
// Every generated program is a deterministic input-to-output transducer:
// it receives input bytes, dispatches work across its function DAG, and
// transmits a digest. That gives the evaluation a functionality oracle —
// a rewritten binary is correct iff it produces the original's exact
// transcript and exit code for every poller input.
package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// Profile describes the shape of a generated program.
type Profile struct {
	// Name seeds label prefixes (and diagnostics).
	Name string
	// Lib generates a shared library (exports instead of a main loop).
	Lib bool
	// LibName is the soname used for .export prefixes when Lib is set.
	LibName string
	// Imports lists "libname:symbol" pairs the program calls through
	// GOT slots.
	Imports []string

	// NumFuncs is the number of generated functions.
	NumFuncs int
	// OpsMin/OpsMax bound the number of body operations per function.
	OpsMin, OpsMax int
	// HandwrittenFrac is the fraction of functions with irregular,
	// handwritten-assembly-style bodies (in-text data and jump tables,
	// address immediates).
	HandwrittenFrac float64
	// FuncPtrTableFrac is the fraction of functions reachable only
	// through a function-pointer table in data.
	FuncPtrTableFrac float64
	// DataWords sizes the global scratch array.
	DataWords int
	// InputLen is how many input bytes main processes per run.
	InputLen int
	// LoopIters bounds per-function loop trip counts; higher values mean
	// more straight-line work per call (lower relative call overhead).
	LoopIters int
	// HeapPages makes main allocate and touch this many 4 KiB pages,
	// giving the program a realistic resident-set baseline.
	HeapPages int
	// BigDollops generates few huge straight-line functions (the
	// pathological-CB shape: large dollops plus many pinned addresses
	// fragment the address space).
	BigDollops bool
	// ColdFuncs adds this many rarely-executed functions (error-path
	// style: called only when an input byte is 0xFF), interleaved with
	// the hot code — the workload shape profile-guided layout exists
	// for.
	ColdFuncs int
	// DirectCallAll makes main call every non-table function directly
	// once per input byte, so the call graph has no fallback
	// function-pointer table entries (few pinned addresses; lets layout
	// experiments isolate placement effects from pinned-stub paging).
	DirectCallAll bool
	// TextBase/DataBase place the segments (defaults: 0x00100000 /
	// 0x00400000).
	TextBase, DataBase uint32
}

// gen carries generator state.
type gen struct {
	rng    *rand.Rand
	sb     strings.Builder
	p      Profile
	arch   isa.Arch
	label  int
	called map[int]bool // functions referenced by direct calls
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

func (g *gen) newLabel(kind string) string {
	g.label++
	return fmt.Sprintf("%s_%s%d", g.p.Name, kind, g.label)
}

// Generate renders the program's assembly source for the default
// (ZVM-32) instruction set.
func Generate(seed int64, p Profile) string {
	return GenerateArch(seed, p, isa.DefaultArch())
}

// GenerateArch renders the program's assembly source targeting the
// given instruction set. The random stream is consumed identically for
// every ISA, so the same seed and profile yield structurally identical
// programs; only ISA-dependent mnemonic choices differ (fixed-width
// ISAs have no rel8 branch forms, so short branches are emitted long).
// For the default ISA the output is byte-identical to Generate.
func GenerateArch(seed int64, p Profile, arch isa.Arch) string {
	if p.NumFuncs <= 0 {
		p.NumFuncs = 10
	}
	if p.OpsMin <= 0 {
		p.OpsMin = 6
	}
	if p.OpsMax <= p.OpsMin {
		p.OpsMax = p.OpsMin + 20
	}
	if p.DataWords <= 0 {
		p.DataWords = 64
	}
	if p.InputLen <= 0 {
		p.InputLen = 16
	}
	if p.LoopIters <= 0 {
		p.LoopIters = 8
	}
	if p.TextBase == 0 {
		p.TextBase = 0x00100000
	}
	if p.DataBase == 0 {
		p.DataBase = 0x00400000
	}
	if p.Name == "" {
		p.Name = "prog"
	}
	g := &gen{
		rng: rand.New(rand.NewSource(seed)), p: p,
		arch: isa.Of(arch), called: map[int]bool{},
	}
	g.program()
	return g.sb.String()
}

// Build generates and assembles the program for the default ISA.
func Build(seed int64, p Profile) (*binfmt.Binary, error) {
	return BuildArch(seed, p, isa.DefaultArch())
}

// BuildArch generates and assembles the program for the given ISA.
func BuildArch(seed int64, p Profile, arch isa.Arch) (*binfmt.Binary, error) {
	src := GenerateArch(seed, p, arch)
	bin, err := asm.AssembleArch(src, arch)
	if err != nil {
		return nil, fmt.Errorf("synth %s: %w", p.Name, err)
	}
	return bin, nil
}

// funcName names generated function i.
func (g *gen) funcName(i int) string { return fmt.Sprintf("%s_f%d", g.p.Name, i) }

func (g *gen) program() {
	p := g.p
	if p.Lib {
		g.emit(".type lib")
	} else {
		g.emit(".type exec")
	}
	seenLib := map[string]bool{}
	for _, imp := range p.Imports {
		lib, _, ok := strings.Cut(imp, ":")
		if ok && !seenLib[lib] {
			g.emit(".lib \"%s\"", lib)
			seenLib[lib] = true
		}
	}
	g.emit(".text 0x%08x", p.TextBase)

	// Which functions are only reachable indirectly?
	tableOnly := map[int]bool{}
	for i := 1; i < p.NumFuncs; i++ {
		if g.rng.Float64() < p.FuncPtrTableFrac {
			tableOnly[i] = true
		}
	}

	if !p.Lib {
		g.main(tableOnly)
	}
	handwritten := map[int]bool{}
	for i := 0; i < p.NumFuncs; i++ {
		if g.rng.Float64() < p.HandwrittenFrac {
			handwritten[i] = true
		}
	}
	// Cold functions interleave with hot ones (the realistic layout
	// profile-guided placement untangles).
	coldAfter := map[int][]int{}
	for k := 0; k < p.ColdFuncs; k++ {
		at := g.rng.Intn(p.NumFuncs)
		coldAfter[at] = append(coldAfter[at], p.NumFuncs+k)
	}
	for i := 0; i < p.NumFuncs; i++ {
		g.function(i, handwritten[i], tableOnly)
		for _, c := range coldAfter[i] {
			g.function(c, false, tableOnly)
		}
	}
	if p.Lib {
		// Export a deterministic subset of functions.
		for i := 0; i < p.NumFuncs; i++ {
			if i%3 == 0 {
				g.emit(".export %s_x%d = %s", p.LibName, i, g.funcName(i))
			}
		}
	}

	// Data segment: scratch array, I/O buffers, function-pointer table,
	// GOT slots.
	g.emit(".data 0x%08x", p.DataBase)
	g.emit("%s_gdata: .space %d", p.Name, p.DataWords*4)
	g.emit("%s_inbuf: .space %d", p.Name, (p.InputLen+7)&^7)
	g.emit("%s_outbuf: .space 64", p.Name)
	// The function-pointer table holds the table-only functions plus any
	// function nothing ended up calling: realistic binaries have no dead
	// code (linkers collect it), and every function must be reachable so
	// the analysis and the pollers exercise the whole program. Library
	// exports (every third function) are reachable through the export
	// table already.
	var tabbed []int
	for i := 1; i < p.NumFuncs; i++ {
		exported := p.Lib && i%3 == 0
		if tableOnly[i] || (!g.called[i] && !exported) {
			tabbed = append(tabbed, i)
		}
	}
	if len(tabbed) == 0 {
		tabbed = []int{p.NumFuncs - 1}
	}
	g.emit("%s_ftab:", p.Name)
	for _, i := range tabbed {
		g.emit("    .word %s", g.funcName(i))
	}
	g.emit("%s_ftabn: .word %d", p.Name, len(tabbed))
	for _, imp := range p.Imports {
		lib, sym, _ := strings.Cut(imp, ":")
		got := fmt.Sprintf("%s_got_%s_%s", p.Name, lib, sym)
		g.emit("%s: .word 0", got)
		g.emit(".import %s, %s", sym, got)
	}
}

// main emits the entry: read input, per-byte dispatch across direct
// calls, the function-pointer table and imports, then transmit a digest.
func (g *gen) main(tableOnly map[int]bool) {
	p := g.p
	name := p.Name
	g.emit(".entry %s_main", name)
	g.emit("%s_main:", name)
	// receive(0, inbuf, InputLen)
	g.emit("    movi r0, 3")
	g.emit("    movi r1, 0")
	g.emit("    movi r2, %s_inbuf", name)
	g.emit("    movi r3, %d", p.InputLen)
	g.emit("    syscall")
	g.emit("    mov r10, r0") // bytes read
	if p.HeapPages > 0 {
		// allocate(HeapPages * 4096) and touch each page once, giving
		// the program a realistic resident-set baseline.
		lab := g.newLabel("heap")
		g.emit("    movi r0, 5")
		g.emit("    movi r1, %d", p.HeapPages*4096)
		g.emit("    syscall")
		g.emit("    mov r7, r0")
		g.emit("    movi r5, %d", p.HeapPages)
		g.emit("%s:", lab)
		g.emit("    store [r7], r5")
		g.emit("    addi r7, 4096")
		g.emit("    dec r5")
		g.emit("    jnz %s", lab)
	}
	g.emit("    movi r9, 0") // checksum
	g.emit("    movi r8, 0") // index
	loop := g.newLabel("mainloop")
	done := g.newLabel("maindone")
	g.emit("%s:", loop)
	g.emit("    cmp r8, r10")
	g.emit("    jae %s", done)
	// r1 = input byte ^ index
	g.emit("    movi r2, %s_inbuf", name)
	g.emit("    add r2, r8")
	g.emit("    loadb r1, [r2]")
	g.emit("    xor r1, r8")

	// Dispatch: direct calls to entry functions of the DAG.
	if p.DirectCallAll {
		for f := 0; f < p.NumFuncs; f++ {
			if tableOnly[f] {
				continue
			}
			g.called[f] = true
			g.emit("    call %s", g.funcName(f))
			g.emit("    add r9, r1")
		}
	} else {
		directs := 1 + g.rng.Intn(3)
		for d := 0; d < directs; d++ {
			f := g.rng.Intn(g.p.NumFuncs)
			if tableOnly[f] {
				f = 0
			}
			g.called[f] = true
			g.emit("    call %s", g.funcName(f))
			g.emit("    add r9, r1")
		}
	}
	if p.ColdFuncs > 0 {
		// Error-path dispatch: input byte 0xFF routes through every cold
		// function; training inputs avoid 0xFF, so profiling marks them
		// cold while static analysis still reaches them.
		skip := g.newLabel("nocold")
		g.emit("    movi r2, %s_inbuf", name)
		g.emit("    add r2, r8")
		g.emit("    loadb r2, [r2]")
		g.emit("    cmpi r2, 255")
		g.emit("    jnz %s", skip)
		for k := 0; k < p.ColdFuncs; k++ {
			g.emit("    mov r1, r9")
			g.emit("    call %s", g.funcName(p.NumFuncs+k))
			g.emit("    add r9, r1")
		}
		g.emit("%s:", skip)
	}
	// Indirect call through the function-pointer table, index from the
	// running checksum.
	g.emit("    mov r4, r9")
	g.emit("    movi r5, %s_ftabn", name)
	g.emit("    load r5, [r5]")
	g.emit("    mod r4, r5")
	g.emit("    shli r4, 2")
	g.emit("    movi r5, %s_ftab", name)
	g.emit("    add r5, r4")
	g.emit("    load r5, [r5]")
	g.emit("    callr r5")
	g.emit("    add r9, r1")
	// Imported calls.
	for _, imp := range p.Imports {
		lib, sym, _ := strings.Cut(imp, ":")
		g.emit("    mov r1, r9")
		g.emit("    andi r1, 0xff")
		g.emit("    movi r5, %s_got_%s_%s", name, lib, sym)
		g.emit("    load r5, [r5]")
		g.emit("    callr r5")
		g.emit("    add r9, r1")
	}
	g.emit("    inc r8")
	g.emit("    jmp %s", loop)
	g.emit("%s:", done)
	// Store digest into outbuf and transmit 8 bytes.
	g.emit("    movi r2, %s_outbuf", name)
	g.emit("    store [r2], r9")
	g.emit("    mov r3, r9")
	g.emit("    xori r3, 0x5a5a5a5a")
	g.emit("    store [r2+4], r3")
	g.emit("    movi r0, 2")
	g.emit("    movi r1, 1")
	g.emit("    movi r3, 8")
	g.emit("    syscall")
	// terminate(checksum & 0x3f)
	g.emit("    mov r1, r9")
	g.emit("    andi r1, 0x3f")
	g.emit("    movi r0, 1")
	g.emit("    syscall")
}

// function emits one function. Regular bodies are compiler-shaped
// (frame, bounded loops, if/else diamonds, global accesses, DAG calls);
// handwritten bodies add the irregular constructs.
func (g *gen) function(i int, handwritten bool, tableOnly map[int]bool) {
	name := g.funcName(i)
	g.emit("%s:", name)
	// Callee-saves go above the frame so frame stores cannot clobber
	// them; the frame is [sp+0, sp+frame).
	frame := 16 + 4*g.rng.Intn(16) // 16..76 bytes
	g.emit("    push r8")
	g.emit("    push r9")
	g.emit("    addi sp, -%d", frame)
	g.emit("    mov r8, r1")

	ops := g.p.OpsMin + g.rng.Intn(g.p.OpsMax-g.p.OpsMin+1)
	if g.p.BigDollops {
		ops *= 8
	}
	exit := g.newLabel("ret")
	called := false
	for k := 0; k < ops; k++ {
		if g.p.BigDollops && k%4 == 2 {
			// Address-shaped immediates naming mid-function labels: the
			// conservative pinning heuristics must pin them, peppering
			// the function with pinned addresses (the pathological-CB
			// fragmentation shape from the paper's Fig. 6 discussion).
			lab := g.newLabel("mid")
			g.emit("    movi r11, %s", lab)
			g.emit("%s:", lab)
		}
		g.bodyOp(i, frame, exit, tableOnly, &called)
	}
	if handwritten {
		g.handwrittenBlock(i, exit)
	}
	g.emit("%s:", exit)
	g.emit("    mov r1, r8")
	g.emit("    andi r1, 0xffff")
	g.emit("    addi sp, %d", frame)
	g.emit("    pop r9")
	g.emit("    pop r8")
	g.emit("    ret")
}

// callLevels bounds call-chain depth: function i may only call into the
// next level, so the deepest chain is maxLevels frames regardless of
// how many functions the program has.
const maxLevels = 24

// callTarget picks a function the body of i may call, or -1.
func (g *gen) callTarget(i int, tableOnly map[int]bool) int {
	n := g.p.NumFuncs
	levelSize := (n + maxLevels - 1) / maxLevels
	next := (i/levelSize + 1) * levelSize
	if next >= n {
		return -1
	}
	j := next + g.rng.Intn(n-next)
	if tableOnly[j] {
		return -1
	}
	return j
}

// bodyOp emits one operation of a function body. At most one DAG call is
// emitted per function (tracked via called) to keep the total work per
// input byte bounded and measurable.
func (g *gen) bodyOp(i, frame int, exit string, tableOnly map[int]bool, called *bool) {
	name := g.p.Name
	switch g.rng.Intn(12) {
	case 0, 1: // arithmetic
		ops := []string{"add", "sub", "xor", "or", "and", "mul"}
		op := ops[g.rng.Intn(len(ops))]
		g.emit("    movi r2, %d", 1+g.rng.Intn(1000))
		g.emit("    %s r8, r2", op)
	case 2: // shift mix
		g.emit("    mov r2, r8")
		g.emit("    shri r2, %d", 1+g.rng.Intn(7))
		g.emit("    xor r8, r2")
	case 3: // frame spill/reload
		off := 4 * g.rng.Intn(frame/4)
		g.emit("    store [sp+%d], r8", off)
		g.emit("    movi r2, %d", g.rng.Intn(256))
		g.emit("    add r8, r2")
		g.emit("    load r2, [sp+%d]", off)
		g.emit("    xor r8, r2")
	case 4: // global read-modify-write, bounded index
		g.emit("    mov r2, r8")
		g.emit("    movi r3, %d", g.p.DataWords)
		g.emit("    mod r2, r3")
		g.emit("    shli r2, 2")
		g.emit("    movi r3, %s_gdata", name)
		g.emit("    add r3, r2")
		g.emit("    load r4, [r3]")
		g.emit("    add r4, r8")
		g.emit("    store [r3], r4")
		g.emit("    xor r8, r4")
	case 5, 10, 11: // bounded counted loop (the bulk of per-call work)
		lab := g.newLabel("loop")
		g.emit("    movi r5, %d", 2+g.rng.Intn(g.p.LoopIters))
		g.emit("%s:", lab)
		g.emit("    add r8, r5")
		g.emit("    mov r2, r8")
		g.emit("    shri r2, 3")
		g.emit("    xor r8, r2")
		g.emit("    dec r5")
		g.emit("    jnz %s", lab)
	case 6: // if/else diamond
		a, b := g.newLabel("then"), g.newLabel("endif")
		g.emit("    cmpi r8, %d", g.rng.Intn(4096))
		g.emit("    jl %s", a)
		g.emit("    xori r8, 0x1234")
		g.emit("    jmp %s", b)
		g.emit("%s:", a)
		g.emit("    addi r8, 77")
		g.emit("%s:", b)
	case 7: // conditional skip (forward branch over a tweak)
		lab := g.newLabel("skip")
		g.emit("    cmpi r8, %d", g.rng.Intn(64))
		g.emit("    jnz %s", lab)
		g.emit("    xori r8, 0x55")
		g.emit("%s:", lab)
	case 8: // DAG call into the next level, at most once per function
		j := -1
		if !*called {
			j = g.callTarget(i, tableOnly)
		}
		if j >= 0 {
			*called = true
			g.called[j] = true
			g.emit("    mov r1, r8")
			g.emit("    call %s", g.funcName(j))
			g.emit("    add r8, r1")
		} else {
			g.emit("    not r8")
		}
	case 9: // local short branch (rel8 forms exercised where the ISA has them)
		lab := g.newLabel("near")
		jz := "jz.s"
		if g.arch.InstLen(isa.Inst{Op: isa.OpJcc8}) == 0 {
			jz = "jz" // fixed-width ISAs have no rel8 branches
		}
		g.emit("    cmpi8 r8, 0")
		g.emit("    %s %s", jz, lab)
		g.emit("    inc r8")
		g.emit("%s:", lab)
	}
}

// handwrittenBlock emits the irregular constructs of hand-written
// assembly: data embedded in text read with loadpc, an in-text jump
// table driven through jmpr, and a code-address immediate.
func (g *gen) handwrittenBlock(i int, exit string) {
	skip := g.newLabel("skip")
	blob := g.newLabel("blob")
	tab := g.newLabel("jtab")
	c0, c1, c2 := g.newLabel("case"), g.newLabel("case"), g.newLabel("case")
	join := g.newLabel("join")

	// Data in text: constants the code reads PC-relatively.
	g.emit("    jmp %s", skip)
	g.emit("%s: .word 0x%x, 0x%x", blob, g.rng.Uint32(), g.rng.Uint32())
	g.emit("    .asciz \"%s-hw%d\"", g.p.Name, i)
	g.emit("    .align 4")
	// Jump table in text: absolute code addresses among the data.
	g.emit("%s: .word %s, %s, %s", tab, c0, c1, c2)
	g.emit("%s:", skip)
	g.emit("    loadpc r2, %s", blob)
	g.emit("    xor r8, r2")
	// Computed jump through the in-text table.
	g.emit("    mov r2, r8")
	g.emit("    movi r3, 3")
	g.emit("    mod r2, r3")
	g.emit("    shli r2, 2")
	g.emit("    lea r3, %s", tab)
	g.emit("    add r3, r2")
	g.emit("    load r3, [r3]")
	g.emit("    jmpr r3")
	g.emit("%s:", c0)
	g.emit("    addi r8, 11")
	g.emit("    jmp %s", join)
	g.emit("%s:", c1)
	g.emit("    addi r8, 23")
	g.emit("    jmp %s", join)
	g.emit("%s:", c2)
	// Address-shaped immediate + indirect jump (the movi-pinning case).
	g.emit("    movi r3, %s", join)
	g.emit("    addi r8, 37")
	g.emit("    jmpr r3")
	g.emit("%s:", join)
	g.emit("    cmpi8 r8, 0")
	g.emit("    jnz %s", exit)
	g.emit("    inc r8")
}
