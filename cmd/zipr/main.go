// Command zipr statically rewrites a ZELF binary or shared library.
//
// Usage:
//
//	zipr [-transforms null,cfi,stackpad,canary] [-layout optimized|diversity|profile-guided]
//	     [-arbitration two-way|weighted] [-isa zvm32|zvm64] [-seed N] [-pad N] [-stats]
//	     [-phase-times] [-trace-out trace.jsonl] [-sql "SELECT ..."] [-chaos-seed N]
//	     input.zelf output.zelf
//
// The -sql flag runs a query against the captured IR database after
// construction (tables: instructions, functions, fixed_ranges,
// warnings) and prints the rows, which is handy for inspecting what the
// analysis concluded about a binary.
//
// -phase-times prints a per-phase wall-time and memory-delta table for
// the rewrite; -trace-out writes the same data (every span, counter,
// gauge and histogram) as JSON-lines for offline analysis.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"zipr"
	"zipr/internal/binfmt"
	"zipr/internal/isa"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// verifyPair runs the original and rewritten images on the same input
// and compares their transcripts — the paper's functionality oracle as a
// command-line check.
func verifyPair(origImage, newImage []byte, inputPath string, arch isa.Arch) (string, error) {
	input, err := os.ReadFile(inputPath)
	if err != nil {
		return "", err
	}
	runOne := func(image []byte) (vm.Result, error) {
		bin, err := binfmt.Unmarshal(image)
		if err != nil {
			return vm.Result{}, err
		}
		m := vm.New(vm.WithStdin(bytes.NewReader(input)),
			vm.WithMaxSteps(500_000_000), vm.WithArch(arch))
		if err := loader.Load(m, bin, nil); err != nil {
			return vm.Result{}, err
		}
		return m.Run()
	}
	want, err1 := runOne(origImage)
	got, err2 := runOne(newImage)
	switch {
	case err1 != nil:
		return "", fmt.Errorf("verify: original binary failed: %w", err1)
	case err2 != nil:
		return "", fmt.Errorf("verify: rewritten binary failed: %w", err2)
	case want.ExitCode != got.ExitCode:
		return "", fmt.Errorf("verify: exit codes differ: %d vs %d", want.ExitCode, got.ExitCode)
	case !bytes.Equal(want.Output, got.Output):
		return "", fmt.Errorf("verify: transcripts differ (%d vs %d bytes)", len(want.Output), len(got.Output))
	}
	// Transcripts match; report execution-cost deltas so rewriting
	// overhead (extra reference jumps, touched pages, dispatch code) is
	// visible, not just behavioral parity.
	delta := func(orig, new uint64) string {
		if orig == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.2f%%", 100*(float64(new)-float64(orig))/float64(orig))
	}
	return fmt.Sprintf("verify: transcripts identical (exit %d, %d output bytes)\n"+
		"verify: original  steps=%d pages=%d syscalls=%d memops=%d\n"+
		"verify: rewritten steps=%d (%s) pages=%d (%s) syscalls=%d memops=%d (%s)",
		want.ExitCode, len(want.Output),
		want.Steps, want.PagesTouched, want.Syscalls, want.MemOps,
		got.Steps, delta(want.Steps, got.Steps),
		got.PagesTouched, delta(uint64(want.PagesTouched), uint64(got.PagesTouched)),
		got.Syscalls, got.MemOps, delta(want.MemOps, got.MemOps)), nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zipr:", err)
		os.Exit(1)
	}
}

func run() error {
	transforms := flag.String("transforms", "null", "comma-separated: null,cfi,stackpad,canary")
	layoutFlag := flag.String("layout", "optimized", "optimized | diversity | profile-guided")
	arbFlag := flag.String("arbitration", "two-way", "ambiguity arbitration: two-way | weighted")
	isaFlag := flag.String("isa", "zvm32", "instruction set of the input binary: zvm32 | zvm64")
	seed := flag.Int64("seed", 1, "diversity layout seed")
	pad := flag.Int("pad", 64, "stackpad padding bytes")
	stats := flag.Bool("stats", false, "print reassembly statistics")
	warns := flag.Bool("warnings", false, "print analysis warnings")
	phaseTimes := flag.Bool("phase-times", false, "print a per-phase wall-time and memory-delta table")
	traceOut := flag.String("trace-out", "", "write the phase trace and metrics as JSON-lines to this file")
	sql := flag.String("sql", "", "run an SQL query against the captured IR")
	mapOut := flag.String("map", "", "write an original->rewritten address map to this file")
	verify := flag.String("verify-input", "", "run original and rewritten binaries on this input file and compare transcripts")
	chaosSeed := flag.Int64("chaos-seed", 0, "arm deterministic fault injection with this seed (0 = off); the run must end in a verified rewrite or a typed error")
	flag.Parse()

	if flag.NArg() != 2 {
		return fmt.Errorf("usage: zipr [flags] input.zelf output.zelf")
	}
	input, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}

	var tfs []zipr.Transform
	for _, name := range strings.Split(*transforms, ",") {
		switch strings.TrimSpace(name) {
		case "", "null":
			tfs = append(tfs, zipr.Null())
		case "cfi":
			tfs = append(tfs, zipr.CFI())
		case "stackpad":
			tfs = append(tfs, zipr.StackPad(int32(*pad)))
		case "canary":
			tfs = append(tfs, zipr.Canary(0))
		case "pin-blocks":
			tfs = append(tfs, zipr.PinBlocks())
		default:
			return fmt.Errorf("unknown transform %q", name)
		}
	}
	var sinks []zipr.TraceSink
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceFile = f
		sinks = append(sinks, zipr.NewJSONLSink(f))
	}
	if *phaseTimes {
		sinks = append(sinks, zipr.NewTableSink(os.Stdout))
	}
	var tr *zipr.Trace
	if len(sinks) > 0 {
		tr = zipr.NewTrace(sinks...)
	}
	cfg := zipr.Config{
		Transforms:  tfs,
		Layout:      zipr.LayoutKind(*layoutFlag),
		Arbitration: zipr.ArbitrationKind(*arbFlag),
		ISA:         *isaFlag,
		Seed:        *seed,
		CaptureIR:   *sql != "",
		EmitMap:     *mapOut != "",
		Trace:       tr,
	}
	if *chaosSeed != 0 {
		cfg.Chaos = zipr.NewFaultInjector(*chaosSeed)
		fmt.Printf("chaos: %s\n", cfg.Chaos.Describe())
	}
	out, report, err := zipr.Rewrite(input, cfg)
	if err != nil {
		if class := zipr.ErrorClass(err); class != "" {
			return fmt.Errorf("[%s] %w", class, err)
		}
		return err
	}
	if err := os.WriteFile(flag.Arg(1), out, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d -> %d bytes (%+.2f%%), layout %s\n",
		flag.Arg(1), report.InputSize, report.OutputSize,
		report.SizeOverhead()*100, report.Layout)
	if tr != nil {
		if err := tr.Close(); err != nil {
			return err
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("%s: phase trace written\n", *traceOut)
		}
	}
	if *stats {
		s := report.Stats
		fmt.Printf("pins %d (inline %d, 5-byte %d, 2-byte %d, chains %d, sleds %d/%d entries)\n",
			s.Pinned, s.InlinePins, s.Stubs5, s.Stubs2, s.Chains, s.Sleds, s.SledEntries)
		fmt.Printf("dollops %d (splits %d), overflow %d bytes, text growth %d, free left %d, veneers %d\n",
			s.Dollops, s.Splits, s.OverflowUsed, s.TextGrowth, s.FreeLeft, s.Veneers)
	}
	if *warns {
		for _, w := range report.Warnings {
			fmt.Println("warning:", w)
		}
	}
	if *verify != "" {
		arch, err := isa.ByName(*isaFlag)
		if err != nil {
			return err
		}
		verdict, err := verifyPair(input, out, *verify, arch)
		if err != nil {
			return err
		}
		fmt.Println(verdict)
	}
	if *mapOut != "" {
		addrs := make([]uint32, 0, len(report.AddrMap))
		for a := range report.AddrMap {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		var sb strings.Builder
		for _, a := range addrs {
			fmt.Fprintf(&sb, "%#08x %#08x\n", a, report.AddrMap[a])
		}
		if err := os.WriteFile(*mapOut, []byte(sb.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d mappings\n", *mapOut, len(addrs))
	}
	if *sql != "" {
		res, err := report.IRDB.Exec(*sql)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			keys := make([]string, 0, len(row))
			for k := range row {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%v", k, row[k]))
			}
			fmt.Println(strings.Join(parts, " "))
		}
		if res.Affected > 0 {
			fmt.Printf("(%d rows affected)\n", res.Affected)
		}
	}
	return nil
}
