package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestRegistryFamiliesAndSeries(t *testing.T) {
	r := NewRegistry()
	total := r.Counter("serve.request.total", "requests by outcome", "outcome")
	hit := total.With("hit")
	miss := total.With("miss")
	hit.Add(3)
	miss.Add(1)
	hit.Add(2)
	if hit.Value() != 5 || miss.Value() != 1 {
		t.Fatalf("counter values = %d/%d, want 5/1", hit.Value(), miss.Value())
	}
	// Re-resolving the same labels returns the same series.
	if total.With("hit").Value() != 5 {
		t.Fatal("With(hit) resolved a fresh series")
	}
	// Re-registering the same family returns it unchanged.
	if r.Counter("serve.request.total", "requests by outcome", "outcome").With("hit").Value() != 5 {
		t.Fatal("re-registration lost the series")
	}

	g := r.Gauge("serve.queue.depth", "waiting requests").With()
	g.Set(7)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}

	h := r.Histogram("serve.input.bytes", "input sizes", "kind").With("zelf")
	for _, v := range []int64{1, 2, 4, 8, 1024} {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q < 2 || q > 4 {
		t.Fatalf("hist p50 = %d, want in [2,4]", q)
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("families = %d, want 3", len(snap))
	}
	// Registration order preserved.
	if snap[0].Name != "serve.request.total" || snap[1].Name != "serve.queue.depth" || snap[2].Name != "serve.input.bytes" {
		t.Fatalf("family order = %s,%s,%s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Kind != "counter" || len(snap[0].Series) != 2 {
		t.Fatalf("counter family snap = %+v", snap[0])
	}
	if snap[0].Series[0].Labels[0] != "hit" || snap[0].Series[0].Value != 5 {
		t.Fatalf("hit series snap = %+v", snap[0].Series[0])
	}
	if snap[2].Series[0].Count != 5 || snap[2].Series[0].Sum != 1039 {
		t.Fatalf("hist series snap = %+v", snap[2].Series[0])
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b", "", "l")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("a.b", "", "l")
}

func TestRegistryLabelMismatchReturnsNil(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("a.b", "", "outcome")
	if c := v.With("x", "y"); c != nil {
		t.Fatal("wrong label arity resolved a series")
	}
	if c := v.With(); c != nil {
		t.Fatal("missing label value resolved a series")
	}
	// The nil handle is a safe no-op.
	v.With().Add(1)
}

func TestRegistryCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("a.b", "", "id")
	for i := 0; i < MaxSeries+10; i++ {
		v.With(fmt.Sprintf("id-%d", i)).Add(1)
	}
	snap := r.Snapshot()[0]
	if len(snap.Series) != MaxSeries {
		t.Fatalf("series = %d, want capped at %d", len(snap.Series), MaxSeries)
	}
	if snap.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.Dropped)
	}
	// Existing series keep resolving after the cap.
	if v.With("id-0").Value() != 1 {
		t.Fatal("pre-cap series lost")
	}
}

// TestNilRegistryZeroAlloc locks in the disabled-telemetry contract:
// the whole chain — registration, With, and the per-event methods —
// must be allocation-free on a nil registry, mirroring the nil-Trace
// rule.
func TestNilRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	cv := r.Counter("x.y", "", "outcome")
	gv := r.Gauge("x.z", "")
	hv := r.Histogram("x.h", "", "k")
	wv := r.Window("x.w", "", time.Minute, "k")
	c := cv.With("hit")
	g := gv.With()
	h := hv.With("a")
	w := wv.With("a")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
		w.Observe(4)
		cv.With("miss").Add(1)
		if r.Snapshot() != nil {
			t.Fatal("nil registry snapshot not nil")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled registry allocated %.1f objects/op, want 0", allocs)
	}
}

func TestWindowRotation(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1_000_000, 0)
	r.now = func() time.Time { return now }
	w := r.Window("w.lat", "latency", 8*time.Minute).With() // 1-minute slices

	for i := 0; i < 10; i++ {
		w.Observe(1000) // old observations: large values
	}
	if q := w.Quantile(0.5); q < 512 || q > 1023 {
		t.Fatalf("p50 with only old values = %d, want ~1000's bucket [512,1023]", q)
	}

	// Advance beyond the window: old slices age out of quantiles.
	now = now.Add(9 * time.Minute)
	for i := 0; i < 10; i++ {
		w.Observe(4)
	}
	if q := w.Quantile(0.99); q > 7 {
		t.Fatalf("p99 after rotation = %d, want <= 7 (stale slices leaked in)", q)
	}

	// Lifetime totals survive rotation (exposition _sum/_count).
	snap := r.Snapshot()[0].Series[0]
	if snap.Count != 20 || snap.Sum != 10040 {
		t.Fatalf("lifetime count/sum = %d/%d, want 20/10040", snap.Count, snap.Sum)
	}
	if snap.P95 > 7 {
		t.Fatalf("snapshot p95 = %d, want windowed (<= 7)", snap.P95)
	}

	// A partial advance keeps recent slices: observations 2 minutes ago
	// still count inside an 8-minute window.
	now = now.Add(2 * time.Minute)
	if q := w.Quantile(0.5); q < 4 || q > 7 {
		t.Fatalf("p50 two minutes later = %d, want [4,7]", q)
	}
}

func TestHistQuantileDeterministic(t *testing.T) {
	h := &Hist{}
	// 100 observations of 10 (bucket [8,15]).
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	// All quantiles interpolate inside [8, 15].
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < 8 || got > 15 {
			t.Fatalf("Quantile(%v) = %d, want within [8,15]", q, got)
		}
	}
	if h.Quantile(0.01) > h.Quantile(0.99) {
		t.Fatal("quantiles not monotone")
	}

	h2 := &Hist{}
	h2.Observe(0)
	h2.Observe(1)
	if h2.Quantile(0.25) != 0 || h2.Quantile(1) != 1 {
		t.Fatalf("exact buckets: p25=%d p100=%d, want 0/1", h2.Quantile(0.25), h2.Quantile(1))
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	var nilH *Hist
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}
