package cgcsim

import (
	"errors"
	"testing"

	"zipr"
	"zipr/internal/binfmt"
)

func rewriteNull(bin *binfmt.Binary) (*binfmt.Binary, error) {
	out, _, err := zipr.RewriteBinary(bin, zipr.Config{Transforms: []zipr.Transform{zipr.Null()}})
	return out, err
}

func rewriteCFI(bin *binfmt.Binary) (*binfmt.Binary, error) {
	out, _, err := zipr.RewriteBinary(bin, zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}})
	return out, err
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Bin.FileSize() != b[i].Bin.FileSize() {
			t.Fatalf("cb%d differs between builds", i)
		}
		for p := range a[i].Pollers {
			if string(a[i].Pollers[p]) != string(b[i].Pollers[p]) {
				t.Fatalf("cb%d poller %d differs", i, p)
			}
		}
	}
}

func TestMeasureAndEquivalence(t *testing.T) {
	cbs, err := Corpus(2)
	if err != nil {
		t.Fatal(err)
	}
	cb := cbs[0]
	m, tr, err := Measure(cb.Bin, nil, cb.Pollers)
	if err != nil {
		t.Fatal(err)
	}
	if m.FileSize == 0 || m.Steps == 0 || m.MaxRSSPages == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if len(tr) != len(cb.Pollers) {
		t.Fatalf("transcripts = %d", len(tr))
	}
	m2, tr2, err := Measure(cb.Bin, nil, cb.Pollers)
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != m2.Steps || !Equivalent(tr, tr2) {
		t.Fatal("measurement not deterministic")
	}
	// Different binaries must differ.
	_, trOther, err := Measure(cbs[1].Bin, nil, cbs[1].Pollers)
	if err != nil {
		t.Fatal(err)
	}
	if Equivalent(tr, trOther) {
		t.Fatal("different CBs produced identical transcripts")
	}
	if Equivalent(tr, tr[:1]) {
		t.Fatal("length mismatch must not be equivalent")
	}
}

func TestOverheadMath(t *testing.T) {
	base := Metrics{FileSize: 100, Steps: 1000, MaxRSSPages: 10}
	other := Metrics{FileSize: 105, Steps: 1100, MaxRSSPages: 10}
	ov := Overhead(base, other)
	if ov.File != 5 || ov.Exec != 10 || ov.Mem != 0 {
		t.Fatalf("overheads = %+v", ov)
	}
	zero := Overhead(Metrics{}, other)
	if zero.File != 0 {
		t.Fatal("zero baseline must not divide by zero")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram()
	for _, pct := range []float64{-1, 0, 0.1, 5, 5.1, 10.5, 20.5, 55, 1e9} {
		h.Add(pct)
	}
	want := []int{2, 2, 1, 1, 1, 2}
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts, want)
		}
	}
}

func TestEvaluateNullTransformSample(t *testing.T) {
	cbs, err := Corpus(4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Evaluate(cbs, rewriteNull)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Functional {
			t.Errorf("%s: null-transformed binary is not functionally equivalent", r.Name)
		}
		if r.Overheads.File > 20 {
			t.Errorf("%s: null file overhead %.1f%% exceeds the CGC threshold", r.Name, r.Overheads.File)
		}
	}
	s := Summarize(rows)
	if s.Functional != s.Total {
		t.Fatalf("functional %d/%d", s.Functional, s.Total)
	}
}

func TestEvaluateCFISample(t *testing.T) {
	cbs, err := Corpus(3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Evaluate(cbs, rewriteCFI)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Functional {
			t.Errorf("%s: CFI binary is not functionally equivalent", r.Name)
		}
		if r.Overheads.Exec < 0 {
			t.Errorf("%s: CFI sped the program up (%.1f%%)?", r.Name, r.Overheads.Exec)
		}
	}
}

func TestEvaluatePropagatesErrors(t *testing.T) {
	cbs, err := Corpus(1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = Evaluate(cbs, func(*binfmt.Binary) (*binfmt.Binary, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v", err)
	}
}

func TestSummarizeAverages(t *testing.T) {
	rows := []Row{
		{Overheads: Overheads{File: 2, Exec: 4, Mem: 6}, Functional: true},
		{Overheads: Overheads{File: 4, Exec: 8, Mem: 10}, Functional: false},
	}
	s := Summarize(rows)
	if s.AvgFile != 3 || s.AvgExec != 6 || s.AvgMem != 8 {
		t.Fatalf("averages = %+v", s)
	}
	if s.Functional != 1 || s.Total != 2 {
		t.Fatalf("functional = %d/%d", s.Functional, s.Total)
	}
	if empty := Summarize(nil); empty.Total != 0 {
		t.Fatal("empty summarize")
	}
}
