// cfi-protect: demonstrates the security payoff of rewriting. The target
// program dispatches through a function pointer stored in writable data
// directly after an input buffer; nine attacker-controlled bytes
// overflow the buffer and redirect the pointer into secret(), leaking a
// flag. After rewriting with the CFI transform, the benign path still
// works but the hijacked pointer — which names an address that is not a
// legal indirect target — terminates the program with the violation
// code, exactly the defense Xandra fielded in the CGC.
package main

import (
	"bytes"
	"fmt"
	"log"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

const vulnerable = `
.text 0x00100000
main:
    movi r0, 3          ; receive attacker input (up to 12 bytes)
    movi r1, 0
    movi r2, buf
    movi r3, 12
    syscall
    movi r5, fptr
    load r5, [r5]
    callr r5            ; hijackable dispatch
    movi r0, 1
    syscall
benign:
    movi r1, 0
    ret
secret:
    lea r2, flag        ; "flag disclosure"
    movi r0, 2
    movi r1, 1
    mov r3, r1
    movi r3, 10
    syscall
    movi r1, 42
    ret
flag: .asciz "FLAG{pwnd}"
.data 0x00200000
buf: .space 8
fptr: .word benign
`

func run(bin *binfmt.Binary, input []byte) vm.Result {
	m := vm.New(vm.WithStdin(bytes.NewReader(input)), vm.WithMaxSteps(1_000_000))
	if err := loader.Load(m, bin, nil); err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		// Faults (e.g. wild jumps) count as crashes, not flag leaks.
		fmt.Println("   (program crashed:", err, ")")
	}
	return res
}

func main() {
	original, err := asm.Assemble(vulnerable)
	if err != nil {
		log.Fatal(err)
	}

	// Build the payload: 8 filler bytes, then one byte that rewrites the
	// low byte of fptr so it points at secret instead of benign.
	d := original.DataSeg()
	origPtr := uint32(d.Data[8]) | uint32(d.Data[9])<<8 | uint32(d.Data[10])<<16 | uint32(d.Data[11])<<24
	secretPtr := origPtr + 7 // benign is movi(6)+ret(1) = 7 bytes
	payload := append(make([]byte, 8), byte(secretPtr))

	fmt.Println("== unprotected binary ==")
	res := run(original, nil)
	fmt.Printf("benign run:  exit=%d output=%q\n", res.ExitCode, res.Output)
	res = run(original, payload)
	fmt.Printf("attack run:  exit=%d output=%q", res.ExitCode, res.Output)
	if res.ExitCode == 42 {
		fmt.Print("   <-- hijack succeeded, flag leaked")
	}
	fmt.Println()

	protected, report, err := zipr.RewriteBinary(original.Clone(), zipr.Config{
		Transforms: []zipr.Transform{zipr.CFI()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== zipr + CFI (file %+.1f%%) ==\n", report.SizeOverhead()*100)
	res = run(protected, nil)
	fmt.Printf("benign run:  exit=%d output=%q\n", res.ExitCode, res.Output)
	res = run(protected, payload)
	fmt.Printf("attack run:  exit=%d output=%q", res.ExitCode, res.Output)
	if res.ExitCode == 139 {
		fmt.Print("   <-- CFI violation, attack blocked")
	}
	fmt.Println()
}
