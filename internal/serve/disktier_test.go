package serve

// Disk-tier tests: spilled outputs survive a restart and answer an
// empty-RAM server without a pipeline run; crash debris (truncated tmp
// files, a torn journal tail, missing objects, orphans) is dropped and
// counted on reopen; corruption is quarantined and degrades to a miss
// (never wrong bytes); eviction honors the byte budget; and placement
// snapshots spill so delta ancestry survives a restart too.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zipr"
	"zipr/internal/fault"
	"zipr/internal/obs"
)

// openTier opens a disk tier rooted in dir, failing the test on error
// and closing it on cleanup.
func openTier(t *testing.T, dir string, budget int64) *DiskTier {
	t.Helper()
	tier, err := OpenDiskTier(dir, budget)
	if err != nil {
		t.Fatalf("open disk tier: %v", err)
	}
	t.Cleanup(tier.Close)
	return tier
}

// TestDiskTierRestartHit is the durability contract: a rewrite spilled
// by one server is answered by a restarted, empty-RAM server from disk
// — digest-verified, no pipeline run — and promoted so the next repeat
// is a RAM hit.
func TestDiskTierRestartHit(t *testing.T) {
	in := testImages(t)[0]
	cfg := nullCfg()
	dir := t.TempDir()

	tier := openTier(t, dir, 0)
	a := New(Options{Workers: 1, SnapshotBytes: -1, Disk: tier})
	cold, _, err := a.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	tier.Close() // drains the write-behind queue

	tier2 := openTier(t, dir, 0)
	if st := tier2.Stats(); st.Entries != 1 {
		t.Fatalf("reopened tier holds %d entries, want 1", st.Entries)
	}
	b := New(Options{Workers: 1, SnapshotBytes: -1, Disk: tier2, Trace: obs.New()})
	defer b.Close()
	out, rep, meta, err := b.RewriteMeta(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, cold) {
		t.Fatal("disk-tier answer diverges from the original rewrite")
	}
	if meta.Outcome != OutcomeHit || meta.Tier != TierDisk {
		t.Fatalf("outcome/tier = %s/%s, want hit/disk", meta.Outcome, meta.Tier)
	}
	if rep.OutputSize != len(cold) {
		t.Fatalf("report output size = %d, want %d", rep.OutputSize, len(cold))
	}
	st := b.Stats()
	if st.PipelineRuns != 0 {
		t.Fatalf("restarted server ran the pipeline %d times, want 0", st.PipelineRuns)
	}
	if st.DiskHits != 1 || st.DiskPromotes != 1 {
		t.Fatalf("disk hits/promotes = %d/%d, want 1/1", st.DiskHits, st.DiskPromotes)
	}
	// Promotion landed in RAM: the repeat is a ram-tier hit.
	_, _, meta, err = b.RewriteMeta(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeHit || meta.Tier != TierRAM {
		t.Fatalf("repeat outcome/tier = %s/%s, want hit/ram", meta.Outcome, meta.Tier)
	}
}

// TestDiskTierCrashRecovery: every class of crash debris is dropped,
// counted as recovered, and the store reopens serving what survived.
func TestDiskTierCrashRecovery(t *testing.T) {
	images := testImages(t)
	cfg := nullCfg()
	dir := t.TempDir()

	tier := openTier(t, dir, 0)
	s := New(Options{Workers: 1, SnapshotBytes: -1, Disk: tier})
	var want [][]byte
	for _, in := range images {
		out, _, err := s.Rewrite(context.Background(), in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out)
	}
	s.Close()
	tier.Close()

	// Crash debris, one of each kind:
	// (a) a truncated in-flight temp file,
	if err := os.WriteFile(filepath.Join(dir, "tmp", "deadbeef.tmp"), []byte("half a wri"), 0o644); err != nil {
		t.Fatal(err)
	}
	// (b) a torn journal tail (crash mid-append),
	jf, err := os.OpenFile(filepath.Join(dir, "journal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jf.WriteString(`{"op":"put","kind":"out","key":"ab12`); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	// (c) an object whose journal entry promises different bytes
	// (truncate it, so the size check drops the entry),
	victimKey := CacheKey(images[0], cfg)
	victimPath := filepath.Join(dir, "objects", victimKey.String()[:2], victimKey.String())
	if err := os.Truncate(victimPath, 3); err != nil {
		t.Fatal(err)
	}
	// (d) an orphaned object file with no journal line.
	orphan := strings.Repeat("ab", 32)
	if err := os.MkdirAll(filepath.Join(dir, "objects", orphan[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", orphan[:2], orphan), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}

	tier2 := openTier(t, dir, 0)
	st := tier2.Stats()
	if st.Recovered < 4 {
		t.Fatalf("recovered = %d, want >= 4 (tmp + torn line + truncated + orphan)", st.Recovered)
	}
	if st.Entries != len(images)-1 {
		t.Fatalf("reopened tier holds %d entries, want %d", st.Entries, len(images)-1)
	}
	// The damaged entry is gone (miss), the intact ones still verify.
	if _, _, ok := tier2.get(victimKey, nil); ok {
		t.Fatal("truncated entry survived recovery")
	}
	for i := 1; i < len(images); i++ {
		data, _, ok := tier2.get(CacheKey(images[i], cfg), nil)
		if !ok || !bytes.Equal(data, want[i]) {
			t.Fatalf("image %d: surviving entry unreadable or wrong after recovery", i)
		}
	}
}

// TestDiskTierEvictionAndRestart: the byte budget is enforced LRU-cold-
// first, eviction is journaled, and a reopen sees only the survivors.
func TestDiskTierEvictionAndRestart(t *testing.T) {
	dir := t.TempDir()
	tier := openTier(t, dir, 0)
	blob := func(b byte) []byte { return bytes.Repeat([]byte{b}, 1000) }
	var keys []Key
	for i := 0; i < 4; i++ {
		k := CacheKey([]byte{byte(i)}, nullCfg())
		keys = append(keys, k)
		tier.putAsync(k, diskKindOut, blob(byte(i)), "optimized")
	}
	tier.Close()

	tier2 := openTier(t, dir, 2500) // room for two entries
	st := tier2.Stats()
	if st.Entries != 2 || st.Bytes != 2000 {
		t.Fatalf("after budgeted reopen: %d entries / %d bytes, want 2 / 2000", st.Entries, st.Bytes)
	}
	// The survivors are the most recent puts; evicted keys miss.
	for i, k := range keys {
		_, _, ok := tier2.get(k, nil)
		if want := i >= 2; ok != want {
			t.Fatalf("key %d present=%v, want %v", i, ok, want)
		}
	}
	tier2.Close()
	// The journaled deletions hold across another reopen.
	tier3 := openTier(t, dir, 2500)
	if st := tier3.Stats(); st.Entries != 2 {
		t.Fatalf("third open holds %d entries, want 2", st.Entries)
	}
}

// TestChaosDiskTierCorruptQuarantines pins the two-outcome contract for
// fault.DiskTierCorrupt: a corrupted disk read is caught by the digest
// check, the file is quarantined, the entry degrades to a miss, and the
// request is answered by a fresh pipeline run with the same bytes —
// never divergent output.
func TestChaosDiskTierCorruptQuarantines(t *testing.T) {
	in := testImages(t)[1]
	cfg := nullCfg()
	// Find a chaos seed whose schedule fires at this request's disk-read
	// site, folding the candidate injector into the key as the server
	// will.
	var inj *fault.Injector
	for seed := int64(1); seed <= 1000; seed++ {
		cand := fault.NewArmed(seed, fault.DiskTierCorrupt)
		c := cfg
		c.Chaos = cand
		if cand.Fires(fault.DiskTierCorrupt, CacheKey(in, c).site()) {
			inj = cand
			break
		}
	}
	if inj == nil {
		t.Fatal("no firing seed found in 1000 tries")
	}
	dir := t.TempDir()
	tier := openTier(t, dir, 0)
	// Warm the disk tier with a clean server run, then restart with
	// chaos armed and RAM caching off so the read must go to disk.
	warm := New(Options{Workers: 1, SnapshotBytes: -1, Disk: tier, Chaos: inj})
	want, _, err := warm.Rewrite(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm.Close()
	tier.Close()

	tier2 := openTier(t, dir, 0)
	s := New(Options{Workers: 1, CacheBytes: -1, SnapshotBytes: -1, Disk: tier2, Chaos: inj})
	defer s.Close()
	out, _, meta, err := s.RewriteMeta(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("degraded request returned divergent bytes")
	}
	if meta.Outcome != OutcomeMiss {
		t.Fatalf("outcome = %s, want miss (corruption must degrade)", meta.Outcome)
	}
	st := s.Stats()
	if st.DiskCorrupt != 1 || st.DiskHits != 0 {
		t.Fatalf("disk corrupt/hits = %d/%d, want 1/0", st.DiskCorrupt, st.DiskHits)
	}
	if st.PipelineRuns != 1 {
		t.Fatalf("pipeline runs = %d, want 1 (the verified fallback)", st.PipelineRuns)
	}
	// The poisoned file moved to quarantine and the entry is gone.
	key := CacheKey(in, s.effective(cfg))
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key.String())); err != nil {
		t.Fatalf("corrupt object not quarantined: %v", err)
	}
	if _, _, ok := tier2.get(key, nil); ok {
		t.Fatal("corrupt entry still indexed after quarantine")
	}
}

// TestDiskTierSnapshotSpill: placement snapshots spill to disk, so a
// restarted server with no SnapshotDB still answers an edited input via
// the delta path.
func TestDiskTierSnapshotSpill(t *testing.T) {
	base, edited := deltaImages(t, 1)
	cfg := zipr.Config{Transforms: []zipr.Transform{zipr.CFI()}}
	dir := t.TempDir()

	tier := openTier(t, dir, 0)
	a := New(Options{Workers: 1, Disk: tier})
	if _, _, meta, err := a.RewriteMeta(context.Background(), base, cfg); err != nil || meta.Outcome != OutcomeMiss {
		t.Fatalf("base request: outcome %s err %v, want miss", meta.Outcome, err)
	}
	a.Close()
	tier.Close()

	tier2 := openTier(t, dir, 0)
	b := New(Options{Workers: 1, Disk: tier2})
	defer b.Close()
	out, _, meta, err := b.RewriteMeta(context.Background(), edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Outcome != OutcomeDelta {
		t.Fatalf("edited request outcome = %s, want delta (snapshot restored from disk)", meta.Outcome)
	}
	// Byte identity against a cold server that never saw the base.
	fresh := New(Options{Workers: 1})
	defer fresh.Close()
	want, _, err := fresh.Rewrite(context.Background(), edited[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("disk-restored delta answer diverges from a from-scratch rewrite")
	}
}
