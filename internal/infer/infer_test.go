package infer

// Table-driven rule tests: each case assembles a small fixture whose
// layout isolates one inference rule, then checks the beliefs (weight
// and provenance) the engine derives. Fixtures name their regions of
// interest with a leading run of `lea r1, label` instructions at the
// entry — lea forms an address without seeding reachability or data
// facts, so the markers are inference-neutral.

import (
	"fmt"
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/isa"
)

// leaLabels returns the targets of the lea instructions at the start of
// the entry block, in source order.
func leaLabels(t *testing.T, bin *binfmt.Binary) []uint32 {
	t.Helper()
	text := bin.Text()
	addr := bin.Entry
	var out []uint32
	for {
		in, err := isa.Decode(text.Data[addr-text.VAddr:])
		if err != nil || in.Op != isa.OpLea {
			return out
		}
		tgt, ok := in.TargetAddr(addr)
		if !ok {
			t.Fatalf("lea at %#x has no target", addr)
		}
		out = append(out, tgt)
		addr += uint32(in.Len())
	}
}

func analyzeSrc(t *testing.T, src string) (*Result, []uint32) {
	t.Helper()
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("fixture does not assemble: %v", err)
	}
	return Analyze(bin), leaLabels(t, bin)
}

func TestRules(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		check func(t *testing.T, r *Result, labels []uint32)
	}{
		{
			// The axiom: everything reachable from the entry is code at
			// full weight, and is never demotable.
			name: "strong-reach",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, main
    movi r2, 7
    ret
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				w, rule := r.CodeBelief(labels[0])
				if w != WeightStrong || rule != RuleStrongReach {
					t.Fatalf("entry belief %d/%s, want %d/%s", w, rule, WeightStrong, RuleStrongReach)
				}
				if v, _ := r.Verdict(labels[0], 1); v != VerdictCode {
					t.Fatalf("entry verdict %d, want VerdictCode", v)
				}
			},
		},
		{
			// A provably-reached loadpc names four bytes of data.
			name: "data-access",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, blob
    loadpc r2, blob
    ret
blob: .word 0x11223344
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				for i := uint32(0); i < 4; i++ {
					w, rule := r.ByteBelief(labels[0] + i)
					if w != WeightDataAccess || rule != RuleDataAccess {
						t.Fatalf("blob+%d belief %d/%s, want %d/%s", i, w, rule, WeightDataAccess, RuleDataAccess)
					}
				}
			},
		},
		{
			// An aligned in-text word holding a code address: the word's
			// bytes are data (the slot), its target is believed code (the
			// pointer-target seed) and flow from the target stays believed
			// (code-flow), so none of the jump-table case chain is
			// demotable even though no direct flow reaches it.
			name: "table-slot and ptr-target",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, tab
    lea r2, case0
    lea r3, joined
    loadpc r4, tab
    ret
.align 4
tab:  .word case0
case0:
    addi r8, 11
    jmp joined
joined:
    inc r8
    ret
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				tab, case0, joined := labels[0], labels[1], labels[2]
				if w, rule := r.ByteBelief(tab); w != WeightDataAccess || rule != RuleDataAccess {
					// loadpc evidence (90) outranks the slot's own 70.
					t.Fatalf("tab belief %d/%s, want %d/%s", w, rule, WeightDataAccess, RuleDataAccess)
				}
				if w, rule := r.CodeBelief(case0); w != WeightPtrTarget || rule != RulePtrTarget {
					t.Fatalf("case0 belief %d/%s, want %d/%s", w, rule, WeightPtrTarget, RulePtrTarget)
				}
				if w, rule := r.CodeBelief(joined); w < codeFloor || rule != RuleCodeFlow {
					t.Fatalf("joined belief %d/%s, want >=%d/%s", w, rule, codeFloor, RuleCodeFlow)
				}
				for _, a := range []uint32{case0, joined} {
					if v, _ := r.Verdict(a, 2); v != VerdictCode {
						t.Fatalf("%#x verdict %d, want VerdictCode (demotion must be blocked)", a, v)
					}
				}
			},
		},
		{
			// The slot rule alone (no loadpc): the word's own bytes carry
			// WeightTableSlot.
			name: "table-slot bytes",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, tab
    ret
.align 4
tab:  .word target
target:
    ret
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				if w, rule := r.ByteBelief(labels[0]); w != WeightTableSlot || rule != RuleTableSlot {
					t.Fatalf("tab belief %d/%s, want %d/%s", w, rule, WeightTableSlot, RuleTableSlot)
				}
			},
		},
		{
			// Printable runs outside strong coverage are data.
			name: "string-run",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, msg
    ret
msg: .asciz "hello, world"
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				// Per-byte facts: the whole string, NUL included, is
				// string-run evidence.
				for i := uint32(0); i < 13; i++ {
					w, rule := r.ByteBelief(labels[0] + i)
					if w != WeightString || rule != RuleStringRun {
						t.Fatalf("msg+%d belief %d/%s, want %d/%s", i, w, rule, WeightString, RuleStringRun)
					}
				}
				// And the candidate spanning them is demotable.
				if v, _ := r.Verdict(labels[0], 6); v != VerdictData {
					t.Fatalf("string candidate not demotable")
				}
			},
		},
		{
			// A candidate whose decode chain must reach undecodable bytes
			// cannot be code: 0x90 is nop (falls through), 0xFF does not
			// decode, so the nop candidate is refuted transitively.
			name: "dead-end",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, junk
    ret
junk: .byte 0x90, 0x90, 0xFF, 0xFF
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				for i := uint32(0); i < 2; i++ {
					w, rule := r.DataBelief(labels[0]+i, 1)
					if w != WeightDeadEnd || rule != RuleDeadEnd {
						t.Fatalf("junk+%d belief %d/%s, want %d/%s", i, w, rule, WeightDeadEnd, RuleDeadEnd)
					}
					if v, _ := r.Verdict(labels[0]+i, 1); v != VerdictData {
						t.Fatalf("junk+%d not demotable", i)
					}
				}
			},
		},
		{
			// A short unevidenced gap between two data-evidenced regions
			// inside one non-strong run is coalesced into data.
			name: "data-gap",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, gap
    loadpc r2, blob
    ret
blob: .word 0x11223344
gap:  .byte 0x01, 0x02, 0x03, 0x04
      .asciz "coalesce me"
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				for i := uint32(0); i < 4; i++ {
					w, rule := r.ByteBelief(labels[0] + i)
					if w != WeightDataGap || rule != RuleDataGap {
						t.Fatalf("gap+%d belief %d/%s, want %d/%s", i, w, rule, WeightDataGap, RuleDataGap)
					}
				}
			},
		},
		{
			// Code belief always wins: these slot bytes are printable AND
			// hold a code pointer, but the slot's target is ptr-believed,
			// so the target's verdict is Code regardless of data evidence
			// on its own span.
			name: "code belief blocks demotion",
			src: `
.text 0x00100000
.entry main
main:
    lea r1, target
    ret
.align 4
tab:  .word target
target:
    inc r8
    ret
`,
			check: func(t *testing.T, r *Result, labels []uint32) {
				if v, _ := r.Verdict(labels[0], 2); v != VerdictCode {
					t.Fatalf("ptr-targeted candidate must keep VerdictCode")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, labels := analyzeSrc(t, tc.src)
			tc.check(t, r, labels)
		})
	}
}

// TestOverlapConflict pins the overlap rule: candidates decoding inside
// the span of a provably-reached instruction are junk. The movi
// immediate 0x90909090 makes every interior byte decode as nop, so the
// interior candidates all conflict with the strong movi.
func TestOverlapConflict(t *testing.T) {
	r, labels := analyzeSrc(t, `
.text 0x00100000
.entry main
main:
    lea r1, ov
ov: movi r2, 0x90909090
    ret
`)
	ov := labels[0]
	if w, rule := r.CodeBelief(ov); w != WeightStrong || rule != RuleStrongReach {
		t.Fatalf("movi belief %d/%s, want strong", w, rule)
	}
	// The movi is 1 opcode + 1 reg + 4 imm bytes; interior offsets 2..5
	// decode as nop candidates overlapping it.
	for i := uint32(2); i < 6; i++ {
		w, rule := r.DataBelief(ov+i, 1)
		if w != WeightOverlap || rule != RuleOverlap {
			t.Fatalf("interior candidate at +%d: belief %d/%s, want %d/%s",
				i, w, rule, WeightOverlap, RuleOverlap)
		}
		if v, _ := r.Verdict(ov+i, 1); v != VerdictData {
			t.Fatalf("interior candidate at +%d not demotable", i)
		}
	}
}

// TestFixedPointTerminationCyclic is the cyclic-edge worst case: a ring
// of branch candidates none of which is reachable from the entry, with
// a single pointer-word seed into the ring. Both fixed points must
// terminate (structurally — this test would hang otherwise), the ring
// must stay viable (no dead end exists on a cycle), and code belief
// must saturate around the ring at the floor instead of looping.
func TestFixedPointTerminationCyclic(t *testing.T) {
	const ringLen = 257
	var sb strings.Builder
	sb.WriteString(".text 0x00100000\n.entry main\nmain:\n    lea r1, ring0\n    ret\n.align 4\ntab: .word ring0\n")
	for i := 0; i < ringLen; i++ {
		fmt.Fprintf(&sb, "ring%d: jmp ring%d\n", i, (i+1)%ringLen)
	}
	r, labels := analyzeSrc(t, sb.String())
	ring0 := labels[0]
	if w, rule := r.CodeBelief(ring0); w != WeightPtrTarget || rule != RulePtrTarget {
		t.Fatalf("ring0 belief %d/%s, want %d/%s", w, rule, WeightPtrTarget, RulePtrTarget)
	}
	// Every ring member ends believed-code at or above the propagation
	// floor: the cycle converged instead of decaying to zero or looping.
	for i := 0; i < ringLen; i++ {
		addr := ring0 + uint32(i*5) // jmp rel32 is 5 bytes
		w, _ := r.CodeBelief(addr)
		if w < codeFloor {
			t.Fatalf("ring%d belief %d, want >= %d", i, w, codeFloor)
		}
		if dw, drule := r.DataBelief(addr, 5); dw >= DataThreshold {
			t.Fatalf("ring%d gained data belief %d/%s on a live cycle", i, dw, drule)
		}
	}
	// (Stats.Nonviable is nonzero here: misaligned junk decodes inside
	// the jmp immediates dead-end as usual. The ring *starts* staying
	// below DataThreshold — asserted above — is the cycle property.)
	if st := r.Stats(); st.Iterations == 0 {
		t.Fatal("fixed point reported zero iterations")
	}
}

// TestViabilityCycleWithDeadExit pins the direction of the greatest
// fixed point: a two-candidate loop that also requires a dead successor
// is refuted, while a self-contained loop survives.
func TestViabilityCycleWithDeadExit(t *testing.T) {
	r, labels := analyzeSrc(t, `
.text 0x00100000
.entry main
main:
    lea r1, looper
    lea r2, doomed
    ret
looper: jmp looper
doomed: jz.s dead
        jmp doomed
dead:   .byte 0xFF
`)
	looper, doomed := labels[0], labels[1]
	if w, _ := r.DataBelief(looper, 5); w >= DataThreshold {
		t.Fatalf("self-loop refuted (belief %d); cycles must stay viable", w)
	}
	// doomed's jz.s requires `dead` (undecodable) to be viable code, so
	// the whole chain is refuted transitively.
	if w, rule := r.DataBelief(doomed, 2); w != WeightDeadEnd || rule != RuleDeadEnd {
		t.Fatalf("doomed belief %d/%s, want %d/%s", w, rule, WeightDeadEnd, RuleDeadEnd)
	}
}

// TestStatsPopulated sanity-checks the metric counters on a fixture
// exercising several rules at once.
func TestStatsPopulated(t *testing.T) {
	r, _ := analyzeSrc(t, `
.text 0x00100000
.entry main
main:
    loadpc r2, blob
    ret
blob: .word 0x11223344
      .asciz "stats fixture"
`)
	st := r.Stats()
	if st.Candidates == 0 || st.StrongStarts == 0 || st.FactBytes == 0 || st.Raised == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestNoTextSegment: a binary without text yields an empty result, not
// a panic.
func TestNoTextSegment(t *testing.T) {
	r := Analyze(&binfmt.Binary{})
	if w, rule := r.CodeBelief(0x100000); w != 0 || rule != RuleNone {
		t.Fatalf("empty result answered %d/%s", w, rule)
	}
	if v, _ := r.Verdict(0x100000, 4); v != VerdictUnknown {
		t.Fatalf("empty result gave a verdict")
	}
}
