package synth

import "fmt"

// Profiles used by the evaluation (DESIGN.md experiment index).

// CBProfile returns the generation profile for CGC challenge binary i
// (0-based). Sizes and shapes vary across the corpus the way the final
// event's 62 binaries did; the last index is the engineered pathological
// binary — many pinned addresses plus large dollops — that reproduces
// the paper's >50% memory outlier under CFI.
func CBProfile(i int) (int64, Profile) {
	seed := int64(0xCB00 + i)
	p := Profile{
		Name:             fmt.Sprintf("cb%02d", i),
		NumFuncs:         80 + (i*37)%240,
		OpsMin:           5 + i%7,
		OpsMax:           18 + (i*3)%30,
		HandwrittenFrac:  0.05 + float64(i%5)*0.05,
		FuncPtrTableFrac: 0.10 + float64(i%4)*0.05,
		DataWords:        256 + (i*113)%2048,
		InputLen:         24 + (i*5)%40,
		LoopIters:        24 + (i*17)%56, // varies call density across CBs
		HeapPages:        12 + (i*29)%52, // varies the RSS baseline
	}
	if i == PathologicalCB {
		// The engineered outlier: a large share of pinned addresses,
		// oversized dollops, dense indirect control flow, and a small
		// baseline memory footprint — under CFI its instrumentation,
		// target table and overflow spill dominate the resident set,
		// reproducing the paper's single heavy-tail memory outlier
		// (see EXPERIMENTS.md for the magnitude discussion).
		p.NumFuncs = 80
		p.OpsMin, p.OpsMax = 4, 8
		p.BigDollops = true
		p.HandwrittenFrac = 1.0
		p.FuncPtrTableFrac = 0.8
		p.LoopIters = 4 // call-dense
		p.DataWords = 32
		p.InputLen = 24
		p.HeapPages = 0 // no heap: text pages are the whole footprint
	}
	return seed, p
}

// PathologicalCB is the corpus index of the engineered outlier.
const PathologicalCB = 61

// CorpusSize is the number of final-event challenge binaries.
const CorpusSize = 62

// Robustness-experiment profiles. Scale linearly multiplies function
// counts so the experiment can run at reduced size on small machines;
// scale 1.0 produces roughly megabyte-class artifacts in the paper's
// proportions (libc ~1 MB, libjvm ~8 MB, Apache ~1.6 MB of modules; the
// paper's were 1.6 MB, 12 MB and 624 KB).

// LibcProfile models libc: large, with roughly the paper's 22% of
// handwritten-assembly-style code.
func LibcProfile(scale float64) Profile {
	return Profile{
		Name:            "slibc",
		Lib:             true,
		LibName:         "slibc",
		NumFuncs:        scaled(2300, scale),
		OpsMin:          8,
		OpsMax:          28,
		HandwrittenFrac: 0.22,
		DataWords:       512,
		TextBase:        0x70000000,
		DataBase:        0x70800000,
	}
}

// JVMProfile models OpenJDK's libjvm: about five times libc's size.
func JVMProfile(scale float64) Profile {
	return Profile{
		Name:            "sjvm",
		Lib:             true,
		LibName:         "sjvm",
		NumFuncs:        scaled(36000, scale),
		OpsMin:          10,
		OpsMax:          32,
		HandwrittenFrac: 0.08,
		DataWords:       1024,
		TextBase:        0x72000000,
		DataBase:        0x73000000,
	}
}

// PlacementStressProfile models the placement-stress shape of a
// libc-scale rewrite: thousands of small functions, so reassembly makes
// one placement decision per tiny dollop, with a high share of
// handwritten code and function-pointer tables so dense pin clusters
// shatter free space into many small blocks. This is the worst case for
// the placement data structure — scan cost per decision times decision
// count — and the workload behind BenchmarkPlaceLargeSynth. Scale 1.0
// yields over 100k instructions.
func PlacementStressProfile(scale float64) Profile {
	return Profile{
		Name:             "splace",
		Lib:              true,
		LibName:          "splace",
		NumFuncs:         scaled(7000, scale),
		OpsMin:           3,
		OpsMax:           8,
		HandwrittenFrac:  0.35,
		FuncPtrTableFrac: 0.60,
		DataWords:        512,
		TextBase:         0x71000000,
		DataBase:         0x71C00000,
	}
}

// ApacheProfiles models the Apache experiment: a main executable plus
// two app-specific shared libraries, all rewritten together.
func ApacheProfiles(scale float64) (exe Profile, libs []Profile) {
	libA := Profile{
		Name:            "sapr",
		Lib:             true,
		LibName:         "sapr",
		NumFuncs:        scaled(260, scale),
		OpsMin:          8,
		OpsMax:          24,
		HandwrittenFrac: 0.05,
		DataWords:       256,
		TextBase:        0x74000000,
		DataBase:        0x74400000,
	}
	libB := Profile{
		Name:            "saputil",
		Lib:             true,
		LibName:         "saputil",
		NumFuncs:        scaled(180, scale),
		OpsMin:          8,
		OpsMax:          24,
		HandwrittenFrac: 0.05,
		DataWords:       256,
		TextBase:        0x74800000,
		DataBase:        0x74C00000,
	}
	exe = Profile{
		Name:      "shttpd",
		NumFuncs:  scaled(420, scale),
		OpsMin:    8,
		OpsMax:    26,
		DataWords: 512,
		InputLen:  48,
		Imports: []string{
			"sapr:sapr_x0", "sapr:sapr_x3", "sapr:sapr_x6",
			"saputil:saputil_x0", "saputil:saputil_x3",
		},
	}
	return exe, []Profile{libA, libB}
}

// TestDriverProfile builds the "unit test system" for a library: an
// executable that calls a set of the library's exports per input byte.
func TestDriverProfile(libName string, exportIdx []int) Profile {
	imports := make([]string, 0, len(exportIdx))
	for _, i := range exportIdx {
		imports = append(imports, fmt.Sprintf("%s:%s_x%d", libName, libName, i))
	}
	return Profile{
		Name:     "tdrv_" + libName,
		NumFuncs: 6,
		OpsMin:   4,
		OpsMax:   10,
		InputLen: 16,
		Imports:  imports,
	}
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 4 {
		v = 4
	}
	return v
}
