package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := New()
	root := tr.Start("rewrite")
	a := tr.Start("disassemble")
	a.End()
	b := tr.Start("reassemble")
	tr.Record("chaining", 5*time.Millisecond, 3)
	tr.Record("sled-construction", 0, 0)
	b.End()
	root.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap.Spans))
	}
	r := snap.Spans[0]
	if r.Name != "rewrite" || r.Depth != 0 || !r.ended {
		t.Fatalf("root = %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(r.Children))
	}
	if r.Children[0].Name != "disassemble" || r.Children[1].Name != "reassemble" {
		t.Fatalf("children out of order: %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	if d := r.Children[0].Depth; d != 1 {
		t.Fatalf("child depth = %d, want 1", d)
	}
	re := r.Children[1]
	if len(re.Children) != 2 {
		t.Fatalf("reassemble children = %d, want 2", len(re.Children))
	}
	chain := re.Children[0]
	if chain.Name != "chaining" || chain.Count != 3 || chain.Wall != 5*time.Millisecond {
		t.Fatalf("chaining record = %+v", chain)
	}
	// Zero-count records stay visible so phase tables always list every
	// sub-phase.
	if sled := re.Children[1]; sled.Name != "sled-construction" || sled.Count != 0 {
		t.Fatalf("sled record = %+v", sled)
	}
	if r.Wall < re.Wall {
		t.Fatalf("parent wall %v < child wall %v", r.Wall, re.Wall)
	}
}

func TestEndClosesNestedOpenSpans(t *testing.T) {
	tr := New()
	outer := tr.Start("outer")
	inner := tr.Start("inner")
	outer.End() // ends inner too
	if !inner.ended {
		t.Fatal("inner span not ended by enclosing End")
	}
	// A second End is a no-op, and new spans become fresh roots.
	inner.End()
	tr.Start("next").End()
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 || snap.Spans[1].Name != "next" {
		t.Fatalf("roots = %v", spanNames(snap.Spans))
	}
}

func TestCloseEndsOpenSpansAndEmits(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	tr.Start("rewrite")
	tr.Start("reassemble") // both left open, as an error path would
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if !snap.Spans[0].ended || !snap.Spans[0].Children[0].ended {
		t.Fatal("Close left spans open")
	}
	if buf.Len() == 0 {
		t.Fatal("Close emitted nothing to the sink")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New()
	root := tr.Start("rewrite")
	sp := tr.Start("disassemble")
	sp.End()
	root.End()
	tr.Add("rewrite.count", 1)
	tr.Add("stats.pinned", 42)
	tr.SetGauge("rewrite.input-bytes", 4096)
	tr.Observe("reassemble.free-range-bytes", 6)
	tr.Observe("reassemble.free-range-bytes", 100)

	var buf bytes.Buffer
	if err := NewJSONL(&buf).Emit(tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	byPath := map[string]Event{}
	byName := map[string]Event{}
	for _, ev := range evs {
		switch ev.Type {
		case "span":
			byPath[ev.Path] = ev
		default:
			byName[ev.Type+":"+ev.Name] = ev
		}
	}
	if _, ok := byPath["rewrite"]; !ok {
		t.Fatal("missing root span event")
	}
	child, ok := byPath["rewrite/disassemble"]
	if !ok {
		t.Fatalf("missing child span path; have %v", byPath)
	}
	if child.Depth != 1 || child.Count != 1 {
		t.Fatalf("child event = %+v", child)
	}
	if ev := byName["counter:stats.pinned"]; ev.Value != 42 {
		t.Fatalf("counter event = %+v", ev)
	}
	if ev := byName["gauge:rewrite.input-bytes"]; ev.Value != 4096 {
		t.Fatalf("gauge event = %+v", ev)
	}
	h := byName["hist:reassemble.free-range-bytes"]
	if h.Count != 2 || h.Sum != 106 {
		t.Fatalf("hist event = %+v", h)
	}
	if h.Hist["4-7"] != 1 || h.Hist["64-127"] != 1 {
		t.Fatalf("hist buckets = %v", h.Hist)
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Counters["c"] = 3
	b.Counters["c"] = 4
	b.Counters["only-b"] = 1
	a.Gauges["g"] = 10
	b.Gauges["g"] = 7 // merged gauge keeps the peak
	b.Gauges["peak"] = 99
	ha := &Hist{}
	ha.Observe(1)
	a.Hists["h"] = ha
	hb := &Hist{}
	hb.Observe(5)
	b.Hists["h"] = hb

	a.Merge(b)
	if a.Counters["c"] != 7 || a.Counters["only-b"] != 1 {
		t.Fatalf("counters = %v", a.Counters)
	}
	if a.Gauges["g"] != 10 || a.Gauges["peak"] != 99 {
		t.Fatalf("gauges = %v", a.Gauges)
	}
	h := a.Hists["h"]
	if h.Count != 2 || h.Sum != 6 {
		t.Fatalf("hist = %+v", h)
	}
	a.Merge(nil) // nil merge is a no-op
	if a.Counters["c"] != 7 {
		t.Fatalf("nil merge changed counters: %v", a.Counters)
	}
}

func TestBucketing(t *testing.T) {
	cases := []struct {
		v     int64
		label string
	}{
		{-5, "<=0"}, {0, "<=0"}, {1, "1"}, {2, "2-3"}, {3, "2-3"},
		{4, "4-7"}, {7, "4-7"}, {8, "8-15"}, {1024, "1024-2047"},
	}
	for _, c := range cases {
		if got := BucketLabel(bucketOf(c.v)); got != c.label {
			t.Errorf("BucketLabel(bucketOf(%d)) = %q, want %q", c.v, got, c.label)
		}
	}
}

// TestBucketBoundaryPow2 pins the bucket-edge rule documented on
// Observe: an exact power of two 2^k is the inclusive *lower* edge of
// bucket k+1 — it must land there deterministically, never in bucket k
// (whose range [2^(k-1), 2^k) excludes it).
func TestBucketBoundaryPow2(t *testing.T) {
	for k := 0; k <= 30; k++ {
		v := int64(1) << uint(k)
		want := k + 1
		if got := bucketOf(v); got != want {
			t.Fatalf("bucketOf(2^%d = %d) = %d, want %d", k, v, got, want)
		}
		// One below the edge stays in the bucket below.
		if k > 0 {
			if got := bucketOf(v - 1); got != want-1 {
				t.Fatalf("bucketOf(2^%d - 1 = %d) = %d, want %d", k, v-1, got, want-1)
			}
		}
		h := &Hist{}
		h.Observe(v)
		if h.Buckets[want] != 1 {
			t.Fatalf("Observe(2^%d) landed outside bucket %d", k, want)
		}
		// The bucket label's range must actually contain the edge value.
		label := BucketLabel(want)
		if want > 1 {
			lo := int64(1) << uint(want-1)
			if v != lo {
				t.Fatalf("2^%d is not the lower edge of bucket %d (%s)", k, want, label)
			}
		}
	}
}

func TestAggFoldsRuns(t *testing.T) {
	agg := NewAgg()
	for i := 0; i < 3; i++ {
		tr := New()
		root := tr.Start("rewrite")
		tr.Start("disassemble").End()
		root.End()
		tr.Add("rewrite.count", 1)
		tr.SetGauge("rewrite.input-bytes", int64(1000*(i+1)))
		agg.AddTrace(tr)
	}
	agg.AddTrace(nil) // ignored
	if agg.Runs() != 3 {
		t.Fatalf("runs = %d, want 3", agg.Runs())
	}
	if got := agg.Metrics().Counters["rewrite.count"]; got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
	if got := agg.Metrics().Gauges["rewrite.input-bytes"]; got != 3000 {
		t.Fatalf("merged gauge = %d, want peak 3000", got)
	}
	var buf bytes.Buffer
	if err := agg.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rewrite", "  disassemble", "(aggregated over 3 runs)", "rewrite.count"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableSinkRendersPhases(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewTable(&buf))
	root := tr.Start("rewrite")
	tr.Start("disassemble").End()
	root.End()
	tr.Observe("reassemble.free-range-bytes", 12)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "rewrite", "disassemble", "histograms:", "8-15:1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "aggregated over") {
		t.Errorf("single-run table should not claim aggregation:\n%s", out)
	}
}

// TestDisabledTraceZeroAllocs locks in the nil-trace contract: leaving
// instrumentation in the pipeline costs nothing when tracing is off.
func TestDisabledTraceZeroAllocs(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("phase")
		tr.Add("counter", 1)
		tr.SetGauge("gauge", 2)
		tr.Observe("hist", 3)
		tr.Record("record", time.Millisecond, 1)
		sp.End()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f objects/op, want 0", allocs)
	}
}

func spanNames(spans []*Span) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}
