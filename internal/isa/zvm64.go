package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ZVM-64: the fixed-width companion ISA. Every instruction is one or
// two little-endian 32-bit words ("64" names the doubled-word wide
// form); the machine model — registers, flags, memory, syscalls — is
// identical to ZVM-32, so the two ISAs share the logical Op set and the
// VM's execution semantics. What differs is the encoding regime:
//
//   - instructions are 4-byte aligned; decoding at a misaligned address
//     is an error (and an execution fault), as on ARM;
//   - direct branches (jmp/call/jcc) carry a 19-bit word displacement —
//     a reach of ±1 MiB — instead of ZVM-32's full rel32, so rewriting
//     must emit range-extension veneers where a reference jump or a
//     placed branch lands out of reach;
//   - there are no short (rel8) branch forms at all, hence no
//     constrained 2-byte references and no span-dependent chaining;
//   - the 0x68 push-sled trick is meaningless under fixed width (a
//     4-byte-aligned pin always has room for a full reference), so the
//     sled path is disabled.
//
// Narrow word layout (LE):
//
//	[op:8][rd:4][rs:4][imm16:16]            ALU / stack / imm8 forms
//	[op:8][cc:4][0:1][imm19:19]             direct branches (disp = imm19*4)
//
// Wide forms append a second word holding the full imm32 (pushes,
// reg-imm32 ALU, lea/loadpc, memory displacements); their imm16 field
// must be zero. All unused fields are reserved-zero: a nonzero reserved
// field decodes as ErrBadEncoding, which keeps the decoder canonical
// (exactly one encoding per instruction) and makes data words far less
// likely to alias valid code.
const (
	// ZVM64Reach is the direct-branch reach in bytes: displacements lie
	// in [-ZVM64Reach, ZVM64Reach-4].
	ZVM64Reach = 1 << 20
	// ZVM64MaxLen is the longest ZVM-64 encoding (one wide instruction).
	ZVM64MaxLen = 8
	// ZVM64Align is the instruction-address alignment.
	ZVM64Align = 4
)

// ZVM-64 decode errors (in addition to ErrTruncated/ErrBadOpcode/
// ErrBadCc shared with the variable-width codec).
var (
	// ErrMisaligned marks a decode at an address that is not a multiple
	// of the ISA's instruction alignment.
	ErrMisaligned = errors.New("isa: misaligned instruction address")
	// ErrBadEncoding marks a word whose reserved fields are nonzero or
	// whose immediate violates the form's canonical range.
	ErrBadEncoding = errors.New("isa: non-canonical encoding")
)

// zform classifies the ZVM-64 encoded shape of an operation.
type zform uint8

const (
	zNone     zform = iota + 1 // narrow, no operands
	zReg                       // narrow, rd
	zImm8                      // narrow, imm16 holding a sign-extended int8
	zRegImm8                   // narrow, rd + int8 immediate
	zRegReg                    // narrow, rd + rs
	zBranch                    // narrow, cc + imm19 word displacement
	zImm32                     // wide, imm32
	zRegImm32                  // wide, rd + imm32
	zRegRel32                  // wide, rd + rel32 (PC-relative, full reach)
	zMem                       // wide, rd + rs + disp32
)

// zvm64Form maps each logical Op to its ZVM-64 shape. OpJmp8/OpJcc8
// have no entry: the ISA has no short branch forms.
var zvm64Form = [opMax]zform{
	OpNop: zNone, OpHlt: zNone, OpRet: zNone, OpSyscall: zNone,
	OpPush: zReg, OpPop: zReg, OpJmpR: zReg, OpCallR: zReg,
	OpInc: zReg, OpDec: zReg, OpNot: zReg,
	OpPushI8: zImm8,
	OpAddI8:  zRegImm8, OpCmpI8: zRegImm8, OpShlI: zRegImm8, OpShrI: zRegImm8,
	OpAdd: zRegReg, OpSub: zRegReg, OpAnd: zRegReg, OpOr: zRegReg,
	OpXor: zRegReg, OpMul: zRegReg, OpDiv: zRegReg, OpMod: zRegReg,
	OpShl: zRegReg, OpShr: zRegReg, OpCmp: zRegReg, OpMov: zRegReg,
	OpJmp32: zBranch, OpCall: zBranch, OpJcc32: zBranch,
	OpPushI32: zImm32,
	OpMovI:    zRegImm32, OpAddI: zRegImm32, OpAndI: zRegImm32,
	OpOrI: zRegImm32, OpXorI: zRegImm32, OpCmpI: zRegImm32,
	OpLea: zRegRel32, OpLoadPC: zRegRel32,
	OpLoad: zMem, OpLoadB: zMem, OpStore: zMem, OpStoreB: zMem,
}

// zvm64Wide reports whether f takes a second imm32 word.
func zvm64Wide(f zform) bool {
	switch f {
	case zImm32, zRegImm32, zRegRel32, zMem:
		return true
	}
	return false
}

// zvm64OpByte gives each op its primary byte — the same values the
// variable-width encoding uses, so disassembly heuristics keyed on byte
// identity (and human familiarity with the opcode map) carry over.
// OpJcc32 reuses the 0x0F escape byte as a first-class opcode.
func zvm64OpByte(op Op) uint8 {
	if op == OpJcc32 {
		return Jcc32Prefix
	}
	return opTable[op].byte
}

// zvm64ByteToOp inverts zvm64OpByte over the ops ZVM-64 defines.
var zvm64ByteToOp = buildZVM64ByteToOp()

func buildZVM64ByteToOp() [256]Op {
	var t [256]Op
	for op := Op(1); op < opMax; op++ {
		if zvm64Form[op] == 0 {
			continue
		}
		t[zvm64OpByte(op)] = op
	}
	return t
}

// ZVM64BranchDispOK reports whether a ZVM-64 direct branch can encode
// the byte displacement disp: word-aligned and within ±1 MiB.
func ZVM64BranchDispOK(disp int64) bool {
	return disp%ZVM64Align == 0 && disp >= -ZVM64Reach && disp <= ZVM64Reach-ZVM64Align
}

// zvm64Arch implements Arch for the fixed-width ISA.
type zvm64Arch struct{}

func (zvm64Arch) Name() string  { return "zvm64" }
func (zvm64Arch) MaxLen() int   { return ZVM64MaxLen }
func (zvm64Arch) Align() uint32 { return ZVM64Align }

func (zvm64Arch) InstLen(in Inst) int {
	if !in.Op.Valid() {
		return 0
	}
	f := zvm64Form[in.Op]
	switch {
	case f == 0:
		return 0
	case zvm64Wide(f):
		return 8
	}
	return 4
}

func (a zvm64Arch) AppendEncode(dst []byte, in Inst) ([]byte, error) {
	if !in.Op.Valid() {
		return dst, fmt.Errorf("%w: op %d", ErrBadOpcode, in.Op)
	}
	f := zvm64Form[in.Op]
	if f == 0 {
		return dst, fmt.Errorf("%w: %s has no zvm64 encoding", ErrBadOpcode, in.Op.Name())
	}
	if in.Rd >= NumRegs {
		return dst, fmt.Errorf("%w: r%d", ErrBadReg, in.Rd)
	}
	if in.Rs >= NumRegs {
		return dst, fmt.Errorf("%w: r%d", ErrBadReg, in.Rs)
	}
	w := uint32(zvm64OpByte(in.Op))
	switch f {
	case zNone, zImm32:
	case zReg, zRegImm8, zRegImm32, zRegRel32:
		w |= uint32(in.Rd) << 8
	case zRegReg, zMem:
		w |= uint32(in.Rd)<<8 | uint32(in.Rs)<<12
	case zBranch:
		cc := in.Cc
		if in.Op == OpJcc32 {
			if !ValidCc(cc) {
				return dst, fmt.Errorf("%w: %d", ErrBadCc, cc)
			}
			w |= uint32(cc) << 8
		} else if cc != 0 {
			return dst, fmt.Errorf("%w: condition on %s", ErrBadEncoding, in.Op.Name())
		}
		if !ZVM64BranchDispOK(int64(in.Imm)) {
			return dst, fmt.Errorf("isa: zvm64 branch displacement %d out of reach (±%d, word-aligned)", in.Imm, ZVM64Reach)
		}
		w |= (uint32(in.Imm/ZVM64Align) & 0x7FFFF) << 13
	}
	switch f {
	case zImm8, zRegImm8:
		if in.Imm < -128 || in.Imm > 127 {
			return dst, fmt.Errorf("isa: immediate %d out of int8 range for %s", in.Imm, in.Op.Name())
		}
		w |= uint32(uint16(int16(in.Imm))) << 16
	}
	var word [4]byte
	binary.LittleEndian.PutUint32(word[:], w)
	dst = append(dst, word[:]...)
	if zvm64Wide(f) {
		binary.LittleEndian.PutUint32(word[:], uint32(in.Imm))
		dst = append(dst, word[:]...)
	}
	return dst, nil
}

func (a zvm64Arch) Encode(in Inst) ([]byte, error) {
	return a.AppendEncode(make([]byte, 0, ZVM64MaxLen), in)
}

func (a zvm64Arch) Decode(b []byte, addr uint32) (Inst, error) {
	if addr%ZVM64Align != 0 {
		return Inst{}, fmt.Errorf("%w: %#x", ErrMisaligned, addr)
	}
	if len(b) < 4 {
		return Inst{}, ErrTruncated
	}
	w := binary.LittleEndian.Uint32(b)
	op := zvm64ByteToOp[byte(w)]
	if op == OpInvalid {
		return Inst{}, fmt.Errorf("%w: %02x", ErrBadOpcode, byte(w))
	}
	f := zvm64Form[op]
	in := Inst{Op: op}
	rd := uint8(w >> 8 & 0xF)
	rs := uint8(w >> 12 & 0xF)
	imm16 := int32(int16(w >> 16))
	reserved := func(ok bool) error {
		if ok {
			return nil
		}
		return fmt.Errorf("%w: %s word %08x has nonzero reserved bits", ErrBadEncoding, op.Name(), w)
	}
	switch f {
	case zNone:
		if err := reserved(w>>8 == 0); err != nil {
			return Inst{}, err
		}
	case zReg:
		in.Rd = rd
		if err := reserved(rs == 0 && imm16 == 0); err != nil {
			return Inst{}, err
		}
	case zImm8:
		in.Imm = imm16
		if err := reserved(rd == 0 && rs == 0); err != nil {
			return Inst{}, err
		}
		if imm16 < -128 || imm16 > 127 {
			return Inst{}, fmt.Errorf("%w: %s immediate %d outside int8", ErrBadEncoding, op.Name(), imm16)
		}
	case zRegImm8:
		in.Rd, in.Imm = rd, imm16
		if err := reserved(rs == 0); err != nil {
			return Inst{}, err
		}
		if imm16 < -128 || imm16 > 127 {
			return Inst{}, fmt.Errorf("%w: %s immediate %d outside int8", ErrBadEncoding, op.Name(), imm16)
		}
	case zRegReg:
		in.Rd, in.Rs = rd, rs
		if err := reserved(imm16 == 0); err != nil {
			return Inst{}, err
		}
	case zBranch:
		cc := Cc(w >> 8 & 0xF)
		if op == OpJcc32 {
			if !ValidCc(cc) {
				return Inst{}, fmt.Errorf("%w: cc %x", ErrBadCc, cc)
			}
			in.Cc = cc
		} else if cc != 0 {
			return Inst{}, fmt.Errorf("%w: condition bits on %s", ErrBadEncoding, op.Name())
		}
		if w>>12&1 != 0 {
			return Inst{}, fmt.Errorf("%w: reserved branch bit set in %08x", ErrBadEncoding, w)
		}
		// imm19 word displacement, sign-extended, scaled to bytes.
		in.Imm = (int32(w) >> 13) * ZVM64Align
	case zImm32, zRegImm32, zRegRel32, zMem:
		switch f {
		case zImm32:
			if err := reserved(rd == 0 && rs == 0); err != nil {
				return Inst{}, err
			}
		case zRegImm32, zRegRel32:
			in.Rd = rd
			if err := reserved(rs == 0); err != nil {
				return Inst{}, err
			}
		case zMem:
			in.Rd, in.Rs = rd, rs
		}
		if err := reserved(imm16 == 0); err != nil {
			return Inst{}, err
		}
		if len(b) < 8 {
			return Inst{}, ErrTruncated
		}
		in.Imm = int32(binary.LittleEndian.Uint32(b[4:8]))
	}
	return in, nil
}

func (a zvm64Arch) TargetAddr(in Inst, addr uint32) (uint32, bool) {
	switch in.Op {
	case OpJmp32, OpJcc32, OpCall, OpLea, OpLoadPC:
		return addr + uint32(a.InstLen(in)) + uint32(in.Imm), true
	}
	return 0, false
}

func (zvm64Arch) RefLen() int                  { return 4 }
func (zvm64Arch) ChainRefLen() int             { return 0 }
func (zvm64Arch) SledsSupported() bool         { return false }
func (zvm64Arch) BranchReach() uint32          { return ZVM64Reach }
func (zvm64Arch) BranchDispOK(disp int64) bool { return ZVM64BranchDispOK(disp) }
func (zvm64Arch) VeneerLen() int               { return 12 }

// VeneerBytes encodes the range-extension island: `pushi dest; ret`
// (12 bytes). The push/ret pair forwards control to any absolute
// address without clobbering a register, works for jumps, calls (the
// pushed return address stays below the veneer's transient word) and
// taken conditional branches alike, and is itself position-independent
// — the properties that let reassembly park one island anywhere within
// reach of a starved branch and share it between sites.
func (a zvm64Arch) VeneerBytes(dest uint32) []byte {
	out := make([]byte, 0, 12)
	out, err := a.AppendEncode(out, Inst{Op: OpPushI32, Imm: int32(dest)})
	if err != nil {
		panic(err)
	}
	out, err = a.AppendEncode(out, Inst{Op: OpRet})
	if err != nil {
		panic(err)
	}
	return out
}
