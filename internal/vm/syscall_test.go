package vm

import (
	"strings"
	"testing"

	"zipr/internal/isa"
)

var bufAddr = int32(int64(StackTop) - 64 - (1 << 32)) // StackTop-64 as int32 bits

// syscallProg builds: set up registers, syscall, then exit(r0 & 0xffff)
// so tests can observe syscall return values.
func syscallProg(t *testing.T, setup ...isa.Inst) []byte {
	t.Helper()
	insts := append([]isa.Inst{}, setup...)
	insts = append(insts,
		isa.Inst{Op: isa.OpSyscall},
		isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 0},
		isa.Inst{Op: isa.OpAndI, Rd: 1, Imm: 0xFFFF},
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		isa.Inst{Op: isa.OpSyscall},
	)
	return prog(t, insts...)
}

func TestTransmitBadFD(t *testing.T) {
	code := syscallProg(t,
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTransmit},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 7}, // not stdout/stderr
		isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: bufAddr},
		isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 4},
	)
	res, err := runProg(t, code)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res.ExitCode) != 0xFFFF { // -1 & 0xffff
		t.Fatalf("bad-fd transmit returned %#x, want -1", uint32(res.ExitCode))
	}
	if len(res.Output) != 0 {
		t.Fatal("bad-fd transmit produced output")
	}
}

func TestTransmitToStderrCaptured(t *testing.T) {
	code := prog(t,
		isa.Inst{Op: isa.OpMovI, Rd: 5, Imm: bufAddr},
		isa.Inst{Op: isa.OpMovI, Rd: 6, Imm: 'E'},
		isa.Inst{Op: isa.OpStoreB, Rd: 5, Rs: 6, Imm: 0},
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTransmit},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 2}, // stderr
		isa.Inst{Op: isa.OpMov, Rd: 2, Rs: 5},
		isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 1},
		isa.Inst{Op: isa.OpSyscall},
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 0},
		isa.Inst{Op: isa.OpSyscall},
	)
	res, err := runProg(t, code)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "E" {
		t.Fatalf("stderr output = %q", res.Output)
	}
}

func TestReceiveBadFD(t *testing.T) {
	code := syscallProg(t,
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysReceive},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 3},
		isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: bufAddr},
		isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 4},
	)
	res, err := runProg(t, code, WithStdin(strings.NewReader("data")))
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res.ExitCode) != 0xFFFF {
		t.Fatalf("bad-fd receive returned %#x, want -1", uint32(res.ExitCode))
	}
}

func TestReceiveShortRead(t *testing.T) {
	// Ask for 16 bytes with only 3 available: returns 3.
	code := syscallProg(t,
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysReceive},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 0},
		isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: bufAddr},
		isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 16},
	)
	res, err := runProg(t, code, WithStdin(strings.NewReader("abc")))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 3 {
		t.Fatalf("short read returned %d, want 3", res.ExitCode)
	}
}

func TestReceiveNoStdin(t *testing.T) {
	code := syscallProg(t,
		isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysReceive},
		isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: 0},
		isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: bufAddr},
		isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 4},
	)
	m := New(WithMaxSteps(1000))
	if err := m.Map(textBase, len(code), PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMem(textBase, code); err != nil {
		t.Fatal(err)
	}
	m.SetPC(textBase)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("no-stdin receive returned %d, want 0", res.ExitCode)
	}
}

func TestAllocateZeroAndHuge(t *testing.T) {
	for _, size := range []int32{0, 1 << 27} {
		code := syscallProg(t,
			isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: SysAllocate},
			isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: size},
		)
		res, err := runProg(t, code)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("allocate(%d) returned %#x, want 0", size, uint32(res.ExitCode))
		}
	}
}

func TestFdwaitAndDeallocate(t *testing.T) {
	for _, num := range []int32{SysFdwait, SysDeallocate} {
		code := syscallProg(t, isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: num})
		res, err := runProg(t, code)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("syscall %d returned %d, want 0", num, res.ExitCode)
		}
	}
}

func TestSequentialAllocationsDisjoint(t *testing.T) {
	// Two allocations must not overlap: write to the first, read after
	// the second, verify.
	insts := []isa.Inst{
		{Op: isa.OpMovI, Rd: 0, Imm: SysAllocate},
		{Op: isa.OpMovI, Rd: 1, Imm: 4096},
		{Op: isa.OpSyscall},
		{Op: isa.OpMov, Rd: 8, Rs: 0},
		{Op: isa.OpMovI, Rd: 0, Imm: SysAllocate},
		{Op: isa.OpMovI, Rd: 1, Imm: 4096},
		{Op: isa.OpSyscall},
		{Op: isa.OpMov, Rd: 9, Rs: 0},
		{Op: isa.OpSub, Rd: 9, Rs: 8}, // distance between allocations
		{Op: isa.OpMov, Rd: 1, Rs: 9},
		{Op: isa.OpMovI, Rd: 0, Imm: SysTerminate},
		{Op: isa.OpSyscall},
	}
	res, err := runProg(t, prog(t, insts...))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode < 4096 {
		t.Fatalf("allocations overlap: distance %d", res.ExitCode)
	}
}

func TestTraceRecordsRecentPCs(t *testing.T) {
	code := prog(t,
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpHlt},
	)
	m := New(WithTrace(8))
	if err := m.Map(textBase, len(code), PermR|PermX); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMem(textBase, code); err != nil {
		t.Fatal(err)
	}
	m.SetPC(textBase)
	if _, err := m.Run(); err == nil {
		t.Fatal("hlt should fault")
	}
	pcs := m.LastPCs()
	if len(pcs) != 3 || pcs[0] != textBase || pcs[2] != textBase+2 {
		t.Fatalf("trace = %#v", pcs)
	}
	// Without WithTrace, LastPCs is nil.
	if New().LastPCs() != nil {
		t.Fatal("untraced machine returned PCs")
	}
}

func TestRegAccessors(t *testing.T) {
	m := New()
	m.SetReg(5, 0xDEAD)
	if m.Reg(5) != 0xDEAD {
		t.Fatal("SetReg/Reg mismatch")
	}
	if m.Reg(isa.SP) != StackTop {
		t.Fatalf("initial sp = %#x", m.Reg(isa.SP))
	}
}
