package core

import (
	"math/rand"
	"strings"
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/vm"
)

// Local placer implementations mirroring internal/layout (which cannot
// be imported here: it depends on this package).

type optPlacer struct{}

func (optPlacer) Name() string     { return "optimized" }
func (optPlacer) InlinePins() bool { return true }
func (optPlacer) Choose(space Space, size int, hint, origin uint32) (uint32, bool) {
	var b ir.Range
	var ok bool
	if hint == 0 {
		b, ok = space.BestFit(size)
	} else {
		b, ok = space.NearestFit(hint, size)
	}
	if !ok {
		return 0, false
	}
	return b.Start, true
}

type divPlacer struct{ rng *rand.Rand }

func newDivPlacer(seed int64) *divPlacer { return &divPlacer{rng: rand.New(rand.NewSource(seed))} }

func (*divPlacer) Name() string     { return "diversity" }
func (*divPlacer) InlinePins() bool { return false }
func (d *divPlacer) Choose(space Space, size int, hint, origin uint32) (uint32, bool) {
	var fitting []ir.Range
	space.VisitFits(size, func(b ir.Range) bool {
		fitting = append(fitting, b)
		return true
	})
	if len(fitting) == 0 {
		return 0, false
	}
	b := fitting[d.rng.Intn(len(fitting))]
	slack := int(b.Len()) - size
	off := 0
	if slack > 0 {
		off = d.rng.Intn(slack + 1)
	}
	return b.Start + uint32(off), true
}

// newTestBin builds a minimal executable with a text segment of the
// given size at base (entry at base) and one data page.
func newTestBin(base uint32, size int) *binfmt.Binary {
	text := make([]byte, size)
	text[0] = 0xC3 // ret, so the raw binary validates/decodes
	return &binfmt.Binary{
		Type:  binfmt.Exec,
		Entry: base,
		Segments: []binfmt.Segment{
			{Kind: binfmt.Text, VAddr: base, Data: text},
			{Kind: binfmt.Data, VAddr: base + 0x100000, Data: make([]byte, 64)},
		},
	}
}

// exitChain appends IR that terminates with the given code and returns
// its head.
func exitChain(p *ir.Program, code int32) *ir.Instruction {
	a := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 1, Imm: code})
	b := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	c := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	a.Fallthrough = b
	b.Fallthrough = c
	return a
}

// runBin loads and executes a rewritten binary.
func runBin(t *testing.T, bin *binfmt.Binary) vm.Result {
	t.Helper()
	m := vm.New(vm.WithMaxSteps(100_000))
	for _, seg := range bin.Segments {
		perm := vm.PermR
		if seg.Kind == binfmt.Text {
			perm |= vm.PermX
		} else {
			perm |= vm.PermW
		}
		if err := m.Map(seg.VAddr, len(seg.Data), perm); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteMem(seg.VAddr, seg.Data); err != nil {
			t.Fatal(err)
		}
	}
	m.SetPC(bin.Entry)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res
}

func placers() map[string]Placer {
	return map[string]Placer{
		"optimized": optPlacer{},
		"diversity": newDivPlacer(42),
	}
}

func TestReassembleMinimalProgram(t *testing.T) {
	for name, placer := range placers() {
		t.Run(name, func(t *testing.T) {
			const base = 0x00100000
			p := ir.NewProgram(newTestBin(base, 256))
			entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 5})
			entry.Pinned = true
			entry.Fallthrough = exitChain(p, 7)
			p.Entry = entry

			res, err := Reassemble(p, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			out := runBin(t, res.Binary)
			if out.ExitCode != 7 {
				t.Fatalf("exit = %d, want 7", out.ExitCode)
			}
			if res.Stats.Pinned != 1 {
				t.Fatalf("stats.Pinned = %d", res.Stats.Pinned)
			}
		})
	}
}

func TestReassembleBranchesAndLoop(t *testing.T) {
	for name, placer := range placers() {
		t.Run(name, func(t *testing.T) {
			const base = 0x00100000
			p := ir.NewProgram(newTestBin(base, 1024))
			// r2 = 0; r3 = 10; loop: add r2,r3; dec r3; jnz loop; exit r2
			i1 := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 0})
			i1.Pinned = true
			i2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 3, Imm: 10})
			loop := p.NewInst(isa.Inst{Op: isa.OpAdd, Rd: 2, Rs: 3})
			i4 := p.NewInst(isa.Inst{Op: isa.OpDec, Rd: 3})
			i5 := p.NewInst(isa.Inst{Op: isa.OpJcc32, Cc: isa.CcNZ})
			i5.Target = loop
			tail := p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2})
			t2 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
			t3 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
			i1.Fallthrough = i2
			i2.Fallthrough = loop
			loop.Fallthrough = i4
			i4.Fallthrough = i5
			i5.Fallthrough = tail
			tail.Fallthrough = t2
			t2.Fallthrough = t3
			p.Entry = i1

			res, err := Reassemble(p, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			out := runBin(t, res.Binary)
			if out.ExitCode != 55 {
				t.Fatalf("exit = %d, want 55", out.ExitCode)
			}
		})
	}
}

func TestPinnedStubReachedIndirectly(t *testing.T) {
	// A second pinned instruction reached only through a code pointer
	// stored in data must work via its reference at the original
	// address.
	for name, placer := range placers() {
		t.Run(name, func(t *testing.T) {
			const base = 0x00100000
			bin := newTestBin(base, 1024)
			handlerAddr := uint32(base + 0x80)
			// Data word holds the handler's original address.
			bin.Segments[1].Data[0] = byte(handlerAddr)
			bin.Segments[1].Data[1] = byte(handlerAddr >> 8)
			bin.Segments[1].Data[2] = byte(handlerAddr >> 16)
			bin.Segments[1].Data[3] = byte(handlerAddr >> 24)

			p := ir.NewProgram(bin)
			dataAddr := bin.Segments[1].VAddr
			entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 5, Imm: int32(dataAddr)})
			entry.Pinned = true
			l2 := p.NewInst(isa.Inst{Op: isa.OpLoad, Rd: 5, Rs: 5, Imm: 0})
			l3 := p.NewInst(isa.Inst{Op: isa.OpJmpR, Rd: 5})
			entry.Fallthrough = l2
			l2.Fallthrough = l3
			handler := p.AddOrig(handlerAddr, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 99})
			handler.Pinned = true
			handler.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2})
			handler.Fallthrough.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
			handler.Fallthrough.Fallthrough.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpSyscall})
			p.Entry = entry

			res, err := Reassemble(p, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			out := runBin(t, res.Binary)
			if out.ExitCode != 99 {
				t.Fatalf("%s: exit = %d, want 99", name, out.ExitCode)
			}
		})
	}
}

func TestConstrainedReferenceChaining(t *testing.T) {
	// Fixed ranges 3 bytes after a pinned address force a 2-byte
	// constrained reference that must chain to a 5-byte slot.
	const base = 0x00100000
	bin := newTestBin(base, 1024)
	pinAddr := uint32(base + 0x40)
	p := ir.NewProgram(bin)
	p.Fixed = append(p.Fixed, ir.Range{Start: pinAddr + 3, End: pinAddr + 8})

	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 5, Imm: int32(pinAddr)})
	entry.Pinned = true
	j := p.NewInst(isa.Inst{Op: isa.OpJmpR, Rd: 5})
	entry.Fallthrough = j
	target := p.AddOrig(pinAddr, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 31})
	target.Pinned = true
	target.Fallthrough = exitChain(p, 31)
	// Wire the exit chain to use r2 indirectly: just exit 31 directly.
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Stubs2 != 1 || res.Stats.Chains == 0 {
		t.Fatalf("expected a constrained chained reference, stats = %+v", res.Stats)
	}
	out := runBin(t, res.Binary)
	if out.ExitCode != 31 {
		t.Fatalf("exit = %d, want 31", out.ExitCode)
	}
}

func TestDenseReferencesUseSled(t *testing.T) {
	// Two adjacent pinned one-byte instructions force a sled.
	for name, placer := range placers() {
		t.Run(name, func(t *testing.T) {
			const base = 0x00100000
			bin := newTestBin(base, 1024)
			aAddr := uint32(base + 0x40)
			bAddr := aAddr + 1
			p := ir.NewProgram(bin)

			// Entry jumps (indirectly) to bAddr; a and b are rets back
			// into exit paths... Use: a: nop -> exit(1); b: nop -> exit(2).
			entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 5, Imm: int32(bAddr)})
			entry.Pinned = true
			j := p.NewInst(isa.Inst{Op: isa.OpJmpR, Rd: 5})
			entry.Fallthrough = j

			a := p.AddOrig(aAddr, isa.Inst{Op: isa.OpNop})
			a.Pinned = true
			a.Fallthrough = exitChain(p, 1)
			b := p.AddOrig(bAddr, isa.Inst{Op: isa.OpNop})
			b.Pinned = true
			b.Fallthrough = exitChain(p, 2)
			p.Entry = entry

			res, err := Reassemble(p, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Sleds != 1 || res.Stats.SledEntries != 2 {
				t.Fatalf("expected one sled with 2 entries, stats = %+v", res.Stats)
			}
			out := runBin(t, res.Binary)
			if out.ExitCode != 2 {
				t.Fatalf("exit = %d, want 2", out.ExitCode)
			}
		})
	}
}

func TestFixedBytesPreserved(t *testing.T) {
	const base = 0x00100000
	bin := newTestBin(base, 1024)
	// Plant recognizable bytes in a fixed region of the original text.
	blob := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x99}
	copy(bin.Segments[0].Data[0x100:], blob)

	p := ir.NewProgram(bin)
	p.Fixed = append(p.Fixed, ir.Range{Start: base + 0x100, End: base + 0x105})
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpLoadPC, Rd: 2})
	entry.Pinned = true
	entry.AbsTarget = base + 0x100
	m2 := p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2})
	m3 := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	m4 := p.NewInst(isa.Inst{Op: isa.OpSyscall})
	entry.Fallthrough = m2
	m2.Fallthrough = m3
	m3.Fallthrough = m4
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	// Bytes preserved in the image.
	text := res.Binary.Text()
	got := text.Data[0x100:0x105]
	for i := range blob {
		if got[i] != blob[i] {
			t.Fatalf("fixed bytes corrupted: % x", got)
		}
	}
	// The loadpc must read them at the original address.
	out := runBin(t, res.Binary)
	if uint32(out.ExitCode) != 0xEFBEADDE {
		t.Fatalf("exit = %#x, want 0xEFBEADDE", uint32(out.ExitCode))
	}
}

func TestLeaMaterialization(t *testing.T) {
	for name, placer := range placers() {
		t.Run(name, func(t *testing.T) {
			const base = 0x00100000
			p := ir.NewProgram(newTestBin(base, 1024))
			target := p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 64})
			target.Fallthrough = exitChain(p, 64)

			entry := p.AddOrig(base, isa.Inst{Op: isa.OpLea, Rd: 5})
			entry.Pinned = true
			entry.Target = target
			j := p.NewInst(isa.Inst{Op: isa.OpJmpR, Rd: 5})
			entry.Fallthrough = j
			p.Entry = entry

			res, err := Reassemble(p, Options{Placer: placer})
			if err != nil {
				t.Fatal(err)
			}
			out := runBin(t, res.Binary)
			if out.ExitCode != 64 {
				t.Fatalf("exit = %d, want 64", out.ExitCode)
			}
		})
	}
}

func TestDeferredDataFilled(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 256))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpNop})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 0)
	p.Entry = entry

	addr := p.Defer("probe", 8, func(l *ir.Layout) ([]byte, error) {
		a, ok := l.AddrOf(entry)
		if !ok {
			t.Error("deferred fill cannot resolve entry")
		}
		return []byte{byte(a), byte(a >> 8), byte(a >> 16), byte(a >> 24), 1, 2, 3, 4}, nil
	})
	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Binary.ReadWord(addr)
	if !ok {
		t.Fatalf("deferred blob at %#x not mapped", addr)
	}
	got, _ := res.Layout.AddrOf(entry)
	if v != got {
		t.Fatalf("deferred word = %#x, want %#x", v, got)
	}
}

func TestOptimizedLayoutPutsCodeBackInPlace(t *testing.T) {
	// With a Null-style IR (chain identical to original layout), the
	// optimized placer must keep the entry instruction at its original
	// address and use zero overflow.
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 4096))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 1})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 1)
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := res.Layout.AddrOf(entry); a != base {
		t.Fatalf("entry placed at %#x, want %#x", a, base)
	}
	if res.Stats.InlinePins != 1 || res.Stats.OverflowUsed != 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Binary.Entry != base {
		t.Fatalf("binary entry = %#x", res.Binary.Entry)
	}
}

func TestDiversityLayoutsDifferBySeed(t *testing.T) {
	build := func(seed int64) uint32 {
		const base = 0x00100000
		p := ir.NewProgram(newTestBin(base, 8192))
		entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 1})
		entry.Pinned = true
		entry.Fallthrough = exitChain(p, 1)
		p.Entry = entry
		res, err := Reassemble(p, Options{Placer: newDivPlacer(seed)})
		if err != nil {
			t.Fatal(err)
		}
		out := runBin(t, res.Binary)
		if out.ExitCode != 1 {
			t.Fatalf("seed %d: exit = %d", seed, out.ExitCode)
		}
		a, _ := res.Layout.AddrOf(entry)
		return a
	}
	a1, a2, a3 := build(1), build(2), build(3)
	if a1 == a2 && a2 == a3 {
		t.Fatalf("three seeds placed entry identically at %#x", a1)
	}
}

func TestReassembleErrors(t *testing.T) {
	const base = 0x00100000
	p := ir.NewProgram(newTestBin(base, 256))
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpNop})
	entry.Pinned = true
	entry.Fallthrough = exitChain(p, 0)
	p.Entry = entry
	if _, err := Reassemble(p, Options{}); err == nil || !strings.Contains(err.Error(), "placer") {
		t.Fatalf("missing placer error = %v", err)
	}

	// Invalid IR must be rejected up front.
	bad := ir.NewProgram(newTestBin(base, 256))
	n := bad.AddOrig(base, isa.Inst{Op: isa.OpNop})
	n.Pinned = true
	n.Fallthrough = exitChain(bad, 0)
	bad.Entry = n
	orphan := bad.NewInst(isa.Inst{Op: isa.OpNop})
	orphan.Pinned = true // pinned without OrigAddr
	if _, err := Reassemble(bad, Options{Placer: optPlacer{}}); err == nil {
		t.Fatal("invalid IR accepted")
	}
}

func TestOverflowAreaUsedWhenTextFull(t *testing.T) {
	// A text segment too small for the transformed code must spill into
	// the overflow area and still run.
	const base = 0x00100000
	bin := newTestBin(base, 32) // tiny text
	p := ir.NewProgram(bin)
	entry := p.AddOrig(base, isa.Inst{Op: isa.OpMovI, Rd: 2, Imm: 0})
	entry.Pinned = true
	cur := entry
	// 20 six-byte instructions cannot fit in 32 bytes.
	for i := 0; i < 20; i++ {
		n := p.NewInst(isa.Inst{Op: isa.OpAddI, Rd: 2, Imm: 1})
		cur.Fallthrough = n
		cur = n
	}
	tail := p.NewInst(isa.Inst{Op: isa.OpMov, Rd: 1, Rs: 2})
	cur.Fallthrough = tail
	tail.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpMovI, Rd: 0, Imm: 1})
	tail.Fallthrough.Fallthrough = p.NewInst(isa.Inst{Op: isa.OpSyscall})
	p.Entry = entry

	res, err := Reassemble(p, Options{Placer: optPlacer{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OverflowUsed == 0 {
		t.Fatalf("expected overflow use, stats = %+v", res.Stats)
	}
	out := runBin(t, res.Binary)
	if out.ExitCode != 20 {
		t.Fatalf("exit = %d, want 20", out.ExitCode)
	}
}
