package zipr_test

import (
	"fmt"
	"log"
	"strings"

	"zipr"
	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/loader"
	"zipr/internal/vm"
)

// Example demonstrates the basic rewrite flow: assemble a program,
// rewrite it with the Null transform, and run both versions.
func Example() {
	source := `
.text 0x00100000
main:
    movi r1, 5
    call double
    movi r0, 1      ; terminate(r1)
    syscall
double:
    add r1, r1
    ret
`
	original := asm.MustAssemble(source)
	image, err := original.Marshal()
	if err != nil {
		log.Fatal(err)
	}

	rewritten, report, err := zipr.Rewrite(image, zipr.Config{
		Transforms: []zipr.Transform{zipr.Null()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewrote %d -> %d bytes with %d pinned address(es)\n",
		report.InputSize, report.OutputSize, report.Stats.Pinned)

	run := func(img []byte) int32 {
		bin, err := binfmt.Unmarshal(img)
		if err != nil {
			log.Fatal(err)
		}
		m := vm.New(vm.WithStdin(strings.NewReader("")), vm.WithMaxSteps(10_000))
		if err := loader.Load(m, bin, nil); err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res.ExitCode
	}
	fmt.Printf("original exit=%d rewritten exit=%d\n", run(image), run(rewritten))
	// Output:
	// rewrote 54 -> 59 bytes with 1 pinned address(es)
	// original exit=10 rewritten exit=10
}

// ExampleConfig_captureIR shows SQL inspection of the constructed IR.
func ExampleConfig_captureIR() {
	original := asm.MustAssemble(`
.text 0x00100000
main:
    call fn
    movi r0, 1
    movi r1, 0
    syscall
fn:
    ret
`)
	_, report, err := zipr.RewriteBinary(original, zipr.Config{CaptureIR: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := report.IRDB.Exec("SELECT COUNT(*) FROM instructions WHERE pinned = TRUE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned instructions: %d\n", res.Rows[0]["count"])
	// Output:
	// pinned instructions: 1
}
