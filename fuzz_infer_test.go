package zipr

// Native-fuzzing form of the arbitration equivalence property (ISSUE
// 9): for any synthesized program, transform stack, layout, and program
// input, the inference-on (weighted three-way) and inference-off
// (two-way baseline) pipelines must produce execution-equivalent
// binaries — identical transcripts on the same input — and the weighted
// rewrite must never pin more than the baseline. `make fuzzsmoke` runs
// this for a bounded time in CI; `go test -fuzz FuzzInferEquivalence .`
// explores open-endedly.

import (
	"bytes"
	"math/rand"
	"testing"

	"zipr/internal/synth"
)

func FuzzInferEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0x00), byte(0), []byte{0, 1, 2, 3})
	f.Add(int64(9), byte(0x10), byte(1), []byte{5, 4, 3, 2, 1, 0})
	f.Add(int64(77), byte(0x1f), byte(2), []byte{0xff, 0x00, 0x7f, 0x80})
	f.Fuzz(func(t *testing.T, seed int64, stackBits, layoutSel byte, input []byte) {
		r := rand.New(rand.NewSource(seed))
		profile := synth.Profile{
			Name:             "fuzzarb",
			NumFuncs:         4 + r.Intn(12),
			OpsMin:           2 + r.Intn(4),
			OpsMax:           8 + r.Intn(12),
			HandwrittenFrac:  r.Float64() * 0.6,
			FuncPtrTableFrac: r.Float64() * 0.5,
			DataWords:        16 + r.Intn(128),
			InputLen:         4 + r.Intn(12),
			LoopIters:        2 + r.Intn(8),
		}
		orig, err := synth.Build(seed, profile)
		if err != nil {
			t.Fatalf("synth: %v", err)
		}
		stack := func() []Transform {
			var tfs []Transform
			if stackBits&1 != 0 {
				tfs = append(tfs, Stir(seed))
			}
			if stackBits&2 != 0 {
				tfs = append(tfs, NopElide())
			}
			if stackBits&4 != 0 {
				tfs = append(tfs, StackPad(32))
			}
			if stackBits&8 != 0 {
				tfs = append(tfs, Canary(uint32(seed)|1))
			}
			if stackBits&16 != 0 {
				tfs = append(tfs, CFI())
			}
			if len(tfs) == 0 {
				tfs = []Transform{Null()}
			}
			return tfs
		}
		layouts := []LayoutKind{LayoutOptimized, LayoutDiversity, LayoutProfileGuided}
		layout := layouts[int(layoutSel)%len(layouts)]

		run := func(arb ArbitrationKind) (want vmOutcome, pinned int) {
			rw, report, err := RewriteBinary(orig.Clone(), Config{
				Transforms:  stack(),
				Layout:      layout,
				Arbitration: arb,
				Seed:        seed,
			})
			if err != nil {
				t.Fatalf("rewrite (%s, bits=%#x, %s): %v", arb, stackBits, layout, err)
			}
			in := make([]byte, profile.InputLen)
			copy(in, input)
			res, err := execute(t, rw, nil, string(in))
			if err != nil {
				t.Fatalf("rewritten faulted (%s, bits=%#x, %s, stats %+v): %v",
					arb, stackBits, layout, report.Stats, err)
			}
			return vmOutcome{res.ExitCode, res.Output}, report.Stats.Pinned
		}
		two, pins2 := run(ArbitrationTwoWay)
		wtd, pinsW := run(ArbitrationWeighted)
		if two.exit != wtd.exit || !bytes.Equal(two.output, wtd.output) {
			t.Fatalf("arbitration modes diverged (bits=%#x, %s): exit %d/%d output %x/%x",
				stackBits, layout, two.exit, wtd.exit, two.output, wtd.output)
		}
		if pinsW > pins2 {
			t.Fatalf("weighted arbitration pinned more (%d) than two-way (%d)", pinsW, pins2)
		}
		// Both must also match the original program, not just each other.
		in := make([]byte, profile.InputLen)
		copy(in, input)
		origRes, err := execute(t, orig, nil, string(in))
		if err != nil {
			t.Fatalf("original faulted: %v", err)
		}
		if origRes.ExitCode != two.exit || !bytes.Equal(origRes.Output, two.output) {
			t.Fatalf("rewrites diverged from the original (bits=%#x, %s)", stackBits, layout)
		}
	})
}

// vmOutcome is the transcript-relevant slice of a VM run.
type vmOutcome struct {
	exit   int32
	output []byte
}
