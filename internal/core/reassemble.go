// Package core implements the paper's primary contribution: reassembly
// of a transformed IR into an efficient rewritten binary without keeping
// a copy of the original code.
//
// The algorithm (paper §II-C, §III):
//
//  1. Plan a reference at every pinned address. Where the gap to the
//     next obstacle allows 5 bytes the reference is an unconstrained
//     long jump; gaps of 2-4 bytes get a constrained short jump that is
//     *chained* through a nearby 5-byte slot; adjacent pinned addresses
//     (gap < 2) are covered by a *sled* of 0x68 push opcodes whose
//     dispatch code recovers the entry point from the pushed words.
//  2. Optionally (optimized layout) reserve the whole gap after a pinned
//     address so the target dollop can be placed *at* its original
//     address, merging through consecutive pinned instructions — this is
//     how the rewriter approaches zero file-size and MaxRSS overhead.
//  3. Process a worklist of unresolved references: construct the dollop
//     (maximal fallthrough chain) containing each target, place it into
//     free space chosen by the pluggable layout algorithm, splitting
//     dollops across blocks (with continuation jumps) when no block
//     fits, and falling back to the appended overflow area.
//  4. Patch: re-encode every placed instruction with displacements and
//     materialized addresses computed from the final map M, write all
//     reference jumps, and fill deferred data blobs (e.g. CFI bitmaps)
//     now that the layout is known.
package core

import (
	"fmt"
	"sort"
	"time"

	"zipr/internal/binfmt"
	"zipr/internal/fault"
	"zipr/internal/ir"
	"zipr/internal/isa"
	"zipr/internal/obs"
	"zipr/internal/zerr"
)

// Placer is the pluggable code-layout strategy (paper §III implements
// these as plugins on Zipr's API).
type Placer interface {
	// Name identifies the layout in stats and logs.
	Name() string
	// InlinePins reports whether gaps after pinned addresses should be
	// reserved so code can be placed back at its original location.
	InlinePins() bool
	// Choose picks a start address for size bytes out of the free
	// space, or reports that no block fits. Placers interrogate space
	// through its indexed queries (each O(log n)) instead of receiving a
	// copied block list — at libc/libjvm scale the per-decision copy and
	// linear scan of the old contract dominated reassembly. hint is the
	// address of the referencing site and origin the original address of
	// the code being placed (either may be 0 when unknown).
	Choose(space Space, size int, hint, origin uint32) (uint32, bool)
}

// Options configures reassembly.
type Options struct {
	Placer Placer
	// Trace receives the reassembly sub-phase spans (pin planting,
	// chaining, sled construction, dollop placement, patch/emit) and the
	// reassembler's counters and histograms; nil disables tracing.
	Trace *obs.Trace
	// Inject enables deterministic fault injection (allocator
	// exhaustion, unsatisfiable chains forcing sled escalation); nil
	// disables it.
	Inject *fault.Injector
}

// Stats reports what the reassembler did.
type Stats struct {
	Pinned       int // pinned addresses processed
	InlinePins   int // pins whose code was placed back in position
	Stubs5       int // unconstrained 5-byte references
	Stubs2       int // constrained 2-byte references (chained)
	Chains       int // chain slots allocated (including multi-hop)
	Sleds        int // sleds emitted
	SledEntries  int // pinned addresses covered by sleds
	Dollops      int // dollops placed
	Splits       int // dollop splits
	OverflowUsed int // bytes placed in the overflow area
	TextGrowth   int // final text size minus original text size
	FreeLeft     int // free bytes remaining inside the original range
	Veneers      int // range-extension islands emitted (fixed-width ISAs)
}

// Result is the reassembly output.
type Result struct {
	Binary *binfmt.Binary
	Stats  Stats
	Layout *ir.Layout
}

// jmpWrite is a pending jump to be encoded during the patch pass.
type jmpWrite struct {
	at     uint32
	size   int // 2 or 5 (ZVM-32), 4 (ZVM-64)
	target *ir.Instruction
	abs    uint32 // used when target is nil
}

// workItem is an unresolved reference (uDR in the paper).
type workItem struct {
	target *ir.Instruction
	hint   uint32
}

// inlineRegion is a reserved gap after a pinned address.
type inlineRegion struct {
	region ir.Range
	target *ir.Instruction
	done   bool
}

type reassembler struct {
	p      *ir.Program
	placer Placer
	tr     *obs.Trace
	inj    *fault.Injector
	text   ir.Range
	arch   isa.Arch
	ref    int // unconstrained reference size (arch.RefLen)

	image    []byte // rewritten text image, starting at text.Start
	imageEnd uint32
	fs       *Alloc

	m        map[*ir.Instruction]uint32
	work     []workItem
	jmps     []jmpWrite
	inlines  map[uint32]*inlineRegion // keyed by region start (= pinned addr)
	raw      []rawWrite
	stats    Stats
	overflow uint32 // first overflow byte (== original text end)

	// veneers maps a destination address to the range-extension islands
	// already emitted for it, so in-reach islands are shared between
	// branch sites instead of re-allocated.
	veneers map[uint32][]uint32

	// chainSeen/chainEpoch implement buildChain's cycle detection with
	// one reusable map instead of a fresh allocation per dollop: an
	// instruction is in the current chain iff its entry equals the
	// current epoch.
	chainSeen  map[*ir.Instruction]uint64
	chainEpoch uint64
}

type rawWrite struct {
	at    uint32
	bytes []byte
}

// Reassemble converts the transformed IR into a rewritten binary.
func Reassemble(p *ir.Program, opts Options) (*Result, error) {
	if opts.Placer == nil {
		return nil, fmt.Errorf("core: no placer configured")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	text := p.TextRange()
	placer := opts.Placer
	if opts.Trace != nil {
		placer = newTracedPlacer(placer, opts.Trace)
	}
	if opts.Inject.Armed(fault.AllocExhaust) {
		// Outermost wrapper: denied placements are visible only through
		// the injector's own fault counter, exactly as a genuinely full
		// allocator would be — downstream must take the split/overflow
		// path either way.
		placer = &faultPlacer{inner: placer, inj: opts.Inject}
	}
	arch := p.ISA()
	r := &reassembler{
		p:        p,
		placer:   placer,
		tr:       opts.Trace,
		inj:      opts.Inject,
		text:     text,
		arch:     arch,
		ref:      arch.RefLen(),
		image:    make([]byte, text.Len()),
		imageEnd: text.End,
		overflow: text.End,
		// Nearly every instruction ends up placed, so size the placement
		// map for all of them up front instead of rehashing on the way.
		m:         make(map[*ir.Instruction]uint32, len(p.Insts)),
		inlines:   make(map[uint32]*inlineRegion),
		chainSeen: make(map[*ir.Instruction]uint64, 64),
		veneers:   make(map[uint32][]uint32),
	}
	r.fs = NewAlloc(text, p.Fixed)
	r.fs.SetAlign(arch.Align())
	if align := arch.Align(); align > 1 {
		// Fixed-width ISAs only ever carve aligned, size-multiple-of-
		// align ranges; trimming the initial free blocks to aligned
		// bounds makes that invariant hold for the allocator's whole
		// lifetime (slivers next to unaligned fixed-range edges are
		// unusable for code anyway). The overflow frontier gets the same
		// treatment so appended dollops and veneers start aligned.
		if err := r.alignFreeSpace(align); err != nil {
			return nil, err
		}
		if pad := (align - r.imageEnd%align) % align; pad != 0 {
			r.image = append(r.image, make([]byte, pad)...)
			r.imageEnd += pad
			r.overflow = r.imageEnd
		}
	}

	if err := r.planPins(); err != nil {
		return nil, err
	}
	sp := r.tr.Start("dollop-placement")
	err := r.processWork()
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = r.tr.Start("inline-fixups")
	err = r.finishInlines()
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = r.tr.Start("patch-emit")
	bin, layout, err := r.emit()
	sp.End()
	if err != nil {
		return nil, err
	}
	r.stats.TextGrowth = int(r.imageEnd - text.End)
	r.stats.OverflowUsed = int(r.imageEnd - r.overflow)
	r.stats.FreeLeft = r.fs.TotalFree()
	r.flushMetrics()
	return &Result{Binary: bin, Stats: r.stats, Layout: layout}, nil
}

// flushMetrics exports the reassembler's end state to the trace: every
// Stats field as a counter, the free-range fragmentation histogram, and
// free-block-count, fragmentation and image-size gauges — all read
// straight off the allocator, with no block-list copy.
func (r *reassembler) flushMetrics() {
	if !r.tr.Enabled() {
		return
	}
	s := r.stats
	for _, c := range []struct {
		name string
		v    int
	}{
		{"stats.pinned", s.Pinned},
		{"stats.inline-pins", s.InlinePins},
		{"stats.stubs5", s.Stubs5},
		{"stats.stubs2", s.Stubs2},
		{"stats.chains", s.Chains},
		{"stats.sleds", s.Sleds},
		{"stats.sled-entries", s.SledEntries},
		{"stats.dollops", s.Dollops},
		{"stats.splits", s.Splits},
		{"stats.overflow-bytes", s.OverflowUsed},
		{"stats.text-growth", s.TextGrowth},
		{"stats.free-left", s.FreeLeft},
		{"stats.veneers", s.Veneers},
	} {
		r.tr.Add(c.name, int64(c.v))
	}
	r.tr.Add("reassemble.free-ranges", int64(r.fs.NumBlocks()))
	r.fs.Visit(func(b ir.Range) bool {
		r.tr.Observe("reassemble.free-range-bytes", int64(b.Len()))
		return true
	})
	r.tr.SetGauge("reassemble.free-blocks", int64(r.fs.NumBlocks()))
	// Fragmentation gauge: the share of free bytes outside the largest
	// block (0 = one contiguous block, ->100 = shredded).
	if total := r.fs.TotalFree(); total > 0 {
		largest, _ := r.fs.Largest()
		r.tr.SetGauge("reassemble.fragmentation-pct",
			int64(100-int(largest.Len())*100/total))
	}
	r.tr.SetGauge("reassemble.image-bytes", int64(len(r.image)))
	r.tr.SetGauge("reassemble.placed-insts", int64(len(r.m)))
}

// tracedPlacer wraps a Placer with per-placer placement-decision
// counters (keys are precomputed so hot Choose calls do not build
// strings).
type tracedPlacer struct {
	inner             Placer
	tr                *obs.Trace
	callsKey, fitsKey string
	missKey, bytesKey string
}

func newTracedPlacer(inner Placer, tr *obs.Trace) *tracedPlacer {
	prefix := "placer." + inner.Name()
	return &tracedPlacer{
		inner:    inner,
		tr:       tr,
		callsKey: prefix + ".choose-calls",
		fitsKey:  prefix + ".choose-fits",
		missKey:  prefix + ".choose-misses",
		bytesKey: prefix + ".request-bytes",
	}
}

// Name implements Placer.
func (p *tracedPlacer) Name() string { return p.inner.Name() }

// InlinePins implements Placer.
func (p *tracedPlacer) InlinePins() bool { return p.inner.InlinePins() }

// Choose implements Placer, counting decisions.
func (p *tracedPlacer) Choose(space Space, size int, hint, origin uint32) (uint32, bool) {
	addr, ok := p.inner.Choose(space, size, hint, origin)
	p.tr.Add(p.callsKey, 1)
	if ok {
		p.tr.Add(p.fitsKey, 1)
	} else {
		p.tr.Add(p.missKey, 1)
	}
	p.tr.Observe(p.bytesKey, int64(size))
	return addr, ok
}

// faultPlacer wraps a Placer with deterministic allocation denial: the
// AllocExhaust fault makes Choose report "no block fits" for seeded
// placement decisions, forcing the caller onto its degradation path
// (dollop splits and the appended overflow area). The site key is the
// placement sequence number — reassembly runs on a single goroutine, so
// the sequence is deterministic.
type faultPlacer struct {
	inner Placer
	inj   *fault.Injector
	seq   uint32
}

// Name implements Placer.
func (p *faultPlacer) Name() string { return p.inner.Name() }

// InlinePins implements Placer.
func (p *faultPlacer) InlinePins() bool { return p.inner.InlinePins() }

// Choose implements Placer, denying seeded decisions.
func (p *faultPlacer) Choose(space Space, size int, hint, origin uint32) (uint32, bool) {
	p.seq++
	if p.inj.Fires(fault.AllocExhaust, p.seq) {
		return 0, false
	}
	return p.inner.Choose(space, size, hint, origin)
}

// inFixed reports whether addr is inside a fixed range.
func (r *reassembler) inFixed(addr uint32) bool {
	for _, f := range r.p.Fixed {
		if f.Contains(addr) {
			return true
		}
	}
	return false
}

// nextObstacle returns the first address after a that the pin plan must
// not touch: the next pinned address, the start of the next fixed range,
// or the end of text.
func nextObstacle(a uint32, pins []*ir.Instruction, i int, fixed []ir.Range, textEnd uint32) uint32 {
	limit := textEnd
	if i+1 < len(pins) && pins[i+1].OrigAddr < limit {
		limit = pins[i+1].OrigAddr
	}
	for _, f := range fixed {
		if f.Start >= a && f.Start < limit {
			limit = f.Start
		}
	}
	return limit
}

// minInlineGap is the smallest gap worth reserving for in-place code.
const minInlineGap = 12

// planPins plans references, chains, sleds and inline regions for every
// pinned address. It works in two passes, as the paper's algorithm does:
// first every pinned site is classified and its bytes carved; only then
// are chains (which grab nearby free space) and sled dispatch code
// (which grabs arbitrary free space) allocated — otherwise a chain slot
// or dispatch blob could land on bytes a later pinned reference needs.
func (r *reassembler) planPins() error {
	pins := r.p.PinnedInsts()
	fixed := r.p.Fixed
	r.stats.Pinned = len(pins)
	inline := r.placer.InlinePins()

	type pinKind uint8
	const (
		kindStub5 pinKind = iota + 1
		kindStub2
		kindSled
		kindInline
	)
	type pinPlan struct {
		kind   pinKind
		addr   uint32
		target *ir.Instruction
		sled   sledPlan
	}
	// One plan per pin (sleds absorb several pins, so this only
	// over-reserves), and in the common case one reference jump and one
	// work item per pin.
	plans := make([]pinPlan, 0, len(pins))
	r.jmps = make([]jmpWrite, 0, len(pins))
	r.work = make([]workItem, 0, len(pins)+1)

	// Pass 1: classify every pinned site and carve its header bytes.
	// Inline pins reserve only one reference here — enough for a fallback
	// jump — and grow into the remaining contiguous free space in
	// pass 3, after chains and dispatch blobs have taken what they need.
	sp := r.tr.Start("pin-planting")
	ref := uint32(r.ref)
	chainRef := uint32(r.arch.ChainRefLen())
	align := r.arch.Align()
	for i := 0; i < len(pins); i++ {
		a := pins[i].OrigAddr
		if !r.text.Contains(a) {
			r.p.Warnf("core: pinned address %#x outside text; skipping", a)
			continue
		}
		if r.inFixed(a) {
			// Fixed bytes keep their original content; indirect jumps
			// there execute the original instruction in place.
			r.p.Warnf("core: pinned address %#x inside fixed bytes; no reference planted", a)
			continue
		}
		if align > 1 && a%align != 0 {
			// A misaligned pin can never be fetched on a fixed-width ISA:
			// execution there faults on alignment in the original binary
			// exactly as it does in the rewritten one, so no reference is
			// needed (and none could be encoded at that address).
			r.p.Warnf("core: pinned address %#x misaligned for %s; skipping", a, r.arch.Name())
			continue
		}
		gap := nextObstacle(a, pins, i, fixed, r.text.End) - a
		switch {
		case gap >= minInlineGap && inline:
			if err := r.fs.Carve(ir.Range{Start: a, End: a + ref}); err != nil {
				return fmt.Errorf("core: pin %#x inline header: %w", a, err)
			}
			plans = append(plans, pinPlan{kind: kindInline, addr: a, target: pins[i]})
		case gap >= ref:
			if err := r.fs.Carve(ir.Range{Start: a, End: a + ref}); err != nil {
				return fmt.Errorf("core: pin %#x reference: %w", a, err)
			}
			plans = append(plans, pinPlan{kind: kindStub5, addr: a, target: pins[i]})
			r.stats.Stubs5++
		case chainRef > 0 && gap >= chainRef && !r.escalatePin(a):
			if err := r.fs.Carve(ir.Range{Start: a, End: a + chainRef}); err != nil {
				return fmt.Errorf("core: pin %#x constrained reference: %w", a, err)
			}
			plans = append(plans, pinPlan{kind: kindStub2, addr: a, target: pins[i]})
			r.stats.Stubs2++
		default:
			if !r.arch.SledsSupported() {
				// Unreachable on zvm64 in practice: aligned pins are at
				// least one instruction width apart, so a full reference
				// always fits. Fail closed rather than emit garbage.
				return zerr.Tag(zerr.ErrExhausted, fmt.Errorf(
					"core: pin at %#x has gap %d and %s supports no sleds", a, gap, r.arch.Name()))
			}
			plan, last, err := r.carveSled(pins, i)
			if err != nil {
				return err
			}
			plans = append(plans, pinPlan{kind: kindSled, addr: plan.start, sled: plan})
			i = last
		}
	}

	sp.End()

	// Pass 2: chains and sled dispatch allocate from what is left. The
	// per-call cost is too fine-grained for individual spans, so the
	// loop accumulates wall time per kind and records two aggregate
	// sub-phase spans afterwards.
	traced := r.tr.Enabled()
	var chainWall, sledWall time.Duration
	var chainN, sledN int
	for _, pl := range plans {
		switch pl.kind {
		case kindStub5:
			r.jmps = append(r.jmps, jmpWrite{at: pl.addr, size: r.ref, target: pl.target})
			r.work = append(r.work, workItem{target: pl.target, hint: pl.addr})
		case kindStub2:
			var t0 time.Time
			if traced {
				t0 = time.Now()
			}
			if err := r.chain(pl.addr, pl.target, 0); err != nil {
				return err
			}
			if traced {
				chainWall += time.Since(t0)
				chainN++
			}
		case kindSled:
			var t0 time.Time
			if traced {
				t0 = time.Now()
			}
			if err := r.emitSled(pl.sled); err != nil {
				return err
			}
			if traced {
				sledWall += time.Since(t0)
				sledN++
			}
		}
	}
	r.tr.Record("chaining", chainWall, chainN)
	r.tr.Record("sled-construction", sledWall, sledN)

	// Pass 3: inline regions grow from their reference-sized headers into the
	// contiguous free space that remains after them (bounded implicitly
	// by the next carved pin site, chain slot, or fixed range).
	sp = r.tr.Start("inline-reserve")
	defer sp.End()
	for _, pl := range plans {
		if pl.kind != kindInline {
			continue
		}
		region := ir.Range{Start: pl.addr, End: pl.addr + uint32(r.ref)}
		if blk, ok := r.fs.BlockStartingAt(pl.addr + uint32(r.ref)); ok {
			if err := r.fs.Carve(blk); err != nil {
				return fmt.Errorf("core: pin %#x inline extension: %w", pl.addr, err)
			}
			region.End = blk.End
		}
		r.inlines[pl.addr] = &inlineRegion{region: region, target: pl.target}
	}
	return nil
}

// escalatePin reports whether the ChainUnsat fault forces the pin at a
// to skip constrained chaining and fall through to sled handling, as if
// no chain could be satisfied near it. The decision is keyed on the pin
// address, so it agrees with the slot denial in chain() (both hash the
// same site). The lazy evaluation in planPins' switch means only pins
// that would actually chain (2 <= gap < 5) ever consult the injector.
func (r *reassembler) escalatePin(a uint32) bool {
	if !r.inj.Fires(fault.ChainUnsat, a) {
		return false
	}
	r.tr.Add("fault.sled-escalations", 1)
	return true
}

// chain plants a 2-byte jump at `at` leading (possibly through further
// 2-byte hops) to a 5-byte slot that can address the whole space
// (paper §II-C3, span-dependent jump chaining).
func (r *reassembler) chain(at uint32, target *ir.Instruction, depth int) error {
	if depth > 8 {
		return zerr.Tag(zerr.ErrExhausted, fmt.Errorf("core: chain depth exceeded at %#x", at))
	}
	// rel8 range from the end of the 2-byte jump.
	base := at + 2
	window := ir.Range{Start: base - 128, End: base + 127}
	if window.Start > base { // underflow
		window.Start = r.text.Start
	}
	// The ChainUnsat fault denies the direct 5-byte slot at seeded sites,
	// forcing the reference through extra 2-byte hops — a deterministic
	// stand-in for free space too fragmented to hold an unconstrained
	// jump nearby.
	if slot, ok := r.fs.FindWithin(window, 5); ok && !r.inj.Fires(fault.ChainUnsat, at) {
		if err := r.fs.Carve(slot); err != nil {
			return err
		}
		r.jmps = append(r.jmps,
			jmpWrite{at: at, size: 2, target: nil, abs: slot.Start},
			jmpWrite{at: slot.Start, size: 5, target: target})
		r.work = append(r.work, workItem{target: target, hint: slot.Start})
		r.stats.Chains++
		return nil
	}
	// No 5-byte slot in range: hop through another 2-byte jump.
	hop, ok := r.fs.FindWithin(window, 2)
	if !ok {
		return zerr.Tag(zerr.ErrExhausted, fmt.Errorf("core: no chain space near constrained reference at %#x", at))
	}
	if err := r.fs.Carve(hop); err != nil {
		return err
	}
	r.jmps = append(r.jmps, jmpWrite{at: at, size: 2, target: nil, abs: hop.Start})
	r.stats.Chains++
	return r.chain(hop.Start, target, depth+1)
}

// carveSled groups the dense run of pinned addresses starting at index i
// into one sled, carves its footprint, and returns the plan plus the
// index of the last pin absorbed. Dispatch code is emitted later by
// emitSled, once every pinned site has reserved its bytes.
func (r *reassembler) carveSled(pins []*ir.Instruction, i int) (sledPlan, int, error) {
	start := pins[i].OrigAddr
	j := i
	for {
		spanEnd := pins[j].OrigAddr + 1 // one past the last 0x68 entry
		tailEnd := spanEnd + sledTailSize
		// Absorb any pinned address that would collide with the tail.
		if j+1 < len(pins) && pins[j+1].OrigAddr < tailEnd && r.text.Contains(pins[j+1].OrigAddr) {
			j++
			continue
		}
		whole := ir.Range{Start: start, End: tailEnd}
		if tailEnd > r.text.End {
			return sledPlan{}, i, zerr.Tag(zerr.ErrExhausted, fmt.Errorf("core: sled at %#x overruns text segment", start))
		}
		for _, f := range r.p.Fixed {
			if f.Overlaps(whole) {
				return sledPlan{}, i, fmt.Errorf("core: sled at %#x collides with fixed bytes at %#x", start, f.Start)
			}
		}
		break
	}
	spanEnd := pins[j].OrigAddr + 1
	span := int(spanEnd - start)
	plan := sledPlan{start: start, span: span}
	for k := i; k <= j; k++ {
		off := int(pins[k].OrigAddr - start)
		plan.entries = append(plan.entries, sledEntry{
			offset: off,
			target: pins[k],
			words:  simulateSledEntry(span, off),
		})
	}
	whole := ir.Range{Start: start, End: start + uint32(plan.size())}
	if err := r.fs.Carve(whole); err != nil {
		return sledPlan{}, i, fmt.Errorf("core: sled at %#x: %w", start, err)
	}
	return plan, j, nil
}

// emitSled writes a planned sled's bytes and places its dispatch code.
func (r *reassembler) emitSled(plan sledPlan) error {
	start := plan.start
	spanEnd := start + uint32(plan.span)
	r.raw = append(r.raw, rawWrite{at: start, bytes: sledBytes(plan.span)})

	dispatch, refs, err := genDispatch(plan.entries)
	if err != nil {
		return err
	}
	dispatchAddr, err := r.placeRaw(dispatch, start)
	if err != nil {
		return err
	}
	// Tail jump from the sled's nops into dispatch.
	r.jmps = append(r.jmps, jmpWrite{at: spanEnd + 4, size: 5, abs: dispatchAddr})
	for _, ref := range refs {
		r.jmps = append(r.jmps, jmpWrite{at: dispatchAddr + uint32(ref.off), size: 5, target: ref.target})
		r.work = append(r.work, workItem{target: ref.target, hint: dispatchAddr})
	}
	r.stats.Sleds++
	r.stats.SledEntries += len(plan.entries)
	return nil
}

// placeRaw places an opaque code blob (sled dispatch) into free space or
// the overflow area and returns its address.
func (r *reassembler) placeRaw(code []byte, hint uint32) (uint32, error) {
	if addr, ok := r.placer.Choose(r.fs, len(code), hint, 0); ok {
		if err := r.fs.Carve(ir.Range{Start: addr, End: addr + uint32(len(code))}); err != nil {
			return 0, err
		}
		r.raw = append(r.raw, rawWrite{at: addr, bytes: code})
		return addr, nil
	}
	addr := r.allocOverflow(len(code))
	r.raw = append(r.raw, rawWrite{at: addr, bytes: code})
	return addr, nil
}

// allocOverflow extends the text image past the original end.
func (r *reassembler) allocOverflow(n int) uint32 {
	r.tr.Add("reassemble.overflow-allocs", 1)
	addr := r.imageEnd
	r.image = append(r.image, make([]byte, n)...)
	r.imageEnd += uint32(n)
	return addr
}

// alignFreeSpace trims every initial free block to align-multiple
// bounds by carving the unusable slivers off permanently.
func (r *reassembler) alignFreeSpace(align uint32) error {
	var blocks []ir.Range
	r.fs.Visit(func(b ir.Range) bool { blocks = append(blocks, b); return true })
	for _, b := range blocks {
		lo := (b.Start + align - 1) &^ (align - 1)
		hi := b.End &^ (align - 1)
		if hi <= lo {
			if err := r.fs.Carve(b); err != nil {
				return fmt.Errorf("core: align trim %+v: %w", b, err)
			}
			continue
		}
		if lo > b.Start {
			if err := r.fs.Carve(ir.Range{Start: b.Start, End: lo}); err != nil {
				return fmt.Errorf("core: align trim %+v: %w", b, err)
			}
		}
		if hi < b.End {
			if err := r.fs.Carve(ir.Range{Start: hi, End: b.End}); err != nil {
				return fmt.Errorf("core: align trim %+v: %w", b, err)
			}
		}
	}
	return nil
}

// veneerFor returns the address of a range-extension island forwarding
// to dest that is reachable from the branch ending at site+siteLen,
// emitting one if no existing island for dest is in reach. Islands are
// allocated during the patch pass — every branch site and destination
// address is final by then — first from free space inside the branch's
// reach window, then from the overflow frontier when that frontier is
// itself within reach; when neither works the rewrite fails closed
// with a typed exhaustion error.
func (r *reassembler) veneerFor(dest, site uint32, siteLen int) (uint32, error) {
	next := int64(site) + int64(siteLen)
	for _, v := range r.veneers[dest] {
		if r.arch.BranchDispOK(int64(v) - next) {
			r.tr.Add("reassemble.veneer-reuse", 1)
			return v, nil
		}
	}
	vlen := r.arch.VeneerLen()
	reach := int64(r.arch.BranchReach())
	lo, hi := next-reach, next+reach-int64(r.arch.Align())+int64(vlen)
	if lo < int64(r.text.Start) {
		lo = int64(r.text.Start)
	}
	if al := int64(r.arch.Align()); al > 1 && lo%al != 0 {
		// Keep the window start aligned: FindWithin clips a straddling
		// free block at the window edge, and islands must start aligned.
		lo += al - lo%al
	}
	if hi > int64(r.text.End) {
		hi = int64(r.text.End)
	}
	var addr uint32
	if lo < hi {
		win := ir.Range{Start: uint32(lo), End: uint32(hi)}
		if blk, ok := r.fs.FindWithin(win, uint32(vlen)); ok {
			if err := r.fs.Carve(blk); err != nil {
				return 0, err
			}
			addr = blk.Start
		}
	}
	if addr == 0 {
		if !r.arch.BranchDispOK(int64(r.imageEnd) - next) {
			return 0, zerr.Tag(zerr.ErrExhausted,
				fmt.Errorf("core: no veneer space within reach of branch at %#x to %#x", site, dest))
		}
		addr = r.allocOverflow(vlen)
	}
	copy(r.image[addr-r.text.Start:], r.arch.VeneerBytes(dest))
	r.veneers[dest] = append(r.veneers[dest], addr)
	r.stats.Veneers++
	r.tr.Add("reassemble.veneer-emits", 1)
	return addr, nil
}

// processWork drains the unresolved-reference worklist, placing the
// dollop for each not-yet-placed target.
func (r *reassembler) processWork() error {
	// Seed with the entry so executables always place their entry chain,
	// preferring its inline region when one exists.
	if r.p.Entry != nil {
		r.work = append(r.work, workItem{target: r.p.Entry, hint: r.p.Entry.OrigAddr})
	}
	// Inline regions are processed in address order for determinism and
	// so that merge-through-next-pin sees later regions still free.
	inlineAddrs := make([]uint32, 0, len(r.inlines))
	for a := range r.inlines {
		inlineAddrs = append(inlineAddrs, a)
	}
	sort.Slice(inlineAddrs, func(i, j int) bool { return inlineAddrs[i] < inlineAddrs[j] })
	for _, a := range inlineAddrs {
		reg := r.inlines[a]
		if err := r.placeInline(reg); err != nil {
			return err
		}
	}
	var rounds, hits int
	for len(r.work) > 0 {
		item := r.work[len(r.work)-1]
		r.work = r.work[:len(r.work)-1]
		rounds++
		if _, placed := r.m[item.target]; placed {
			// The dollop containing this reference target is already
			// placed (placement cache hit): the round resolves for free.
			hits++
			continue
		}
		if err := r.placeDollop(item.target, item.hint); err != nil {
			return err
		}
	}
	if r.tr.Enabled() {
		r.tr.Add("reassemble.worklist.rounds", int64(rounds))
		r.tr.Add("reassemble.worklist.cache-hits", int64(hits))
		r.tr.Add("reassemble.worklist.cache-misses", int64(rounds-hits))
	}
	return nil
}

// finishInlines writes plain references for inline regions whose target
// ended up placed elsewhere (e.g. swallowed by an earlier dollop).
func (r *reassembler) finishInlines() error {
	addrs := make([]uint32, 0, len(r.inlines))
	for a := range r.inlines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		reg := r.inlines[a]
		if reg.done {
			continue
		}
		addr, placed := r.m[reg.target]
		if placed && addr == reg.region.Start {
			reg.done = true
			continue
		}
		if !placed {
			return fmt.Errorf("core: inline pin target at %#x never placed", a)
		}
		// Fall back to an unconstrained reference; release the rest.
		r.jmps = append(r.jmps, jmpWrite{at: reg.region.Start, size: r.ref, target: reg.target})
		r.fs.Release(ir.Range{Start: reg.region.Start + uint32(r.ref), End: reg.region.End})
		r.stats.Stubs5++
		reg.done = true
	}
	return nil
}

// buildChain collects the maximal fallthrough chain starting at t that
// has not been placed yet. It returns the chain and the continuation
// instruction (nil when the chain ends in a terminator).
func (r *reassembler) buildChain(t *ir.Instruction) ([]*ir.Instruction, *ir.Instruction) {
	var insts []*ir.Instruction
	r.chainEpoch++
	cur := t
	for cur != nil {
		if _, placed := r.m[cur]; placed || r.chainSeen[cur] == r.chainEpoch {
			return insts, cur
		}
		insts = append(insts, cur)
		r.chainSeen[cur] = r.chainEpoch
		if !cur.Inst.HasFallthrough() {
			return insts, nil
		}
		next := cur.Fallthrough
		if next == nil {
			// Falls through with no successor: IR inconsistency; trap.
			r.p.Warnf("core: instruction %s falls through to nothing; planting hlt", cur)
			h := r.p.NewInst(isa.Inst{Op: isa.OpHlt})
			cur.Fallthrough = h
			next = h
		}
		cur = next
	}
	return insts, nil
}

// instLen returns the emitted length of an IR instruction under the
// configured ISA. Lea with a logical target is materialized as movi
// (the same length under both ISAs: 6/6 on zvm32, 8/8 on zvm64).
func (r *reassembler) instLen(n *ir.Instruction) int { return r.arch.InstLen(n.Inst) }

// layChunk assigns addresses to insts starting at addr, records operand
// placement requests, and (when cont is non-nil) a continuation jump
// immediately after. It returns the first unused address.
func (r *reassembler) layChunk(insts []*ir.Instruction, addr uint32, cont *ir.Instruction) uint32 {
	for _, n := range insts {
		r.m[n] = addr
		addr += uint32(r.instLen(n))
		if n.Target != nil {
			if _, placed := r.m[n.Target]; !placed {
				r.work = append(r.work, workItem{target: n.Target, hint: addr})
			}
		}
	}
	if cont != nil {
		r.jmps = append(r.jmps, jmpWrite{at: addr, size: r.ref, target: cont})
		if _, placed := r.m[cont]; !placed {
			r.work = append(r.work, workItem{target: cont, hint: addr})
		}
		addr += uint32(r.ref)
	}
	return addr
}

// chunkFit returns how many instructions of insts fit in space bytes,
// accounting for a reference-sized continuation jump unless the chain
// completes with its terminator.
func (r *reassembler) chunkFit(insts []*ir.Instruction, space uint32, chainEndsClean bool) (count int, used uint32) {
	var sum uint32
	for i, n := range insts {
		l := uint32(r.instLen(n))
		isLast := i == len(insts)-1
		need := sum + l
		if !(isLast && chainEndsClean) {
			need += uint32(r.ref) // room for a continuation jump after this one
		}
		if need > space {
			break
		}
		sum += l
		count = i + 1
	}
	used = sum
	return count, used
}

// placeDollop constructs and places the dollop containing t.
func (r *reassembler) placeDollop(t *ir.Instruction, hint uint32) error {
	insts, cont := r.buildChain(t)
	if len(insts) == 0 {
		return nil // target already placed
	}
	r.stats.Dollops++
	idx := 0
	for idx < len(insts) {
		rest := insts[idx:]
		endsClean := cont == nil
		var want uint32
		for _, n := range rest {
			want += uint32(r.instLen(n))
		}
		if !endsClean {
			want += uint32(r.ref)
		}
		if addr, ok := r.placer.Choose(r.fs, int(want), hint, rest[0].OrigAddr); ok {
			if err := r.fs.Carve(ir.Range{Start: addr, End: addr + want}); err != nil {
				return err
			}
			var tail *ir.Instruction
			if !endsClean {
				tail = cont
			}
			r.layChunk(rest, addr, tail)
			return nil
		}
		// No block fits the rest: split into the largest block when that
		// is worthwhile, otherwise finish in the overflow area. Shredding
		// a large dollop across many tiny fragments costs a 5-byte jump
		// and a taken branch per fragment, so splitting is only used when
		// the fragment holds a meaningful share of the dollop — this is
		// the policy whose interaction with heavily pinned binaries the
		// paper's Figure-6 outlier discussion describes.
		blk, found := r.fs.Largest()
		minNeed := uint32(r.instLen(rest[0])) + uint32(r.ref)
		if len(rest) == 1 && endsClean {
			minNeed = uint32(r.instLen(rest[0]))
		}
		if found && blk.Len() < 256 && uint64(blk.Len())*4 < uint64(want) {
			found = false // fragment too small to be worth a split
		}
		if !found || blk.Len() < minNeed {
			addr := r.allocOverflow(int(want))
			var tail *ir.Instruction
			if !endsClean {
				tail = cont
			}
			r.layChunk(rest, addr, tail)
			return nil
		}
		count, used := r.chunkFit(rest, blk.Len(), endsClean)
		if count == 0 {
			// Defensive: cannot happen given the minNeed check above.
			return fmt.Errorf("core: split failed for dollop at hint %#x", hint)
		}
		take := rest[:count]
		size := used
		var tail *ir.Instruction
		if count < len(rest) {
			tail = rest[count]
			size += uint32(r.ref)
		} else if !endsClean {
			tail = cont
			size += uint32(r.ref)
		}
		if err := r.fs.Carve(ir.Range{Start: blk.Start, End: blk.Start + size}); err != nil {
			return err
		}
		end := r.layChunk(take, blk.Start, nil)
		if tail != nil {
			r.jmps = append(r.jmps, jmpWrite{at: end, size: r.ref, target: tail})
			if _, placed := r.m[tail]; !placed {
				r.work = append(r.work, workItem{target: tail, hint: end})
			}
		}
		if count < len(rest) {
			r.stats.Splits++
		}
		idx += count
		hint = end
		if count == len(rest) {
			return nil
		}
	}
	return nil
}

// placeInline lays the dollop for an inline pin directly at its original
// address, merging through directly following inline regions whenever
// the fallthrough chain reaches them exactly (this is what lets a Null
// transform put almost every byte back where it came from).
func (r *reassembler) placeInline(reg *inlineRegion) error {
	if _, placed := r.m[reg.target]; placed {
		return nil // finishInlines will plant a reference
	}
	insts, cont := r.buildChain(reg.target)
	if len(insts) == 0 {
		return nil
	}
	r.stats.Dollops++
	r.stats.InlinePins++
	reg.done = true

	addr := reg.region.Start
	capEnd := reg.region.End

	// seamTarget returns the region pending at capEnd, if any: reaching
	// capEnd exactly with that region's target next means execution can
	// fall through the boundary with no jump at all, because that
	// instruction will be (or already is referenced) at capEnd.
	pendingAt := func(a uint32) *inlineRegion {
		if next, ok := r.inlines[a]; ok && !next.done {
			return next
		}
		return nil
	}
	lay := func(n *ir.Instruction) {
		r.m[n] = addr
		addr += uint32(r.instLen(n))
		if n.Target != nil {
			if _, placed := r.m[n.Target]; !placed {
				r.work = append(r.work, workItem{target: n.Target, hint: addr})
			}
		}
	}

	idx := 0
	contHandled := false
	for idx < len(insts) {
		// Merge directly adjacent inline regions whose target is the
		// instruction we are about to lay.
		if next := pendingAt(capEnd); next != nil && addr == capEnd && next.target == insts[idx] {
			capEnd = next.region.End
			next.done = true
			r.stats.InlinePins++
		}
		n := insts[idx]
		l := uint32(r.instLen(n))
		isLast := idx == len(insts)-1
		endsClean := isLast && cont == nil
		need := addr + l
		if !endsClean {
			need += uint32(r.ref) // room for a continuation jump after this one
		}
		if need <= capEnd {
			lay(n)
			idx++
			continue
		}
		// The +5 reserve is unnecessary when the instruction ends
		// exactly at a boundary whose pending region holds the next
		// thing execution needs: the fallthrough crosses the seam.
		if addr+l == capEnd {
			var needNext *ir.Instruction
			if !isLast {
				needNext = insts[idx+1]
			} else {
				needNext = cont
			}
			if next := pendingAt(capEnd); next != nil && needNext != nil && next.target == needNext {
				lay(n)
				idx++
				if isLast {
					contHandled = true
				}
				continue
			}
			// Seam into an already-placed instruction sitting exactly at
			// capEnd (an earlier inline chain): also no jump needed.
			if needNext != nil {
				if a, placed := r.m[needNext]; placed && a == capEnd {
					lay(n)
					idx++
					if isLast {
						contHandled = true
					}
					continue
				}
			}
		}
		break // region full
	}
	switch {
	case idx == len(insts) && (cont == nil || contHandled):
		// Whole chain laid; execution ends or crosses a seam.
	case idx == len(insts):
		r.jmps = append(r.jmps, jmpWrite{at: addr, size: r.ref, target: cont})
		if _, placed := r.m[cont]; !placed {
			r.work = append(r.work, workItem{target: cont, hint: addr})
		}
		addr += uint32(r.ref)
	case idx == 0:
		// Region cannot hold even the first instruction plus the
		// continuation jump: degrade to a plain reference.
		r.jmps = append(r.jmps, jmpWrite{at: addr, size: r.ref, target: reg.target})
		r.work = append(r.work, workItem{target: reg.target, hint: addr})
		r.stats.Stubs5++
		r.stats.InlinePins--
		r.fs.Release(ir.Range{Start: addr + uint32(r.ref), End: capEnd})
		return nil
	default:
		next := insts[idx]
		r.jmps = append(r.jmps, jmpWrite{at: addr, size: r.ref, target: next})
		r.work = append(r.work, workItem{target: next, hint: addr})
		addr += uint32(r.ref)
		r.stats.Splits++
	}
	if addr < capEnd {
		r.fs.Release(ir.Range{Start: addr, End: capEnd})
	}
	return nil
}

// emit performs the patch pass and builds the output binary.
func (r *reassembler) emit() (*binfmt.Binary, *ir.Layout, error) {
	// Fixed ranges: copy original bytes.
	orig := r.p.Bin.Text()
	for _, f := range r.p.Fixed {
		copy(r.image[f.Start-r.text.Start:f.End-r.text.Start], orig.Data[f.Start-orig.VAddr:f.End-orig.VAddr])
	}
	// Raw blobs (sled bodies, dispatch code).
	for _, w := range r.raw {
		copy(r.image[w.at-r.text.Start:], w.bytes)
	}
	// Instructions, in address order. Writes are disjoint, so order only
	// matters on fixed-width ISAs, where encoding an out-of-reach branch
	// allocates a veneer island: iterating the placement map directly
	// would make island addresses depend on map iteration order.
	type placedInst struct {
		n    *ir.Instruction
		addr uint32
	}
	order := make([]placedInst, 0, len(r.m))
	for n, addr := range r.m {
		order = append(order, placedInst{n: n, addr: addr})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].addr != order[j].addr {
			return order[i].addr < order[j].addr
		}
		return order[i].n.ID < order[j].n.ID
	})
	for _, pl := range order {
		enc, err := r.encodeAt(pl.n, pl.addr)
		if err != nil {
			return nil, nil, err
		}
		copy(r.image[pl.addr-r.text.Start:], enc)
	}
	// Reference jumps.
	for _, j := range r.jmps {
		dest := j.abs
		if j.target != nil {
			d, ok := r.m[j.target]
			if !ok {
				return nil, nil, fmt.Errorf("core: reference at %#x targets unplaced instruction %s", j.at, j.target)
			}
			dest = d
		}
		var in isa.Inst
		switch {
		case j.size == 2:
			disp := int64(dest) - int64(j.at) - 2
			if disp < -128 || disp > 127 {
				return nil, nil, fmt.Errorf("core: constrained reference at %#x cannot reach %#x", j.at, dest)
			}
			in = isa.Inst{Op: isa.OpJmp8, Imm: int32(disp)}
		case j.size == r.ref:
			disp := int64(dest) - int64(j.at) - int64(r.ref)
			if r.arch.BranchReach() != 0 && !r.arch.BranchDispOK(disp) {
				v, err := r.veneerFor(dest, j.at, r.ref)
				if err != nil {
					return nil, nil, err
				}
				disp = int64(v) - int64(j.at) - int64(r.ref)
			}
			in = isa.Inst{Op: isa.OpJmp32, Imm: int32(disp)}
		default:
			return nil, nil, fmt.Errorf("core: bad reference size %d", j.size)
		}
		enc, err := r.arch.Encode(in)
		if err != nil {
			return nil, nil, fmt.Errorf("core: reference at %#x: %w", j.at, err)
		}
		copy(r.image[j.at-r.text.Start:], enc)
	}

	layout := &ir.Layout{
		AddrOf: func(n *ir.Instruction) (uint32, bool) {
			a, ok := r.m[n]
			return a, ok
		},
		TextBase: r.text.Start,
		TextEnd:  r.imageEnd,
	}
	for _, n := range r.p.PinnedInsts() {
		layout.PinnedAddrs = append(layout.PinnedAddrs, n.OrigAddr)
	}

	// Deferred data.
	dataExtra := append([]byte(nil), r.p.DataExtra...)
	var dataExtraBase uint32
	if d := r.p.Bin.DataSeg(); d != nil {
		dataExtraBase = d.End()
	} else {
		dataExtraBase = (r.text.End + 0xFFF) &^ 0xFFF
	}
	for _, def := range r.p.Deferred {
		blob, err := def.Fill(layout)
		if err != nil {
			return nil, nil, fmt.Errorf("core: deferred %q: %w", def.Name, err)
		}
		if len(blob) != def.Size {
			return nil, nil, fmt.Errorf("core: deferred %q produced %d bytes, want %d", def.Name, len(blob), def.Size)
		}
		copy(dataExtra[def.Addr-dataExtraBase:], blob)
	}

	// Output binary.
	out := &binfmt.Binary{Type: r.p.Bin.Type}
	out.Segments = append(out.Segments, binfmt.Segment{
		Kind: binfmt.Text, VAddr: r.text.Start, Data: r.image,
	})
	if d := r.p.Bin.DataSeg(); d != nil {
		out.Segments = append(out.Segments, binfmt.Segment{
			Kind:  binfmt.Data,
			VAddr: d.VAddr,
			Data:  append(append([]byte(nil), d.Data...), dataExtra...),
		})
	} else if len(dataExtra) > 0 {
		out.Segments = append(out.Segments, binfmt.Segment{
			Kind: binfmt.Data, VAddr: dataExtraBase, Data: dataExtra,
		})
	}
	if r.p.Bin.Type == binfmt.Exec {
		e, ok := r.m[r.p.Entry]
		if !ok {
			return nil, nil, fmt.Errorf("core: entry instruction never placed")
		}
		out.Entry = e
	}
	out.Exports = append([]binfmt.Symbol(nil), r.p.Bin.Exports...)
	out.Imports = append([]binfmt.Import(nil), r.p.Bin.Imports...)
	out.Libs = append([]string(nil), r.p.Bin.Libs...)
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: output binary invalid: %w", err)
	}
	return out, layout, nil
}

// encodeAt re-encodes IR instruction n for its final address, resolving
// logical and absolute targets.
func (r *reassembler) encodeAt(n *ir.Instruction, addr uint32) ([]byte, error) {
	in := n.Inst
	resolveDest := func() (uint32, error) {
		if n.Target != nil {
			d, ok := r.m[n.Target]
			if !ok {
				return 0, fmt.Errorf("core: %s targets unplaced instruction", n)
			}
			return d, nil
		}
		return n.AbsTarget, nil
	}
	hasRef := n.Target != nil || n.AbsTarget != 0
	if hasRef {
		switch in.Op {
		case isa.OpJmp8, isa.OpJmp32, isa.OpJcc8, isa.OpJcc32, isa.OpCall, isa.OpLoadPC:
			dest, err := resolveDest()
			if err != nil {
				return nil, err
			}
			ilen := int64(r.arch.InstLen(in))
			disp := int64(dest) - int64(addr) - ilen
			if (in.Op == isa.OpJmp8 || in.Op == isa.OpJcc8) && (disp < -128 || disp > 127) {
				return nil, fmt.Errorf("core: short branch %s out of range after placement", n)
			}
			if r.arch.BranchReach() != 0 && !r.arch.BranchDispOK(disp) {
				switch in.Op {
				case isa.OpJmp32, isa.OpJcc32, isa.OpCall:
					// Route the branch through a range-extension island;
					// the island forwards to dest with call/jcc semantics
					// intact (loadpc is not a transfer and keeps its full
					// rel32 immediate).
					v, verr := r.veneerFor(dest, addr, int(ilen))
					if verr != nil {
						return nil, verr
					}
					disp = int64(v) - int64(addr) - ilen
				}
			}
			in.Imm = int32(disp)
		case isa.OpLea:
			dest, err := resolveDest()
			if err != nil {
				return nil, err
			}
			if n.Target != nil {
				// Materialize the rewritten code address (same length).
				in = isa.Inst{Op: isa.OpMovI, Rd: in.Rd, Imm: int32(dest)}
			} else {
				in.Imm = int32(int64(dest) - int64(addr) - int64(r.arch.InstLen(in)))
			}
		case isa.OpMovI, isa.OpPushI32, isa.OpCmpI:
			dest, err := resolveDest()
			if err != nil {
				return nil, err
			}
			in.Imm = int32(dest)
		default:
			return nil, fmt.Errorf("core: %s has a target but is not patchable", n)
		}
	}
	enc, err := r.arch.Encode(in)
	if err != nil {
		return nil, fmt.Errorf("core: encode %s: %w", n, err)
	}
	return enc, nil
}
