package layout

import (
	"testing"
	"testing/quick"

	"zipr/internal/core"
	"zipr/internal/ir"
)

var blocks = []ir.Range{
	{Start: 0x1000, End: 0x1040}, // 64 bytes
	{Start: 0x2000, End: 0x2010}, // 16 bytes
	{Start: 0x3000, End: 0x3400}, // 1024 bytes
}

// space indexes the fixture blocks into a fresh allocator.
func space() *core.Alloc { return core.AllocFromBlocks(blocks) }

func TestOptimizedBestFitWithoutHint(t *testing.T) {
	addr, ok := Optimized{}.Choose(space(), 10, 0, 0)
	if !ok || addr != 0x2000 {
		t.Fatalf("best fit = %#x, %v; want 0x2000", addr, ok)
	}
	addr, ok = Optimized{}.Choose(space(), 100, 0, 0)
	if !ok || addr != 0x3000 {
		t.Fatalf("only fitting = %#x, %v; want 0x3000", addr, ok)
	}
}

func TestOptimizedNearestWithHint(t *testing.T) {
	addr, ok := Optimized{}.Choose(space(), 10, 0x1080, 0)
	if !ok || addr != 0x1000 {
		t.Fatalf("nearest = %#x, %v; want 0x1000", addr, ok)
	}
	addr, ok = Optimized{}.Choose(space(), 10, 0x2fff, 0)
	if !ok || addr != 0x3000 {
		t.Fatalf("nearest = %#x, %v; want 0x3000", addr, ok)
	}
}

func TestOptimizedNoFit(t *testing.T) {
	if _, ok := (Optimized{}).Choose(space(), 5000, 0, 0); ok {
		t.Fatal("oversized request should not fit")
	}
	if _, ok := (Optimized{}).Choose(core.AllocFromBlocks(nil), 1, 0, 0); ok {
		t.Fatal("no blocks should not fit")
	}
}

func TestOptimizedInterface(t *testing.T) {
	if (Optimized{}).Name() != "optimized" || !(Optimized{}).InlinePins() {
		t.Fatal("optimized placer metadata wrong")
	}
	d := NewDiversity(1)
	if d.Name() != "diversity" || d.InlinePins() {
		t.Fatal("diversity placer metadata wrong")
	}
}

func TestDiversityAlwaysInBounds(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		d := NewDiversity(seed)
		sz := int(size%64) + 1
		addr, ok := d.Choose(space(), sz, 0, 0)
		if !ok {
			return false
		}
		for _, b := range blocks {
			if addr >= b.Start && addr+uint32(sz) <= b.End {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiversityVariesAcrossSeeds(t *testing.T) {
	seen := map[uint32]bool{}
	for seed := int64(0); seed < 20; seed++ {
		addr, ok := NewDiversity(seed).Choose(space(), 8, 0, 0)
		if !ok {
			t.Fatal("choose failed")
		}
		seen[addr] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct placements across 20 seeds", len(seen))
	}
}

func TestDiversityNoFit(t *testing.T) {
	if _, ok := NewDiversity(1).Choose(space(), 5000, 0, 0); ok {
		t.Fatal("oversized request should not fit")
	}
}

func TestDiversityDeterministicPerSeed(t *testing.T) {
	a1, _ := NewDiversity(42).Choose(space(), 8, 0, 0)
	a2, _ := NewDiversity(42).Choose(space(), 8, 0, 0)
	if a1 != a2 {
		t.Fatal("same seed produced different placements")
	}
}
