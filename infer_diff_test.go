package zipr

// Differential suite for the weighted three-way arbitration (ISSUE 9):
// for every corpus program, the weighted rewrite must be
// execution-equivalent (VM transcripts over the CB's pollers) to both
// the original binary and the conservative two-way baseline, and its
// pin and sled counts must never exceed the baseline's. The aggregate
// totals must be strictly below the baseline — the whole point of the
// inference disassembler is a net pin reduction — and the per-program
// delta table this test logs with -v is the source of the
// EXPERIMENTS.md "Inference arbitration" table.

import (
	"testing"

	"zipr/internal/binfmt"
	"zipr/internal/cgcsim"
	"zipr/internal/synth"
)

func TestWeightedArbitrationDifferential(t *testing.T) {
	corpus, err := cgcsim.Corpus(synth.CorpusSize)
	if err != nil {
		t.Fatal(err)
	}
	stride := goldenStride
	if testing.Short() && stride < 4 {
		stride = 4
	}
	type row struct {
		name           string
		pins2, pinsW   int
		sleds2, sledsW int
		demoted        int
	}
	var rows []row
	var totPins2, totPinsW, totSleds2, totSledsW int
	for i, cb := range corpus {
		if i%stride != 0 {
			continue
		}
		input, err := cb.Bin.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", cb.Name, err)
		}
		_, origTS, err := cgcsim.Measure(cb.Bin, nil, cb.Pollers)
		if err != nil {
			t.Fatalf("%s: original execution: %v", cb.Name, err)
		}
		run := func(arb ArbitrationKind) ([]byte, *Report) {
			out, rep, err := Rewrite(input, Config{
				Transforms:  []Transform{Null()},
				Arbitration: arb,
			})
			if err != nil {
				t.Fatalf("%s: rewrite (%s): %v", cb.Name, arb, err)
			}
			rw, err := binfmt.Unmarshal(out)
			if err != nil {
				t.Fatalf("%s: unmarshal (%s): %v", cb.Name, arb, err)
			}
			_, ts, err := cgcsim.Measure(rw, nil, cb.Pollers)
			if err != nil {
				t.Fatalf("%s: rewritten execution (%s): %v", cb.Name, arb, err)
			}
			if !cgcsim.Equivalent(origTS, ts) {
				t.Errorf("%s: %s rewrite transcripts differ from the original", cb.Name, arb)
			}
			return out, rep
		}
		_, rep2 := run(ArbitrationTwoWay)
		_, repW := run(ArbitrationWeighted)
		if repW.Stats.Pinned > rep2.Stats.Pinned {
			t.Errorf("%s: weighted arbitration pinned MORE (%d) than two-way (%d)",
				cb.Name, repW.Stats.Pinned, rep2.Stats.Pinned)
		}
		if repW.Stats.Sleds > rep2.Stats.Sleds {
			t.Errorf("%s: weighted arbitration emitted more sleds (%d) than two-way (%d)",
				cb.Name, repW.Stats.Sleds, rep2.Stats.Sleds)
		}
		rows = append(rows, row{
			name:  cb.Name,
			pins2: rep2.Stats.Pinned, pinsW: repW.Stats.Pinned,
			sleds2: rep2.Stats.Sleds, sledsW: repW.Stats.Sleds,
			demoted: rep2.Stats.Pinned - repW.Stats.Pinned,
		})
		totPins2 += rep2.Stats.Pinned
		totPinsW += repW.Stats.Pinned
		totSleds2 += rep2.Stats.Sleds
		totSledsW += repW.Stats.Sleds
	}
	if totPinsW >= totPins2 {
		t.Errorf("weighted arbitration did not reduce aggregate pins: %d vs two-way %d",
			totPinsW, totPins2)
	}
	if totSledsW > totSleds2 {
		t.Errorf("weighted arbitration grew aggregate sleds: %d vs two-way %d",
			totSledsW, totSleds2)
	}
	t.Logf("%-14s %8s %8s %8s %8s %8s", "program", "pins2w", "pins3w", "sleds2w", "sleds3w", "Δpins")
	for _, r := range rows {
		t.Logf("%-14s %8d %8d %8d %8d %8d", r.name, r.pins2, r.pinsW, r.sleds2, r.sledsW, r.demoted)
	}
	t.Logf("%-14s %8d %8d %8d %8d %8d (stride %d)",
		"TOTAL", totPins2, totPinsW, totSleds2, totSledsW, totPins2-totPinsW, stride)
}
