package zipr

// Native-fuzzing form of the delta identity property (ISSUE 7): for any
// synthesized program, transform stack, layout, and constant edit, a
// placement snapshot of the base must either apply to the edited input
// byte-for-byte identically to a from-scratch rewrite, or refuse with a
// typed error while the full pipeline still succeeds — never a silently
// divergent binary. `make fuzzsmoke` runs this for a bounded time;
// `go test -fuzz FuzzDeltaEquivalence .` explores open-endedly.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/synth"
)

func FuzzDeltaEquivalence(f *testing.F) {
	f.Add(int64(1), byte(0x00), byte(0), int64(11), byte(1))
	f.Add(int64(7), byte(0x10), byte(1), int64(23), byte(2))
	f.Add(int64(42), byte(0x1f), byte(2), int64(37), byte(4))
	f.Fuzz(func(t *testing.T, seed int64, stackBits, layoutSel byte, mutSeed int64, editSel byte) {
		r := rand.New(rand.NewSource(seed))
		profile := synth.Profile{
			Name:             "fuzzdelta",
			NumFuncs:         4 + r.Intn(12),
			OpsMin:           2 + r.Intn(4),
			OpsMax:           8 + r.Intn(12),
			HandwrittenFrac:  r.Float64() * 0.6,
			FuncPtrTableFrac: r.Float64() * 0.5,
			DataWords:        16 + r.Intn(128),
			InputLen:         4 + r.Intn(12),
			LoopIters:        2 + r.Intn(8),
		}
		src := synth.Generate(seed, profile)
		// editSel picks how many functions the constant edit touches:
		// 0 (degenerate identical input), 1, 2, or every function.
		count := int(editSel) % 4
		if count == 3 {
			count = -1
		}
		msrc, _ := synth.MutateConsts(src, mutSeed, count)
		images := make([][]byte, 2)
		for i, s := range []string{src, msrc} {
			bin, err := asm.Assemble(s)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			img, err := bin.Marshal()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			images[i] = img
		}
		base, edited := images[0], images[1]

		var tfs []Transform
		if stackBits&1 != 0 {
			tfs = append(tfs, Stir(seed))
		}
		if stackBits&2 != 0 {
			tfs = append(tfs, NopElide())
		}
		if stackBits&4 != 0 {
			tfs = append(tfs, StackPad(32))
		}
		if stackBits&8 != 0 {
			tfs = append(tfs, Canary(uint32(seed)|1))
		}
		if stackBits&16 != 0 {
			tfs = append(tfs, CFI())
		}
		if len(tfs) == 0 {
			tfs = []Transform{Null()}
		}
		layouts := []LayoutKind{LayoutOptimized, LayoutDiversity, LayoutProfileGuided}
		cfg := Config{
			Transforms:      tfs,
			Layout:          layouts[int(layoutSel)%len(layouts)],
			Seed:            seed,
			CaptureSnapshot: true,
		}
		_, rep, err := Rewrite(base, cfg)
		if err != nil {
			t.Fatalf("base rewrite (bits=%#x, %s): %v", stackBits, cfg.Layout, err)
		}
		if rep.Snapshot == nil {
			t.Fatalf("built-in stack captured no snapshot (bits=%#x, %s)", stackBits, cfg.Layout)
		}
		got, _, err := rep.Snapshot.Apply(edited)
		want, _, werr := Rewrite(edited, cfg)
		if werr != nil {
			t.Fatalf("from-scratch rewrite of edited input: %v", werr)
		}
		if err != nil {
			// Refusal is a legal outcome (the edited function may be
			// delta-ineligible), but it must be typed — the serving layer
			// dispatches the fallback on these classes.
			if !errors.Is(err, ErrDeltaInapplicable) && !errors.Is(err, ErrSnapshotStale) {
				t.Fatalf("delta refused with untyped error: %v", err)
			}
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("delta output diverges from from-scratch rewrite (bits=%#x, %s, edits=%d)",
				stackBits, cfg.Layout, count)
		}
	})
}
