package core

import (
	"testing"
	"testing/quick"

	"zipr/internal/ir"
)

// mustInvariants fails the test if the allocator's tree invariants do
// not hold.
func mustInvariants(t *testing.T, a *Alloc) {
	t.Helper()
	if err := a.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestAllocInitWithHoles(t *testing.T) {
	a := NewAlloc(ir.Range{Start: 100, End: 200}, []ir.Range{
		{Start: 120, End: 130},
		{Start: 150, End: 160},
	})
	blocks := a.Blocks()
	want := []ir.Range{{Start: 100, End: 120}, {Start: 130, End: 150}, {Start: 160, End: 200}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %+v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %+v, want %+v", blocks, want)
		}
	}
	if a.TotalFree() != 20+20+40 {
		t.Fatalf("TotalFree = %d", a.TotalFree())
	}
	if a.NumBlocks() != 3 {
		t.Fatalf("NumBlocks = %d", a.NumBlocks())
	}
	mustInvariants(t, a)
}

func TestAllocCarveAndRelease(t *testing.T) {
	a := NewAlloc(ir.Range{Start: 0, End: 100}, nil)
	if err := a.Carve(ir.Range{Start: 10, End: 20}); err != nil {
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if a.Contains(ir.Range{Start: 10, End: 11}) {
		t.Fatal("carved range still free")
	}
	if !a.Contains(ir.Range{Start: 0, End: 10}) || !a.Contains(ir.Range{Start: 20, End: 100}) {
		t.Fatal("surrounding space lost")
	}
	if err := a.Carve(ir.Range{Start: 5, End: 15}); err == nil {
		t.Fatal("carve across hole should fail")
	}
	if err := a.Carve(ir.Range{Start: 15, End: 15}); err == nil {
		t.Fatal("empty carve should fail")
	}
	a.Release(ir.Range{Start: 10, End: 20})
	mustInvariants(t, a)
	if !a.Contains(ir.Range{Start: 0, End: 100}) {
		t.Fatal("release did not merge back")
	}
	if a.NumBlocks() != 1 {
		t.Fatalf("blocks after merge = %+v", a.Blocks())
	}
}

func TestAllocCarveEdges(t *testing.T) {
	a := NewAlloc(ir.Range{Start: 0, End: 100}, nil)
	// Prefix, suffix, exact and middle carves exercise all four cases.
	if err := a.CarveAt(0, 10); err != nil { // prefix trim
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if err := a.Carve(ir.Range{Start: 90, End: 100}); err != nil { // suffix trim
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if err := a.Carve(ir.Range{Start: 40, End: 50}); err != nil { // middle split
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if err := a.Carve(ir.Range{Start: 10, End: 40}); err != nil { // exact block
		t.Fatal(err)
	}
	mustInvariants(t, a)
	if got := a.Blocks(); len(got) != 1 || got[0] != (ir.Range{Start: 50, End: 90}) {
		t.Fatalf("blocks = %+v", got)
	}
}

func TestAllocReleaseMerges(t *testing.T) {
	a := AllocFromBlocks([]ir.Range{{Start: 0, End: 10}, {Start: 20, End: 30}})
	// No merge.
	a.Release(ir.Range{Start: 40, End: 50})
	mustInvariants(t, a)
	// Left merge.
	a.Release(ir.Range{Start: 10, End: 15})
	mustInvariants(t, a)
	// Right merge.
	a.Release(ir.Range{Start: 18, End: 20})
	mustInvariants(t, a)
	// Both-sides merge closes the remaining gap.
	a.Release(ir.Range{Start: 15, End: 18})
	mustInvariants(t, a)
	want := []ir.Range{{Start: 0, End: 30}, {Start: 40, End: 50}}
	got := a.Blocks()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("blocks = %+v, want %+v", got, want)
	}
}

func TestAllocReleaseDoubleFreePanics(t *testing.T) {
	a := NewAlloc(ir.Range{Start: 0, End: 100}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Release(ir.Range{Start: 50, End: 60})
}

func TestAllocLargestAndFindWithin(t *testing.T) {
	a := NewAlloc(ir.Range{Start: 0, End: 100}, []ir.Range{{Start: 30, End: 90}})
	largest, ok := a.Largest()
	if !ok || largest.Len() != 30 {
		t.Fatalf("largest = %+v", largest)
	}
	r, ok := a.FindWithin(ir.Range{Start: 25, End: 95}, 5)
	if !ok || r.Start != 25 {
		t.Fatalf("FindWithin = %+v, %v", r, ok)
	}
	r, ok = a.FindWithin(ir.Range{Start: 28, End: 95}, 5)
	if !ok || r.Start != 90 {
		t.Fatalf("FindWithin skipping small tail = %+v, %v", r, ok)
	}
	if _, ok := a.FindWithin(ir.Range{Start: 31, End: 89}, 1); ok {
		t.Fatal("FindWithin inside hole should fail")
	}
	if _, ok := NewAlloc(ir.Range{Start: 0, End: 0}, nil).Largest(); ok {
		t.Fatal("empty space has no largest block")
	}
}

func TestAllocLargestIsLeftmostAmongTies(t *testing.T) {
	a := AllocFromBlocks([]ir.Range{
		{Start: 0, End: 16}, {Start: 32, End: 48}, {Start: 64, End: 80},
	})
	b, ok := a.Largest()
	if !ok || b.Start != 0 {
		t.Fatalf("largest = %+v, want leftmost of the ties", b)
	}
}

func TestAllocQueries(t *testing.T) {
	blocks := []ir.Range{
		{Start: 0x1000, End: 0x1040}, // 64 bytes
		{Start: 0x2000, End: 0x2010}, // 16 bytes
		{Start: 0x3000, End: 0x3400}, // 1024 bytes
	}
	a := AllocFromBlocks(blocks)
	mustInvariants(t, a)

	if b, ok := a.LowestFit(10); !ok || b.Start != 0x1000 {
		t.Fatalf("LowestFit(10) = %+v, %v", b, ok)
	}
	if b, ok := a.LowestFit(100); !ok || b.Start != 0x3000 {
		t.Fatalf("LowestFit(100) = %+v, %v", b, ok)
	}
	if b, ok := a.HighestFit(10); !ok || b.Start != 0x3000 {
		t.Fatalf("HighestFit(10) = %+v, %v", b, ok)
	}
	if b, ok := a.HighestFit(20); !ok || b.Start != 0x3000 {
		t.Fatalf("HighestFit(20) = %+v, %v", b, ok)
	}
	if b, ok := a.BestFit(10); !ok || b.Start != 0x2000 {
		t.Fatalf("BestFit(10) = %+v, %v", b, ok)
	}
	if b, ok := a.BestFit(100); !ok || b.Start != 0x3000 {
		t.Fatalf("BestFit(100) = %+v, %v", b, ok)
	}
	if _, ok := a.BestFit(5000); ok {
		t.Fatal("BestFit(5000) should fail")
	}
	if b, ok := a.NearestFit(0x1080, 10); !ok || b.Start != 0x1000 {
		t.Fatalf("NearestFit(0x1080) = %+v, %v", b, ok)
	}
	if b, ok := a.NearestFit(0x2fff, 10); !ok || b.Start != 0x3000 {
		t.Fatalf("NearestFit(0x2fff) = %+v, %v", b, ok)
	}
	// Equidistant: 0x2000 and 0x3000 are both 0x800 from 0x2800; the
	// lower-addressed one wins.
	if b, ok := a.NearestFit(0x2800, 10); !ok || b.Start != 0x2000 {
		t.Fatalf("NearestFit(0x2800) tie = %+v, %v", b, ok)
	}
	if b, ok := a.BlockStartingAt(0x2000); !ok || b.End != 0x2010 {
		t.Fatalf("BlockStartingAt(0x2000) = %+v, %v", b, ok)
	}
	if _, ok := a.BlockStartingAt(0x2001); ok {
		t.Fatal("BlockStartingAt(0x2001) should fail")
	}

	var fits []ir.Range
	a.VisitFits(20, func(b ir.Range) bool {
		fits = append(fits, b)
		return true
	})
	if len(fits) != 2 || fits[0].Start != 0x1000 || fits[1].Start != 0x3000 {
		t.Fatalf("VisitFits(20) = %+v", fits)
	}
}

func TestQuickAllocCarveReleaseRoundTrip(t *testing.T) {
	// Property: any sequence of valid carves followed by releases in any
	// order restores full free space, with invariants held throughout.
	f := func(sizes []uint8) bool {
		whole := ir.Range{Start: 0, End: 4096}
		a := NewAlloc(whole, nil)
		var carved []ir.Range
		cursor := uint32(0)
		for _, s := range sizes {
			size := uint32(s%64) + 1
			if cursor+size > whole.End {
				break
			}
			r := ir.Range{Start: cursor, End: cursor + size}
			if err := a.Carve(r); err != nil {
				return false
			}
			carved = append(carved, r)
			cursor += size + uint32(s%3) // leave occasional gaps
		}
		if a.checkInvariants() != nil {
			return false
		}
		for i := len(carved) - 1; i >= 0; i-- {
			a.Release(carved[i])
			if a.checkInvariants() != nil {
				return false
			}
		}
		return a.TotalFree() == int(whole.Len()) && a.NumBlocks() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
