package core

import (
	"testing"

	"zipr/internal/ir"
)

// benchSpace builds n free blocks of varying sizes separated by
// one-byte holes, the fragmentation shape a pin-dense rewrite produces.
func benchSpace(n int) []ir.Range {
	blocks := make([]ir.Range, 0, n)
	addr := uint32(0x1000)
	for i := 0; i < n; i++ {
		size := uint32(8 + (i*7)%120)
		blocks = append(blocks, ir.Range{Start: addr, End: addr + size})
		addr += size + 1
	}
	return blocks
}

// carveReleaseCycle drives one mixed workload over a Space-backed
// allocator: a fit query, a carve of the result, and periodic releases.
func carveReleaseCycle(b *testing.B, mk func() interface {
	Space
	Carve(r ir.Range) error
	Release(r ir.Range)
}) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mk()
		var carved []ir.Range
		for j := 0; j < 2048; j++ {
			size := 4 + j%24
			blk, ok := a.NearestFit(uint32(0x1000+j*37), size)
			if !ok {
				break
			}
			r := ir.Range{Start: blk.Start, End: blk.Start + uint32(size)}
			if err := a.Carve(r); err != nil {
				b.Fatal(err)
			}
			carved = append(carved, r)
			if j%4 == 3 {
				last := carved[len(carved)-1]
				carved = carved[:len(carved)-1]
				a.Release(last)
			}
		}
	}
}

// BenchmarkAllocCarveRelease measures the indexed allocator on the
// mixed query/carve/release workload over 10k fragmented blocks.
func BenchmarkAllocCarveRelease(b *testing.B) {
	blocks := benchSpace(10_000)
	carveReleaseCycle(b, func() interface {
		Space
		Carve(r ir.Range) error
		Release(r ir.Range)
	} {
		return AllocFromBlocks(blocks)
	})
}

// BenchmarkFreeSpaceCarveRelease is the same workload on the sorted-
// slice reference implementation, for comparison.
func BenchmarkFreeSpaceCarveRelease(b *testing.B) {
	blocks := benchSpace(10_000)
	carveReleaseCycle(b, func() interface {
		Space
		Carve(r ir.Range) error
		Release(r ir.Range)
	} {
		fs := &FreeSpace{}
		for _, blk := range blocks {
			fs.blocks = append(fs.blocks, blk)
		}
		return fs
	})
}

// BenchmarkAllocNearestFit measures the hot placement query alone on
// the indexed allocator.
func BenchmarkAllocNearestFit(b *testing.B) {
	a := AllocFromBlocks(benchSpace(10_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.NearestFit(uint32(0x1000+i*61), 16); !ok {
			b.Fatal("no fit")
		}
	}
}

// BenchmarkFreeSpaceNearestFit is the same query on the reference
// linear scan.
func BenchmarkFreeSpaceNearestFit(b *testing.B) {
	fs := &FreeSpace{blocks: benchSpace(10_000)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := fs.NearestFit(uint32(0x1000+i*61), 16); !ok {
			b.Fatal("no fit")
		}
	}
}
