package transform

import (
	"fmt"

	"zipr/internal/ir"
	"zipr/internal/isa"
)

// StackPad is the paper's Figure-2 example transform: it enlarges stack
// frame allocations so that stack offsets observed by an attacker differ
// from the original binary. It locates matching frame allocation /
// release pairs (`addi sp, -N` / `addi sp, +N` with N >= MinFrame) in
// each function and grows both by Pad bytes. Functions whose
// allocations and releases do not pair up are skipped with a warning —
// the transform must never break semantics.
//
// The transform is sound for code that addresses only its own frame
// through sp (arguments pass in registers), which is the calling
// convention of the synthetic toolchain — and the common case the
// paper's example targets.
type StackPad struct {
	// Pad is the number of bytes added to each frame (default 64).
	Pad int32
	// MinFrame ignores small sp adjustments such as spill slots
	// (default 16).
	MinFrame int32
}

var _ Transform = StackPad{}

// Name implements Transform.
func (StackPad) Name() string { return "stackpad" }

// Params implements Parametric for the rewrite-cache fingerprint.
func (t StackPad) Params() string {
	return fmt.Sprintf("pad=%d,minframe=%d", t.Pad, t.MinFrame)
}

// Apply implements Transform.
func (t StackPad) Apply(ctx *Context) error {
	pad := t.Pad
	if pad <= 0 {
		pad = 64
	}
	minFrame := t.MinFrame
	if minFrame <= 0 {
		minFrame = 16
	}
	for _, fn := range ctx.Functions() {
		var allocs, frees []*ir.Instruction
		for _, n := range fn.Insts {
			if !isSPAdjust(n) {
				continue
			}
			switch {
			case n.Inst.Imm <= -minFrame:
				allocs = append(allocs, n)
			case n.Inst.Imm >= minFrame:
				frees = append(frees, n)
			}
		}
		if len(allocs) == 0 {
			continue
		}
		if !framesPair(allocs, frees) {
			ctx.Prog.Warnf("stackpad: function %s has unmatched frame adjustments; skipped", fn.Name)
			continue
		}
		for _, n := range allocs {
			grow(n, -pad)
		}
		for _, n := range frees {
			grow(n, pad)
		}
	}
	return nil
}

func isSPAdjust(n *ir.Instruction) bool {
	op := n.Inst.Op
	return (op == isa.OpAddI || op == isa.OpAddI8) && n.Inst.Rd == isa.SP
}

// framesPair checks that every allocation size has a matching release
// size (multisets over magnitudes).
func framesPair(allocs, frees []*ir.Instruction) bool {
	counts := map[int32]int{}
	for _, n := range allocs {
		counts[-n.Inst.Imm]++
	}
	for _, n := range frees {
		counts[n.Inst.Imm]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

// grow adds delta to an sp adjustment, widening addi8 to addi when the
// new immediate no longer fits in 8 bits — length changes are free in
// the IR; the reassembler places whatever comes out.
func grow(n *ir.Instruction, delta int32) {
	v := n.Inst.Imm + delta
	n.Inst.Imm = v
	if n.Inst.Op == isa.OpAddI8 && (v < -128 || v > 127) {
		n.Inst.Op = isa.OpAddI
	}
}
