package transform

// PinBlocks pins every basic-block leader (branch and call targets,
// post-call return sites, function entries), approximating the naïve
// P ⊇ "all instructions" assignment the paper's §II-A2 discusses: it
// trivially satisfies B ⊆ P but strips the reassembler of placement
// freedom, producing a markedly less space-efficient binary. (Pinning
// literally every instruction is its degenerate limit — every gap equals
// one instruction length and the only valid layout is the original one —
// so the ablation uses block leaders, which keeps the comparison
// meaningful while inflating |P| by an order of magnitude.)
type PinBlocks struct{}

var _ Transform = PinBlocks{}

// Name implements Transform.
func (PinBlocks) Name() string { return "pin-blocks" }

// Apply implements Transform.
func (PinBlocks) Apply(ctx *Context) error {
	for _, n := range ctx.Prog.Insts {
		if n.Target != nil && n.Target.OrigAddr != 0 {
			n.Target.Pinned = true
		}
		if n.Inst.IsCall() && n.Fallthrough != nil && n.Fallthrough.OrigAddr != 0 {
			n.Fallthrough.Pinned = true
		}
	}
	for _, f := range ctx.Prog.Functions {
		if f.Entry != nil && f.Entry.OrigAddr != 0 {
			f.Entry.Pinned = true
		}
	}
	return nil
}
