package zipr

import (
	"bytes"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/synth"
)

func TestStirEquivalenceAndGranularity(t *testing.T) {
	seed, profile := synth.CBProfile(2)
	orig, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte{0x5A}, profile.InputLen)
	want := mustRun(t, orig, nil, string(input))

	plain, plainReport, err := RewriteBinary(orig.Clone(), Config{
		Transforms: []Transform{Null()}, Layout: LayoutDiversity, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stirred, stirReport, err := RewriteBinary(orig.Clone(), Config{
		Transforms: []Transform{Stir(9)}, Layout: LayoutDiversity, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, stirred, nil, string(input))
	if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("stirred binary diverged: exit %d vs %d", got.ExitCode, want.ExitCode)
	}
	gotPlain := mustRun(t, plain, nil, string(input))
	if gotPlain.ExitCode != want.ExitCode {
		t.Fatalf("plain diversity binary diverged")
	}
	// Stirring must produce markedly more (smaller) dollops.
	if stirReport.Stats.Dollops <= plainReport.Stats.Dollops {
		t.Fatalf("stir dollops = %d, plain = %d; expected more granularity",
			stirReport.Stats.Dollops, plainReport.Stats.Dollops)
	}
}

func TestStirDeterministicPerSeed(t *testing.T) {
	orig := asm.MustAssemble(`
.text 0x00100000
main:
    movi r2, 1
    addi r2, 2
    addi r2, 3
    addi r2, 4
    mov r1, r2
    movi r0, 1
    syscall
`)
	build := func(stirSeed int64) []byte {
		rw, _, err := RewriteBinary(orig.Clone(), Config{
			Transforms: []Transform{Stir(stirSeed)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rw.Text().Data
	}
	a, b := build(1), build(1)
	if !bytes.Equal(a, b) {
		t.Fatal("same stir seed produced different binaries")
	}
}

func TestStirWithCFIStacked(t *testing.T) {
	seed, profile := synth.CBProfile(4)
	orig, err := synth.Build(seed, profile)
	if err != nil {
		t.Fatal(err)
	}
	input := bytes.Repeat([]byte{7}, profile.InputLen)
	want := mustRun(t, orig, nil, string(input))
	rw, _, err := RewriteBinary(orig.Clone(), Config{
		Transforms: []Transform{Stir(4), CFI()},
		Layout:     LayoutDiversity,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := mustRun(t, rw, nil, string(input))
	if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
		t.Fatal("stir+cfi diverged")
	}
}
