package zipr

// Differential identity suite for incremental (delta) rewriting: a
// delta-applied output must be byte-for-byte what a from-scratch rewrite
// of the edited input produces, for every golden-corpus program under a
// 1-function synthetic edit, across both layouts and the null/cfi
// transform stacks (ISSUE 7 acceptance). Structural edits (rel8→rel32
// widening), out-of-unit edits and zero-function inputs must be refused
// with a typed error — the caller then runs the full pipeline, so the
// only cost of refusal is latency.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"zipr/internal/asm"
	"zipr/internal/binfmt"
	"zipr/internal/synth"
)

// deltaConfigs are the (stack × layout) cells the identity suite runs:
// the golden suite's null/cfi stacks under both layouts.
func deltaConfigs() []Config {
	return []Config{
		{},
		{Layout: LayoutDiversity, Seed: 0x60D5},
		{Transforms: []Transform{CFI()}},
		{Transforms: []Transform{CFI()}, Layout: LayoutDiversity, Seed: 0x60D5},
	}
}

func deltaConfigName(c Config) string {
	name := "null"
	if len(c.Transforms) > 0 {
		name = "cfi"
	}
	if c.Layout == LayoutDiversity {
		return name + "-diversity"
	}
	return name + "-optimized"
}

// mustBinary assembles source.
func mustBinary(t *testing.T, src string) *binfmt.Binary {
	t.Helper()
	bin, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return bin
}

// mustImage assembles and serializes source.
func mustImage(t *testing.T, src string) []byte {
	t.Helper()
	data, err := mustBinary(t, src).Marshal()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// checkDeltaIdentity captures a snapshot rewriting base, applies it to
// edited, and requires byte equality with edited's from-scratch rewrite.
// Returns false when the snapshot refused the edit (callers decide
// whether refusal is acceptable).
func checkDeltaIdentity(t *testing.T, cfg Config, base, edited []byte) bool {
	t.Helper()
	cfg.CaptureSnapshot = true
	_, rep, err := Rewrite(base, cfg)
	if err != nil {
		t.Fatalf("base rewrite: %v", err)
	}
	if rep.Snapshot == nil {
		t.Fatalf("no snapshot captured")
	}
	got, info, err := rep.Snapshot.Apply(edited)
	if err != nil {
		if !errors.Is(err, ErrDeltaInapplicable) && !errors.Is(err, ErrSnapshotStale) {
			t.Fatalf("delta apply failed with untyped error: %v", err)
		}
		t.Logf("delta refused: %v", err)
		return false
	}
	want, _, err := Rewrite(edited, cfg)
	if err != nil {
		t.Fatalf("from-scratch rewrite of edited input: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("delta output diverges from from-scratch rewrite (%d insts patched in %d units)",
			info.InstsChanged, info.UnitsChanged)
	}
	if info.InstsChanged == 0 {
		t.Fatalf("delta reported no patched instructions for a real edit")
	}
	return true
}

// TestDeltaIdentityCorpus is the acceptance sweep: every golden-corpus
// program under a 1-function constant edit, across all four cells. A
// program whose edited function is delta-ineligible (handwritten blocks
// embed data in text, so its unit overlaps a fixed range) may refuse —
// the serving layer then runs the full pipeline, which is trivially
// identical — but a refusal must be typed, and most of the corpus must
// take the delta path or the optimization is vacuous.
func TestDeltaIdentityCorpus(t *testing.T) {
	stride := goldenStride
	if testing.Short() && stride < 4 {
		stride = 4
	}
	applied, refused := 0, 0
	for i := 0; i < synth.CorpusSize; i += stride {
		seed, prof := synth.CBProfile(i)
		src := synth.Generate(seed, prof)
		msrc, n := synth.MutateConsts(src, int64(0xD1F0+i), 1)
		if n != 1 {
			t.Fatalf("cb%02d: mutated %d functions, want 1", i, n)
		}
		base, edited := mustImage(t, src), mustImage(t, msrc)
		for _, cfg := range deltaConfigs() {
			if checkDeltaIdentity(t, cfg, base, edited) {
				applied++
			} else {
				refused++
			}
		}
	}
	t.Logf("delta applied %d cells, refused %d", applied, refused)
	if applied < refused {
		t.Fatalf("delta refused more cells than it applied (%d vs %d)", refused, applied)
	}
}

// TestDeltaEditSweep is the correctness backing of the EXPERIMENTS.md
// edit-latency sweep: 0, 1, 10, and all functions changed. Identity must
// hold at every point, the patched-unit count must track the edit size,
// and the 0-edit point must return the ancestor output untouched.
func TestDeltaEditSweep(t *testing.T) {
	src := synth.Generate(0x5EEE, synth.Profile{
		Name: "sweep", NumFuncs: 60, OpsMin: 4, OpsMax: 10,
		FuncPtrTableFrac: 0.2, DataWords: 64, InputLen: 8, LoopIters: 4,
	})
	base := mustImage(t, src)
	cfg := Config{CaptureSnapshot: true}
	_, rep, err := Rewrite(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot == nil {
		t.Fatal("no snapshot captured")
	}
	prevUnits := -1
	for _, edits := range []int{0, 1, 10, -1} {
		msrc, n := synth.MutateConsts(src, 0x33+int64(edits), edits)
		if edits >= 0 && n != edits {
			t.Fatalf("edits=%d: mutated %d functions", edits, n)
		}
		edited := mustImage(t, msrc)
		got, info, err := rep.Snapshot.Apply(edited)
		if err != nil {
			t.Fatalf("edits=%d: delta refused: %v", edits, err)
		}
		want, _, err := Rewrite(edited, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("edits=%d: delta output diverges", edits)
		}
		if info.UnitsChanged < prevUnits {
			t.Fatalf("edits=%d: patched units %d shrank below the previous sweep point %d",
				edits, info.UnitsChanged, prevUnits)
		}
		prevUnits = info.UnitsChanged
		if edits == 0 && info.InstsChanged != 0 {
			t.Fatalf("0-edit point patched %d instructions", info.InstsChanged)
		}
		t.Logf("edits=%d: %d units, %d insts patched", edits, info.UnitsChanged, info.InstsChanged)
	}
	if prevUnits < 30 {
		t.Fatalf("all-function edit patched only %d units of 60", prevUnits)
	}
}

// TestDeltaIdentitySmall pins the mechanism on one small program across
// every (stack × layout) cell before the corpus-wide sweep, including
// the golden suite's full stack — StackPad and Canary make the
// configuration frame-sensitive, exercising the sp-adjustment exclusion.
func TestDeltaIdentitySmall(t *testing.T) {
	seed, prof := synth.CBProfile(3)
	src := synth.Generate(seed, prof)
	msrc, n := synth.MutateConsts(src, 0xED17, 1)
	if n != 1 {
		t.Fatalf("mutated %d functions, want 1", n)
	}
	base, edited := mustImage(t, src), mustImage(t, msrc)
	if bytes.Equal(base, edited) {
		t.Fatal("mutation produced identical image")
	}
	full := []Transform{Stir(0x57123), NopElide(), StackPad(48), Canary(0xA5A5A5A5), CFI()}
	cells := append(deltaConfigs(),
		Config{Transforms: full},
		Config{Transforms: full, Layout: LayoutDiversity, Seed: 0x60D5},
	)
	for _, cfg := range cells {
		cfg := cfg
		name := deltaConfigName(cfg)
		if len(cfg.Transforms) > 1 {
			name = strings.Replace(name, "cfi-", "full-", 1)
		}
		t.Run(name, func(t *testing.T) {
			if !checkDeltaIdentity(t, cfg, base, edited) {
				t.Fatalf("delta refused a 1-function constant edit")
			}
		})
	}
}
